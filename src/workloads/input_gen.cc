#include "workloads/input_gen.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace gs {

std::vector<double> DefaultDcWeights(int num_dcs) {
  GS_CHECK(num_dcs > 0);
  if (num_dcs == 1) return {1.0};
  // Ingest skews toward the first datacenter (driver + NameNode region).
  std::vector<double> w(num_dcs, 0.6 / (num_dcs - 1));
  w[0] = 0.4;
  return w;
}

std::vector<SourceRdd::Partition> PlacePartitions(
    const Topology& topo, std::vector<std::vector<Record>> partitions,
    const std::vector<double>& dc_weights) {
  GS_CHECK(static_cast<int>(dc_weights.size()) == topo.num_datacenters());
  const int total = static_cast<int>(partitions.size());
  GS_CHECK(total > 0);

  // Largest-remainder apportionment of partition counts to datacenters.
  std::vector<int> count(dc_weights.size(), 0);
  std::vector<std::pair<double, int>> remainder;
  int assigned = 0;
  for (std::size_t dc = 0; dc < dc_weights.size(); ++dc) {
    double exact = dc_weights[dc] * total;
    count[dc] = static_cast<int>(exact);
    assigned += count[dc];
    remainder.emplace_back(exact - count[dc], static_cast<int>(dc));
  }
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (int i = 0; assigned < total; ++i, ++assigned) {
    count[remainder[i % remainder.size()].second]++;
  }

  std::vector<SourceRdd::Partition> placed;
  placed.reserve(total);
  std::size_t next = 0;
  for (DcIndex dc = 0; dc < topo.num_datacenters(); ++dc) {
    std::vector<NodeIndex> workers;
    for (NodeIndex n : topo.nodes_in(dc)) {
      if (topo.node(n).worker) workers.push_back(n);
    }
    GS_CHECK(!workers.empty());
    for (int k = 0; k < count[dc]; ++k) {
      GS_CHECK(next < partitions.size());
      SourceRdd::Partition part;
      part.records = MakeRecords(std::move(partitions[next++]));
      part.node = workers[k % workers.size()];
      part.bytes = SerializedSize(*part.records);
      placed.push_back(std::move(part));
    }
  }
  GS_CHECK(next == partitions.size());
  return placed;
}

std::vector<std::string> MakeVocabulary(std::size_t size, Rng& rng) {
  std::vector<std::string> vocab;
  vocab.reserve(size);
  const char* alphabet = "abcdefghijklmnopqrstuvwxyz";
  for (std::size_t i = 0; i < size; ++i) {
    int len = static_cast<int>(rng.UniformInt(3, 12));
    std::string word;
    word.reserve(len);
    for (int c = 0; c < len; ++c) {
      word.push_back(alphabet[rng.UniformInt(0, 25)]);
    }
    // Guarantee uniqueness with a short suffix.
    word += std::to_string(i % 97);
    vocab.push_back(std::move(word));
  }
  return vocab;
}

std::vector<Record> MakeTextLines(Bytes target_bytes, int words_per_line,
                                  const std::vector<std::string>& vocab,
                                  const ZipfSampler& zipf, Rng& rng) {
  GS_CHECK(words_per_line > 0);
  std::vector<Record> lines;
  Bytes produced = 0;
  while (produced < target_bytes) {
    std::string line;
    for (int w = 0; w < words_per_line; ++w) {
      if (w) line.push_back(' ');
      line += vocab[zipf.Sample(rng)];
    }
    Record r{"", std::move(line)};
    produced += SerializedSize(r);
    lines.push_back(std::move(r));
  }
  return lines;
}

std::vector<Record> MakeKeyValueRecords(std::size_t count, int value_len,
                                        Rng& rng,
                                        const char* key_alphabet,
                                        const std::vector<std::string>* vocab) {
  const std::string alphabet(key_alphabet);
  GS_CHECK(alphabet.size() >= 2);
  const std::int64_t amax = static_cast<std::int64_t>(alphabet.size()) - 1;
  std::vector<Record> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string key(10, alphabet[0]);
    for (char& c : key) c = alphabet[rng.UniformInt(0, amax)];
    std::string value;
    value.reserve(value_len);
    if (vocab != nullptr) {
      while (static_cast<int>(value.size()) < value_len) {
        if (!value.empty()) value.push_back(' ');
        value += (*vocab)[rng.UniformInt(
            0, static_cast<std::int64_t>(vocab->size()) - 1)];
      }
      value.resize(value_len);
    } else {
      for (int c = 0; c < value_len; ++c) {
        value.push_back(kPrintableAlphabet[rng.UniformInt(0, 63)]);
      }
    }
    records.push_back(Record{std::move(key), std::move(value)});
  }
  return records;
}

std::vector<std::string> UniformBoundaries(int num_shards,
                                           const char* alphabet_chars) {
  GS_CHECK(num_shards > 0);
  const std::string alphabet(alphabet_chars);
  const int n = static_cast<int>(alphabet.size());
  GS_CHECK(n >= 2);
  std::vector<std::string> boundaries;
  for (int i = 1; i < num_shards; ++i) {
    // Boundary at fraction i/num_shards of the key space; two characters
    // of precision suffice for 10-char uniform keys.
    int v = static_cast<int>(
        (static_cast<long long>(i) * n * n) / num_shards);
    std::string b;
    b.push_back(alphabet[std::min(v / n, n - 1)]);
    b.push_back(alphabet[v % n]);
    boundaries.push_back(std::move(b));
  }
  return boundaries;
}

std::vector<Record> MakeWebGraph(std::size_t num_pages, double avg_degree,
                                 Rng& rng) {
  GS_CHECK(num_pages > 1);
  std::vector<Record> pages;
  pages.reserve(num_pages);
  // Power-law-ish out-degrees: most pages have few links, a head has many.
  ZipfSampler degree_sampler(64, 1.3);
  const double degree_scale =
      avg_degree / 8.9;  // E[zipf(64,1.3)+1] ~= 8.9, rescale to avg_degree
  for (std::size_t i = 0; i < num_pages; ++i) {
    int degree = std::max(
        1, static_cast<int>((degree_sampler.Sample(rng) + 1) * degree_scale));
    std::vector<std::string> links;
    links.reserve(degree);
    for (int d = 0; d < degree; ++d) {
      std::size_t target = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(num_pages) - 1));
      if (target == i) target = (target + 1) % num_pages;
      links.push_back("p" + std::to_string(target));
    }
    pages.push_back(Record{"p" + std::to_string(i), std::move(links)});
  }
  return pages;
}

std::vector<Record> MakeLabelledDocs(std::size_t num_docs, int num_classes,
                                     int terms_per_doc,
                                     const std::vector<std::string>& vocab,
                                     const ZipfSampler& zipf, Rng& rng) {
  GS_CHECK(num_classes > 0);
  std::vector<Record> docs;
  docs.reserve(num_docs);
  for (std::size_t i = 0; i < num_docs; ++i) {
    int cls = static_cast<int>(rng.UniformInt(0, num_classes - 1));
    std::string text;
    for (int t = 0; t < terms_per_doc; ++t) {
      if (t) text.push_back(' ');
      text += vocab[zipf.Sample(rng)];
    }
    char label[16];
    std::snprintf(label, sizeof(label), "class%03d", cls);
    docs.push_back(Record{label, std::move(text)});
  }
  return docs;
}

}  // namespace gs
