#include "workloads/arrivals.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace gs {

std::vector<SimTime> GenerateArrivals(const ArrivalConfig& config, int count,
                                      std::uint64_t seed) {
  GS_CHECK_MSG(count >= 0, "negative arrival count");
  GS_CHECK_MSG(config.rate_per_s > 0, "arrival rate must be positive");
  GS_CHECK_MSG(config.diurnal_amplitude >= 0 && config.diurnal_amplitude < 1,
               "diurnal amplitude must be in [0, 1)");
  GS_CHECK_MSG(config.diurnal_amplitude == 0 || config.diurnal_period > 0,
               "diurnal period must be positive");

  // Thinning (Lewis & Shedler): draw candidates from a homogeneous
  // Poisson process at the peak rate, keep each with probability
  // lambda(t) / peak. With amplitude 0 every candidate is kept and this
  // reduces to plain exponential inter-arrival times.
  Rng rng = Rng(seed).Split("arrivals");
  const double peak = config.rate_per_s * (1.0 + config.diurnal_amplitude);
  std::vector<SimTime> times;
  times.reserve(static_cast<std::size_t>(count));
  double t = 0;
  while (static_cast<int>(times.size()) < count) {
    t += rng.Exponential(1.0 / peak);
    double accept = 1.0;
    if (config.diurnal_amplitude > 0) {
      constexpr double kTwoPi = 6.283185307179586;
      const double phase = kTwoPi * t / config.diurnal_period;
      const double lambda =
          config.rate_per_s * (1.0 + config.diurnal_amplitude * std::sin(phase));
      accept = lambda / peak;
    }
    if (accept >= 1.0 || rng.Bernoulli(accept)) times.push_back(t);
  }
  return times;
}

}  // namespace gs
