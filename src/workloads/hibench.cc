#include "workloads/hibench.h"

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "common/check.h"
#include "workloads/input_gen.h"

namespace gs {
namespace {

// Splits `records` into `parts` nearly equal chunks.
std::vector<std::vector<Record>> Chunk(std::vector<Record> records,
                                       int parts) {
  GS_CHECK(parts > 0);
  std::vector<std::vector<Record>> out(parts);
  const std::size_t per = (records.size() + parts - 1) / parts;
  for (int i = 0; i < parts; ++i) {
    const std::size_t begin = i * per;
    const std::size_t end =
        std::min(records.size(), begin + per);
    if (begin < end) {
      out[i].assign(std::make_move_iterator(records.begin() + begin),
                    std::make_move_iterator(records.begin() + end));
    }
  }
  return out;
}

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> words;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t space = text.find(' ', start);
    if (space == std::string::npos) space = text.size();
    if (space > start) words.push_back(text.substr(start, space - start));
    start = space + 1;
  }
  return words;
}

// ---------------------------------------------------------------------------
// WordCount — one shuffle, heavy map-side combine. Table I: 3.2 GB of text.
// ---------------------------------------------------------------------------
class WordCount final : public Workload {
 public:
  using Workload::Workload;
  const char* name() const override { return "WordCount"; }

  std::string SpecSummary() const override {
    std::ostringstream os;
    os << "3.2 GB generated text (scaled: "
       << FmtScaledBytes(GiB(3.2)) << ")";
    return os.str();
  }

  Dataset Build(GeoCluster& cluster, std::uint64_t data_seed) override {
    Rng rng = Rng(data_seed).Split("wordcount");
    std::vector<std::string> vocab = MakeVocabulary(5000, rng);
    ZipfSampler zipf(vocab.size(), 1.1);
    const Bytes total = static_cast<Bytes>(GiB(3.2) / params().scale);
    const Bytes per_part = total / params().map_partitions;

    std::vector<std::vector<Record>> parts;
    for (int p = 0; p < params().map_partitions; ++p) {
      parts.push_back(MakeTextLines(per_part, 20, vocab, zipf, rng));
    }
    Dataset input = cluster.CreateSource(
        "wordcount-input",
        PlacePartitions(cluster.topology(), std::move(parts),
                        Weights(cluster.topology())));

    Dataset counts =
        input
            .FlatMap("tokenize",
                     [](const Record& line) {
                       // Emit per-line partial counts; the engine's
                       // map-side combine merges them per partition.
                       std::unordered_map<std::string, std::int64_t> local;
                       for (std::string& w :
                            Tokenize(std::get<std::string>(line.value))) {
                         ++local[std::move(w)];
                       }
                       std::vector<Record> out;
                       out.reserve(local.size());
                       for (auto& [word, count] : local) {
                         out.push_back(Record{word, count});
                       }
                       return out;
                     })
            .ReduceByKey(SumInt64(), params().reduce_tasks);
    return counts;
  }

 private:
  std::string FmtScaledBytes(Bytes paper) const {
    std::ostringstream os;
    os << ToMiB(static_cast<Bytes>(paper / params().scale)) << " MiB";
    return os.str();
  }
};

// ---------------------------------------------------------------------------
// Sort — one shuffle, no combine, shuffle input == raw input.
// Table I: 320 MB of key/value records.
// ---------------------------------------------------------------------------
class Sort final : public Workload {
 public:
  using Workload::Workload;
  const char* name() const override { return "Sort"; }

  std::string SpecSummary() const override {
    std::ostringstream os;
    os << "320 MB of 100-byte records (scaled: "
       << ToMiB(TotalBytes()) << " MiB)";
    return os.str();
  }

  Dataset Build(GeoCluster& cluster, std::uint64_t data_seed) override {
    Rng rng = Rng(data_seed).Split("sort");
    // HiBench Sort operates on generated *text* (RandomTextWriter), which
    // compresses well in shuffle files.
    std::vector<std::string> vocab = MakeVocabulary(1000, rng);
    const std::size_t count = static_cast<std::size_t>(TotalBytes() / 116);
    std::vector<Record> records =
        MakeKeyValueRecords(count, 90, rng, kHexAlphabet, &vocab);
    Dataset input = cluster.CreateSource(
        "sort-input",
        PlacePartitions(cluster.topology(),
                        Chunk(std::move(records), params().map_partitions),
                        Weights(cluster.topology())));
    Dataset sorted = input.SortByKey(
        UniformBoundaries(params().reduce_tasks, kHexAlphabet));
    return sorted;
  }

 private:
  Bytes TotalBytes() const {
    return static_cast<Bytes>(MiB(320) / params().scale);
  }
};

// ---------------------------------------------------------------------------
// TeraSort — HiBench's implementation runs a map *before* the shuffle that
// bloats each record with partition/check metadata, so the shuffle input is
// larger than the raw input (Sec. V-B). This makes automatic aggregation
// push more bytes than Centralized moves — the paper's counter-example.
// The explicit-transfer variant applies the paper's recommended fix:
// transferTo() before the bloating map.
// Table I: 32M records x 100 bytes.
// ---------------------------------------------------------------------------
class TeraSort final : public Workload {
 public:
  using Workload::Workload;
  const char* name() const override { return "TeraSort"; }

  std::string SpecSummary() const override {
    std::ostringstream os;
    os << "32M x 100B records (scaled: " << NumRecords() << " records)";
    return os.str();
  }

  Dataset Build(GeoCluster& cluster, std::uint64_t data_seed) override {
    Rng rng = Rng(data_seed).Split("terasort");
    // gensort-style records: high-entropy keys and values that barely
    // compress — combined with the bloating map below, the shuffle input
    // exceeds the raw input, the paper's TeraSort anomaly.
    std::vector<Record> records = MakeKeyValueRecords(
        NumRecords(), 90, rng, kPrintableAlphabet, nullptr);
    Dataset input = cluster.CreateSource(
        "terasort-input",
        PlacePartitions(cluster.topology(),
                        Chunk(std::move(records), params().map_partitions),
                        Weights(cluster.topology())));

    Dataset staged = input;
    if (params().terasort_explicit_transfer) {
      // Developer fix (Sec. V-B): aggregate the *raw* records, which are
      // smaller than the bloated shuffle input.
      staged = staged.TransferTo();
    }
    Dataset bloated = staged.Map("terasort-format", [](const Record& r) {
      // HiBench prepends partition metadata and a checksum, growing each
      // record by ~25%.
      std::string value = std::get<std::string>(r.value);
      value += "|meta=" + r.key + "|crc=00000000";
      return Record{r.key, std::move(value)};
    });
    Dataset sorted = bloated.SortByKey(
        UniformBoundaries(params().reduce_tasks, kPrintableAlphabet));
    return sorted;
  }

 private:
  std::size_t NumRecords() const {
    return static_cast<std::size_t>(32e6 / params().scale);
  }
};

// ---------------------------------------------------------------------------
// PageRank — iterative, 1 + 3 shuffles, following Spark's co-partitioned
// formulation: raw page documents are parsed into adjacency lists and
// hash-partitioned by page once (the only bulky shuffle); each of the 3
// iterations then shuffles rank contributions only, unioned with the
// already-partitioned state (whose re-shuffle stays node-local because the
// partitioner is unchanged). Under AggShuffle the single adjacency shuffle
// is aggregated and every later shuffle is datacenter-local — the paper's
// best case (91.3% traffic reduction).
// Table I: 500,000 pages, max 3 iterations.
// ---------------------------------------------------------------------------
class PageRank final : public Workload {
 public:
  using Workload::Workload;
  const char* name() const override { return "PageRank"; }

  std::string SpecSummary() const override {
    std::ostringstream os;
    os << "500k pages, 3 iterations (scaled: " << NumPages() << " pages)";
    return os.str();
  }

  Dataset Build(GeoCluster& cluster, std::uint64_t data_seed) override {
    Rng rng = Rng(data_seed).Split("pagerank");
    std::vector<Record> raw = MakeRawPages(rng);
    Dataset input = cluster.CreateSource(
        "pagerank-input",
        PlacePartitions(cluster.topology(),
                        Chunk(std::move(raw), params().map_partitions),
                        Weights(cluster.topology())));

    // Parse documents to adjacency vectors; the page content is dropped,
    // so the shuffle input is far smaller than the raw input.
    Dataset state =
        input
            .Map("parse-links",
                 [](const Record& r) {
                   const auto& doc = std::get<std::string>(r.value);
                   std::vector<TermWeight> adjacency;
                   std::size_t pos = doc.find(kLinksMarker);
                   if (pos != std::string::npos) {
                     pos += kLinksMarkerLen;
                     while (pos < doc.size()) {
                       std::size_t space = doc.find(' ', pos);
                       if (space == std::string::npos) space = doc.size();
                       if (space > pos) {
                         adjacency.emplace_back(doc.substr(pos, space - pos),
                                                0.0);
                       }
                       pos = space + 1;
                     }
                   }
                   return Record{r.key, std::move(adjacency)};
                 })
            .ReduceByKey(MergeTermWeights(), params().reduce_tasks)
            .Map("init-rank", [](const Record& r) {
              auto v = std::get<std::vector<TermWeight>>(r.value);
              v.emplace_back("#r", 1.0);
              return Record{r.key, std::move(v)};
            });

    for (int iter = 0; iter < kIterations; ++iter) {
      Dataset contribs = state.FlatMap(
          "contribs-" + std::to_string(iter), [](const Record& r) {
            const auto& v = std::get<std::vector<TermWeight>>(r.value);
            double rank = 1.0;
            int degree = 0;
            for (const auto& [term, weight] : v) {
              if (term == "#r") {
                rank = weight;
              } else if (term[0] != '#') {
                ++degree;
              }
            }
            std::vector<Record> out;
            if (degree > 0) {
              const double share = 0.85 * rank / degree;
              out.reserve(degree);
              for (const auto& [term, weight] : v) {
                if (term[0] != '#') {
                  out.push_back(
                      Record{term, std::vector<TermWeight>{{"#c", share}}});
                }
              }
            }
            return out;
          });
      // Union with the co-partitioned state: state partition k re-shuffles
      // straight into shard k on its own node; only contributions travel.
      state = state.Union(contribs)
                  .ReduceByKey(MergeTermWeights(), params().reduce_tasks)
                  .Map("apply-rank-" + std::to_string(iter),
                       [](const Record& r) {
                         const auto& v =
                             std::get<std::vector<TermWeight>>(r.value);
                         double contrib = 0;
                         std::vector<TermWeight> next;
                         next.reserve(v.size());
                         for (const auto& [term, weight] : v) {
                           if (term == "#c") {
                             contrib += weight;
                           } else if (term[0] != '#') {
                             next.emplace_back(term, weight);
                           }
                         }
                         next.emplace_back("#r", 0.15 + contrib);
                         return Record{r.key, std::move(next)};
                       });
    }

    Dataset ranks = state.Map("extract-ranks", [](const Record& r) {
      const auto& v = std::get<std::vector<TermWeight>>(r.value);
      double rank = 0.15;
      for (const auto& [term, weight] : v) {
        if (term == "#r") rank = weight;
      }
      return Record{r.key, rank};
    });
    return ranks;
  }

 private:
  static constexpr int kIterations = 3;
  static constexpr const char* kLinksMarker = "LINKS: ";
  static constexpr std::size_t kLinksMarkerLen = 7;

  std::size_t NumPages() const {
    return static_cast<std::size_t>(500000 / params().scale);
  }

  // Raw page documents: ~400 bytes of page text plus the out-link list —
  // the parse map discards the text, like HiBench's PageRank input.
  std::vector<Record> MakeRawPages(Rng& rng) {
    std::vector<Record> graph = MakeWebGraph(NumPages(), 12.0, rng);
    std::vector<std::string> vocab = MakeVocabulary(800, rng);
    ZipfSampler zipf(vocab.size(), 1.1);
    std::vector<Record> raw;
    raw.reserve(graph.size());
    for (Record& page : graph) {
      std::string doc;
      doc.reserve(512);
      while (doc.size() < 400) {
        doc += vocab[zipf.Sample(rng)];
        doc.push_back(' ');
      }
      doc += kLinksMarker;
      const auto& links = std::get<std::vector<std::string>>(page.value);
      for (std::size_t i = 0; i < links.size(); ++i) {
        if (i) doc.push_back(' ');
        doc += links[i];
      }
      raw.push_back(Record{page.key, std::move(doc)});
    }
    return raw;
  }
};

// ---------------------------------------------------------------------------
// NaiveBayes — training: tokenize labelled documents into per-class term
// vectors, aggregate per class (strong map-side combine: only 100 distinct
// keys), then derive log-likelihoods; the model is collected at the driver.
// Table I: 100,000 pages, 100 classes.
// ---------------------------------------------------------------------------
class NaiveBayes final : public Workload {
 public:
  using Workload::Workload;
  const char* name() const override { return "NaiveBayes"; }

  std::string SpecSummary() const override {
    std::ostringstream os;
    os << "100k docs, 100 classes (scaled: " << NumDocs() << " docs)";
    return os.str();
  }

  ActionKind action() const override { return ActionKind::kCollect; }

  Dataset Build(GeoCluster& cluster, std::uint64_t data_seed) override {
    Rng rng = Rng(data_seed).Split("naivebayes");
    std::vector<std::string> vocab = MakeVocabulary(3000, rng);
    ZipfSampler zipf(vocab.size(), 1.1);
    std::vector<Record> docs =
        MakeLabelledDocs(NumDocs(), 100, 150, vocab, zipf, rng);
    Dataset input = cluster.CreateSource(
        "naivebayes-input",
        PlacePartitions(cluster.topology(),
                        Chunk(std::move(docs), params().map_partitions),
                        Weights(cluster.topology())));

    Dataset model =
        input
            .Map("vectorize",
                 [](const Record& doc) {
                   std::unordered_map<std::string, double> counts;
                   for (std::string& w :
                        Tokenize(std::get<std::string>(doc.value))) {
                     counts[std::move(w)] += 1.0;
                   }
                   std::vector<TermWeight> v(counts.begin(), counts.end());
                   std::sort(v.begin(), v.end());
                   return Record{doc.key, std::move(v)};
                 })
            .ReduceByKey(MergeTermWeights(), params().reduce_tasks)
            .Map("log-likelihood", [](const Record& cls) {
              const auto& v = std::get<std::vector<TermWeight>>(cls.value);
              double total = 0;
              for (const auto& [term, count] : v) total += count;
              std::vector<TermWeight> model;
              model.reserve(v.size());
              const double denom = total + static_cast<double>(v.size());
              for (const auto& [term, count] : v) {
                model.emplace_back(term, std::log((count + 1.0) / denom));
              }
              return Record{cls.key, std::move(model)};
            });
    return model;
  }

 private:
  std::size_t NumDocs() const {
    return static_cast<std::size_t>(100000 / params().scale);
  }
};

}  // namespace

std::vector<double> Workload::Weights(const Topology& topo) const {
  if (!params_.dc_weights.empty()) {
    GS_CHECK(static_cast<int>(params_.dc_weights.size()) ==
             topo.num_datacenters());
    return params_.dc_weights;
  }
  return DefaultDcWeights(topo.num_datacenters());
}

std::unique_ptr<Workload> MakeWorkload(std::string_view name,
                                       const WorkloadParams& params) {
  if (name == "wordcount" || name == "WordCount") {
    return std::make_unique<WordCount>(params);
  }
  if (name == "sort" || name == "Sort") {
    return std::make_unique<Sort>(params);
  }
  if (name == "terasort" || name == "TeraSort") {
    return std::make_unique<TeraSort>(params);
  }
  if (name == "pagerank" || name == "PageRank") {
    return std::make_unique<PageRank>(params);
  }
  if (name == "naivebayes" || name == "NaiveBayes") {
    return std::make_unique<NaiveBayes>(params);
  }
  GS_CHECK_MSG(false, "unknown workload: " << name);
  return nullptr;
}

const std::vector<std::string>& AllWorkloadNames() {
  static const std::vector<std::string> names = {
      "WordCount", "Sort", "TeraSort", "PageRank", "NaiveBayes"};
  return names;
}

}  // namespace gs
