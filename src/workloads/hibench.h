// The five HiBench workloads of the paper's evaluation (Table I), scaled.
//
// Each workload deterministically generates its input from a data seed,
// places it across datacenters, and builds the job via the Dataset API.
// Build() returns the final dataset without running it, so callers can
// either run synchronously (Run()) or Submit() many workload jobs onto one
// cluster concurrently (geosim --jobs, bench_multitenant). The same data
// seed produces byte-identical inputs under every scheme, so scheme
// comparisons are apples-to-apples.
//
// Paper-scale specifications (Table I), divided by `scale`:
//   WordCount:  3.2 GB of generated text
//   Sort:       320 MB of key/value records
//   TeraSort:   32M records x 100 bytes (with HiBench's size-bloating map)
//   PageRank:   500,000 pages, 3 iterations
//   NaiveBayes: 100,000 pages, 100 classes
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {

struct WorkloadParams {
  double scale = 100.0;   // divide paper-scale inputs by this factor
  int map_partitions = 48;
  int reduce_tasks = 8;   // "maximum parallelism of reduce set to 8"
  // Input placement skew across datacenters; empty = DefaultDcWeights.
  std::vector<double> dc_weights;
  // TeraSort only: explicitly transferTo() *before* the bloating map, the
  // developer fix the paper recommends in Sec. V-B.
  bool terasort_explicit_transfer = false;
  // Collect full results at the driver instead of saving on the workers
  // (used by tests to compare outputs across schemes). NaiveBayes always
  // collects its model.
  bool collect_results = false;
};

class Workload {
 public:
  explicit Workload(WorkloadParams params) : params_(std::move(params)) {}
  virtual ~Workload() = default;

  virtual const char* name() const = 0;
  // Table I style specification line, at paper scale and at this scale.
  virtual std::string SpecSummary() const = 0;

  // Generates input on `cluster` and builds the job graph; the returned
  // dataset is the job's final RDD, not yet executed.
  virtual Dataset Build(GeoCluster& cluster, std::uint64_t data_seed) = 0;

  // The action this workload's job runs: Save by default, Collect when
  // params.collect_results is set (NaiveBayes always collects its model).
  virtual ActionKind action() const {
    return params_.collect_results ? ActionKind::kCollect : ActionKind::kSave;
  }

  // Generates input, runs the job on `cluster`, returns results + metrics.
  RunResult Run(GeoCluster& cluster, std::uint64_t data_seed) {
    return Build(cluster, data_seed).Run(action());
  }

 protected:
  const WorkloadParams& params() const { return params_; }
  std::vector<double> Weights(const Topology& topo) const;

 private:
  WorkloadParams params_;
};

// Factory for "wordcount", "sort", "terasort", "pagerank", "naivebayes".
std::unique_ptr<Workload> MakeWorkload(std::string_view name,
                                       const WorkloadParams& params);

// The five workload names, in the paper's order.
const std::vector<std::string>& AllWorkloadNames();

}  // namespace gs
