// Synthetic input generation for the HiBench-style workloads.
//
// Generators are deterministic in the data seed and independent of the
// execution scheme, so all three schemes of one run process byte-identical
// inputs. Inputs are placed across datacenters with a configurable skew:
// by default 40% of blocks land in the first datacenter (where the
// driver/NameNode lives and ingest happens) and the rest spread evenly —
// geo-distributed but non-uniform, as in wide-area deployments.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/cluster.h"
#include "rdd/rdd.h"

namespace gs {

// Fraction of input bytes destined to each datacenter.
std::vector<double> DefaultDcWeights(int num_dcs);

// Distributes `partitions` record sets over worker nodes: datacenters get
// partition counts proportional to `dc_weights` (largest remainder), nodes
// within a datacenter round-robin.
std::vector<SourceRdd::Partition> PlacePartitions(
    const Topology& topo, std::vector<std::vector<Record>> partitions,
    const std::vector<double>& dc_weights);

// A deterministic vocabulary of `size` pseudo-words, 3-12 characters.
std::vector<std::string> MakeVocabulary(std::size_t size, Rng& rng);

// Lines of Zipf-distributed words totalling ~target_bytes.
std::vector<Record> MakeTextLines(Bytes target_bytes, int words_per_line,
                                  const std::vector<std::string>& vocab,
                                  const ZipfSampler& zipf, Rng& rng);

// Key alphabets for sortable record generation.
inline constexpr const char* kHexAlphabet = "0123456789abcdef";
// 64 printable characters spanning the ASCII range, for TeraSort-style
// high-entropy keys.
inline constexpr const char* kPrintableAlphabet =
    "!#$%&()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[]^_`{}~";

// Uniform-key records with 10-char keys over `key_alphabet`. When `vocab`
// is non-null, values are space-joined words (text-like, compressible);
// otherwise values are uniform random printable bytes (incompressible, as
// produced by gensort for TeraSort).
std::vector<Record> MakeKeyValueRecords(std::size_t count, int value_len,
                                        Rng& rng,
                                        const char* key_alphabet,
                                        const std::vector<std::string>* vocab);

// Evenly spaced two-character boundaries over `alphabet` for `num_shards`
// range partitions of 10-char uniform keys.
std::vector<std::string> UniformBoundaries(int num_shards,
                                           const char* alphabet);

// A power-law web graph: returns one record per page, key = page id,
// value = adjacency list (vector<string> of page ids).
std::vector<Record> MakeWebGraph(std::size_t num_pages, double avg_degree,
                                 Rng& rng);

// Labelled documents for NaiveBayes: key = class label, value = text.
std::vector<Record> MakeLabelledDocs(std::size_t num_docs, int num_classes,
                                     int terms_per_doc,
                                     const std::vector<std::string>& vocab,
                                     const ZipfSampler& zipf, Rng& rng);

}  // namespace gs
