// Job-service surface shared by GeoCluster and the Dataset facade.
//
// The engine is a multi-job *service*: GeoCluster::Submit enqueues a job
// and returns a JobHandle immediately; N submitted jobs share the
// executors and WAN links of one simulated cluster and run concurrently as
// the simulation advances. JobHandle::Wait() (or
// GeoCluster::RunUntilQuiescent()) drives the event loop to completion.
// Dataset::Run(ActionKind) remains the one-call synchronous path — a thin
// Submit + Wait. See docs/SERVICE.md.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "data/record.h"
#include "engine/metrics.h"
#include "engine/run_report.h"
#include "engine/trace.h"

namespace gs {

class GeoCluster;

// How a job's result stage delivers its output.
enum class ActionKind {
  kCollect,  // full partition contents flow to the driver
  kSave,     // output persists on the workers; only a small ack is sent
};

// Per-job submission options. The tenant name groups jobs for weighted
// fair sharing of executor slots (sched/task_scheduler.h); admission
// beyond ServiceConfig::max_concurrent_jobs queues by priority.
struct JobOptions {
  std::string tenant = "default";
  // Fair-share weight of this tenant's slot allocation (> 0). The last
  // submitted weight for a tenant wins.
  double weight = 1.0;
  // Admission order among queued jobs: higher first, FIFO among equals.
  int priority = 0;
  // Submit the job this much simulated time in the future (open-loop
  // arrival processes; see workloads/arrivals.h). The queueing-delay
  // clock starts at arrival, not at Submit().
  SimTime arrival_delay = 0;
  // Free-form label surfaced in the report's per-job row.
  std::string label;
};

// Everything one action produces. Move-only (the trace is owned).
struct RunResult {
  std::vector<Record> records;  // empty for kSave
  JobMetrics metrics;           // this job only
  // Spans recorded during the run; null unless RunConfig::observe.trace
  // turned tracing on. With concurrent jobs the collector is shared: each
  // finishing job takes every span recorded since the previous job
  // finished (use the cluster-level report for a cross-job view).
  std::unique_ptr<TraceCollector> trace;
  // Metrics snapshot, WAN-link utilization timeseries, cost and trace
  // summary. The registry/utilization/cost/jobs sections are cumulative
  // over the cluster's lifetime; `report.job` mirrors `metrics`.
  RunReport report;
};

// Handle to a submitted job. Cheap to copy; the result can be taken once.
class JobHandle {
 public:
  JobId id() const { return id_; }

  // True once the job finished and its result is ready to take.
  bool done() const;

  // Pumps the simulation until this job completes, then returns its
  // result. Must be called from outside the event loop (not from a
  // simulator callback); fatal if the result was already taken.
  RunResult Wait();

 private:
  friend class GeoCluster;
  JobHandle(GeoCluster* cluster, JobId id) : cluster_(cluster), id_(id) {}

  GeoCluster* cluster_;
  JobId id_;
};

}  // namespace gs
