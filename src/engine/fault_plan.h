// FaultPlan: a declarative schedule of infrastructure faults to inject.
//
// The paper's resilience claim (Fig. 2, Sec. IV) is that Push/Aggregate
// turns shuffle recovery from a wide-area re-fetch into a datacenter-local
// re-read. A FaultPlan lets any bench or test script the failures that
// exercise that claim: executor/node crashes (scheduled or random), WAN
// link degradation and flaps, and lost map-output blocks. The plan is part
// of RunConfig (RunConfig::fault.plan); GeoCluster materializes it into
// simulator events through the FaultInjector at construction time.
//
// All times are absolute simulated times (seconds since simulation start,
// shared across the jobs run on one GeoCluster).
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace gs {

// Crash of one worker node at a scheduled time. The node's executor slots
// disappear, every block it stored (input caches, shuffle files, pushed
// partitions) is lost, and tasks running on it are rescheduled elsewhere.
// Lost *map outputs* are discovered lazily, as in Spark: the driver keeps
// them registered until a reducer's fetch fails.
struct NodeCrashEvent {
  SimTime at = 0;
  NodeIndex node = kNoNode;
  // > 0: a fresh executor rejoins on the same host after this long (its
  // slots return; lost blocks stay lost). 0 = the node never comes back.
  SimTime restart_after = 0;
};

// Degrades one directed WAN link to `factor` x its (jittered) capacity for
// `duration`, then restores it. factor = 0 models a full outage: flows on
// the link stall and resume when capacity returns (TCP keeps the
// connection; the simulator keeps the flow). `symmetric` applies the same
// degradation to the reverse link.
struct LinkDegradationEvent {
  SimTime at = 0;
  DcIndex src = kNoDc;
  DcIndex dst = kNoDc;
  double factor = 1.0;
  SimTime duration = 0;  // 0 = permanent
  bool symmetric = true;
};

// Silently drops the shuffle blocks stored on a node (disk corruption /
// shuffle-service restart) without killing its executor. Discovered at
// fetch time like a crash's losses.
struct BlockLossEvent {
  SimTime at = 0;
  NodeIndex node = kNoNode;
};

// Poisson-process random crashes: worker crashes arrive with the given
// mean inter-arrival time; victims are drawn uniformly from the live
// workers. Crashed nodes rejoin after `restart_after` (must be > 0 so a
// long chaos run cannot drain the cluster).
struct RandomCrashSpec {
  SimTime mean_interarrival = 0;  // 0 = disabled
  SimTime restart_after = Seconds(30);
  int max_crashes = 4;
};

struct FaultPlan {
  std::vector<NodeCrashEvent> node_crashes;
  std::vector<LinkDegradationEvent> link_degradations;
  std::vector<BlockLossEvent> block_losses;
  RandomCrashSpec random_crashes;

  bool empty() const {
    return node_crashes.empty() && link_degradations.empty() &&
           block_losses.empty() && random_crashes.mean_interarrival <= 0;
  }
};

}  // namespace gs
