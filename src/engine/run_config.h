// Run configuration: scheme selection and engine knobs.
//
// Layout note (migration): failure and speculation knobs used to live flat
// on RunConfig (`reduce_failure_prob`, `failure_point`, `speculation`,
// `speculation_quantile`, `speculation_multiplier`). They are now grouped
// into the nested FaultConfig / SpeculationConfig structs below —
// `cfg.fault.reduce_failure_prob`, `cfg.speculation.enabled`, ... — and
// FaultConfig additionally carries the FaultPlan of scheduled
// infrastructure faults (see engine/fault_plan.h and docs/FAULTS.md).
//
// Observability followed the same move: tracing used to be switched on
// through the GeoCluster::EnableTracing() side channel and read back via
// cluster.trace()/last_job_metrics(). It is now configured up front on the
// nested ObservabilityConfig — `cfg.observe.trace = true`,
// `cfg.observe.metrics`, `cfg.observe.utilization_bucket` — and the
// recorded data comes back on the RunResult every action returns
// (result.trace, result.report; see engine/cluster.h and
// docs/OBSERVABILITY.md). The EnableTracing()/last_job_metrics() shims
// that briefly survived that move have since been removed.
//
// Transport knobs moved the same way: the push-retry knobs
// (`fault.max_push_retries`, `fault.push_retry_backoff`,
// `fault.push_backoff_factor`) now live on the nested TransportConfig —
// `cfg.transport.max_push_retries`, ... — next to the shuffle-transport
// selection and per-backend settings they belong with
// (engine/transport/transport.h, docs/TRANSPORTS.md). No shims were left
// behind.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "engine/fault_plan.h"
#include "exec/cost_model.h"
#include "netsim/network.h"
#include "sched/task_scheduler.h"

namespace gs {

// The three schemes evaluated in the paper (Sec. V-A, "Baselines").
enum class Scheme {
  kSpark,        // stock fetch-based shuffle, network-oblivious placement
  kCentralized,  // ship all raw input to one datacenter, then run there
  kAggShuffle,   // this paper: proactive Push/Aggregate via transferTo()
};

const char* SchemeName(Scheme scheme);

// Aggregator-datacenter selection policy for automatic transferTo().
// kLargestInput is the paper's choice (Sec. III-B/IV-D); the others exist
// for the ablation validating that analysis (bench_ablation_aggregator).
enum class AggregatorPolicy { kLargestInput, kRandom, kSmallestInput };

const char* AggregatorPolicyName(AggregatorPolicy policy);

// Fault injection knobs (the recovery response to a lost push lives on
// TransportConfig).
struct FaultConfig {
  // Probability that a reduce task fails on its first attempt, and the
  // fraction of its compute phase after which the failure strikes
  // (the paper's Fig. 2 experiment).
  double reduce_failure_prob = 0.0;
  double failure_point = 0.5;

  // Scheduled/random infrastructure faults (node crashes, WAN link flaps,
  // block losses). Empty by default.
  FaultPlan plan;
};

// Which mechanism moves a produced shard's bytes to its consumers
// (engine/transport/transport.h, docs/TRANSPORTS.md).
enum class TransportKind {
  kDirect,       // node-to-node flows (the paper's model; the default)
  kObjectStore,  // stage shards through a rate-limited storage tier
  kFabric,       // RDMA-class intra-DC fabric; WAN legs stay direct
};

const char* TransportKindName(TransportKind kind);

// ObjectStoreTransport backend settings. Rates and prices describe the
// full-scale system; GeoCluster divides the rate by RunConfig::scale like
// every other capacity, so time and traffic ratios are preserved at bench
// scales. Pricing fields mirror netsim/pricing.h::ObjectStoreTariff.
struct ObjectStoreConfig {
  // Datacenter hosting the staging bucket. kNoDc (default) stages each
  // shard in its producer's own datacenter — PUTs stay local and only the
  // GET crosses the WAN, so cross-DC volume matches the direct transport.
  DcIndex dc = kNoDc;

  // Aggregate ingest+egress throughput of one datacenter's store tier
  // (full scale; shared max-min by that tier's PUT and GET flows).
  Rate rate = Gbps(4);

  // Request round-trip added to a leg's connection setup.
  SimTime put_latency = Millis(30);
  SimTime get_latency = Millis(30);

  // USD per GiB (see ObjectStoreTariff for semantics).
  double put_usd_per_gib = 0.005;
  double get_usd_per_gib = 0.0005;
  double storage_usd_per_gib = 0.001;
  double transfer_usd_per_gib = 0.05;
};

// FabricTransport backend settings: an RDMA-class intra-DC interconnect.
// Shuffle legs inside one datacenter bypass both endpoint NICs and share
// the fabric's aggregate capacity instead; the histogram exchange that
// precomputes receive areas (partition-size agreement before the one-sided
// writes) is modeled as a fixed setup latency per transfer.
struct FabricConfig {
  // Aggregate fabric capacity per datacenter (full scale; divided by
  // RunConfig::scale by GeoCluster).
  Rate rate = Gbps(40);
  SimTime exchange_latency = Millis(2);
};

// Shuffle-transport selection, the per-backend settings, and the
// transfer-recovery knobs that apply to whichever backend runs.
struct TransportConfig {
  TransportKind kind = TransportKind::kDirect;

  // Transfer-push recovery: when a receiver's node dies, the push is
  // retried against a fresh node in the aggregator datacenter after an
  // exponential backoff (base * factor^(attempt-1)). Once max_push_retries
  // is exhausted the transfer degrades to the producer's own node — a
  // co-located no-op — and downstream reducers fall back to fetching that
  // partition over the WAN (push -> fetch fallback).
  int max_push_retries = 4;
  SimTime push_retry_backoff = Seconds(1);
  double push_backoff_factor = 2.0;

  ObjectStoreConfig object_store;
  FabricConfig fabric;
};

// Adaptive aggregator placement and mid-job replanning (docs/ADAPTIVE.md).
// Off by default: with `enabled` false the engine runs the paper's static
// Eq. 2 chooser and RunReports stay byte-identical to non-adaptive builds.
// When enabled, aggregator datacenters are ranked by *effective measured
// bandwidth* (netsim's decayed utilization estimate) instead of input
// volume alone, and WAN degradation events re-run the policy mid-job for
// receiver shards that have not started.
struct AdaptiveConfig {
  bool enabled = false;

  // Trailing window of the per-link bandwidth estimate: utilization
  // buckets older than this are (exponentially) discounted. <= 0 falls
  // back to the instantaneous link capacity (no measured component).
  SimTime bandwidth_window = Seconds(10);

  // A link counts as degraded — triggering the per-shard push->fetch
  // fallback — when its estimated bandwidth drops below this fraction of
  // its base rate. In [0, 1]; 0 never falls back.
  double degrade_threshold = 0.1;

  // Hysteresis of the replanner: a receiver shard only moves when the
  // best alternative datacenter's estimated aggregation time beats the
  // current one by at least this factor (>= 1; 1 = move on any
  // improvement). Damps oscillation between near-equal datacenters.
  double hysteresis = 1.5;

  // Minimum spacing between replanner passes of one job; degradation
  // events inside the window are absorbed by the next pass.
  SimTime min_replan_interval = Seconds(1);

  // Forces every automatic transferTo into this datacenter and disables
  // replanning — the "offline oracle" backend used by bench_adaptive to
  // bound how much any online policy could win. kNoDc = disabled.
  DcIndex pin_dc = kNoDc;
};

// Coded shuffle (docs/CODED.md): trade map compute for WAN bytes, after
// Coded MapReduce. Off by default — with `enabled` false nothing in the
// engine's behaviour changes and RunReports stay byte-identical to
// non-coded builds. When enabled (baseline fetch scheme only), every map
// partition executes in `redundancy_r` datacenters instead of one. The
// replication overlap then lets the shuffle serve most shard segments from
// a replica inside the consuming datacenter (zero WAN bytes) and deliver
// XOR-coded groups of the rest as single multicast packets
// (netsim::StartMulticastFlow, FlowKind::kCodedMulticast), with residual
// uncoded segments falling back to plain unicast fetches. The WAN volume
// drops from ~(K-1)/K of the shuffle to ~(K-r)/K on K datacenters; the
// price is (r-1)x the map compute, accounted per job
// (JobMetrics::coded_replica_compute_seconds).
struct CodedConfig {
  bool enabled = false;

  // Datacenters each map partition executes in: its home DC plus the next
  // r-1 in a deterministic ring. Validated at Submit: 1 <= redundancy_r <=
  // number of datacenters (r = 1 degenerates to no replication and no
  // coding gain, but stays a valid configuration).
  int redundancy_r = 2;

  // Maximum shard segments XOR-ed into one coded packet; the effective
  // group size is additionally capped by the decodability condition
  // (every receiver must already hold the other r-1 segments). <= 0 means
  // redundancy_r.
  int max_group = 0;
};

// Speculative execution (spark.speculation, off by default as in Spark):
// once `quantile` of a stage's tasks finished, a running task slower than
// `multiplier` x the median duration gets a backup copy; the first attempt
// to finish wins. Interacts with the shuffle mechanism: a speculated
// *reducer* re-fetches its input — over the WAN under fetch-based shuffle,
// locally under Push/Aggregate.
struct SpeculationConfig {
  bool enabled = false;
  double quantile = 0.75;
  double multiplier = 1.5;
};

// Multi-job service knobs (engine/job_api.h, docs/SERVICE.md).
struct ServiceConfig {
  // Jobs allowed to execute concurrently; arrivals beyond the cap wait in
  // the admission queue (highest JobOptions::priority first, FIFO among
  // equals). <= 0 means unlimited.
  int max_concurrent_jobs = 0;
};

// What a run records and reports (docs/OBSERVABILITY.md). All collection
// happens on the single-threaded event loop, so everything here is
// deterministic in the seed and independent of compute_threads.
struct ObservabilityConfig {
  // Registry-backed counters/gauges/histograms across simcore, netsim,
  // sched, storage and engine, exported into RunResult::report. Cheap
  // (atomic bumps); with metrics off, instrumented call sites reduce to a
  // null-pointer check.
  bool metrics = true;

  // Record task/stage/flow spans into RunResult::trace (the WebUI-style
  // visualization of Sec. IV-E).
  bool trace = false;

  // Bucket width of the per-WAN-link bandwidth-utilization timeseries in
  // RunResult::report. <= 0 disables the timeseries; it is only collected
  // while `metrics` is true.
  SimTime utilization_bucket = Seconds(1);

  // Per-region egress $/GiB for the report's cost section, indexed by
  // DcIndex. Empty (or wrongly sized) falls back to a uniform 0.09 $/GiB
  // (WanPricing::Uniform); geosim and the bench harness install
  // WanPricing::Ec2SixRegionTariff().
  std::vector<double> egress_usd_per_gib;
};

struct RunConfig {
  Scheme scheme = Scheme::kSpark;
  std::uint64_t seed = 1;

  // Data volumes and rates are both divided by `scale` relative to the
  // paper's full-size experiment, which preserves all time and traffic
  // ratios while letting benches run in seconds (see DESIGN.md). The
  // topology and cost model passed to GeoCluster must be built with the
  // same scale.
  double scale = 100.0;

  NetworkConfig net;
  TaskSchedulerConfig sched;
  CostModel cost;  // already scaled by the caller (CostModel::Scaled)

  // AggShuffle: insert transferTo() before every shuffle automatically
  // (spark.shuffle.aggregation). When false, only explicit transferTo()
  // calls in application code take effect.
  bool auto_aggregation = true;

  TransportConfig transport;
  AdaptiveConfig adaptive;
  CodedConfig coded;
  FaultConfig fault;
  SpeculationConfig speculation;
  ServiceConfig service;
  ObservabilityConfig observe;

  // Centralized: destination datacenter; kNoDc = the one already holding
  // the most input bytes.
  DcIndex central_dc = kNoDc;

  // Reducer placement preference threshold: a node is preferred for a
  // reduce task if it stores at least this fraction of the shard's input
  // (Spark's REDUCER_PREF_LOCS_FRACTION).
  double reducer_pref_fraction = 0.2;

  // Ablation knobs.
  AggregatorPolicy aggregator_policy = AggregatorPolicy::kLargestInput;
  // Aggregate shuffle input into this many datacenters (Sec. III-C:
  // "aggregating all shuffle input into a subset of datacenters which
  // store the largest fractions"; the paper evaluates 1). Larger values
  // trade extra cross-datacenter reduce traffic for more ingress bandwidth
  // and compute headroom; num_datacenters approximates iShuffle-style
  // spread shuffle-on-write.
  int aggregator_dc_count = 1;
  // Skip map-side combining before shuffle writes and transfer pushes
  // (Sec. IV-C3); results stay correct via the reduce-side combine.
  bool disable_map_side_combine = false;

  // Worker threads of the compute ThreadPool that executes tasks' real
  // record transformations off the (single-threaded) event loop. 0 picks
  // the host's hardware concurrency. Results, event order, and metrics
  // are identical for every value — compute jobs are pure and joined at
  // fixed simulation events (docs/PERF.md) — so this only changes how
  // fast a run finishes in wall-clock time.
  int compute_threads = 0;
};

}  // namespace gs
