// Run configuration: scheme selection and engine knobs.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "exec/cost_model.h"
#include "netsim/network.h"
#include "sched/task_scheduler.h"

namespace gs {

// The three schemes evaluated in the paper (Sec. V-A, "Baselines").
enum class Scheme {
  kSpark,        // stock fetch-based shuffle, network-oblivious placement
  kCentralized,  // ship all raw input to one datacenter, then run there
  kAggShuffle,   // this paper: proactive Push/Aggregate via transferTo()
};

const char* SchemeName(Scheme scheme);

// Aggregator-datacenter selection policy for automatic transferTo().
// kLargestInput is the paper's choice (Sec. III-B/IV-D); the others exist
// for the ablation validating that analysis (bench_ablation_aggregator).
enum class AggregatorPolicy { kLargestInput, kRandom, kSmallestInput };

const char* AggregatorPolicyName(AggregatorPolicy policy);

struct RunConfig {
  Scheme scheme = Scheme::kSpark;
  std::uint64_t seed = 1;

  // Data volumes and rates are both divided by `scale` relative to the
  // paper's full-size experiment, which preserves all time and traffic
  // ratios while letting benches run in seconds (see DESIGN.md). The
  // topology and cost model passed to GeoCluster must be built with the
  // same scale.
  double scale = 100.0;

  NetworkConfig net;
  TaskSchedulerConfig sched;
  CostModel cost;  // already scaled by the caller (CostModel::Scaled)

  // AggShuffle: insert transferTo() before every shuffle automatically
  // (spark.shuffle.aggregation). When false, only explicit transferTo()
  // calls in application code take effect.
  bool auto_aggregation = true;

  // Probability that a reduce task fails on its first attempt, and the
  // fraction of its compute phase after which the failure strikes.
  double reduce_failure_prob = 0.0;
  double failure_point = 0.5;

  // Speculative execution (spark.speculation, off by default as in Spark):
  // once `speculation_quantile` of a stage's tasks finished, a running task
  // slower than `speculation_multiplier` x the median duration gets a
  // backup copy; the first attempt to finish wins. Interacts with the
  // shuffle mechanism: a speculated *reducer* re-fetches its input — over
  // the WAN under fetch-based shuffle, locally under Push/Aggregate.
  bool speculation = false;
  double speculation_quantile = 0.75;
  double speculation_multiplier = 1.5;

  // Centralized: destination datacenter; kNoDc = the one already holding
  // the most input bytes.
  DcIndex central_dc = kNoDc;

  // Reducer placement preference threshold: a node is preferred for a
  // reduce task if it stores at least this fraction of the shard's input
  // (Spark's REDUCER_PREF_LOCS_FRACTION).
  double reducer_pref_fraction = 0.2;

  // Ablation knobs.
  AggregatorPolicy aggregator_policy = AggregatorPolicy::kLargestInput;
  // Aggregate shuffle input into this many datacenters (Sec. III-C:
  // "aggregating all shuffle input into a subset of datacenters which
  // store the largest fractions"; the paper evaluates 1). Larger values
  // trade extra cross-datacenter reduce traffic for more ingress bandwidth
  // and compute headroom; num_datacenters approximates iShuffle-style
  // spread shuffle-on-write.
  int aggregator_dc_count = 1;
  // Skip map-side combining before shuffle writes and transfer pushes
  // (Sec. IV-C3); results stay correct via the reduce-side combine.
  bool disable_map_side_combine = false;
};

}  // namespace gs
