#include "engine/cluster.h"

#include <cmath>
#include <functional>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "dag/dag_scheduler.h"
#include "engine/dataset.h"
#include "engine/fault_injector.h"
#include "engine/job_runner.h"
#include "engine/transport/transport.h"
#include "netsim/pricing.h"

namespace gs {

namespace {

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0; }

// Rejects malformed transport/pricing inputs up front, when the config is
// locked in at cluster construction (i.e. before any Submit), instead of
// letting a negative rate or NaN price propagate silently through the
// max-min solver and the cost report.
void ValidateConfig(const RunConfig& cfg, const Topology& topo) {
  const TransportConfig& t = cfg.transport;
  GS_CHECK_MSG(t.max_push_retries >= 0,
               "transport.max_push_retries must be >= 0");
  GS_CHECK_MSG(FiniteNonNegative(t.push_retry_backoff),
               "transport.push_retry_backoff must be finite and >= 0");
  GS_CHECK_MSG(std::isfinite(t.push_backoff_factor) &&
                   t.push_backoff_factor > 0,
               "transport.push_backoff_factor must be finite and > 0");

  const ObjectStoreConfig& os = t.object_store;
  GS_CHECK_MSG(os.dc == kNoDc ||
                   (os.dc >= 0 && os.dc < topo.num_datacenters()),
               "transport.object_store.dc out of range");
  GS_CHECK_MSG(std::isfinite(os.rate) && os.rate > 0,
               "transport.object_store.rate must be finite and > 0");
  GS_CHECK_MSG(FiniteNonNegative(os.put_latency) &&
                   FiniteNonNegative(os.get_latency),
               "transport.object_store latencies must be finite and >= 0");
  GS_CHECK_MSG(FiniteNonNegative(os.put_usd_per_gib) &&
                   FiniteNonNegative(os.get_usd_per_gib) &&
                   FiniteNonNegative(os.storage_usd_per_gib) &&
                   FiniteNonNegative(os.transfer_usd_per_gib),
               "transport.object_store prices must be finite and >= 0");

  GS_CHECK_MSG(std::isfinite(t.fabric.rate) && t.fabric.rate > 0,
               "transport.fabric.rate must be finite and > 0");
  GS_CHECK_MSG(FiniteNonNegative(t.fabric.exchange_latency),
               "transport.fabric.exchange_latency must be finite and >= 0");

  for (double rate : cfg.observe.egress_usd_per_gib) {
    GS_CHECK_MSG(FiniteNonNegative(rate),
                 "observe.egress_usd_per_gib must be finite and >= 0");
  }

  // Adaptive knobs are validated whether or not adaptivity is enabled: a
  // config carrying a NaN threshold is malformed even if this run never
  // reads it (the same rule the transport knobs above follow).
  const AdaptiveConfig& a = cfg.adaptive;
  GS_CHECK_MSG(FiniteNonNegative(a.bandwidth_window),
               "adaptive.bandwidth_window must be finite and >= 0");
  GS_CHECK_MSG(std::isfinite(a.degrade_threshold) &&
                   a.degrade_threshold >= 0 && a.degrade_threshold <= 1,
               "adaptive.degrade_threshold must be in [0, 1]");
  GS_CHECK_MSG(std::isfinite(a.hysteresis) && a.hysteresis >= 1,
               "adaptive.hysteresis must be finite and >= 1");
  GS_CHECK_MSG(FiniteNonNegative(a.min_replan_interval),
               "adaptive.min_replan_interval must be finite and >= 0");
  GS_CHECK_MSG(a.pin_dc == kNoDc ||
                   (a.pin_dc >= 0 && a.pin_dc < topo.num_datacenters()),
               "adaptive.pin_dc out of range");

  // Coded-shuffle knobs (docs/CODED.md). Checked only with coding on: the
  // default redundancy_r = 2 must not reject single-datacenter topologies
  // that never code.
  const CodedConfig& c = cfg.coded;
  if (c.enabled) {
    GS_CHECK_MSG(c.redundancy_r >= 1,
                 "coded.redundancy_r must be >= 1, got " << c.redundancy_r);
    GS_CHECK_MSG(c.redundancy_r <= topo.num_datacenters(),
                 "coded.redundancy_r (" << c.redundancy_r
                                        << ") exceeds the datacenter count ("
                                        << topo.num_datacenters() << ")");
    GS_CHECK_MSG(cfg.scheme == Scheme::kSpark,
                 "coded shuffle replaces the baseline fetch path; it cannot "
                 "combine with "
                     << SchemeName(cfg.scheme));
  }
}

}  // namespace

const char* AggregatorPolicyName(AggregatorPolicy policy) {
  switch (policy) {
    case AggregatorPolicy::kLargestInput: return "largest-input";
    case AggregatorPolicy::kRandom: return "random";
    case AggregatorPolicy::kSmallestInput: return "smallest-input";
  }
  return "unknown";
}

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSpark: return "Spark";
    case Scheme::kCentralized: return "Centralized";
    case Scheme::kAggShuffle: return "AggShuffle";
  }
  return "unknown";
}

GeoCluster::GeoCluster(Topology topo, RunConfig config)
    : topo_(std::move(topo)),
      config_(config),
      root_rng_(config.seed) {
  GS_CHECK(topo_.num_nodes() > 0);
  ValidateConfig(config_, topo_);
  if (config_.observe.metrics) {
    registry_ = std::make_unique<MetricsRegistry>();
    sim_.AttachMetrics(&registry_->counter("simcore.events_scheduled"),
                       &registry_->counter("simcore.events_executed"));
    sim_.AttachQueueHealthMetrics(
        &registry_->gauge("simcore.cancelled_pending"),
        &registry_->counter("simcore.heap_compactions"));
  }
  network_ = std::make_unique<Network>(sim_, topo_, config_.net,
                                       root_rng_.Split("net-jitter"),
                                       registry_.get());
  // Must precede any flow: backends register their service resources here.
  transport_ = MakeTransport(config_.transport, config_.scale, sim_,
                             *network_, registry_.get());
  if (registry_ != nullptr && config_.observe.utilization_bucket > 0) {
    network_->EnableUtilization(config_.observe.utilization_bucket);
  }
  blocks_ =
      std::make_unique<BlockManager>(topo_.num_nodes(), registry_.get());
  scheduler_ = std::make_unique<TaskScheduler>(sim_, topo_, config_.sched,
                                               registry_.get());
  disk_ = std::make_unique<DiskModel>(sim_, topo_.num_nodes(),
                                      config_.cost.disk_read_rate,
                                      config_.cost.disk_write_rate,
                                      registry_.get());
  // An explicit --threads choice is honored exactly (tests rely on forcing
  // real interleaving); the default is clamped to the host width, where
  // oversubscribing pure compute only costs context switches.
  compute_pool_ = config_.compute_threads > 0
                      ? std::make_unique<ThreadPool>(config_.compute_threads,
                                                     ThreadPool::Width::kExact)
                      : std::make_unique<ThreadPool>(
                            ThreadPool::HardwareConcurrency());
  network_->SetSolverPool(compute_pool_.get());
  // The driver is the first non-worker node; if all nodes are workers,
  // node 0 doubles as the driver.
  driver_node_ = 0;
  for (NodeIndex n = 0; n < topo_.num_nodes(); ++n) {
    if (!topo_.node(n).worker) {
      driver_node_ = n;
      break;
    }
  }
  if (!config_.fault.plan.empty()) {
    faults_ = std::make_unique<FaultInjector>(*this, config_.fault.plan,
                                              root_rng_.Split("faults"));
  }
  if (config_.observe.trace) StartTraceRecording();
}

GeoCluster::~GeoCluster() = default;

Dataset GeoCluster::CreateSource(
    std::string name, std::vector<SourceRdd::Partition> partitions) {
  auto rdd = std::make_shared<SourceRdd>(NextRddId(), std::move(name),
                                         std::move(partitions));
  return Dataset(this, std::move(rdd));
}

Dataset GeoCluster::Parallelize(std::string name,
                                const std::vector<Record>& records,
                                int partitions_per_dc) {
  GS_CHECK(partitions_per_dc > 0);
  // Enumerate worker nodes round-robin across datacenters. Indexing must
  // be over each datacenter's *workers*: mixing in non-worker nodes (the
  // dedicated driver) would skip a worker slot and silently drop the
  // partition whenever k mod node-count lands on the driver.
  std::vector<std::vector<NodeIndex>> workers_in(
      static_cast<std::size_t>(topo_.num_datacenters()));
  for (DcIndex dc = 0; dc < topo_.num_datacenters(); ++dc) {
    for (NodeIndex n : topo_.nodes_in(dc)) {
      if (topo_.node(n).worker) {
        workers_in[static_cast<std::size_t>(dc)].push_back(n);
      }
    }
  }
  std::vector<NodeIndex> nodes;
  for (int k = 0; k < partitions_per_dc; ++k) {
    for (DcIndex dc = 0; dc < topo_.num_datacenters(); ++dc) {
      const auto& workers = workers_in[static_cast<std::size_t>(dc)];
      if (workers.empty()) continue;
      nodes.push_back(workers[static_cast<std::size_t>(
          k % static_cast<int>(workers.size()))]);
    }
  }
  GS_CHECK(!nodes.empty());
  const std::size_t per =
      (records.size() + nodes.size() - 1) / nodes.size();
  std::vector<SourceRdd::Partition> partitions;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::vector<Record> chunk;
    const std::size_t begin = i * per;
    const std::size_t end = std::min(records.size(), begin + per);
    if (begin < end) {
      chunk.assign(records.begin() + begin, records.begin() + end);
    }
    SourceRdd::Partition part;
    part.records = MakeRecords(std::move(chunk));
    part.node = nodes[i];
    part.bytes = SerializedSize(*part.records);
    partitions.push_back(std::move(part));
  }
  return CreateSource(std::move(name), std::move(partitions));
}

void GeoCluster::StartTraceRecording() {
  if (!trace_) {
    trace_ = std::make_unique<TraceCollector>();
    network_->SetFlowObserver([this](const FlowRecord& f) {
      TraceSpan span;
      span.kind = TraceSpan::Kind::kFlow;
      span.category = FlowKindName(f.kind);
      span.dc = topo_.dc_of(f.src);
      span.peer_dc = topo_.dc_of(f.dst);
      span.node = f.src;
      span.bytes = f.bytes;
      span.start = f.started;
      span.end = f.finished;
      std::ostringstream name;
      name << FlowKindName(f.kind) << " " << topo_.node(f.src).name << " -> "
           << topo_.node(f.dst).name;
      span.name = name.str();
      trace_->Add(std::move(span));
    });
  }
}

NodeIndex GeoCluster::SourceLocation(const SourceRdd& rdd,
                                     int partition) const {
  const std::int64_t key =
      (static_cast<std::int64_t>(rdd.id()) << 32) | partition;
  auto it = relocations_.find(key);
  NodeIndex home =
      it != relocations_.end() ? it->second : rdd.partition(partition).node;
  if (scheduler_->node_up(home)) return home;
  // The home node is down: HDFS keeps replicas within the datacenter, so
  // read from a live worker there instead.
  for (NodeIndex n : topo_.nodes_in(topo_.dc_of(home))) {
    if (topo_.node(n).worker && scheduler_->node_up(n)) return n;
  }
  return home;  // no live replica holder; keep the original location
}

void GeoCluster::CrashNode(NodeIndex node, SimTime restart_after) {
  GS_CHECK(node >= 0 && node < topo_.num_nodes());
  GS_CHECK_MSG(topo_.node(node).worker, "cannot crash the driver");
  if (!scheduler_->node_up(node)) return;  // already down
  GS_LOG_INFO << "node crash: " << topo_.node(node).name
              << " at t=" << sim_.Now()
              << (restart_after > 0 ? " (will restart)" : "");
  scheduler_->SetNodeDown(node);
  blocks_->DropNode(node);
  // Notify every executing job, in job-id order (determinism).
  for (const auto& js : jobs_) {
    if (js->runner != nullptr) js->runner->OnNodeCrashed(node);
  }
  if (restart_after > 0) {
    sim_.Schedule(restart_after, [this, node] { RestartNode(node); });
  }
}

void GeoCluster::RestartNode(NodeIndex node) {
  GS_LOG_INFO << "node restart: " << topo_.node(node).name
              << " at t=" << sim_.Now();
  scheduler_->SetNodeUp(node);
}

void GeoCluster::LoseShuffleBlocks(NodeIndex node) {
  blocks_->DropKindOnNode(node, BlockId::Kind::kShuffle);
}

void GeoCluster::SetWanDegradation(DcIndex src, DcIndex dst, double factor,
                                   bool symmetric) {
  network_->SetWanDegradation(src, dst, factor);
  if (symmetric) network_->SetWanDegradation(dst, src, factor);
  // Notify every executing job, in job-id order (determinism); the runner
  // no-ops unless adaptive replanning is on.
  for (const auto& js : jobs_) {
    if (js->runner != nullptr) js->runner->OnWanDegraded(src, dst);
  }
}

RddPtr GeoCluster::MaybeRewrite(const RddPtr& final_rdd) {
  if (config_.scheme != Scheme::kAggShuffle || !config_.auto_aggregation) {
    return final_rdd;
  }
  // A memo shared across actions keeps rewritten nodes (and thus cache
  // identities) stable from one job to the next.
  auto it = rewrite_memo_.find(final_rdd.get());
  if (it != rewrite_memo_.end()) return it->second;
  RddPtr rewritten = InsertTransfersBeforeShuffles(
      final_rdd, [this] { return NextRddId(); });
  // Remember the mapping for every node by re-walking both graphs is
  // unnecessary: memoize the root only; shared subtrees are preserved by
  // the rewriter itself via structural sharing.
  rewrite_memo_.emplace(final_rdd.get(), rewritten);
  return rewritten;
}

DcIndex GeoCluster::ChooseCentralDc(const RddPtr& final_rdd) const {
  std::vector<Bytes> per_dc(topo_.num_datacenters(), 0);
  std::vector<const Rdd*> visited;
  std::function<void(const Rdd&)> walk = [&](const Rdd& rdd) {
    for (const Rdd* v : visited) {
      if (v == &rdd) return;
    }
    visited.push_back(&rdd);
    if (rdd.kind() == RddKind::kSource) {
      const auto& src = static_cast<const SourceRdd&>(rdd);
      for (int p = 0; p < src.num_partitions(); ++p) {
        per_dc[topo_.dc_of(SourceLocation(src, p))] +=
            src.partition(p).bytes;
      }
    }
    for (const RddPtr& parent : rdd.parents()) walk(*parent);
  };
  walk(*final_rdd);
  DcIndex best = 0;
  for (DcIndex dc = 1; dc < topo_.num_datacenters(); ++dc) {
    if (per_dc[dc] > per_dc[best]) best = dc;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Job service
// ---------------------------------------------------------------------------

JobHandle GeoCluster::Submit(const RddPtr& final_rdd, ActionKind action,
                             JobOptions opts) {
  GS_CHECK(final_rdd != nullptr);
  GS_CHECK_MSG(opts.weight > 0, "JobOptions::weight must be positive");
  GS_CHECK_MSG(opts.arrival_delay >= 0, "negative arrival_delay");
  const JobId id = next_job_id_++;
  GS_CHECK(static_cast<std::size_t>(id) == jobs_.size());
  auto js = std::make_unique<JobState>();
  js->id = id;
  js->opts = std::move(opts);
  js->action = action;
  js->rdd = final_rdd;
  const SimTime delay = js->opts.arrival_delay;
  jobs_.push_back(std::move(js));
  if (registry_ != nullptr) {
    registry_->counter("service.jobs_submitted").Add(1);
  }
  if (delay > 0) {
    sim_.Schedule(delay, [this, id] { ArriveJob(id); });
  } else {
    ArriveJob(id);
  }
  return JobHandle(this, id);
}

RunResult GeoCluster::RunJob(const RddPtr& final_rdd, ActionKind action) {
  return Submit(final_rdd, action).Wait();
}

void GeoCluster::RunUntilQuiescent() {
  sim_.Run();
  for (const auto& js : jobs_) {
    GS_CHECK_MSG(js->finalized,
                 "simulation drained before job " << js->id
                 << " completed — a task or flow was lost");
  }
  ReapRunners();
}

void GeoCluster::ReapRunners() {
  // Only safe at full quiescence: a finalized job's runner can still be
  // the target of queued events (epoch-guarded stale callbacks, and live
  // speculative backups that finish — and release their executor slots —
  // after the result stage). Destroying it earlier would fire those events
  // into freed memory and leak the backups' slots.
  for (const auto& js : jobs_) {
    if (js->finalized) js->runner.reset();
  }
}

void GeoCluster::ArriveJob(JobId id) {
  JobState& js = *jobs_[static_cast<std::size_t>(id)];
  js.submitted_at = sim_.Now();
  admission_queue_.push_back(id);
  TryAdmit();
}

void GeoCluster::TryAdmit() {
  const int cap = config_.service.max_concurrent_jobs;
  while (!admission_queue_.empty() && (cap <= 0 || running_jobs_ < cap)) {
    // Highest priority first; FIFO (arrival order) among equals.
    std::size_t best = 0;
    for (std::size_t i = 1; i < admission_queue_.size(); ++i) {
      if (jobs_[static_cast<std::size_t>(admission_queue_[i])]->opts.priority >
          jobs_[static_cast<std::size_t>(admission_queue_[best])]
              ->opts.priority) {
        best = i;
      }
    }
    const JobId id = admission_queue_[best];
    admission_queue_.erase(admission_queue_.begin() +
                           static_cast<std::ptrdiff_t>(best));
    AdmitJob(*jobs_[static_cast<std::size_t>(id)]);
  }
  if (registry_ != nullptr) {
    registry_->gauge("service.queued_jobs").Set(queued_jobs());
    registry_->gauge("service.running_jobs").Set(running_jobs_);
  }
}

void GeoCluster::AdmitJob(JobState& js) {
  GS_CHECK(!js.admitted);
  js.admitted = true;
  ++running_jobs_;
  const SimTime queue_delay = sim_.Now() - js.submitted_at;
  if (registry_ != nullptr) {
    registry_->counter("service.jobs_admitted").Add(1);
    // 0.1s .. ~6500s in x3 steps, like engine.task_duration_s.
    const std::vector<double> bounds = ExponentialBounds(0.1, 3, 11);
    registry_->histogram("service.queue_delay_s", bounds)
        .Observe(queue_delay);
    registry_
        ->histogram("service.tenant." + js.opts.tenant + ".queue_delay_s",
                    bounds)
        .Observe(queue_delay);
  }
  GS_LOG_INFO << "job " << js.id << " (" << SchemeName(config_.scheme)
              << ", tenant " << js.opts.tenant << ") starting at t="
              << sim_.Now() << (queue_delay > 0 ? " after queueing" : "");
  const int tenant = TenantIndex(js.opts.tenant);
  scheduler_->SetTenantWeight(tenant, js.opts.weight);
  js.runner = std::make_unique<JobRunner>(
      *this, MaybeRewrite(js.rdd), js.action,
      root_rng_.Split(static_cast<std::uint64_t>(js.id) + 17), js.id,
      tenant);
  js.runner->Start();
}

void GeoCluster::OnRunnerDone(JobId id) {
  // Finalization is deferred one event so the runner's own call stack
  // fully unwinds first.
  sim_.Schedule(0, [this, id] { FinalizeJob(id); });
}

void GeoCluster::FinalizeJob(JobId id) {
  JobState& js = *jobs_[static_cast<std::size_t>(id)];
  GS_CHECK(js.runner != nullptr && js.runner->done());
  js.result = js.runner->TakeResult();
  // The runner itself stays alive until quiescence (ReapRunners): its
  // speculative backups may still be running and must complete to give
  // their slots back.
  --running_jobs_;

  js.result.metrics.job_id = id;
  js.result.metrics.tenant = js.opts.tenant;
  js.result.metrics.submitted = js.submitted_at;

  RunReport::JobRow row;
  row.job_id = id;
  row.tenant = js.opts.tenant;
  row.label = js.opts.label;
  row.submitted = js.submitted_at;
  row.started = js.result.metrics.started;
  row.completed = js.result.metrics.completed;
  row.cross_dc_bytes = js.result.metrics.cross_dc_bytes;
  row.task_failures = js.result.metrics.task_failures;
  job_rows_.push_back(row);

  if (registry_ != nullptr) {
    registry_->counter("service.jobs_completed").Add(1);
    const std::vector<double> bounds = ExponentialBounds(0.1, 3, 11);
    registry_->histogram("service.jct_s", bounds).Observe(row.jct());
    registry_->histogram("service.tenant." + js.opts.tenant + ".jct_s",
                         bounds)
        .Observe(row.jct());
  }
  if (trace_) {
    js.result.trace = std::make_unique<TraceCollector>(std::move(*trace_));
    trace_->Clear();
  }
  // The RunReport snapshot is deferred to TakeJobResult: cluster-wide
  // counters keep moving while the job's trailing events (stale fetches,
  // speculative backups) drain, and the sync path reports them settled.
  js.finalized = true;
  GS_LOG_INFO << "job " << id << " finished in " << js.result.metrics.jct()
              << "s, cross-DC " << ToMiB(js.result.metrics.cross_dc_bytes)
              << " MiB";
  // A finished job may free admission room for queued arrivals.
  TryAdmit();
}

bool GeoCluster::JobFinalized(JobId id) const {
  GS_CHECK(id >= 0 && static_cast<std::size_t>(id) < jobs_.size());
  return jobs_[static_cast<std::size_t>(id)]->finalized;
}

RunResult GeoCluster::TakeJobResult(JobId id) {
  GS_CHECK(id >= 0 && static_cast<std::size_t>(id) < jobs_.size());
  JobState& js = *jobs_[static_cast<std::size_t>(id)];
  while (!js.finalized) {
    GS_CHECK_MSG(sim_.Step(),
                 "simulation drained before job " << id
                 << " completed — a task or flow was lost");
  }
  // With no other job in flight, drain the trailing events the job left
  // behind (speculative backups, expired timers) so a synchronous Run()
  // ends quiescent, exactly like the pre-service single-job loop.
  if (running_jobs_ == 0 && admission_queue_.empty()) {
    sim_.Run();
    ReapRunners();
  }
  GS_CHECK_MSG(!js.taken, "result of job " << id << " already taken");
  js.taken = true;
  js.result.report = BuildReport(js.result.metrics, js.result.trace.get());
  return std::move(js.result);
}

int GeoCluster::TenantIndex(const std::string& name) {
  auto it = tenant_ids_.find(name);
  if (it != tenant_ids_.end()) return it->second;
  const int id = static_cast<int>(tenant_ids_.size());
  tenant_ids_.emplace(name, id);
  return id;
}

bool JobHandle::done() const { return cluster_->JobFinalized(id_); }

RunResult JobHandle::Wait() { return cluster_->TakeJobResult(id_); }

RunReport GeoCluster::BuildReport(const JobMetrics& job,
                                  const TraceCollector* trace) const {
  RunReport report;
  report.scheme = SchemeName(config_.scheme);
  report.seed = config_.seed;
  report.scale = config_.scale;
  report.num_datacenters = topo_.num_datacenters();
  report.num_nodes = topo_.num_nodes();
  report.job = job;
  report.jobs = job_rows_;

  if (registry_ != nullptr) {
    report.metrics_enabled = true;
    report.metrics = registry_->Snapshot();
  }

  const LinkUtilization* util = network_->utilization();
  if (util != nullptr) {
    report.utilization_bucket = util->bucket_width();
    for (int l = 0; l < util->num_links(); ++l) {
      if (util->total(l) == 0) continue;
      const WanLinkSpec& spec = topo_.wan_link(l);
      RunReport::LinkSeries series;
      series.src_dc = spec.src;
      series.dst_dc = spec.dst;
      series.src_name = topo_.datacenter(spec.src).name;
      series.dst_name = topo_.datacenter(spec.dst).name;
      series.base_rate = spec.base_rate;
      series.total_bytes = util->total(l);
      series.buckets = util->buckets(l);
      report.links.push_back(std::move(series));
    }
  }

  const auto& rates = config_.observe.egress_usd_per_gib;
  const WanPricing pricing =
      rates.size() == static_cast<std::size_t>(topo_.num_datacenters())
          ? WanPricing(rates)
          : WanPricing::Uniform(topo_.num_datacenters());
  // Bytes staged through an object store skip the egress tariff and are
  // billed by the store tariff instead; with no store flows the split is
  // exactly the old CostUsd (direct reports stay byte-identical).
  ObjectStoreTariff tariff;
  tariff.put_usd_per_gib = config_.transport.object_store.put_usd_per_gib;
  tariff.get_usd_per_gib = config_.transport.object_store.get_usd_per_gib;
  tariff.storage_usd_per_gib =
      config_.transport.object_store.storage_usd_per_gib;
  tariff.transfer_usd_per_gib =
      config_.transport.object_store.transfer_usd_per_gib;
  report.egress_cost_usd = pricing.EgressCostUsd(network_->meter(), topo_);
  report.store_cost_usd =
      WanPricing::StoreCostUsd(network_->meter(), topo_, tariff);
  report.cost_usd = report.egress_cost_usd + report.store_cost_usd;
  report.cost_usd_full_scale = report.cost_usd * config_.scale;
  if (config_.transport.kind != TransportKind::kDirect) {
    report.transport = TransportKindName(config_.transport.kind);
  }
  report.adaptive = config_.adaptive.enabled;
  report.coded = config_.coded.enabled;
  report.coded_redundancy_r = config_.coded.redundancy_r;

  if (trace != nullptr) {
    report.trace.enabled = true;
    for (const TraceSpan& s : trace->spans()) {
      ++report.trace.spans;
      switch (s.kind) {
        case TraceSpan::Kind::kTask: ++report.trace.task_spans; break;
        case TraceSpan::Kind::kStage: ++report.trace.stage_spans; break;
        case TraceSpan::Kind::kFlow:
          ++report.trace.flow_spans;
          report.trace.flow_bytes += s.bytes;
          break;
        case TraceSpan::Kind::kPhase: ++report.trace.phase_spans; break;
      }
    }
  }
  return report;
}

}  // namespace gs
