// GeoCluster: the public entry point of the library.
//
// Owns the simulated cluster (event loop, network, storage, scheduler) and
// executes jobs under one of the three schemes. Datasets are created via
// CreateSource()/Parallelize() and transformed through the Dataset facade
// (engine/dataset.h); actions on a Dataset run a job on the simulated
// cluster and return results plus metrics.
//
// The cluster is a multi-job *service* (engine/job_api.h, docs/SERVICE.md):
// Submit() enqueues a job and returns a JobHandle immediately; concurrent
// jobs share executors and WAN links, with executor slots divided across
// tenants by weighted fair sharing. Dataset::Run(ActionKind) is a thin
// Submit + Wait for the common synchronous case.
//
// Typical use:
//
//   gs::Topology topo = gs::Ec2SixRegionTopology(scale);
//   gs::RunConfig cfg;
//   cfg.scheme = gs::Scheme::kAggShuffle;
//   cfg.cost = gs::CostModel{}.Scaled(scale);
//   cfg.observe.trace = true;  // optional: record spans
//   gs::GeoCluster cluster(topo, cfg);
//   gs::Dataset text = cluster.CreateSource("text", partitions);
//   auto counts = text.FlatMap(tokenize).ReduceByKey(gs::SumInt64(), 8);
//   gs::RunResult result = counts.Run(gs::ActionKind::kCollect);
//   // result.records, result.metrics, result.trace, result.report
//
// Concurrent jobs:
//
//   gs::JobHandle a = ds1.Submit(gs::ActionKind::kSave, {.tenant = "etl"});
//   gs::JobHandle b = ds2.Submit(gs::ActionKind::kCollect,
//                                {.tenant = "adhoc", .weight = 2.0});
//   cluster.RunUntilQuiescent();
//   gs::RunResult ra = a.Wait(), rb = b.Wait();
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "engine/job_api.h"
#include "engine/metrics.h"
#include "engine/run_config.h"
#include "engine/run_report.h"
#include "engine/trace.h"
#include "exec/disk.h"
#include "netsim/network.h"
#include "netsim/topology.h"
#include "rdd/rdd.h"
#include "sched/task_scheduler.h"
#include "simcore/simulator.h"
#include "storage/block_manager.h"
#include "storage/map_output_tracker.h"

namespace gs {

class Dataset;
class FaultInjector;
class JobRunner;
class ShuffleTransport;

class GeoCluster {
 public:
  GeoCluster(Topology topo, RunConfig config);
  ~GeoCluster();

  GeoCluster(const GeoCluster&) = delete;
  GeoCluster& operator=(const GeoCluster&) = delete;

  // Creates an input dataset from explicitly placed partitions.
  Dataset CreateSource(std::string name,
                       std::vector<SourceRdd::Partition> partitions);

  // Creates an input dataset by spreading `records` across the workers of
  // all datacenters round-robin, `partitions_per_dc` partitions each.
  Dataset Parallelize(std::string name, const std::vector<Record>& records,
                      int partitions_per_dc = 1);

  // --- job service (engine/job_api.h) ---

  // Submits a job computing `final_rdd` and returns without running it.
  // The job arrives now (or after opts.arrival_delay) and is admitted
  // immediately, or queued behind ServiceConfig::max_concurrent_jobs.
  // Drive it with JobHandle::Wait() or RunUntilQuiescent().
  JobHandle Submit(const RddPtr& final_rdd, ActionKind action,
                   JobOptions opts = {});

  // Runs a job to completion synchronously (Submit + Wait); called by
  // Dataset actions.
  RunResult RunJob(const RddPtr& final_rdd, ActionKind action);

  // Drains the simulation until every submitted job has finished; fatal if
  // a job is lost (the queue runs dry with a job incomplete). Results stay
  // with their handles.
  void RunUntilQuiescent();

  int running_jobs() const { return running_jobs_; }
  int queued_jobs() const { return static_cast<int>(admission_queue_.size()); }
  // One row per completed job, in completion order (mirrors report.jobs).
  const std::vector<RunReport::JobRow>& job_rows() const { return job_rows_; }

  const Topology& topology() const { return topo_; }
  const RunConfig& config() const { return config_; }
  Simulator& simulator() { return sim_; }
  Network& network() { return *network_; }
  // Shuffle-transport backend selected by RunConfig::transport.kind
  // (engine/transport/transport.h, docs/TRANSPORTS.md).
  ShuffleTransport& transport() { return *transport_; }
  BlockManager& blocks() { return *blocks_; }
  MapOutputTracker& tracker() { return tracker_; }
  TaskScheduler& scheduler() { return *scheduler_; }
  DiskModel& disk() { return *disk_; }
  // Pool executing tasks' real compute off the event loop; sized by
  // RunConfig::compute_threads (0 = hardware concurrency). Purely a
  // wall-clock accelerator — simulation results do not depend on it.
  ThreadPool& compute_pool() { return *compute_pool_; }
  NodeIndex driver_node() const { return driver_node_; }

  // Registry all components report into; nullptr when
  // RunConfig::observe.metrics is false.
  MetricsRegistry* metrics_registry() { return registry_.get(); }

  // Builds a report of everything observed so far, with `job` as the
  // per-job section. Every finishing job attaches one to its RunResult;
  // call this directly for a mid-workload or whole-workload snapshot.
  RunReport BuildReport(const JobMetrics& job,
                        const TraceCollector* trace) const;

  // Id allocators shared by the Dataset facade and graph rewrites.
  RddId NextRddId() { return next_rdd_id_++; }
  ShuffleId NextShuffleId() { return next_shuffle_id_++; }

  // Live collector spans are recorded into, or nullptr when tracing is
  // off. Internal: JobRunner adds task/stage spans through this.
  TraceCollector* trace() { return trace_.get(); }

  // Current (possibly relocated) node of a source partition. If the home
  // node is down, reads fall back to a live worker in the same datacenter
  // (HDFS keeps in-datacenter replicas).
  NodeIndex SourceLocation(const SourceRdd& rdd, int partition) const;

  // --- fault injection (see engine/fault_plan.h and docs/FAULTS.md) ---
  // Scheduled FaultPlan events (RunConfig::fault.plan) call these; tests
  // and benches may also invoke them directly mid-run via simulator events.

  // Crashes a worker: its slots and stored blocks are gone, running tasks
  // are rescheduled, lost map outputs are discovered at fetch time. With
  // restart_after > 0 a fresh executor rejoins that much later.
  void CrashNode(NodeIndex node, SimTime restart_after = 0);
  // Brings a fresh executor up on a crashed node (no blocks come back).
  void RestartNode(NodeIndex node);
  // Silently drops the node's shuffle blocks (disk corruption) without
  // killing its executor.
  void LoseShuffleBlocks(NodeIndex node);

  // Degrades (or restores, factor = 1) a directed WAN link and notifies
  // every executing job, in job-id order, so adaptive runners can replan
  // receiver placement (docs/ADAPTIVE.md). FaultPlan link events route
  // through here; calling network().SetWanDegradation directly changes
  // capacity without the notification.
  void SetWanDegradation(DcIndex src, DcIndex dst, double factor,
                         bool symmetric = false);

 private:
  friend class JobRunner;
  friend class JobHandle;

  // One submitted job's lifecycle state, indexed by JobId in jobs_.
  struct JobState {
    JobId id = -1;
    JobOptions opts;
    ActionKind action = ActionKind::kCollect;
    RddPtr rdd;
    SimTime submitted_at = 0;  // arrival time (after arrival_delay)
    bool admitted = false;
    bool finalized = false;
    bool taken = false;  // the handle moved the result out
    std::unique_ptr<JobRunner> runner;  // live while executing
    RunResult result;
  };

  // AggShuffle: memoized graph rewrite inserting transferTo before each
  // shuffle. The memo persists across actions so cached datasets keep their
  // identity between jobs.
  RddPtr MaybeRewrite(const RddPtr& final_rdd);

  // Installs the flow observer feeding trace_ (RunConfig::observe.trace).
  void StartTraceRecording();

  // --- job service internals ---
  void ArriveJob(JobId id);          // arrival: join the admission queue
  void TryAdmit();                   // admit while under the concurrency cap
  void AdmitJob(JobState& js);       // start a runner for the job
  void OnRunnerDone(JobId id);       // runner callback: defer finalization
  void FinalizeJob(JobId id);        // harvest the result, build the report
  void ReapRunners();                // at quiescence: free finished runners
  bool JobFinalized(JobId id) const;
  RunResult TakeJobResult(JobId id);  // JobHandle::Wait: pump + move out
  int TenantIndex(const std::string& name);

  Topology topo_;
  RunConfig config_;
  Simulator sim_;
  Rng root_rng_;
  // Declared before the components that hold handles into it.
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<Network> network_;
  // Constructed right after network_ (its service resources must register
  // before the first flow).
  std::unique_ptr<ShuffleTransport> transport_;
  std::unique_ptr<BlockManager> blocks_;
  MapOutputTracker tracker_;
  std::unique_ptr<TaskScheduler> scheduler_;
  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<ThreadPool> compute_pool_;
  std::unique_ptr<FaultInjector> faults_;
  NodeIndex driver_node_ = 0;

  RddId next_rdd_id_ = 0;
  ShuffleId next_shuffle_id_ = 0;
  int next_job_id_ = 0;

  // Job-service state: jobs_[id] is the job with that id (ids are dense).
  std::vector<std::unique_ptr<JobState>> jobs_;
  std::vector<JobId> admission_queue_;  // arrived, not yet admitted
  int running_jobs_ = 0;
  std::vector<RunReport::JobRow> job_rows_;  // completed jobs, in order
  // Tenant name -> dense scheduler tenant id, in first-seen order.
  std::unordered_map<std::string, int> tenant_ids_;

  std::unique_ptr<TraceCollector> trace_;
  std::unordered_map<const Rdd*, RddPtr> rewrite_memo_;
  // (source rdd id, partition) -> relocated node (Centralized scheme).
  std::unordered_map<std::int64_t, NodeIndex> relocations_;

  DcIndex ChooseCentralDc(const RddPtr& final_rdd) const;
};

}  // namespace gs
