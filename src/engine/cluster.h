// GeoCluster: the public entry point of the library.
//
// Owns the simulated cluster (event loop, network, storage, scheduler) and
// executes jobs under one of the three schemes. Datasets are created via
// CreateSource()/Parallelize() and transformed through the Dataset facade
// (engine/dataset.h); actions on a Dataset run a job to completion on the
// simulated cluster and return results plus metrics.
//
// Typical use:
//
//   gs::Topology topo = gs::Ec2SixRegionTopology(scale);
//   gs::RunConfig cfg;
//   cfg.scheme = gs::Scheme::kAggShuffle;
//   cfg.cost = gs::CostModel{}.Scaled(scale);
//   cfg.observe.trace = true;  // optional: record spans
//   gs::GeoCluster cluster(topo, cfg);
//   gs::Dataset text = cluster.CreateSource("text", partitions);
//   auto counts = text.FlatMap(tokenize).ReduceByKey(gs::SumInt64(), 8);
//   gs::RunResult result = counts.Run(gs::ActionKind::kCollect);
//   // result.records, result.metrics, result.trace, result.report
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "engine/metrics.h"
#include "engine/run_config.h"
#include "engine/run_report.h"
#include "engine/trace.h"
#include "exec/disk.h"
#include "netsim/network.h"
#include "netsim/topology.h"
#include "rdd/rdd.h"
#include "sched/task_scheduler.h"
#include "simcore/simulator.h"
#include "storage/block_manager.h"
#include "storage/map_output_tracker.h"

namespace gs {

class Dataset;
class FaultInjector;
class JobRunner;

// How a job's result stage delivers its output.
enum class ActionKind {
  kCollect,  // full partition contents flow to the driver
  kSave,     // output persists on the workers; only a small ack is sent
};

// Everything one action produces. Move-only (the trace is owned).
struct RunResult {
  std::vector<Record> records;  // empty for kSave
  JobMetrics metrics;           // this job only
  // Spans recorded during the run; null unless RunConfig::observe.trace
  // (or the deprecated EnableTracing()) turned tracing on.
  std::unique_ptr<TraceCollector> trace;
  // Metrics snapshot, WAN-link utilization timeseries, cost and trace
  // summary. The registry/utilization/cost sections are cumulative over
  // the cluster's lifetime; `report.job` mirrors `metrics`.
  RunReport report;
};

// Deprecated spelling of RunResult, kept so pre-observability callers
// (`JobResult r = cluster.RunJob(...)`) keep compiling.
using JobResult = RunResult;

class GeoCluster {
 public:
  GeoCluster(Topology topo, RunConfig config);
  ~GeoCluster();

  GeoCluster(const GeoCluster&) = delete;
  GeoCluster& operator=(const GeoCluster&) = delete;

  // Creates an input dataset from explicitly placed partitions.
  Dataset CreateSource(std::string name,
                       std::vector<SourceRdd::Partition> partitions);

  // Creates an input dataset by spreading `records` across the workers of
  // all datacenters round-robin, `partitions_per_dc` partitions each.
  Dataset Parallelize(std::string name, const std::vector<Record>& records,
                      int partitions_per_dc = 1);

  // Runs a job computing `final`; called by Dataset actions.
  RunResult RunJob(const RddPtr& final_rdd, ActionKind action);

  // Deprecated: read `metrics` off the RunResult an action returns.
  [[deprecated("use the RunResult returned by the action instead")]]
  const JobMetrics& last_job_metrics() const {
    return last_metrics_;
  }

  const Topology& topology() const { return topo_; }
  const RunConfig& config() const { return config_; }
  Simulator& simulator() { return sim_; }
  Network& network() { return *network_; }
  BlockManager& blocks() { return *blocks_; }
  MapOutputTracker& tracker() { return tracker_; }
  TaskScheduler& scheduler() { return *scheduler_; }
  DiskModel& disk() { return *disk_; }
  // Pool executing tasks' real compute off the event loop; sized by
  // RunConfig::compute_threads (0 = hardware concurrency). Purely a
  // wall-clock accelerator — simulation results do not depend on it.
  ThreadPool& compute_pool() { return *compute_pool_; }
  NodeIndex driver_node() const { return driver_node_; }

  // Registry all components report into; nullptr when
  // RunConfig::observe.metrics is false.
  MetricsRegistry* metrics_registry() { return registry_.get(); }

  // Builds a report of everything observed so far, with `job` as the
  // per-job section. RunJob attaches one to every RunResult; call this
  // directly for a mid-workload or whole-workload snapshot.
  RunReport BuildReport(const JobMetrics& job,
                        const TraceCollector* trace) const;

  // Id allocators shared by the Dataset facade and graph rewrites.
  RddId NextRddId() { return next_rdd_id_++; }
  ShuffleId NextShuffleId() { return next_shuffle_id_++; }

  // Deprecated: set RunConfig::observe.trace and read RunResult::trace.
  // Starts recording task/stage/flow spans into a cluster-owned collector
  // that accumulates across jobs (the pre-observability contract); results
  // additionally receive a copy of the spans recorded so far.
  [[deprecated("set RunConfig::observe.trace; read RunResult::trace")]]
  TraceCollector& EnableTracing();

  // Live collector spans are recorded into, or nullptr when tracing is
  // off. Internal: JobRunner adds task/stage spans through this.
  TraceCollector* trace() { return trace_.get(); }

  // Current (possibly relocated) node of a source partition. If the home
  // node is down, reads fall back to a live worker in the same datacenter
  // (HDFS keeps in-datacenter replicas).
  NodeIndex SourceLocation(const SourceRdd& rdd, int partition) const;

  // --- fault injection (see engine/fault_plan.h and docs/FAULTS.md) ---
  // Scheduled FaultPlan events (RunConfig::fault.plan) call these; tests
  // and benches may also invoke them directly mid-run via simulator events.

  // Crashes a worker: its slots and stored blocks are gone, running tasks
  // are rescheduled, lost map outputs are discovered at fetch time. With
  // restart_after > 0 a fresh executor rejoins that much later.
  void CrashNode(NodeIndex node, SimTime restart_after = 0);
  // Brings a fresh executor up on a crashed node (no blocks come back).
  void RestartNode(NodeIndex node);
  // Silently drops the node's shuffle blocks (disk corruption) without
  // killing its executor.
  void LoseShuffleBlocks(NodeIndex node);

 private:
  friend class JobRunner;

  // AggShuffle: memoized graph rewrite inserting transferTo before each
  // shuffle. The memo persists across actions so cached datasets keep their
  // identity between jobs.
  RddPtr MaybeRewrite(const RddPtr& final_rdd);

  // Centralized: move every source partition in the graph into the central
  // datacenter (once), measuring the flows as part of the job.
  void CentralizeInputs(const RddPtr& final_rdd);

  // Installs the flow observer feeding trace_ (shared by observe.trace and
  // the deprecated EnableTracing()).
  void StartTraceRecording();

  Topology topo_;
  RunConfig config_;
  Simulator sim_;
  Rng root_rng_;
  // Declared before the components that hold handles into it.
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<BlockManager> blocks_;
  MapOutputTracker tracker_;
  std::unique_ptr<TaskScheduler> scheduler_;
  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<ThreadPool> compute_pool_;
  std::unique_ptr<FaultInjector> faults_;
  // The runner of the job currently executing (crash notifications).
  JobRunner* active_runner_ = nullptr;
  NodeIndex driver_node_ = 0;

  RddId next_rdd_id_ = 0;
  ShuffleId next_shuffle_id_ = 0;
  int next_job_id_ = 0;

  JobMetrics last_metrics_;
  std::unique_ptr<TraceCollector> trace_;
  // EnableTracing() contract: the cluster-owned collector accumulates
  // across jobs, so results get copies instead of the spans moving out.
  bool legacy_trace_ = false;
  std::unordered_map<const Rdd*, RddPtr> rewrite_memo_;
  // (source rdd id, partition) -> relocated node (Centralized scheme).
  std::unordered_map<std::int64_t, NodeIndex> relocations_;

  DcIndex ChooseCentralDc(const RddPtr& final_rdd) const;
};

}  // namespace gs
