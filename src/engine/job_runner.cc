#include "engine/job_runner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "dag/dag_scheduler.h"
#include "data/compression.h"
#include "engine/transport/transport.h"
#include "exec/evaluator.h"

namespace gs {
namespace {

// Serialized size of a save-acknowledgement sent to the driver.
constexpr Bytes kSaveAckBytes = 16;
// Hand-off latency for a transfer whose producer and receiver share a node.
constexpr SimTime kLocalHandoff = Millis(1);
// Fraction of a transfer producer's compute after which its push departs
// (intra-task pipelining, Sec. IV-B).
constexpr double kEarlyPushFraction = 0.3;

}  // namespace

JobRunner::JobRunner(GeoCluster& cluster, RddPtr final_rdd, ActionKind action,
                     Rng rng, JobId job_id, int tenant)
    : cluster_(cluster),
      sim_(cluster.simulator()),
      topo_(cluster.topology()),
      config_(cluster.config()),
      final_rdd_(std::move(final_rdd)),
      action_(action),
      rng_(std::move(rng)),
      policy_(MakeAggregatorPolicy(cluster.config())),
      job_id_(job_id),
      tenant_(tenant) {}

JobRunner::~JobRunner() {
  // Compute jobs of discarded attempts are never joined (their stale
  // OnGatherDone no-ops); let them finish before the stage structures
  // they reference go away. An unsent wave must reach the pool first, or
  // its packaged tasks die with this runner and nothing runs them.
  FlushComputeBatch();
  cluster_.compute_pool().WaitIdle();
}

void JobRunner::Start() {
  metrics_.started = sim_.Now();

  std::vector<Stage> stages = BuildStages(final_rdd_);
  for (Stage& s : stages) {
    auto run = std::make_unique<StageRun>();
    run->stage = std::move(s);
    run->metrics.id = run->stage.id;
    run->metrics.name = run->stage.output_rdd->name();
    run->metrics.num_tasks = run->stage.num_tasks();
    stage_runs_.push_back(std::move(run));
  }
  result_stage_ = static_cast<StageId>(stage_runs_.size()) - 1;
  GS_CHECK(stage_run(result_stage_).stage.output ==
           StageOutputKind::kResult);
  results_.resize(stage_run(result_stage_).stage.num_tasks());

  PruneCachedStages();
  if (config_.scheme == Scheme::kCentralized) {
    CentralizeInputsThenStart();
  } else {
    SubmitReadyStages();
  }
}

RunResult JobRunner::TakeResult() {
  GS_CHECK_MSG(job_done_, "TakeResult before the job completed");

  for (const auto& sr : stage_runs_) {
    if (!sr->skipped) metrics_.stages.push_back(sr->metrics);
  }

  if (MetricsRegistry* reg = cluster_.metrics_registry()) {
    reg->counter("engine.jobs_completed").Add(1);
    reg->counter("engine.task_failures").Add(metrics_.task_failures);
    reg->counter("engine.fetch_failures").Add(metrics_.fetch_failures);
    reg->counter("engine.node_crashes").Add(metrics_.node_crashes);
    reg->counter("engine.map_resubmissions").Add(metrics_.map_resubmissions);
    reg->counter("engine.push_retries").Add(metrics_.push_retries);
    reg->counter("engine.push_fallbacks").Add(metrics_.push_fallbacks);
    // Registered only under adaptivity so metric snapshots of non-adaptive
    // runs stay identical to the seed goldens.
    if (config_.adaptive.enabled) {
      reg->counter("engine.adaptive_replans").Add(metrics_.replans);
      reg->counter("engine.adaptive_receivers_moved")
          .Add(metrics_.receivers_moved);
      reg->counter("engine.adaptive_fallbacks")
          .Add(metrics_.adaptive_fallbacks);
    }
    if (config_.coded.enabled) {
      reg->counter("engine.coded_groups").Add(metrics_.coded_groups);
      reg->counter("engine.coded_multicast_bytes")
          .Add(metrics_.coded_multicast_bytes);
      reg->counter("engine.coded_residual_bytes")
          .Add(metrics_.coded_residual_bytes);
      reg->counter("engine.coded_local_bytes")
          .Add(metrics_.coded_local_bytes);
    }
  }

  RunResult result;
  result.metrics = metrics_;
  for (auto& partition_records : results_) {
    result.records.insert(result.records.end(),
                          std::make_move_iterator(partition_records.begin()),
                          std::make_move_iterator(partition_records.end()));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Stage orchestration
// ---------------------------------------------------------------------------

void JobRunner::PruneCachedStages() {
  // Children have higher stage ids than their parents, so a reverse pass
  // visits consumers before producers. Start with everything potentially
  // skippable except the result stage; un-skip what a live consumer needs.
  std::vector<bool> needed(stage_runs_.size(), false);
  needed[result_stage_] = true;
  for (StageId id = static_cast<StageId>(stage_runs_.size()) - 1; id >= 0;
       --id) {
    StageRun& sr = stage_run(id);
    if (!needed[id]) continue;

    // Which boundaries do this stage's tasks actually reach?
    bool reaches_transfer = false;
    std::vector<ShuffleId> reached_shuffles;
    for (int p = 0; p < sr.stage.num_tasks(); ++p) {
      EvalCut cut =
          FindEvalCut(*sr.stage.output_rdd, p, cluster_.blocks());
      if (cut.is_cached_cut) continue;
      if (cut.rdd->kind() == RddKind::kTransferred) {
        reaches_transfer = true;
      } else if (cut.rdd->kind() == RddKind::kShuffled) {
        reached_shuffles.push_back(
            static_cast<const ShuffledRdd*>(cut.rdd)->shuffle().id);
      }
    }
    for (StageId parent : sr.stage.barrier_parents) {
      const Stage& ps = stage_run(parent).stage;
      GS_CHECK(ps.consumer_shuffle != nullptr);
      const ShuffleId sid = ps.consumer_shuffle->shuffle().id;
      if (std::find(reached_shuffles.begin(), reached_shuffles.end(), sid) !=
          reached_shuffles.end()) {
        needed[parent] = true;
      }
    }
    if (sr.stage.starts_at_transfer) {
      if (reaches_transfer) {
        needed[sr.stage.transfer_producer] = true;
      } else {
        sr.standalone = true;  // fully cache-covered: run without pairing
      }
    }
  }
  for (StageId id = 0; id < static_cast<StageId>(stage_runs_.size()); ++id) {
    if (!needed[id]) {
      StageRun& sr = stage_run(id);
      sr.skipped = true;
      sr.submitted = true;
      sr.done = true;
    }
  }
}

bool JobRunner::StageIsReady(const StageRun& sr) const {
  if (sr.submitted || sr.done) return false;
  // Receiver stages are co-submitted with their producer, not by
  // readiness — unless cache coverage made them standalone.
  if (sr.stage.starts_at_transfer && !sr.standalone) return false;
  for (StageId parent : sr.stage.barrier_parents) {
    if (!stage_runs_[parent]->done) return false;
  }
  return true;
}

void JobRunner::SubmitReadyStages() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& sr : stage_runs_) {
      if (StageIsReady(*sr)) {
        SubmitStage(sr->stage.id);
        progress = true;
      }
    }
  }
}

void JobRunner::SubmitStage(StageId id) {
  StageRun& sr = stage_run(id);
  GS_CHECK(!sr.submitted);
  sr.submitted = true;
  sr.metrics.submitted = sim_.Now();

  // Pair a transfer producer with its receiver stage: decide the aggregator
  // datacenter now (Sec. IV-D: the datacenter storing the largest amount of
  // map input, known before the map runs), then co-submit the receiver so
  // pushes pipeline with the producing tasks. Note: aggregator_dc on a
  // StageRun always means "the datacenter this stage's *receiver* tasks
  // land in"; a stage that both receives one transfer and produces the
  // next (explicit transferTo -> map -> automatic transferTo) keeps its
  // own receiver datacenter and assigns the new target to its consumer.
  std::vector<DcIndex> transfer_targets;
  if (sr.stage.output == StageOutputKind::kTransferProduce &&
      sr.stage.transfer_consumer >= 0) {
    if (sr.stage.consumer_transfer->target_dc() != kNoDc) {
      transfer_targets = {sr.stage.consumer_transfer->target_dc()};
    } else {
      transfer_targets = ChooseAggregatorDcs(sr);
    }
    std::string target_names;
    for (DcIndex dc : transfer_targets) {
      if (!target_names.empty()) target_names += ", ";
      target_names += topo_.datacenter(dc).name;
    }
    GS_LOG_INFO << "transferTo aggregator(s) for stage " << id << ": "
                << target_names;
  }

  // Create task states immediately; scheduling happens after the driver's
  // submit delay.
  sr.tasks.clear();
  sr.partition_done.assign(sr.stage.num_tasks(), false);
  for (int p = 0; p < sr.stage.num_tasks(); ++p) {
    auto task = std::make_unique<TaskRun>();
    task->stage = id;
    task->partition = p;
    sr.tasks.push_back(std::move(task));
  }

  sim_.Schedule(config_.cost.stage_submit_delay, [this, id] {
    LaunchTasks(id);
  });

  if (sr.stage.transfer_consumer >= 0) {
    StageRun& consumer = stage_run(sr.stage.transfer_consumer);
    // The receiver stage must not also wait on unfinished shuffles; the
    // Dataset facade cannot build such graphs.
    for (StageId parent : consumer.stage.barrier_parents) {
      GS_CHECK_MSG(stage_runs_[parent]->done,
                   "receiver stage has unfinished shuffle parents");
    }
    GS_CHECK(!transfer_targets.empty());
    consumer.aggregator_dcs = transfer_targets;
    SubmitStage(sr.stage.transfer_consumer);
  }
}

void JobRunner::LaunchTasks(StageId id) {
  StageRun& sr = stage_run(id);
  if (sr.stage.starts_at_transfer && !sr.standalone) {
    // Receiver tasks are submitted to the scheduler one-by-one as their
    // producer task is assigned (their preferences depend on the producer's
    // node: co-located partitions make the receiver a no-op, Sec. IV-C2).
    return;
  }
  for (auto& task : sr.tasks) SubmitTask(*task);
}

void JobRunner::OnStageDone(StageId id) {
  StageRun& sr = stage_run(id);
  GS_CHECK(!sr.done);
  // Coded shuffle: a shuffle-write stage completes only after the coded
  // exchange consolidated every shard at its home datacenter — the barrier
  // the reduce stage's placement and gathers rely on (docs/CODED.md). The
  // exchange runs once; a re-completion after fetch-failure recovery skips
  // it (the re-registered outputs are simply fetched from their producer).
  if (config_.coded.enabled && !sr.coded_exchange_done &&
      sr.stage.output == StageOutputKind::kShuffleWrite &&
      sr.stage.consumer_shuffle != nullptr) {
    StartCodedExchange(id);
    return;
  }
  sr.done = true;
  sr.metrics.completed = sim_.Now();
  if (TraceCollector* trace = cluster_.trace()) {
    TraceSpan span;
    span.kind = TraceSpan::Kind::kStage;
    span.category = "stage";
    span.name = "stage" + std::to_string(id) + " (" + sr.metrics.name + ")";
    span.dc = topo_.dc_of(cluster_.driver_node());
    span.start = sr.metrics.submitted;
    span.end = sim_.Now();
    trace->Add(std::move(span));
  }
  // Reduce tasks parked by a fetch failure on this stage's shuffle can run
  // again now that the missing map outputs are regenerated.
  auto parked_it = waiting_on_stage_.find(id);
  if (parked_it != waiting_on_stage_.end()) {
    std::vector<TaskRun*> parked = std::move(parked_it->second);
    waiting_on_stage_.erase(parked_it);
    for (TaskRun* t : parked) SubmitTask(*t);
  }
  if (id == result_stage_) {
    job_done_ = true;
    metrics_.completed = sim_.Now();
    cluster_.OnRunnerDone(job_id_);
    return;
  }
  SubmitReadyStages();
}

// ---------------------------------------------------------------------------
// Task lifecycle
// ---------------------------------------------------------------------------

std::vector<NodeIndex> JobRunner::PreferredNodes(const StageRun& sr,
                                                 int partition) {
  EvalCut cut = FindEvalCut(*sr.stage.output_rdd, partition,
                            cluster_.blocks());
  if (cut.is_cached_cut) {
    return cluster_.blocks().Locations(
        BlockId::Cached(cut.rdd->id(), cut.partition));
  }
  switch (cut.rdd->kind()) {
    case RddKind::kSource: {
      const auto& src = static_cast<const SourceRdd&>(*cut.rdd);
      return {cluster_.SourceLocation(src, cut.partition)};
    }
    case RddKind::kShuffled: {
      const auto& s = static_cast<const ShuffledRdd&>(*cut.rdd);
      std::vector<NodeIndex> prefs =
          cluster_.tracker().PreferredShardLocations(
              s.shuffle().id, cut.partition, config_.reducer_pref_fraction);
      if (config_.coded.enabled) {
        AppendCodedAlternates(s.shuffle().id, cut.partition, &prefs);
      }
      return prefs;
    }
    default:
      return {};
  }
}

void JobRunner::SubmitTask(TaskRun& task) {
  StageRun& sr = stage_run(task.stage);
  TaskRequest request;
  request.id = static_cast<TaskId>(task.stage) * 100000 + task.partition;
  if (sr.stage.starts_at_transfer && !sr.standalone) {
    // Receiver write phase: the pushed data already landed on task.node.
    GS_CHECK(task.node != kNoNode);
    request.preferred = {task.node};
    request.policy = PlacementPolicy::kNodeOnly;
  } else {
    request.preferred = PreferredNodes(sr, task.partition);
    if (config_.scheme == Scheme::kCentralized &&
        !request.preferred.empty()) {
      // "After all data is centralized within a cluster, Spark works
      // within a datacenter" (Sec. V-A): tasks never spill back out.
      request.policy = PlacementPolicy::kDcOnly;
    } else if (config_.coded.enabled && !request.preferred.empty() &&
               IsReducerStage(sr)) {
      // Coded shuffle: the exchange consolidated every shard at its home
      // datacenter (docs/CODED.md); a reducer scheduled anywhere else
      // re-fetches the consolidated shard across the WAN and forfeits
      // the locality the replication paid for. The preference list holds
      // only home-datacenter nodes, so kDcOnly keeps the read local (and
      // still escapes if the home datacenter loses every worker).
      request.policy = PlacementPolicy::kDcOnly;
    }
  }
  TaskRun* task_ptr = &task;
  const int epoch = task.epoch;
  request.tenant = tenant_;
  request.on_assigned = [this, task_ptr, epoch](NodeIndex node,
                                                LocalityLevel) {
    if (task_ptr->epoch != epoch) {
      // The task was restarted or parked while this assignment was in
      // flight; give the slot back (a fresh submission is already queued).
      cluster_.scheduler().ReleaseSlot(node, tenant_);
      return;
    }
    OnAssigned(*task_ptr, node);
  };
  cluster_.scheduler().Submit(std::move(request));
}

void JobRunner::OnAssigned(TaskRun& task, NodeIndex node) {
  StageRun& sr = stage_run(task.stage);
  if (!cluster_.scheduler().node_up(node)) {
    // The node crashed between the slot grant and its delivery; the slot
    // died with the executor. Balance the tenant's busy accounting and
    // queue the task again.
    cluster_.scheduler().ReleaseSlot(node, tenant_);
    SubmitTask(task);
    return;
  }
  task.node = node;
  task.assigned = true;
  task.assigned_at = sim_.Now();
  if (sr.metrics.first_task_started == 0) {
    sr.metrics.first_task_started = sim_.Now();
  }

  // A transfer producer's assignment fixes the pairing for its receiver:
  // decide the receiver's destination node now, so the push can start the
  // instant the producer finishes.
  if (sr.stage.output == StageOutputKind::kTransferProduce &&
      sr.stage.transfer_consumer >= 0) {
    PlaceReceiver(sr, task);
  }

  if (sr.stage.starts_at_transfer && !sr.standalone) {
    // Receiver write phase: the slot was requested after the data landed.
    ExecuteReceiver(task);
    return;
  }
  TaskRun* task_ptr = &task;
  const int epoch = task.epoch;
  sim_.Schedule(config_.cost.task_launch_overhead, [this, task_ptr, epoch] {
    if (task_ptr->epoch != epoch) return;
    StartGather(*task_ptr);
  });
}

void JobRunner::StartGather(TaskRun& task) {
  StageRun& sr = stage_run(task.stage);
  EvalCut cut = FindEvalCut(*sr.stage.output_rdd, task.partition,
                            cluster_.blocks());
  task.cut_rdd = cut.rdd;
  task.cut_partition = cut.partition;
  task.gathered.clear();
  task.gather_srcs.clear();
  task.in_bytes = 0;
  task.gather_is_processed = false;
  task.fetch_failed_sid = -1;
  task.fetch_failed_maps.clear();
  task.pending_gathers = 1;  // released at the end of this function
  TaskRun* t = &task;
  const int epoch = task.epoch;

  auto add_disk_read = [&](Bytes bytes) {
    ++task.pending_gathers;
    cluster_.disk().Read(task.node, bytes, [this, t, epoch] {
      if (t->epoch != epoch) return;
      GatherArrived(*t);
    });
  };
  auto add_flow = [&](NodeIndex from, Bytes bytes, FlowKind kind) {
    ++task.pending_gathers;
    task.gather_srcs.push_back(from);
    AccountFlow(from, task.node, bytes, kind);
    ShardTransfer transfer;
    transfer.src = from;
    transfer.dst = task.node;
    transfer.bytes = bytes;
    transfer.kind = kind;
    transfer.on_landed = [this, t, epoch] {
      if (t->epoch != epoch) return;
      GatherArrived(*t);
    };
    cluster_.transport().Transfer(std::move(transfer));
  };

  if (cut.is_cached_cut) {
    const BlockId id = BlockId::Cached(cut.rdd->id(), cut.partition);
    std::vector<NodeIndex> locs = cluster_.blocks().Locations(id);
    GS_CHECK(!locs.empty());
    NodeIndex from = locs.front();
    for (NodeIndex loc : locs) {
      if (loc == task.node) from = loc;
    }
    std::optional<Block> block = cluster_.blocks().Get(from, id);
    GS_CHECK(block.has_value());
    task.gathered = *block->records;
    task.in_bytes = block->bytes;
    task.gather_is_processed = true;
    if (from == task.node) {
      add_disk_read(0);  // in-memory cache hit
    } else {
      add_flow(from, block->bytes, FlowKind::kOther);
    }
  } else if (cut.rdd->kind() == RddKind::kSource) {
    const auto& src = static_cast<const SourceRdd&>(*cut.rdd);
    const SourceRdd::Partition& part = src.partition(cut.partition);
    NodeIndex loc = cluster_.SourceLocation(src, cut.partition);
    task.gathered = *part.records;
    task.in_bytes = part.bytes;
    if (loc == task.node) {
      add_disk_read(part.bytes);
    } else {
      add_flow(loc, part.bytes, FlowKind::kOther);
    }
  } else if (cut.rdd->kind() == RddKind::kShuffled) {
    // Fetch-based shuffle read: one flow per remote source node, one disk
    // read covering all local shards (Sec. II-A).
    const auto& s = static_cast<const ShuffledRdd&>(*cut.rdd);
    const ShuffleId sid = s.shuffle().id;
    const int shard = cut.partition;
    const int num_maps = cluster_.tracker().num_map_partitions(sid);
    // Fetch-failure detection (Spark semantics): lost map outputs — a
    // crashed node's shuffle files, or outputs another reducer already
    // invalidated — are discovered here, while building the fetch list.
    std::vector<int> missing;
    for (int m = 0; m < num_maps; ++m) {
      const MapOutputLocation& out = cluster_.tracker().Output(sid, m, shard);
      if (out.node == kNoNode ||
          !cluster_.blocks().Has(out.node, BlockId::Shuffle(sid, m, shard))) {
        missing.push_back(m);
      }
    }
    if (!missing.empty()) {
      // The attempt is doomed, but the fetch still runs for the blocks
      // that exist: concurrent fetches from healthy nodes have moved their
      // bytes by the time the dead server surfaces, and a restarted
      // reducer discards and re-fetches everything. Over the WAN that
      // waste is exactly the paper's Fig. 2 penalty for fetch-based
      // shuffle; under Push/Aggregate the same waste stays
      // datacenter-local. GatherArrived fails the task once the partial
      // gather lands.
      task.fetch_failed_sid = sid;
      task.fetch_failed_maps = missing;
    }
    const bool doomed = !missing.empty();
    std::unordered_map<NodeIndex, Bytes> remote_bytes;
    Bytes local_bytes = 0;
    for (int m = 0; m < num_maps; ++m) {
      const MapOutputLocation& out = cluster_.tracker().Output(sid, m, shard);
      if (out.node == kNoNode) continue;
      std::optional<Block> block = cluster_.blocks().Get(
          out.node, BlockId::Shuffle(sid, m, shard));
      if (!block.has_value()) continue;  // lost with its node
      if (!doomed) {
        task.gathered.insert(task.gathered.end(), block->records->begin(),
                             block->records->end());
      }
      task.in_bytes += out.bytes;
      if (out.node == task.node) {
        local_bytes += out.bytes;
      } else {
        remote_bytes[out.node] += out.bytes;
      }
    }
    add_disk_read(local_bytes);
    // Deterministic flow start order.
    std::vector<std::pair<NodeIndex, Bytes>> sources(remote_bytes.begin(),
                                                     remote_bytes.end());
    std::sort(sources.begin(), sources.end());
    for (const auto& [from, bytes] : sources) {
      add_flow(from, bytes, FlowKind::kShuffleFetch);
    }
  } else {
    GS_CHECK_MSG(false, "unexpected gather boundary: "
                            << cut.rdd->name());
  }

  // The gathered records are complete right here — the flows and disk
  // reads above only simulate their cost — so the task's real compute can
  // start now and overlap, in wall-clock time, with the simulated gather
  // (and with every other task's compute). A doomed attempt (missing map
  // outputs) skips the submit; it fails at GatherArrived.
  if (task.fetch_failed_maps.empty()) SubmitCompute(task);

  GatherArrived(task);  // release the guard
}

void JobRunner::SubmitCompute(TaskRun& task) {
  StageRun& sr = stage_run(task.stage);
  TaskComputeSpec spec;
  spec.output_rdd = sr.stage.output_rdd.get();
  spec.partition = task.partition;
  spec.start.rdd = task.cut_rdd;
  spec.start.partition = task.cut_partition;
  spec.start.records = std::move(task.gathered);
  spec.start.already_processed = task.gather_is_processed;
  task.gathered.clear();
  if (sr.stage.pre_output_combine && !config_.disable_map_side_combine) {
    spec.combine = &sr.stage.pre_output_combine;
  }
  spec.output = sr.stage.output;
  if (sr.stage.consumer_shuffle != nullptr) {
    spec.consumer_shuffle = &sr.stage.consumer_shuffle->shuffle();
  }
  std::packaged_task<TaskComputeResult()> job(
      [spec = std::move(spec)]() mutable {
        return ComputeTask(std::move(spec));
      });
  task.compute = job.get_future();
  compute_batch_.push_back(std::move(job));
  if (!compute_flush_scheduled_) {
    compute_flush_scheduled_ = true;
    sim_.Schedule(0, [this] { FlushComputeBatch(); });
  }
}

void JobRunner::FlushComputeBatch() {
  compute_flush_scheduled_ = false;
  if (compute_batch_.empty()) return;
  std::vector<MoveFunction> jobs;
  jobs.reserve(compute_batch_.size());
  for (std::packaged_task<TaskComputeResult()>& job : compute_batch_) {
    jobs.emplace_back([job = std::move(job)]() mutable { job(); });
  }
  compute_batch_.clear();
  cluster_.compute_pool().SubmitPrepared(std::move(jobs));
}

void JobRunner::GatherArrived(TaskRun& task) {
  GS_CHECK(task.pending_gathers > 0);
  if (--task.pending_gathers > 0) return;
  if (!task.fetch_failed_maps.empty()) {
    const ShuffleId sid = task.fetch_failed_sid;
    const std::vector<int> missing = std::move(task.fetch_failed_maps);
    task.fetch_failed_maps.clear();
    task.fetch_failed_sid = -1;
    HandleFetchFailure(task, sid, missing);
    return;
  }
  OnGatherDone(task);
}

void JobRunner::OnGatherDone(TaskRun& task) {
  StageRun& sr = stage_run(task.stage);

  // Join the compute job submitted at StartGather. This is a wall-clock
  // join only — in simulated time the compute "happens" over the cpu
  // interval scheduled below, whose length needs the output sizes the job
  // produced. Exceptions thrown by workload lambdas resurface here, on
  // the event loop.
  GS_CHECK(task.compute.valid());
  FlushComputeBatch();  // the wave may still be unsent in this instant
  TaskComputeResult out = task.compute.get();
  SimTime cpu = config_.cost.CpuTime(task.in_bytes, out.out_bytes) +
                config_.cost.record_cpu *
                    static_cast<double>(out.in_records + out.out_records);
  cpu *= StragglerFactor();

  // Coded shuffle buys WAN locality with compute: each replicated map
  // partition executes r times (once per replica datacenter, in parallel
  // on spare slots, so the stage span is unchanged), and the job pays
  // (r-1) extra copies of this task's compute seconds — the cost side of
  // bench_coded's crossover (docs/CODED.md).
  if (config_.coded.enabled &&
      sr.stage.output == StageOutputKind::kShuffleWrite) {
    metrics_.coded_replica_compute_seconds += (CodedR() - 1) * cpu;
  }

  // Store cache fills on this node once the compute finishes.
  TaskRun* t = &task;
  const int epoch = task.epoch;

  // Failure injection (Sec. V, Fig. 2): reduce tasks may fail partway
  // through their first attempt.
  const bool may_fail = IsReducerStage(sr) && task.attempt == 0 &&
                        config_.fault.reduce_failure_prob > 0;
  if (may_fail && rng_.Bernoulli(config_.fault.reduce_failure_prob)) {
    sim_.Schedule(cpu * config_.fault.failure_point, [this, t, epoch] {
      if (t->epoch != epoch) return;
      OnTaskFailed(*t);
    });
    return;
  }

  // Intra-task pipelining (Sec. IV-B): a transfer producer starts pushing
  // "as soon as there is a fraction of data available, without waiting
  // until the entire output dataset is ready". The push flow (sized for
  // the full output) departs once an early fraction of the compute is
  // done; the task itself completes at full compute time.
  if (sr.stage.output == StageOutputKind::kTransferProduce &&
      sr.stage.transfer_consumer >= 0) {
    StageRun* producer_sr = &sr;
    sim_.Schedule(cpu * kEarlyPushFraction,
                  [this, t, epoch, producer_sr,
                   records = std::move(out.records),
                   push_bytes = out.compressed_bytes]() mutable {
                    if (t->epoch != epoch) return;
                    NotifyReceiver(*producer_sr, *t, std::move(records),
                                   push_bytes);
                  });
    sim_.Schedule(cpu, [this, t, epoch, fills = std::move(out.cache_fills)] {
      if (t->epoch != epoch) return;
      for (auto& fill : fills) {
        cluster_.blocks().Put(t->node,
                              BlockId::Cached(fill.rdd, fill.partition),
                              fill.records);
      }
      FinishTask(*t);
    });
    return;
  }

  auto commit = [this, t, epoch, out = std::move(out)]() mutable {
    if (t->epoch != epoch) return;
    for (auto& fill : out.cache_fills) {
      cluster_.blocks().Put(t->node, BlockId::Cached(fill.rdd, fill.partition),
                            fill.records);
    }
    OnComputeDone(*t, std::move(out));
  };
  sim_.Schedule(cpu, std::move(commit));
}

void JobRunner::OnTaskFailed(TaskRun& task) {
  StageRun& sr = stage_run(task.stage);
  ++sr.metrics.task_failures;
  ++metrics_.task_failures;
  GS_LOG_INFO << "task " << sr.stage.id << "/" << task.partition
              << " failed on " << topo_.node(task.node).name << ", retrying";
  cluster_.scheduler().ReleaseSlot(task.node, tenant_);
  ++task.epoch;
  ++task.attempt;
  task.assigned = false;
  task.node = kNoNode;
  SubmitTask(task);
}

void JobRunner::OnComputeDone(TaskRun& task, TaskComputeResult out) {
  StageRun& sr = stage_run(task.stage);
  TaskRun* t = &task;
  const int epoch = task.epoch;

  switch (sr.stage.output) {
    case StageOutputKind::kResult: {
      Bytes bytes;
      if (action_ == ActionKind::kCollect) {
        bytes = out.out_bytes;
      } else {
        // Save: output persists on the workers via HDFS (replication
        // factor 3: one local write plus two in-datacenter copies); the
        // driver gets an ack with the partition's record count.
        out.records = {Record{std::to_string(task.partition),
                              static_cast<std::int64_t>(out.out_records)}};
        bytes = kSaveAckBytes;
        cluster_.disk().Write(task.node, 3 * out.out_bytes, [] {});
      }
      results_[task.partition] = std::move(out.records);
      cluster_.network().StartFlow(task.node, cluster_.driver_node(), bytes,
                                   FlowKind::kCollect, [this, t, epoch] {
                                     if (t->epoch != epoch) return;
                                     FinishTask(*t);
                                   });
      break;
    }
    case StageOutputKind::kShuffleWrite: {
      // The records were split per reduce shard — and each shard's
      // compressed size measured — inside the compute job; only the
      // simulated disk write and block registration happen here.
      const ShuffledRdd& consumer = *sr.stage.consumer_shuffle;
      const ShuffleInfo& info = consumer.shuffle();
      const int num_shards = info.partitioner->num_shards();
      const int num_maps = sr.stage.output_rdd->num_partitions();
      cluster_.tracker().RegisterShuffle(info.id, num_maps, num_shards);
      const int map_partition = task.partition;
      cluster_.disk().Write(
          task.node, out.shard_total_bytes,
          [this, t, epoch, map_partition, sid = info.id,
           shards = std::move(out.shards),
           shard_bytes = std::move(out.shard_bytes)]() mutable {
            if (t->epoch != epoch) return;
            std::vector<RecordsPtr> recs;
            recs.reserve(shards.size());
            for (int k = 0; k < static_cast<int>(shards.size()); ++k) {
              recs.push_back(MakeRecords(std::move(shards[k])));
              cluster_.blocks().PutWithSize(
                  t->node, BlockId::Shuffle(sid, map_partition, k),
                  recs.back(), shard_bytes[k]);
            }
            cluster_.tracker().RegisterMapOutput(sid, map_partition, t->node,
                                                 shard_bytes);
            if (config_.coded.enabled) {
              PutReplicaOutputs(sid, map_partition, t->node, recs,
                                shard_bytes);
            }
            FinishTask(*t);
          });
      break;
    }
    case StageOutputKind::kTransferProduce: {
      // Hand the partition to the paired receiver; the push flow proceeds
      // after this task's slot is released (pipelining: the WAN transfer
      // overlaps later map tasks, Fig. 1b). No disk write on the producer
      // (Sec. IV-B, "unnecessary disk I/O is avoided").
      NotifyReceiver(sr, task, std::move(out.records), out.compressed_bytes);
      FinishTask(task);
      break;
    }
  }
}

void JobRunner::FinishTask(TaskRun& task) {
  StageRun& sr = stage_run(task.stage);
  GS_CHECK(!task.done);
  task.done = true;
  cluster_.scheduler().ReleaseSlot(task.node, tenant_);
  // Losing attempt of a speculated partition: its twin already finished.
  if (sr.partition_done[task.partition]) return;
  sr.partition_done[task.partition] = true;
  sr.completed_durations.push_back(sim_.Now() - task.assigned_at);
  if (MetricsRegistry* reg = cluster_.metrics_registry()) {
    // 0.1s .. ~6500s in x3 steps — spans quick maps to straggler reducers.
    reg->histogram("engine.task_duration_s", ExponentialBounds(0.1, 3, 11))
        .Observe(sim_.Now() - task.assigned_at);
  }
  if (TraceCollector* trace = cluster_.trace()) {
    TraceSpan span;
    span.kind = TraceSpan::Kind::kTask;
    span.category = sr.stage.starts_at_transfer && !sr.standalone
                        ? "receiver"
                    : IsReducerStage(sr)                             ? "reduce"
                    : sr.stage.output == StageOutputKind::kResult    ? "result"
                                                                     : "map";
    span.name = "stage" + std::to_string(sr.stage.id) + "/part" +
                std::to_string(task.partition) +
                (task.speculative ? "#spec" : task.attempt > 0 ? "#retry" : "");
    span.dc = topo_.dc_of(task.node);
    span.node = task.node;
    span.start = task.assigned_at;
    span.end = sim_.Now();
    trace->Add(std::move(span));
  }
  if (++sr.tasks_done == static_cast<int>(sr.tasks.size())) {
    OnStageDone(sr.stage.id);
  } else {
    MaybeSpeculate(sr);
  }
}

void JobRunner::MaybeSpeculate(StageRun& sr) {
  if (!config_.speculation.enabled || sr.done) return;
  // Transfer pairs (producer or receiver) keep their one-to-one pairing;
  // only plain map/reduce/result stages speculate, like Spark excludes
  // custom-committed outputs.
  if (sr.stage.starts_at_transfer ||
      sr.stage.output == StageOutputKind::kTransferProduce) {
    return;
  }
  const int total = static_cast<int>(sr.tasks.size());
  if (sr.tasks_done < config_.speculation.quantile * total) return;

  std::vector<double> durations = sr.completed_durations;
  std::sort(durations.begin(), durations.end());
  const double median = durations[durations.size() / 2];
  const double threshold =
      std::max(config_.speculation.multiplier * median, Millis(100));

  for (auto& task : sr.tasks) {
    if (task->done || !task->assigned || task->has_backup ||
        sr.partition_done[task->partition]) {
      continue;
    }
    if (sim_.Now() - task->assigned_at <= threshold) continue;
    task->has_backup = true;
    auto backup = std::make_unique<TaskRun>();
    backup->stage = sr.stage.id;
    backup->partition = task->partition;
    backup->speculative = true;
    backup->attempt = 1;  // backups skip first-attempt failure injection
    TaskRun* backup_ptr = backup.get();
    sr.backups.push_back(std::move(backup));
    GS_LOG_INFO << "speculating stage " << sr.stage.id << " partition "
                << task->partition;
    SubmitTask(*backup_ptr);
  }

  // Stragglers are also detected between completions: poll while any
  // un-backed-up task is still running.
  bool pending = false;
  for (const auto& task : sr.tasks) {
    if (!task->done && !task->has_backup &&
        !sr.partition_done[task->partition]) {
      pending = true;
      break;
    }
  }
  if (pending && !sr.spec_check_scheduled) {
    sr.spec_check_scheduled = true;
    StageRun* srp = &sr;
    sim_.Schedule(std::max(Millis(100), median / 2), [this, srp] {
      srp->spec_check_scheduled = false;
      MaybeSpeculate(*srp);
    });
  }
}

// ---------------------------------------------------------------------------
// Fault recovery
// ---------------------------------------------------------------------------

void JobRunner::OnNodeCrashed(NodeIndex node) {
  if (job_done_) return;
  ++metrics_.node_crashes;
  for (auto& srp : stage_runs_) {
    StageRun& sr = *srp;
    if (sr.skipped || !sr.submitted) continue;
    const bool receiver_stage = sr.stage.starts_at_transfer && !sr.standalone;
    auto handle = [&](TaskRun& task) {
      if (receiver_stage) {
        // Completed receivers lose their written shuffle blocks with the
        // node; that is discovered lazily at fetch time like any map loss.
        if (task.done || task.node != node) return;
        ++sr.metrics.task_failures;
        ++metrics_.task_failures;
        RecoverReceiver(task);
        return;
      }
      if (task.done) {
        // Finished transfer producer whose push is still in flight from
        // this node: the buffered output died with the executor, so the
        // producer task itself must be re-run (its receiver is reset by
        // RestartTask/ResubmitCompletedTask). Finished *map* outputs stay
        // registered until a fetch failure (lazy detection).
        if (sr.stage.output == StageOutputKind::kTransferProduce &&
            sr.stage.transfer_consumer >= 0 && task.node == node) {
          TaskRun& recv =
              *stage_run(sr.stage.transfer_consumer).tasks[task.partition];
          if (!recv.done && recv.producer_done && !recv.data_landed &&
              recv.producer_node == node) {
            ++recv.epoch;
            recv.producer_done = false;
            recv.receiver_started = false;
            recv.inbox.reset();
            recv.inbox_bytes = 0;
            ResubmitCompletedTask(sr, task);
          }
        }
        return;
      }
      if (!task.assigned) return;  // queued tasks simply avoid the node
      const bool hit =
          task.node == node ||
          std::find(task.gather_srcs.begin(), task.gather_srcs.end(), node) !=
              task.gather_srcs.end();
      if (!hit) return;
      ++sr.metrics.task_failures;
      ++metrics_.task_failures;
      RestartTask(task);
    };
    for (auto& t : sr.tasks) handle(*t);
    for (auto& t : sr.backups) handle(*t);
  }
}

void JobRunner::RestartTask(TaskRun& task) {
  StageRun& sr = stage_run(task.stage);
  GS_CHECK(!task.done);
  GS_LOG_INFO << "restarting task " << sr.stage.id << "/" << task.partition
              << " (attempt " << task.attempt + 1 << ")";
  ++task.epoch;
  // A running transfer producer that already pushed: if the push has not
  // landed, it dies with this node — reset the receiver so the re-run's
  // push is accepted.
  if (sr.stage.output == StageOutputKind::kTransferProduce &&
      sr.stage.transfer_consumer >= 0) {
    TaskRun& recv =
        *stage_run(sr.stage.transfer_consumer).tasks[task.partition];
    if (!recv.done && recv.producer_done && !recv.data_landed &&
        recv.producer_node == task.node) {
      ++recv.epoch;
      recv.producer_done = false;
      recv.receiver_started = false;
      recv.inbox.reset();
      recv.inbox_bytes = 0;
    }
  }
  // Frees the held slot when the task is restarted because a gather
  // *source* died; with the task's own node down only the tenant's busy
  // count balances (the slot died with the executor).
  cluster_.scheduler().ReleaseSlot(task.node, tenant_);
  ++task.attempt;
  task.assigned = false;
  task.node = kNoNode;
  task.gather_srcs.clear();
  task.gathered.clear();
  task.pending_gathers = 0;
  task.in_bytes = 0;
  SubmitTask(task);
}

void JobRunner::ResubmitCompletedTask(StageRun& sr, TaskRun& task) {
  GS_CHECK(task.done);
  task.done = false;
  --sr.tasks_done;
  sr.partition_done[task.partition] = false;
  // The stage will re-fire OnStageDone when the re-run completes.
  sr.done = false;
  ++task.epoch;
  ++task.attempt;
  if (sr.stage.starts_at_transfer && !sr.standalone) {
    // Re-run of a receiver: re-push the retained inbox to a fresh node in
    // the aggregator subset (recovery stays datacenter-local there).
    GS_CHECK(task.producer_done && task.inbox != nullptr);
    task.assigned = false;
    task.receiver_started = false;
    task.data_landed = false;
    task.node = PickReceiverNode(sr, kNoNode);
    if (!cluster_.scheduler().node_up(task.producer_node)) {
      // The push source died too: recompute the producer, which re-pushes.
      task.producer_done = false;
      task.inbox.reset();
      task.inbox_bytes = 0;
      StageRun& producer_sr = stage_run(sr.stage.transfer_producer);
      TaskRun& pt = *producer_sr.tasks[task.partition];
      if (pt.done) {
        ResubmitCompletedTask(producer_sr, pt);
      } else if (pt.assigned) {
        RestartTask(pt);
      }
      return;
    }
    TryDeliver(task);
    return;
  }
  task.assigned = false;
  task.node = kNoNode;
  task.gather_srcs.clear();
  task.gathered.clear();
  task.pending_gathers = 0;
  SubmitTask(task);
}

void JobRunner::HandleFetchFailure(TaskRun& task, ShuffleId sid,
                                   const std::vector<int>& missing) {
  StageRun& sr = stage_run(task.stage);
  ++metrics_.fetch_failures;
  ++sr.metrics.task_failures;
  ++metrics_.task_failures;
  GS_LOG_INFO << "fetch failure: stage " << sr.stage.id << "/"
              << task.partition << " is missing " << missing.size()
              << " map output(s) of shuffle " << sid;
  // Fail this attempt: give the slot back and park until the parent stage
  // regenerates the lost outputs. The eventual retry re-fetches the whole
  // shard — over the WAN under fetch-based shuffle, within the aggregator
  // datacenter under Push/Aggregate (the paper's Fig. 2 asymmetry).
  cluster_.scheduler().ReleaseSlot(task.node, tenant_);
  ++task.epoch;
  ++task.attempt;
  task.assigned = false;
  task.node = kNoNode;
  task.gathered.clear();
  task.gather_srcs.clear();

  // Invalidate only outputs that are still unusable *now*. This doomed
  // attempt observed the loss a gather-RTT ago; the parent map may have
  // re-run and re-registered in the meantime (another reducer's failure
  // already triggered recovery). Clobbering the fresh registration would
  // restart recovery and can live-lock the job: stale in-flight gathers
  // and map re-runs invalidating each other forever.
  const int shard = task.cut_partition;
  for (int m : missing) {
    const MapOutputLocation& cur = cluster_.tracker().Output(sid, m, shard);
    if (cur.node != kNoNode &&
        cluster_.blocks().Has(cur.node, BlockId::Shuffle(sid, m, shard))) {
      continue;  // regenerated since this attempt built its fetch list
    }
    cluster_.tracker().InvalidateMapOutput(sid, m);
  }

  const StageId parent_id = StageWritingShuffle(sid);
  StageRun& parent = stage_run(parent_id);
  GS_CHECK_MSG(!parent.skipped,
               "lost a shuffle written by a pruned (cache-covered) stage");
  // Resubmit exactly the missing map partitions — unless an earlier fetch
  // failure already did (their tasks are then marked not-done).
  int resubmitted = 0;
  for (int p = 0; p < parent.stage.num_tasks(); ++p) {
    if (cluster_.tracker().MapOutputRegistered(sid, p)) continue;
    TaskRun& mt = *parent.tasks[p];
    if (!mt.done) continue;
    ResubmitCompletedTask(parent, mt);
    ++resubmitted;
  }
  metrics_.map_resubmissions += resubmitted;
  if (parent.done) {
    // The parent already re-completed (recovery raced ahead of this
    // reducer); retry immediately.
    SubmitTask(task);
  } else {
    waiting_on_stage_[parent_id].push_back(&task);
  }
}

void JobRunner::RecoverReceiver(TaskRun& receiver) {
  StageRun& consumer = stage_run(receiver.stage);
  ++receiver.epoch;
  if (receiver.assigned) {
    // The receiver held a write-phase slot on the crashed node; balance
    // the tenant's busy accounting (the slot itself died with the node).
    cluster_.scheduler().ReleaseSlot(receiver.node, tenant_);
    receiver.assigned = false;
  } else if (receiver.data_landed && config_.adaptive.enabled) {
    // The write-phase request is still queued, pinned kNodeOnly to the
    // crashed node — it would sit in the scheduler's queue until that
    // node restarts. The epoch bump above already orphaned it; lift the
    // pin so the next free slot anywhere drains the entry (the stale
    // grant is released on delivery). Gated on adaptivity because the
    // extra grant/release cycle perturbs assignment order, and
    // non-adaptive runs must stay byte-identical to the seed goldens.
    cluster_.scheduler().UpdatePreferences(
        static_cast<TaskId>(receiver.stage) * 100000 + receiver.partition,
        {}, PlacementPolicy::kAnyAfterWait);
  }
  receiver.receiver_started = false;
  receiver.data_landed = false;
  if (!receiver.producer_done) {
    // Nothing pushed yet: just re-place; the producer's push will follow
    // the new destination.
    receiver.node = PickReceiverNode(consumer, receiver.node);
    return;
  }
  if (!cluster_.scheduler().node_up(receiver.producer_node)) {
    // Double fault: the push source died too, so the retained output is
    // gone — recompute the producer, which will re-notify.
    receiver.producer_done = false;
    receiver.inbox.reset();
    receiver.inbox_bytes = 0;
    receiver.node = PickReceiverNode(consumer, kNoNode);
    StageRun& producer_sr = stage_run(consumer.stage.transfer_producer);
    TaskRun& pt = *producer_sr.tasks[receiver.partition];
    if (pt.done) {
      ResubmitCompletedTask(producer_sr, pt);
    } else if (pt.assigned) {
      RestartTask(pt);
    }
    return;
  }
  if (receiver.push_retries >= config_.transport.max_push_retries) {
    // Retries exhausted: degrade the push to the producer's own node — a
    // co-located no-op write, after which downstream reducers *fetch* that
    // partition (push falls back to fetch).
    receiver.push_fallback = true;
    ++metrics_.push_fallbacks;
    receiver.node = receiver.producer_node;
    GS_LOG_INFO << "push fallback: stage " << consumer.stage.id << "/"
                << receiver.partition << " degrades to fetch from "
                << topo_.node(receiver.node).name;
    TryDeliver(receiver);
    return;
  }
  ++receiver.push_retries;
  ++metrics_.push_retries;
  receiver.node = PickReceiverNode(consumer, kNoNode);
  const SimTime backoff =
      config_.transport.push_retry_backoff *
      std::pow(config_.transport.push_backoff_factor,
               receiver.push_retries - 1);
  GS_LOG_INFO << "push retry " << receiver.push_retries << " for stage "
              << consumer.stage.id << "/" << receiver.partition << " to "
              << topo_.node(receiver.node).name << " after " << backoff
              << "s";
  TaskRun* r = &receiver;
  const int epoch = receiver.epoch;
  sim_.Schedule(backoff, [this, r, epoch] {
    if (r->epoch != epoch) return;
    TryDeliver(*r);
  });
}

NodeIndex JobRunner::PickReceiverNode(StageRun& consumer, NodeIndex exclude) {
  GS_CHECK(!consumer.aggregator_dcs.empty());
  std::vector<NodeIndex> candidates;
  for (DcIndex dc : consumer.aggregator_dcs) {
    for (NodeIndex n : topo_.nodes_in(dc)) {
      if (topo_.node(n).worker && cluster_.scheduler().node_up(n) &&
          n != exclude) {
        candidates.push_back(n);
      }
    }
  }
  if (candidates.empty()) {
    // Aggregator subset fully down: spill to any live worker.
    for (NodeIndex n = 0; n < topo_.num_nodes(); ++n) {
      if (topo_.node(n).worker && cluster_.scheduler().node_up(n) &&
          n != exclude) {
        candidates.push_back(n);
      }
    }
  }
  GS_CHECK_MSG(!candidates.empty(), "no live worker to host a receiver");
  return candidates[consumer.rr_next++ % candidates.size()];
}

StageId JobRunner::StageWritingShuffle(ShuffleId sid) const {
  for (const auto& sr : stage_runs_) {
    if (sr->stage.output == StageOutputKind::kShuffleWrite &&
        sr->stage.consumer_shuffle->shuffle().id == sid) {
      return sr->stage.id;
    }
  }
  GS_CHECK_MSG(false, "no stage writes shuffle " << sid);
  return -1;
}

// ---------------------------------------------------------------------------
// Adaptive replanning (docs/ADAPTIVE.md)
// ---------------------------------------------------------------------------

void JobRunner::OnWanDegraded(DcIndex src, DcIndex dst) {
  if (job_done_ || !config_.adaptive.enabled) return;
  // A pinned plan (the offline-oracle bench arm) never moves.
  if (config_.adaptive.pin_dc != kNoDc) return;
  GS_LOG_INFO << "adaptive: WAN change on dc" << src << "->dc" << dst
              << ", replanning job " << job_id_;
  ReplanReceivers();
}

void JobRunner::ReplanReceivers() {
  const SimTime now = sim_.Now();
  for (auto& srp : stage_runs_) {
    StageRun& consumer = *srp;
    if (!consumer.stage.starts_at_transfer || consumer.standalone) continue;
    if (!consumer.submitted || consumer.done || consumer.skipped) continue;
    // Rate limit: at most one pass per min_replan_interval of *strictly
    // later* time. Several degradation events landing at the same instant
    // (a fault plan collapsing a whole ingress at once) each re-run the
    // pass, so the last one sees every link already degraded. An event
    // inside the window schedules one catch-up pass at its end instead of
    // being dropped — the documented "absorbed by the next pass".
    const SimTime elapsed =
        consumer.last_replan < 0 ? -1 : now - consumer.last_replan;
    if (elapsed > 0 && elapsed < config_.adaptive.min_replan_interval) {
      if (!consumer.replan_pending) {
        consumer.replan_pending = true;
        const StageId sid = consumer.stage.id;
        sim_.ScheduleAt(
            consumer.last_replan + config_.adaptive.min_replan_interval,
            [this, sid] {
              StageRun& sr = stage_run(sid);
              sr.replan_pending = false;
              if (job_done_ || sr.done || sr.skipped) return;
              sr.last_replan = sim_.Now();
              if (ReplanStage(sr)) ++metrics_.replans;
            });
      }
      continue;
    }
    consumer.last_replan = now;
    if (ReplanStage(consumer)) ++metrics_.replans;
  }
}

bool JobRunner::ReplanStage(StageRun& consumer) {
  StageRun& producer_sr = stage_run(consumer.stage.transfer_producer);
  if (producer_sr.stage.consumer_transfer->target_dc() != kNoDc) {
    return false;  // the application pinned this transfer's destination
  }
  const AdaptiveConfig& ac = config_.adaptive;
  const std::vector<Bytes> per_dc = StageInputPerDc(producer_sr);
  AggregatorPlacementPolicy::Context ctx = PolicyContext();
  std::vector<DcIndex> ranking = policy_->Rank(ctx, per_dc);
  const int k = std::clamp(config_.aggregator_dc_count, 1,
                           topo_.num_datacenters());
  ranking.resize(k);

  // Hysteresis on the primary choice: abandon the current subset only when
  // the policy scores the new best at least `hysteresis` times cheaper —
  // an estimate barely better than the incumbent is noise, and moving on
  // it would thrash placements on every jitter wobble. The static policy
  // scores every datacenter 0, so it can never trigger a move.
  bool retargeted = false;
  if (ranking != consumer.aggregator_dcs) {
    const double cur =
        policy_->Score(ctx, per_dc, consumer.aggregator_dcs.front());
    const double alt = policy_->Score(ctx, per_dc, ranking.front());
    if (alt * ac.hysteresis < cur) {
      GS_LOG_INFO << "replan: stage " << consumer.stage.id << " aggregator "
                  << topo_.datacenter(consumer.aggregator_dcs.front()).name
                  << " -> " << topo_.datacenter(ranking.front()).name
                  << " (est. " << cur << "s -> " << alt << "s)";
      consumer.aggregator_dcs = std::move(ranking);
      retargeted = true;
    }
  }

  // Per-shard pass over receivers whose push has not started (placed but
  // nothing in flight; the producer's eventual push follows receiver.node
  // read at delivery time, so moving them costs nothing). Shards already
  // pushing or landed keep their placement — their WAN cost is paid.
  int moved = 0;
  int fallbacks = 0;
  for (auto& tp : consumer.tasks) {
    TaskRun& r = *tp;
    if (r.done || r.push_fallback || r.receiver_started ||
        r.node == kNoNode) {
      continue;
    }
    NodeIndex target = r.node;
    const DcIndex cur_dc = topo_.dc_of(r.node);
    const auto& targets = consumer.aggregator_dcs;
    if (retargeted &&
        std::find(targets.begin(), targets.end(), cur_dc) == targets.end()) {
      // The shard sits in a dropped datacenter. Mirror PlaceReceiver:
      // transparent co-location when the producer is inside the new
      // subset, round-robin over the subset's live workers otherwise.
      if (r.producer_node != kNoNode &&
          std::find(targets.begin(), targets.end(),
                    topo_.dc_of(r.producer_node)) != targets.end()) {
        target = r.producer_node;
      } else {
        target = PickReceiverNode(consumer, r.node);
      }
    }

    // Per-shard push->fetch fallback: when the push path into the chosen
    // datacenter has measurably collapsed — effective bandwidth below
    // degrade_threshold of the link's base rate — keep the shard on its
    // producer (a co-located no-op write) and let downstream reducers
    // fetch it. The mid-job analogue of RecoverReceiver's terminal
    // fallback, triggered by measurement instead of exhausted retries.
    if (r.producer_node != kNoNode &&
        topo_.dc_of(r.producer_node) != topo_.dc_of(target)) {
      const DcIndex src_dc = topo_.dc_of(r.producer_node);
      const DcIndex dst_dc = topo_.dc_of(target);
      const int link = topo_.wan_link_index(src_dc, dst_dc);
      if (link >= 0 &&
          cluster_.network().EstimateWanBandwidth(
              src_dc, dst_dc, ac.bandwidth_window) <
              ac.degrade_threshold * topo_.wan_link(link).base_rate) {
        target = r.producer_node;
        r.push_fallback = true;
        ++fallbacks;
        GS_LOG_INFO << "adaptive fallback: stage " << consumer.stage.id
                    << "/" << r.partition << " degrades to fetch from "
                    << topo_.node(target).name;
      }
    }

    if (target == r.node) continue;
    r.node = target;
    if (!r.push_fallback) ++moved;
    // If the producer already finished (the shard was in a push-retry
    // backoff), deliver to the new node right away — the pending backoff
    // event no-ops on receiver_started. Otherwise the producer's push
    // will read the new node when it fires.
    TryDeliver(r);
  }
  metrics_.receivers_moved += moved;
  metrics_.adaptive_fallbacks += fallbacks;
  return retargeted || moved > 0 || fallbacks > 0;
}

// ---------------------------------------------------------------------------
// Transfer (push) path
// ---------------------------------------------------------------------------

void JobRunner::PlaceReceiver(StageRun& producer_sr, TaskRun& producer_task) {
  StageRun& consumer = stage_run(producer_sr.stage.transfer_consumer);
  TaskRun& receiver = *consumer.tasks[producer_task.partition];
  if (receiver.node != kNoNode) return;  // producer retry: keep placement
  receiver.producer_node = producer_task.node;
  const std::vector<DcIndex>& targets = consumer.aggregator_dcs;
  GS_CHECK(!targets.empty());
  const DcIndex producer_dc = topo_.dc_of(producer_task.node);
  if (std::find(targets.begin(), targets.end(), producer_dc) !=
      targets.end()) {
    // Already in an aggregator datacenter: the transferTo task is
    // transparent (Sec. IV-C2) — no data moves.
    receiver.node = producer_task.node;
    return;
  }
  // Mimic the Task Scheduler's host-level pick within the aggregator
  // subset: spread receivers round-robin over datacenters, then workers.
  // Only live workers qualify — a receiver pinned to a crashed executor
  // accepts the push and then waits forever for a slot (its write phase is
  // kNodeOnly, which never spills). If the chosen datacenter has no live
  // worker, fall back to recovery's pick over the whole subset.
  const int cursor = consumer.rr_next++;
  const DcIndex dc = targets[cursor % targets.size()];
  std::vector<NodeIndex> workers;
  for (NodeIndex n : topo_.nodes_in(dc)) {
    if (topo_.node(n).worker && cluster_.scheduler().node_up(n)) {
      workers.push_back(n);
    }
  }
  if (workers.empty()) {
    receiver.node = PickReceiverNode(consumer, kNoNode);
    return;
  }
  receiver.node =
      workers[(cursor / targets.size()) % workers.size()];
}

void JobRunner::NotifyReceiver(StageRun& producer_sr, TaskRun& producer_task,
                               std::vector<Record> records,
                               Bytes push_bytes) {
  GS_CHECK(producer_sr.stage.transfer_consumer >= 0);
  StageRun& consumer = stage_run(producer_sr.stage.transfer_consumer);
  TaskRun& receiver = *consumer.tasks[producer_task.partition];
  // A restarted producer re-notifies; if the first attempt's push already
  // made it out (data landed, or still flowing from a live node), keep it.
  if (receiver.producer_done) return;
  // Pushed data is serialized and compressed like any shuffle stream;
  // `push_bytes` is the compute job's CompressedSize of `records`.
  receiver.inbox_bytes = push_bytes;
  receiver.inbox = MakeRecords(std::move(records));
  receiver.producer_done = true;
  receiver.producer_node = producer_task.node;
  TryDeliver(receiver);
}

void JobRunner::TryDeliver(TaskRun& receiver) {
  if (receiver.node == kNoNode || !receiver.producer_done ||
      receiver.receiver_started) {
    return;
  }
  receiver.receiver_started = true;
  TaskRun* r = &receiver;
  const int epoch = receiver.epoch;
  if (receiver.producer_node == receiver.node) {
    // Co-located: the transferTo task is transparent (Sec. IV-C2).
    sim_.Schedule(kLocalHandoff, [this, r, epoch] {
      if (r->epoch != epoch) return;
      ReceiverGotData(*r);
    });
  } else {
    AccountFlow(receiver.producer_node, receiver.node, receiver.inbox_bytes,
                FlowKind::kShufflePush);
    ShardTransfer transfer;
    transfer.src = receiver.producer_node;
    transfer.dst = receiver.node;
    transfer.bytes = receiver.inbox_bytes;
    transfer.kind = FlowKind::kShufflePush;
    transfer.on_landed = [this, r, epoch] {
      if (r->epoch != epoch) return;
      ReceiverGotData(*r);
    };
    cluster_.transport().Transfer(std::move(transfer));
  }
}

void JobRunner::ReceiverGotData(TaskRun& receiver) {
  // The pushed bytes are on receiver.node; acquire a slot there for the
  // receive/write work (receivers consume aggregator-datacenter compute,
  // Sec. IV-E).
  receiver.data_landed = true;
  SubmitTask(receiver);
}

void JobRunner::ExecuteReceiver(TaskRun& receiver) {
  StageRun& sr = stage_run(receiver.stage);
  // Evaluate the receiver's narrow chain starting at the TransferredRdd.
  LeafRef leaf = ResolveLeaf(*sr.stage.output_rdd, receiver.partition);
  GS_CHECK(leaf.leaf->kind() == RddKind::kTransferred);

  TaskComputeSpec spec;
  spec.output_rdd = sr.stage.output_rdd.get();
  spec.partition = receiver.partition;
  spec.start.rdd = leaf.leaf;
  spec.start.partition = leaf.partition;
  // Copy, don't consume: the inbox is retained so a crash of this node can
  // be recovered by re-pushing instead of recomputing the producer.
  spec.start.records = *receiver.inbox;
  // Receivers combine whenever the stage asks: disable_map_side_combine
  // only switches off the *map-side* pass (the Sec. IV-C3 knob); the
  // receiver's combine is the aggregation the transfer exists for.
  if (sr.stage.pre_output_combine) {
    spec.combine = &sr.stage.pre_output_combine;
  }
  spec.output = sr.stage.output;
  if (sr.stage.consumer_shuffle != nullptr) {
    spec.consumer_shuffle = &sr.stage.consumer_shuffle->shuffle();
  }
  receiver.in_bytes = receiver.inbox_bytes;

  // One compute path for every task kind: receivers run through the pool
  // too, with an immediate join (their write phase is entered with the
  // output size in hand, so there is no gather window to overlap).
  TaskComputeResult out = cluster_.compute_pool()
                              .Submit([spec = std::move(spec)]() mutable {
                                return ComputeTask(std::move(spec));
                              })
                              .get();
  // Receiving is I/O-bound; charge a nominal CPU cost for deserialization.
  const SimTime cpu = config_.cost.CpuTime(0, out.out_bytes / 4);

  TaskRun* r = &receiver;
  const int epoch = receiver.epoch;
  sim_.Schedule(cpu, [this, r, epoch, out = std::move(out)]() mutable {
    if (r->epoch != epoch) return;
    for (auto& fill : out.cache_fills) {
      cluster_.blocks().Put(r->node, BlockId::Cached(fill.rdd, fill.partition),
                            fill.records);
    }
    OnComputeDone(*r, std::move(out));
  });
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void JobRunner::AccountFlow(NodeIndex src, NodeIndex dst, Bytes bytes,
                            FlowKind kind) {
  if (topo_.dc_of(src) == topo_.dc_of(dst)) return;
  switch (kind) {
    case FlowKind::kShuffleFetch:
      metrics_.cross_dc_fetch_bytes += bytes;
      break;
    case FlowKind::kShufflePush:
      metrics_.cross_dc_push_bytes += bytes;
      break;
    case FlowKind::kCentralize:
      metrics_.cross_dc_centralize_bytes += bytes;
      break;
    case FlowKind::kCodedMulticast:
      // Accounted per leg (one call per receiving datacenter), mirroring
      // the TrafficMeter's per-leg charge.
      metrics_.coded_multicast_bytes += bytes;
      break;
    case FlowKind::kCollect:
      // Driver traffic is excluded from the paper's Fig. 8 metric.
      return;
    case FlowKind::kStorePut:
    case FlowKind::kStoreGet:
    case FlowKind::kFabric:
      // Transport-internal kinds never reach per-job accounting: the
      // runner accounts the logical fetch/push before handing the leg to
      // the transport (so these metrics mean the same under every
      // backend).
      return;
    case FlowKind::kOther:
      break;
  }
  metrics_.cross_dc_bytes += bytes;
}

double JobRunner::StragglerFactor() {
  const CostModel& cost = config_.cost;
  double factor = std::exp(rng_.Normal(0.0, cost.straggler_sigma));
  if (cost.straggler_prob > 0 && rng_.Bernoulli(cost.straggler_prob)) {
    factor *= cost.straggler_factor;
  }
  return factor;
}

bool JobRunner::IsReducerStage(const StageRun& sr) const {
  for (const Rdd* leaf : CollectLeaves(*sr.stage.output_rdd)) {
    if (leaf->kind() == RddKind::kShuffled) return true;
  }
  return false;
}

std::vector<Bytes> JobRunner::StageInputPerDc(const StageRun& producer_sr) {
  std::vector<Bytes> per_dc(topo_.num_datacenters(), 0);
  for (int p = 0; p < producer_sr.stage.num_tasks(); ++p) {
    EvalCut cut = FindEvalCut(*producer_sr.stage.output_rdd, p,
                              cluster_.blocks());
    if (cut.is_cached_cut) {
      // Credit the nearest *live* replica — the node the stage's task will
      // actually read from. The first registered location may sit on a
      // down executor, and weighting its datacenter pulls the aggregator
      // toward a node that cannot even serve the block.
      const BlockId bid = BlockId::Cached(cut.rdd->id(), cut.partition);
      NodeIndex live = kNoNode;
      for (NodeIndex n : cluster_.blocks().Locations(bid)) {
        if (cluster_.scheduler().node_up(n)) {
          live = n;
          break;
        }
      }
      if (live == kNoNode) {
        GS_LOG_INFO << "aggregator choice: cached rdd" << cut.rdd->id()
                    << "/" << cut.partition
                    << " has no live replica; counting 0 bytes";
        CountPlacementMiss();
        continue;
      }
      std::optional<Block> b = cluster_.blocks().Get(live, bid);
      if (!b) {
        GS_LOG_INFO << "aggregator choice: cached rdd" << cut.rdd->id()
                    << "/" << cut.partition << " missing on "
                    << topo_.node(live).name << "; counting 0 bytes";
        CountPlacementMiss();
      }
      per_dc[topo_.dc_of(live)] += b ? b->bytes : 0;
      continue;
    }
    switch (cut.rdd->kind()) {
      case RddKind::kSource: {
        const auto& src = static_cast<const SourceRdd&>(*cut.rdd);
        NodeIndex loc = cluster_.SourceLocation(src, cut.partition);
        per_dc[topo_.dc_of(loc)] += src.partition(cut.partition).bytes;
        break;
      }
      case RddKind::kShuffled: {
        const auto& s = static_cast<const ShuffledRdd&>(*cut.rdd);
        const ShuffleId sid = s.shuffle().id;
        const int num_maps = cluster_.tracker().num_map_partitions(sid);
        for (int m = 0; m < num_maps; ++m) {
          const MapOutputLocation& out =
              cluster_.tracker().Output(sid, m, cut.partition);
          if (out.node != kNoNode) {
            per_dc[topo_.dc_of(out.node)] += out.bytes;
          }
        }
        break;
      }
      case RddKind::kTransferred: {
        // This stage's input arrives through its own receiver tasks; it
        // lives in the stage's (already decided) aggregator subset.
        // Weight by partition count — all partitions land there.
        GS_CHECK(!producer_sr.aggregator_dcs.empty());
        for (DcIndex dc : producer_sr.aggregator_dcs) per_dc[dc] += 1;
        break;
      }
      default:
        GS_CHECK_MSG(false, "unexpected boundary while choosing aggregator");
    }
  }
  return per_dc;
}

// ---------------------------------------------------------------------------
// Coded shuffle (docs/CODED.md)
// ---------------------------------------------------------------------------

int JobRunner::CodedR() const {
  return std::min(config_.coded.redundancy_r, topo_.num_datacenters());
}

NodeIndex JobRunner::CodedNodeInDc(DcIndex dc, int salt) const {
  std::vector<NodeIndex> workers;
  for (NodeIndex n : topo_.nodes_in(dc)) {
    if (topo_.node(n).worker) workers.push_back(n);
  }
  if (workers.empty()) return kNoNode;
  const int count = static_cast<int>(workers.size());
  for (int i = 0; i < count; ++i) {
    const NodeIndex cand = workers[(salt + i) % count];
    if (cluster_.scheduler().node_up(cand)) return cand;
  }
  return workers[salt % count];
}

void JobRunner::PutReplicaOutputs(ShuffleId sid, int map_partition,
                                  NodeIndex primary,
                                  const std::vector<RecordsPtr>& shard_records,
                                  const std::vector<Bytes>& shard_bytes) {
  const int num_dcs = topo_.num_datacenters();
  const DcIndex primary_dc = topo_.dc_of(primary);
  for (int j = 1; j < CodedR(); ++j) {
    const DcIndex dc = (primary_dc + j) % num_dcs;
    const NodeIndex mirror = CodedNodeInDc(dc, map_partition);
    if (mirror == kNoNode || !cluster_.scheduler().node_up(mirror)) continue;
    for (int k = 0; k < static_cast<int>(shard_records.size()); ++k) {
      cluster_.blocks().PutWithSize(mirror,
                                    BlockId::Shuffle(sid, map_partition, k),
                                    shard_records[k], shard_bytes[k]);
    }
  }
}

void JobRunner::StartCodedExchange(StageId id) {
  StageRun& sr = stage_run(id);
  const ShuffleId sid = sr.stage.consumer_shuffle->shuffle().id;
  MapOutputTracker& tracker = cluster_.tracker();
  const int num_maps = tracker.num_map_partitions(sid);
  const int num_shards = tracker.num_shards(sid);
  const int num_dcs = topo_.num_datacenters();
  const int r = CodedR();
  const int max_group = config_.coded.max_group > 0
                            ? std::min(config_.coded.max_group, num_dcs)
                            : r;

  sr.coded_pending = 1;  // guard, released once every transfer is launched

  // Ring replica set of map m: the primary's datacenter plus the next r-1.
  std::vector<DcIndex> primary_dc(num_maps, kNoDc);
  for (int m = 0; m < num_maps; ++m) {
    const NodeIndex p = tracker.primary_node(sid, m);
    if (p != kNoNode) primary_dc[m] = topo_.dc_of(p);
  }
  auto holds = [&](int m, DcIndex d) {
    if (primary_dc[m] == kNoDc) return false;
    return ((d - primary_dc[m]) % num_dcs + num_dcs) % num_dcs < r;
  };

  struct Segment {
    int m = 0;
    int k = 0;
    DcIndex home = 0;         // datacenter the shard consolidates into
    NodeIndex dst = kNoNode;  // landing node inside `home`
    Bytes bytes = 0;
  };
  std::vector<Segment> wan;  // segments with no replica in their home DC

  std::vector<std::vector<NodeIndex>>& prefs = coded_prefs_[sid];
  prefs.assign(num_shards, {});

  // Per-shard replica-inclusive shares: share[k][d] counts every segment
  // of shard k with a ring replica in datacenter d (free for k there).
  std::vector<std::vector<Bytes>> share(
      num_shards, std::vector<Bytes>(num_dcs, 0));
  for (int m = 0; m < num_maps; ++m) {
    if (primary_dc[m] == kNoDc) continue;
    for (int k = 0; k < num_shards; ++k) {
      const Bytes b = tracker.Output(sid, m, k).bytes;
      for (int j = 0; j < r; ++j) {
        share[k][(primary_dc[m] + j) % num_dcs] += b;
      }
    }
  }

  // Home assignment: argmax of the share, so every byte replicated into
  // the home stays off the WAN (on a point-to-point mesh the XOR multicast
  // is byte-neutral, so locality is where the entire WAN saving comes
  // from). One wrinkle: under a hash partitioner all shards see
  // statistically identical per-DC distributions, so a pure argmax can
  // collapse every home into one datacenter — and the XOR grouping below
  // needs pairwise-distinct, ring-compatible homes to form any group. Two
  // homes h, h' can anchor a group iff primaries p_a, p_b exist whose
  // rings make the pair mutually decodable with a common serving DC.
  auto pairable = [&](DcIndex h, DcIndex hp) {
    if (h == hp) return true;  // trivially co-homed; never anchors a group
    auto in_ring = [&](DcIndex d, DcIndex p) {
      return ((d - p) % num_dcs + num_dcs) % num_dcs < r;
    };
    for (DcIndex pa = 0; pa < num_dcs; ++pa) {
      if (!in_ring(hp, pa) || in_ring(h, pa)) continue;
      for (DcIndex pb = 0; pb < num_dcs; ++pb) {
        if (!in_ring(h, pb) || in_ring(hp, pb)) continue;
        for (DcIndex c = 0; c < num_dcs; ++c) {
          if (in_ring(c, pa) && in_ring(c, pb)) return true;
        }
      }
    }
    return false;
  };
  std::vector<DcIndex> home_of(num_shards, kNoDc);
  for (int k = 0; k < num_shards; ++k) {
    DcIndex home = 0;
    for (DcIndex d = 1; d < num_dcs; ++d) {
      if (share[k][d] > share[k][home]) home = d;
    }
    home_of[k] = home;
  }
  // If no two assigned homes can anchor a group, re-home the single shard
  // with the smallest byte regret to the compatible datacenter closest to
  // its argmax share — minimal diversification, bounded byte cost.
  bool diverse = false;
  for (int a = 0; a < num_shards && !diverse; ++a) {
    for (int b = a + 1; b < num_shards && !diverse; ++b) {
      diverse = home_of[a] != home_of[b] && pairable(home_of[a], home_of[b]);
    }
  }
  if (!diverse && num_shards >= 2) {
    int best_k = -1;
    DcIndex best_d = kNoDc;
    Bytes best_regret = 0;
    for (int k = 0; k < num_shards; ++k) {
      for (DcIndex d = 0; d < num_dcs; ++d) {
        if (d == home_of[k]) continue;
        bool anchors = false;
        for (int o = 0; o < num_shards && !anchors; ++o) {
          anchors = o != k && home_of[o] != d && pairable(home_of[o], d);
        }
        if (!anchors) continue;
        const Bytes regret = share[k][home_of[k]] - share[k][d];
        if (best_k < 0 || regret < best_regret) {
          best_k = k;
          best_d = d;
          best_regret = regret;
        }
      }
    }
    if (best_k >= 0) home_of[best_k] = best_d;
  }

  for (int k = 0; k < num_shards; ++k) {
    const DcIndex home = home_of[k];
    const NodeIndex landing = CodedNodeInDc(home, k);
    if (landing == kNoNode) continue;  // workerless datacenter

    // Reduce-side preference: the landing node first, then the other
    // workers of the home datacenter. SubmitTask pins coded reducers to
    // the preferred nodes' datacenters (kDcOnly), so every listed node
    // must keep the consolidated shard read off the WAN — a busy landing
    // node spills to a neighbour in the same datacenter, never to a
    // remote one that would re-fetch the whole shard cross-DC.
    prefs[k].push_back(landing);
    for (NodeIndex n : topo_.nodes_in(home)) {
      if (n != landing && topo_.node(n).worker) prefs[k].push_back(n);
    }

    for (int m = 0; m < num_maps; ++m) {
      const MapOutputLocation& out = tracker.Output(sid, m, k);
      if (out.node == kNoNode || primary_dc[m] == kNoDc) continue;
      if (out.bytes == 0) {
        // Nothing to move; land the (empty) block so gathers find it.
        DeliverCodedSegment(sid, m, k, out.node, landing);
        continue;
      }
      Segment seg;
      seg.m = m;
      seg.k = k;
      seg.home = home;
      seg.dst = landing;
      seg.bytes = out.bytes;
      if (holds(m, home)) {
        // A replica already sits in the home datacenter: consolidate onto
        // the landing node with an intra-DC copy (NIC time, no WAN).
        const NodeIndex holder =
            home == primary_dc[m] ? out.node : CodedNodeInDc(home, m);
        if (holder != kNoNode &&
            cluster_.blocks().Has(holder, BlockId::Shuffle(sid, m, k))) {
          metrics_.coded_local_bytes += out.bytes;
          if (holder == landing) {
            DeliverCodedSegment(sid, m, k, holder, landing);
            continue;
          }
          ++sr.coded_pending;
          cluster_.network().StartFlow(
              holder, landing, out.bytes, FlowKind::kOther,
              [this, id, sid, seg, holder] {
                DeliverCodedSegment(sid, seg.m, seg.k, holder, seg.dst);
                CodedTransferDone(id);
              });
          continue;
        }
        // The in-home replica vanished (mirror died): fall through to WAN.
      }
      wan.push_back(seg);
    }
  }

  // XOR groups (Coded MapReduce): up to max_group segments with pairwise
  // distinct home datacenters, replicated together in some serving
  // datacenter, where each receiver already holds every other member — so
  // one multicast of the shortest member's length serves the whole group
  // and each home XORs out its own segment. Longer members' uncoded tails
  // go unicast. Greedy and deterministic over (shard, map) order.
  int groups = 0;
  std::vector<bool> used(wan.size(), false);
  for (std::size_t i = 0; i < wan.size(); ++i) {
    if (used[i]) continue;
    std::vector<std::size_t> group = {i};
    for (std::size_t j = i + 1;
         j < wan.size() && static_cast<int>(group.size()) < max_group; ++j) {
      if (used[j]) continue;
      bool ok = true;
      for (std::size_t g : group) {
        if (wan[g].home == wan[j].home || !holds(wan[g].m, wan[j].home) ||
            !holds(wan[j].m, wan[g].home)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      bool have_server = false;
      for (DcIndex c = 0; c < num_dcs && !have_server; ++c) {
        bool all = holds(wan[j].m, c);
        for (std::size_t g : group) all = all && holds(wan[g].m, c);
        have_server = all;
      }
      if (have_server) group.push_back(j);
    }
    for (std::size_t g : group) used[g] = true;

    if (group.size() < 2) {
      // Ungroupable: plain unicast of the whole segment from its primary.
      const Segment& seg = wan[i];
      const NodeIndex primary = tracker.primary_node(sid, seg.m);
      metrics_.coded_residual_bytes += seg.bytes;
      AccountFlow(primary, seg.dst, seg.bytes, FlowKind::kShuffleFetch);
      ++sr.coded_pending;
      cluster_.network().StartFlow(
          primary, seg.dst, seg.bytes, FlowKind::kShuffleFetch,
          [this, id, sid, seg, primary] {
            DeliverCodedSegment(sid, seg.m, seg.k, primary, seg.dst);
            CodedTransferDone(id);
          });
      continue;
    }

    // Serving datacenter: the smallest index replicating every member; the
    // coder node is the first member's holder there (intra-DC assembly of
    // the other members' segments is not charged — see docs/CODED.md).
    DcIndex serve = kNoDc;
    for (DcIndex c = 0; c < num_dcs && serve == kNoDc; ++c) {
      bool all = true;
      for (std::size_t g : group) all = all && holds(wan[g].m, c);
      if (all) serve = c;
    }
    GS_CHECK(serve != kNoDc);
    const Segment& first = wan[group[0]];
    const NodeIndex coder = serve == primary_dc[first.m]
                                ? tracker.primary_node(sid, first.m)
                                : CodedNodeInDc(serve, first.m);
    Bytes packet = first.bytes;
    for (std::size_t g : group) packet = std::min(packet, wan[g].bytes);

    ++groups;
    ++metrics_.coded_groups;
    // A member's block lands once both its coded packet (the multicast
    // completing) and its uncoded tail arrived.
    struct PendingDelivery {
      Segment seg;
      NodeIndex holder = kNoNode;
      int parts = 0;
    };
    auto pend = std::make_shared<std::vector<PendingDelivery>>();
    std::vector<NodeIndex> dsts;
    for (std::size_t g : group) {
      const Segment& seg = wan[g];
      dsts.push_back(seg.dst);
      AccountFlow(coder, seg.dst, packet, FlowKind::kCodedMulticast);
      pend->push_back({seg, tracker.primary_node(sid, seg.m),
                       seg.bytes > packet ? 2 : 1});
    }
    sr.coded_pending += static_cast<int>(group.size());
    auto part_done = [this, id, sid, pend](std::size_t idx) {
      PendingDelivery& p = (*pend)[idx];
      if (--p.parts > 0) return;
      DeliverCodedSegment(sid, p.seg.m, p.seg.k, p.holder, p.seg.dst);
      CodedTransferDone(id);
    };
    cluster_.network().StartMulticastFlow(
        coder, dsts, packet, FlowKind::kCodedMulticast,
        [part_done, n = pend->size()] {
          for (std::size_t x = 0; x < n; ++x) part_done(x);
        });
    for (std::size_t idx = 0; idx < pend->size(); ++idx) {
      const PendingDelivery& p = (*pend)[idx];
      const Bytes tail = p.seg.bytes - packet;
      if (tail <= 0) continue;
      metrics_.coded_residual_bytes += tail;
      AccountFlow(p.holder, p.seg.dst, tail, FlowKind::kShuffleFetch);
      cluster_.network().StartFlow(p.holder, p.seg.dst, tail,
                                   FlowKind::kShuffleFetch,
                                   [part_done, idx] { part_done(idx); });
    }
  }

  GS_LOG_INFO << "coded exchange: stage " << id << " shuffle " << sid << ": "
              << groups << " multicast group(s), " << sr.coded_pending - 1
              << " transfer(s) in flight";
  CodedTransferDone(id);  // release the guard
}

void JobRunner::DeliverCodedSegment(ShuffleId sid, int m, int k,
                                    NodeIndex holder, NodeIndex dst) {
  if (!cluster_.tracker().MapOutputRegistered(sid, m)) {
    return;  // invalidated while the transfer was in flight
  }
  const BlockId bid = BlockId::Shuffle(sid, m, k);
  std::optional<Block> b = cluster_.blocks().Get(holder, bid);
  if (!b) {
    // The source copy vanished mid-flight (crash): leave the tracker
    // alone; a reducer's fetch failure triggers the normal recovery.
    return;
  }
  if (holder != dst) {
    cluster_.blocks().PutWithSize(dst, bid, b->records, b->bytes);
  }
  cluster_.tracker().RelocateShard(sid, m, k, dst);
}

void JobRunner::CodedTransferDone(StageId id) {
  StageRun& sr = stage_run(id);
  GS_CHECK(sr.coded_pending > 0);
  if (--sr.coded_pending > 0) return;
  sr.coded_exchange_done = true;
  OnStageDone(id);
}

void JobRunner::AppendCodedAlternates(ShuffleId sid, int shard,
                                      std::vector<NodeIndex>* prefs) const {
  auto it = coded_prefs_.find(sid);
  if (it == coded_prefs_.end() ||
      shard >= static_cast<int>(it->second.size())) {
    return;
  }
  for (NodeIndex n : it->second[shard]) {
    if (std::find(prefs->begin(), prefs->end(), n) == prefs->end()) {
      prefs->push_back(n);
    }
  }
}

void JobRunner::CountPlacementMiss() {
  ++metrics_.placement_misses;
  if (MetricsRegistry* reg = cluster_.metrics_registry()) {
    // Registered lazily at the first miss so healthy runs' metric
    // snapshots stay byte-identical to the seed goldens.
    reg->counter("engine.placement_misses").Add(1);
  }
}

AggregatorPlacementPolicy::Context JobRunner::PolicyContext() {
  AggregatorPlacementPolicy::Context ctx;
  ctx.topo = &topo_;
  ctx.net = &cluster_.network();
  ctx.config = &config_;
  ctx.rng = &rng_;
  return ctx;
}

std::vector<DcIndex> JobRunner::ChooseAggregatorDcs(const StageRun& producer_sr) {
  const std::vector<Bytes> per_dc = StageInputPerDc(producer_sr);
  std::vector<DcIndex> ranking = policy_->Rank(PolicyContext(), per_dc);
  GS_CHECK(static_cast<int>(ranking.size()) == topo_.num_datacenters());
  const int k = std::clamp(config_.aggregator_dc_count, 1,
                           topo_.num_datacenters());
  ranking.resize(k);
  return ranking;
}

void JobRunner::CentralizeInputsThenStart() {
  DcIndex central = config_.central_dc;
  if (central == kNoDc) central = cluster_.ChooseCentralDc(final_rdd_);

  // Collect every source RDD reachable from the final RDD.
  std::vector<const SourceRdd*> sources;
  std::vector<const Rdd*> visited;
  std::function<void(const Rdd&)> walk = [&](const Rdd& rdd) {
    for (const Rdd* v : visited) {
      if (v == &rdd) return;
    }
    visited.push_back(&rdd);
    if (rdd.kind() == RddKind::kSource) {
      sources.push_back(static_cast<const SourceRdd*>(&rdd));
    }
    for (const RddPtr& p : rdd.parents()) walk(*p);
  };
  walk(*final_rdd_);

  const std::vector<NodeIndex>& central_nodes = topo_.nodes_in(central);
  std::vector<NodeIndex> central_workers;
  for (NodeIndex n : central_nodes) {
    if (topo_.node(n).worker) central_workers.push_back(n);
  }
  GS_CHECK(!central_workers.empty());

  StageMetrics relocation;
  relocation.id = -1;
  relocation.name = "input-centralization";
  relocation.submitted = sim_.Now();
  relocation.first_task_started = sim_.Now();

  auto pending = std::make_shared<int>(1);
  auto metrics_slot = std::make_shared<StageMetrics>(relocation);
  auto done_one = [this, pending, metrics_slot] {
    if (--*pending == 0) {
      metrics_slot->completed = sim_.Now();
      metrics_.stages.push_back(*metrics_slot);
      SubmitReadyStages();
    }
  };

  std::size_t rr = 0;
  for (const SourceRdd* src : sources) {
    for (int p = 0; p < src->num_partitions(); ++p) {
      NodeIndex loc = cluster_.SourceLocation(*src, p);
      if (topo_.dc_of(loc) == central) continue;
      NodeIndex dest = central_workers[rr++ % central_workers.size()];
      const std::int64_t key =
          (static_cast<std::int64_t>(src->id()) << 32) | p;
      ++*pending;
      metrics_slot->num_tasks++;
      AccountFlow(loc, dest, src->partition(p).bytes, FlowKind::kCentralize);
      cluster_.network().StartFlow(
          loc, dest, src->partition(p).bytes, FlowKind::kCentralize,
          [this, key, dest, done_one] {
            cluster_.relocations_[key] = dest;
            done_one();
          });
    }
  }
  done_one();  // release the guard
}

}  // namespace gs
