#include "engine/dataset.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace gs {

Dataset::Dataset(GeoCluster* cluster, RddPtr rdd)
    : cluster_(cluster), rdd_(std::move(rdd)) {
  GS_CHECK(cluster_ != nullptr);
  GS_CHECK(rdd_ != nullptr);
}

Dataset Dataset::Map(std::string name,
                     std::function<Record(const Record&)> fn) const {
  return MapPartitions(std::move(name), RecordMapFn(std::move(fn)));
}

Dataset Dataset::FlatMap(
    std::string name,
    std::function<std::vector<Record>(const Record&)> fn) const {
  return MapPartitions(std::move(name), RecordFlatMapFn(std::move(fn)));
}

Dataset Dataset::Filter(std::string name,
                        std::function<bool(const Record&)> fn) const {
  return MapPartitions(std::move(name), RecordFilterFn(std::move(fn)));
}

Dataset Dataset::MapPartitions(std::string name, MapPartitionsRdd::Fn fn) const {
  auto rdd = std::make_shared<MapPartitionsRdd>(
      cluster_->NextRddId(), std::move(name), rdd_, std::move(fn));
  return Dataset(cluster_, std::move(rdd));
}

Dataset Dataset::Union(const Dataset& other) const {
  GS_CHECK_MSG(other.cluster_ == cluster_,
               "cannot union datasets from different clusters");
  auto rdd = std::make_shared<UnionRdd>(
      cluster_->NextRddId(), "union",
      std::vector<RddPtr>{rdd_, other.rdd_});
  return Dataset(cluster_, std::move(rdd));
}

Dataset Dataset::Cache() const {
  rdd_->set_cached(true);
  return *this;
}

Dataset Dataset::ReduceByKey(const CombineFn& fn, int num_shards,
                             bool map_side_combine) const {
  ShuffleInfo info;
  info.id = cluster_->NextShuffleId();
  info.partitioner = std::make_shared<HashPartitioner>(num_shards);
  if (map_side_combine) info.map_side_combine = fn;
  info.reduce_combine = fn;
  auto rdd = std::make_shared<ShuffledRdd>(cluster_->NextRddId(),
                                           "reduceByKey", rdd_, std::move(info));
  return Dataset(cluster_, std::move(rdd));
}

Dataset Dataset::GroupByKey(int num_shards) const {
  ShuffleInfo info;
  info.id = cluster_->NextShuffleId();
  info.partitioner = std::make_shared<HashPartitioner>(num_shards);
  info.group_values = true;
  auto rdd = std::make_shared<ShuffledRdd>(cluster_->NextRddId(),
                                           "groupByKey", rdd_, std::move(info));
  return Dataset(cluster_, std::move(rdd));
}

Dataset Dataset::SortByKey(std::vector<std::string> boundaries) const {
  ShuffleInfo info;
  info.id = cluster_->NextShuffleId();
  info.partitioner =
      std::make_shared<RangePartitioner>(std::move(boundaries));
  info.sort_by_key = true;
  auto rdd = std::make_shared<ShuffledRdd>(cluster_->NextRddId(), "sortByKey",
                                           rdd_, std::move(info));
  return Dataset(cluster_, std::move(rdd));
}

Dataset Dataset::TransferTo(DcIndex target_dc) const {
  GS_CHECK(target_dc == kNoDc ||
           (target_dc >= 0 &&
            target_dc < cluster_->topology().num_datacenters()));
  auto rdd = std::make_shared<TransferredRdd>(
      cluster_->NextRddId(), "transferTo", rdd_, target_dc);
  return Dataset(cluster_, std::move(rdd));
}

RunResult Dataset::Run(ActionKind action) const {
  return cluster_->RunJob(rdd_, action);
}

JobHandle Dataset::Submit(ActionKind action, JobOptions opts) const {
  return cluster_->Submit(rdd_, action, std::move(opts));
}

std::vector<Record> Dataset::Collect() const {
  return Run(ActionKind::kCollect).records;
}

std::int64_t Dataset::Count() const {
  // Counting materializes the dataset but only ships per-partition counts;
  // modelled as a Save-style job plus a local reduction of the counts.
  RunResult r = Run(ActionKind::kSave);
  std::int64_t count = 0;
  for (const Record& rec : r.records) {
    count += std::get<std::int64_t>(rec.value);
  }
  return count;
}

RunResult Dataset::Save() const { return Run(ActionKind::kSave); }

}  // namespace gs
