// FaultInjector: materializes a FaultPlan into simulator events.
//
// Constructed by GeoCluster when RunConfig::fault.plan is non-empty. Every
// scheduled fault becomes an event on the shared simulator at construction
// time; the events fire during whatever job happens to be running then (or
// between jobs — component state changes either way, and losses are
// discovered lazily). Random crashes follow a Poisson process over the live
// workers, seeded from the run seed so chaos runs are reproducible.
#pragma once

#include "common/rng.h"
#include "engine/fault_plan.h"

namespace gs {

class GeoCluster;

class FaultInjector {
 public:
  FaultInjector(GeoCluster& cluster, const FaultPlan& plan, Rng rng);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  int crashes_fired() const { return crashes_fired_; }

 private:
  void ScheduleNextRandomCrash();
  void FireRandomCrash();

  GeoCluster& cluster_;
  FaultPlan plan_;
  Rng rng_;
  int crashes_fired_ = 0;
};

}  // namespace gs
