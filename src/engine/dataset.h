// Dataset: the fluent public API over the RDD graph.
//
// Mirrors the Spark RDD API the paper's applications use — map, flatMap,
// filter, union, reduceByKey, groupByKey, sortByKey, cache — plus the
// paper's new transformation, TransferTo() (Sec. IV-B), which developers
// may call explicitly; under Scheme::kAggShuffle the engine also inserts it
// implicitly before every shuffle (Sec. IV-D).
//
// Datasets are cheap handles (shared graph nodes); transformations are lazy
// and only actions (Collect/Save/Count) execute a job.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "engine/cluster.h"
#include "rdd/rdd.h"

namespace gs {

class Dataset {
 public:
  Dataset(GeoCluster* cluster, RddPtr rdd);

  const RddPtr& rdd() const { return rdd_; }
  int num_partitions() const { return rdd_->num_partitions(); }

  // ---- Narrow transformations -------------------------------------------
  Dataset Map(std::string name, std::function<Record(const Record&)> fn) const;
  Dataset FlatMap(std::string name,
                  std::function<std::vector<Record>(const Record&)> fn) const;
  Dataset Filter(std::string name,
                 std::function<bool(const Record&)> fn) const;
  Dataset MapPartitions(std::string name, MapPartitionsRdd::Fn fn) const;
  Dataset Union(const Dataset& other) const;

  // Marks this dataset cached: computed once, then reread from memory.
  Dataset Cache() const;

  // ---- Wide transformations ---------------------------------------------
  // Merge values of equal keys with `fn`. `map_side_combine` additionally
  // pre-merges on the map side (and before transferTo pushes, Sec. IV-C3).
  Dataset ReduceByKey(const CombineFn& fn, int num_shards,
                      bool map_side_combine = true) const;
  // Gather string values of equal keys into vector<string>.
  Dataset GroupByKey(int num_shards) const;
  // Range-partition by key and sort within each shard; concatenating shards
  // in order yields globally sorted output. Boundaries come from the
  // caller (TeraSort-style input sampling).
  Dataset SortByKey(std::vector<std::string> boundaries) const;

  // ---- The paper's transformation ---------------------------------------
  // Proactively transfers this dataset to the given datacenter (kNoDc =
  // pick the datacenter holding the largest input fraction automatically).
  // Returns a TransferredRdd handle; downstream shuffles then read
  // datacenter-local input.
  Dataset TransferTo(DcIndex target_dc = kNoDc) const;

  // ---- Actions ------------------------------------------------------------
  // Every action funnels through Run(): one job execution path, one result
  // type carrying records, metrics, trace and report (engine/cluster.h).
  // Run() is synchronous (Submit + Wait); Submit() enqueues the job on the
  // cluster's service and returns a handle, letting several jobs execute
  // concurrently (engine/job_api.h).
  RunResult Run(ActionKind action) const;
  JobHandle Submit(ActionKind action, JobOptions opts = {}) const;

  std::vector<Record> Collect() const;
  std::int64_t Count() const;  // records in the dataset; Save-style traffic
  RunResult Save() const;      // materialize on workers, ack to driver

 private:
  GeoCluster* cluster_;
  RddPtr rdd_;
};

}  // namespace gs
