// Execution tracing: task, stage and flow timelines.
//
// Sec. IV-E notes that expressing cross-region transfers as computation
// lets them be visualized like any other work ("inter-datacenter data
// transfers can be shown from the Spark WebUI... visualizing the critical
// inter-datacenter traffic"). TraceCollector records spans during a run
// and exports either a Chrome-trace JSON (load in chrome://tracing or
// Perfetto; one process per datacenter, one track per node/link) or a
// plain-text Gantt rendering for terminals.
//
// Tracing is opt-in via RunConfig::observe.trace; each job's spans are
// moved into the RunResult returned by the action (RunResult::trace).
// Overhead when disabled is a null-pointer check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace gs {

struct TraceSpan {
  enum class Kind {
    kTask,      // one task attempt: gather+compute+output on a node
    kFlow,      // one network flow on a datacenter-pair link
    kStage,     // stage span (submission to completion)
    kPhase,     // sub-task phase (gather / compute / output)
  };

  Kind kind = Kind::kTask;
  std::string name;       // e.g. "stage2/part5" or "push dc0->dc3"
  std::string category;   // e.g. "map", "reduce", "receiver", "shuffle-push"
  SimTime start = 0;
  SimTime end = 0;
  // Track identity: for tasks/phases the node; for flows the (src,dst)
  // datacenter pair; for stages the driver.
  DcIndex dc = kNoDc;
  NodeIndex node = kNoNode;
  DcIndex peer_dc = kNoDc;  // flows only: destination datacenter
  Bytes bytes = 0;          // flows: size; tasks: output size

  double duration() const { return end - start; }
};

class TraceCollector {
 public:
  void Add(TraceSpan span);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  void Clear() { spans_.clear(); }

  // Chrome trace event format ("traceEvents" JSON): pid = datacenter,
  // tid = node or WAN link, complete events ("ph":"X") with microsecond
  // timestamps (1 simulated second = 1s of trace time).
  std::string ToChromeTraceJson() const;

  // Fixed-width terminal Gantt chart: one row per node plus one per active
  // WAN link, time axis scaled to `width` columns.
  std::string RenderGantt(int width = 100) const;

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace gs
