#include "engine/fault_injector.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "engine/cluster.h"

namespace gs {

FaultInjector::FaultInjector(GeoCluster& cluster, const FaultPlan& plan,
                             Rng rng)
    : cluster_(cluster), plan_(plan), rng_(std::move(rng)) {
  Simulator& sim = cluster_.simulator();
  const Topology& topo = cluster_.topology();

  for (const NodeCrashEvent& e : plan_.node_crashes) {
    GS_CHECK(e.node >= 0 && e.node < topo.num_nodes());
    GS_CHECK_MSG(topo.node(e.node).worker, "FaultPlan crashes a non-worker");
    sim.ScheduleAt(e.at, [this, e] {
      cluster_.CrashNode(e.node, e.restart_after);
    });
  }

  for (const LinkDegradationEvent& e : plan_.link_degradations) {
    GS_CHECK(e.src != kNoDc && e.dst != kNoDc && e.src != e.dst);
    GS_CHECK(e.factor >= 0);
    sim.ScheduleAt(e.at, [this, e] {
      GS_LOG_INFO << "link degradation: dc" << e.src << "->dc" << e.dst
                  << " x" << e.factor
                  << (e.symmetric ? " (both directions)" : "");
      // Routed through the cluster so executing jobs hear about the flap
      // and adaptive runners can replan (docs/ADAPTIVE.md).
      cluster_.SetWanDegradation(e.src, e.dst, e.factor, e.symmetric);
    });
    if (e.duration > 0) {
      sim.ScheduleAt(e.at + e.duration, [this, e] {
        GS_LOG_INFO << "link restored: dc" << e.src << "->dc" << e.dst;
        cluster_.SetWanDegradation(e.src, e.dst, 1.0, e.symmetric);
      });
    }
  }

  for (const BlockLossEvent& e : plan_.block_losses) {
    GS_CHECK(e.node >= 0 && e.node < topo.num_nodes());
    sim.ScheduleAt(e.at, [this, e] {
      GS_LOG_INFO << "block loss on "
                  << cluster_.topology().node(e.node).name;
      cluster_.LoseShuffleBlocks(e.node);
    });
  }

  if (plan_.random_crashes.mean_interarrival > 0) {
    GS_CHECK_MSG(plan_.random_crashes.restart_after > 0,
                 "random crashes must restart (the cluster would drain)");
    ScheduleNextRandomCrash();
  }
}

void FaultInjector::ScheduleNextRandomCrash() {
  if (crashes_fired_ >= plan_.random_crashes.max_crashes) return;
  const SimTime gap =
      rng_.Exponential(plan_.random_crashes.mean_interarrival);
  cluster_.simulator().Schedule(gap, [this] { FireRandomCrash(); });
}

void FaultInjector::FireRandomCrash() {
  const Topology& topo = cluster_.topology();
  std::vector<NodeIndex> victims;
  for (NodeIndex n = 0; n < topo.num_nodes(); ++n) {
    if (topo.node(n).worker && cluster_.scheduler().node_up(n)) {
      victims.push_back(n);
    }
  }
  if (!victims.empty()) {
    const NodeIndex victim = victims[static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(victims.size()) - 1))];
    ++crashes_fired_;
    cluster_.CrashNode(victim, plan_.random_crashes.restart_after);
  }
  ScheduleNextRandomCrash();
}

}  // namespace gs
