// Pluggable aggregator-datacenter selection (docs/ADAPTIVE.md).
//
// The paper fixes the aggregator choice to Eq. 2 — the datacenter storing
// the largest fraction of the stage's shuffle input, decided once before
// the map stage runs. That volume-only rule is blind to link conditions:
// a datacenter whose ingress links are congested or flapping can store the
// most bytes and still be the slowest place to aggregate. Following
// Exoshuffle's argument that shuffle policy belongs in a pluggable layer,
// JobRunner routes its choice through this interface:
//
//  * StaticAggregatorPolicy — the paper's Eq. 2 chooser (plus the kRandom /
//    kSmallestInput ablation orderings), bit-compatible with the inlined
//    code it replaced. The default; runs with adaptivity off.
//  * BandwidthAwareAggregatorPolicy — scores each candidate datacenter by
//    the estimated time to aggregate the stage's input there, using
//    netsim's effective-bandwidth estimate (current link capacity minus
//    decayed measured load, Network::EstimateWanBandwidth). Selected by
//    AdaptiveConfig::enabled; the mid-job replanner re-runs it when a WAN
//    link degrades.
//  * PinnedAggregatorPolicy — forces one datacenter
//    (AdaptiveConfig::pin_dc); the offline-oracle arm of bench_adaptive.
//
// Policies are pure rankers: they never mutate engine state, and the
// static backend consumes exactly the RNG draws the inlined code consumed,
// so runs with adaptivity off stay byte-identical to the seed goldens.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "engine/run_config.h"
#include "netsim/topology.h"

namespace gs {

class Network;

class AggregatorPlacementPolicy {
 public:
  // Everything a backend may consult. `net` carries the bandwidth
  // estimates and may be null in unit tests of the static backend (which
  // never dereferences it).
  struct Context {
    const Topology* topo = nullptr;
    Network* net = nullptr;
    const RunConfig* config = nullptr;
    Rng* rng = nullptr;  // consumed only by the static kRandom ordering
  };

  virtual ~AggregatorPlacementPolicy() = default;

  virtual const char* name() const = 0;

  // Ranks every datacenter, best first, given the stage's input bytes per
  // datacenter. Callers truncate to RunConfig::aggregator_dc_count.
  virtual std::vector<DcIndex> Rank(
      const Context& ctx, const std::vector<Bytes>& input_per_dc) = 0;

  // Estimated cost of aggregating `input_per_dc` into `dc` (seconds;
  // lower is better). The replanner's hysteresis test compares these.
  // Backends without a meaningful cost return 0 for every datacenter, so
  // score comparisons alone never trigger a move.
  virtual double Score(const Context& ctx,
                       const std::vector<Bytes>& input_per_dc,
                       DcIndex dc) const {
    (void)ctx;
    (void)input_per_dc;
    (void)dc;
    return 0;
  }
};

// Builds the backend RunConfig selects: pinned when adaptive.pin_dc is
// set, bandwidth-aware when adaptive.enabled, the static Eq. 2 chooser
// otherwise.
std::unique_ptr<AggregatorPlacementPolicy> MakeAggregatorPolicy(
    const RunConfig& config);

}  // namespace gs
