// ShuffleTransport: pluggable mechanism moving a produced shard's bytes to
// its consumers (docs/TRANSPORTS.md).
//
// The job runner owns shuffle *policy* — what to transfer, where the
// receiver lives, retry/fallback/fetch-failure recovery (epoch guards) —
// and the transport owns the *mechanism*: which netsim flows carry the
// bytes, over which resources, and when the landing callback fires. The
// contract:
//
//  * Transfer() is called once per remote shuffle leg (fetch or push),
//    after the runner has done its per-job traffic accounting for the
//    logical src -> dst movement. Co-located handoffs never reach the
//    transport (the runner short-circuits them, Sec. IV-C2).
//  * `on_landed` must eventually fire through the simulator, exactly once.
//    It is epoch-guarded by the runner: if the destination task was
//    restarted meanwhile, the callback no-ops and the in-flight bytes are
//    wasted — the same semantics as a stale direct fetch, so PR-1 recovery
//    (fetch-failure re-validation, push retry, push -> fetch fallback)
//    works unchanged under every backend.
//  * Non-shuffle kinds (cache/source reads the runner also routes here)
//    always take the direct node-to-node path; backends only specialize
//    kShuffleFetch/kShufflePush.
//
// Three backends ship (engine/transport/*_transport.h):
//   DirectTransport      — plain node-to-node flows; bit-identical to the
//                          pre-interface behavior.
//   ObjectStoreTransport — PUT to a storage tier, then GET to the
//                          consumer; trades JCT for egress dollars.
//   FabricTransport      — RDMA-class intra-DC fabric legs; WAN legs stay
//                          direct.
#pragma once

#include <functional>
#include <memory>

#include "common/ids.h"
#include "common/metrics_registry.h"
#include "common/units.h"
#include "engine/run_config.h"
#include "netsim/network.h"
#include "simcore/simulator.h"

namespace gs {

// One shuffle leg: `bytes` of shard data moving from the node holding them
// to the node consuming them. `kind` is the logical accounting category
// (kShuffleFetch / kShufflePush for shuffle legs; kOther for cache and
// source reads, which backends pass through directly).
struct ShardTransfer {
  NodeIndex src = kNoNode;
  NodeIndex dst = kNoNode;
  Bytes bytes = 0;
  FlowKind kind = FlowKind::kOther;
  std::function<void()> on_landed;  // epoch-guarded by the job runner
};

class ShuffleTransport {
 public:
  ShuffleTransport(Simulator& sim, Network& net) : sim_(sim), net_(net) {}
  virtual ~ShuffleTransport() = default;

  ShuffleTransport(const ShuffleTransport&) = delete;
  ShuffleTransport& operator=(const ShuffleTransport&) = delete;

  virtual TransportKind kind() const = 0;
  const char* name() const { return TransportKindName(kind()); }

  // Moves the shard; consumes t.on_landed.
  virtual void Transfer(ShardTransfer t) = 0;

 protected:
  // The plain node-to-node flow every backend falls back to for
  // non-shuffle kinds (and DirectTransport uses for everything).
  void DirectFlow(ShardTransfer& t) {
    net_.StartFlow(t.src, t.dst, t.bytes, t.kind, std::move(t.on_landed));
  }

  Simulator& sim_;
  Network& net_;
};

// Builds the backend selected by `config.kind`, registering any service
// resources (object-store tiers, fabrics) against `net` — so this must run
// before any flow starts. `scale` divides the configured full-scale rates
// like every other capacity (RunConfig::scale). `metrics` may be null;
// backend counters (transport.store_puts, transport.fabric_transfers, ...)
// are only registered by the backends that bump them, keeping direct runs'
// metric snapshots untouched.
std::unique_ptr<ShuffleTransport> MakeTransport(const TransportConfig& config,
                                                double scale, Simulator& sim,
                                                Network& net,
                                                MetricsRegistry* metrics);

}  // namespace gs
