#include "engine/transport/object_store_transport.h"

#include <utility>

#include "common/check.h"
#include "netsim/topology.h"

namespace gs {

ObjectStoreTransport::ObjectStoreTransport(Simulator& sim, Network& net,
                                          const ObjectStoreConfig& config,
                                          double scale,
                                          MetricsRegistry* metrics)
    : ShuffleTransport(sim, net), config_(config) {
  GS_CHECK(scale > 0);
  const Topology& topo = net_.topology();
  GS_CHECK_MSG(config_.dc == kNoDc || (config_.dc >= 0 &&
                                       config_.dc < topo.num_datacenters()),
               "object-store dc out of range");
  store_res_.reserve(topo.num_datacenters());
  store_addr_.reserve(topo.num_datacenters());
  for (DcIndex dc = 0; dc < topo.num_datacenters(); ++dc) {
    store_res_.push_back(net_.AddServiceResource(config_.rate / scale));
    GS_CHECK_MSG(!topo.nodes_in(dc).empty(), "datacenter has no nodes");
    store_addr_.push_back(topo.nodes_in(dc).front());
  }
  if (metrics != nullptr) {
    puts_ = &metrics->counter("transport.store_puts");
    gets_ = &metrics->counter("transport.store_gets");
  }
}

DcIndex ObjectStoreTransport::StoreDcFor(NodeIndex src) const {
  return config_.dc == kNoDc ? net_.topology().dc_of(src) : config_.dc;
}

void ObjectStoreTransport::Transfer(ShardTransfer t) {
  if (t.kind != FlowKind::kShuffleFetch && t.kind != FlowKind::kShufflePush) {
    DirectFlow(t);
    return;
  }
  const DcIndex store_dc = StoreDcFor(t.src);

  Network::FlowSpec put;
  put.src = t.src;
  put.dst = store_addr_[store_dc];
  put.bytes = t.bytes;
  put.kind = FlowKind::kStorePut;
  put.src_uplink = true;
  put.dst_downlink = false;  // the tier's service resource is the sink
  put.service_res = store_res_[store_dc];
  put.extra_setup = config_.put_latency;
  if (puts_ != nullptr) puts_->Add(1);

  // The GET only starts once the PUT has landed in the store — the
  // store-and-forward barrier that costs this backend its extra JCT.
  net_.StartFlow(
      put, [this, store_dc, dst = t.dst, bytes = t.bytes,
            cb = std::move(t.on_landed)]() mutable {
        Network::FlowSpec get;
        get.src = store_addr_[store_dc];
        get.dst = dst;
        get.bytes = bytes;
        get.kind = FlowKind::kStoreGet;
        get.src_uplink = false;  // served by the tier, not a worker NIC
        get.dst_downlink = true;
        get.service_res = store_res_[store_dc];
        get.extra_setup = config_.get_latency;
        if (gets_ != nullptr) gets_->Add(1);
        net_.StartFlow(get, std::move(cb));
      });
}

}  // namespace gs
