#include "engine/transport/transport.h"

#include "common/check.h"
#include "engine/transport/direct_transport.h"
#include "engine/transport/fabric_transport.h"
#include "engine/transport/object_store_transport.h"

namespace gs {

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kDirect:
      return "direct";
    case TransportKind::kObjectStore:
      return "objstore";
    case TransportKind::kFabric:
      return "fabric";
  }
  GS_CHECK_MSG(false, "unknown transport kind");
  return "?";
}

std::unique_ptr<ShuffleTransport> MakeTransport(const TransportConfig& config,
                                                double scale, Simulator& sim,
                                                Network& net,
                                                MetricsRegistry* metrics) {
  switch (config.kind) {
    case TransportKind::kDirect:
      return std::make_unique<DirectTransport>(sim, net);
    case TransportKind::kObjectStore:
      return std::make_unique<ObjectStoreTransport>(
          sim, net, config.object_store, scale, metrics);
    case TransportKind::kFabric:
      return std::make_unique<FabricTransport>(sim, net, config.fabric, scale,
                                               metrics);
  }
  GS_CHECK_MSG(false, "unknown transport kind");
  return nullptr;
}

}  // namespace gs
