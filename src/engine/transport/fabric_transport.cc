#include "engine/transport/fabric_transport.h"

#include <utility>

#include "common/check.h"
#include "netsim/topology.h"

namespace gs {

FabricTransport::FabricTransport(Simulator& sim, Network& net,
                                 const FabricConfig& config, double scale,
                                 MetricsRegistry* metrics)
    : ShuffleTransport(sim, net), config_(config) {
  GS_CHECK(scale > 0);
  const Topology& topo = net_.topology();
  fabric_res_.reserve(topo.num_datacenters());
  for (DcIndex dc = 0; dc < topo.num_datacenters(); ++dc) {
    fabric_res_.push_back(net_.AddServiceResource(config_.rate / scale));
  }
  if (metrics != nullptr) {
    fabric_transfers_ = &metrics->counter("transport.fabric_transfers");
  }
}

void FabricTransport::Transfer(ShardTransfer t) {
  const Topology& topo = net_.topology();
  const bool shuffle = t.kind == FlowKind::kShuffleFetch ||
                       t.kind == FlowKind::kShufflePush;
  const DcIndex dc = topo.dc_of(t.src);
  if (!shuffle || t.src == t.dst || dc != topo.dc_of(t.dst)) {
    DirectFlow(t);  // non-shuffle or WAN leg: plain TCP path
    return;
  }

  Network::FlowSpec spec;
  spec.src = t.src;
  spec.dst = t.dst;
  spec.bytes = t.bytes;
  spec.kind = FlowKind::kFabric;
  spec.src_uplink = false;  // one-sided write: NICs bypassed, fabric shared
  spec.dst_downlink = false;
  spec.service_res = fabric_res_[dc];
  spec.extra_setup = config_.exchange_latency;
  if (fabric_transfers_ != nullptr) fabric_transfers_->Add(1);
  net_.StartFlow(spec, std::move(t.on_landed));
}

}  // namespace gs
