// DirectTransport: the paper's shuffle mechanism — every leg is a plain
// node-to-node flow over the sender NIC / WAN link / receiver NIC path.
// This backend is deliberately a pass-through so runs with
// TransportConfig::kind == kDirect are bit-identical to the
// pre-ShuffleTransport engine (the golden RunReports pin this).
#pragma once

#include "engine/transport/transport.h"

namespace gs {

class DirectTransport : public ShuffleTransport {
 public:
  DirectTransport(Simulator& sim, Network& net) : ShuffleTransport(sim, net) {}

  TransportKind kind() const override { return TransportKind::kDirect; }

  void Transfer(ShardTransfer t) override { DirectFlow(t); }
};

}  // namespace gs
