// ObjectStoreTransport: stage every remote shuffle leg through a cloud
// object store instead of streaming node-to-node (docs/TRANSPORTS.md).
//
// A leg src -> dst becomes two chained flows:
//
//   PUT  src -> store(dc):  sender uplink (+ WAN if the bucket is remote)
//                           + the store tier's shared service resource,
//                           after a put-request round-trip;
//   GET  store(dc) -> dst:  the service resource (+ WAN if dst is remote)
//                           + receiver downlink, after a get round-trip,
//                           started when the PUT completes.
//
// By default (ObjectStoreConfig::dc == kNoDc) each shard stages in its
// producer's datacenter, so the PUT is DC-local and only the GET crosses
// the WAN — cross-DC volume matches the direct transport while every byte
// additionally funnels through the store tier's aggregate rate. The
// store-and-forward barrier (a GET cannot start before its PUT finishes),
// the request latencies, and that shared tier cap are why this backend is
// slower than DirectTransport; it is cheaper because staged cross-region
// bytes ride the provider backbone at ObjectStoreTariff rates instead of
// the internet-egress tariff (netsim/pricing.h).
#pragma once

#include <vector>

#include "engine/transport/transport.h"

namespace gs {

class ObjectStoreTransport : public ShuffleTransport {
 public:
  // Registers one service resource per datacenter's store tier against
  // `net` (so no flow may have started yet). `scale` divides the
  // configured full-scale tier rate, matching the topology's NIC/WAN
  // scaling.
  ObjectStoreTransport(Simulator& sim, Network& net,
                       const ObjectStoreConfig& config, double scale,
                       MetricsRegistry* metrics);

  TransportKind kind() const override { return TransportKind::kObjectStore; }

  void Transfer(ShardTransfer t) override;

 private:
  DcIndex StoreDcFor(NodeIndex src) const;

  ObjectStoreConfig config_;
  // Per-datacenter store tier: netsim service resource + the node whose
  // address stands in for the tier's endpoint (fixes the DC for RTT and
  // WAN-link routing of PUT/GET legs).
  std::vector<int> store_res_;
  std::vector<NodeIndex> store_addr_;
  Counter* puts_ = nullptr;
  Counter* gets_ = nullptr;
};

}  // namespace gs
