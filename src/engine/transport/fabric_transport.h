// FabricTransport: RDMA-class interconnect for intra-datacenter shuffle
// (docs/TRANSPORTS.md).
//
// Shuffle legs whose endpoints share a datacenter bypass both endpoint
// NICs — one-sided writes land in pre-registered receive areas at close to
// fabric line rate, without the kernel/TCP overhead the NIC resources
// model — and instead share that datacenter's aggregate fabric capacity, a
// netsim service resource. The histogram exchange that sizes the receive
// areas before the writes (partition-size agreement) is a fixed
// per-transfer setup latency. Cross-datacenter legs are unchanged: RDMA
// does not survive WAN RTTs, so they take the direct TCP path.
#pragma once

#include <vector>

#include "engine/transport/transport.h"

namespace gs {

class FabricTransport : public ShuffleTransport {
 public:
  // Registers one service resource per datacenter's fabric against `net`
  // (so no flow may have started yet). `scale` divides the configured
  // full-scale fabric rate.
  FabricTransport(Simulator& sim, Network& net, const FabricConfig& config,
                  double scale, MetricsRegistry* metrics);

  TransportKind kind() const override { return TransportKind::kFabric; }

  void Transfer(ShardTransfer t) override;

 private:
  FabricConfig config_;
  std::vector<int> fabric_res_;  // per-datacenter service resource
  Counter* fabric_transfers_ = nullptr;
};

}  // namespace gs
