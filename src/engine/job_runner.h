// JobRunner: executes one action (job) on the simulated cluster.
//
// Drives the full lifecycle the paper describes:
//   build stages -> submit ready stages -> schedule tasks (locality-aware)
//   -> gather (disk reads / fetch flows / transfer receives) -> compute
//   (real record transformation + simulated CPU time) -> output (shuffle
//   write / transfer push / result delivery) -> stage completion -> next
//   stages -> job completion.
//
// Scheme differences are confined to three points:
//  * kAggShuffle rewrites the graph (transferTo before every shuffle) —
//    done by GeoCluster before the runner sees it;
//  * kCentralized runs an input-relocation phase before stage submission;
//  * transfer-producer stages push each computed partition to a paired
//    receiver task the moment it is ready (pipelining, Fig. 1b), while
//    fetch-based shuffles wait for the stage barrier (Fig. 1a).
#pragma once

#include <future>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "dag/stage.h"
#include "engine/cluster.h"
#include "engine/placement_policy.h"
#include "exec/task_compute.h"

namespace gs {

class JobRunner {
 public:
  JobRunner(GeoCluster& cluster, RddPtr final_rdd, ActionKind action,
            Rng rng, JobId job_id, int tenant);
  // Blocks until the compute pool is idle: attempts discarded by crash
  // recovery may still be computing jobs that reference this runner's
  // stage structures.
  ~JobRunner();

  // Builds the stage graph and schedules the job's first events; the job
  // then executes as the shared simulator advances, concurrently with any
  // other submitted jobs. On completion the runner notifies GeoCluster
  // (OnRunnerDone), which harvests TakeResult() and destroys the runner.
  void Start();

  bool done() const { return job_done_; }

  // Assembles stage metrics, engine counters and the result records.
  // Requires done(); call exactly once. The trace and report slots are
  // filled in by GeoCluster::FinalizeJob.
  RunResult TakeResult();

  // Fault notification from GeoCluster::CrashNode: the node's executor and
  // blocks are already gone; restart every affected in-flight task and
  // recover receivers whose pushed data was lost (see docs/FAULTS.md).
  void OnNodeCrashed(NodeIndex node);

  // Notification from GeoCluster::SetWanDegradation: a WAN link changed
  // capacity (degradation or restore). With adaptive replanning on
  // (AdaptiveConfig::enabled, no pin), re-runs the placement policy for
  // every in-flight transfer stage and moves not-yet-started receiver
  // shards off newly-inferior datacenters (docs/ADAPTIVE.md). A no-op
  // otherwise.
  void OnWanDegraded(DcIndex src, DcIndex dst);

 private:
  struct TaskRun {
    StageId stage = -1;
    int partition = -1;
    int attempt = 0;
    // Bumped every time this task is restarted or recovered. Every async
    // continuation captures the epoch at schedule time and no-ops if the
    // task moved on — this is how a crash "kills" callbacks belonging to a
    // dead attempt without tracking them individually.
    int epoch = 0;
    NodeIndex node = kNoNode;
    bool assigned = false;
    bool done = false;
    bool speculative = false;   // backup copy of a straggler
    bool has_backup = false;    // a speculative copy was launched
    SimTime assigned_at = 0;

    // Gather state.
    int pending_gathers = 0;
    std::vector<Record> gathered;
    std::vector<NodeIndex> gather_srcs;  // remote nodes being read from
    Bytes in_bytes = 0;
    bool gather_is_processed = false;  // records came from a cache hit
    const Rdd* cut_rdd = nullptr;
    int cut_partition = -1;
    // Missing map outputs discovered while building this shard's fetch
    // list. The gather still runs for the blocks that exist — by the time
    // a reducer notices a dead server, its concurrent fetches from healthy
    // nodes have already moved (and wasted) their bytes — and the attempt
    // fails once the partial gather lands.
    ShuffleId fetch_failed_sid = -1;
    std::vector<int> fetch_failed_maps;

    // In-flight compute: submitted to the pool when the gather starts,
    // joined at the simulated gather-done event (docs/PERF.md). A restart
    // simply overwrites the future; the orphaned job's result is dropped.
    std::future<TaskComputeResult> compute;

    // Receiver state (stages starting at a TransferredRdd). The inbox is
    // retained after execution so a lost receiver node can be re-pushed
    // without recomputing the producer (the producer keeps its transfer
    // output buffered until the receiver stage completes).
    bool producer_done = false;
    bool receiver_started = false;
    bool data_landed = false;   // pushed bytes arrived on `node`
    int push_retries = 0;
    bool push_fallback = false;  // degraded to producer-local placement
    RecordsPtr inbox;
    Bytes inbox_bytes = 0;
    NodeIndex producer_node = kNoNode;
  };

  struct StageRun {
    Stage stage;
    StageMetrics metrics;
    bool submitted = false;
    bool done = false;
    // Pruned: every downstream consumer is satisfied from cached blocks
    // (Spark's missing-parent-stages check); the stage never runs.
    bool skipped = false;
    // A receiver stage whose every partition is cache-covered runs as a
    // normal stage (gathering from the cache) instead of pairing with its
    // (pruned) producer.
    bool standalone = false;
    int tasks_done = 0;
    // Datacenters this stage's receiver tasks land in (usually one;
    // several when RunConfig::aggregator_dc_count > 1).
    std::vector<DcIndex> aggregator_dcs;
    int rr_next = 0;  // round-robin cursor for receiver placement
    // Last time the adaptive replanner reconsidered this stage's placement
    // (-1 = never); rate-limits replanning to AdaptiveConfig::
    // min_replan_interval so a bursty jitter trace cannot thrash. A WAN
    // change inside the window sets replan_pending and a catch-up pass
    // runs when the window expires, so absorbed events are not lost.
    SimTime last_replan = -1;
    bool replan_pending = false;
    std::vector<std::unique_ptr<TaskRun>> tasks;
    // Speculative backup attempts (spark.speculation) and which partitions
    // already have a winning attempt.
    std::vector<std::unique_ptr<TaskRun>> backups;
    std::vector<bool> partition_done;
    std::vector<double> completed_durations;
    bool spec_check_scheduled = false;
    // Coded-shuffle exchange (docs/CODED.md): a shuffle-write stage under
    // CodedConfig::enabled defers its completion until the exchange —
    // multicast groups, residual unicasts, in-DC consolidations — drains.
    int coded_pending = 0;
    bool coded_exchange_done = false;
  };

  // --- stage orchestration ---
  // Marks stages whose outputs are fully cache-covered as skipped, so
  // cached datasets are not recomputed (and not re-pushed) by later jobs.
  void PruneCachedStages();
  void SubmitReadyStages();
  bool StageIsReady(const StageRun& sr) const;
  void SubmitStage(StageId id);
  void LaunchTasks(StageId id);
  void OnStageDone(StageId id);

  // --- task lifecycle ---
  std::vector<NodeIndex> PreferredNodes(const StageRun& sr, int partition);
  void SubmitTask(TaskRun& task);
  void OnAssigned(TaskRun& task, NodeIndex node);
  void StartGather(TaskRun& task);
  void GatherArrived(TaskRun& task);  // one gather op finished
  // Packages the gathered records into a pure compute job; the future
  // lands in task.compute. Jobs accumulate in compute_batch_ and reach the
  // cluster's ThreadPool as one wave (single lock acquisition per worker
  // shard) at FlushComputeBatch — a gather barrier releasing k tasks at
  // the same instant enqueues them all at once.
  void SubmitCompute(TaskRun& task);
  // Hands the accumulated wave to the pool. Runs from a zero-delay event
  // scheduled by the first SubmitCompute of the instant, and eagerly from
  // OnGatherDone before joining a future (a same-instant gather can need
  // its result before the flush event fires). Idempotent.
  void FlushComputeBatch();
  void OnGatherDone(TaskRun& task);
  void OnComputeDone(TaskRun& task, TaskComputeResult out);
  void OnTaskFailed(TaskRun& task);
  void FinishTask(TaskRun& task);

  // --- fault recovery ---
  // A reducer found map outputs of `sid` missing while building its fetch
  // list: fail the attempt, invalidate the lost outputs (epoch bump),
  // resubmit exactly the missing partitions of the parent stage, and park
  // the reducer until the parent re-completes (Spark's fetch-failure path).
  void HandleFetchFailure(TaskRun& task, ShuffleId sid,
                          const std::vector<int>& missing);
  // Restarts a running task whose node died or whose gather source died.
  void RestartTask(TaskRun& task);
  // Re-runs a finished task (lost output that must be regenerated). Undoes
  // the stage's completion bookkeeping; the stage re-fires OnStageDone when
  // the re-run finishes.
  void ResubmitCompletedTask(StageRun& sr, TaskRun& task);
  // The receiver's node died: re-place it and re-push the retained inbox
  // after an exponential backoff, falling back to the producer's own node
  // (push degrades to fetch) once retries are exhausted.
  void RecoverReceiver(TaskRun& receiver);
  NodeIndex PickReceiverNode(StageRun& consumer, NodeIndex exclude);
  StageId StageWritingShuffle(ShuffleId sid) const;
  // Launches backup copies of stragglers once enough of the stage is done
  // (spark.speculation); only plain map/reduce/result stages speculate.
  void MaybeSpeculate(StageRun& sr);

  // --- transfer (push) path ---
  // Picks the receiver's node the moment its producer is placed, so the
  // push can start straight at producer completion (pipelining, Fig. 1b);
  // the receiver only acquires an executor slot for its write phase.
  void PlaceReceiver(StageRun& producer_sr, TaskRun& producer_task);
  void NotifyReceiver(StageRun& producer_sr, TaskRun& producer_task,
                      std::vector<Record> records, Bytes push_bytes);
  void TryDeliver(TaskRun& receiver);
  void ReceiverGotData(TaskRun& receiver);  // data landed: request a slot
  void ExecuteReceiver(TaskRun& receiver);  // slot acquired: run the chain

  // --- coded shuffle (docs/CODED.md) ---
  // Effective replication degree: redundancy_r clamped to the DC count.
  int CodedR() const;
  // Deterministic worker pick inside `dc` (salted round-robin, preferring
  // live nodes); kNoNode for a workerless datacenter. Chooses both the
  // mirror node holding map partition m's replica (salt = m) and the
  // landing node consolidating shard k (salt = k).
  NodeIndex CodedNodeInDc(DcIndex dc, int salt) const;
  // Mirrors a finished map partition's shuffle blocks onto one node in
  // each of the r-1 datacenters after the primary's on the ring (the
  // replicated map executions' outputs; their compute is charged in
  // OnGatherDone).
  void PutReplicaOutputs(ShuffleId sid, int map_partition, NodeIndex primary,
                         const std::vector<RecordsPtr>& shard_records,
                         const std::vector<Bytes>& shard_bytes);
  // The shuffle exchange, run when a shuffle-write stage's last task
  // finishes and before the stage is marked done: picks each shard's home
  // datacenter, serves segments replicated there locally, XOR-multicasts
  // decodable groups of the rest and unicasts the residue, re-pointing the
  // tracker at the landing nodes so reducer gathers read locally.
  void StartCodedExchange(StageId id);
  // Copies segment (m, k) from `holder` onto `dst` and re-points the
  // tracker; a vanished source copy is left for fetch-failure recovery.
  void DeliverCodedSegment(ShuffleId sid, int m, int k, NodeIndex holder,
                           NodeIndex dst);
  // One exchange transfer landed; completes the deferred stage when the
  // last one drains.
  void CodedTransferDone(StageId id);
  // Extends a reduce shard's preference list with the exchange's r-way
  // alternates (landing node first, then the largest replica holders).
  void AppendCodedAlternates(ShuffleId sid, int shard,
                             std::vector<NodeIndex>* prefs) const;
  // Satellite fix: a cached partition whose every replica is dead or
  // evicted at planning time is counted, not just logged.
  void CountPlacementMiss();

  // --- adaptive replanning (docs/ADAPTIVE.md) ---
  // Re-runs the placement policy for every in-flight transfer stage: moves
  // not-yet-started receiver shards off datacenters the policy now ranks
  // worse (hysteresis-guarded) and degrades individual shards push->fetch
  // when their push path's measured bandwidth fell below
  // degrade_threshold x base rate.
  void ReplanReceivers();
  // One consumer stage's replanning pass; returns true if anything moved.
  bool ReplanStage(StageRun& consumer);

  // --- helpers ---
  // Per-flow cross-datacenter traffic accounting, called at every
  // StartFlow site this job owns. Equivalent to metering: the TrafficMeter
  // also records at flow start, but its totals span all concurrent jobs,
  // so per-job numbers must be attributed at the call site.
  void AccountFlow(NodeIndex src, NodeIndex dst, Bytes bytes, FlowKind kind);
  double StragglerFactor();
  // Shuffle-input bytes per datacenter for the stage's pending transfer
  // (cached cuts credited to the nearest live replica; see
  // ChooseAggregatorDcs).
  std::vector<Bytes> StageInputPerDc(const StageRun& producer_sr);
  AggregatorPlacementPolicy::Context PolicyContext();
  // The top-k datacenters ranked by the placement policy (k =
  // aggregator_dc_count); the static policy reproduces Eq. 2 exactly,
  // the bandwidth-aware one scores by estimated aggregation time.
  std::vector<DcIndex> ChooseAggregatorDcs(const StageRun& producer_sr);
  void CentralizeInputsThenStart();
  StageRun& stage_run(StageId id) { return *stage_runs_[id]; }
  bool IsReducerStage(const StageRun& sr) const;

  GeoCluster& cluster_;
  Simulator& sim_;
  const Topology& topo_;
  const RunConfig& config_;
  RddPtr final_rdd_;
  ActionKind action_;
  Rng rng_;
  std::unique_ptr<AggregatorPlacementPolicy> policy_;
  JobId job_id_ = -1;
  int tenant_ = 0;  // scheduler tenant id tasks bill their slots to

  std::vector<std::unique_ptr<StageRun>> stage_runs_;
  StageId result_stage_ = -1;
  bool job_done_ = false;

  // Reduce tasks parked by a fetch failure, keyed by the parent stage they
  // wait on; resubmitted when that stage re-completes.
  std::unordered_map<StageId, std::vector<TaskRun*>> waiting_on_stage_;

  // Per-shard r-way reducer preference lists built by the coded exchange:
  // the landing node first, then the nodes holding the largest replica
  // share of the shard (fallbacks if the landing node is lost or busy).
  std::unordered_map<ShuffleId, std::vector<std::vector<NodeIndex>>>
      coded_prefs_;

  // Compute jobs awaiting the per-instant batched submission (see
  // SubmitCompute / FlushComputeBatch).
  std::vector<std::packaged_task<TaskComputeResult()>> compute_batch_;
  bool compute_flush_scheduled_ = false;

  std::vector<std::vector<Record>> results_;  // per result partition
  JobMetrics metrics_;
};

}  // namespace gs
