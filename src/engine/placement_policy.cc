#include "engine/placement_policy.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "netsim/network.h"

namespace gs {
namespace {

std::vector<DcIndex> IdentityRanking(int num_dcs) {
  std::vector<DcIndex> ranking(static_cast<std::size_t>(num_dcs));
  for (DcIndex dc = 0; dc < num_dcs; ++dc) {
    ranking[static_cast<std::size_t>(dc)] = dc;
  }
  return ranking;
}

// The paper's Eq. 2 chooser plus the ablation orderings, exactly as the
// inlined JobRunner code ranked them (stable sort over the identity
// ranking; kRandom consumes one Rng::Shuffle of the full vector).
class StaticAggregatorPolicy : public AggregatorPlacementPolicy {
 public:
  const char* name() const override { return "static"; }

  std::vector<DcIndex> Rank(
      const Context& ctx, const std::vector<Bytes>& input_per_dc) override {
    std::vector<DcIndex> ranking =
        IdentityRanking(static_cast<int>(input_per_dc.size()));
    switch (ctx.config->aggregator_policy) {
      case AggregatorPolicy::kRandom:
        ctx.rng->Shuffle(ranking);
        break;
      case AggregatorPolicy::kSmallestInput:
        std::stable_sort(ranking.begin(), ranking.end(),
                         [&input_per_dc](DcIndex a, DcIndex b) {
                           return input_per_dc[a] < input_per_dc[b];
                         });
        break;
      case AggregatorPolicy::kLargestInput:
        std::stable_sort(ranking.begin(), ranking.end(),
                         [&input_per_dc](DcIndex a, DcIndex b) {
                           return input_per_dc[a] > input_per_dc[b];
                         });
        break;
    }
    return ranking;
  }
};

// Scores each candidate datacenter by the estimated time to move the
// stage's input there over the measured WAN: bytes held in every other
// datacenter divided by the effective bandwidth of the link into the
// candidate. Input already inside the candidate costs nothing — which is
// exactly why Eq. 2's largest-input choice wins on healthy links, and why
// a degraded ingress link overturns it here.
class BandwidthAwareAggregatorPolicy : public AggregatorPlacementPolicy {
 public:
  const char* name() const override { return "bandwidth-aware"; }

  std::vector<DcIndex> Rank(
      const Context& ctx, const std::vector<Bytes>& input_per_dc) override {
    const int num_dcs = static_cast<int>(input_per_dc.size());
    std::vector<double> score(static_cast<std::size_t>(num_dcs));
    for (DcIndex dc = 0; dc < num_dcs; ++dc) {
      score[static_cast<std::size_t>(dc)] = Score(ctx, input_per_dc, dc);
    }
    std::vector<DcIndex> ranking = IdentityRanking(num_dcs);
    std::stable_sort(ranking.begin(), ranking.end(),
                     [&](DcIndex a, DcIndex b) {
                       if (score[a] != score[b]) return score[a] < score[b];
                       // Equal estimated times (e.g. an idle symmetric
                       // mesh): prefer the larger input, like Eq. 2.
                       return input_per_dc[a] > input_per_dc[b];
                     });
    return ranking;
  }

  double Score(const Context& ctx, const std::vector<Bytes>& input_per_dc,
               DcIndex dc) const override {
    GS_CHECK(ctx.net != nullptr && ctx.topo != nullptr);
    const SimTime window = ctx.config->adaptive.bandwidth_window;
    double seconds = 0;
    for (DcIndex src = 0;
         src < static_cast<DcIndex>(input_per_dc.size()); ++src) {
      const Bytes bytes = input_per_dc[static_cast<std::size_t>(src)];
      if (src == dc || bytes == 0) continue;
      if (ctx.topo->wan_link_index(src, dc) < 0) {
        return std::numeric_limits<double>::infinity();  // unreachable
      }
      const Rate bw = ctx.net->EstimateWanBandwidth(src, dc, window);
      if (bw <= 0) return std::numeric_limits<double>::infinity();
      seconds += static_cast<double>(bytes) / bw;
    }
    return seconds;
  }
};

// Forces one datacenter; the rest follow in index order (a multi-DC
// aggregator count still gets a deterministic tail).
class PinnedAggregatorPolicy : public AggregatorPlacementPolicy {
 public:
  const char* name() const override { return "pinned"; }

  std::vector<DcIndex> Rank(
      const Context& ctx, const std::vector<Bytes>& input_per_dc) override {
    const DcIndex pin = ctx.config->adaptive.pin_dc;
    std::vector<DcIndex> ranking =
        IdentityRanking(static_cast<int>(input_per_dc.size()));
    std::stable_sort(ranking.begin(), ranking.end(),
                     [pin](DcIndex a, DcIndex b) {
                       return (a == pin) > (b == pin);
                     });
    return ranking;
  }
};

}  // namespace

std::unique_ptr<AggregatorPlacementPolicy> MakeAggregatorPolicy(
    const RunConfig& config) {
  if (config.adaptive.pin_dc != kNoDc) {
    return std::make_unique<PinnedAggregatorPolicy>();
  }
  if (config.adaptive.enabled) {
    return std::make_unique<BandwidthAwareAggregatorPolicy>();
  }
  return std::make_unique<StaticAggregatorPolicy>();
}

}  // namespace gs
