// RunReport: structured, serializable snapshot of a run's observability.
//
// A report bundles everything the observability subsystem collects — the
// per-job JobMetrics, the MetricsRegistry snapshot, the per-WAN-link
// utilization timeseries and the WanPricing dollar cost — into one value
// with a deterministic JSON encoding. GeoCluster builds one per action
// (see RunResult in engine/cluster.h); `geosim --report=FILE` and the
// bench harness write it to disk.
//
// Scope note: JobMetrics describes the single job that produced the
// result, while the metrics/utilization/cost sections are cumulative over
// the cluster's lifetime (a multi-job workload's final report covers all
// its jobs). docs/OBSERVABILITY.md discusses the schema in detail.
//
// Determinism: ToJson() emits keys in a fixed order through JsonWriter, so
// for a fixed seed the bytes are identical across compute thread counts —
// tests/integration/compute_determinism_test.cc compares full reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/metrics_registry.h"
#include "common/units.h"
#include "engine/metrics.h"

namespace gs {

struct RunReport {
  // Bump when the JSON layout changes incompatibly.
  // v2: per-job `jobs` array; job section gained job_id/tenant/submitted/
  //     queue_delay (multi-tenant service, docs/SERVICE.md).
  //     Additive, still v2: runs under a non-direct ShuffleTransport gain a
  //     top-level `transport` key and an egress/store cost breakdown in the
  //     cost section (absent under DirectTransport, keeping direct reports
  //     byte-identical to pre-transport ones).
  //     Additive, still v2: adaptive runs (AdaptiveConfig::enabled) gain a
  //     top-level `adaptive` key and replans/receivers_moved/
  //     adaptive_fallbacks counters in the job section (absent with
  //     adaptivity off, keeping non-adaptive reports byte-identical).
  //     Additive, still v2: coded runs (CodedConfig::enabled) gain a
  //     top-level `coded` object and coded_* counters in the job section;
  //     jobs that hit a cached-input placement miss gain a
  //     placement_misses key (absent when zero — healthy reports stay
  //     byte-identical).
  static constexpr int kSchemaVersion = 2;

  // Run identity.
  std::string scheme;      // shuffle scheme name ("baseline", "transfer"...)
  // Shuffle-transport backend name ("objstore", "fabric"); empty or
  // "direct" suppresses the transport/cost-breakdown keys in ToJson().
  std::string transport;
  // True when the run used adaptive placement (AdaptiveConfig::enabled);
  // gates the adaptive keys in ToJson() the same way `transport` gates
  // the transport ones.
  bool adaptive = false;
  // True when the run used coded shuffle (CodedConfig::enabled); gates the
  // coded keys in ToJson() like `adaptive` above.
  bool coded = false;
  int coded_redundancy_r = 0;
  std::uint64_t seed = 0;
  double scale = 1.0;      // data-size scale factor of the run
  std::string label;       // free-form (workload or bench name); may be ""

  // Topology shape.
  int num_datacenters = 0;
  int num_nodes = 0;

  // The job that produced this report's RunResult.
  JobMetrics job;

  // One compact row per job completed on the cluster so far, in
  // completion order (cumulative, like the metrics section below).
  struct JobRow {
    JobId job_id = -1;
    std::string tenant;
    std::string label;
    SimTime submitted = 0;
    SimTime started = 0;
    SimTime completed = 0;
    Bytes cross_dc_bytes = 0;
    int task_failures = 0;

    SimTime queue_delay() const { return started - submitted; }
    SimTime jct() const { return completed - started; }
  };
  std::vector<JobRow> jobs;

  // MetricsRegistry snapshot (empty when metrics are disabled).
  bool metrics_enabled = false;
  std::vector<MetricSnapshot> metrics;

  // Per-WAN-link utilization timeseries. Only links that carried traffic
  // appear. Bucket b covers [b*bucket, (b+1)*bucket) sim-seconds; the sum
  // of `buckets` equals `total_bytes` equals the TrafficMeter pair bytes
  // (conservation invariant, tests/netsim/utilization_test.cc).
  struct LinkSeries {
    DcIndex src_dc = 0;
    DcIndex dst_dc = 0;
    std::string src_name;
    std::string dst_name;
    Rate base_rate = 0;       // nominal link capacity, bytes/sec
    Bytes total_bytes = 0;
    std::vector<Bytes> buckets;
  };
  SimTime utilization_bucket = 0;  // 0 when utilization is disabled
  std::vector<LinkSeries> links;

  // Total dollar cost so far — WanPricing egress on the cross-datacenter
  // bytes plus the object-store bill for staged traffic (zero except under
  // ObjectStoreTransport) — and the same extrapolated to full scale
  // (divide by `scale`).
  double cost_usd = 0;
  double cost_usd_full_scale = 0;
  // Breakdown of cost_usd, emitted only for non-direct transports.
  double egress_cost_usd = 0;
  double store_cost_usd = 0;

  // Trace summary (span counts only; the full trace lives in
  // RunResult::trace).
  struct TraceSummary {
    bool enabled = false;
    int spans = 0;
    int task_spans = 0;
    int stage_spans = 0;
    int flow_spans = 0;
    int phase_spans = 0;
    Bytes flow_bytes = 0;
  };
  TraceSummary trace;

  // Deterministic JSON encoding (fixed key order, gs::JsonNumber floats).
  std::string ToJson() const;
};

}  // namespace gs
