#include "engine/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/check.h"

namespace gs {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

const char* KindName(TraceSpan::Kind kind) {
  switch (kind) {
    case TraceSpan::Kind::kTask: return "task";
    case TraceSpan::Kind::kFlow: return "flow";
    case TraceSpan::Kind::kStage: return "stage";
    case TraceSpan::Kind::kPhase: return "phase";
  }
  return "?";
}

}  // namespace

void TraceCollector::Add(TraceSpan span) {
  GS_CHECK(span.end >= span.start);
  spans_.push_back(std::move(span));
}

std::string TraceCollector::ToChromeTraceJson() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : spans_) {
    if (!first) os << ",";
    first = false;
    // pid: datacenter (flows use src dc); tid: node, or a synthetic id for
    // WAN links (1000 + dst dc) so links group under the source region.
    int pid = s.dc;
    int tid = s.kind == TraceSpan::Kind::kFlow ? 1000 + s.peer_dc
              : s.node != kNoNode              ? s.node
                                               : 999;
    os << "{\"name\":\"" << JsonEscape(s.name) << "\",\"cat\":\""
       << JsonEscape(s.category) << "\",\"ph\":\"X\",\"ts\":"
       << static_cast<std::int64_t>(s.start * 1e6)
       << ",\"dur\":" << static_cast<std::int64_t>(s.duration() * 1e6)
       << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"args\":{\"kind\":\""
       << KindName(s.kind) << "\",\"bytes\":" << s.bytes << "}}";
  }
  os << "]}";
  return os.str();
}

std::string TraceCollector::RenderGantt(int width) const {
  GS_CHECK(width > 10);
  if (spans_.empty()) return "(empty trace)\n";

  SimTime t0 = spans_.front().start, t1 = spans_.front().end;
  for (const TraceSpan& s : spans_) {
    t0 = std::min(t0, s.start);
    t1 = std::max(t1, s.end);
  }
  const double span = std::max(1e-9, t1 - t0);

  // Row key: tasks/phases -> "node <n>", flows -> "wan <a>-><b>".
  std::map<std::string, std::string> rows;
  auto row_of = [&](const TraceSpan& s) {
    std::ostringstream key;
    if (s.kind == TraceSpan::Kind::kFlow) {
      if (s.dc == s.peer_dc) {
        key << "net  dc" << s.dc << " (intra)";
      } else {
        key << "wan  dc" << s.dc << "->dc" << s.peer_dc;
      }
    } else if (s.kind == TraceSpan::Kind::kStage) {
      key << "stages";
    } else {
      key << "node " << s.node;
    }
    return key.str();
  };
  auto mark_of = [](const TraceSpan& s) -> char {
    if (s.kind == TraceSpan::Kind::kFlow) {
      return s.category == "shuffle-push" ? '>' :
             s.category == "shuffle-fetch" ? '<' : '~';
    }
    if (s.kind == TraceSpan::Kind::kStage) return '=';
    if (s.category == "receiver") return 'r';
    if (s.category == "reduce") return 'R';
    return '#';
  };

  for (const TraceSpan& s : spans_) {
    std::string key = row_of(s);
    auto [it, inserted] = rows.try_emplace(key, std::string(width, ' '));
    std::string& lane = it->second;
    int a = static_cast<int>((s.start - t0) / span * (width - 1));
    int b = static_cast<int>((s.end - t0) / span * (width - 1));
    b = std::max(b, a);
    for (int i = a; i <= b && i < width; ++i) lane[i] = mark_of(s);
  }

  std::size_t label_width = 0;
  for (const auto& [key, lane] : rows) {
    label_width = std::max(label_width, key.size());
  }
  std::ostringstream os;
  os << "t = [" << t0 << "s, " << t1 << "s]  "
     << "(# task, r receiver, R reduce, > push, < fetch, ~ other)\n";
  for (const auto& [key, lane] : rows) {
    os << key << std::string(label_width - key.size() + 1, ' ') << "|" << lane
       << "|\n";
  }
  return os.str();
}

}  // namespace gs
