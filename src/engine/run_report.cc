#include "engine/run_report.h"

#include "common/json.h"

namespace gs {
namespace {

const char* SnapshotKindName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kGauge: return "gauge";
    case MetricSnapshot::Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

void WriteStage(JsonWriter& w, const StageMetrics& s) {
  w.BeginObject();
  w.Key("id").Value(static_cast<std::int64_t>(s.id));
  w.Key("name").Value(s.name);
  w.Key("num_tasks").Value(s.num_tasks);
  w.Key("task_failures").Value(s.task_failures);
  w.Key("submitted").Value(s.submitted);
  w.Key("first_task_started").Value(s.first_task_started);
  w.Key("completed").Value(s.completed);
  w.Key("span").Value(s.span());
  w.EndObject();
}

void WriteJob(JsonWriter& w, const JobMetrics& j, bool adaptive, bool coded) {
  w.BeginObject();
  w.Key("job_id").Value(static_cast<std::int64_t>(j.job_id));
  w.Key("tenant").Value(j.tenant);
  w.Key("submitted").Value(j.submitted);
  w.Key("started").Value(j.started);
  w.Key("queue_delay").Value(j.queue_delay());
  w.Key("completed").Value(j.completed);
  w.Key("jct").Value(j.jct());
  w.Key("cross_dc_bytes").Value(j.cross_dc_bytes);
  w.Key("cross_dc_fetch_bytes").Value(j.cross_dc_fetch_bytes);
  w.Key("cross_dc_push_bytes").Value(j.cross_dc_push_bytes);
  w.Key("cross_dc_centralize_bytes").Value(j.cross_dc_centralize_bytes);
  w.Key("task_failures").Value(j.task_failures);
  w.Key("fetch_failures").Value(j.fetch_failures);
  w.Key("node_crashes").Value(j.node_crashes);
  w.Key("map_resubmissions").Value(j.map_resubmissions);
  w.Key("push_retries").Value(j.push_retries);
  w.Key("push_fallbacks").Value(j.push_fallbacks);
  if (adaptive) {
    w.Key("replans").Value(j.replans);
    w.Key("receivers_moved").Value(j.receivers_moved);
    w.Key("adaptive_fallbacks").Value(j.adaptive_fallbacks);
  }
  // Gated on a nonzero count, not a config flag: a miss can strike any
  // run, and healthy reports must stay byte-identical to older ones.
  if (j.placement_misses != 0) {
    w.Key("placement_misses").Value(j.placement_misses);
  }
  if (coded) {
    w.Key("coded_groups").Value(j.coded_groups);
    w.Key("coded_multicast_bytes").Value(j.coded_multicast_bytes);
    w.Key("coded_residual_bytes").Value(j.coded_residual_bytes);
    w.Key("coded_local_bytes").Value(j.coded_local_bytes);
    w.Key("coded_replica_compute_seconds")
        .Value(j.coded_replica_compute_seconds);
  }
  w.Key("stages").BeginArray();
  for (const StageMetrics& s : j.stages) WriteStage(w, s);
  w.EndArray();
  w.EndObject();
}

void WriteMetric(JsonWriter& w, const MetricSnapshot& m) {
  w.BeginObject();
  w.Key("name").Value(m.name);
  w.Key("kind").Value(SnapshotKindName(m.kind));
  switch (m.kind) {
    case MetricSnapshot::Kind::kCounter:
      w.Key("value").Value(m.value);
      break;
    case MetricSnapshot::Kind::kGauge:
      w.Key("value").Value(m.value);
      w.Key("max").Value(m.max);
      break;
    case MetricSnapshot::Kind::kHistogram:
      w.Key("count").Value(m.count);
      w.Key("sum").Value(m.sum);
      w.Key("bounds").BeginArray();
      for (double b : m.bounds) w.Value(b);
      w.EndArray();
      w.Key("buckets").BeginArray();
      for (std::int64_t c : m.buckets) w.Value(c);
      w.EndArray();
      break;
  }
  w.EndObject();
}

void WriteJobRow(JsonWriter& w, const RunReport::JobRow& r) {
  w.BeginObject();
  w.Key("job_id").Value(static_cast<std::int64_t>(r.job_id));
  w.Key("tenant").Value(r.tenant);
  w.Key("label").Value(r.label);
  w.Key("submitted").Value(r.submitted);
  w.Key("started").Value(r.started);
  w.Key("queue_delay").Value(r.queue_delay());
  w.Key("completed").Value(r.completed);
  w.Key("jct").Value(r.jct());
  w.Key("cross_dc_bytes").Value(r.cross_dc_bytes);
  w.Key("task_failures").Value(r.task_failures);
  w.EndObject();
}

void WriteLink(JsonWriter& w, const RunReport::LinkSeries& l) {
  w.BeginObject();
  w.Key("src_dc").Value(static_cast<std::int64_t>(l.src_dc));
  w.Key("dst_dc").Value(static_cast<std::int64_t>(l.dst_dc));
  w.Key("src").Value(l.src_name);
  w.Key("dst").Value(l.dst_name);
  w.Key("base_rate").Value(l.base_rate);
  w.Key("total_bytes").Value(l.total_bytes);
  w.Key("buckets").BeginArray();
  for (Bytes b : l.buckets) w.Value(b);
  w.EndArray();
  w.EndObject();
}

}  // namespace

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  // The transport and cost-breakdown keys are gated so direct-transport
  // reports stay byte-identical to pre-ShuffleTransport ones (the golden
  // files pin this).
  const bool nondirect_transport = !transport.empty() && transport != "direct";
  w.Key("schema_version").Value(kSchemaVersion);
  w.Key("scheme").Value(scheme);
  if (nondirect_transport) w.Key("transport").Value(transport);
  if (adaptive) w.Key("adaptive").Value(true);
  if (coded) {
    w.Key("coded").BeginObject();
    w.Key("enabled").Value(true);
    w.Key("redundancy_r").Value(coded_redundancy_r);
    w.EndObject();
  }
  w.Key("seed").Value(static_cast<std::uint64_t>(seed));
  w.Key("scale").Value(scale);
  w.Key("label").Value(label);
  w.Key("topology").BeginObject();
  w.Key("num_datacenters").Value(num_datacenters);
  w.Key("num_nodes").Value(num_nodes);
  w.EndObject();
  w.Key("job");
  WriteJob(w, job, adaptive, coded);
  w.Key("jobs").BeginArray();
  for (const JobRow& r : jobs) WriteJobRow(w, r);
  w.EndArray();
  w.Key("metrics").BeginObject();
  w.Key("enabled").Value(metrics_enabled);
  w.Key("snapshots").BeginArray();
  for (const MetricSnapshot& m : metrics) WriteMetric(w, m);
  w.EndArray();
  w.EndObject();
  w.Key("utilization").BeginObject();
  w.Key("bucket_seconds").Value(utilization_bucket);
  w.Key("links").BeginArray();
  for (const LinkSeries& l : links) WriteLink(w, l);
  w.EndArray();
  w.EndObject();
  w.Key("cost").BeginObject();
  w.Key("cost_usd").Value(cost_usd);
  w.Key("cost_usd_full_scale").Value(cost_usd_full_scale);
  if (nondirect_transport) {
    w.Key("egress_cost_usd").Value(egress_cost_usd);
    w.Key("store_cost_usd").Value(store_cost_usd);
  }
  w.EndObject();
  w.Key("trace").BeginObject();
  w.Key("enabled").Value(trace.enabled);
  w.Key("spans").Value(trace.spans);
  w.Key("task_spans").Value(trace.task_spans);
  w.Key("stage_spans").Value(trace.stage_spans);
  w.Key("flow_spans").Value(trace.flow_spans);
  w.Key("phase_spans").Value(trace.phase_spans);
  w.Key("flow_bytes").Value(trace.flow_bytes);
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace gs
