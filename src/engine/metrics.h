// Per-job measurements: completion time, stage spans, traffic.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace gs {

struct StageMetrics {
  StageId id = -1;
  std::string name;
  int num_tasks = 0;
  int task_failures = 0;
  SimTime submitted = 0;
  SimTime first_task_started = 0;
  SimTime completed = 0;

  SimTime span() const { return completed - submitted; }
};

struct JobMetrics {
  // Service identity (engine/job_api.h): filled by GeoCluster when the
  // job finalizes.
  JobId job_id = -1;
  std::string tenant;

  SimTime submitted = 0;  // arrival at the service (admission may queue it)
  SimTime started = 0;    // admission: the runner began executing
  SimTime completed = 0;
  std::vector<StageMetrics> stages;

  // Cross-datacenter bytes among workers incurred by this job. Matches the
  // paper's Fig. 8 metric: traffic to/from the driver (collect) excluded,
  // raw-input centralization included.
  Bytes cross_dc_bytes = 0;
  Bytes cross_dc_fetch_bytes = 0;       // fetch-based shuffle reads
  Bytes cross_dc_push_bytes = 0;        // transferTo pushes
  Bytes cross_dc_centralize_bytes = 0;  // Centralized input relocation

  int task_failures = 0;

  // Fault-recovery accounting (see docs/FAULTS.md).
  int fetch_failures = 0;      // reducer gathers hitting a missing output
  int node_crashes = 0;        // node crashes observed during the job
  int map_resubmissions = 0;   // parent-stage map partitions re-run
  int push_retries = 0;        // transfer pushes retried after receiver loss
  int push_fallbacks = 0;      // pushes degraded to producer-local (fetch)

  // Adaptive-control accounting (docs/ADAPTIVE.md); all stay 0 — and out
  // of the report JSON — unless AdaptiveConfig::enabled.
  int replans = 0;             // replanner passes that changed a plan
  int receivers_moved = 0;     // receiver shards re-placed mid-job
  int adaptive_fallbacks = 0;  // shards degraded push->fetch by bandwidth

  // Cached-input placement misses (engine/job_runner.cc StageInputPerDc):
  // partitions whose every replica is dead or evicted at planning time, so
  // their bytes drop out of the aggregator-choice input weights. Nonzero
  // values mean Eq. 2 planned against an undercount.
  int placement_misses = 0;

  // Coded-shuffle accounting (docs/CODED.md); all stay 0 — and out of the
  // report JSON — unless CodedConfig::enabled.
  int coded_groups = 0;             // XOR groups multicast
  Bytes coded_multicast_bytes = 0;  // WAN bytes moved as coded packets
  Bytes coded_residual_bytes = 0;   // uncoded remainder, unicast fallback
  Bytes coded_local_bytes = 0;      // segments served by an in-DC replica
  // Extra map compute bought by the r-fold replication: (r-1) x the
  // replicated partitions' map seconds, the cost side of the crossover.
  double coded_replica_compute_seconds = 0;

  SimTime jct() const { return completed - started; }
  SimTime queue_delay() const { return started - submitted; }
};

}  // namespace gs
