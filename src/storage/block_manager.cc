#include "storage/block_manager.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace gs {

std::string BlockId::ToString() const {
  const char* names[] = {"input", "shuffle", "transfer", "cached"};
  std::ostringstream os;
  os << names[static_cast<int>(kind)] << "(" << a << "," << b << "," << c
     << ")";
  return os.str();
}

RecordsPtr MakeRecords(std::vector<Record> records) {
  return std::make_shared<const std::vector<Record>>(std::move(records));
}

BlockManager::BlockManager(int num_nodes, MetricsRegistry* metrics)
    : stores_(num_nodes) {
  GS_CHECK(num_nodes > 0);
  if (metrics != nullptr) {
    m_puts_ = &metrics->counter("storage.puts");
    m_drops_ = &metrics->counter("storage.drops");
    m_blocks_ = &metrics->gauge("storage.blocks");
    m_bytes_ = &metrics->gauge("storage.bytes");
  }
}

void BlockManager::Put(NodeIndex node, const BlockId& id, RecordsPtr records) {
  GS_CHECK(records != nullptr);
  Bytes bytes = SerializedSize(*records);
  PutWithSize(node, id, std::move(records), bytes);
}

void BlockManager::PutWithSize(NodeIndex node, const BlockId& id,
                               RecordsPtr records, Bytes bytes) {
  GS_CHECK(node >= 0 && node < num_nodes());
  GS_CHECK(records != nullptr);
  GS_CHECK(bytes >= 0);
  Store& store = stores_[node];
  auto it = store.find(id);
  if (it != store.end()) {
    // Replacing a copy: only the size delta moves the occupancy gauge.
    if (m_bytes_ != nullptr) m_bytes_->Add(bytes - it->second.bytes);
    it->second = Block{std::move(records), bytes};
  } else {
    store.emplace(id, Block{std::move(records), bytes});
    locations_[id].push_back(node);
    if (m_bytes_ != nullptr) {
      m_bytes_->Add(bytes);
      m_blocks_->Add(1);
    }
  }
  if (m_puts_ != nullptr) m_puts_->Add(1);
}

bool BlockManager::Has(NodeIndex node, const BlockId& id) const {
  GS_CHECK(node >= 0 && node < num_nodes());
  return stores_[node].count(id) > 0;
}

std::optional<Block> BlockManager::Get(NodeIndex node,
                                       const BlockId& id) const {
  GS_CHECK(node >= 0 && node < num_nodes());
  auto it = stores_[node].find(id);
  if (it == stores_[node].end()) return std::nullopt;
  return it->second;
}

std::vector<NodeIndex> BlockManager::Locations(const BlockId& id) const {
  auto it = locations_.find(id);
  if (it == locations_.end()) return {};
  return it->second;
}

std::optional<Block> BlockManager::GetAnywhere(const BlockId& id) const {
  auto locs = Locations(id);
  if (locs.empty()) return std::nullopt;
  return Get(locs.front(), id);
}

void BlockManager::NoteErase(const Block& block) {
  if (m_blocks_ == nullptr) return;
  m_blocks_->Add(-1);
  m_bytes_->Add(-block.bytes);
  m_drops_->Add(1);
}

void BlockManager::Remove(NodeIndex node, const BlockId& id) {
  GS_CHECK(node >= 0 && node < num_nodes());
  auto sit = stores_[node].find(id);
  if (sit != stores_[node].end()) {
    NoteErase(sit->second);
    stores_[node].erase(sit);
  }
  auto it = locations_.find(id);
  if (it != locations_.end()) {
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), node), v.end());
    if (v.empty()) locations_.erase(it);
  }
}

void BlockManager::RemoveAllOfKind(BlockId::Kind kind) {
  for (auto& store : stores_) {
    for (auto it = store.begin(); it != store.end();) {
      if (it->first.kind == kind) {
        NoteErase(it->second);
        it = store.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto it = locations_.begin(); it != locations_.end();) {
    it = it->first.kind == kind ? locations_.erase(it) : std::next(it);
  }
}

void BlockManager::DropNode(NodeIndex node) {
  GS_CHECK(node >= 0 && node < num_nodes());
  std::vector<BlockId> ids;
  ids.reserve(stores_[node].size());
  for (const auto& [id, block] : stores_[node]) ids.push_back(id);
  for (const BlockId& id : ids) Remove(node, id);
}

void BlockManager::DropKindOnNode(NodeIndex node, BlockId::Kind kind) {
  GS_CHECK(node >= 0 && node < num_nodes());
  std::vector<BlockId> ids;
  for (const auto& [id, block] : stores_[node]) {
    if (id.kind == kind) ids.push_back(id);
  }
  for (const BlockId& id : ids) Remove(node, id);
}

Bytes BlockManager::BytesOnNode(NodeIndex node) const {
  GS_CHECK(node >= 0 && node < num_nodes());
  Bytes total = 0;
  for (const auto& [id, block] : stores_[node]) total += block.bytes;
  return total;
}

}  // namespace gs
