// Block identifiers and block payloads.
//
// Every materialized piece of data in the cluster — an input partition, one
// shard of one map task's shuffle output, a pushed (transferred) partition,
// or a cached partition — is a block stored on exactly one node and indexed
// by a BlockId. This mirrors Spark's BlockManager/shuffle-file model closely
// enough for the mechanisms under study (block location drives locality
// preferences; shuffle blocks outlive the producing stage for fault
// tolerance, Sec. II-A).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "data/record.h"

namespace gs {

struct BlockId {
  enum class Kind : std::uint8_t {
    kInput,    // (rdd id, partition, 0)
    kShuffle,  // (shuffle id, map partition, shard)
    kTransfer, // (rdd id, partition, attempt)
    kCached,   // (rdd id, partition, 0)
  };

  Kind kind = Kind::kInput;
  int a = 0;
  int b = 0;
  int c = 0;

  bool operator==(const BlockId&) const = default;

  static BlockId Input(RddId rdd, int partition) {
    return {Kind::kInput, rdd, partition, 0};
  }
  static BlockId Shuffle(ShuffleId shuffle, int map_partition, int shard) {
    return {Kind::kShuffle, shuffle, map_partition, shard};
  }
  static BlockId Transfer(RddId rdd, int partition, int attempt = 0) {
    return {Kind::kTransfer, rdd, partition, attempt};
  }
  static BlockId Cached(RddId rdd, int partition) {
    return {Kind::kCached, rdd, partition, 0};
  }

  std::string ToString() const;
};

struct BlockIdHash {
  std::size_t operator()(const BlockId& id) const {
    std::size_t h = static_cast<std::size_t>(id.kind);
    h = h * 1000003u + static_cast<std::size_t>(id.a);
    h = h * 1000003u + static_cast<std::size_t>(id.b);
    h = h * 1000003u + static_cast<std::size_t>(id.c);
    return h;
  }
};

// The records a block holds, shared immutably between producer and readers.
using RecordsPtr = std::shared_ptr<const std::vector<Record>>;

RecordsPtr MakeRecords(std::vector<Record> records);

struct Block {
  RecordsPtr records;
  Bytes bytes = 0;  // serialized size (cached at Put time)
};

}  // namespace gs
