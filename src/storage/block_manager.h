// Cluster-wide block registry.
//
// Tracks which node stores each block and the block payloads themselves.
// Task placement reads locations from here (host-level data locality);
// task execution reads/writes payloads.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/metrics_registry.h"
#include "storage/block.h"

namespace gs {

class BlockManager {
 public:
  // `metrics` (optional) receives put/drop counters and the occupancy
  // gauges (block and byte totals across all nodes, with high-watermarks);
  // must outlive the manager.
  explicit BlockManager(int num_nodes, MetricsRegistry* metrics = nullptr);

  // Stores a block on a node; replaces any previous copy on that node.
  void Put(NodeIndex node, const BlockId& id, RecordsPtr records);

  // Stores a block with an explicitly declared serialized size (used when
  // the logical size differs from SerializedSize of the payload, e.g.
  // generated inputs that model a larger on-disk file).
  void PutWithSize(NodeIndex node, const BlockId& id, RecordsPtr records,
                   Bytes bytes);

  bool Has(NodeIndex node, const BlockId& id) const;

  // Fetches a block stored on the given node. Returns nullopt if absent.
  std::optional<Block> Get(NodeIndex node, const BlockId& id) const;

  // All nodes currently holding the block.
  std::vector<NodeIndex> Locations(const BlockId& id) const;

  // Convenience: the block from any node holding it (first location).
  std::optional<Block> GetAnywhere(const BlockId& id) const;

  void Remove(NodeIndex node, const BlockId& id);

  // Drops every block of the given kind (e.g. all shuffle output of a job).
  void RemoveAllOfKind(BlockId::Kind kind);

  // Drops every block stored on a node (node crash: its disks are gone).
  void DropNode(NodeIndex node);

  // Drops the node's blocks of one kind only (e.g. a shuffle-service wipe
  // loses shuffle files but keeps cached inputs).
  void DropKindOnNode(NodeIndex node, BlockId::Kind kind);

  Bytes BytesOnNode(NodeIndex node) const;
  int num_nodes() const { return static_cast<int>(stores_.size()); }

 private:
  // Gauge bookkeeping for one erased copy.
  void NoteErase(const Block& block);

  using Store = std::unordered_map<BlockId, Block, BlockIdHash>;
  std::vector<Store> stores_;  // per node
  std::unordered_map<BlockId, std::vector<NodeIndex>, BlockIdHash>
      locations_;

  // Metric handles (nullptr without a registry); event-loop-only updates.
  Counter* m_puts_ = nullptr;
  Counter* m_drops_ = nullptr;
  Gauge* m_blocks_ = nullptr;
  Gauge* m_bytes_ = nullptr;
};

}  // namespace gs
