// MapOutputTracker: where each shard of each shuffle lives, and how big.
//
// After a map (or receiver) task writes shuffle output, it registers the
// per-shard sizes and its node here. Reducers consult the tracker to build
// their fetch lists; the DAG scheduler consults it to compute the
// shuffle-input distribution per datacenter (the s_1 >= s_2 >= ... of
// Sec. III-B) that drives reducer placement and aggregator selection.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "netsim/topology.h"

namespace gs {

struct MapOutputLocation {
  NodeIndex node = kNoNode;
  Bytes bytes = 0;  // size of one shard of one map partition
};

class MapOutputTracker {
 public:
  // Declares a shuffle with the given dimensions. Idempotent.
  void RegisterShuffle(ShuffleId shuffle, int num_map_partitions,
                       int num_shards);

  // Records that map partition `map_partition` of `shuffle` stored its
  // shards on `node`, with `shard_bytes[k]` bytes for shard k.
  void RegisterMapOutput(ShuffleId shuffle, int map_partition, NodeIndex node,
                         const std::vector<Bytes>& shard_bytes);

  // Re-registration after the output moved (e.g. pushed by transferTo).
  // Same signature as RegisterMapOutput; simply overwrites the location.

  // Moves a single shard of one map partition to `node` (bytes unchanged):
  // the coded-shuffle exchange lands each segment next to its consumer and
  // re-points the tracker so reducer gathers read it locally
  // (docs/CODED.md). The map partition must be registered.
  void RelocateShard(ShuffleId shuffle, int map_partition, int shard,
                     NodeIndex node);

  // Node that executed the map partition (recorded at RegisterMapOutput,
  // surviving RelocateShard); kNoNode while unregistered/invalidated.
  // Simcheck derives the pre-exchange shard distribution from it when
  // verifying the coding-aware Eq. 2 bound.
  NodeIndex primary_node(ShuffleId shuffle, int map_partition) const;

  // Forgets one map partition's output (its blocks were lost: node crash or
  // shuffle-file corruption, discovered via a reducer's fetch failure). The
  // shuffle drops back to incomplete so the parent stage resubmits exactly
  // the missing partitions, and the tracker epoch advances so stale task
  // attempts can detect they raced with a recovery. No-op (and no epoch
  // bump) if the partition was not registered.
  void InvalidateMapOutput(ShuffleId shuffle, int map_partition);

  // True if the given map partition's output is currently registered.
  bool MapOutputRegistered(ShuffleId shuffle, int map_partition) const;

  // Bumped by every successful InvalidateMapOutput.
  int epoch() const { return epoch_; }

  bool HasShuffle(ShuffleId shuffle) const;
  int num_map_partitions(ShuffleId shuffle) const;
  int num_shards(ShuffleId shuffle) const;

  // True once every map partition registered its output.
  bool IsComplete(ShuffleId shuffle) const;

  // Location/size of one shard of one map partition.
  const MapOutputLocation& Output(ShuffleId shuffle, int map_partition,
                                  int shard) const;

  // Total bytes destined to shard (reducer) k, across all map partitions.
  Bytes ShardInputBytes(ShuffleId shuffle, int shard) const;

  // Total shuffle input bytes S.
  Bytes TotalBytes(ShuffleId shuffle) const;

  // Bytes of shuffle input stored per node.
  std::vector<Bytes> BytesPerNode(ShuffleId shuffle, int num_nodes) const;

  // Bytes of shuffle input stored per datacenter (the s_j of Sec. III-B).
  std::vector<Bytes> BytesPerDc(ShuffleId shuffle, const Topology& topo) const;

  // Nodes holding at least `fraction` of shard k's input — Spark's reducer
  // locality preference.
  std::vector<NodeIndex> PreferredShardLocations(ShuffleId shuffle, int shard,
                                                 double fraction) const;

  void Clear();

 private:
  struct ShuffleStatus {
    int num_map_partitions = 0;
    int num_shards = 0;
    int registered = 0;
    // outputs[map_partition * num_shards + shard]
    std::vector<MapOutputLocation> outputs;
    std::vector<bool> map_done;
    std::vector<NodeIndex> primary;  // per map partition; see primary_node
  };

  const ShuffleStatus& StatusOf(ShuffleId shuffle) const;

  std::unordered_map<ShuffleId, ShuffleStatus> shuffles_;
  int epoch_ = 0;
};

}  // namespace gs
