#include "storage/map_output_tracker.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace gs {

void MapOutputTracker::RegisterShuffle(ShuffleId shuffle,
                                       int num_map_partitions,
                                       int num_shards) {
  GS_CHECK(num_map_partitions > 0);
  GS_CHECK(num_shards > 0);
  auto it = shuffles_.find(shuffle);
  if (it != shuffles_.end()) {
    GS_CHECK(it->second.num_map_partitions == num_map_partitions);
    GS_CHECK(it->second.num_shards == num_shards);
    return;
  }
  ShuffleStatus status;
  status.num_map_partitions = num_map_partitions;
  status.num_shards = num_shards;
  status.outputs.resize(static_cast<std::size_t>(num_map_partitions) *
                        num_shards);
  status.map_done.resize(num_map_partitions, false);
  status.primary.resize(num_map_partitions, kNoNode);
  shuffles_.emplace(shuffle, std::move(status));
}

void MapOutputTracker::RegisterMapOutput(
    ShuffleId shuffle, int map_partition, NodeIndex node,
    const std::vector<Bytes>& shard_bytes) {
  auto it = shuffles_.find(shuffle);
  GS_CHECK_MSG(it != shuffles_.end(), "unknown shuffle " << shuffle);
  ShuffleStatus& s = it->second;
  GS_CHECK(map_partition >= 0 && map_partition < s.num_map_partitions);
  GS_CHECK(static_cast<int>(shard_bytes.size()) == s.num_shards);
  GS_CHECK(node != kNoNode);
  for (int k = 0; k < s.num_shards; ++k) {
    auto& out = s.outputs[static_cast<std::size_t>(map_partition) *
                              s.num_shards + k];
    out.node = node;
    out.bytes = shard_bytes[k];
  }
  s.primary[map_partition] = node;
  if (!s.map_done[map_partition]) {
    s.map_done[map_partition] = true;
    ++s.registered;
  }
}

void MapOutputTracker::RelocateShard(ShuffleId shuffle, int map_partition,
                                     int shard, NodeIndex node) {
  auto it = shuffles_.find(shuffle);
  GS_CHECK_MSG(it != shuffles_.end(), "unknown shuffle " << shuffle);
  ShuffleStatus& s = it->second;
  GS_CHECK(map_partition >= 0 && map_partition < s.num_map_partitions);
  GS_CHECK(shard >= 0 && shard < s.num_shards);
  GS_CHECK(node != kNoNode);
  GS_CHECK_MSG(s.map_done[map_partition],
               "relocating a shard of unregistered map partition "
                   << map_partition);
  s.outputs[static_cast<std::size_t>(map_partition) * s.num_shards + shard]
      .node = node;
}

NodeIndex MapOutputTracker::primary_node(ShuffleId shuffle,
                                         int map_partition) const {
  const ShuffleStatus& s = StatusOf(shuffle);
  GS_CHECK(map_partition >= 0 && map_partition < s.num_map_partitions);
  return s.primary[map_partition];
}

void MapOutputTracker::InvalidateMapOutput(ShuffleId shuffle,
                                           int map_partition) {
  auto it = shuffles_.find(shuffle);
  GS_CHECK_MSG(it != shuffles_.end(), "unknown shuffle " << shuffle);
  ShuffleStatus& s = it->second;
  GS_CHECK(map_partition >= 0 && map_partition < s.num_map_partitions);
  if (!s.map_done[map_partition]) return;  // already invalidated
  for (int k = 0; k < s.num_shards; ++k) {
    auto& out = s.outputs[static_cast<std::size_t>(map_partition) *
                              s.num_shards + k];
    out.node = kNoNode;
    out.bytes = 0;
  }
  s.map_done[map_partition] = false;
  s.primary[map_partition] = kNoNode;
  --s.registered;
  ++epoch_;
}

bool MapOutputTracker::MapOutputRegistered(ShuffleId shuffle,
                                           int map_partition) const {
  const ShuffleStatus& s = StatusOf(shuffle);
  GS_CHECK(map_partition >= 0 && map_partition < s.num_map_partitions);
  return s.map_done[map_partition];
}

bool MapOutputTracker::HasShuffle(ShuffleId shuffle) const {
  return shuffles_.count(shuffle) > 0;
}

const MapOutputTracker::ShuffleStatus& MapOutputTracker::StatusOf(
    ShuffleId shuffle) const {
  auto it = shuffles_.find(shuffle);
  GS_CHECK_MSG(it != shuffles_.end(), "unknown shuffle " << shuffle);
  return it->second;
}

int MapOutputTracker::num_map_partitions(ShuffleId shuffle) const {
  return StatusOf(shuffle).num_map_partitions;
}

int MapOutputTracker::num_shards(ShuffleId shuffle) const {
  return StatusOf(shuffle).num_shards;
}

bool MapOutputTracker::IsComplete(ShuffleId shuffle) const {
  const ShuffleStatus& s = StatusOf(shuffle);
  return s.registered == s.num_map_partitions;
}

const MapOutputLocation& MapOutputTracker::Output(ShuffleId shuffle,
                                                  int map_partition,
                                                  int shard) const {
  const ShuffleStatus& s = StatusOf(shuffle);
  GS_CHECK(map_partition >= 0 && map_partition < s.num_map_partitions);
  GS_CHECK(shard >= 0 && shard < s.num_shards);
  return s.outputs[static_cast<std::size_t>(map_partition) * s.num_shards +
                   shard];
}

Bytes MapOutputTracker::ShardInputBytes(ShuffleId shuffle, int shard) const {
  const ShuffleStatus& s = StatusOf(shuffle);
  Bytes total = 0;
  for (int m = 0; m < s.num_map_partitions; ++m) {
    total += Output(shuffle, m, shard).bytes;
  }
  return total;
}

Bytes MapOutputTracker::TotalBytes(ShuffleId shuffle) const {
  const ShuffleStatus& s = StatusOf(shuffle);
  Bytes total = 0;
  for (const auto& out : s.outputs) total += out.bytes;
  return total;
}

std::vector<Bytes> MapOutputTracker::BytesPerNode(ShuffleId shuffle,
                                                  int num_nodes) const {
  const ShuffleStatus& s = StatusOf(shuffle);
  std::vector<Bytes> per_node(num_nodes, 0);
  for (const auto& out : s.outputs) {
    if (out.node == kNoNode) continue;
    GS_CHECK(out.node < num_nodes);
    per_node[out.node] += out.bytes;
  }
  return per_node;
}

std::vector<Bytes> MapOutputTracker::BytesPerDc(ShuffleId shuffle,
                                                const Topology& topo) const {
  std::vector<Bytes> per_node = BytesPerNode(shuffle, topo.num_nodes());
  std::vector<Bytes> per_dc(topo.num_datacenters(), 0);
  for (NodeIndex n = 0; n < topo.num_nodes(); ++n) {
    per_dc[topo.dc_of(n)] += per_node[n];
  }
  return per_dc;
}

std::vector<NodeIndex> MapOutputTracker::PreferredShardLocations(
    ShuffleId shuffle, int shard, double fraction) const {
  const ShuffleStatus& s = StatusOf(shuffle);
  std::unordered_map<NodeIndex, Bytes> per_node;
  Bytes total = 0;
  for (int m = 0; m < s.num_map_partitions; ++m) {
    const auto& out = Output(shuffle, m, shard);
    if (out.node == kNoNode) continue;
    per_node[out.node] += out.bytes;
    total += out.bytes;
  }
  std::vector<NodeIndex> prefs;
  if (total == 0) return prefs;
  for (const auto& [node, bytes] : per_node) {
    if (static_cast<double>(bytes) >= fraction * static_cast<double>(total)) {
      prefs.push_back(node);
    }
  }
  std::sort(prefs.begin(), prefs.end());
  return prefs;
}

void MapOutputTracker::Clear() { shuffles_.clear(); }

}  // namespace gs
