// Stages: shuffle- and transfer-separated pieces of a job DAG.
//
// A stage is a maximal subgraph of the lineage DAG connected by narrow
// dependencies. Its tasks each evaluate one partition of the stage's output
// RDD. Stage boundaries are:
//   * shuffle dependencies (a ShuffledRdd starts a new stage; the parent
//     stage writes shuffle files) — classic Spark behaviour; and
//   * transfer dependencies (a TransferredRdd starts a *receiver* stage;
//     the parent stage pushes each partition to its paired receiver task) —
//     the paper's addition. Receiver stages are submitted concurrently with
//     their producer stage so pushes pipeline with the preceding map
//     (Sec. IV-B), unlike shuffle stages which wait for a barrier.
#pragma once

#include <vector>

#include "common/ids.h"
#include "rdd/rdd.h"

namespace gs {

// What the tasks of a stage do with their computed partition.
enum class StageOutputKind {
  kResult,            // deliver to the driver (collect/save)
  kShuffleWrite,      // partition into shards, write, register map output
  kTransferProduce,   // hand the partition to the paired receiver task
};

struct Stage {
  StageId id = -1;
  // The last RDD evaluated by this stage's tasks (top of the narrow chain).
  RddPtr output_rdd;
  StageOutputKind output = StageOutputKind::kResult;

  // When output == kShuffleWrite: the consuming shuffle.
  const ShuffledRdd* consumer_shuffle = nullptr;
  // When output == kTransferProduce: the consuming transferTo.
  const TransferredRdd* consumer_transfer = nullptr;

  // Map-side combine to apply to the computed partition before the output
  // step. For a plain shuffle-map stage this is the shuffle's combine; for a
  // transfer-producer stage feeding a shuffle it is that shuffle's combine,
  // applied *before* the push so combined data crosses the WAN (Sec. IV-C3).
  CombineFn pre_output_combine;

  // Stages that must fully complete before this stage is submitted
  // (shuffle dependencies of any leaf in this stage).
  std::vector<StageId> barrier_parents;
  // Producer stage feeding this stage's TransferredRdd boundary, if any.
  // Submitted together with this stage; tasks pair one-to-one.
  StageId transfer_producer = -1;
  // Receiver stage consuming this stage's transfer output, if any.
  StageId transfer_consumer = -1;

  bool starts_at_transfer = false;  // boundary leaf is a TransferredRdd

  int num_tasks() const { return output_rdd->num_partitions(); }
};

}  // namespace gs
