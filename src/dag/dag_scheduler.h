// DAG analysis: stage splitting and automatic transferTo insertion.
//
// Mirrors Spark's DAGScheduler (Sec. IV-D): decomposes the lineage graph
// into shuffle-separated stages, and — when spark.shuffle.aggregation is
// enabled — rewrites the graph to embed a transferTo() immediately before
// every shuffle, so shuffle input is proactively aggregated without any
// change to application code.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "dag/stage.h"
#include "rdd/rdd.h"

namespace gs {

// Allocates RDD ids for graph rewrites; supplied by the engine context.
using RddIdAlloc = std::function<RddId()>;

// Returns an equivalent graph in which every ShuffledRdd whose parent is not
// already a TransferredRdd gets a transferTo(kNoDc) inserted below it
// (kNoDc = choose the aggregator datacenter automatically at run time).
// Shared subgraphs are rewritten once; untouched subgraphs are shared with
// the input graph. Shuffle ids and cached flags are preserved.
RddPtr InsertTransfersBeforeShuffles(const RddPtr& rdd, const RddIdAlloc& alloc);

// A task's data boundary: the leaf RDD (source / shuffled / transferred)
// reached by resolving partition indices through the stage's narrow chain.
struct LeafRef {
  const Rdd* leaf = nullptr;
  int partition = -1;
};

// Resolves which leaf partition feeds partition `partition` of `output`,
// stopping at stage boundaries (source, shuffled, transferred).
LeafRef ResolveLeaf(const Rdd& output, int partition);

// All boundary leaves reachable from `output` through narrow dependencies
// (deduplicated, in first-visit order).
std::vector<const Rdd*> CollectLeaves(const Rdd& output);

// Splits the graph rooted at `final_rdd` into stages. The result stage is
// always stages.back(). Stage ids equal indices into the returned vector
// and parent stages precede children (topological order).
//
// Limitations (documented): a stage may contain at most one TransferredRdd
// leaf, and a receiver stage's task count must match its producer's (both
// hold for every graph the Dataset facade can build, since transferTo is
// one-to-one).
std::vector<Stage> BuildStages(const RddPtr& final_rdd);

}  // namespace gs
