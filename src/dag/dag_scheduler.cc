#include "dag/dag_scheduler.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace gs {
namespace {

class TransferInserter {
 public:
  explicit TransferInserter(const RddIdAlloc& alloc) : alloc_(alloc) {}

  RddPtr Rewrite(const RddPtr& rdd) {
    auto it = memo_.find(rdd.get());
    if (it != memo_.end()) return it->second;
    RddPtr result = RewriteUncached(rdd);
    memo_.emplace(rdd.get(), result);
    return result;
  }

 private:
  RddPtr RewriteUncached(const RddPtr& rdd) {
    switch (rdd->kind()) {
      case RddKind::kSource:
        return rdd;
      case RddKind::kMapPartitions: {
        const auto& m = static_cast<const MapPartitionsRdd&>(*rdd);
        RddPtr parent = Rewrite(m.parent());
        if (parent == m.parent()) return rdd;
        auto clone = std::make_shared<MapPartitionsRdd>(alloc_(), m.name(),
                                                        parent, m.fn());
        clone->set_cached(rdd->cached());
        return clone;
      }
      case RddKind::kUnion: {
        const auto& u = static_cast<const UnionRdd&>(*rdd);
        std::vector<RddPtr> parents;
        bool changed = false;
        for (const RddPtr& p : u.parents()) {
          parents.push_back(Rewrite(p));
          changed = changed || parents.back() != p;
        }
        if (!changed) return rdd;
        auto clone = std::make_shared<UnionRdd>(alloc_(), u.name(),
                                                std::move(parents));
        clone->set_cached(rdd->cached());
        return clone;
      }
      case RddKind::kTransferred: {
        const auto& t = static_cast<const TransferredRdd&>(*rdd);
        RddPtr parent = Rewrite(t.parent());
        if (parent == t.parent()) return rdd;
        auto clone = std::make_shared<TransferredRdd>(alloc_(), t.name(),
                                                      parent, t.target_dc());
        clone->set_cached(rdd->cached());
        return clone;
      }
      case RddKind::kShuffled: {
        const auto& s = static_cast<const ShuffledRdd&>(*rdd);
        RddPtr parent = Rewrite(s.parent());
        // The developer may already have placed an explicit transferTo
        // before this shuffle; respect it (Sec. IV-E, explicit embedding).
        if (parent->kind() != RddKind::kTransferred) {
          parent = std::make_shared<TransferredRdd>(
              alloc_(), "transferTo(auto)", parent, kNoDc);
        }
        if (parent == s.parent()) return rdd;
        auto clone = std::make_shared<ShuffledRdd>(alloc_(), s.name(), parent,
                                                   s.shuffle());
        clone->set_cached(rdd->cached());
        return clone;
      }
    }
    GS_CHECK_MSG(false, "unknown RddKind");
    return nullptr;
  }

  const RddIdAlloc& alloc_;
  std::unordered_map<const Rdd*, RddPtr> memo_;
};

bool IsBoundary(const Rdd& rdd) {
  return rdd.kind() == RddKind::kSource || rdd.kind() == RddKind::kShuffled ||
         rdd.kind() == RddKind::kTransferred;
}

void CollectLeavesInto(const Rdd& rdd, std::vector<const Rdd*>& out) {
  if (IsBoundary(rdd)) {
    for (const Rdd* seen : out) {
      if (seen == &rdd) return;
    }
    out.push_back(&rdd);
    return;
  }
  for (const RddPtr& p : rdd.parents()) CollectLeavesInto(*p, out);
}

class StageBuilder {
 public:
  std::vector<Stage> Build(const RddPtr& final_rdd) {
    BuildStage(final_rdd, StageOutputKind::kResult, nullptr, nullptr);
    return std::move(stages_);
  }

 private:
  StageId BuildStage(const RddPtr& output, StageOutputKind kind,
                     const ShuffledRdd* consumer_shuffle,
                     const TransferredRdd* consumer_transfer) {
    // One stage per (output rdd, consumer) pair; memoize on the output rdd:
    // a chain reused by two consumers is built twice, matching Spark's
    // behaviour of one ShuffleMapStage per shuffle dependency.
    Stage stage;
    stage.output_rdd = output;
    stage.output = kind;
    stage.consumer_shuffle = consumer_shuffle;
    stage.consumer_transfer = consumer_transfer;

    // Reserve this stage's slot so children get higher ids than parents...
    // parents must come first, so build parents before appending.
    std::vector<const Rdd*> leaves = CollectLeaves(*output);
    std::vector<StageId> barrier_parents;
    StageId transfer_producer = -1;
    bool starts_at_transfer = false;

    for (const Rdd* leaf : leaves) {
      if (leaf->kind() == RddKind::kShuffled) {
        const auto& s = static_cast<const ShuffledRdd&>(*leaf);
        StageId parent = BuildStage(s.parent(), StageOutputKind::kShuffleWrite,
                                    &s, nullptr);
        barrier_parents.push_back(parent);
      } else if (leaf->kind() == RddKind::kTransferred) {
        const auto& t = static_cast<const TransferredRdd&>(*leaf);
        GS_CHECK_MSG(!starts_at_transfer,
                     "a stage may contain at most one transferTo boundary");
        starts_at_transfer = true;
        transfer_producer = BuildStage(
            t.parent(), StageOutputKind::kTransferProduce, nullptr, &t);
        GS_CHECK_MSG(output->num_partitions() == t.num_partitions(),
                     "receiver stage must be one-to-one with transferTo");
      }
    }

    stage.barrier_parents = std::move(barrier_parents);
    stage.transfer_producer = transfer_producer;
    stage.starts_at_transfer = starts_at_transfer;

    // Map-side combine: applied by the stage that produces shuffle input.
    // For a transfer-producer stage, look through the transferTo to the
    // consuming shuffle, so the combine runs before the push (Sec. IV-C3).
    if (kind == StageOutputKind::kShuffleWrite && consumer_shuffle) {
      if (!starts_at_transfer) {
        stage.pre_output_combine = consumer_shuffle->shuffle().map_side_combine;
      }
      // A receiver stage writing shuffle files never recombines: the
      // producer already did (Sec. IV-C3, "avoid repetitive computation on
      // the receivers").
    } else if (kind == StageOutputKind::kTransferProduce &&
               consumer_transfer) {
      const ShuffledRdd* downstream = FindConsumingShuffle(*consumer_transfer);
      if (downstream) {
        stage.pre_output_combine = downstream->shuffle().map_side_combine;
      }
    }

    stage.id = static_cast<StageId>(stages_.size());
    stages_.push_back(stage);
    if (transfer_producer >= 0) {
      stages_[transfer_producer].transfer_consumer = stage.id;
    }
    return stage.id;
  }

  // Finds the ShuffledRdd (if any) that consumes this TransferredRdd. The
  // Dataset facade builds transferTo->shuffle chains directly, so scanning
  // the already-built stages for a stage whose boundary is this transfer
  // and whose consumer is a shuffle would be circular; instead we rely on
  // the graph shape: the consuming shuffle is recorded when the *receiver*
  // stage is built, but the producer stage is built first. The engine
  // resolves this by passing the consuming shuffle through the stage
  // metadata after all stages exist (see PatchProducerCombines).
  const ShuffledRdd* FindConsumingShuffle(const TransferredRdd&) {
    return nullptr;
  }

  std::vector<Stage> stages_;
};

// After all stages are built, copy each receiver stage's consuming-shuffle
// combine back onto its producer stage, and clear it from any receiver
// stage (the producer combines before the push; the receiver must not
// recombine).
void PatchProducerCombines(std::vector<Stage>& stages) {
  for (Stage& stage : stages) {
    if (!stage.starts_at_transfer) continue;
    GS_CHECK(stage.transfer_producer >= 0);
    Stage& producer = stages[stage.transfer_producer];
    if (stage.output == StageOutputKind::kShuffleWrite &&
        stage.consumer_shuffle != nullptr) {
      producer.pre_output_combine =
          stage.consumer_shuffle->shuffle().map_side_combine;
    }
  }
}

}  // namespace

RddPtr InsertTransfersBeforeShuffles(const RddPtr& rdd,
                                     const RddIdAlloc& alloc) {
  GS_CHECK(rdd != nullptr);
  GS_CHECK(alloc != nullptr);
  TransferInserter inserter(alloc);
  return inserter.Rewrite(rdd);
}

LeafRef ResolveLeaf(const Rdd& output, int partition) {
  const Rdd* current = &output;
  int p = partition;
  while (!IsBoundary(*current)) {
    switch (current->kind()) {
      case RddKind::kMapPartitions:
        current = static_cast<const MapPartitionsRdd*>(current)->parent().get();
        break;
      case RddKind::kUnion: {
        const auto& u = static_cast<const UnionRdd&>(*current);
        auto [parent_idx, parent_part] = u.Resolve(p);
        current = u.parents()[parent_idx].get();
        p = parent_part;
        break;
      }
      default:
        GS_CHECK_MSG(false, "unexpected narrow rdd kind");
    }
  }
  return LeafRef{current, p};
}

std::vector<const Rdd*> CollectLeaves(const Rdd& output) {
  std::vector<const Rdd*> leaves;
  if (IsBoundary(output)) {
    // The stage is a bare boundary rdd (e.g. collect straight after a
    // shuffle): the boundary is also the output.
    leaves.push_back(&output);
    return leaves;
  }
  CollectLeavesInto(output, leaves);
  return leaves;
}

std::vector<Stage> BuildStages(const RddPtr& final_rdd) {
  GS_CHECK(final_rdd != nullptr);
  StageBuilder builder;
  std::vector<Stage> stages = builder.Build(final_rdd);
  PatchProducerCombines(stages);
  return stages;
}

}  // namespace gs
