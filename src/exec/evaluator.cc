#include "exec/evaluator.h"

#include <utility>

#include "common/check.h"

namespace gs {
namespace {

// Recursively evaluates `rdd` partition `p`, bottoming out at `start`.
// Exactly one recursion path reaches `start` (map chains are linear and a
// union resolves to one parent), so the boundary records are moved out —
// Evaluate owns `start` — instead of copied; for wide partitions that copy
// used to dominate the task's compute.
std::vector<Record> Eval(const Rdd& rdd, int p, EvalStart& start,
                         EvalResult& result) {
  if (&rdd == start.rdd) {
    GS_CHECK_MSG(p == start.partition, "boundary partition mismatch: " << p
                                           << " vs " << start.partition);
    if (rdd.kind() == RddKind::kShuffled && !start.already_processed) {
      // `start.records` are raw gathered shard records; apply the reduce
      // side's combine/group/sort.
      return static_cast<const ShuffledRdd&>(rdd).ProcessShard(
          std::move(start.records));
    }
    return std::move(start.records);
  }

  std::vector<Record> out;
  switch (rdd.kind()) {
    case RddKind::kMapPartitions: {
      const auto& m = static_cast<const MapPartitionsRdd&>(rdd);
      std::vector<Record> in = Eval(*m.parent(), p, start, result);
      out = m.fn()(p, in);
      break;
    }
    case RddKind::kUnion: {
      const auto& u = static_cast<const UnionRdd&>(rdd);
      auto [parent_idx, parent_part] = u.Resolve(p);
      out = Eval(*u.parents()[parent_idx], parent_part, start, result);
      break;
    }
    case RddKind::kSource:
    case RddKind::kShuffled:
    case RddKind::kTransferred:
      GS_CHECK_MSG(false, "reached boundary rdd '" << rdd.name()
                       << "' that is not the evaluation start — the gather "
                          "plan should have provided its records");
      break;
  }

  if (rdd.cached()) {
    result.cache_fills.push_back(
        EvalResult::CacheFill{rdd.id(), p, MakeRecords(out)});
  }
  return out;
}

}  // namespace

EvalResult Evaluate(const Rdd& output, int partition, EvalStart start) {
  GS_CHECK(start.rdd != nullptr);
  EvalResult result;
  const bool start_is_cache_hit = start.already_processed;
  result.records = Eval(output, partition, start, result);
  // The boundary itself may be cached (e.g. a cached ShuffledRdd).
  if (&output == start.rdd && output.cached() && !start_is_cache_hit) {
    result.cache_fills.push_back(EvalResult::CacheFill{
        output.id(), partition, MakeRecords(result.records)});
  }
  return result;
}

EvalCut FindEvalCut(const Rdd& output, int partition,
                    const BlockManager& blocks) {
  const Rdd* current = &output;
  int p = partition;
  for (;;) {
    if (current->cached() &&
        !blocks.Locations(BlockId::Cached(current->id(), p)).empty()) {
      return EvalCut{current, p, /*is_cached_cut=*/true};
    }
    switch (current->kind()) {
      case RddKind::kMapPartitions:
        current =
            static_cast<const MapPartitionsRdd*>(current)->parent().get();
        break;
      case RddKind::kUnion: {
        const auto& u = static_cast<const UnionRdd&>(*current);
        auto [parent_idx, parent_part] = u.Resolve(p);
        current = u.parents()[parent_idx].get();
        p = parent_part;
        break;
      }
      case RddKind::kSource:
      case RddKind::kShuffled:
      case RddKind::kTransferred:
        return EvalCut{current, p, /*is_cached_cut=*/false};
    }
  }
}

}  // namespace gs
