// Synchronous evaluation of a stage's narrow chain for one partition.
//
// Given the records at the stage's boundary leaf (input block, gathered
// shuffle shard, or received transfer), Evaluate() walks the narrow chain
// up to the stage's output RDD and returns the computed records, noting any
// cache interactions along the way.
#pragma once

#include <optional>
#include <vector>

#include "dag/dag_scheduler.h"
#include "rdd/rdd.h"
#include "storage/block_manager.h"

namespace gs {

struct EvalResult {
  std::vector<Record> records;
  // Partitions of cached RDDs computed along the way that should be stored
  // on the executing node (rdd id + partition + payload).
  struct CacheFill {
    RddId rdd = -1;
    int partition = -1;
    RecordsPtr records;
  };
  std::vector<CacheFill> cache_fills;
};

// The point where evaluation starts: either the stage's boundary leaf or a
// cached cut above it (if `cache_cut` names an RDD whose partition was found
// in the block manager, evaluation starts there with `boundary_records`).
struct EvalStart {
  const Rdd* rdd = nullptr;  // leaf or cached RDD where records originate
  int partition = -1;
  std::vector<Record> records;
  // True when records came from a cache hit: they are the rdd's final
  // output, so no shard processing or re-caching applies at this node.
  bool already_processed = false;
};

// Evaluates partition `partition` of `output`, starting from `start`.
// For a ShuffledRdd leaf, `start.records` are the raw gathered shard
// records; ProcessShard (combine/group/sort) is applied here.
EvalResult Evaluate(const Rdd& output, int partition, EvalStart start);

// Finds the evaluation cut for a task: walks from `output` down towards the
// boundary leaf; if a cached RDD with a block available on *any* node is
// crossed, returns it (highest such cut). Otherwise returns the leaf.
// The caller turns this into a gather plan (local/remote read or shuffle
// fetch or transfer receive).
struct EvalCut {
  const Rdd* rdd = nullptr;  // cached RDD or boundary leaf
  int partition = -1;
  bool is_cached_cut = false;
};
EvalCut FindEvalCut(const Rdd& output, int partition,
                    const BlockManager& blocks);

}  // namespace gs
