// Compute and I/O cost model for task execution.
//
// Tasks transform real records synchronously; simulated durations are
// charged from byte counts using rates calibrated to the paper's m3.large
// workers (2 vCPUs, SSD storage). Like the network rates, these can be
// divided by `scale` so that inputs scaled down by the same factor
// reproduce full-scale timings.
#pragma once

#include "common/units.h"

namespace gs {

struct CostModel {
  // Per-core processing throughput of transformation code.
  Rate cpu_rate = 180.0 * kMiB;
  // SSD sequential read/write throughput (per task).
  Rate disk_read_rate = 250.0 * kMiB;
  Rate disk_write_rate = 200.0 * kMiB;
  // Per-record processing cost (hashing, comparison, virtual dispatch) on
  // top of the byte-rate cost; dominates sort-heavy reducers.
  SimTime record_cpu = 2e-6;
  // Fixed cost to launch a task on an executor (deserialization, JIT, ...).
  SimTime task_launch_overhead = Millis(150);
  // Driver-side delay between a stage becoming ready and task submission.
  SimTime stage_submit_delay = Millis(100);

  // Task-duration variability, as observed on shared EC2 instances (JIT,
  // GC pauses, CPU steal): each task's compute time is multiplied by
  // exp(N(0, straggler_sigma)), and with probability straggler_prob the
  // task is an outright straggler slowed by straggler_factor. Staggered
  // map finish times are what proactive pushes exploit (Fig. 1), and late
  // stragglers are what the fetch barrier amplifies.
  double straggler_sigma = 0.3;
  double straggler_prob = 0.08;
  double straggler_factor = 3.0;

  SimTime CpuTime(Bytes in, Bytes out) const {
    return static_cast<double>(in + out) / cpu_rate;
  }
  SimTime DiskReadTime(Bytes b) const {
    return static_cast<double>(b) / disk_read_rate;
  }
  SimTime DiskWriteTime(Bytes b) const {
    return static_cast<double>(b) / disk_write_rate;
  }

  // Returns a copy rescaled so that inputs divided by `scale` reproduce
  // full-scale timings: byte rates divide by `scale`, and the per-record
  // cost multiplies by it (record counts shrink with the data).
  CostModel Scaled(double scale) const {
    CostModel m = *this;
    m.cpu_rate /= scale;
    m.disk_read_rate /= scale;
    m.disk_write_rate /= scale;
    m.record_cpu *= scale;
    return m;
  }
};

}  // namespace gs
