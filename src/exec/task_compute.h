// Pure per-task compute, packaged for execution off the event loop.
//
// ComputeTask() bundles everything a task does to real records — narrow
// chain evaluation, map-side combine, shuffle-write partitioning, and
// serialized/compressed size accounting — into one side-effect-free
// function of its inputs. The simulator's event loop submits it to the
// compute ThreadPool when a task's gather starts and joins the future at
// the simulated gather-done event, so wall-clock compute of concurrent
// tasks overlaps while simulated time, event order, and every derived
// number stay identical to inline execution (see docs/PERF.md).
//
// Purity contract: a compute job reads only its spec (records moved in,
// plus const pointers into the immutable Rdd graph / stage structures) and
// writes only its result. It never touches the simulator, the RNG, block
// storage, or metrics — those stay event-loop-only.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"
#include "dag/stage.h"
#include "data/combiner.h"
#include "data/record.h"
#include "exec/evaluator.h"
#include "rdd/rdd.h"

namespace gs {

// Inputs of one task's compute, captured at submit time. All pointers
// reference structures that outlive the job (the Rdd graph and StageRun
// fields); the record payload is owned.
struct TaskComputeSpec {
  const Rdd* output_rdd = nullptr;
  int partition = -1;
  EvalStart start;  // boundary records, moved in
  // Effective map-side combine: null when the stage has none or the run
  // disables it. (Receiver stages always combine when the stage asks —
  // RunConfig::disable_map_side_combine does not apply to them.)
  const CombineFn* combine = nullptr;
  StageOutputKind output = StageOutputKind::kResult;
  // Shuffle this stage writes into (kShuffleWrite only).
  const ShuffleInfo* consumer_shuffle = nullptr;
};

// Outputs: computed records plus every size the event loop needs to cost
// the task, so no record walk remains on the simulation thread.
struct TaskComputeResult {
  // Computed partition (kResult / kTransferProduce). Empty for
  // kShuffleWrite, whose records live in `shards`.
  std::vector<Record> records;
  std::vector<EvalResult::CacheFill> cache_fills;

  std::size_t in_records = 0;   // boundary records fed to Evaluate
  std::size_t out_records = 0;  // records after the (optional) combine
  Bytes out_bytes = 0;          // serialized size of the computed output

  // kTransferProduce: push size (serialized + compressed).
  Bytes compressed_bytes = 0;

  // kShuffleWrite: records split per reduce shard, each shard's
  // compressed size, and their sum (the map task's disk write).
  std::vector<std::vector<Record>> shards;
  std::vector<Bytes> shard_bytes;
  Bytes shard_total_bytes = 0;
};

// Runs the task's compute synchronously. Pure: thread-safe for any number
// of concurrent calls over a shared immutable Rdd graph.
TaskComputeResult ComputeTask(TaskComputeSpec spec);

}  // namespace gs
