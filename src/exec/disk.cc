#include "exec/disk.h"

#include <utility>

#include "common/check.h"

namespace gs {
namespace {
constexpr double kByteEpsilon = 1e-6;
}  // namespace

DiskModel::DiskModel(Simulator& sim, int num_nodes, Rate read_rate,
                     Rate write_rate, MetricsRegistry* metrics)
    : sim_(sim), read_(num_nodes), write_(num_nodes) {
  GS_CHECK(num_nodes > 0);
  GS_CHECK(read_rate > 0);
  GS_CHECK(write_rate > 0);
  for (auto& ch : read_) ch.rate = read_rate;
  for (auto& ch : write_) ch.rate = write_rate;
  if (metrics != nullptr) {
    m_reads_ = &metrics->counter("disk.reads");
    m_writes_ = &metrics->counter("disk.writes");
    m_read_bytes_ = &metrics->counter("disk.read_bytes");
    m_write_bytes_ = &metrics->counter("disk.write_bytes");
  }
}

void DiskModel::Read(NodeIndex node, Bytes bytes, DoneFn done) {
  GS_CHECK(node >= 0 && node < static_cast<NodeIndex>(read_.size()));
  if (m_reads_ != nullptr) {
    m_reads_->Add(1);
    m_read_bytes_->Add(bytes);
  }
  Enqueue(read_[node], bytes, std::move(done));
}

void DiskModel::Write(NodeIndex node, Bytes bytes, DoneFn done) {
  GS_CHECK(node >= 0 && node < static_cast<NodeIndex>(write_.size()));
  if (m_writes_ != nullptr) {
    m_writes_->Add(1);
    m_write_bytes_->Add(bytes);
  }
  Enqueue(write_[node], bytes, std::move(done));
}

int DiskModel::active_requests(NodeIndex node) const {
  GS_CHECK(node >= 0 && node < static_cast<NodeIndex>(read_.size()));
  return static_cast<int>(read_[node].queue.size() +
                          write_[node].queue.size());
}

void DiskModel::Enqueue(Channel& ch, Bytes bytes, DoneFn done) {
  GS_CHECK(bytes >= 0);
  GS_CHECK(done != nullptr);
  // Settle the channel's past progress (at the *old* concurrency) before
  // the new request joins the share.
  Advance(ch);
  Request req;
  req.remaining = static_cast<double>(bytes);
  req.done = std::move(done);
  ch.queue.push_back(std::move(req));
  Reconfigure(ch);
}

void DiskModel::Advance(Channel& ch) {
  const SimTime now = sim_.Now();
  // Processor sharing: all requests progressed at rate / n since the last
  // settlement.
  if (!ch.queue.empty() && now > ch.last_update) {
    const double progressed =
        (now - ch.last_update) * ch.rate / static_cast<double>(ch.queue.size());
    for (Request& r : ch.queue) r.remaining -= progressed;
  }
  ch.last_update = now;
}

void DiskModel::Reconfigure(Channel& ch) {
  Advance(ch);

  // Complete finished requests (deliver via the simulator).
  for (auto it = ch.queue.begin(); it != ch.queue.end();) {
    if (it->remaining <= kByteEpsilon) {
      sim_.Schedule(0, std::move(it->done));
      it = ch.queue.erase(it);
    } else {
      ++it;
    }
  }

  ch.completion.Cancel();
  if (ch.queue.empty()) return;
  double shortest = ch.queue.front().remaining;
  for (const Request& r : ch.queue) {
    shortest = std::min(shortest, r.remaining);
  }
  const double share = ch.rate / static_cast<double>(ch.queue.size());
  Channel* chp = &ch;
  ch.completion =
      sim_.Schedule(shortest / share, [this, chp] { Reconfigure(*chp); });
}

}  // namespace gs
