#include "exec/task_compute.h"

#include <cstdint>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "data/compression.h"
#include "data/partitioner.h"

namespace gs {
namespace {

// Per-thread scratch reused across compute jobs: a pool worker splitting
// map output after map output pays the shard-table and hash-vector
// allocations once, not per task. Sizes are reset per job, capacity is
// kept. Thread-local, so jobs running concurrently never share it.
struct SplitScratch {
  std::vector<std::uint64_t> hashes;
  std::vector<int> shard_of;
  std::vector<std::size_t> histogram;
  std::vector<Bytes> shard_raw;
};

SplitScratch& Scratch() {
  static thread_local SplitScratch scratch;
  return scratch;
}

}  // namespace

TaskComputeResult ComputeTask(TaskComputeSpec spec) {
  GS_CHECK(spec.output_rdd != nullptr);
  TaskComputeResult out;
  out.in_records = spec.start.records.size();

  EvalResult eval =
      Evaluate(*spec.output_rdd, spec.partition, std::move(spec.start));
  std::vector<Record> records = std::move(eval.records);
  out.cache_fills = std::move(eval.cache_fills);

  // Map-side combine. The combine pass hashes every key anyway, so it
  // hands the hashes back for shard assignment below — one FNV-1a per
  // record for the whole combine-then-partition path.
  std::vector<std::uint64_t>& hashes = Scratch().hashes;
  hashes.clear();
  const bool want_hashes =
      spec.output == StageOutputKind::kShuffleWrite &&
      spec.consumer_shuffle->partitioner->UsesKeyHash();
  if (spec.combine != nullptr) {
    records = CombineByKey(records, *spec.combine,
                           want_hashes ? &hashes : nullptr);
  }
  out.out_records = records.size();

  if (spec.output == StageOutputKind::kShuffleWrite) {
    // Single-pass split: one walk decides every record's shard and
    // accumulates per-shard serialized bytes (histogram prepass), then a
    // second walk moves records into exactly-sized shard vectors. The old
    // path grew each shard by push_back (log n reallocations per shard)
    // and re-walked every shard again for its serialized size.
    const Partitioner& part = *spec.consumer_shuffle->partitioner;
    const int num_shards = part.num_shards();
    const std::size_t n = records.size();
    SplitScratch& s = Scratch();
    std::vector<int>& shard_of = s.shard_of;
    shard_of.resize(n);  // every element is overwritten below
    std::vector<std::size_t>& histogram = s.histogram;
    histogram.assign(static_cast<std::size_t>(num_shards), 0);
    std::vector<Bytes>& shard_raw = s.shard_raw;
    shard_raw.assign(static_cast<std::size_t>(num_shards), 0);
    const bool hashed = want_hashes;
    for (std::size_t i = 0; i < n; ++i) {
      const Record& r = records[i];
      const int k =
          hashed ? part.ShardOfHashed(
                       r.key, spec.combine != nullptr ? hashes[i]
                                                      : Fnv1a64(r.key))
                 : part.ShardOf(r.key);
      shard_of[i] = k;
      ++histogram[static_cast<std::size_t>(k)];
      shard_raw[static_cast<std::size_t>(k)] += SerializedSize(r);
    }
    out.shards.resize(static_cast<std::size_t>(num_shards));
    for (int k = 0; k < num_shards; ++k) {
      out.shards[static_cast<std::size_t>(k)].reserve(
          histogram[static_cast<std::size_t>(k)]);
      out.out_bytes += shard_raw[static_cast<std::size_t>(k)];
    }
    for (std::size_t i = 0; i < n; ++i) {
      out.shards[static_cast<std::size_t>(shard_of[i])].push_back(
          std::move(records[i]));
    }
    out.shard_bytes.resize(static_cast<std::size_t>(num_shards), 0);
    for (int k = 0; k < num_shards; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      out.shard_bytes[ks] = CompressedSize(out.shards[ks], shard_raw[ks]);
      out.shard_total_bytes += out.shard_bytes[ks];
    }
    return out;
  }

  out.out_bytes = SerializedSize(records);
  if (spec.output == StageOutputKind::kTransferProduce) {
    // Pushed data is serialized and compressed like any shuffle stream.
    out.compressed_bytes = CompressedSize(records, out.out_bytes);
  }
  out.records = std::move(records);
  return out;
}

}  // namespace gs
