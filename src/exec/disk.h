// Per-node disk model with processor-sharing contention.
//
// Each worker's SSD serves all concurrent requests of a channel (read or
// write) at an aggregate rate, shared equally — so two tasks scanning
// input on the same 2-core node each see half the sequential bandwidth,
// and a reducer's shuffle read contends with a neighbouring task's output
// write only through its own channel. This matters most for the
// Centralized baseline, which funnels every stage through one
// datacenter's eight slots.
#pragma once

#include <functional>
#include <list>
#include <vector>

#include "common/ids.h"
#include "common/metrics_registry.h"
#include "common/units.h"
#include "simcore/simulator.h"

namespace gs {

class DiskModel {
 public:
  using DoneFn = std::function<void()>;

  // `metrics` (optional) receives request and byte counters per channel;
  // must outlive the model.
  DiskModel(Simulator& sim, int num_nodes, Rate read_rate, Rate write_rate,
            MetricsRegistry* metrics = nullptr);

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  // Enqueues a sequential read/write of `bytes` on `node`; `done` fires
  // (via the simulator) when the last byte is transferred. Zero-byte
  // requests complete on the next simulator step.
  void Read(NodeIndex node, Bytes bytes, DoneFn done);
  void Write(NodeIndex node, Bytes bytes, DoneFn done);

  // Number of in-flight requests (both channels) on a node.
  int active_requests(NodeIndex node) const;

 private:
  struct Request {
    double remaining = 0;
    DoneFn done;
  };
  // One processor-shared channel (read or write) of one node.
  struct Channel {
    Rate rate = 0;
    SimTime last_update = 0;
    std::list<Request> queue;
    EventHandle completion;
  };

  void Enqueue(Channel& ch, Bytes bytes, DoneFn done);
  // Settles progress at the current concurrency up to Now().
  void Advance(Channel& ch);
  // Advances progress, completes finished requests, reschedules the next
  // completion event.
  void Reconfigure(Channel& ch);

  Simulator& sim_;
  std::vector<Channel> read_;
  std::vector<Channel> write_;

  // Metric handles (nullptr without a registry); event-loop-only updates.
  Counter* m_reads_ = nullptr;
  Counter* m_writes_ = nullptr;
  Counter* m_read_bytes_ = nullptr;
  Counter* m_write_bytes_ = nullptr;
};

}  // namespace gs
