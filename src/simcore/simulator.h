// Discrete-event simulation core.
//
// A Simulator owns a priority queue of timestamped events. Components
// schedule callbacks at future simulated times; Run() drains the queue in
// time order (FIFO among equal timestamps). Events can be cancelled, which
// is how the network model reschedules flow-completion events when max-min
// fair rates change.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.h"

namespace gs {

class Counter;  // common/metrics_registry.h

// Handle to a scheduled event; allows cancellation. Copyable; all copies
// refer to the same scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly and
  // on a default-constructed handle.
  void Cancel();

  // True if the event is still pending (scheduled, not fired, not cancelled).
  bool pending() const;

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn to run at now + delay. Negative delays are clamped to zero.
  EventHandle Schedule(SimTime delay, std::function<void()> fn);

  // Schedules fn at an absolute simulated time (>= Now()).
  EventHandle ScheduleAt(SimTime when, std::function<void()> fn);

  // Runs until the event queue is empty. Returns the final simulated time.
  SimTime Run();

  // Runs until the queue is empty or the clock would pass `deadline`.
  // Events at exactly `deadline` are executed.
  SimTime RunUntil(SimTime deadline);

  // Executes a single event, if any. Returns false when the queue is empty.
  bool Step();

  std::size_t pending_events() const { return live_events_; }
  std::int64_t executed_events() const { return executed_events_; }

  // Observability hook: bump `scheduled` at every Schedule/ScheduleAt and
  // `executed` at every executed event. Either may be null; the counters
  // must outlive the simulator.
  void AttachMetrics(Counter* scheduled, Counter* executed) {
    m_scheduled_ = scheduled;
    m_executed_ = executed;
  }

 private:
  struct Event {
    SimTime when;
    std::int64_t seq;  // tie-break: FIFO among equal timestamps
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Pops cancelled events off the top of the queue.
  void SkimCancelled();

  SimTime now_ = 0;
  Counter* m_scheduled_ = nullptr;
  Counter* m_executed_ = nullptr;
  std::int64_t next_seq_ = 0;
  std::int64_t executed_events_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace gs
