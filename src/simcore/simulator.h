// Discrete-event simulation core.
//
// A Simulator owns a binary heap of timestamped events. Components
// schedule callbacks at future simulated times; Run() drains the queue in
// time order (FIFO among equal timestamps). Events can be cancelled, which
// is how the network model reschedules flow-completion events when max-min
// fair rates change.
//
// Cancelled events are removed lazily: a cancelled entry stays in the heap
// until it reaches the top (where it is skimmed) or until the dead fraction
// grows past a threshold, at which point the heap is compacted in one
// O(n) pass. Dead entries are tracked explicitly so pending_events() and
// the queue-health metrics reflect only live work.
//
// Layout (docs/PERF.md §7): the heap holds 24-byte POD entries {when, seq,
// slot} while callbacks and cancellation state live in a slot-addressed
// slab, so every sift swap moves three words instead of a std::function
// plus a shared_ptr. Handle state objects are pooled and reused once no
// outstanding EventHandle refers to them, making the steady-state
// schedule/cancel/reschedule cycle allocation-free for the queue itself.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.h"

namespace gs {

class Counter;  // common/metrics_registry.h
class Gauge;    // common/metrics_registry.h
class Simulator;

// Handle to a scheduled event; allows cancellation. Copyable; all copies
// refer to the same scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly and
  // on a default-constructed handle.
  void Cancel();

  // True if the event is still pending (scheduled, not fired, not cancelled).
  bool pending() const;

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool fired = false;
    // Owning simulator, for dead-entry accounting on Cancel(); nulled when
    // the simulator is destroyed before the event fires.
    Simulator* owner = nullptr;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn to run at now + delay. Negative delays are clamped to zero.
  EventHandle Schedule(SimTime delay, std::function<void()> fn);

  // Schedules fn at an absolute simulated time (>= Now()).
  EventHandle ScheduleAt(SimTime when, std::function<void()> fn);

  // Runs until the event queue is empty. Returns the final simulated time.
  SimTime Run();

  // Runs until the queue is empty or the clock would pass `deadline`.
  // Events at exactly `deadline` are executed.
  SimTime RunUntil(SimTime deadline);

  // Executes a single event, if any. Returns false when the queue is empty.
  bool Step();

  // Events scheduled, not yet fired and not cancelled.
  std::size_t pending_events() const { return heap_.size() - dead_events_; }
  std::int64_t executed_events() const { return executed_events_; }

  // Cancelled events still occupying heap slots, and how many times the
  // heap has been compacted to evict them in bulk.
  std::size_t cancelled_pending() const { return dead_events_; }
  std::int64_t heap_compactions() const { return compactions_; }

  // Observability hook: bump `scheduled` at every Schedule/ScheduleAt and
  // `executed` at every executed event. Either may be null; the counters
  // must outlive the simulator.
  void AttachMetrics(Counter* scheduled, Counter* executed) {
    m_scheduled_ = scheduled;
    m_executed_ = executed;
  }

  // Queue-health hook: `cancelled_pending` tracks dead heap entries,
  // `compactions` counts bulk evictions. Either may be null; both must
  // outlive the simulator.
  void AttachQueueHealthMetrics(Gauge* cancelled_pending,
                                Counter* compactions) {
    m_cancelled_pending_ = cancelled_pending;
    m_compactions_ = compactions;
  }

 private:
  friend class EventHandle;

  // POD heap entry; the callback lives in slab_[slot].
  struct HeapEntry {
    SimTime when;
    std::int64_t seq;  // tie-break: FIFO among equal timestamps
    std::int32_t slot;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct EventRec {
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };

  // Compact once dead entries are both numerous and the majority: small
  // queues never pay the O(n) pass, large ones amortize it against the
  // cancellations that made it necessary.
  static constexpr std::size_t kCompactMinDead = 64;

  // Pops cancelled events off the top of the queue.
  void SkimCancelled();
  // Called by EventHandle::Cancel on the first cancellation of a pending
  // event; triggers compaction past the dead-fraction threshold.
  void NoteCancelled();
  // Erases every cancelled entry and re-heapifies.
  void Compact();
  void UpdateDeadGauge();

  // Returns a fresh or pooled handle state with flags cleared.
  std::shared_ptr<EventHandle::State> AcquireState();
  // Returns the slot to the free list; recycles its state object into the
  // pool when no outstanding handle still refers to it.
  void ReleaseSlot(std::int32_t slot);

  SimTime now_ = 0;
  Counter* m_scheduled_ = nullptr;
  Counter* m_executed_ = nullptr;
  Gauge* m_cancelled_pending_ = nullptr;
  Counter* m_compactions_ = nullptr;
  std::int64_t next_seq_ = 0;
  std::int64_t executed_events_ = 0;
  std::int64_t compactions_ = 0;
  std::size_t dead_events_ = 0;   // cancelled entries still in heap_
  std::vector<HeapEntry> heap_;   // binary heap ordered by Later
  std::vector<EventRec> slab_;    // slot-addressed callbacks + states
  std::vector<std::int32_t> free_slots_;
  std::vector<std::shared_ptr<EventHandle::State>> state_pool_;
};

}  // namespace gs
