#include "simcore/simulator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/metrics_registry.h"

namespace gs {

void EventHandle::Cancel() {
  if (!state_ || state_->fired || state_->cancelled) return;
  state_->cancelled = true;
  if (state_->owner != nullptr) state_->owner->NoteCancelled();
}

bool EventHandle::pending() const {
  return state_ && !state_->fired && !state_->cancelled;
}

Simulator::~Simulator() {
  // Outstanding handles may be cancelled after the simulator is gone; break
  // the accounting backpointer so they don't reach freed memory. Only
  // pending events can still be referenced by a live handle — pooled
  // states, by the pool's invariant, have no handle left.
  for (const HeapEntry& e : heap_) {
    slab_[static_cast<std::size_t>(e.slot)].state->owner = nullptr;
  }
}

std::shared_ptr<EventHandle::State> Simulator::AcquireState() {
  if (!state_pool_.empty()) {
    std::shared_ptr<EventHandle::State> state = std::move(state_pool_.back());
    state_pool_.pop_back();
    state->cancelled = false;
    state->fired = false;
    return state;
  }
  auto state = std::make_shared<EventHandle::State>();
  state->owner = this;
  return state;
}

void Simulator::ReleaseSlot(std::int32_t slot) {
  EventRec& rec = slab_[static_cast<std::size_t>(slot)];
  rec.fn = nullptr;
  if (rec.state.use_count() == 1) {
    // No handle outstanding: the state object can serve a future event.
    state_pool_.push_back(std::move(rec.state));
  } else {
    rec.state.reset();
  }
  free_slots_.push_back(slot);
}

EventHandle Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  GS_CHECK_MSG(when >= now_, "scheduling into the past: " << when << " < "
                                                          << now_);
  GS_CHECK(fn != nullptr);
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slab_.emplace_back();
    slot = static_cast<std::int32_t>(slab_.size()) - 1;
  }
  EventRec& rec = slab_[static_cast<std::size_t>(slot)];
  rec.fn = std::move(fn);
  rec.state = AcquireState();
  heap_.push_back(HeapEntry{when, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (m_scheduled_ != nullptr) m_scheduled_->Add(1);
  return EventHandle(rec.state);
}

void Simulator::NoteCancelled() {
  ++dead_events_;
  if (dead_events_ >= kCompactMinDead && dead_events_ * 2 >= heap_.size()) {
    Compact();
  } else {
    UpdateDeadGauge();
  }
}

void Simulator::Compact() {
  std::erase_if(heap_, [this](const HeapEntry& e) {
    if (slab_[static_cast<std::size_t>(e.slot)].state->cancelled) {
      ReleaseSlot(e.slot);
      return true;
    }
    return false;
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  dead_events_ = 0;
  ++compactions_;
  if (m_compactions_ != nullptr) m_compactions_->Add(1);
  UpdateDeadGauge();
}

void Simulator::UpdateDeadGauge() {
  if (m_cancelled_pending_ != nullptr) {
    m_cancelled_pending_->Set(static_cast<std::int64_t>(dead_events_));
  }
}

void Simulator::SkimCancelled() {
  bool skimmed = false;
  while (!heap_.empty() &&
         slab_[static_cast<std::size_t>(heap_.front().slot)]
             .state->cancelled) {
    const std::int32_t slot = heap_.front().slot;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    ReleaseSlot(slot);
    --dead_events_;
    skimmed = true;
  }
  if (skimmed) UpdateDeadGauge();
}

bool Simulator::Step() {
  SkimCancelled();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const HeapEntry e = heap_.back();
  heap_.pop_back();
  GS_CHECK(e.when >= now_);
  now_ = e.when;
  EventRec& rec = slab_[static_cast<std::size_t>(e.slot)];
  rec.state->fired = true;
  ++executed_events_;
  if (m_executed_ != nullptr) m_executed_->Add(1);
  // Move the callback out and release the slot before running it: the
  // callback may schedule more events (and reuse this very slot).
  std::function<void()> fn = std::move(rec.fn);
  ReleaseSlot(e.slot);
  fn();
  return true;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  for (;;) {
    SkimCancelled();
    if (heap_.empty() || heap_.front().when > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace gs
