#include "simcore/simulator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/metrics_registry.h"

namespace gs {

void EventHandle::Cancel() {
  if (!state_ || state_->fired || state_->cancelled) return;
  state_->cancelled = true;
  if (state_->owner != nullptr) state_->owner->NoteCancelled();
}

bool EventHandle::pending() const {
  return state_ && !state_->fired && !state_->cancelled;
}

Simulator::~Simulator() {
  // Outstanding handles may be cancelled after the simulator is gone; break
  // the accounting backpointer so they don't reach freed memory.
  for (Event& ev : heap_) ev.state->owner = nullptr;
}

EventHandle Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  GS_CHECK_MSG(when >= now_, "scheduling into the past: " << when << " < "
                                                          << now_);
  GS_CHECK(fn != nullptr);
  auto state = std::make_shared<EventHandle::State>();
  state->owner = this;
  heap_.push_back(Event{when, next_seq_++, std::move(fn), state});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (m_scheduled_ != nullptr) m_scheduled_->Add(1);
  return EventHandle(state);
}

void Simulator::NoteCancelled() {
  ++dead_events_;
  if (dead_events_ >= kCompactMinDead && dead_events_ * 2 >= heap_.size()) {
    Compact();
  } else {
    UpdateDeadGauge();
  }
}

void Simulator::Compact() {
  std::erase_if(heap_, [](const Event& ev) { return ev.state->cancelled; });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  dead_events_ = 0;
  ++compactions_;
  if (m_compactions_ != nullptr) m_compactions_->Add(1);
  UpdateDeadGauge();
}

void Simulator::UpdateDeadGauge() {
  if (m_cancelled_pending_ != nullptr) {
    m_cancelled_pending_->Set(static_cast<std::int64_t>(dead_events_));
  }
}

void Simulator::SkimCancelled() {
  bool skimmed = false;
  while (!heap_.empty() && heap_.front().state->cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    --dead_events_;
    skimmed = true;
  }
  if (skimmed) UpdateDeadGauge();
}

bool Simulator::Step() {
  SkimCancelled();
  if (heap_.empty()) return false;
  // Move the event out before running it: the callback may schedule more.
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  GS_CHECK(ev.when >= now_);
  now_ = ev.when;
  ev.state->fired = true;
  ++executed_events_;
  if (m_executed_ != nullptr) m_executed_->Add(1);
  ev.fn();
  return true;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  for (;;) {
    SkimCancelled();
    if (heap_.empty() || heap_.front().when > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace gs
