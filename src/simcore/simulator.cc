#include "simcore/simulator.h"

#include <utility>

#include "common/check.h"
#include "common/metrics_registry.h"

namespace gs {

void EventHandle::Cancel() {
  if (state_ && !state_->fired) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->fired && !state_->cancelled;
}

EventHandle Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  GS_CHECK_MSG(when >= now_, "scheduling into the past: " << when << " < "
                                                          << now_);
  GS_CHECK(fn != nullptr);
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Event{when, next_seq_++, std::move(fn), state});
  ++live_events_;
  if (m_scheduled_ != nullptr) m_scheduled_->Add(1);
  return EventHandle(state);
}

void Simulator::SkimCancelled() {
  while (!queue_.empty() && queue_.top().state->cancelled) {
    queue_.pop();
    --live_events_;
  }
}

bool Simulator::Step() {
  SkimCancelled();
  if (queue_.empty()) return false;
  // Move the event out before running it: the callback may schedule more.
  Event ev = queue_.top();
  queue_.pop();
  --live_events_;
  GS_CHECK(ev.when >= now_);
  now_ = ev.when;
  ev.state->fired = true;
  ++executed_events_;
  if (m_executed_ != nullptr) m_executed_->Add(1);
  ev.fn();
  return true;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  for (;;) {
    SkimCancelled();
    if (queue_.empty() || queue_.top().when > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace gs
