// MetricsRegistry: named counters, gauges and fixed-bucket histograms.
//
// The registry is the backbone of the observability subsystem
// (docs/OBSERVABILITY.md): components grab metric handles once at
// construction and update them lock-free on the hot path. Handles are
// stable for the registry's lifetime, so a disabled registry costs callers
// exactly one null-pointer check.
//
// Thread-safety and determinism: every update is an atomic on a
// pre-registered cell, safe from any thread (the PR 2 compute pool
// included). Determinism of *reported values* is a property of the call
// sites, not the registry: everything exported into a RunReport is updated
// only from the single-threaded event loop, whose order is a function of
// the seed alone — which is why reports are byte-identical for any
// RunConfig::compute_threads. Wall-clock-domain quantities (pool queue
// depths, real elapsed times) are deliberately kept out of the registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gs {

// Monotonically increasing event count (flows started, tasks finished...).
class Counter {
 public:
  void Add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Instantaneous level with a high-watermark (queue depth, bytes stored).
class Gauge {
 public:
  void Set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    BumpMax(v);
  }
  void Add(std::int64_t d) {
    BumpMax(v_.fetch_add(d, std::memory_order_relaxed) + d);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t max_value() const {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  void BumpMax(std::int64_t v) {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

// Distribution over fixed, ascending upper-bound buckets (cumulative style
// is left to exporters; cells here are per-bucket). An implicit overflow
// bucket catches observations above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last index is the overflow bucket.
  std::int64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0};
};

// `count` upper bounds starting at `start`, each `factor` x the previous —
// the conventional shape for byte-size and latency histograms.
std::vector<double> ExponentialBounds(double start, double factor, int count);

// Point-in-time export of one metric, used by RunReport::ToJson.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;  // counter total / gauge level
  std::int64_t max = 0;    // gauge high-watermark
  std::int64_t count = 0;  // histogram observations
  double sum = 0;          // histogram sum
  std::vector<double> bounds;
  std::vector<std::int64_t> buckets;  // bounds.size() + 1 (overflow last)
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the metric registered under `name`, creating it on first use.
  // A name identifies exactly one kind; re-registering it as another kind
  // is a programming error. For histograms, the first registration fixes
  // the bucket bounds. Handles stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  // All metrics, sorted by name (deterministic export order).
  std::vector<MetricSnapshot> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace gs
