#include "common/log.h"

#include <atomic>

namespace gs {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

}  // namespace gs
