#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace gs {
namespace {

double SortedPercentile(const std::vector<double>& sorted, double q) {
  GS_CHECK(!sorted.empty());
  GS_CHECK(q >= 0 && q <= 100);
  if (sorted.size() == 1) return sorted[0];
  double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(std::floor(pos));
  auto hi = static_cast<std::size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary Summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  // NaN breaks strict weak ordering (std::sort on it is undefined) and
  // poisons every aggregate, so it is a caller bug, not a data point.
  for (double v : samples) GS_CHECK_MSG(!std::isnan(v), "NaN sample");
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  double sum = std::accumulate(samples.begin(), samples.end(), 0.0);
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 2) {
    double trimmed = sum - s.min - s.max;
    s.trimmed_mean = trimmed / static_cast<double>(s.count - 2);
  } else {
    s.trimmed_mean = s.mean;
  }
  s.median = SortedPercentile(samples, 50);
  s.p25 = SortedPercentile(samples, 25);
  s.p75 = SortedPercentile(samples, 75);
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1
                 ? std::sqrt(var / static_cast<double>(s.count - 1))
                 : 0.0;
  return s;
}

double Percentile(std::vector<double> samples, double q) {
  GS_CHECK(!samples.empty());
  for (double v : samples) GS_CHECK_MSG(!std::isnan(v), "NaN sample");
  std::sort(samples.begin(), samples.end());
  return SortedPercentile(samples, q);
}

}  // namespace gs
