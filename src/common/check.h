// Internal invariant checking.
//
// GS_CHECK throws on violation so that tests can observe misuse, and so a
// failed invariant never silently corrupts a simulation run.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gs {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "GS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace internal
}  // namespace gs

#define GS_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::gs::internal::CheckFailed(#expr, __FILE__, __LINE__, "");     \
    }                                                                 \
  } while (false)

#define GS_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream gs_check_os_;                                \
      gs_check_os_ << msg;                                            \
      ::gs::internal::CheckFailed(#expr, __FILE__, __LINE__,          \
                                  gs_check_os_.str());                \
    }                                                                 \
  } while (false)
