// Seeded random number generation.
//
// Every stochastic component of the simulator draws from an Rng derived from
// the run seed via Split(), so that (a) two runs with the same seed are
// bit-identical and (b) adding draws in one component does not perturb the
// stream seen by another.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace gs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Derives an independent child generator. The tag keeps child streams
  // stable as unrelated call sites are added or removed.
  Rng Split(std::string_view tag);
  Rng Split(std::uint64_t salt);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  double Normal(double mean, double stddev);

  // Exponentially distributed with the given mean.
  double Exponential(double mean);

  // True with probability p.
  bool Bernoulli(double p);

  // Fisher-Yates shuffle of indices [0, n).
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(0, i - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Samples from a Zipf distribution over {0, ..., n-1} with exponent s.
// Used for word frequencies (WordCount) and web-graph degrees (PageRank).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t Sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative probabilities
};

}  // namespace gs
