// Summary statistics used for reporting experimental results.
//
// The paper reports 10% trimmed means (drop min and max over 10 runs),
// medians, and interquartile ranges; Summary computes all of these.
#pragma once

#include <cstddef>
#include <vector>

namespace gs {

// Summary statistics over a sample of measurements.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double trimmed_mean = 0;  // mean after dropping the min and the max
  double median = 0;
  double p25 = 0;
  double p75 = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;

  double iqr() const { return p75 - p25; }
};

// Computes summary statistics. An empty sample yields an all-zero Summary.
// With one or two samples there is nothing left after dropping the min and
// the max, so trimmed_mean falls back to the plain mean; stddev is the
// (n-1)-denominator sample deviation, 0 for a single sample. NaN samples
// are rejected with GS_CHECK (they break ordering and every aggregate);
// infinities propagate into the aggregates as IEEE arithmetic dictates.
Summary Summarize(std::vector<double> samples);

// Linear-interpolated percentile of a sample; q in [0, 100]. The sample
// must be non-empty and NaN-free (GS_CHECK).
double Percentile(std::vector<double> samples, double q);

}  // namespace gs
