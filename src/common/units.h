// Byte and time units used throughout the simulator.
//
// Simulated time is a double counting seconds since the start of the
// simulation. Byte volumes are signed 64-bit so that subtraction is safe.
#pragma once

#include <cstdint>

namespace gs {

// Simulated time, in seconds since simulation start.
using SimTime = double;

// Data volume in bytes.
using Bytes = std::int64_t;

// Data rate in bytes per second.
using Rate = double;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes KiB(double v) { return static_cast<Bytes>(v * kKiB); }
constexpr Bytes MiB(double v) { return static_cast<Bytes>(v * kMiB); }
constexpr Bytes GiB(double v) { return static_cast<Bytes>(v * kGiB); }

// Link capacities are conventionally quoted in megabits per second.
constexpr Rate Mbps(double v) { return v * 1e6 / 8.0; }
constexpr Rate Gbps(double v) { return v * 1e9 / 8.0; }

constexpr SimTime Seconds(double v) { return v; }
constexpr SimTime Millis(double v) { return v / 1e3; }

// Converts a byte count to MiB as a double, for reporting.
constexpr double ToMiB(Bytes b) { return static_cast<double>(b) / kMiB; }

}  // namespace gs
