// ThreadPool: a fixed-size, FIFO, work-stealing-free compute pool.
//
// The simulator's event loop stays single-threaded; the pool only runs
// *pure* compute jobs (record transformation, partitioning, size
// accounting) whose results the loop consumes at simulated compute-done
// events. Determinism therefore does not depend on scheduling: jobs are
// side-effect-free functions of their captured inputs, workers pop one
// shared FIFO queue (no stealing, no per-thread deques), and the event
// loop blocks on a job's Future exactly at the simulated event that needs
// its result — so event order, metrics and records are byte-identical for
// 1 and N threads.
//
// Exceptions thrown by a job are captured and rethrown from Future::get()
// (std::future semantics). The destructor drains the queue — every
// submitted job runs before shutdown completes — then joins the workers.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gs {

class ThreadPool {
 public:
  // Spawns `threads` workers; values below 1 are clamped to 1.
  explicit ThreadPool(int threads);

  // Drains remaining jobs, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues `fn` for execution in submission (FIFO) order. The returned
  // future yields fn's result, or rethrows what it threw.
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> Submit(Fn fn) {
    using R = std::invoke_result_t<Fn>;
    // packaged_task is move-only but std::function requires copyable
    // callables, so the task rides in a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

  // Blocks until the queue is empty and no worker is mid-job. Used by the
  // engine to make sure orphaned jobs (discarded task attempts) finish
  // before the structures they reference are torn down.
  void WaitIdle();

  // Number of hardware threads, never less than 1.
  static int HardwareConcurrency();

 private:
  void Enqueue(std::function<void()> job);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> queue_;
  int busy_ = 0;  // workers currently executing a job
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gs
