// ThreadPool: a fixed-size compute pool with per-worker sharded deques and
// work stealing.
//
// The simulator's event loop stays single-threaded; the pool only runs
// *pure* compute jobs (record transformation, partitioning, size
// accounting, per-component rate solves) whose results the loop consumes
// at fixed simulated events. Determinism therefore does not depend on
// scheduling: jobs are side-effect-free functions of their captured
// inputs, and the event loop blocks on a job's future exactly at the
// simulated event that needs its result — so event order, metrics and
// records are byte-identical for 1 and N threads.
//
// Scaling design (docs/PERF.md §7):
//  * one deque + mutex per worker instead of a single FIFO mutex — a
//    submission contends with at most one worker, and workers steal from
//    each other's queues when their own runs dry, so a burst landing on
//    one shard still spreads across the pool;
//  * SubmitBatch() enqueues a whole wave of jobs with one lock
//    acquisition per shard instead of one per job;
//  * jobs are MoveFunction (move-only, small-buffer-optimized) rather
//    than shared_ptr<packaged_task> wrapped in a copyable std::function —
//    one control block and up to two allocations fewer per job.
//
// Worker count: oversubscribing a host never helps pure CPU-bound jobs —
// it only adds context switches and cache thrash (the PR-2 regression:
// 8 pool threads on a 1-core host made the map pipeline slower than 1).
// The default Width::kClampToHardware therefore caps spawned workers at
// HardwareConcurrency(); Width::kExact spawns exactly the requested
// count (tests use it to force real interleaving on small hosts, and an
// explicit engine --threads choice is honored as given).
//
// Exceptions thrown by a job are captured and rethrown from future::get()
// (std::future semantics). The destructor drains the queues — every
// submitted job runs before shutdown completes — then joins the workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gs {

// Move-only type-erased nullary callable: the pool's job type. Callables
// up to kInlineSize bytes with a nothrow move constructor are stored
// inline (no allocation); larger ones ride in a single heap cell. Unlike
// std::function it never requires copyability, so packaged tasks and
// promise-capturing lambdas move straight in.
class MoveFunction {
 public:
  static constexpr std::size_t kInlineSize = 48;

  MoveFunction() noexcept = default;

  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Fn>, MoveFunction>>>
  MoveFunction(Fn&& fn) {  // NOLINT(google-explicit-constructor)
    using F = std::decay_t<Fn>;
    if constexpr (sizeof(F) <= kInlineSize &&
                  alignof(F) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<F>) {
      ::new (static_cast<void*>(storage_)) F(std::forward<Fn>(fn));
      ops_ = &kInlineOps<F>;
    } else {
      *reinterpret_cast<F**>(storage_) = new F(std::forward<Fn>(fn));
      ops_ = &kHeapOps<F>;
    }
  }

  MoveFunction(MoveFunction&& other) noexcept { MoveFrom(other); }
  MoveFunction& operator=(MoveFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  MoveFunction(const MoveFunction&) = delete;
  MoveFunction& operator=(const MoveFunction&) = delete;
  ~MoveFunction() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->call(storage_); }

 private:
  struct Ops {
    void (*call)(void* storage);
    void (*move)(void* dst, void* src);  // move-construct dst from src
    void (*destroy)(void* storage);
  };

  template <typename F>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<F*>(s))(); },
      [](void* dst, void* src) {
        ::new (dst) F(std::move(*static_cast<F*>(src)));
        static_cast<F*>(src)->~F();
      },
      [](void* s) { static_cast<F*>(s)->~F(); }};

  template <typename F>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**static_cast<F**>(s))(); },
      [](void* dst, void* src) {
        *static_cast<F**>(dst) = *static_cast<F**>(src);
      },
      [](void* s) { delete *static_cast<F**>(s); }};

  void MoveFrom(MoveFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) ops_->move(storage_, other.storage_);
    other.ops_ = nullptr;
  }
  void Reset() noexcept {
    if (ops_ != nullptr) ops_->destroy(storage_);
    ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

class ThreadPool {
 public:
  enum class Width {
    kClampToHardware,  // spawn min(threads, HardwareConcurrency()) workers
    kExact,            // spawn exactly `threads` workers (oversubscribe)
  };

  // Spawns workers per `width`; values below 1 are clamped to 1.
  explicit ThreadPool(int threads, Width width = Width::kClampToHardware);

  // Drains remaining jobs, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Spawned workers (after any hardware clamp).
  int num_threads() const { return static_cast<int>(shards_.size()); }

  // Enqueues `fn` for execution. The returned future yields fn's result,
  // or rethrows what it threw. With one worker, jobs run in submission
  // (FIFO) order.
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> Submit(Fn fn) {
    using R = std::invoke_result_t<Fn>;
    std::promise<R> promise;
    std::future<R> result = promise.get_future();
    MoveFunction job = Wrap<R>(std::move(fn), std::move(promise));
    PushJobs(&job, 1);
    return result;
  }

  // Enqueues a whole wave with one lock acquisition per worker shard
  // (instead of one per job). Futures are returned in submission order;
  // with one worker, jobs also run in that order.
  template <typename Fn>
  std::vector<std::future<std::invoke_result_t<Fn>>> SubmitBatch(
      std::vector<Fn> fns) {
    using R = std::invoke_result_t<Fn>;
    std::vector<std::future<R>> futures;
    futures.reserve(fns.size());
    std::vector<MoveFunction> jobs;
    jobs.reserve(fns.size());
    for (Fn& fn : fns) {
      std::promise<R> promise;
      futures.push_back(promise.get_future());
      jobs.push_back(Wrap<R>(std::move(fn), std::move(promise)));
    }
    PushJobs(jobs.data(), jobs.size());
    return futures;
  }

  // Enqueues pre-wrapped jobs (e.g. packaged tasks whose futures the
  // caller already holds) as one wave — one lock acquisition per worker
  // shard, like SubmitBatch, but without the promise plumbing.
  void SubmitPrepared(std::vector<MoveFunction> jobs) {
    PushJobs(jobs.data(), jobs.size());
  }

  // Blocks until every submitted job has finished (none queued, none
  // mid-run). Used by the engine to make sure orphaned jobs (discarded
  // task attempts) finish before the structures they reference are torn
  // down.
  void WaitIdle();

  // Number of hardware threads, never less than 1.
  static int HardwareConcurrency();

 private:
  // One queue per worker. Submissions land round-robin; a worker pops its
  // own deque front-first and steals the front of a neighbour's when dry.
  struct Shard {
    std::mutex mu;
    std::deque<MoveFunction> jobs;
  };

  template <typename R, typename Fn>
  static MoveFunction Wrap(Fn fn, std::promise<R> promise) {
    return MoveFunction(
        [fn = std::move(fn), promise = std::move(promise)]() mutable {
          try {
            if constexpr (std::is_void_v<R>) {
              fn();
              promise.set_value();
            } else {
              promise.set_value(fn());
            }
          } catch (...) {
            promise.set_exception(std::current_exception());
          }
        });
  }

  void PushJobs(MoveFunction* jobs, std::size_t n);
  bool TryPop(int self, MoveFunction& out);
  void WorkerLoop(int self);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<std::int64_t> queued_{0};    // jobs sitting in shards
  std::atomic<std::int64_t> inflight_{0};  // queued + currently running
  std::atomic<std::uint64_t> rr_{0};       // round-robin shard cursor
  std::atomic<bool> stopping_{false};
  std::mutex sleep_mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
};

}  // namespace gs
