#include "common/threadpool.h"

#include <algorithm>

namespace gs {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-on-shutdown: exit only once the queue is empty.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
      ++busy_;
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --busy_;
      if (busy_ == 0 && queue_.empty()) idle_.notify_all();
    }
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return busy_ == 0 && queue_.empty(); });
}

int ThreadPool::HardwareConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace gs
