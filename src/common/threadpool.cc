#include "common/threadpool.h"

#include <algorithm>

namespace gs {

ThreadPool::ThreadPool(int threads, Width width) {
  int n = std::max(1, threads);
  if (width == Width::kClampToHardware) {
    n = std::min(n, HardwareConcurrency());
  }
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_seq_cst);
  {
    // Empty critical section: a worker that found no work and is between
    // its predicate check and blocking on work_cv_ holds sleep_mu_, so
    // taking it here guarantees the notify below lands after it blocks.
    std::lock_guard<std::mutex> g(sleep_mu_);
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::HardwareConcurrency() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void ThreadPool::PushJobs(MoveFunction* jobs, std::size_t n) {
  if (n == 0) return;
  const std::size_t num_shards = shards_.size();
  // Contiguous chunks: one lock acquisition per shard touched, and jobs
  // keep submission order within each shard. The round-robin cursor
  // rotates the starting shard so consecutive waves spread evenly.
  const std::size_t start =
      static_cast<std::size_t>(rr_.fetch_add(1, std::memory_order_relaxed)) %
      num_shards;
  const std::size_t chunk = (n + num_shards - 1) / num_shards;
  std::size_t done = 0;
  for (std::size_t s = 0; done < n; ++s) {
    Shard& shard = *shards_[(start + s) % num_shards];
    const std::size_t take = std::min(chunk, n - done);
    {
      std::lock_guard<std::mutex> g(shard.mu);
      for (std::size_t i = 0; i < take; ++i) {
        shard.jobs.push_back(std::move(jobs[done + i]));
      }
    }
    done += take;
  }
  inflight_.fetch_add(static_cast<std::int64_t>(n), std::memory_order_seq_cst);
  queued_.fetch_add(static_cast<std::int64_t>(n), std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> g(sleep_mu_);  // pairs with the worker wait
  }
  if (n == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }
}

bool ThreadPool::TryPop(int self, MoveFunction& out) {
  const int num_shards = static_cast<int>(shards_.size());
  for (int i = 0; i < num_shards; ++i) {
    Shard& shard = *shards_[(self + i) % num_shards];
    std::lock_guard<std::mutex> g(shard.mu);
    if (!shard.jobs.empty()) {
      out = std::move(shard.jobs.front());
      shard.jobs.pop_front();
      queued_.fetch_sub(1, std::memory_order_seq_cst);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  for (;;) {
    MoveFunction job;
    if (TryPop(self, job)) {
      job();
      job = MoveFunction();  // drop captures before signalling idle
      if (inflight_.fetch_sub(1, std::memory_order_seq_cst) - 1 == 0) {
        std::lock_guard<std::mutex> g(sleep_mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_mu_);
    work_cv_.wait(lk, [this] {
      return queued_.load(std::memory_order_seq_cst) > 0 ||
             stopping_.load(std::memory_order_seq_cst);
    });
    if (queued_.load(std::memory_order_seq_cst) == 0 &&
        stopping_.load(std::memory_order_seq_cst)) {
      return;  // drained: stop only once no queued work remains
    }
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lk(sleep_mu_);
  idle_cv_.wait(lk, [this] {
    return inflight_.load(std::memory_order_seq_cst) == 0;
  });
}

}  // namespace gs
