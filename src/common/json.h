// Minimal streaming JSON writer with deterministic number formatting.
//
// RunReport (engine/run_report.h) serializes through this writer; the PR 2
// determinism invariant extends to reports, so the same in-memory values
// must always produce the same bytes. Integers print exactly; doubles
// print as integers when they are integral (sim times are often whole
// bucket multiples) and otherwise with the shortest decimal form that
// parses back to the identical double (simcheck reproducers replay
// timing-sensitive scenarios, so the round trip must be exact) — both are
// pure functions of the bit pattern.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace gs {

// Escapes `s` for inclusion in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

// Deterministic number token for a double (never NaN/Inf: those become 0).
std::string JsonNumber(double v);

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key for the next value inside an object.
  JsonWriter& Key(const std::string& k);

  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }
  JsonWriter& Value(std::int64_t v);
  JsonWriter& Value(std::uint64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<std::int64_t>(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);

  std::string str() const { return out_.str(); }

 private:
  void Separate();  // writes "," between siblings
  std::ostringstream out_;
  // One entry per open container: whether a value was already written.
  std::vector<bool> has_sibling_;
  bool pending_key_ = false;
};

}  // namespace gs
