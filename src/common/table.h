// Plain-text table rendering for benchmark reports.
//
// Benches print paper-style tables (one per figure); this keeps the layout
// code out of the harnesses themselves.
#pragma once

#include <string>
#include <vector>

namespace gs {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Adds a horizontal separator after the last added row.
  void AddSeparator();

  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

// Formats a double with the given number of decimals.
std::string FmtDouble(double v, int decimals = 1);

// Formats a byte volume as MiB with one decimal.
std::string FmtMiB(std::int64_t bytes);

// Formats a percentage such as "-73.2%".
std::string FmtPercent(double fraction, int decimals = 1);

}  // namespace gs
