// Minimal leveled logging.
//
// Logging defaults to Warn so tests and benches stay quiet; examples raise
// the level to show the engine's decisions.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace gs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) {
    os_ << "[" << tag << "] ";
  }
  ~LogLine() {
    if (level_ >= GetLogLevel()) std::cerr << os_.str() << std::endl;
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace internal
}  // namespace gs

#define GS_LOG_DEBUG ::gs::internal::LogLine(::gs::LogLevel::kDebug, "debug")
#define GS_LOG_INFO ::gs::internal::LogLine(::gs::LogLevel::kInfo, "info")
#define GS_LOG_WARN ::gs::internal::LogLine(::gs::LogLevel::kWarn, "warn")
#define GS_LOG_ERROR ::gs::internal::LogLine(::gs::LogLevel::kError, "error")
