#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace gs {
namespace {

// FNV-1a, used only to mix split tags into seeds.
std::uint64_t HashTag(std::string_view tag) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : tag) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Rng Rng::Split(std::string_view tag) { return Split(HashTag(tag)); }

Rng Rng::Split(std::uint64_t salt) {
  // Draw a fresh state from this engine and mix in the salt; splitmix-style
  // finalizer avoids correlated children.
  std::uint64_t z = engine_() ^ (salt + 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return Rng(z);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  GS_CHECK(lo <= hi);
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::Exponential(double mean) {
  GS_CHECK(mean > 0);
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  std::bernoulli_distribution d(p);
  return d(engine_);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  GS_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = sum;
  }
  for (double& v : cdf_) v /= sum;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.Uniform(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace gs
