#include "common/metrics_registry.h"

#include <algorithm>

#include "common/check.h"

namespace gs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  GS_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
  buckets_ =
      std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  // First bucket whose upper bound admits v; past-the-end = overflow.
  const std::size_t i =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<double> ExponentialBounds(double start, double factor,
                                      int count) {
  GS_CHECK(start > 0 && factor > 1 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  GS_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
               "metric '" << name << "' already registered as another kind");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  GS_CHECK_MSG(counters_.count(name) == 0 && histograms_.count(name) == 0,
               "metric '" << name << "' already registered as another kind");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  GS_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
               "metric '" << name << "' already registered as another kind");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.value = g->value();
    s.max = g->max_value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.bounds = h->bounds();
    s.buckets.reserve(s.bounds.size() + 1);
    for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
      s.buckets.push_back(h->bucket_count(i));
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace gs
