#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/check.h"
#include "common/units.h"

namespace gs {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  GS_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  GS_CHECK_MSG(row.size() == header_.size(),
               "row has " << row.size() << " cells, header has "
                          << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddSeparator() { rows_.emplace_back(); }

std::string TextTable::Render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " |";
    }
    os << "\n";
    return os.str();
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

std::string FmtDouble(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string FmtMiB(std::int64_t bytes) {
  return FmtDouble(ToMiB(bytes), 1) + " MiB";
}

std::string FmtPercent(double fraction, int decimals) {
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(decimals)
     << fraction * 100.0 << "%";
  return os.str();
}

}  // namespace gs
