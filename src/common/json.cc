#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  // Integral values within the int64 range print without a fraction, so
  // whole sim-seconds and byte counts read naturally.
  if (v == std::floor(v) && std::abs(v) < 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(v));
    return buf;
  }
  // Shortest representation that parses back to exactly the same double.
  // Reproducer configs replay timing-sensitive scenarios, so a truncated
  // fraction (e.g. %.12g) can silently change the scenario on replay.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its "," and ":"
  }
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_ << ",";
    has_sibling_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ << "{";
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_sibling_.pop_back();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ << "[";
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_sibling_.pop_back();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_ << ",";
    has_sibling_.back() = true;
  }
  out_ << "\"" << JsonEscape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  Separate();
  out_ << "\"" << JsonEscape(v) << "\"";
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t v) {
  Separate();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t v) {
  Separate();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  Separate();
  out_ << JsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Separate();
  out_ << (v ? "true" : "false");
  return *this;
}

}  // namespace gs
