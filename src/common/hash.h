// Key hashing for the shuffle data plane.
//
// Every hot per-record structure — HashPartitioner::ShardOf, CombineByKey's
// key index, groupByKey's index — used to hash the key independently (and
// the map-based ones paid std::hash<std::string> plus a node allocation per
// probe). The hot path now computes one FNV-1a hash per record and reuses
// it everywhere; FlatKeyIndex is the shared open-addressing index that maps
// a (hash, key) pair to a dense output slot without owning key storage.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace gs {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// FNV-1a over the key bytes. `basis` folds in an optional salt exactly the
// way HashPartitioner always did (salt XORed into the offset basis), so a
// salt-free hash computed once per record is bit-identical to the hash the
// partitioner would have produced.
inline std::uint64_t Fnv1a64(std::string_view key,
                             std::uint64_t basis = kFnvOffsetBasis) {
  std::uint64_t h = basis;
  for (unsigned char c : key) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

// Open-addressing hash index mapping key hashes to dense indices
// [0, size()). The caller keeps the keyed values in its own dense array and
// supplies an equality predicate to resolve hash collisions; the index
// stores only (hash, dense index) pairs — no strings, no per-entry
// allocations, no std::hash.
class FlatKeyIndex {
 public:
  explicit FlatKeyIndex(std::size_t expected_keys) {
    std::size_t cap = 16;
    while (cap < expected_keys * 2) cap <<= 1;
    slots_.assign(cap, Slot{});
  }

  std::size_t size() const { return size_; }

  // Returns the dense index already mapped to (hash, key-equal entry), or
  // inserts and returns `next_index`. `eq(i)` must report whether the
  // caller's entry at dense index `i` has the probed key.
  template <typename KeyEq>
  std::size_t FindOrInsert(std::uint64_t hash, std::size_t next_index,
                           const KeyEq& eq) {
    if ((size_ + 1) * 2 > slots_.size()) Grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.hash = hash;
        s.index = next_index;
        ++size_;
        return next_index;
      }
      if (s.hash == hash && eq(s.index)) return s.index;
      i = (i + 1) & mask;
    }
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::size_t index = 0;
    bool used = false;
  };

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (!s.used) continue;
      std::size_t i = static_cast<std::size_t>(s.hash) & mask;
      while (slots_[i].used) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace gs
