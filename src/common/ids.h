// Index types for the simulated cluster.
//
// Plain integer aliases are used (rather than wrapper classes) because these
// values index into contiguous vectors on hot paths; the aliases exist to
// make signatures self-describing.
#pragma once

#include <cstdint>

namespace gs {

// Index of a datacenter (region) in the topology.
using DcIndex = int;

// Index of a worker node in the topology (global across datacenters).
using NodeIndex = int;

// Identifier for a network flow.
using FlowId = std::int64_t;

// Identifier for a multicast flow group (netsim::StartMulticastFlow).
using MulticastId = std::int64_t;

// Identifier for a submitted job, stage within a job, or task within a stage.
using JobId = int;
using StageId = int;
using TaskId = std::int64_t;

// Identifier for one shuffle (one wide dependency in a job DAG).
using ShuffleId = int;

// Identifier of an RDD in a lineage graph.
using RddId = int;

inline constexpr NodeIndex kNoNode = -1;
inline constexpr DcIndex kNoDc = -1;

}  // namespace gs
