#include "sched/task_scheduler.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace gs {

TaskScheduler::TaskScheduler(Simulator& sim, const Topology& topo,
                             TaskSchedulerConfig config,
                             MetricsRegistry* metrics)
    : sim_(sim),
      topo_(topo),
      config_(config),
      free_(topo.num_nodes(), 0),
      up_(topo.num_nodes(), true),
      weight_(1, 1.0),
      busy_(1, 0) {
  for (NodeIndex n = 0; n < topo_.num_nodes(); ++n) {
    free_[n] = topo_.node(n).worker ? topo_.node(n).cores : 0;
  }
  if (metrics != nullptr) {
    m_submitted_ = &metrics->counter("sched.tasks_submitted");
    m_assigned_ = &metrics->counter("sched.tasks_assigned");
    m_queue_depth_ = &metrics->gauge("sched.queue_depth");
    // 10ms .. ~160s in x4 steps; the locality wait (6s) sits mid-range.
    m_queue_wait_ = &metrics->histogram("sched.queue_wait_s",
                                        ExponentialBounds(0.01, 4, 8));
  }
}

void TaskScheduler::Submit(TaskRequest request) {
  GS_CHECK(request.on_assigned != nullptr);
  EnsureTenant(request.tenant);
  for (NodeIndex n : request.preferred) {
    GS_CHECK_MSG(n >= 0 && n < topo_.num_nodes(), "bad preferred node " << n);
  }
  Pending pending;
  pending.submitted_at = sim_.Now();
  // The spill deadline is computed ONCE and the wake-up is scheduled for
  // that same instant, so the eligibility comparison in TryAssign sees the
  // identical double when the wake fires. Re-deriving `now + wait` at
  // check time can land one ulp short of the scheduled event and leave the
  // task queued forever if no later event pumps the scheduler.
  pending.spill_at = sim_.Now() + config_.locality_wait;
  const bool has_prefs = !request.preferred.empty();
  pending.request = std::move(request);
  if (has_prefs && config_.locality_wait > 0 &&
      (pending.request.policy == PlacementPolicy::kAnyAfterWait ||
       pending.request.policy == PlacementPolicy::kDcOnly)) {
    // Wake the scheduler when this task becomes eligible for ANY placement
    // (for kDcOnly that only ever applies if its datacenters lose every
    // worker; the event is cancelled on assignment either way).
    pending.wait_expiry =
        sim_.Schedule(config_.locality_wait, [this] { Pump(); });
  }
  queue_.push_back(std::move(pending));
  if (m_submitted_ != nullptr) {
    m_submitted_->Add(1);
    m_queue_depth_->Set(static_cast<std::int64_t>(queue_.size()));
  }
  Pump();
}

bool TaskScheduler::UpdatePreferences(TaskId id,
                                      std::vector<NodeIndex> preferred,
                                      PlacementPolicy policy) {
  for (NodeIndex n : preferred) {
    GS_CHECK_MSG(n >= 0 && n < topo_.num_nodes(), "bad preferred node " << n);
  }
  for (Pending& pending : queue_) {
    if (pending.request.id != id) continue;
    pending.request.preferred = std::move(preferred);
    pending.request.policy = policy;
    // spill_at and the wait-expiry event stay as submitted: the task's
    // locality-wait clock started when it entered the queue.
    Pump();
    return true;
  }
  return false;
}

void TaskScheduler::ReleaseSlot(NodeIndex node, int tenant) {
  GS_CHECK(node >= 0 && node < topo_.num_nodes());
  GS_CHECK_MSG(topo_.node(node).worker, "released slot on non-worker");
  EnsureTenant(tenant);
  // The tenant's busy count balances even when the executor died: the
  // grant happened, so the release must be accounted.
  --busy_[tenant];
  GS_CHECK_MSG(busy_[tenant] >= 0, "tenant " << tenant << " over-released");
  if (!up_[node]) return;  // executor crashed: the slot died with it
  ++free_[node];
  GS_CHECK(free_[node] <= topo_.node(node).cores);
  Pump();
}

void TaskScheduler::SetTenantWeight(int tenant, double weight) {
  GS_CHECK_MSG(weight > 0, "tenant weight must be positive");
  EnsureTenant(tenant);
  weight_[tenant] = weight;
  Pump();  // a weight change can reorder which tenant is offered next
}

int TaskScheduler::tenant_busy(int tenant) const {
  GS_CHECK(tenant >= 0);
  if (tenant >= static_cast<int>(busy_.size())) return 0;
  return busy_[tenant];
}

void TaskScheduler::EnsureTenant(int tenant) {
  GS_CHECK_MSG(tenant >= 0, "bad tenant id " << tenant);
  if (tenant >= static_cast<int>(weight_.size())) {
    weight_.resize(static_cast<std::size_t>(tenant) + 1, 1.0);
    busy_.resize(static_cast<std::size_t>(tenant) + 1, 0);
  }
}

bool TaskScheduler::SmallerShare(int a, int b) const {
  const double lhs = static_cast<double>(busy_[a]) * weight_[b];
  const double rhs = static_cast<double>(busy_[b]) * weight_[a];
  if (lhs != rhs) return lhs < rhs;
  return a < b;
}

void TaskScheduler::SetNodeDown(NodeIndex node) {
  GS_CHECK(node >= 0 && node < topo_.num_nodes());
  GS_CHECK_MSG(topo_.node(node).worker, "crashed a non-worker");
  up_[node] = false;
  free_[node] = 0;
  // Queued kDcOnly tasks whose last in-DC worker just died may now be
  // eligible to spill anywhere (their locality wait may long have passed).
  Pump();
}

void TaskScheduler::SetNodeUp(NodeIndex node) {
  GS_CHECK(node >= 0 && node < topo_.num_nodes());
  GS_CHECK_MSG(topo_.node(node).worker, "restarted a non-worker");
  if (up_[node]) return;
  up_[node] = true;
  free_[node] = topo_.node(node).cores;
  Pump();
}

bool TaskScheduler::node_up(NodeIndex node) const {
  GS_CHECK(node >= 0 && node < topo_.num_nodes());
  return up_[node];
}

int TaskScheduler::free_slots(NodeIndex node) const {
  GS_CHECK(node >= 0 && node < topo_.num_nodes());
  return free_[node];
}

int TaskScheduler::busy_slots_in(DcIndex dc) const {
  int busy = 0;
  for (NodeIndex n : topo_.nodes_in(dc)) {
    if (topo_.node(n).worker && up_[n]) busy += topo_.node(n).cores - free_[n];
  }
  return busy;
}

NodeIndex TaskScheduler::BestFreeNodeIn(
    const std::vector<NodeIndex>& candidates) const {
  NodeIndex best = kNoNode;
  for (NodeIndex n : candidates) {
    if (free_[n] <= 0) continue;
    if (best == kNoNode || free_[n] > free_[best]) best = n;
  }
  return best;
}

NodeIndex TaskScheduler::LeastLoadedFreeWorker() const {
  NodeIndex best = kNoNode;
  for (NodeIndex n = 0; n < topo_.num_nodes(); ++n) {
    if (free_[n] <= 0) continue;
    if (best == kNoNode || free_[n] > free_[best]) best = n;
  }
  return best;
}

bool TaskScheduler::NoLiveWorkerNear(
    const std::vector<NodeIndex>& preferred) const {
  for (NodeIndex pref : preferred) {
    for (NodeIndex n : topo_.nodes_in(topo_.dc_of(pref))) {
      if (topo_.node(n).worker && up_[n]) return false;
    }
  }
  return true;
}

bool TaskScheduler::TryAssign(Pending& pending) {
  TaskRequest& request = pending.request;
  NodeIndex node = kNoNode;
  LocalityLevel locality = LocalityLevel::kNoPreference;

  if (!request.preferred.empty()) {
    // Level 1: exactly a preferred node.
    node = BestFreeNodeIn(request.preferred);
    locality = LocalityLevel::kNodeLocal;
    if (node == kNoNode && request.policy != PlacementPolicy::kNodeOnly) {
      // Level 2: any worker in a datacenter hosting a preferred node.
      std::vector<NodeIndex> dc_candidates;
      for (NodeIndex pref : request.preferred) {
        for (NodeIndex n : topo_.nodes_in(topo_.dc_of(pref))) {
          dc_candidates.push_back(n);
        }
      }
      node = BestFreeNodeIn(dc_candidates);
      locality = LocalityLevel::kDcLocal;
    }
    // Level 3: anywhere, but only after the locality wait expired (delay
    // scheduling). This is what keeps reduce tasks queued for the
    // aggregator datacenter instead of instantly spilling elsewhere.
    // kDcOnly tasks get this escape hatch only when their datacenters have
    // no live worker left at all — otherwise a permanent crash of the last
    // worker in the (e.g. central) datacenter would queue them forever and
    // silently hang the job.
    const bool may_spill =
        request.policy == PlacementPolicy::kAnyAfterWait ||
        (request.policy == PlacementPolicy::kDcOnly &&
         NoLiveWorkerNear(request.preferred));
    if (node == kNoNode && may_spill && sim_.Now() >= pending.spill_at) {
      node = LeastLoadedFreeWorker();
      locality = LocalityLevel::kAny;
    }
  } else {
    node = LeastLoadedFreeWorker();
    locality = LocalityLevel::kNoPreference;
  }

  if (node == kNoNode) return false;
  --free_[node];
  GS_CHECK(free_[node] >= 0);
  ++busy_[request.tenant];
  pending.wait_expiry.Cancel();
  if (m_assigned_ != nullptr) {
    m_assigned_->Add(1);
    m_queue_wait_->Observe(sim_.Now() - pending.submitted_at);
  }
  // Deliver through the simulator so assignment is observed at a stable
  // point in the event loop (and never reenters the scheduler mid-Pump).
  auto cb = std::move(request.on_assigned);
  sim_.Schedule(0, [cb = std::move(cb), node, locality] {
    cb(node, locality);
  });
  return true;
}

void TaskScheduler::Pump() {
  if (pumping_) return;
  pumping_ = true;
  // Weighted fair sharing: each round offers one slot to the queued tenant
  // with the smallest busy/weight share; within a tenant, first-fit in
  // submission order (a task with unsatisfiable preferences does not block
  // later tasks, matching Spark's per-offer matching). If the favored
  // tenant cannot place anything, the next-smallest share gets the offer —
  // fair sharing never idles a slot a heavier tenant could use.
  //
  // With a single tenant this reproduces the original FIFO first-fit
  // sequence exactly: assignments only consume slots and never advance
  // time, so a task that failed to place earlier in the pass still fails
  // after a later grant, and restarting from the head yields the same
  // order as one continuing sweep.
  bool assigned = true;
  while (assigned) {
    assigned = false;
    std::vector<int> tenants;
    for (const Pending& p : queue_) {
      if (std::find(tenants.begin(), tenants.end(), p.request.tenant) ==
          tenants.end()) {
        tenants.push_back(p.request.tenant);
      }
    }
    std::sort(tenants.begin(), tenants.end(),
              [this](int a, int b) { return SmallerShare(a, b); });
    for (int tenant : tenants) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->request.tenant != tenant) continue;
        if (TryAssign(*it)) {
          queue_.erase(it);
          assigned = true;
          break;
        }
      }
      if (assigned) break;
    }
  }
  pumping_ = false;
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->Set(static_cast<std::int64_t>(queue_.size()));
  }
}

}  // namespace gs
