// Locality-aware task scheduling over executor slots.
//
// Models Spark's standalone-mode behaviour the paper relies on (Sec. IV-B):
// the scheduler is the only component that picks hosts; tasks express
// host-level preferences through preferredLocations and the scheduler
// satisfies them greedily, falling back from preferred node, to a node in a
// preferred node's datacenter, and — only after a locality wait, as in
// Spark's delay scheduling — to the least-loaded worker anywhere. The
// Push/Aggregate mechanism steers placement purely by feeding receiver
// tasks whose preferences name the aggregator datacenter's workers — no
// scheduler change is needed, which is the paper's central design point.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "common/metrics_registry.h"
#include "common/units.h"
#include "netsim/topology.h"
#include "simcore/simulator.h"

namespace gs {

// How well a task's placement matched its preferences (for metrics/tests).
enum class LocalityLevel { kNodeLocal, kDcLocal, kAny, kNoPreference };

// How far from its preferences a task may be placed.
enum class PlacementPolicy {
  kAnyAfterWait,  // node -> datacenter -> (after locality wait) anywhere
  // node -> datacenter of a preferred node. Never beyond — except when
  // every worker in every preferred datacenter is down: then, after the
  // locality wait (which gives a restarting executor its chance), the task
  // may run anywhere rather than hang forever on a dead datacenter.
  kDcOnly,
  kNodeOnly,      // exactly a preferred node (e.g. data already landed there)
};

struct TaskRequest {
  TaskId id = -1;
  // Tenant this task bills its slot to (weighted fair sharing). The
  // default tenant 0 always exists with weight 1.
  int tenant = 0;
  // Preferred worker nodes, best first. Empty = no preference.
  std::vector<NodeIndex> preferred;
  PlacementPolicy policy = PlacementPolicy::kAnyAfterWait;
  // Invoked (via the simulator, at the current time) when a slot is
  // assigned.
  std::function<void(NodeIndex node, LocalityLevel locality)> on_assigned;
};

struct TaskSchedulerConfig {
  // How long a task with placement preferences waits for a slot in a
  // preferred datacenter before accepting any worker (Spark's
  // spark.locality.wait).
  SimTime locality_wait = Seconds(6);
};

class TaskScheduler {
 public:
  // `metrics` (optional) receives submission/assignment counters, the
  // queue-depth gauge and the queue-wait histogram; must outlive the
  // scheduler.
  TaskScheduler(Simulator& sim, const Topology& topo,
                TaskSchedulerConfig config = {},
                MetricsRegistry* metrics = nullptr);

  // Enqueues a task; it will be assigned a slot as soon as one is free.
  // Slots are offered to the queued tenant with the smallest weighted
  // busy-slot share (busy/weight; ties to the lower tenant id), first-fit
  // in submission order within the tenant. With one tenant this is plain
  // FIFO first-fit.
  void Submit(TaskRequest request);

  // Rewrites the preference list (and placement policy) of a queued task
  // that has not been assigned yet, then re-pumps — the task may land
  // immediately if the new preferences name a free slot. The locality-wait
  // clock is NOT reset: re-preferring is a correction of an earlier
  // choice, not a new submission, so an old task cannot be starved by
  // repeated re-preference. Returns false (a no-op) when no queued task
  // has the id — it was already assigned, or never submitted. Used by the
  // adaptive replanner to steer not-yet-placed receiver work toward the
  // re-chosen aggregator datacenter (docs/ADAPTIVE.md).
  bool UpdatePreferences(TaskId id, std::vector<NodeIndex> preferred,
                         PlacementPolicy policy);

  // Releases the slot a task was holding and assigns queued tasks.
  // A failed task is Submit()ed again by the caller after release.
  // On a crashed node the executor's slot is already gone, but the
  // tenant's busy count is still decremented — every grant must be paired
  // with exactly one release for fair-share accounting to balance.
  void ReleaseSlot(NodeIndex node, int tenant = 0);

  // Sets a tenant's fair-share weight (> 0); tenants default to weight 1.
  void SetTenantWeight(int tenant, double weight);
  // Slots currently held by the tenant's tasks (for tests/benches).
  int tenant_busy(int tenant) const;

  // Marks a worker's executor as crashed: all of its slots (free and busy)
  // disappear and no task is assigned to it until SetNodeUp. The caller is
  // responsible for resubmitting tasks that were running there.
  void SetNodeDown(NodeIndex node);
  // Brings a fresh executor up on the node with its full slot count.
  void SetNodeUp(NodeIndex node);
  bool node_up(NodeIndex node) const;

  int free_slots(NodeIndex node) const;
  int queued_tasks() const { return static_cast<int>(queue_.size()); }
  int busy_slots_in(DcIndex dc) const;

 private:
  struct Pending {
    TaskRequest request;
    SimTime submitted_at = 0;
    // Absolute time at which any-placement becomes allowed; computed once
    // at submission so it compares exactly against the wait_expiry wake-up
    // (recomputing now + wait at check time can differ by one ulp).
    SimTime spill_at = 0;
    EventHandle wait_expiry;
  };

  bool TryAssign(Pending& pending);
  void Pump();
  void EnsureTenant(int tenant);
  // Orders tenant a before b by weighted busy share (cross-multiplied to
  // avoid division), ties to the lower id.
  bool SmallerShare(int a, int b) const;

  NodeIndex BestFreeNodeIn(const std::vector<NodeIndex>& candidates) const;
  NodeIndex LeastLoadedFreeWorker() const;
  // True iff no datacenter hosting a preferred node has a live worker.
  bool NoLiveWorkerNear(const std::vector<NodeIndex>& preferred) const;

  Simulator& sim_;
  const Topology& topo_;
  TaskSchedulerConfig config_;
  std::vector<int> free_;  // free slots per node (0 for non-workers)
  std::vector<bool> up_;   // executor liveness per node
  std::deque<Pending> queue_;
  bool pumping_ = false;

  // Per-tenant fair-share state, indexed by tenant id (grown on demand).
  std::vector<double> weight_;
  std::vector<int> busy_;

  // Metric handles (nullptr without a registry); event-loop-only updates.
  Counter* m_submitted_ = nullptr;
  Counter* m_assigned_ = nullptr;
  Gauge* m_queue_depth_ = nullptr;
  Histogram* m_queue_wait_ = nullptr;
};

}  // namespace gs
