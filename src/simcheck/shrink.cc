// simcheck shrinker: greedy minimization of a failing configuration.
//
// Each pass proposes one-field simplifications in order of how much they
// shrink the scenario (drop faults, quiet the network, halve sizes, flatten
// the DAG, shrink the topology) and keeps a candidate iff it still violates
// at least one invariant the original violated — so shrinking cannot drift
// onto an unrelated failure.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "simcheck/simcheck.h"

namespace gs {
namespace simcheck {
namespace {

std::vector<SimcheckConfig> Candidates(const SimcheckConfig& c) {
  std::vector<SimcheckConfig> out;
  auto propose = [&](auto mutate) {
    SimcheckConfig cand = c;
    mutate(cand);
    out.push_back(cand);
  };
  if (c.crash || c.degrade || c.block_loss) {
    propose([](SimcheckConfig& x) {
      x.crash = false;
      x.degrade = false;
      x.block_loss = false;
    });
  }
  if (c.noisy_network) {
    propose([](SimcheckConfig& x) { x.noisy_network = false; });
  }
  if (c.adaptive != 0) {
    propose([](SimcheckConfig& x) { x.adaptive = 0; });
  }
  if (c.coded != 0) {
    propose([](SimcheckConfig& x) { x.coded = 0; });
  }
  if (c.transport != 0) {
    propose([](SimcheckConfig& x) { x.transport = 0; });
  }
  if (c.num_records > 8) {
    propose([](SimcheckConfig& x) {
      x.num_records = std::max(8, x.num_records / 2);
    });
  }
  if (c.num_keys > 2) {
    propose([](SimcheckConfig& x) { x.num_keys = std::max(2, x.num_keys / 2); });
  }
  if (c.dag_shape != 0) {
    propose([](SimcheckConfig& x) { x.dag_shape = 0; });
  }
  if (c.num_shards > 1) {
    propose([](SimcheckConfig& x) { x.num_shards = x.num_shards / 2; });
  }
  if (c.partitions_per_dc > 1) {
    propose([](SimcheckConfig& x) {
      x.partitions_per_dc = x.partitions_per_dc / 2;
    });
  }
  if (c.aggregator_dc_count > 1) {
    propose([](SimcheckConfig& x) { x.aggregator_dc_count = 1; });
  }
  if (c.threads_high > 2) {
    propose([](SimcheckConfig& x) { x.threads_high = 2; });
  }
  if (c.nodes_per_dc > 1) {
    propose([](SimcheckConfig& x) { x.nodes_per_dc -= 1; });
  }
  if (c.num_dcs > 1) {
    propose([](SimcheckConfig& x) {
      x.num_dcs -= 1;
      // Keep the candidate valid: the redundancy cannot exceed the
      // datacenter count.
      x.coded = std::min(x.coded, x.num_dcs);
    });
  }
  if (c.dedicated_driver) {
    propose([](SimcheckConfig& x) { x.dedicated_driver = false; });
  }
  if (!c.uniform_wan) {
    propose([](SimcheckConfig& x) { x.uniform_wan = true; });
  }
  if (c.wan_rate_mbps != 200 || c.rtt_ms != 100) {
    propose([](SimcheckConfig& x) {
      x.wan_rate_mbps = 200;
      x.rtt_ms = 100;
    });
  }
  return out;
}

bool SharesTarget(const CheckResult& r, const std::set<std::string>& target) {
  for (const Violation& v : r.violations) {
    if (target.count(v.invariant) > 0) return true;
  }
  return false;
}

}  // namespace

ShrinkOutcome Shrink(const SimcheckConfig& failing, int max_runs,
                     CheckFn check) {
  ShrinkOutcome out;
  out.config = failing;
  out.result = check(failing);
  out.runs = 1;
  if (out.result.ok()) return out;  // nothing to shrink

  std::set<std::string> target;
  for (const Violation& v : out.result.violations) {
    target.insert(v.invariant);
  }

  bool improved = true;
  while (improved && out.runs < max_runs) {
    improved = false;
    for (const SimcheckConfig& cand : Candidates(out.config)) {
      if (out.runs >= max_runs) break;
      CheckResult r = check(cand);
      ++out.runs;
      if (!r.ok() && SharesTarget(r, target)) {
        out.config = cand;
        out.result = std::move(r);
        improved = true;
        break;  // restart the pass from the simplest mutation
      }
    }
  }
  return out;
}

}  // namespace simcheck
}  // namespace gs
