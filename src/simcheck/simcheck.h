// simcheck: randomized differential testing and invariant checking.
//
// The paper's claims rest on exact accounting — cross-datacenter shuffle
// traffic is lower-bounded by S - s1 (Eq. 2, Sec. III-B) and Push/Aggregate
// is measured against that bound — so a silent byte-conservation or
// determinism bug anywhere in the simulator corrupts every reproduced
// figure. simcheck draws random topologies, DAG shapes, fault plans and
// thread counts from a seeded RNG, runs each configuration under all three
// schemes and two compute-pool sizes, and checks the invariant catalog
// below. On failure the configuration is shrunk to a minimal reproducer and
// emitted as flat JSON, replayable via `geosim-fuzz --replay=FILE` or
// FromJson() + RunSimcheck().
//
// The invariant catalog (docs/TESTING.md has the full contract):
//
//   cross-scheme-equivalence  all three schemes produce the same multiset
//                             of output records (values canonicalized:
//                             group-by value lists are order-insensitive)
//   oracle-output             the collected records match an in-harness
//                             reference evaluation of the same DAG
//   thread-determinism        records and RunReport JSON are byte-identical
//                             for --threads=1 and --threads=N
//   rerun-determinism         an identical rerun is byte-identical
//   byte-conservation         per WAN link: utilization bucket sums ==
//                             LinkUtilization total == TrafficMeter
//                             pair_bytes; at the netsim layer additionally
//                             meter pair_bytes == sum of per-flow bytes
//   flow-accounting           netsim.flows_started == flows_completed +
//                             flows_cancelled, and active_flows == 0 after
//                             the run (loopback and zero-byte flows count)
//   eq2-lower-bound           measured cross-DC shuffle traffic respects
//                             D >= S - s1 (Eq. 2), and the exact per-shard
//                             refinement D >= S - sum_k max_j b_jk
//   input-placement           Parallelize creates exactly partitions_per_dc
//                             partitions in every datacenter, all of them
//                             on worker nodes
//   metrics-consistency       scheduler queue drained, events_executed <=
//                             events_scheduled, task counters balance
//   quiescence                the event queue is empty and no flow is
//                             still active once a run returns
//   run-failure               no run may throw (GS_CHECK failures inside
//                             the engine surface here)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/record.h"
#include "netsim/topology.h"

namespace gs {
namespace simcheck {

// One randomly drawn configuration. Every field is plain data so the
// config round-trips through flat JSON (ToJson/FromJson) and shrinks
// field-by-field. All randomness inside a run derives from `seed`, so a
// config identifies one deterministic scenario.
struct SimcheckConfig {
  std::uint64_t seed = 1;

  // Topology: num_dcs datacenters, nodes_per_dc workers each, full WAN
  // mesh. With dedicated_driver the first datacenter additionally hosts a
  // non-worker driver node (the six-region layout); without it node 0
  // doubles as the driver, so collect flows exercise the loopback path.
  int num_dcs = 3;
  int nodes_per_dc = 2;
  bool dedicated_driver = false;
  int wan_rate_mbps = 200;  // mean of the per-link base-rate draw
  int rtt_ms = 100;
  bool uniform_wan = true;  // false: per-link rates drawn around the mean

  // Workload: dag_shape selects the transformation chain (see runner.cc),
  // inputs are num_records records over num_keys keys, spread by
  // GeoCluster::Parallelize over partitions_per_dc partitions per DC.
  int dag_shape = 0;  // 0..kNumDagShapes-1
  int num_records = 300;
  int num_keys = 40;
  int partitions_per_dc = 2;
  int num_shards = 4;
  bool map_side_combine = true;
  bool save_action = false;  // ActionKind::kSave instead of kCollect

  // Engine knobs.
  int aggregator_dc_count = 1;
  int threads_high = 4;       // differential partner of --threads=1
  bool noisy_network = true;  // jitter + stalls + stragglers enabled
  // Shuffle transport: TransportKind as an int (0 direct, 1 objstore,
  // 2 fabric) so the config stays flat plain data. All invariants are
  // transport-independent — logical per-job accounting doesn't change with
  // the mechanism — so every check runs unmodified under each backend.
  int transport = 0;
  // Adaptive aggregator placement (0 off, 1 on): replanning moves receiver
  // shards, never records, so every invariant holds unmodified — including
  // thread- and rerun-determinism, which is exactly what this samples.
  int adaptive = 0;
  // Coded shuffle (docs/CODED.md): 0 = off, r >= 1 = enabled with that
  // redundancy. Applied to the Spark run only (the engine rejects the
  // combination with other schemes); the Eq. 2 check switches to the
  // replica-aware bound derived from the tracker's retained primary
  // placement. Drawn last so older fuzz seeds replay unchanged.
  int coded = 0;

  // Fault plan (times are fractions of the fault-free Spark JCT, resolved
  // by a probe run so the plan lands mid-job at any scale).
  bool crash = false;
  int crash_victim = 1;        // node index; generator never picks node 0
  double crash_frac = 0.4;     // crash time / fault-free JCT
  double restart_after = 0;    // seconds; 0 = stays dead
  bool degrade = false;
  double degrade_factor = 0.3;
  double degrade_frac = 0.2;
  double degrade_duration = 5.0;  // always > 0: outages must end
  bool block_loss = false;
  double block_loss_frac = 0.5;
};

inline constexpr int kNumDagShapes = 6;

// Invariant names as they appear in Violation::invariant.
inline constexpr const char* kInvCrossScheme = "cross-scheme-equivalence";
inline constexpr const char* kInvOracle = "oracle-output";
inline constexpr const char* kInvThreads = "thread-determinism";
inline constexpr const char* kInvRerun = "rerun-determinism";
inline constexpr const char* kInvConservation = "byte-conservation";
inline constexpr const char* kInvFlowAccounting = "flow-accounting";
inline constexpr const char* kInvEq2 = "eq2-lower-bound";
inline constexpr const char* kInvPlacement = "input-placement";
inline constexpr const char* kInvMetrics = "metrics-consistency";
inline constexpr const char* kInvQuiescence = "quiescence";
inline constexpr const char* kInvRunFailure = "run-failure";

struct Violation {
  std::string invariant;  // one of the kInv* names
  std::string detail;     // human-readable evidence
};

struct CheckResult {
  std::vector<Violation> violations;
  int engine_runs = 0;   // engine-level cluster runs executed
  int netsim_flows = 0;  // flows started by the netsim-level script
  bool ok() const { return violations.empty(); }
};

// Draws a configuration from the seed. GenerateConfig(s) is a pure
// function of s; geosim-fuzz iterates it over a contiguous seed range.
SimcheckConfig GenerateConfig(std::uint64_t seed);

// Flat-JSON round trip for reproducers. FromJson accepts exactly the
// object ToJson emits (unknown keys are an error, missing keys keep their
// defaults); on failure returns false and sets *error.
std::string ToJson(const SimcheckConfig& cfg);
bool FromJson(const std::string& json, SimcheckConfig* out,
              std::string* error);

// Deterministic builders shared by the runner and the tests.
Topology BuildTopology(const SimcheckConfig& cfg);
std::vector<Record> BuildRecords(const SimcheckConfig& cfg);

// Runs the netsim-level script (random flows/cancels/degradations against
// a bare Network) and checks conservation, flow accounting and quiescence.
CheckResult RunNetsimCheck(const SimcheckConfig& cfg);

// Runs the engine-level differential check: all three schemes at
// --threads=1 and --threads=threads_high, plus a rerun, under the config's
// fault plan; checks the full invariant catalog.
CheckResult RunEngineCheck(const SimcheckConfig& cfg);

// Both levels; the union of their violations.
CheckResult RunSimcheck(const SimcheckConfig& cfg);

// Greedily simplifies a failing config while it keeps violating at least
// one invariant the original violated. Runs `check` (defaults to
// RunSimcheck; pass RunNetsimCheck/RunEngineCheck to shrink against one
// level) up to max_runs times; returns the smallest still-failing config.
struct ShrinkOutcome {
  SimcheckConfig config;
  CheckResult result;  // of the returned config
  int runs = 0;        // check invocations spent
};
using CheckFn = CheckResult (*)(const SimcheckConfig&);
ShrinkOutcome Shrink(const SimcheckConfig& failing, int max_runs = 48,
                     CheckFn check = &RunSimcheck);

}  // namespace simcheck
}  // namespace gs
