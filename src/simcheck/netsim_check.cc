// simcheck netsim-level check: a random flow script against a bare Network
// — loopback, zero-byte, cancelled and degraded flows included — verifying
// that the TrafficMeter equals the sum of per-flow bytes, that the
// utilization timeseries conserves the meter per WAN link, that the flow
// counters balance, and that the simulator quiesces.
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "netsim/network.h"
#include "simcheck/simcheck.h"
#include "simcore/simulator.h"

namespace gs {
namespace simcheck {
namespace {

void Add(CheckResult* r, const char* invariant, std::string detail) {
  r->violations.push_back(Violation{invariant, std::move(detail)});
}

}  // namespace

CheckResult RunNetsimCheck(const SimcheckConfig& cfg) {
  CheckResult result;
  if (cfg.num_dcs < 1 || cfg.nodes_per_dc < 1 || cfg.wan_rate_mbps < 1 ||
      cfg.rtt_ms < 1) {
    Add(&result, kInvRunFailure, "invalid config for the netsim check");
    return result;
  }
  try {
    Topology topo = BuildTopology(cfg);
    Simulator sim;
    MetricsRegistry registry;
    NetworkConfig ncfg;
    if (!cfg.noisy_network) {
      ncfg.jitter_interval = 0;
      ncfg.wan_stall_prob = 0;
      ncfg.wan_flow_efficiency_min = 1.0;
    } else {
      ncfg.jitter_interval = Seconds(2);
    }
    Network net(sim, topo, ncfg, Rng(cfg.seed).Split("netfuzz-jitter"),
                &registry);
    net.EnableUtilization(Seconds(0.5));

    Rng rng = Rng(cfg.seed).Split("netfuzz-ops");
    const int nodes = topo.num_nodes();
    const int num_flows = 8 + static_cast<int>(rng.UniformInt(0, 32));

    // Expected meter state, charged exactly like StartFlow charges it.
    std::vector<Bytes> expected(
        static_cast<std::size_t>(cfg.num_dcs) * cfg.num_dcs, 0);
    int start_calls = 0;
    int completions = 0;
    std::vector<FlowId> ids;
    ids.reserve(static_cast<std::size_t>(num_flows));

    for (int i = 0; i < num_flows; ++i) {
      const SimTime at = rng.Uniform(0.0, 20.0);
      const NodeIndex src =
          static_cast<NodeIndex>(rng.UniformInt(0, nodes - 1));
      const NodeIndex dst =
          rng.Bernoulli(0.3)
              ? src  // loopback
              : static_cast<NodeIndex>(rng.UniformInt(0, nodes - 1));
      Bytes bytes = 0;
      if (!rng.Bernoulli(0.1)) {
        bytes = rng.Bernoulli(0.5) ? rng.UniformInt(1, 10'000)
                                   : rng.UniformInt(100'000, 5'000'000);
      }
      const auto kind = static_cast<FlowKind>(rng.UniformInt(0, 4));
      const bool cancel = rng.Bernoulli(0.25);
      const SimTime cancel_delay = rng.Uniform(0.0, 5.0);
      sim.ScheduleAt(at, [&, src, dst, bytes, kind, cancel, cancel_delay] {
        const FlowId id =
            net.StartFlow(src, dst, bytes, kind, [&] { ++completions; });
        ++start_calls;
        expected[static_cast<std::size_t>(topo.dc_of(src)) * cfg.num_dcs +
                 topo.dc_of(dst)] += bytes;
        ids.push_back(id);
        if (cancel) {
          // The flow may complete first — CancelFlow on a finished id must
          // be a safe no-op either way.
          sim.Schedule(cancel_delay, [&, id] { net.CancelFlow(id); });
        }
      });
    }

    if (cfg.degrade && cfg.num_dcs >= 2) {
      const SimTime at = rng.Uniform(1.0, 10.0);
      const double factor = cfg.degrade_factor;
      const SimTime duration =
          cfg.degrade_duration > 0 ? cfg.degrade_duration : Seconds(3);
      sim.ScheduleAt(at, [&, factor] {
        net.SetWanDegradation(0, 1, factor);
        net.SetWanDegradation(1, 0, factor);
      });
      sim.ScheduleAt(at + duration, [&] {
        net.SetWanDegradation(0, 1, 1.0);
        net.SetWanDegradation(1, 0, 1.0);
      });
    }

    sim.Run();
    result.netsim_flows = start_calls;

    // Per-flow byte conservation: the meter must equal the sum of bytes of
    // every started flow, pair by pair (loopback lands on the diagonal).
    for (DcIndex s = 0; s < cfg.num_dcs; ++s) {
      for (DcIndex d = 0; d < cfg.num_dcs; ++d) {
        const Bytes want =
            expected[static_cast<std::size_t>(s) * cfg.num_dcs + d];
        const Bytes got = net.meter().pair_bytes(s, d);
        if (want != got) {
          std::ostringstream os;
          os << "meter pair " << s << "->" << d << ": sum of flow bytes "
             << want << "B but metered " << got << "B";
          Add(&result, kInvConservation, os.str());
        }
      }
    }
    const LinkUtilization* util = net.utilization();
    for (int l = 0; l < topo.num_wan_links(); ++l) {
      const WanLinkSpec& spec = topo.wan_link(l);
      const Bytes metered = net.meter().pair_bytes(spec.src, spec.dst);
      Bytes summed = 0;
      for (Bytes b : util->buckets(l)) summed += b;
      if (summed != metered || util->total(l) != metered) {
        std::ostringstream os;
        os << "link " << spec.src << "->" << spec.dst << ": meter "
           << metered << "B, bucket sum " << summed << "B, total "
           << util->total(l) << "B";
        Add(&result, kInvConservation, os.str());
      }
    }

    const std::int64_t started =
        registry.counter("netsim.flows_started").value();
    const std::int64_t completed =
        registry.counter("netsim.flows_completed").value();
    const std::int64_t cancelled =
        registry.counter("netsim.flows_cancelled").value();
    if (started != start_calls) {
      std::ostringstream os;
      os << "flows_started " << started << " but StartFlow was called "
         << start_calls << " times";
      Add(&result, kInvFlowAccounting, os.str());
    }
    if (started != completed + cancelled) {
      std::ostringstream os;
      os << "flows_started " << started << " != flows_completed "
         << completed << " + flows_cancelled " << cancelled;
      Add(&result, kInvFlowAccounting, os.str());
    }
    if (completions != completed) {
      std::ostringstream os;
      os << completions << " completion callbacks fired but "
         << "flows_completed is " << completed;
      Add(&result, kInvFlowAccounting, os.str());
    }
    if (registry.gauge("netsim.active_flows").value() != 0) {
      Add(&result, kInvFlowAccounting,
          "active_flows gauge nonzero after the run");
    }

    if (sim.pending_events() != 0 || net.active_flows() != 0) {
      std::ostringstream os;
      os << sim.pending_events() << " pending events, " << net.active_flows()
         << " active flows after Run()";
      Add(&result, kInvQuiescence, os.str());
    }

    // API edges: unknown/finished ids are inert.
    if (net.flow_rate(static_cast<FlowId>(1'000'000'000)) != 0) {
      Add(&result, kInvFlowAccounting, "flow_rate of an unknown id nonzero");
    }
    for (FlowId id : ids) net.CancelFlow(id);  // must all be safe no-ops
    if (registry.counter("netsim.flows_cancelled").value() != cancelled) {
      Add(&result, kInvFlowAccounting,
          "CancelFlow on finished ids bumped flows_cancelled");
    }
  } catch (const std::exception& e) {
    Add(&result, kInvRunFailure, std::string("netsim check threw: ") +
                                     e.what());
  }
  return result;
}

}  // namespace simcheck
}  // namespace gs
