// simcheck configuration: seeded generation, flat-JSON round trip, and the
// deterministic topology/record builders shared by the runner and tests.
#include "simcheck/simcheck.h"

#include <cctype>
#include <cstdlib>
#include <string>

#include "common/check.h"
#include "common/json.h"
#include "common/rng.h"
#include "data/record.h"
#include "workloads/input_gen.h"

namespace gs {
namespace simcheck {

SimcheckConfig GenerateConfig(std::uint64_t seed) {
  SimcheckConfig cfg;
  cfg.seed = seed;
  Rng rng = Rng(seed).Split("simcheck-gen");

  cfg.num_dcs = static_cast<int>(rng.UniformInt(2, 4));
  cfg.nodes_per_dc = static_cast<int>(rng.UniformInt(1, 3));
  cfg.dedicated_driver = rng.Bernoulli(0.5);
  const int wan_choices[] = {80, 150, 200, 300};
  cfg.wan_rate_mbps = wan_choices[rng.UniformInt(0, 3)];
  cfg.rtt_ms = static_cast<int>(rng.UniformInt(40, 250));
  cfg.uniform_wan = rng.Bernoulli(0.5);

  cfg.dag_shape = static_cast<int>(rng.UniformInt(0, kNumDagShapes - 1));
  cfg.num_records = static_cast<int>(rng.UniformInt(60, 500));
  cfg.num_keys = static_cast<int>(rng.UniformInt(3, 60));
  // Deliberately allowed to exceed the workers of a datacenter so the
  // round-robin edge cases of Parallelize stay covered.
  cfg.partitions_per_dc =
      static_cast<int>(rng.UniformInt(1, cfg.nodes_per_dc + 2));
  cfg.num_shards = static_cast<int>(rng.UniformInt(1, 8));
  cfg.map_side_combine = rng.Bernoulli(0.7);
  cfg.save_action = rng.Bernoulli(0.25);

  cfg.aggregator_dc_count =
      rng.Bernoulli(0.7) ? 1 : std::min(2, cfg.num_dcs);
  cfg.threads_high = static_cast<int>(rng.UniformInt(2, 4));
  cfg.noisy_network = rng.Bernoulli(0.6);

  const int workers = cfg.num_dcs * cfg.nodes_per_dc;
  cfg.crash = workers >= 3 && rng.Bernoulli(0.3);
  cfg.crash_victim = static_cast<int>(rng.UniformInt(1, workers - 1));
  cfg.crash_frac = rng.Uniform(0.15, 0.75);
  cfg.restart_after = rng.Bernoulli(0.5) ? rng.Uniform(1.0, 8.0) : 0.0;
  cfg.degrade = cfg.num_dcs >= 2 && rng.Bernoulli(0.3);
  cfg.degrade_factor = rng.Bernoulli(0.25) ? 0.0 : rng.Uniform(0.2, 0.8);
  cfg.degrade_frac = rng.Uniform(0.1, 0.6);
  cfg.degrade_duration = rng.Uniform(2.0, 10.0);
  cfg.block_loss = rng.Bernoulli(0.2);
  cfg.block_loss_frac = rng.Uniform(0.2, 0.7);
  // Drawn last so older seeds keep generating the exact configs they used
  // to (plus a transport draw that leaves them on kDirect half the time).
  cfg.transport = rng.Bernoulli(0.5)
                      ? 0
                      : static_cast<int>(rng.UniformInt(1, 2));
  // Adaptive placement, appended after transport for the same reason.
  cfg.adaptive = rng.Bernoulli(0.35) ? 1 : 0;
  // Coded shuffle, appended after adaptive for the same reason. Only
  // meaningful with at least two datacenters; r ranges over [2, num_dcs].
  const bool coded_on = cfg.num_dcs >= 2 && rng.Bernoulli(0.3);
  cfg.coded =
      coded_on ? static_cast<int>(rng.UniformInt(2, cfg.num_dcs)) : 0;
  return cfg;
}

std::string ToJson(const SimcheckConfig& c) {
  JsonWriter w;
  w.BeginObject();
  w.Key("seed").Value(c.seed);
  w.Key("num_dcs").Value(c.num_dcs);
  w.Key("nodes_per_dc").Value(c.nodes_per_dc);
  w.Key("dedicated_driver").Value(c.dedicated_driver);
  w.Key("wan_rate_mbps").Value(c.wan_rate_mbps);
  w.Key("rtt_ms").Value(c.rtt_ms);
  w.Key("uniform_wan").Value(c.uniform_wan);
  w.Key("dag_shape").Value(c.dag_shape);
  w.Key("num_records").Value(c.num_records);
  w.Key("num_keys").Value(c.num_keys);
  w.Key("partitions_per_dc").Value(c.partitions_per_dc);
  w.Key("num_shards").Value(c.num_shards);
  w.Key("map_side_combine").Value(c.map_side_combine);
  w.Key("save_action").Value(c.save_action);
  w.Key("aggregator_dc_count").Value(c.aggregator_dc_count);
  w.Key("threads_high").Value(c.threads_high);
  w.Key("noisy_network").Value(c.noisy_network);
  w.Key("crash").Value(c.crash);
  w.Key("crash_victim").Value(c.crash_victim);
  w.Key("crash_frac").Value(c.crash_frac);
  w.Key("restart_after").Value(c.restart_after);
  w.Key("degrade").Value(c.degrade);
  w.Key("degrade_factor").Value(c.degrade_factor);
  w.Key("degrade_frac").Value(c.degrade_frac);
  w.Key("degrade_duration").Value(c.degrade_duration);
  w.Key("block_loss").Value(c.block_loss);
  w.Key("block_loss_frac").Value(c.block_loss_frac);
  w.Key("transport").Value(c.transport);
  w.Key("adaptive").Value(c.adaptive);
  w.Key("coded").Value(c.coded);
  w.EndObject();
  return w.str();
}

namespace {

// Minimal parser for the flat object ToJson emits: string keys mapping to
// number or boolean tokens, no nesting, no string values, no escapes. The
// repo deliberately has no general JSON parser; reproducers only need this.
struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  void SkipWs() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool ParseKey(std::string* out) {
    SkipWs();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') return false;  // keys never need escapes
      out->push_back(s[i++]);
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  }
  // A number or true/false, captured as the raw token.
  bool ParseScalar(std::string* out) {
    SkipWs();
    out->clear();
    while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                            s[i] == '-' || s[i] == '+' || s[i] == '.')) {
      out->push_back(s[i++]);
    }
    return !out->empty();
  }
};

bool TokenToBool(const std::string& tok, bool* out) {
  if (tok == "true") { *out = true; return true; }
  if (tok == "false") { *out = false; return true; }
  return false;
}

bool TokenToInt(const std::string& tok, int* out) {
  char* end = nullptr;
  long v = std::strtol(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

bool TokenToU64(const std::string& tok, std::uint64_t* out) {
  if (tok.empty() || tok[0] == '-') return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool TokenToDouble(const std::string& tok, double* out) {
  char* end = nullptr;
  double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool AssignField(SimcheckConfig* c, const std::string& key,
                 const std::string& tok) {
  if (key == "seed") return TokenToU64(tok, &c->seed);
  if (key == "num_dcs") return TokenToInt(tok, &c->num_dcs);
  if (key == "nodes_per_dc") return TokenToInt(tok, &c->nodes_per_dc);
  if (key == "dedicated_driver") return TokenToBool(tok, &c->dedicated_driver);
  if (key == "wan_rate_mbps") return TokenToInt(tok, &c->wan_rate_mbps);
  if (key == "rtt_ms") return TokenToInt(tok, &c->rtt_ms);
  if (key == "uniform_wan") return TokenToBool(tok, &c->uniform_wan);
  if (key == "dag_shape") return TokenToInt(tok, &c->dag_shape);
  if (key == "num_records") return TokenToInt(tok, &c->num_records);
  if (key == "num_keys") return TokenToInt(tok, &c->num_keys);
  if (key == "partitions_per_dc") {
    return TokenToInt(tok, &c->partitions_per_dc);
  }
  if (key == "num_shards") return TokenToInt(tok, &c->num_shards);
  if (key == "map_side_combine") return TokenToBool(tok, &c->map_side_combine);
  if (key == "save_action") return TokenToBool(tok, &c->save_action);
  if (key == "aggregator_dc_count") {
    return TokenToInt(tok, &c->aggregator_dc_count);
  }
  if (key == "threads_high") return TokenToInt(tok, &c->threads_high);
  if (key == "noisy_network") return TokenToBool(tok, &c->noisy_network);
  if (key == "crash") return TokenToBool(tok, &c->crash);
  if (key == "crash_victim") return TokenToInt(tok, &c->crash_victim);
  if (key == "crash_frac") return TokenToDouble(tok, &c->crash_frac);
  if (key == "restart_after") return TokenToDouble(tok, &c->restart_after);
  if (key == "degrade") return TokenToBool(tok, &c->degrade);
  if (key == "degrade_factor") return TokenToDouble(tok, &c->degrade_factor);
  if (key == "degrade_frac") return TokenToDouble(tok, &c->degrade_frac);
  if (key == "degrade_duration") {
    return TokenToDouble(tok, &c->degrade_duration);
  }
  if (key == "block_loss") return TokenToBool(tok, &c->block_loss);
  if (key == "block_loss_frac") return TokenToDouble(tok, &c->block_loss_frac);
  if (key == "transport") return TokenToInt(tok, &c->transport);
  if (key == "adaptive") return TokenToInt(tok, &c->adaptive);
  if (key == "coded") return TokenToInt(tok, &c->coded);
  return false;  // unknown key
}

}  // namespace

bool FromJson(const std::string& json, SimcheckConfig* out,
              std::string* error) {
  SimcheckConfig cfg;
  Cursor cur{json};
  if (!cur.Eat('{')) {
    if (error != nullptr) *error = "expected '{'";
    return false;
  }
  cur.SkipWs();
  if (!cur.Eat('}')) {
    while (true) {
      std::string key, tok;
      if (!cur.ParseKey(&key)) {
        if (error != nullptr) *error = "expected a quoted key";
        return false;
      }
      if (!cur.Eat(':')) {
        if (error != nullptr) *error = "expected ':' after \"" + key + "\"";
        return false;
      }
      if (!cur.ParseScalar(&tok)) {
        if (error != nullptr) *error = "expected a value for \"" + key + "\"";
        return false;
      }
      if (!AssignField(&cfg, key, tok)) {
        if (error != nullptr) {
          *error = "unknown key or bad value: \"" + key + "\": " + tok;
        }
        return false;
      }
      if (cur.Eat(',')) continue;
      if (cur.Eat('}')) break;
      if (error != nullptr) *error = "expected ',' or '}'";
      return false;
    }
  }
  cur.SkipWs();
  if (cur.i != json.size()) {
    if (error != nullptr) *error = "trailing characters after '}'";
    return false;
  }
  *out = cfg;
  return true;
}

Topology BuildTopology(const SimcheckConfig& cfg) {
  GS_CHECK(cfg.num_dcs >= 1 && cfg.nodes_per_dc >= 1);
  GS_CHECK(cfg.wan_rate_mbps > 0 && cfg.rtt_ms > 0);
  Topology topo;
  for (int d = 0; d < cfg.num_dcs; ++d) {
    topo.AddDatacenter("dc" + std::to_string(d));
  }
  for (int d = 0; d < cfg.num_dcs; ++d) {
    for (int i = 0; i < cfg.nodes_per_dc; ++i) {
      NodeSpec spec;
      spec.name = "w" + std::to_string(d) + "-" + std::to_string(i);
      spec.dc = d;
      spec.nic_rate = Mbps(400);
      topo.AddNode(spec);
    }
  }
  if (cfg.dedicated_driver) {
    NodeSpec driver;
    driver.name = "driver";
    driver.dc = 0;
    driver.nic_rate = Mbps(400);
    driver.worker = false;
    topo.AddNode(driver);
  }
  Rng rng = Rng(cfg.seed).Split("simcheck-topo");
  const Rate mean = Mbps(cfg.wan_rate_mbps);
  for (DcIndex s = 0; s < cfg.num_dcs; ++s) {
    for (DcIndex d = 0; d < cfg.num_dcs; ++d) {
      if (s == d) continue;
      // The RNG draw happens even for uniform meshes so flipping
      // uniform_wan during shrinking does not reshuffle later draws.
      const double jitter = rng.Uniform(0.4, 1.4);
      const Rate base = cfg.uniform_wan ? mean : mean * jitter;
      WanLinkSpec link;
      link.src = s;
      link.dst = d;
      link.base_rate = base;
      link.min_rate = 0.5 * base;
      link.max_rate = 1.3 * base;
      link.rtt = Millis(cfg.rtt_ms);
      topo.AddWanLink(link);
    }
  }
  return topo;
}

std::vector<Record> BuildRecords(const SimcheckConfig& cfg) {
  GS_CHECK(cfg.num_records >= 1 && cfg.num_keys >= 1);
  Rng rng = Rng(cfg.seed).Split("simcheck-records");
  if (cfg.dag_shape == 5) {
    // Sort shape: 10-char hex keys matching UniformBoundaries.
    return MakeKeyValueRecords(static_cast<std::size_t>(cfg.num_records), 16,
                               rng, kHexAlphabet, nullptr);
  }
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(cfg.num_records));
  for (int i = 0; i < cfg.num_records; ++i) {
    Record r;
    r.key = "k" + std::to_string(rng.UniformInt(0, cfg.num_keys - 1));
    if (cfg.dag_shape == 3) {
      r.value = "v" + std::to_string(rng.UniformInt(0, 4));
    } else {
      r.value = rng.UniformInt(1, 9);
    }
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace simcheck
}  // namespace gs
