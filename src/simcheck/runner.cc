// simcheck engine-level runner: executes one configuration under all three
// schemes and two compute-pool sizes, plus a bit-identical rerun, and
// checks the invariant catalog (see simcheck.h and docs/TESTING.md).
#include <algorithm>
#include <exception>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/check.h"
#include "data/combiner.h"
#include "data/record.h"
#include "engine/cluster.h"
#include "engine/dataset.h"
#include "simcheck/simcheck.h"
#include "workloads/input_gen.h"

namespace gs {
namespace simcheck {
namespace {

// Everything one engine run exposes to the invariant checks, captured
// while the cluster is still alive.
struct SchemeRun {
  bool failed = false;
  std::string error;
  std::vector<Record> records;
  std::string report_json;
  JobMetrics job;
  std::map<std::string, std::int64_t> counters;  // metric name -> value
  std::vector<std::string> conservation;         // per-link mismatches
  std::vector<std::string> placement;            // Parallelize contract
  std::size_t pending_events = 0;
  int active_flows = 0;
  bool faulty = false;  // the run executed under a non-empty fault plan
  // Spark-mode Eq. 2 observations (tracker reflects mapper placement; under
  // coded shuffle the matrix is rebuilt from the retained primary nodes,
  // since the final tracker state reflects the coded exchange).
  Bytes S = 0;
  Bytes s1 = 0;
  Bytes exact_bound = 0;  // S - sum_k max_j b_jk over the b matrix
  Bytes coded_bound = 0;  // replica-aware refinement (docs/CODED.md)
  Bytes cross = 0;        // cross-DC fetch + push + coded-multicast bytes
};

Dataset ApplyDag(const SimcheckConfig& cfg, Dataset src) {
  const int shards = cfg.num_shards;
  switch (cfg.dag_shape) {
    case 0:
      return src.ReduceByKey(SumInt64(), shards);
    case 1:
      return src
          .Map("rekey",
               [](const Record& r) {
                 return Record{r.key + (r.key.size() % 2 ? "-a" : "-b"),
                               r.value};
               })
          .ReduceByKey(SumInt64(), shards);
    case 2:
      return src
          .FlatMap("dup",
                   [](const Record& r) {
                     return std::vector<Record>{
                         r, Record{r.key + "x", std::int64_t{1}}};
                   })
          .ReduceByKey(SumInt64(), shards)
          .Map("inc",
               [](const Record& r) {
                 return Record{r.key, std::get<std::int64_t>(r.value) + 1};
               })
          .ReduceByKey(SumInt64(), std::max(1, shards / 2));
    case 3:
      return src.GroupByKey(shards);
    case 4: {
      Dataset kept = src.Filter("drop-third", [](const Record& r) {
        return (r.key.size() +
                static_cast<std::size_t>(
                    static_cast<unsigned char>(r.key.back()))) %
                   3 !=
               0;
      });
      Dataset renamed = src.Map("rename", [](const Record& r) {
        return Record{"u-" + r.key, r.value};
      });
      return kept.Union(renamed).ReduceByKey(SumInt64(), shards);
    }
    case 5:
      return src.SortByKey(UniformBoundaries(shards, kHexAlphabet));
    default:
      GS_CHECK_MSG(false, "bad dag_shape " << cfg.dag_shape);
      return src;
  }
}

// Reference evaluation of the same DAG over the raw input records. Order
// is irrelevant: results are compared as canonical multisets.
std::vector<Record> OracleRecords(const SimcheckConfig& cfg,
                                  const std::vector<Record>& input) {
  auto reduce_sum = [](const std::vector<Record>& recs) {
    std::map<std::string, std::int64_t> sums;
    for (const Record& r : recs) sums[r.key] += std::get<std::int64_t>(r.value);
    std::vector<Record> out;
    out.reserve(sums.size());
    for (const auto& [k, v] : sums) out.push_back({k, v});
    return out;
  };
  switch (cfg.dag_shape) {
    case 0:
      return reduce_sum(input);
    case 1: {
      std::vector<Record> mapped;
      mapped.reserve(input.size());
      for (const Record& r : input) {
        mapped.push_back(
            {r.key + (r.key.size() % 2 ? "-a" : "-b"), r.value});
      }
      return reduce_sum(mapped);
    }
    case 2: {
      std::vector<Record> flat;
      flat.reserve(2 * input.size());
      for (const Record& r : input) {
        flat.push_back(r);
        flat.push_back({r.key + "x", std::int64_t{1}});
      }
      std::vector<Record> first = reduce_sum(flat);
      for (Record& r : first) {
        r.value = std::get<std::int64_t>(r.value) + 1;
      }
      return reduce_sum(first);
    }
    case 3: {
      std::map<std::string, std::vector<std::string>> groups;
      for (const Record& r : input) {
        groups[r.key].push_back(std::get<std::string>(r.value));
      }
      std::vector<Record> out;
      out.reserve(groups.size());
      for (auto& [k, vs] : groups) out.push_back({k, std::move(vs)});
      return out;
    }
    case 4: {
      std::vector<Record> merged;
      for (const Record& r : input) {
        if ((r.key.size() +
             static_cast<std::size_t>(
                 static_cast<unsigned char>(r.key.back()))) %
                3 !=
            0) {
          merged.push_back(r);
        }
      }
      for (const Record& r : input) merged.push_back({"u-" + r.key, r.value});
      return reduce_sum(merged);
    }
    case 5:
      return input;  // sorting is a permutation
    default:
      GS_CHECK_MSG(false, "bad dag_shape " << cfg.dag_shape);
      return {};
  }
}

// Order-insensitive rendering of a record: group-by value lists compare as
// sets (their order is an execution detail, not a semantic output).
std::string CanonicalLine(const Record& r) {
  Value v = r.value;
  if (auto* vec = std::get_if<std::vector<std::string>>(&v)) {
    std::sort(vec->begin(), vec->end());
  }
  return r.key + "\t" + ToString(v);
}

std::vector<std::string> CanonicalMultiset(const std::vector<Record>& recs) {
  std::vector<std::string> lines;
  lines.reserve(recs.size());
  for (const Record& r : recs) lines.push_back(CanonicalLine(r));
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string FirstDifference(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  std::ostringstream os;
  os << a.size() << " vs " << b.size() << " records";
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      os << "; first diff at #" << i << ": \"" << a[i] << "\" vs \"" << b[i]
         << "\"";
      return os.str();
    }
  }
  if (a.size() != b.size()) {
    const auto& longer = a.size() > b.size() ? a : b;
    os << "; extra: \"" << longer[n] << "\"";
  }
  return os.str();
}

SchemeRun RunOne(const SimcheckConfig& cfg, Scheme scheme, int threads,
                 const FaultPlan& plan) {
  SchemeRun out;
  out.faulty = !plan.empty();
  try {
    Topology topo = BuildTopology(cfg);
    RunConfig rc;
    rc.scheme = scheme;
    rc.seed = cfg.seed;
    rc.scale = 1;
    rc.cost = CostModel{};
    rc.compute_threads = threads;
    rc.aggregator_dc_count = cfg.aggregator_dc_count;
    rc.disable_map_side_combine = !cfg.map_side_combine;
    rc.transport.kind = static_cast<TransportKind>(cfg.transport);
    rc.adaptive.enabled = cfg.adaptive != 0;
    // Coded shuffle replaces the baseline fetch path, so the engine only
    // accepts it under kSpark; the other schemes run uncoded and the
    // cross-scheme equivalence check still applies unmodified.
    if (scheme == Scheme::kSpark && cfg.coded != 0) {
      rc.coded.enabled = true;
      rc.coded.redundancy_r = cfg.coded;
    }
    rc.fault.plan = plan;
    if (!cfg.noisy_network) {
      rc.net.jitter_interval = 0;
      rc.net.wan_stall_prob = 0;
      rc.net.wan_flow_efficiency_min = 1.0;
      rc.cost.straggler_sigma = 0;
      rc.cost.straggler_prob = 0;
    }
    GeoCluster cluster(std::move(topo), rc);
    Dataset input = cluster.Parallelize("simcheck-input", BuildRecords(cfg),
                                        cfg.partitions_per_dc);

    // Structural contract of Parallelize: partitions_per_dc partitions in
    // every datacenter, each placed on a worker node.
    {
      const Topology& ct = cluster.topology();
      auto src = std::dynamic_pointer_cast<SourceRdd>(input.rdd());
      std::vector<int> per_dc(
          static_cast<std::size_t>(ct.num_datacenters()), 0);
      for (int p = 0; p < input.num_partitions(); ++p) {
        const NodeIndex n = src->partition(p).node;
        if (!ct.node(n).worker) {
          std::ostringstream os;
          os << "partition " << p << " placed on non-worker node " << n;
          out.placement.push_back(os.str());
          continue;
        }
        ++per_dc[static_cast<std::size_t>(ct.dc_of(n))];
      }
      for (DcIndex dc = 0; dc < ct.num_datacenters(); ++dc) {
        if (per_dc[static_cast<std::size_t>(dc)] != cfg.partitions_per_dc) {
          std::ostringstream os;
          os << "datacenter " << dc << " holds "
             << per_dc[static_cast<std::size_t>(dc)] << " partitions, want "
             << cfg.partitions_per_dc;
          out.placement.push_back(os.str());
        }
      }
    }

    RunResult run = ApplyDag(cfg, input)
                        .Run(cfg.save_action ? ActionKind::kSave
                                             : ActionKind::kCollect);

    out.records = std::move(run.records);
    out.report_json = run.report.ToJson();
    out.job = run.metrics;
    for (const MetricSnapshot& m : run.report.metrics) {
      out.counters[m.name] = m.value;
    }
    out.cross = run.metrics.cross_dc_fetch_bytes +
                run.metrics.cross_dc_push_bytes +
                run.metrics.coded_multicast_bytes;

    // Conservation: per directed WAN link, utilization bucket sums must
    // equal the meter's pair bytes bit for bit.
    const Topology& t = cluster.topology();
    const Network& net = cluster.network();
    const LinkUtilization* util = net.utilization();
    if (util != nullptr) {
      for (int l = 0; l < t.num_wan_links(); ++l) {
        const WanLinkSpec& spec = t.wan_link(l);
        const Bytes metered = net.meter().pair_bytes(spec.src, spec.dst);
        Bytes summed = 0;
        for (Bytes b : util->buckets(l)) summed += b;
        if (summed != metered || util->total(l) != metered) {
          std::ostringstream os;
          os << "link " << spec.src << "->" << spec.dst << ": meter "
             << metered << "B, bucket sum " << summed << "B, total "
             << util->total(l) << "B";
          out.conservation.push_back(os.str());
        }
      }
    }

    if (scheme == Scheme::kSpark && cluster.tracker().HasShuffle(0)) {
      const MapOutputTracker& tracker = cluster.tracker();
      out.S = tracker.TotalBytes(0);
      const int maps = tracker.num_map_partitions(0);
      const int shards = tracker.num_shards(0);
      const int dcs = t.num_datacenters();
      const bool coded = rc.coded.enabled;
      if (!coded) {
        std::vector<Bytes> per_dc = tracker.BytesPerDc(0, t);
        out.s1 = *std::max_element(per_dc.begin(), per_dc.end());
        // Exact refinement of Eq. 2: each shard k must move everything not
        // already in the datacenter holding most of it, so
        // D >= sum_k (s_k - max_j b_jk) regardless of shard imbalance.
        std::vector<Bytes> b(static_cast<std::size_t>(dcs) * shards, 0);
        for (int m = 0; m < maps; ++m) {
          for (int k = 0; k < shards; ++k) {
            const MapOutputLocation& loc = tracker.Output(0, m, k);
            if (loc.node == kNoNode) continue;
            b[static_cast<std::size_t>(t.dc_of(loc.node)) * shards + k] +=
                loc.bytes;
          }
        }
        for (int k = 0; k < shards; ++k) {
          Bytes col = 0, best = 0;
          for (DcIndex j = 0; j < dcs; ++j) {
            const Bytes v = b[static_cast<std::size_t>(j) * shards + k];
            col += v;
            best = std::max(best, v);
          }
          out.exact_bound += col - best;
        }
      } else {
        // The coded exchange relocates shards, so the tracker's final
        // locations describe the consolidated layout, not the mapper
        // placement. Rebuild the matrix from the retained primary nodes
        // and compute the replica-aware bound: with ring replication of
        // redundancy r a segment is free for shard k in every datacenter
        // of its ring, so D >= sum_k (s_k - max_j b~_jk) over the
        // replica-inclusive matrix b~ (docs/CODED.md).
        const int r = std::min(cfg.coded, dcs);
        std::vector<Bytes> prim(static_cast<std::size_t>(dcs) * shards, 0);
        std::vector<Bytes> rep(static_cast<std::size_t>(dcs) * shards, 0);
        for (int m = 0; m < maps; ++m) {
          const NodeIndex p = tracker.primary_node(0, m);
          if (p == kNoNode) continue;
          const DcIndex pdc = t.dc_of(p);
          for (int k = 0; k < shards; ++k) {
            const Bytes bytes = tracker.Output(0, m, k).bytes;
            prim[static_cast<std::size_t>(pdc) * shards + k] += bytes;
            for (int j = 0; j < r; ++j) {
              const DcIndex d = (pdc + j) % dcs;
              rep[static_cast<std::size_t>(d) * shards + k] += bytes;
            }
          }
        }
        std::vector<Bytes> per_dc(static_cast<std::size_t>(dcs), 0);
        for (DcIndex j = 0; j < dcs; ++j) {
          for (int k = 0; k < shards; ++k) {
            per_dc[static_cast<std::size_t>(j)] +=
                prim[static_cast<std::size_t>(j) * shards + k];
          }
        }
        out.s1 = *std::max_element(per_dc.begin(), per_dc.end());
        for (int k = 0; k < shards; ++k) {
          Bytes col = 0, best = 0;
          for (DcIndex j = 0; j < dcs; ++j) {
            col += prim[static_cast<std::size_t>(j) * shards + k];
            best = std::max(
                best, rep[static_cast<std::size_t>(j) * shards + k]);
          }
          out.coded_bound += std::max(Bytes{0}, col - best);
        }
      }
    }

    out.pending_events = cluster.simulator().pending_events();
    out.active_flows = cluster.network().active_flows();
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  }
  return out;
}

void Add(CheckResult* r, const char* invariant, std::string detail) {
  r->violations.push_back(Violation{invariant, std::move(detail)});
}

bool ValidateConfig(const SimcheckConfig& cfg, CheckResult* r) {
  std::ostringstream os;
  if (cfg.num_dcs < 1 || cfg.nodes_per_dc < 1) {
    os << "topology dims out of range";
  } else if (cfg.dag_shape < 0 || cfg.dag_shape >= kNumDagShapes) {
    os << "dag_shape " << cfg.dag_shape << " out of range";
  } else if (cfg.num_records < 1 || cfg.num_keys < 1 || cfg.num_shards < 1 ||
             cfg.partitions_per_dc < 1) {
    os << "workload dims out of range";
  } else if (cfg.threads_high < 1) {
    os << "threads_high < 1";
  } else if (cfg.aggregator_dc_count < 1) {
    os << "aggregator_dc_count < 1";
  } else if (cfg.wan_rate_mbps < 1 || cfg.rtt_ms < 1) {
    os << "network parameters out of range";
  } else if (cfg.transport < 0 || cfg.transport > 2) {
    os << "transport " << cfg.transport << " out of range";
  } else if (cfg.adaptive < 0 || cfg.adaptive > 1) {
    os << "adaptive " << cfg.adaptive << " out of range";
  } else if (cfg.coded != 0 && (cfg.coded < 1 || cfg.coded > cfg.num_dcs)) {
    os << "coded " << cfg.coded << " out of range";
  } else {
    return true;
  }
  Add(r, kInvRunFailure, "invalid config: " + os.str());
  return false;
}

}  // namespace

CheckResult RunEngineCheck(const SimcheckConfig& cfg) {
  CheckResult result;
  if (!ValidateConfig(cfg, &result)) return result;

  // Resolve the fault plan: fractions of the fault-free Spark JCT become
  // absolute simulated times via a probe run.
  FaultPlan plan;
  const bool wants_faults = cfg.crash || cfg.degrade || cfg.block_loss;
  if (wants_faults) {
    SchemeRun probe = RunOne(cfg, Scheme::kSpark, 1, FaultPlan{});
    ++result.engine_runs;
    if (probe.failed) {
      Add(&result, kInvRunFailure, "fault-free probe threw: " + probe.error);
      return result;
    }
    const SimTime jct = probe.job.jct();
    const int workers = cfg.num_dcs * cfg.nodes_per_dc;
    if (cfg.crash && workers >= 2) {
      NodeCrashEvent crash;
      crash.at = cfg.crash_frac * jct;
      crash.node = 1 + std::abs(cfg.crash_victim - 1) % (workers - 1);
      crash.restart_after = cfg.restart_after;
      plan.node_crashes.push_back(crash);
    }
    if (cfg.degrade && cfg.num_dcs >= 2 && cfg.degrade_duration > 0) {
      LinkDegradationEvent deg;
      deg.at = cfg.degrade_frac * jct;
      deg.src = 0;
      deg.dst = 1;
      deg.factor = cfg.degrade_factor;
      deg.duration = cfg.degrade_duration;
      deg.symmetric = true;
      plan.link_degradations.push_back(deg);
    }
    if (cfg.block_loss) {
      BlockLossEvent loss;
      loss.at = cfg.block_loss_frac * jct;
      loss.node = workers - 1;
      plan.block_losses.push_back(loss);
    }
  }

  const Scheme schemes[] = {Scheme::kSpark, Scheme::kCentralized,
                            Scheme::kAggShuffle};
  SchemeRun low[3];
  bool low_ok[3] = {false, false, false};
  for (int s = 0; s < 3; ++s) {
    low[s] = RunOne(cfg, schemes[s], 1, plan);
    ++result.engine_runs;
    if (low[s].failed) {
      Add(&result, kInvRunFailure,
          std::string(SchemeName(schemes[s])) + " threw: " + low[s].error);
      continue;
    }
    low_ok[s] = true;

    SchemeRun high = RunOne(cfg, schemes[s], cfg.threads_high, plan);
    ++result.engine_runs;
    if (high.failed) {
      Add(&result, kInvRunFailure,
          std::string(SchemeName(schemes[s])) +
              " threads=" + std::to_string(cfg.threads_high) +
              " threw: " + high.error);
    } else {
      if (low[s].records != high.records) {
        Add(&result, kInvThreads,
            std::string(SchemeName(schemes[s])) +
                ": records differ between threads=1 and threads=" +
                std::to_string(cfg.threads_high));
      }
      if (low[s].report_json != high.report_json) {
        Add(&result, kInvThreads,
            std::string(SchemeName(schemes[s])) +
                ": RunReport JSON differs between threads=1 and threads=" +
                std::to_string(cfg.threads_high));
      }
    }

    for (const std::string& c : low[s].conservation) {
      Add(&result, kInvConservation,
          std::string(SchemeName(schemes[s])) + ": " + c);
    }

    // Placement is scheme-independent; report it once.
    if (s == 0) {
      for (const std::string& p : low[s].placement) {
        Add(&result, kInvPlacement, p);
      }
    }

    auto counter = [&](const char* name) {
      auto it = low[s].counters.find(name);
      return it == low[s].counters.end() ? std::int64_t{0} : it->second;
    };
    const std::int64_t started = counter("netsim.flows_started");
    const std::int64_t completed = counter("netsim.flows_completed");
    const std::int64_t cancelled = counter("netsim.flows_cancelled");
    if (started != completed + cancelled) {
      std::ostringstream os;
      os << SchemeName(schemes[s]) << ": flows_started " << started
         << " != flows_completed " << completed << " + flows_cancelled "
         << cancelled;
      Add(&result, kInvFlowAccounting, os.str());
    }
    if (counter("netsim.active_flows") != 0) {
      Add(&result, kInvFlowAccounting,
          std::string(SchemeName(schemes[s])) +
              ": active_flows gauge nonzero after the run");
    }
    if (counter("simcore.events_executed") >
        counter("simcore.events_scheduled")) {
      Add(&result, kInvMetrics,
          std::string(SchemeName(schemes[s])) +
              ": more events executed than scheduled");
    }
    if (counter("sched.queue_depth") != 0) {
      Add(&result, kInvMetrics,
          std::string(SchemeName(schemes[s])) +
              ": scheduler queue not drained");
    }
    if (low[s].pending_events != 0 || low[s].active_flows != 0) {
      std::ostringstream os;
      os << SchemeName(schemes[s]) << ": " << low[s].pending_events
         << " pending events, " << low[s].active_flows
         << " active flows after the run";
      Add(&result, kInvQuiescence, os.str());
    }
  }

  // Bit-identical rerun of one scheme (rotated by seed).
  const int rerun_idx = static_cast<int>(cfg.seed % 3);
  if (low_ok[rerun_idx]) {
    SchemeRun rerun = RunOne(cfg, schemes[rerun_idx], 1, plan);
    ++result.engine_runs;
    if (rerun.failed) {
      Add(&result, kInvRunFailure,
          std::string("rerun threw: ") + rerun.error);
    } else {
      if (rerun.records != low[rerun_idx].records) {
        Add(&result, kInvRerun,
            std::string(SchemeName(schemes[rerun_idx])) +
                ": records differ on an identical rerun");
      }
      if (rerun.report_json != low[rerun_idx].report_json) {
        Add(&result, kInvRerun,
            std::string(SchemeName(schemes[rerun_idx])) +
                ": RunReport JSON differs on an identical rerun");
      }
    }
  }

  if (!cfg.save_action) {
    // Cross-scheme equivalence and the oracle, over canonical multisets.
    std::vector<std::string> canon[3];
    for (int s = 0; s < 3; ++s) {
      if (low_ok[s]) canon[s] = CanonicalMultiset(low[s].records);
    }
    for (int s = 1; s < 3; ++s) {
      if (low_ok[0] && low_ok[s] && canon[0] != canon[s]) {
        Add(&result, kInvCrossScheme,
            std::string(SchemeName(schemes[0])) + " vs " +
                SchemeName(schemes[s]) + ": " +
                FirstDifference(canon[0], canon[s]));
      }
    }
    if (low_ok[0]) {
      std::vector<std::string> expected =
          CanonicalMultiset(OracleRecords(cfg, BuildRecords(cfg)));
      if (canon[0] != expected) {
        Add(&result, kInvOracle,
            "Spark output vs reference evaluation: " +
                FirstDifference(canon[0], expected));
      }
    }
  }

  // Eq. 2 (Sec. III-B): measured cross-DC shuffle traffic respects the
  // lower bound. The Spark run is checked against the exact per-shard
  // refinement computed from its own map-output matrix; AggShuffle against
  // the classic S - s1 with slack for shard imbalance. Fault recovery can
  // re-register map outputs after traffic was measured, so faulty runs get
  // a wide margin — the bound still flags sign-level violations.
  if (low_ok[0] && low[0].S > 0) {
    if (cfg.coded == 0) {
      const Bytes spark_slack =
          low[0].faulty ? low[0].exact_bound / 4 : Bytes{0};
      if (low[0].cross + spark_slack < low[0].exact_bound) {
        std::ostringstream os;
        os << "Spark cross-DC shuffle bytes " << low[0].cross
           << " below the exact bound " << low[0].exact_bound << " (S="
           << low[0].S << ", s1=" << low[0].s1 << ")";
        Add(&result, kInvEq2, os.str());
      }
    } else {
      // With coding on, segments replicated into a shard's home datacenter
      // never cross the WAN, so the Spark run is held to the replica-aware
      // refinement instead of the exact per-shard bound (docs/CODED.md).
      const Bytes coded_slack =
          low[0].faulty ? low[0].coded_bound / 4 : Bytes{0};
      if (low[0].cross + coded_slack < low[0].coded_bound) {
        std::ostringstream os;
        os << "coded Spark cross-DC shuffle bytes " << low[0].cross
           << " below the replica-aware bound " << low[0].coded_bound
           << " (S=" << low[0].S << ", r=" << cfg.coded << ")";
        Add(&result, kInvEq2, os.str());
      }
    }
    if (low_ok[2]) {
      const Bytes eq2 = low[0].S - low[0].s1;
      const Bytes agg_slack =
          eq2 / (low[0].faulty ? 4 : 20) + Bytes{4096};
      if (low[2].cross + agg_slack < eq2) {
        std::ostringstream os;
        os << "AggShuffle cross-DC shuffle bytes " << low[2].cross
           << " below S - s1 = " << eq2;
        Add(&result, kInvEq2, os.str());
      }
    }
  }

  return result;
}

CheckResult RunSimcheck(const SimcheckConfig& cfg) {
  CheckResult net = RunNetsimCheck(cfg);
  CheckResult engine = RunEngineCheck(cfg);
  CheckResult all;
  all.violations = std::move(net.violations);
  all.violations.insert(all.violations.end(), engine.violations.begin(),
                        engine.violations.end());
  all.engine_runs = net.engine_runs + engine.engine_runs;
  all.netsim_flows = net.netsim_flows;
  return all;
}

}  // namespace simcheck
}  // namespace gs
