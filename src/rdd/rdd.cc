#include "rdd/rdd.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"

namespace gs {

Rdd::Rdd(RddId id, RddKind kind, int num_partitions, std::string name)
    : id_(id), kind_(kind), num_partitions_(num_partitions),
      name_(std::move(name)) {
  GS_CHECK(num_partitions > 0);
}

std::vector<NodeIndex> Rdd::PreferredLocations(int partition) const {
  GS_CHECK(partition >= 0 && partition < num_partitions_);
  return {};
}

void Rdd::AddParent(RddPtr parent) {
  GS_CHECK(parent != nullptr);
  parents_.push_back(std::move(parent));
}

SourceRdd::SourceRdd(RddId id, std::string name,
                     std::vector<Partition> partitions)
    : Rdd(id, RddKind::kSource, static_cast<int>(partitions.size()),
          std::move(name)),
      partitions_(std::move(partitions)) {
  for (const auto& p : partitions_) {
    GS_CHECK(p.records != nullptr);
    GS_CHECK(p.node != kNoNode);
    GS_CHECK(p.bytes >= 0);
  }
}

std::vector<NodeIndex> SourceRdd::PreferredLocations(int partition) const {
  return {partitions_.at(partition).node};
}

Bytes SourceRdd::total_bytes() const {
  Bytes total = 0;
  for (const auto& p : partitions_) total += p.bytes;
  return total;
}

MapPartitionsRdd::MapPartitionsRdd(RddId id, std::string name, RddPtr parent,
                                   Fn fn)
    : Rdd(id, RddKind::kMapPartitions, parent->num_partitions(),
          std::move(name)),
      fn_(std::move(fn)) {
  GS_CHECK(fn_ != nullptr);
  AddParent(std::move(parent));
}

int UnionRdd::TotalPartitions(const std::vector<RddPtr>& rdds) {
  GS_CHECK(!rdds.empty());
  int total = 0;
  for (const auto& r : rdds) total += r->num_partitions();
  return total;
}

UnionRdd::UnionRdd(RddId id, std::string name, std::vector<RddPtr> rdds)
    : Rdd(id, RddKind::kUnion, TotalPartitions(rdds), std::move(name)) {
  for (auto& r : rdds) AddParent(std::move(r));
}

std::pair<int, int> UnionRdd::Resolve(int partition) const {
  GS_CHECK(partition >= 0 && partition < num_partitions());
  int offset = partition;
  for (std::size_t i = 0; i < parents().size(); ++i) {
    int n = parents()[i]->num_partitions();
    if (offset < n) return {static_cast<int>(i), offset};
    offset -= n;
  }
  GS_CHECK_MSG(false, "unreachable");
  return {-1, -1};
}

std::vector<NodeIndex> UnionRdd::PreferredLocations(int partition) const {
  auto [parent_idx, parent_part] = Resolve(partition);
  return parents()[parent_idx]->PreferredLocations(parent_part);
}

ShuffledRdd::ShuffledRdd(RddId id, std::string name, RddPtr parent,
                         ShuffleInfo info)
    : Rdd(id, RddKind::kShuffled,
          info.partitioner ? info.partitioner->num_shards() : 1,
          std::move(name)),
      info_(std::move(info)) {
  GS_CHECK(info_.partitioner != nullptr);
  GS_CHECK(info_.id >= 0);
  GS_CHECK_MSG(!(info_.group_values && info_.reduce_combine),
               "groupByKey and reduceByKey are mutually exclusive");
  AddParent(std::move(parent));
}

std::vector<Record> ShuffledRdd::ProcessShard(
    std::vector<Record> records) const {
  if (info_.reduce_combine) {
    records = CombineByKey(records, info_.reduce_combine);
  } else if (info_.group_values) {
    // Gather string values per key, in arrival order. Keys are hashed once
    // into a flat index — no std::hash<std::string>, no per-key nodes.
    std::vector<Record> grouped;
    FlatKeyIndex index(records.size());
    for (Record& r : records) {
      const std::size_t slot = index.FindOrInsert(
          Fnv1a64(r.key), grouped.size(),
          [&](std::size_t i) { return grouped[i].key == r.key; });
      if (slot == grouped.size()) {
        grouped.push_back(
            Record{std::move(r.key),
                   std::vector<std::string>{
                       std::get<std::string>(std::move(r.value))}});
      } else {
        std::get<std::vector<std::string>>(grouped[slot].value)
            .push_back(std::get<std::string>(std::move(r.value)));
      }
    }
    records = std::move(grouped);
  }
  if (info_.sort_by_key) {
    std::stable_sort(records.begin(), records.end(),
                     [](const Record& a, const Record& b) {
                       return a.key < b.key;
                     });
  }
  return records;
}

TransferredRdd::TransferredRdd(RddId id, std::string name, RddPtr parent,
                               DcIndex target_dc)
    : Rdd(id, RddKind::kTransferred, parent->num_partitions(),
          std::move(name)),
      target_dc_(target_dc) {
  AddParent(std::move(parent));
}

MapPartitionsRdd::Fn RecordMapFn(std::function<Record(const Record&)> fn) {
  return [fn = std::move(fn)](int, const std::vector<Record>& input) {
    std::vector<Record> out;
    out.reserve(input.size());
    for (const Record& r : input) out.push_back(fn(r));
    return out;
  };
}

MapPartitionsRdd::Fn RecordFlatMapFn(
    std::function<std::vector<Record>(const Record&)> fn) {
  return [fn = std::move(fn)](int, const std::vector<Record>& input) {
    std::vector<Record> out;
    for (const Record& r : input) {
      std::vector<Record> produced = fn(r);
      out.insert(out.end(), std::make_move_iterator(produced.begin()),
                 std::make_move_iterator(produced.end()));
    }
    return out;
  };
}

MapPartitionsRdd::Fn RecordFilterFn(std::function<bool(const Record&)> fn) {
  return [fn = std::move(fn)](int, const std::vector<Record>& input) {
    std::vector<Record> out;
    for (const Record& r : input) {
      if (fn(r)) out.push_back(r);
    }
    return out;
  };
}

}  // namespace gs
