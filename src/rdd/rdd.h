// RDD lineage graph.
//
// An Rdd describes a partitioned dataset as a node in an immutable lineage
// DAG, exactly as in Spark: narrow dependencies (map, filter, union, cache)
// are pipelined into one task by the scheduler, while wide (shuffle)
// dependencies split stages. The paper's contribution is TransferredRdd —
// the result of transferTo() — a *transfer* dependency: one-to-one like a
// narrow dependency, but a task boundary, so that the child partition runs
// as a separate receiver task placed in the aggregator datacenter and the
// parent's output is proactively pushed to it (Sec. IV-B).
//
// Rdds hold no partition data; payloads live in the BlockManager and are
// produced by the executor (src/exec). Rdds are created through the Dataset
// facade (engine/dataset.h) and are immutable once built.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "data/combiner.h"
#include "data/partitioner.h"
#include "data/record.h"
#include "storage/block.h"

namespace gs {

class Rdd;
using RddPtr = std::shared_ptr<Rdd>;

enum class RddKind {
  kSource,         // generated input with fixed per-partition placement
  kMapPartitions,  // narrow, one parent, same partitioning
  kUnion,          // narrow, several parents, concatenated partitions
  kShuffled,       // wide: starts a new stage fed by a shuffle
  kTransferred,    // transferTo(): starts a receiver stage (the contribution)
};

// Everything the engine needs to know about one shuffle dependency.
struct ShuffleInfo {
  ShuffleId id = -1;
  std::shared_ptr<Partitioner> partitioner;
  // If set, values of equal keys are merged on the map side before shuffle
  // write (and before a transferTo push — Sec. IV-C3).
  CombineFn map_side_combine;
  // If set, values of equal keys are merged on the reduce side.
  CombineFn reduce_combine;
  // Gather values of equal (string-valued) keys into vector<string>
  // (groupByKey). Mutually exclusive with reduce_combine.
  bool group_values = false;
  // Sort records by key within each shard (sortByKey/TeraSort).
  bool sort_by_key = false;
};

class Rdd {
 public:
  Rdd(RddId id, RddKind kind, int num_partitions, std::string name);
  virtual ~Rdd() = default;

  Rdd(const Rdd&) = delete;
  Rdd& operator=(const Rdd&) = delete;

  RddId id() const { return id_; }
  RddKind kind() const { return kind_; }
  int num_partitions() const { return num_partitions_; }
  const std::string& name() const { return name_; }

  const std::vector<RddPtr>& parents() const { return parents_; }

  // Marks the dataset for caching: the first task to compute a partition
  // stores it in the BlockManager; later tasks read the local copy.
  void set_cached(bool cached) { cached_ = cached; }
  bool cached() const { return cached_; }

  // Static host-level placement preferences; kSource partitions know their
  // HDFS-style block location. Dynamic preferences (shuffle input locality,
  // aggregator placement) are computed by the DAG scheduler at runtime.
  virtual std::vector<NodeIndex> PreferredLocations(int partition) const;

 protected:
  void AddParent(RddPtr parent);

 private:
  RddId id_;
  RddKind kind_;
  int num_partitions_;
  std::string name_;
  bool cached_ = false;
  std::vector<RddPtr> parents_;
};

// Generated input dataset: partitions pinned to nodes, mimicking HDFS block
// placement across datacenters. `declared_bytes` lets a partition model a
// larger on-disk file than its in-memory record sample (not used by the
// HiBench workloads, which generate full-size data).
class SourceRdd final : public Rdd {
 public:
  struct Partition {
    RecordsPtr records;
    NodeIndex node = kNoNode;
    Bytes bytes = 0;
  };

  SourceRdd(RddId id, std::string name, std::vector<Partition> partitions);

  const Partition& partition(int p) const { return partitions_.at(p); }
  std::vector<NodeIndex> PreferredLocations(int partition) const override;

  Bytes total_bytes() const;

 private:
  std::vector<Partition> partitions_;
};

// Narrow per-partition transformation (map / filter / flatMap /
// mapPartitions). The function sees the partition index so that
// partition-dependent logic (e.g. sampling) stays deterministic.
class MapPartitionsRdd final : public Rdd {
 public:
  using Fn =
      std::function<std::vector<Record>(int partition,
                                        const std::vector<Record>& input)>;

  MapPartitionsRdd(RddId id, std::string name, RddPtr parent, Fn fn);

  const Fn& fn() const { return fn_; }
  const RddPtr& parent() const { return parents().front(); }

 private:
  Fn fn_;
};

// Concatenation of several datasets; partition p of the union maps to one
// partition of one parent.
class UnionRdd final : public Rdd {
 public:
  UnionRdd(RddId id, std::string name, std::vector<RddPtr> rdds);

  // Resolves a union partition to (parent index, parent partition).
  std::pair<int, int> Resolve(int partition) const;

  std::vector<NodeIndex> PreferredLocations(int partition) const override;

 private:
  static int TotalPartitions(const std::vector<RddPtr>& rdds);
};

// Result of a wide transformation (reduceByKey / groupByKey / sortByKey).
// Partition k holds shard k of the parent's shuffle output.
class ShuffledRdd final : public Rdd {
 public:
  ShuffledRdd(RddId id, std::string name, RddPtr parent, ShuffleInfo info);

  const ShuffleInfo& shuffle() const { return info_; }
  const RddPtr& parent() const { return parents().front(); }

  // Reduce-side processing of gathered shard records (combine / group /
  // sort), applied by the executor once all fetches complete.
  std::vector<Record> ProcessShard(std::vector<Record> records) const;

 private:
  ShuffleInfo info_;
};

// transferTo(): the paper's new transformation (Sec. IV-B). One-to-one with
// the parent, but executed as separate receiver tasks whose placement
// preferences point at the aggregator datacenter; the parent partition is
// pushed to the receiver as soon as it is produced.
class TransferredRdd final : public Rdd {
 public:
  // target_dc == kNoDc means "choose automatically": the engine picks the
  // datacenter holding the largest fraction of the upstream input
  // (Sec. IV-D approximates the optimal choice of Sec. III-B with map
  // *input* sizes, which are known before the map runs).
  TransferredRdd(RddId id, std::string name, RddPtr parent, DcIndex target_dc);

  DcIndex target_dc() const { return target_dc_; }
  const RddPtr& parent() const { return parents().front(); }

 private:
  DcIndex target_dc_;
};

// Builder helpers used by the Dataset facade; each returns a new graph node.
MapPartitionsRdd::Fn RecordMapFn(std::function<Record(const Record&)> fn);
MapPartitionsRdd::Fn RecordFlatMapFn(
    std::function<std::vector<Record>(const Record&)> fn);
MapPartitionsRdd::Fn RecordFilterFn(std::function<bool(const Record&)> fn);

}  // namespace gs
