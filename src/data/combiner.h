// Key-wise combining (reduce functions and map-side combine).
//
// reduceByKey-style transformations merge values of equal keys with an
// associative, commutative CombineFn. Map-side combine runs the same merge
// on each map partition before the shuffle, shrinking shuffle input — the
// paper pipelines this with the map and performs it *before* the
// transferTo() push (Sec. IV-C3) so combined, smaller data crosses the WAN.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/record.h"

namespace gs {

// Merges two values for the same key. Must be associative and commutative.
using CombineFn = std::function<Value(const Value&, const Value&)>;

// Combines records key-wise. Output order is the first-appearance order of
// each key, which keeps runs deterministic.
//
// Each key is FNV-1a-hashed exactly once; when `key_hashes` is non-null it
// receives the hash of each output record's key (parallel to the returned
// vector), so the shuffle-write path can partition the combined records
// without rehashing (HashPartitioner::ShardOfHashed).
std::vector<Record> CombineByKey(const std::vector<Record>& records,
                                 const CombineFn& fn,
                                 std::vector<std::uint64_t>* key_hashes =
                                     nullptr);

// Common combine functions.
CombineFn SumInt64();
CombineFn SumDouble();
CombineFn MergeTermWeights();  // element-wise sum of sparse vectors
CombineFn ConcatStrings(char separator = '\0');

}  // namespace gs
