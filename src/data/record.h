// Records: the unit of data flowing through the engine.
//
// Datasets are vectors of key/value records. Values are a closed variant of
// the types the five HiBench-style workloads need; SerializedSize gives the
// wire size used for flow sizes and I/O cost, so traffic volumes reported by
// the benches are measured from actual data rather than assumed.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/units.h"

namespace gs {

// A (term, weight) pair, e.g. a word count inside a document vector.
using TermWeight = std::pair<std::string, double>;

using Value = std::variant<std::monostate,            // empty
                           std::int64_t,              // counts, ranks keys
                           double,                    // ranks, probabilities
                           std::string,               // text payloads
                           std::vector<std::string>,  // adjacency lists
                           std::vector<TermWeight>>;  // sparse vectors

struct Record {
  std::string key;
  Value value;

  bool operator==(const Record& other) const = default;
};

// Serialized wire/disk size of a value or record, in bytes. The model
// approximates a compact binary encoding: fixed 8 bytes for numerics,
// length-prefixed strings, and per-element framing for containers.
Bytes SerializedSize(const Value& value);
Bytes SerializedSize(const Record& record);
Bytes SerializedSize(const std::vector<Record>& records);

// Human-readable rendering for logs and test diagnostics.
std::string ToString(const Value& value);
std::string ToString(const Record& record);

}  // namespace gs
