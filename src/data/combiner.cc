#include "data/combiner.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace gs {

std::vector<Record> CombineByKey(const std::vector<Record>& records,
                                 const CombineFn& fn,
                                 std::vector<std::uint64_t>* key_hashes) {
  GS_CHECK(fn != nullptr);
  std::vector<Record> out;
  FlatKeyIndex index(records.size());
  if (key_hashes) {
    key_hashes->clear();
    key_hashes->reserve(records.size());
  }
  for (const Record& r : records) {
    const std::uint64_t h = Fnv1a64(r.key);
    const std::size_t slot = index.FindOrInsert(
        h, out.size(), [&](std::size_t i) { return out[i].key == r.key; });
    if (slot == out.size()) {
      out.push_back(r);
      if (key_hashes) key_hashes->push_back(h);
    } else {
      Record& existing = out[slot];
      existing.value = fn(existing.value, r.value);
    }
  }
  return out;
}

CombineFn SumInt64() {
  return [](const Value& a, const Value& b) -> Value {
    return std::get<std::int64_t>(a) + std::get<std::int64_t>(b);
  };
}

CombineFn SumDouble() {
  return [](const Value& a, const Value& b) -> Value {
    return std::get<double>(a) + std::get<double>(b);
  };
}

namespace {

// Returns `v` if already sorted by term (the common case: merge outputs
// are sorted); otherwise sorts a copy into `scratch` (stable, so duplicate
// terms keep their relative order and sum in arrival order).
const std::vector<TermWeight>& SortedByTerm(const std::vector<TermWeight>& v,
                                            std::vector<TermWeight>& scratch) {
  const auto term_less = [](const TermWeight& a, const TermWeight& b) {
    return a.first < b.first;
  };
  if (std::is_sorted(v.begin(), v.end(), term_less)) return v;
  scratch = v;
  std::stable_sort(scratch.begin(), scratch.end(), term_less);
  return scratch;
}

// Appends the weights of one term's run to `acc` left-to-right, advancing
// `i` past the run. Summation order matches the old std::map
// implementation (va occurrences in order, then vb occurrences in order).
void AccumulateRun(const std::vector<TermWeight>& v, std::size_t& i,
                   const std::string& term, double& acc, bool& started) {
  while (i < v.size() && v[i].first == term) {
    if (!started) {
      acc = v[i].second;
      started = true;
    } else {
      acc += v[i].second;
    }
    ++i;
  }
}

}  // namespace

CombineFn MergeTermWeights() {
  // Sparse-vector sum as a sort-merge of (nearly always pre-sorted)
  // vectors instead of a per-merge std::map: no node allocations, no
  // per-element tree rebalancing, and the output stays in sorted term
  // order like the map produced.
  return [](const Value& a, const Value& b) -> Value {
    std::vector<TermWeight> scratch_a, scratch_b;
    const std::vector<TermWeight>& va =
        SortedByTerm(std::get<std::vector<TermWeight>>(a), scratch_a);
    const std::vector<TermWeight>& vb =
        SortedByTerm(std::get<std::vector<TermWeight>>(b), scratch_b);
    std::vector<TermWeight> out;
    out.reserve(va.size() + vb.size());
    std::size_t i = 0, j = 0;
    while (i < va.size() || j < vb.size()) {
      const std::string* term;
      if (j >= vb.size() || (i < va.size() && va[i].first <= vb[j].first)) {
        term = &va[i].first;
      } else {
        term = &vb[j].first;
      }
      double acc = 0;
      bool started = false;
      const std::string key = *term;
      AccumulateRun(va, i, key, acc, started);
      AccumulateRun(vb, j, key, acc, started);
      out.emplace_back(std::move(key), acc);
    }
    return out;
  };
}

CombineFn ConcatStrings(char separator) {
  return [separator](const Value& a, const Value& b) -> Value {
    std::string out = std::get<std::string>(a);
    if (separator != '\0') out.push_back(separator);
    out += std::get<std::string>(b);
    return out;
  };
}

}  // namespace gs
