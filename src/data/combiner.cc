#include "data/combiner.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/check.h"

namespace gs {

std::vector<Record> CombineByKey(const std::vector<Record>& records,
                                 const CombineFn& fn) {
  GS_CHECK(fn != nullptr);
  std::vector<Record> out;
  std::unordered_map<std::string, std::size_t> index;
  index.reserve(records.size());
  for (const Record& r : records) {
    auto [it, inserted] = index.try_emplace(r.key, out.size());
    if (inserted) {
      out.push_back(r);
    } else {
      Record& existing = out[it->second];
      existing.value = fn(existing.value, r.value);
    }
  }
  return out;
}

CombineFn SumInt64() {
  return [](const Value& a, const Value& b) -> Value {
    return std::get<std::int64_t>(a) + std::get<std::int64_t>(b);
  };
}

CombineFn SumDouble() {
  return [](const Value& a, const Value& b) -> Value {
    return std::get<double>(a) + std::get<double>(b);
  };
}

CombineFn MergeTermWeights() {
  return [](const Value& a, const Value& b) -> Value {
    const auto& va = std::get<std::vector<TermWeight>>(a);
    const auto& vb = std::get<std::vector<TermWeight>>(b);
    // Merge by term; keep deterministic (sorted) order.
    std::map<std::string, double> merged;
    for (const auto& [t, w] : va) merged[t] += w;
    for (const auto& [t, w] : vb) merged[t] += w;
    std::vector<TermWeight> out;
    out.reserve(merged.size());
    for (auto& [t, w] : merged) out.emplace_back(t, w);
    return out;
  };
}

CombineFn ConcatStrings(char separator) {
  return [separator](const Value& a, const Value& b) -> Value {
    std::string out = std::get<std::string>(a);
    if (separator != '\0') out.push_back(separator);
    out += std::get<std::string>(b);
    return out;
  };
}

}  // namespace gs
