#include "data/partitioner.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/hash.h"

namespace gs {

HashPartitioner::HashPartitioner(int num_shards, std::uint64_t salt)
    : num_shards_(num_shards), salt_(salt) {
  GS_CHECK(num_shards > 0);
}

int HashPartitioner::ShardOf(const std::string& key) const {
  // FNV-1a with a salt; std::hash is not guaranteed stable across
  // implementations and runs must be reproducible.
  return static_cast<int>(Fnv1a64(key, kFnvOffsetBasis ^ salt_) %
                          static_cast<std::uint64_t>(num_shards_));
}

int HashPartitioner::ShardOfHashed(const std::string& key,
                                   std::uint64_t fnv_hash) const {
  // The salt is folded into the FNV offset basis, so a salt-free hash can
  // only be reused when no salt is set (the engine never sets one; salted
  // partitioners exist for ablations and pay the rehash).
  if (salt_ != 0) return ShardOf(key);
  return static_cast<int>(fnv_hash % static_cast<std::uint64_t>(num_shards_));
}

RangePartitioner::RangePartitioner(std::vector<std::string> boundaries)
    : boundaries_(std::move(boundaries)) {
  GS_CHECK(std::is_sorted(boundaries_.begin(), boundaries_.end()));
}

RangePartitioner RangePartitioner::FromSample(
    std::vector<std::string> sample_keys, int num_shards) {
  GS_CHECK(num_shards > 0);
  std::sort(sample_keys.begin(), sample_keys.end());
  std::vector<std::string> boundaries;
  if (!sample_keys.empty()) {
    for (int i = 1; i < num_shards; ++i) {
      std::size_t idx = sample_keys.size() * static_cast<std::size_t>(i) /
                        static_cast<std::size_t>(num_shards);
      boundaries.push_back(sample_keys[std::min(idx, sample_keys.size() - 1)]);
    }
    boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                     boundaries.end());
  }
  return RangePartitioner(std::move(boundaries));
}

int RangePartitioner::num_shards() const {
  return static_cast<int>(boundaries_.size()) + 1;
}

int RangePartitioner::ShardOf(const std::string& key) const {
  auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), key);
  return static_cast<int>(it - boundaries_.begin());
}

}  // namespace gs
