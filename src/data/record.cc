#include "data/record.h"

#include <sstream>

namespace gs {
namespace {

// Per-record framing overhead (type tags + length prefixes).
constexpr Bytes kRecordOverhead = 8;
constexpr Bytes kStringOverhead = 4;
constexpr Bytes kElementOverhead = 4;

struct SizeVisitor {
  Bytes operator()(std::monostate) const { return 0; }
  Bytes operator()(std::int64_t) const { return 8; }
  Bytes operator()(double) const { return 8; }
  Bytes operator()(const std::string& s) const {
    return kStringOverhead + static_cast<Bytes>(s.size());
  }
  Bytes operator()(const std::vector<std::string>& v) const {
    Bytes total = kElementOverhead;
    for (const auto& s : v) {
      total += kStringOverhead + static_cast<Bytes>(s.size());
    }
    return total;
  }
  Bytes operator()(const std::vector<TermWeight>& v) const {
    Bytes total = kElementOverhead;
    for (const auto& [term, weight] : v) {
      (void)weight;
      total += kStringOverhead + static_cast<Bytes>(term.size()) + 8;
    }
    return total;
  }
};

struct PrintVisitor {
  std::ostringstream& os;
  void operator()(std::monostate) const { os << "()"; }
  void operator()(std::int64_t v) const { os << v; }
  void operator()(double v) const { os << v; }
  void operator()(const std::string& s) const { os << '"' << s << '"'; }
  void operator()(const std::vector<std::string>& v) const {
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) os << ", ";
      os << v[i];
    }
    os << "]";
  }
  void operator()(const std::vector<TermWeight>& v) const {
    os << "{";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) os << ", ";
      os << v[i].first << ":" << v[i].second;
    }
    os << "}";
  }
};

}  // namespace

Bytes SerializedSize(const Value& value) {
  return std::visit(SizeVisitor{}, value);
}

Bytes SerializedSize(const Record& record) {
  return kRecordOverhead + kStringOverhead +
         static_cast<Bytes>(record.key.size()) + SerializedSize(record.value);
}

Bytes SerializedSize(const std::vector<Record>& records) {
  Bytes total = 0;
  for (const Record& r : records) total += SerializedSize(r);
  return total;
}

std::string ToString(const Value& value) {
  std::ostringstream os;
  std::visit(PrintVisitor{os}, value);
  return os.str();
}

std::string ToString(const Record& record) {
  std::ostringstream os;
  os << "(" << record.key << " -> ";
  std::visit(PrintVisitor{os}, record.value);
  os << ")";
  return os.str();
}

}  // namespace gs
