#include "data/compression.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <cmath>
#include <string>

namespace gs {
namespace {

// Upper bound on bytes fed to the estimator per batch.
constexpr std::size_t kSampleBytes = 8192;

// Appends a textual projection of a value's payload bytes.
void AppendPayload(const Value& value, std::string& out) {
  struct Visitor {
    std::string& out;
    void operator()(std::monostate) const {}
    void operator()(std::int64_t v) const { out += std::to_string(v); }
    void operator()(double v) const { out += std::to_string(v); }
    void operator()(const std::string& s) const { out += s; }
    void operator()(const std::vector<std::string>& v) const {
      for (const auto& s : v) out += s;
    }
    void operator()(const std::vector<TermWeight>& v) const {
      for (const auto& [t, w] : v) {
        out += t;
        out += std::to_string(w);
      }
    }
  };
  std::visit(Visitor{out}, value);
}

}  // namespace

double EstimateCompressionRatio(const std::vector<Record>& records) {
  if (records.empty()) return 1.0;
  std::string sample;
  sample.reserve(kSampleBytes);
  // Deterministic spread over the batch.
  const std::size_t step = std::max<std::size_t>(1, records.size() / 64);
  for (std::size_t i = 0; i < records.size() && sample.size() < kSampleBytes;
       i += step) {
    sample += records[i].key;
    AppendPayload(records[i].value, sample);
  }
  if (sample.size() < 32) return 1.0;

  // LZ-family codecs replace repeated substrings with back-references, so
  // the fraction of 8-byte windows that recur in the sample approximates
  // the matchable fraction of the stream: random keys/values produce no
  // repeats (ratio ~1), word-based text repeats heavily (ratio ~0.4),
  // constant filler collapses (ratio ~0.15).
  std::unordered_set<std::uint64_t> windows;
  windows.reserve(sample.size());
  std::size_t repeats = 0;
  std::size_t total = sample.size() - 7;
  std::uint64_t rolling = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    rolling = (rolling << 8) | static_cast<unsigned char>(sample[i]);
    if (i >= 7) {
      // FNV-mix the window to avoid pathological collisions.
      std::uint64_t h = rolling * 1099511628211ull;
      if (!windows.insert(h).second) ++repeats;
    }
  }
  const double matchable = static_cast<double>(repeats) /
                           static_cast<double>(total);
  // Matched bytes shrink to back-reference tokens (~15% of their length);
  // unmatched bytes pass through with small literal overhead.
  const double ratio = (1.0 - matchable) + matchable * 0.15;
  return std::clamp(ratio, 0.10, 1.0);
}

Bytes CompressedSize(const std::vector<Record>& records) {
  const Bytes raw = SerializedSize(records);
  if (raw == 0) return 0;
  const double ratio = EstimateCompressionRatio(records);
  return std::max<Bytes>(1, static_cast<Bytes>(raw * ratio));
}

}  // namespace gs
