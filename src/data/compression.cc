#include "data/compression.h"

#include <algorithm>
#include <vector>
#include <cstdint>
#include <cmath>
#include <string>

namespace gs {
namespace {

// Upper bound on bytes fed to the estimator per batch.
constexpr std::size_t kSampleBytes = 8192;

// Appends a textual projection of a value's payload bytes.
void AppendPayload(const Value& value, std::string& out) {
  struct Visitor {
    std::string& out;
    void operator()(std::monostate) const {}
    void operator()(std::int64_t v) const { out += std::to_string(v); }
    void operator()(double v) const { out += std::to_string(v); }
    void operator()(const std::string& s) const { out += s; }
    void operator()(const std::vector<std::string>& v) const {
      for (const auto& s : v) out += s;
    }
    void operator()(const std::vector<TermWeight>& v) const {
      for (const auto& [t, w] : v) {
        out += t;
        out += std::to_string(w);
      }
    }
  };
  std::visit(Visitor{out}, value);
}

}  // namespace

double EstimateCompressionRatio(const std::vector<Record>& records) {
  if (records.empty()) return 1.0;
  std::string sample;
  sample.reserve(kSampleBytes);
  // Deterministic spread over the batch.
  const std::size_t step = std::max<std::size_t>(1, records.size() / 64);
  for (std::size_t i = 0; i < records.size() && sample.size() < kSampleBytes;
       i += step) {
    sample += records[i].key;
    AppendPayload(records[i].value, sample);
  }
  if (sample.size() < 32) return 1.0;

  // LZ-family codecs replace repeated substrings with back-references, so
  // the fraction of 8-byte windows that recur in the sample approximates
  // the matchable fraction of the stream: random keys/values produce no
  // repeats (ratio ~1), word-based text repeats heavily (ratio ~0.4),
  // constant filler collapses (ratio ~0.15). Recurrence is an exact
  // distinct count of the window hashes via a linear-probe table — the
  // same count a hash set or sort-and-dedup produces, but allocation-free
  // and O(n); this estimator runs once per shard per map task and used to
  // dominate the shuffle-write wall time.
  const std::size_t total = sample.size() - 7;
  // Power-of-two capacity at load factor <= 0.5 so probes stay short. The
  // sample loop can overshoot kSampleBytes by one record, so size from the
  // actual window count rather than the nominal cap.
  std::size_t cap = 16384;
  int shift = 50;  // 64 - log2(cap): index by the well-mixed high bits
  while (cap < 2 * total) {
    cap <<= 1;
    --shift;
  }
  thread_local std::vector<std::uint64_t> table;
  table.assign(cap, 0);
  std::size_t repeats = 0;
  bool seen_zero_window = false;  // 0 is the table's empty sentinel
  std::uint64_t rolling = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    rolling = (rolling << 8) | static_cast<unsigned char>(sample[i]);
    if (i < 7) continue;
    // FNV-mix the window to avoid pathological collisions. The multiply
    // is a bijection (odd multiplier), so w == 0 iff the window is all
    // zero bytes.
    const std::uint64_t w = rolling * 1099511628211ull;
    if (w == 0) {
      if (seen_zero_window) ++repeats;
      seen_zero_window = true;
      continue;
    }
    std::size_t idx = (w * 0x9E3779B97F4A7C15ull) >> shift;
    while (table[idx] != 0 && table[idx] != w) idx = (idx + 1) & (cap - 1);
    if (table[idx] == w) {
      ++repeats;
    } else {
      table[idx] = w;
    }
  }
  const double matchable = static_cast<double>(repeats) /
                           static_cast<double>(total);
  // Matched bytes shrink to back-reference tokens (~15% of their length);
  // unmatched bytes pass through with small literal overhead.
  const double ratio = (1.0 - matchable) + matchable * 0.15;
  return std::clamp(ratio, 0.10, 1.0);
}

Bytes CompressedSize(const std::vector<Record>& records) {
  return CompressedSize(records, SerializedSize(records));
}

Bytes CompressedSize(const std::vector<Record>& records, Bytes serialized) {
  if (serialized == 0) return 0;
  const double ratio = EstimateCompressionRatio(records);
  return std::max<Bytes>(1, static_cast<Bytes>(serialized * ratio));
}

}  // namespace gs
