// Shuffle compression model.
//
// Spark compresses shuffle output by default (spark.shuffle.compress, LZ4),
// so bytes crossing the network during a shuffle — fetched or pushed — are
// the *compressed* size, while raw input moved by the Centralized baseline
// is not. This asymmetry is why HiBench TeraSort is the paper's outlier:
// its random records barely compress and its pre-shuffle map bloats them,
// making the shuffle input larger than the raw input (Sec. V-B), whereas
// text-derived shuffle data compresses several-fold.
//
// The estimator is deterministic and cheap: it samples records and scores
// byte-bigram diversity, mapping low-redundancy data (random keys) near
// ratio 1.0 and repetitive text-derived data toward ~0.3.
#pragma once

#include <vector>

#include "common/units.h"
#include "data/record.h"

namespace gs {

// Estimated compression ratio in (0, 1]: compressed_size / serialized_size.
double EstimateCompressionRatio(const std::vector<Record>& records);

// Serialized-then-compressed size of a record batch, as written to shuffle
// files and sent over push/fetch flows.
Bytes CompressedSize(const std::vector<Record>& records);

// Same, with the batch's serialized size precomputed by the caller (the
// shuffle-write path accumulates per-shard sizes during partitioning and
// skips the second full walk). `serialized` must equal
// SerializedSize(records).
Bytes CompressedSize(const std::vector<Record>& records, Bytes serialized);

}  // namespace gs
