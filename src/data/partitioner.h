// Partitioners: map record keys to shuffle shards.
//
// Shuffle output of every map partition is split into num_shards() shards,
// one per reducer — the all-to-all pattern of Fig. 3. HashPartitioner is the
// default; RangePartitioner (built from sampled keys) backs sortByKey.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gs {

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual int num_shards() const = 0;

  // Shard index in [0, num_shards()) for a key. Must be deterministic.
  virtual int ShardOf(const std::string& key) const = 0;

  // Shard index given the key and its precomputed salt-free FNV-1a hash
  // (Fnv1a64(key)). The shuffle-write hot path hashes each key once and
  // reuses the hash here, for combining and for grouping; partitioners
  // that cannot use the hash fall back to ShardOf.
  virtual int ShardOfHashed(const std::string& key,
                            std::uint64_t fnv_hash) const {
    (void)fnv_hash;
    return ShardOf(key);
  }

  // True when ShardOfHashed consumes the precomputed hash. Callers that
  // would have to hash keys solely for partitioning skip the work when
  // this is false (e.g. RangePartitioner compares keys directly).
  virtual bool UsesKeyHash() const { return false; }
};

class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(int num_shards, std::uint64_t salt = 0);

  int num_shards() const override { return num_shards_; }
  int ShardOf(const std::string& key) const override;
  int ShardOfHashed(const std::string& key,
                    std::uint64_t fnv_hash) const override;
  bool UsesKeyHash() const override { return salt_ == 0; }

 private:
  int num_shards_;
  std::uint64_t salt_;
};

// Splits the key space at sorted boundary keys: shard i receives keys in
// (boundary[i-1], boundary[i]]. With B boundaries there are B+1 shards.
// Ordering shards by index yields globally sorted output, as TeraSort needs.
class RangePartitioner final : public Partitioner {
 public:
  explicit RangePartitioner(std::vector<std::string> boundaries);

  // Builds boundaries by sampling the given keys to create `num_shards`
  // near-equal ranges.
  static RangePartitioner FromSample(std::vector<std::string> sample_keys,
                                     int num_shards);

  int num_shards() const override;
  int ShardOf(const std::string& key) const override;

  const std::vector<std::string>& boundaries() const { return boundaries_; }

 private:
  std::vector<std::string> boundaries_;  // sorted ascending
};

}  // namespace gs
