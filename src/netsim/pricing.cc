#include "netsim/pricing.h"

#include "common/check.h"

namespace gs {

WanPricing WanPricing::Uniform(int num_dcs, double usd_per_gib) {
  GS_CHECK(num_dcs > 0);
  GS_CHECK(usd_per_gib >= 0);
  return WanPricing(std::vector<double>(num_dcs, usd_per_gib));
}

WanPricing::WanPricing(std::vector<double> egress_usd_per_gib)
    : egress_usd_per_gib_(std::move(egress_usd_per_gib)) {
  GS_CHECK(!egress_usd_per_gib_.empty());
  for (double rate : egress_usd_per_gib_) GS_CHECK(rate >= 0);
}

WanPricing WanPricing::Ec2SixRegionTariff() {
  // Region order of Ec2SixRegionTopology: Virginia, California, Sao Paulo,
  // Frankfurt, Singapore, Sydney.
  return WanPricing({0.09, 0.09, 0.16, 0.09, 0.12, 0.14});
}

double WanPricing::egress_rate(DcIndex dc) const {
  GS_CHECK(dc >= 0 && dc < static_cast<DcIndex>(egress_usd_per_gib_.size()));
  return egress_usd_per_gib_[dc];
}

double WanPricing::CostUsd(DcIndex src, DcIndex dst, Bytes bytes) const {
  GS_CHECK(bytes >= 0);
  if (src == dst) return 0;  // intra-region transfer is free
  return egress_rate(src) * static_cast<double>(bytes) / kGiB;
}

double WanPricing::CostUsd(const TrafficMeter& meter,
                           const Topology& topo) const {
  GS_CHECK(topo.num_datacenters() <=
           static_cast<int>(egress_usd_per_gib_.size()));
  double total = 0;
  for (DcIndex src = 0; src < topo.num_datacenters(); ++src) {
    for (DcIndex dst = 0; dst < topo.num_datacenters(); ++dst) {
      total += CostUsd(src, dst, meter.pair_bytes(src, dst));
    }
  }
  return total;
}

}  // namespace gs
