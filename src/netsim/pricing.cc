#include "netsim/pricing.h"

#include "common/check.h"

namespace gs {

WanPricing WanPricing::Uniform(int num_dcs, double usd_per_gib) {
  GS_CHECK(num_dcs > 0);
  GS_CHECK(usd_per_gib >= 0);
  return WanPricing(std::vector<double>(num_dcs, usd_per_gib));
}

WanPricing::WanPricing(std::vector<double> egress_usd_per_gib)
    : egress_usd_per_gib_(std::move(egress_usd_per_gib)) {
  GS_CHECK(!egress_usd_per_gib_.empty());
  for (double rate : egress_usd_per_gib_) GS_CHECK(rate >= 0);
}

WanPricing WanPricing::Ec2SixRegionTariff() {
  // Region order of Ec2SixRegionTopology: Virginia, California, Sao Paulo,
  // Frankfurt, Singapore, Sydney.
  return WanPricing({0.09, 0.09, 0.16, 0.09, 0.12, 0.14});
}

double WanPricing::egress_rate(DcIndex dc) const {
  GS_CHECK(dc >= 0 && dc < static_cast<DcIndex>(egress_usd_per_gib_.size()));
  return egress_usd_per_gib_[dc];
}

double WanPricing::CostUsd(DcIndex src, DcIndex dst, Bytes bytes) const {
  GS_CHECK(bytes >= 0);
  if (src == dst) return 0;  // intra-region transfer is free
  return egress_rate(src) * static_cast<double>(bytes) / kGiB;
}

double WanPricing::CostUsd(const TrafficMeter& meter,
                           const Topology& topo) const {
  GS_CHECK(topo.num_datacenters() <=
           static_cast<int>(egress_usd_per_gib_.size()));
  double total = 0;
  for (DcIndex src = 0; src < topo.num_datacenters(); ++src) {
    for (DcIndex dst = 0; dst < topo.num_datacenters(); ++dst) {
      total += CostUsd(src, dst, meter.pair_bytes(src, dst));
    }
  }
  return total;
}

double WanPricing::EgressCostUsd(const TrafficMeter& meter,
                                 const Topology& topo) const {
  GS_CHECK(topo.num_datacenters() <=
           static_cast<int>(egress_usd_per_gib_.size()));
  double total = 0;
  for (DcIndex src = 0; src < topo.num_datacenters(); ++src) {
    for (DcIndex dst = 0; dst < topo.num_datacenters(); ++dst) {
      const Bytes egressed =
          meter.pair_bytes(src, dst) - meter.store_pair_bytes(src, dst);
      GS_CHECK(egressed >= 0);
      total += CostUsd(src, dst, egressed);
    }
  }
  return total;
}

double WanPricing::StoreCostUsd(const TrafficMeter& meter,
                                const Topology& topo,
                                const ObjectStoreTariff& tariff) {
  const Bytes put = meter.total_of_kind(FlowKind::kStorePut);
  const Bytes get = meter.total_of_kind(FlowKind::kStoreGet);
  Bytes cross = 0;
  for (DcIndex src = 0; src < topo.num_datacenters(); ++src) {
    for (DcIndex dst = 0; dst < topo.num_datacenters(); ++dst) {
      if (src != dst) cross += meter.store_pair_bytes(src, dst);
    }
  }
  return (tariff.put_usd_per_gib * static_cast<double>(put) +
          tariff.get_usd_per_gib * static_cast<double>(get) +
          tariff.storage_usd_per_gib * static_cast<double>(put) +
          tariff.transfer_usd_per_gib * static_cast<double>(cross)) /
         static_cast<double>(kGiB);
}

}  // namespace gs
