#include "netsim/topology.h"

#include <utility>

namespace gs {

DcIndex Topology::AddDatacenter(std::string name) {
  dcs_.push_back(DatacenterSpec{std::move(name)});
  dc_nodes_.emplace_back();
  // Grow the WAN index matrix.
  int n = num_datacenters();
  wan_index_.resize(n);
  for (auto& row : wan_index_) row.resize(n, -1);
  return n - 1;
}

NodeIndex Topology::AddNode(NodeSpec spec) {
  GS_CHECK(spec.dc >= 0 && spec.dc < num_datacenters());
  GS_CHECK(spec.cores > 0);
  GS_CHECK(spec.nic_rate > 0);
  nodes_.push_back(spec);
  NodeIndex idx = num_nodes() - 1;
  dc_nodes_[spec.dc].push_back(idx);
  return idx;
}

void Topology::AddWanLink(WanLinkSpec spec) {
  GS_CHECK(spec.src != spec.dst);
  GS_CHECK(spec.src >= 0 && spec.src < num_datacenters());
  GS_CHECK(spec.dst >= 0 && spec.dst < num_datacenters());
  GS_CHECK(spec.min_rate > 0 && spec.min_rate <= spec.base_rate);
  GS_CHECK(spec.base_rate <= spec.max_rate);
  GS_CHECK_MSG(wan_index_[spec.src][spec.dst] == -1,
               "duplicate WAN link " << spec.src << "->" << spec.dst);
  wan_links_.push_back(spec);
  wan_index_[spec.src][spec.dst] = num_wan_links() - 1;
}

void Topology::AddUniformWanMesh(Rate base, Rate min, Rate max, SimTime rtt) {
  for (DcIndex i = 0; i < num_datacenters(); ++i) {
    for (DcIndex j = 0; j < num_datacenters(); ++j) {
      if (i == j) continue;
      AddWanLink(WanLinkSpec{i, j, base, min, max, rtt});
    }
  }
}

int Topology::wan_link_index(DcIndex src, DcIndex dst) const {
  if (src == dst) return -1;
  return wan_index_.at(src).at(dst);
}

SimTime Topology::rtt(DcIndex src, DcIndex dst) const {
  if (src == dst) return Millis(0.5);
  int idx = wan_link_index(src, dst);
  return idx >= 0 ? wan_links_[idx].rtt : Millis(150);
}

int Topology::cores_in(DcIndex dc) const {
  int total = 0;
  for (NodeIndex n : nodes_in(dc)) total += node(n).cores;
  return total;
}

void Topology::ScaleWanCapacity(double factor) {
  GS_CHECK(factor > 0);
  for (WanLinkSpec& link : wan_links_) {
    link.base_rate *= factor;
    link.min_rate *= factor;
    link.max_rate *= factor;
  }
}

void Topology::SetWorkerCores(DcIndex dc, int cores) {
  GS_CHECK(cores > 0);
  for (NodeIndex n : nodes_in(dc)) {
    if (nodes_[n].worker) nodes_[n].cores = cores;
  }
}

int Topology::total_cores() const {
  int total = 0;
  for (const auto& n : nodes_) total += n.cores;
  return total;
}

Topology Ec2SixRegionTopology(double scale) {
  GS_CHECK(scale > 0);
  Topology topo;
  const char* regions[] = {"us-east-1 (N. Virginia)", "us-west-1 (N. California)",
                           "sa-east-1 (Sao Paulo)",   "eu-central-1 (Frankfurt)",
                           "ap-southeast-1 (Singapore)",
                           "ap-southeast-2 (Sydney)"};
  for (const char* r : regions) topo.AddDatacenter(r);

  for (DcIndex dc = 0; dc < topo.num_datacenters(); ++dc) {
    for (int k = 0; k < 4; ++k) {
      topo.AddNode(NodeSpec{topo.datacenter(dc).name + "/worker-" +
                                std::to_string(k),
                            dc, 2, Gbps(1) / scale});
    }
  }
  // The driver (Spark master + HDFS NameNode host) lives in N. Virginia and
  // runs no tasks; collect() results flow to it.
  NodeIndex driver = topo.AddNode(
      NodeSpec{"us-east-1/driver", 0, 1, Gbps(1) / scale, /*worker=*/false});
  GS_CHECK(driver == kEc2DriverNode);

  // Pairwise WAN characteristics, loosely following published inter-region
  // measurements: nearby pairs are faster, trans-Pacific/antipodal pairs are
  // slower and jitter within the paper's observed 80-300 Mbps envelope.
  // Rates in Mbps, RTTs in ms; symmetric.
  struct Pair {
    DcIndex a, b;
    double base, min, max, rtt_ms;
  };
  // The ingest region (N. Virginia) enjoys premium connectivity, as the
  // best-connected AWS region of the era.
  const Pair pairs[] = {
      {0, 1, 290, 180, 300, 70},   // Virginia <-> California
      {0, 2, 240, 130, 300, 140},  // Virginia <-> Sao Paulo
      {0, 3, 270, 160, 300, 90},   // Virginia <-> Frankfurt
      {0, 4, 210, 110, 290, 230},  // Virginia <-> Singapore
      {0, 5, 210, 110, 290, 200},  // Virginia <-> Sydney
      {1, 2, 140, 80, 220, 190},   // California <-> Sao Paulo
      {1, 3, 160, 90, 240, 150},   // California <-> Frankfurt
      {1, 4, 180, 100, 260, 175},  // California <-> Singapore
      {1, 5, 180, 100, 260, 140},  // California <-> Sydney
      {2, 3, 140, 80, 220, 200},   // Sao Paulo <-> Frankfurt
      {2, 4, 100, 80, 180, 330},   // Sao Paulo <-> Singapore
      {2, 5, 100, 80, 180, 310},   // Sao Paulo <-> Sydney
      {3, 4, 160, 90, 240, 160},   // Frankfurt <-> Singapore
      {3, 5, 120, 80, 200, 280},   // Frankfurt <-> Sydney
      {4, 5, 200, 110, 280, 95},   // Singapore <-> Sydney
  };
  for (const Pair& p : pairs) {
    WanLinkSpec fwd{p.a,
                    p.b,
                    Mbps(p.base) / scale,
                    Mbps(p.min) / scale,
                    Mbps(p.max) / scale,
                    Millis(p.rtt_ms)};
    WanLinkSpec rev = fwd;
    rev.src = p.b;
    rev.dst = p.a;
    topo.AddWanLink(fwd);
    topo.AddWanLink(rev);
  }
  return topo;
}

}  // namespace gs
