#include "netsim/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/log.h"

namespace gs {
namespace {

// Flows below this many remaining bytes are considered finished; guards
// against floating-point residue keeping a flow alive forever.
constexpr double kByteEpsilon = 1e-6;

}  // namespace

const char* FlowKindName(FlowKind kind) {
  switch (kind) {
    case FlowKind::kShuffleFetch: return "shuffle-fetch";
    case FlowKind::kShufflePush: return "shuffle-push";
    case FlowKind::kCentralize: return "centralize";
    case FlowKind::kCollect: return "collect";
    case FlowKind::kOther: return "other";
  }
  return "unknown";
}

TrafficMeter::TrafficMeter(int num_dcs)
    : num_dcs_(num_dcs),
      pair_bytes_(static_cast<std::size_t>(num_dcs) * num_dcs, 0) {}

void TrafficMeter::Record(DcIndex src, DcIndex dst, FlowKind kind,
                          Bytes bytes) {
  GS_CHECK(src >= 0 && src < num_dcs_ && dst >= 0 && dst < num_dcs_);
  GS_CHECK(bytes >= 0);
  pair_bytes_[static_cast<std::size_t>(src) * num_dcs_ + dst] += bytes;
  if (src != dst) kind_cross_dc_[static_cast<int>(kind)] += bytes;
}

Bytes TrafficMeter::cross_dc_total() const {
  Bytes total = 0;
  for (DcIndex s = 0; s < num_dcs_; ++s) {
    for (DcIndex d = 0; d < num_dcs_; ++d) {
      if (s != d) total += pair_bytes(s, d);
    }
  }
  return total;
}

Bytes TrafficMeter::cross_dc_of_kind(FlowKind kind) const {
  auto it = kind_cross_dc_.find(static_cast<int>(kind));
  return it == kind_cross_dc_.end() ? 0 : it->second;
}

Bytes TrafficMeter::pair_bytes(DcIndex src, DcIndex dst) const {
  return pair_bytes_[static_cast<std::size_t>(src) * num_dcs_ + dst];
}

void TrafficMeter::Reset() {
  std::fill(pair_bytes_.begin(), pair_bytes_.end(), 0);
  kind_cross_dc_.clear();
}

Network::Network(Simulator& sim, const Topology& topo, NetworkConfig config,
                 Rng jitter_rng, MetricsRegistry* metrics)
    : sim_(sim),
      topo_(topo),
      config_(config),
      jitter_rng_(std::move(jitter_rng)),
      meter_(topo.num_datacenters()) {
  if (metrics != nullptr) {
    m_flows_started_ = &metrics->counter("netsim.flows_started");
    m_flows_completed_ = &metrics->counter("netsim.flows_completed");
    m_flows_cancelled_ = &metrics->counter("netsim.flows_cancelled");
    m_wan_stalls_ = &metrics->counter("netsim.wan_stalls");
    m_active_flows_ = &metrics->gauge("netsim.active_flows");
    // 1 KiB .. 4 GiB in x4 steps; shuffle blocks land mid-range.
    const std::vector<double> bounds = ExponentialBounds(1024, 4, 12);
    m_fetch_bytes_ = &metrics->histogram("netsim.fetch_flow_bytes", bounds);
    m_push_bytes_ = &metrics->histogram("netsim.push_flow_bytes", bounds);
  }
  capacity_.resize(2 * static_cast<std::size_t>(topo_.num_nodes()) +
                   topo_.num_wan_links());
  for (NodeIndex n = 0; n < topo_.num_nodes(); ++n) {
    capacity_[UplinkRes(n)] = topo_.node(n).nic_rate;
    capacity_[DownlinkRes(n)] = topo_.node(n).nic_rate;
  }
  wan_current_.resize(topo_.num_wan_links());
  degrade_.assign(topo_.num_wan_links(), 1.0);
  for (int l = 0; l < topo_.num_wan_links(); ++l) {
    wan_current_[l] = topo_.wan_link(l).base_rate;
    capacity_[WanRes(l)] = wan_current_[l];
  }
}

FlowId Network::StartFlow(NodeIndex src, NodeIndex dst, Bytes bytes,
                          FlowKind kind, CompletionFn on_complete) {
  GS_CHECK(src >= 0 && src < topo_.num_nodes());
  GS_CHECK(dst >= 0 && dst < topo_.num_nodes());
  GS_CHECK(bytes >= 0);
  GS_CHECK(on_complete != nullptr);

  const FlowId id = next_flow_id_++;
  const DcIndex src_dc = topo_.dc_of(src);
  const DcIndex dst_dc = topo_.dc_of(dst);

  meter_.Record(src_dc, dst_dc, kind, bytes);
  if (m_flows_started_ != nullptr) {
    m_flows_started_->Add(1);
    if (kind == FlowKind::kShuffleFetch) {
      m_fetch_bytes_->Observe(static_cast<double>(bytes));
    } else if (kind == FlowKind::kShufflePush) {
      m_push_bytes_->Observe(static_cast<double>(bytes));
    }
  }

  Flow flow;
  flow.id = id;
  flow.src = src;
  flow.dst = dst;
  flow.kind = kind;
  flow.total = bytes;
  flow.remaining = static_cast<double>(bytes);
  flow.created_at = sim_.Now();
  flow.last_update = sim_.Now();
  flow.on_complete = std::move(on_complete);

  if (src == dst) {
    // Loopback: consumes no network resources and completes after a fixed
    // local latency, but it is metered (on the intra-DC diagonal), counted
    // and tracked like any other flow so byte conservation and flow
    // accounting hold, and CancelFlow on its id behaves normally. It never
    // sets `started`, so rate sharing and progress advancement skip it.
    auto [it, inserted] = flows_.emplace(id, std::move(flow));
    GS_CHECK(inserted);
    it->second.completion_event =
        sim_.Schedule(Millis(0.1), [this, id] { FinishFlow(id); });
    if (m_active_flows_ != nullptr) {
      m_active_flows_->Set(static_cast<std::int64_t>(flows_.size()));
    }
    return id;
  }

  CatchUpJitter();
  flow.resources.push_back(UplinkRes(src));
  SimTime setup = topo_.rtt(src_dc, dst_dc) / 2;
  if (src_dc != dst_dc) {
    int link = topo_.wan_link_index(src_dc, dst_dc);
    GS_CHECK_MSG(link >= 0, "no WAN link " << src_dc << "->" << dst_dc);
    flow.resources.push_back(WanRes(link));
    // Single-connection TCP ceiling and occasional stalls on WAN paths.
    const WanLinkSpec& spec = topo_.wan_link(link);
    double eff = jitter_rng_.Uniform(config_.wan_flow_efficiency_min, 1.0);
    flow.rate_cap = eff * spec.base_rate;
    if (config_.wan_stall_prob > 0 &&
        jitter_rng_.Bernoulli(config_.wan_stall_prob)) {
      setup += jitter_rng_.Uniform(config_.wan_stall_min,
                                   config_.wan_stall_max);
      if (m_wan_stalls_ != nullptr) m_wan_stalls_->Add(1);
    }
    flow.wan_link = link;
  }
  flow.resources.push_back(DownlinkRes(dst));
  flows_.emplace(id, std::move(flow));
  if (m_active_flows_ != nullptr) {
    m_active_flows_->Set(static_cast<std::int64_t>(flows_.size()));
  }

  // Connection setup: the flow begins contending after one-way latency
  // (plus any stall).
  sim_.Schedule(setup, [this, id] {
    auto it = flows_.find(id);
    if (it == flows_.end()) return;  // cancelled during setup
    it->second.started = true;
    it->second.last_update = sim_.Now();
    Reconfigure();
  });
  MaintainJitterEvent();
  return id;
}

void Network::CancelFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  // Advance to Now() first so the bytes actually moved are attributed at
  // their real times, then settle the never-to-be-sent remainder here: the
  // meter charged the full size at start, and conservation must hold.
  AttributeFlowProgress(it->second, it->second.last_update, sim_.Now());
  SettleFlowResidual(it->second);
  it->second.completion_event.Cancel();
  flows_.erase(it);
  if (m_flows_cancelled_ != nullptr) m_flows_cancelled_->Add(1);
  if (m_active_flows_ != nullptr) {
    m_active_flows_->Set(static_cast<std::int64_t>(flows_.size()));
  }
  Reconfigure();
}

Rate Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0 : it->second.rate;
}

Rate Network::wan_capacity(DcIndex src, DcIndex dst) {
  CatchUpJitter();
  int link = topo_.wan_link_index(src, dst);
  GS_CHECK(link >= 0);
  return wan_current_[link] * degrade_[link];
}

void Network::SetWanDegradation(DcIndex src, DcIndex dst, double factor) {
  GS_CHECK(factor >= 0);
  int link = topo_.wan_link_index(src, dst);
  GS_CHECK_MSG(link >= 0, "no WAN link " << src << "->" << dst);
  degrade_[link] = factor;
  capacity_[WanRes(link)] = wan_current_[link] * factor;
  // Re-share bandwidth right away: flows on the link slow down (or stall
  // at factor 0) and their completion events move accordingly.
  Reconfigure();
}

void Network::ComputeMaxMinRates() {
  // Progressive filling over flows that finished connection setup. Each
  // flow additionally gets a virtual resource of capacity rate_cap (its
  // single-connection TCP ceiling), so capped flows freeze at their cap
  // and the leftover bandwidth redistributes max-min fairly.
  std::vector<Flow*> active;
  active.reserve(flows_.size());
  for (auto& [id, f] : flows_) {
    f.rate = 0;
    if (f.started) active.push_back(&f);
  }

  const std::size_t base = capacity_.size();
  std::vector<double> remaining_cap = capacity_;
  std::vector<int> count(base, 0);
  remaining_cap.reserve(base + active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (int r : active[i]->resources) ++count[r];
    remaining_cap.push_back(active[i]->rate_cap > 0
                                ? active[i]->rate_cap
                                : std::numeric_limits<double>::infinity());
    count.push_back(1);
  }

  std::vector<bool> frozen(active.size(), false);
  std::size_t unfrozen = active.size();
  while (unfrozen > 0) {
    // The bottleneck resource has the smallest fair share among resources
    // carrying at least one unfrozen flow.
    double best_share = std::numeric_limits<double>::infinity();
    int best_res = -1;
    for (std::size_t r = 0; r < remaining_cap.size(); ++r) {
      if (count[r] <= 0) continue;
      double share = remaining_cap[r] / count[r];
      if (share < best_share) {
        best_share = share;
        best_res = static_cast<int>(r);
      }
    }
    if (best_res < 0) break;  // should not happen: every flow has resources
    best_share = std::max(best_share, 0.0);

    for (std::size_t i = 0; i < active.size(); ++i) {
      if (frozen[i]) continue;
      Flow* f = active[i];
      bool on_bottleneck =
          static_cast<std::size_t>(best_res) == base + i ||
          std::find(f->resources.begin(), f->resources.end(), best_res) !=
              f->resources.end();
      if (!on_bottleneck) continue;
      f->rate = best_share;
      frozen[i] = true;
      --unfrozen;
      for (int r : f->resources) {
        remaining_cap[r] -= best_share;
        --count[r];
      }
      count[base + i] = 0;
    }
  }
}

void Network::Reconfigure() {
  CatchUpJitter();
  const SimTime now = sim_.Now();
  // Advance progress at old rates and collect flows that are done.
  std::vector<FlowId> done;
  for (auto& [id, f] : flows_) {
    AttributeFlowProgress(f, f.last_update, now);
    f.remaining -= f.rate * (now - f.last_update);
    f.last_update = now;
    if (f.remaining < 0) f.remaining = 0;  // floating-point overshoot
    if (f.started && f.remaining <= kByteEpsilon) {
      // Snap sub-epsilon residue to zero so the flow's progress is exact
      // by the time it is settled; SettleFlowResidual then attributes the
      // integer remainder and conservation holds bit for bit.
      f.remaining = 0;
      done.push_back(id);
    }
  }
  if (!done.empty()) {
    // FinishFlow triggers a fresh Reconfigure once the map is updated.
    for (FlowId id : done) FinishFlow(id);
    return;
  }

  ComputeMaxMinRates();

  for (auto& [id, f] : flows_) {
    // Loopback flows (no resources) complete on a fixed-latency event that
    // rate sharing must not touch — cancelling it here would silently lose
    // the flow, since a zero-rate flow is never rescheduled.
    if (f.resources.empty()) continue;
    f.completion_event.Cancel();
    if (f.rate <= 0) continue;  // still in connection setup or starved
    SimTime eta = f.remaining / f.rate;
    f.completion_event = sim_.Schedule(eta, [this] { Reconfigure(); });
  }
  MaintainJitterEvent();
}

void Network::FinishFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  SettleFlowResidual(it->second);
  CompletionFn cb = std::move(it->second.on_complete);
  it->second.completion_event.Cancel();
  if (m_flows_completed_ != nullptr) m_flows_completed_->Add(1);
  if (observer_ && it->second.src != it->second.dst) {
    const Flow& f = it->second;
    observer_(FlowRecord{f.id, f.src, f.dst, f.kind, f.total, f.created_at,
                         sim_.Now()});
  }
  flows_.erase(it);
  if (m_active_flows_ != nullptr) {
    m_active_flows_->Set(static_cast<std::int64_t>(flows_.size()));
  }
  // Run the completion through the simulator so that callbacks observe a
  // consistent network state and cannot reenter Reconfigure mid-loop.
  sim_.Schedule(0, std::move(cb));
  Reconfigure();
}

void Network::EnableUtilization(SimTime bucket_width) {
  util_ = std::make_unique<LinkUtilization>(topo_.num_wan_links(),
                                            bucket_width);
}

void Network::AttributeFlowProgress(Flow& f, SimTime from, SimTime to) {
  if (util_ == nullptr || f.wan_link < 0) return;
  if (f.rate <= 0 || to <= from) return;
  // Cumulative rounding: at each bucket boundary, credit the difference
  // between floor(cumulative fluid progress) and what has been credited so
  // far. Residue carries forward instead of leaking.
  const double done_at_from = static_cast<double>(f.total) - f.remaining;
  const SimTime width = util_->bucket_width();
  std::int64_t bucket = util_->BucketOf(from);
  SimTime cursor = from;
  while (cursor < to) {
    const SimTime bucket_end = static_cast<SimTime>(bucket + 1) * width;
    const SimTime end = std::min(to, bucket_end);
    const double done = done_at_from + f.rate * (end - from);
    const Bytes target = std::min(f.total, static_cast<Bytes>(done));
    if (target > f.attributed) {
      util_->Add(f.wan_link, bucket, target - f.attributed);
      f.attributed = target;
    }
    cursor = end;
    ++bucket;
  }
}

void Network::SettleFlowResidual(Flow& f) {
  if (util_ == nullptr || f.wan_link < 0) return;
  const Bytes residual = f.total - f.attributed;
  if (residual > 0) {
    util_->Add(f.wan_link, util_->BucketOf(sim_.Now()), residual);
    f.attributed = f.total;
  }
}

void Network::CatchUpJitter() {
  if (!JitterEnabled()) return;
  const SimTime now = sim_.Now();
  while (last_resample_ + config_.jitter_interval <= now) {
    last_resample_ += config_.jitter_interval;
    for (int l = 0; l < topo_.num_wan_links(); ++l) {
      const WanLinkSpec& spec = topo_.wan_link(l);
      double deviation = wan_current_[l] - spec.base_rate;
      double fresh = jitter_rng_.Uniform(spec.min_rate, spec.max_rate);
      double next = spec.base_rate + config_.jitter_momentum * deviation +
                    (1 - config_.jitter_momentum) * (fresh - spec.base_rate);
      next = std::clamp(next, static_cast<double>(spec.min_rate),
                        static_cast<double>(spec.max_rate));
      wan_current_[l] = next;
      capacity_[WanRes(l)] = next * degrade_[l];
    }
  }
}

void Network::MaintainJitterEvent() {
  if (!JitterEnabled()) return;
  if (flows_.empty()) {
    resample_event_.Cancel();
    return;
  }
  if (resample_event_.pending()) return;
  SimTime next_at = last_resample_ + config_.jitter_interval;
  if (next_at < sim_.Now()) next_at = sim_.Now();
  resample_event_ = sim_.ScheduleAt(next_at, [this] {
    // CatchUpJitter (via Reconfigure) performs the due draw; Reconfigure
    // then re-shares bandwidth under the new capacities.
    Reconfigure();
  });
}

}  // namespace gs
