#include "netsim/network.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "common/threadpool.h"

namespace gs {
namespace {

// Flows below this many remaining bytes are considered finished; guards
// against floating-point residue keeping a flow alive forever.
constexpr double kByteEpsilon = 1e-6;

// Starvation guard (satellite bugfix, docs/PERF.md): progressive filling
// subtracts each frozen share from every resource the flow crosses, and
// floating-point rounding can leave a live resource with remaining
// capacity at (or clamped to) exactly zero while unfrozen flows still use
// it. A zero rate means no completion event, and a flow with no completion
// event on an otherwise quiet network is stranded forever. Any share that
// collapses to zero on a resource with real capacity is floored to this
// fraction of the capacity instead — small enough to be irrelevant to any
// measured rate, large enough that the flow keeps a finite deadline.
constexpr double kStarvationRateFraction = 1e-9;

// Component departures tolerated before a rebuild re-splits drifted
// unions. Small components rebuild after a fixed budget; large ones only
// after a departure count proportional to their live size, keeping the
// amortized rebuild cost per flow constant.
constexpr int kRebuildMinRemovals = 64;

// Min-heap ordering for (value, index) pairs via std::push_heap/pop_heap:
// the front is the smallest value, ties broken toward the smaller index —
// exactly the first-strict-minimum rule of the linear bottleneck scan this
// heap replaces.
struct HeapLater {
  bool operator()(const std::pair<double, int>& a,
                  const std::pair<double, int>& b) const {
    return a > b;
  }
};

}  // namespace

const char* FlowKindName(FlowKind kind) {
  switch (kind) {
    case FlowKind::kShuffleFetch: return "shuffle-fetch";
    case FlowKind::kShufflePush: return "shuffle-push";
    case FlowKind::kCentralize: return "centralize";
    case FlowKind::kCollect: return "collect";
    case FlowKind::kStorePut: return "store-put";
    case FlowKind::kStoreGet: return "store-get";
    case FlowKind::kFabric: return "fabric";
    case FlowKind::kCodedMulticast: return "coded-multicast";
    case FlowKind::kOther: return "other";
  }
  return "unknown";
}

TrafficMeter::TrafficMeter(int num_dcs)
    : num_dcs_(num_dcs),
      pair_bytes_(static_cast<std::size_t>(num_dcs) * num_dcs, 0),
      store_pair_bytes_(static_cast<std::size_t>(num_dcs) * num_dcs, 0) {}

void TrafficMeter::Record(DcIndex src, DcIndex dst, FlowKind kind,
                          Bytes bytes) {
  GS_CHECK(src >= 0 && src < num_dcs_ && dst >= 0 && dst < num_dcs_);
  GS_CHECK(bytes >= 0);
  pair_bytes_[static_cast<std::size_t>(src) * num_dcs_ + dst] += bytes;
  if (kind == FlowKind::kStorePut || kind == FlowKind::kStoreGet) {
    store_pair_bytes_[static_cast<std::size_t>(src) * num_dcs_ + dst] +=
        bytes;
  }
  kind_total_[static_cast<int>(kind)] += bytes;
  if (src != dst) kind_cross_dc_[static_cast<int>(kind)] += bytes;
}

Bytes TrafficMeter::cross_dc_total() const {
  Bytes total = 0;
  for (DcIndex s = 0; s < num_dcs_; ++s) {
    for (DcIndex d = 0; d < num_dcs_; ++d) {
      if (s != d) total += pair_bytes(s, d);
    }
  }
  return total;
}

Bytes TrafficMeter::cross_dc_of_kind(FlowKind kind) const {
  auto it = kind_cross_dc_.find(static_cast<int>(kind));
  return it == kind_cross_dc_.end() ? 0 : it->second;
}

Bytes TrafficMeter::pair_bytes(DcIndex src, DcIndex dst) const {
  return pair_bytes_[static_cast<std::size_t>(src) * num_dcs_ + dst];
}

Bytes TrafficMeter::total_of_kind(FlowKind kind) const {
  auto it = kind_total_.find(static_cast<int>(kind));
  return it == kind_total_.end() ? 0 : it->second;
}

Bytes TrafficMeter::store_pair_bytes(DcIndex src, DcIndex dst) const {
  return store_pair_bytes_[static_cast<std::size_t>(src) * num_dcs_ + dst];
}

void TrafficMeter::Reset() {
  std::fill(pair_bytes_.begin(), pair_bytes_.end(), 0);
  std::fill(store_pair_bytes_.begin(), store_pair_bytes_.end(), 0);
  kind_cross_dc_.clear();
  kind_total_.clear();
}

Network::Network(Simulator& sim, const Topology& topo, NetworkConfig config,
                 Rng jitter_rng, MetricsRegistry* metrics)
    : sim_(sim),
      topo_(topo),
      config_(config),
      jitter_rng_(std::move(jitter_rng)),
      meter_(topo.num_datacenters()),
      metrics_(metrics) {
  if (metrics != nullptr) {
    m_flows_started_ = &metrics->counter("netsim.flows_started");
    m_flows_completed_ = &metrics->counter("netsim.flows_completed");
    m_flows_cancelled_ = &metrics->counter("netsim.flows_cancelled");
    m_wan_stalls_ = &metrics->counter("netsim.wan_stalls");
    m_rate_recomputes_ = &metrics->counter("netsim.rate_recomputes");
    m_solver_flows_ = &metrics->counter("netsim.solver_flows");
    m_reschedules_ = &metrics->counter("netsim.flow_reschedules");
    m_starvation_guards_ = &metrics->counter("netsim.starvation_guards");
    m_parallel_solves_ = &metrics->counter("netsim.parallel_solves");
    m_active_flows_ = &metrics->gauge("netsim.active_flows");
    // 1 KiB .. 4 GiB in x4 steps; shuffle blocks land mid-range.
    const std::vector<double> bounds = ExponentialBounds(1024, 4, 12);
    m_fetch_bytes_ = &metrics->histogram("netsim.fetch_flow_bytes", bounds);
    m_push_bytes_ = &metrics->histogram("netsim.push_flow_bytes", bounds);
  }
  const std::size_t num_res =
      2 * static_cast<std::size_t>(topo_.num_nodes()) + topo_.num_wan_links();
  capacity_.resize(num_res);
  for (NodeIndex n = 0; n < topo_.num_nodes(); ++n) {
    capacity_[UplinkRes(n)] = topo_.node(n).nic_rate;
    capacity_[DownlinkRes(n)] = topo_.node(n).nic_rate;
  }
  wan_current_.resize(topo_.num_wan_links());
  degrade_.assign(topo_.num_wan_links(), 1.0);
  for (int l = 0; l < topo_.num_wan_links(); ++l) {
    wan_current_[l] = topo_.wan_link(l).base_rate;
    capacity_[WanRes(l)] = wan_current_[l];
  }
  res_comp_.assign(num_res, -1);
  res_dirty_token_.assign(num_res, 0);
  rem_cap_.assign(num_res, 0.0);
  res_count_.assign(num_res, 0);
  res_row_.assign(num_res, 0);
  id_to_slot_.push_back(-1);  // FlowId 0 is never issued
}

std::int32_t Network::AllocSlot() {
  if (!free_slots_.empty()) {
    const std::int32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slab_.emplace_back();
  return static_cast<std::int32_t>(slab_.size()) - 1;
}

void Network::FreeSlot(std::int32_t slot) {
  Flow& f = slab_[static_cast<std::size_t>(slot)];
  id_to_slot_[static_cast<std::size_t>(f.id)] = -1;
  f.started = false;
  f.on_complete = nullptr;
  f.completion_event = EventHandle{};
  free_slots_.push_back(slot);
  --tracked_flows_;
}

FlowId Network::StartFlow(NodeIndex src, NodeIndex dst, Bytes bytes,
                          FlowKind kind, CompletionFn on_complete) {
  GS_CHECK(src >= 0 && src < topo_.num_nodes());
  GS_CHECK(dst >= 0 && dst < topo_.num_nodes());
  GS_CHECK(bytes >= 0);
  GS_CHECK(on_complete != nullptr);

  const FlowId id = next_flow_id_++;
  const DcIndex src_dc = topo_.dc_of(src);
  const DcIndex dst_dc = topo_.dc_of(dst);

  meter_.Record(src_dc, dst_dc, kind, bytes);
  if (m_flows_started_ != nullptr) {
    m_flows_started_->Add(1);
    if (kind == FlowKind::kShuffleFetch) {
      m_fetch_bytes_->Observe(static_cast<double>(bytes));
    } else if (kind == FlowKind::kShufflePush) {
      m_push_bytes_->Observe(static_cast<double>(bytes));
    }
  }

  const std::int32_t slot = AllocSlot();
  GS_CHECK(static_cast<std::size_t>(id) == id_to_slot_.size());
  id_to_slot_.push_back(slot);
  ++tracked_flows_;
  Flow& f = slab_[static_cast<std::size_t>(slot)];
  f.started = false;
  f.nres = 0;
  f.res[0] = f.res[1] = f.res[2] = -1;
  f.contend_seq = -1;
  f.rate = 0;
  f.rate_cap = 0;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.kind = kind;
  f.remaining = static_cast<double>(bytes);
  f.total = bytes;
  f.created_at = sim_.Now();
  f.last_update = sim_.Now();
  f.wan_link = -1;
  f.attributed = 0;
  f.on_complete = std::move(on_complete);

  if (src == dst) {
    // Loopback: consumes no network resources and completes after a fixed
    // local latency, but it is metered (on the intra-DC diagonal), counted
    // and tracked like any other flow so byte conservation and flow
    // accounting hold, and CancelFlow on its id behaves normally. It never
    // sets `started`, so rate sharing and progress advancement skip it.
    f.completion_event = sim_.Schedule(Millis(0.1), [this, id] {
      const std::int32_t s = SlotOf(id);
      if (s < 0) return;  // cancelled before loopback latency
      FinishFlow(s);
      ScheduleDeferredReconfigure();
    });
    if (m_active_flows_ != nullptr) {
      m_active_flows_->Set(tracked_flows_);
    }
    return id;
  }

  CatchUpJitter();
  f.res[f.nres++] = static_cast<std::int32_t>(UplinkRes(src));
  SimTime setup = topo_.rtt(src_dc, dst_dc) / 2;
  if (src_dc != dst_dc) {
    int link = topo_.wan_link_index(src_dc, dst_dc);
    GS_CHECK_MSG(link >= 0, "no WAN link " << src_dc << "->" << dst_dc);
    f.res[f.nres++] = static_cast<std::int32_t>(WanRes(link));
    // Single-connection TCP ceiling and occasional stalls on WAN paths.
    const WanLinkSpec& spec = topo_.wan_link(link);
    double eff = jitter_rng_.Uniform(config_.wan_flow_efficiency_min, 1.0);
    f.rate_cap = eff * spec.base_rate;
    if (config_.wan_stall_prob > 0 &&
        jitter_rng_.Bernoulli(config_.wan_stall_prob)) {
      setup += jitter_rng_.Uniform(config_.wan_stall_min,
                                   config_.wan_stall_max);
      if (m_wan_stalls_ != nullptr) m_wan_stalls_->Add(1);
    }
    f.wan_link = link;
  }
  f.res[f.nres++] = static_cast<std::int32_t>(DownlinkRes(dst));
  if (m_active_flows_ != nullptr) {
    m_active_flows_->Set(tracked_flows_);
  }

  // Connection setup: the flow begins contending after one-way latency
  // (plus any stall). Entering contention perturbs exactly the flow's own
  // resources; the batched reconfigure re-shares those components once per
  // instant, however many flows arrive together.
  sim_.Schedule(setup, [this, id] {
    const std::int32_t s = SlotOf(id);
    if (s < 0) return;  // cancelled during setup
    Flow& flow = slab_[static_cast<std::size_t>(s)];
    flow.started = true;
    flow.last_update = sim_.Now();
    flow.contend_seq = next_contend_seq_++;
    AddFlowToComponent(s);
    MarkFlowResourcesDirty(flow);
    ScheduleDeferredReconfigure();
  });
  MaintainJitterEvent();
  return id;
}

int Network::AddServiceResource(Rate capacity) {
  GS_CHECK_MSG(next_flow_id_ == 1,
               "service resources must be registered before any flow starts");
  GS_CHECK_MSG(std::isfinite(capacity) && capacity > 0,
               "service resource capacity must be positive and finite, got "
                   << capacity);
  const int idx = static_cast<int>(capacity_.size());
  capacity_.push_back(capacity);
  res_comp_.push_back(-1);
  res_dirty_token_.push_back(0);
  rem_cap_.push_back(0.0);
  res_count_.push_back(0);
  res_row_.push_back(0);
  return idx;
}

FlowId Network::StartFlow(const FlowSpec& spec, CompletionFn on_complete) {
  GS_CHECK(spec.src >= 0 && spec.src < topo_.num_nodes());
  GS_CHECK(spec.dst >= 0 && spec.dst < topo_.num_nodes());
  GS_CHECK(spec.bytes >= 0);
  GS_CHECK(on_complete != nullptr);
  GS_CHECK_MSG(spec.service_res < 0 ||
                   (spec.service_res >= FirstServiceRes() &&
                    spec.service_res < static_cast<int>(capacity_.size())),
               "bad service resource index " << spec.service_res);
  GS_CHECK(spec.rate_cap >= 0 && std::isfinite(spec.rate_cap));
  GS_CHECK(spec.extra_setup >= 0 && std::isfinite(spec.extra_setup));

  const FlowId id = next_flow_id_++;
  const DcIndex src_dc = topo_.dc_of(spec.src);
  const DcIndex dst_dc = topo_.dc_of(spec.dst);

  meter_.Record(src_dc, dst_dc, spec.kind, spec.bytes);
  if (m_flows_started_ != nullptr) {
    m_flows_started_->Add(1);
    if (spec.kind == FlowKind::kShuffleFetch) {
      m_fetch_bytes_->Observe(static_cast<double>(spec.bytes));
    } else if (spec.kind == FlowKind::kShufflePush) {
      m_push_bytes_->Observe(static_cast<double>(spec.bytes));
    }
  }

  const std::int32_t slot = AllocSlot();
  GS_CHECK(static_cast<std::size_t>(id) == id_to_slot_.size());
  id_to_slot_.push_back(slot);
  ++tracked_flows_;
  Flow& f = slab_[static_cast<std::size_t>(slot)];
  f.started = false;
  f.nres = 0;
  f.res[0] = f.res[1] = f.res[2] = -1;
  f.contend_seq = -1;
  f.rate = 0;
  f.rate_cap = spec.rate_cap;
  f.id = id;
  f.src = spec.src;
  f.dst = spec.dst;
  f.kind = spec.kind;
  f.remaining = static_cast<double>(spec.bytes);
  f.total = spec.bytes;
  f.created_at = sim_.Now();
  f.last_update = sim_.Now();
  f.wan_link = -1;
  f.attributed = 0;
  f.on_complete = std::move(on_complete);

  CatchUpJitter();
  SimTime setup = topo_.rtt(src_dc, dst_dc) / 2 + spec.extra_setup;
  if (spec.src_uplink && spec.src != spec.dst) {
    f.res[f.nres++] = static_cast<std::int32_t>(UplinkRes(spec.src));
  }
  if (src_dc != dst_dc) {
    int link = topo_.wan_link_index(src_dc, dst_dc);
    GS_CHECK_MSG(link >= 0, "no WAN link " << src_dc << "->" << dst_dc);
    f.res[f.nres++] = static_cast<std::int32_t>(WanRes(link));
    // Same single-connection TCP ceiling and stall model as the plain
    // overload; an explicit spec cap composes as the tighter of the two.
    const WanLinkSpec& lspec = topo_.wan_link(link);
    double eff = jitter_rng_.Uniform(config_.wan_flow_efficiency_min, 1.0);
    const Rate tcp_cap = eff * lspec.base_rate;
    f.rate_cap = f.rate_cap > 0 ? std::min(f.rate_cap, tcp_cap) : tcp_cap;
    if (config_.wan_stall_prob > 0 &&
        jitter_rng_.Bernoulli(config_.wan_stall_prob)) {
      setup += jitter_rng_.Uniform(config_.wan_stall_min,
                                   config_.wan_stall_max);
      if (m_wan_stalls_ != nullptr) m_wan_stalls_->Add(1);
    }
    f.wan_link = link;
  }
  if (spec.dst_downlink && spec.src != spec.dst) {
    f.res[f.nres++] = static_cast<std::int32_t>(DownlinkRes(spec.dst));
  }
  if (spec.service_res >= 0) {
    GS_CHECK_MSG(f.nres < 3, "flow spec composes more than 3 resources");
    f.res[f.nres++] = static_cast<std::int32_t>(spec.service_res);
  }
  if (m_active_flows_ != nullptr) {
    m_active_flows_->Set(tracked_flows_);
  }

  if (f.nres == 0) {
    // No shared resource to contend for: complete after loopback latency,
    // exactly like the plain overload's src == dst path.
    f.completion_event = sim_.Schedule(Millis(0.1), [this, id] {
      const std::int32_t s = SlotOf(id);
      if (s < 0) return;  // cancelled before loopback latency
      FinishFlow(s);
      ScheduleDeferredReconfigure();
    });
    return id;
  }

  sim_.Schedule(setup, [this, id] {
    const std::int32_t s = SlotOf(id);
    if (s < 0) return;  // cancelled during setup
    Flow& flow = slab_[static_cast<std::size_t>(s)];
    flow.started = true;
    flow.last_update = sim_.Now();
    flow.contend_seq = next_contend_seq_++;
    AddFlowToComponent(s);
    MarkFlowResourcesDirty(flow);
    ScheduleDeferredReconfigure();
  });
  MaintainJitterEvent();
  return id;
}

void Network::CancelFlow(FlowId id) {
  const std::int32_t slot = SlotOf(id);
  if (slot < 0) return;
  Flow& f = slab_[static_cast<std::size_t>(slot)];
  // Advance to Now() first so the bytes actually moved are attributed at
  // their real times, then settle the never-to-be-sent remainder here: the
  // meter charged the full size at start, and conservation must hold.
  AdvanceFlow(f, sim_.Now());
  SettleFlowResidual(f);
  f.completion_event.Cancel();
  if (f.started) {
    MarkFlowResourcesDirty(f);
    // Drop contention before the component update: a rebuild triggered by
    // this departure must not re-insert the dying flow.
    f.started = false;
    RemoveFlowFromComponent(f);
  }
  FreeSlot(slot);
  if (m_flows_cancelled_ != nullptr) m_flows_cancelled_->Add(1);
  if (m_active_flows_ != nullptr) {
    m_active_flows_->Set(tracked_flows_);
  }
  // Synchronous: callers observe the re-shared rates immediately.
  Reconfigure();
}

MulticastId Network::StartMulticastFlow(NodeIndex src,
                                        const std::vector<NodeIndex>& dsts,
                                        Bytes bytes, FlowKind kind,
                                        CompletionFn on_complete) {
  GS_CHECK(on_complete != nullptr);
  GS_CHECK_MSG(!dsts.empty(), "multicast needs at least one destination");
  // One leg per distinct receiving datacenter, received by the first node
  // listed for that DC; same-DC peers read the packet locally. Legs are
  // ordinary flows — max-min sharing, metering, utilization attribution
  // and RNG draws (TCP efficiency, stalls) all follow the unicast path in
  // the deterministic `dsts` order.
  std::vector<NodeIndex> receivers;
  for (NodeIndex dst : dsts) {
    GS_CHECK(dst >= 0 && dst < topo_.num_nodes());
    const DcIndex dc = topo_.dc_of(dst);
    bool seen = false;
    for (NodeIndex r : receivers) seen = seen || topo_.dc_of(r) == dc;
    if (!seen) receivers.push_back(dst);
  }
  EnsureMulticastMetrics();
  const MulticastId id = next_multicast_id_++;
  MulticastGroup& group = multicasts_[id];
  group.outstanding = static_cast<int>(receivers.size());
  group.on_complete = std::move(on_complete);
  group.legs.reserve(receivers.size());
  for (NodeIndex dst : receivers) {
    group.legs.push_back(StartFlow(src, dst, bytes, kind,
                                   [this, id] { OnMulticastLegDone(id); }));
  }
  if (m_multicasts_started_ != nullptr) {
    m_multicasts_started_->Add(1);
    m_multicast_legs_->Add(static_cast<std::int64_t>(receivers.size()));
  }
  return id;
}

void Network::OnMulticastLegDone(MulticastId id) {
  auto it = multicasts_.find(id);
  if (it == multicasts_.end()) return;  // group cancelled meanwhile
  if (--it->second.outstanding > 0) return;
  CompletionFn done = std::move(it->second.on_complete);
  multicasts_.erase(it);
  if (m_multicasts_completed_ != nullptr) m_multicasts_completed_->Add(1);
  done();
}

void Network::CancelMulticastFlow(MulticastId id) {
  auto it = multicasts_.find(id);
  if (it == multicasts_.end()) return;
  // Erase before cancelling the legs so the group callback can never fire
  // for a half-cancelled group. Legs that already completed are inert ids
  // and CancelFlow ignores them.
  std::vector<FlowId> legs = std::move(it->second.legs);
  multicasts_.erase(it);
  for (FlowId leg : legs) CancelFlow(leg);
  if (m_multicasts_cancelled_ != nullptr) m_multicasts_cancelled_->Add(1);
}

void Network::EnsureMulticastMetrics() {
  if (metrics_ == nullptr || m_multicasts_started_ != nullptr) return;
  // Registered on first use: a registry snapshot lands verbatim in the
  // RunReport, so unconditional registration would perturb every golden
  // report of runs that never multicast.
  m_multicasts_started_ = &metrics_->counter("netsim.multicasts_started");
  m_multicasts_completed_ = &metrics_->counter("netsim.multicasts_completed");
  m_multicasts_cancelled_ = &metrics_->counter("netsim.multicasts_cancelled");
  m_multicast_legs_ = &metrics_->counter("netsim.multicast_legs");
}

Rate Network::flow_rate(FlowId id) const {
  const std::int32_t slot = SlotOf(id);
  return slot < 0 ? 0 : slab_[static_cast<std::size_t>(slot)].rate;
}

Rate Network::wan_capacity(DcIndex src, DcIndex dst) {
  CatchUpJitter();
  int link = topo_.wan_link_index(src, dst);
  GS_CHECK(link >= 0);
  return wan_current_[link] * degrade_[link];
}

Rate Network::EstimateWanBandwidth(DcIndex src, DcIndex dst, SimTime window) {
  CatchUpJitter();
  const int link = topo_.wan_link_index(src, dst);
  GS_CHECK(link >= 0);
  const Rate current = wan_current_[link] * degrade_[link];
  // Every return path goes through the same clamp: at least the 5%
  // headroom floor, and never 0 or non-finite — a full outage (degrade
  // factor 0) collapses the floor itself to 0, and placement policies
  // divide by this estimate, so an absolute 1 B/s backstop keeps their
  // scores finite and comparable.
  const auto clamp = [current](Rate r) {
    const Rate floor = std::max(0.05 * current, Rate{1});
    return std::isfinite(r) ? std::max(r, floor) : floor;
  };
  if (util_ == nullptr || window <= 0) return clamp(current);
  const SimTime width = util_->bucket_width();
  const std::vector<Bytes>& buckets = util_->buckets(link);
  if (width <= 0 || buckets.empty()) return clamp(current);

  // Exponentially decayed average of the delivered throughput over the
  // trailing window: a bucket `span` buckets old weighs half as much as
  // the current one, buckets beyond the window are dropped entirely.
  const auto span = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(window / width));
  const std::int64_t now_bucket = util_->BucketOf(sim_.Now());
  const std::int64_t first = std::max<std::int64_t>(0, now_bucket - span);
  double weighted_rate = 0;
  double weight = 0;
  for (std::int64_t b = first;
       b <= now_bucket && b < static_cast<std::int64_t>(buckets.size());
       ++b) {
    const double age = static_cast<double>(now_bucket - b);
    const double w = std::exp2(-age / static_cast<double>(span));
    weighted_rate +=
        w * (static_cast<double>(buckets[static_cast<std::size_t>(b)]) /
             width);
    weight += w;
  }
  if (weight <= 0) return clamp(current);
  const Rate delivered = weighted_rate / weight;
  // Headroom estimate: what remains once the measured load keeps flowing.
  // The 5% floor keeps a fully saturated (but healthy) link distinguishable
  // from a degraded one.
  return clamp(current - delivered);
}

void Network::SetWanDegradation(DcIndex src, DcIndex dst, double factor) {
  GS_CHECK(factor >= 0);
  int link = topo_.wan_link_index(src, dst);
  GS_CHECK_MSG(link >= 0, "no WAN link " << src << "->" << dst);
  degrade_[link] = factor;
  capacity_[WanRes(link)] = wan_current_[link] * factor;
  MarkResDirty(WanRes(link));
  // Re-share bandwidth right away: flows on the link slow down (or stall
  // at factor 0) and their completion events move accordingly.
  Reconfigure();
}

void Network::MarkResDirty(int r) {
  if (res_dirty_token_[r] == dirty_token_) return;
  res_dirty_token_[r] = dirty_token_;
  dirty_res_.push_back(r);
}

void Network::MarkFlowResourcesDirty(const Flow& f) {
  for (int j = 0; j < f.nres; ++j) MarkResDirty(f.res[j]);
}

void Network::ScheduleDeferredReconfigure() {
  if (reconfigure_pending_) return;
  reconfigure_pending_ = true;
  sim_.Schedule(0, [this] {
    reconfigure_pending_ = false;
    Reconfigure();
  });
}

// ---------------------------------------------------------------------------
// Component maintenance
// ---------------------------------------------------------------------------

int Network::AllocComponent() {
  if (!comp_free_.empty()) {
    const int c = comp_free_.back();
    comp_free_.pop_back();
    comps_[static_cast<std::size_t>(c)].free = false;
    return c;
  }
  comps_.emplace_back();
  comps_.back().free = false;
  return static_cast<int>(comps_.size()) - 1;
}

void Network::ReleaseComponent(int c) {
  Component& comp = comps_[static_cast<std::size_t>(c)];
  for (const std::int32_t r : comp.resources) res_comp_[r] = -1;
  comp.entries.clear();
  comp.resources.clear();
  comp.live = 0;
  comp.removed_since_rebuild = 0;
  comp.dirty_token = 0;
  comp.free = true;
  comp_free_.push_back(c);
}

void Network::AddFlowToComponent(std::int32_t slot) {
  Flow& f = slab_[static_cast<std::size_t>(slot)];
  int target = -1;
  for (int j = 0; j < f.nres; ++j) {
    const int c = res_comp_[f.res[j]];
    if (c < 0 || c == target) continue;
    target = target < 0 ? c : MergeComponents(target, c);
  }
  if (target < 0) target = AllocComponent();
  Component& comp = comps_[static_cast<std::size_t>(target)];
  for (int j = 0; j < f.nres; ++j) {
    const std::int32_t r = f.res[j];
    if (res_comp_[r] != target) {
      res_comp_[r] = target;
      comp.resources.push_back(r);
    }
  }
  // contend_seq is globally monotone, so appending keeps entries sorted.
  comp.entries.push_back(CompEntry{slot, f.contend_seq});
  ++comp.live;
}

int Network::MergeComponents(int a, int b) {
  if (comps_[static_cast<std::size_t>(a)].entries.size() <
      comps_[static_cast<std::size_t>(b)].entries.size()) {
    std::swap(a, b);
  }
  Component& big = comps_[static_cast<std::size_t>(a)];
  Component& small = comps_[static_cast<std::size_t>(b)];
  // Order-preserving small-into-large merge: both lists are sorted by
  // contend_seq, so the union stays in contention order and every flow is
  // moved O(log n) times over its lifetime.
  merge_scratch_.clear();
  merge_scratch_.reserve(big.entries.size() + small.entries.size());
  std::merge(big.entries.begin(), big.entries.end(), small.entries.begin(),
             small.entries.end(), std::back_inserter(merge_scratch_),
             [](const CompEntry& x, const CompEntry& y) {
               return x.seq < y.seq;
             });
  big.entries.swap(merge_scratch_);
  for (const std::int32_t r : small.resources) {
    res_comp_[r] = a;
    big.resources.push_back(r);
  }
  big.live += small.live;
  big.removed_since_rebuild += small.removed_since_rebuild;
  small.entries.clear();
  small.resources.clear();
  small.live = 0;
  small.removed_since_rebuild = 0;
  small.dirty_token = 0;
  small.free = true;
  comp_free_.push_back(b);
  return a;
}

void Network::RemoveFlowFromComponent(const Flow& f) {
  const int c = res_comp_[f.res[0]];
  GS_CHECK(c >= 0);
  Component& comp = comps_[static_cast<std::size_t>(c)];
  --comp.live;
  ++comp.removed_since_rebuild;
  if (comp.live == 0) {
    ReleaseComponent(c);
  } else if (comp.removed_since_rebuild >= kRebuildMinRemovals &&
             comp.removed_since_rebuild >= comp.live) {
    RebuildComponent(c);
  }
}

void Network::RebuildComponent(int c) {
  // Unions only ever grow while flows live; a departure may have split the
  // component in reality while the union still covers both halves. Solving
  // a stale superset is bitwise-harmless (disjoint sub-components solve
  // independently, so every unperturbed flow reproduces its old rate and
  // is skipped) but wastes work, so after enough departures the component
  // is torn down and its live flows re-inserted in contention order —
  // re-unioning into however many real components remain.
  rebuild_entries_.clear();
  for (const CompEntry e : comps_[static_cast<std::size_t>(c)].entries) {
    if (EntryFlow(e) != nullptr) rebuild_entries_.push_back(e);
  }
  ReleaseComponent(c);
  for (const CompEntry e : rebuild_entries_) AddFlowToComponent(e.slot);
}

// ---------------------------------------------------------------------------
// Rate solving
// ---------------------------------------------------------------------------

void Network::FreezeOne(SolveScratch& s, int idx, Rate rate) {
  s.new_rate[static_cast<std::size_t>(idx)] = rate;
  s.frozen[static_cast<std::size_t>(idx)] = 1;
  for (int j = 0; j < 3; ++j) {
    const std::int32_t r = s.res[static_cast<std::size_t>(3 * idx + j)];
    if (r < 0) continue;
    rem_cap_[r] -= rate;
    // Epsilon floor: rounding must never leave a resource with negative
    // remaining capacity, or its (negative) share would win every later
    // bottleneck scan and freeze whole flow sets at rate zero.
    if (rem_cap_[r] < 0) rem_cap_[r] = 0;
    --res_count_[r];
    const std::int32_t row = res_row_[r];
    if (!s.changed_mark[static_cast<std::size_t>(row)]) {
      s.changed_mark[static_cast<std::size_t>(row)] = 1;
      s.changed.push_back(r);
    }
  }
}

void Network::PushChangedShares(SolveScratch& s) {
  // One heap push per distinct perturbed resource per filling step, not
  // one per frozen flow: intermediate shares would fail validate-on-pop
  // anyway, so only the final value of the step needs to be present.
  for (const std::int32_t r : s.changed) {
    s.changed_mark[static_cast<std::size_t>(res_row_[r])] = 0;
    if (res_count_[r] > 0) {
      s.share_heap.emplace_back(rem_cap_[r] / res_count_[r], r);
      std::push_heap(s.share_heap.begin(), s.share_heap.end(), HeapLater{});
    }
  }
  s.changed.clear();
}

void Network::SolveComponent(int c, SolveScratch& s) {
  Component& comp = comps_[static_cast<std::size_t>(c)];
  s.slots.clear();
  s.old_rate.clear();
  s.cap_heap.clear();
  s.share_heap.clear();
  s.res.clear();
  s.row_res.clear();
  s.changed.clear();
  s.starvation_guards = 0;

  // Stream the component's flows into a struct-of-arrays view, compacting
  // stale entries (finished/cancelled flows) in place. Slab fields read
  // here are written only between solve waves, so concurrent component
  // solves read them safely.
  std::size_t kept = 0;
  for (const CompEntry e : comp.entries) {
    const Flow* f = EntryFlow(e);
    if (f == nullptr) continue;
    comp.entries[kept++] = e;
    s.slots.push_back(e.slot);
    s.old_rate.push_back(f->rate);
    if (f->rate_cap > 0) {
      // Each capped flow gets a virtual resource holding only itself (its
      // single-connection TCP ceiling). Uncapped flows would have an
      // infinite share — never the bottleneck, so they are not enqueued.
      s.cap_heap.emplace_back(f->rate_cap,
                              static_cast<int>(s.slots.size()) - 1);
    }
    s.res.push_back(f->res[0]);
    s.res.push_back(f->res[1]);
    s.res.push_back(f->res[2]);
  }
  comp.entries.resize(kept);
  const int n = static_cast<int>(s.slots.size());
  s.new_rate.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return;

  // Per-resource tallies live in arrays indexed by resource id; distinct
  // components own disjoint resources, so concurrent solves never write
  // the same element.
  for (const std::int32_t r : comp.resources) {
    rem_cap_[r] = capacity_[r];
    res_count_[r] = 0;
  }
  for (const std::int32_t r : s.res) {
    if (r >= 0) ++res_count_[r];
  }
  std::int32_t rows = 0;
  for (const std::int32_t r : comp.resources) {
    if (res_count_[r] > 0) {
      res_row_[r] = rows++;
      s.row_res.push_back(r);
    }
  }
  // CSR member lists, filled in contention order.
  s.offsets.assign(static_cast<std::size_t>(rows) + 1, 0);
  for (const std::int32_t r : s.res) {
    if (r >= 0) ++s.offsets[static_cast<std::size_t>(res_row_[r]) + 1];
  }
  for (std::int32_t row = 0; row < rows; ++row) {
    s.offsets[static_cast<std::size_t>(row) + 1] +=
        s.offsets[static_cast<std::size_t>(row)];
  }
  s.cursor.assign(s.offsets.begin(), s.offsets.end() - 1);
  s.members.resize(static_cast<std::size_t>(s.offsets[rows]));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 3; ++j) {
      const std::int32_t r = s.res[static_cast<std::size_t>(3 * i + j)];
      if (r < 0) continue;
      s.members[static_cast<std::size_t>(s.cursor[res_row_[r]]++)] = i;
    }
  }
  s.changed_mark.assign(static_cast<std::size_t>(rows), 0);

  for (const std::int32_t r : s.row_res) {
    s.share_heap.emplace_back(rem_cap_[r] / res_count_[r], r);
  }
  std::make_heap(s.share_heap.begin(), s.share_heap.end(), HeapLater{});
  std::make_heap(s.cap_heap.begin(), s.cap_heap.end(), HeapLater{});
  s.frozen.assign(static_cast<std::size_t>(n), 0);

  // Progressive filling with lazy heaps: entries are invalidated by later
  // freezes rather than updated in place, and validated on pop — a stale
  // real-resource entry is one whose stored share no longer equals the
  // resource's current fair share.
  int unfrozen = n;
  while (unfrozen > 0) {
    int best_res = -1;
    double best_share = 0;
    while (!s.share_heap.empty()) {
      const auto [share, r] = s.share_heap.front();
      if (res_count_[r] > 0 && share == rem_cap_[r] / res_count_[r]) {
        best_res = r;
        best_share = share;
        break;
      }
      std::pop_heap(s.share_heap.begin(), s.share_heap.end(), HeapLater{});
      s.share_heap.pop_back();
    }
    while (!s.cap_heap.empty() &&
           s.frozen[static_cast<std::size_t>(s.cap_heap.front().second)]) {
      std::pop_heap(s.cap_heap.begin(), s.cap_heap.end(), HeapLater{});
      s.cap_heap.pop_back();
    }
    if (best_res < 0 && s.cap_heap.empty()) break;  // every flow frozen-able

    if (!s.cap_heap.empty() &&
        (best_res < 0 || s.cap_heap.front().first < best_share)) {
      // A TCP ceiling is the strict bottleneck: freeze just that flow.
      const auto [cap, idx] = s.cap_heap.front();
      std::pop_heap(s.cap_heap.begin(), s.cap_heap.end(), HeapLater{});
      s.cap_heap.pop_back();
      FreezeOne(s, idx, cap);
      --unfrozen;
      PushChangedShares(s);
      continue;
    }

    double share = std::max(best_share, 0.0);
    if (share <= 0 && capacity_[best_res] > 0) {
      share = capacity_[best_res] * kStarvationRateFraction;
      ++s.starvation_guards;
    }
    const std::int32_t row = res_row_[best_res];
    for (std::int32_t k = s.offsets[static_cast<std::size_t>(row)];
         k < s.offsets[static_cast<std::size_t>(row) + 1]; ++k) {
      const int idx = s.members[static_cast<std::size_t>(k)];
      if (s.frozen[static_cast<std::size_t>(idx)]) continue;
      FreezeOne(s, idx, share);
      --unfrozen;
    }
    PushChangedShares(s);
  }
}

void Network::SolveAndApply(SimTime now) {
  const std::size_t n = dirty_comps_.size();
  while (scratch_.size() < n) {
    scratch_.push_back(std::make_unique<SolveScratch>());
  }

  struct SolveJob {
    Network* net;
    int comp;
    SolveScratch* scratch;
    void operator()() const { net->SolveComponent(comp, *scratch); }
  };
  const bool pool_on = pool_ != nullptr && config_.parallel_solver && n >= 2 &&
                       (config_.force_parallel_solver ||
                        pool_->num_threads() > 1);
  std::vector<SolveJob> jobs;
  std::vector<std::size_t> offloaded;  // indices into dirty_comps_
  if (pool_on) {
    for (std::size_t i = 0; i < n; ++i) {
      const Component& comp =
          comps_[static_cast<std::size_t>(dirty_comps_[i])];
      if (config_.force_parallel_solver ||
          comp.entries.size() >=
              static_cast<std::size_t>(config_.parallel_min_component_flows)) {
        jobs.push_back(SolveJob{this, dirty_comps_[i], scratch_[i].get()});
        offloaded.push_back(i);
      }
    }
  }
  if (offloaded.size() >= 2) {
    // Components are independent (disjoint flows and resources; solves
    // write only their scratch and their own per-resource array entries),
    // so the wave runs concurrently; small components run inline on the
    // event thread while the pool churns through the large ones.
    if (m_parallel_solves_ != nullptr) m_parallel_solves_->Add(1);
    auto futures = pool_->SubmitBatch(std::move(jobs));
    std::size_t next_offloaded = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (next_offloaded < offloaded.size() &&
          offloaded[next_offloaded] == i) {
        ++next_offloaded;
        continue;
      }
      SolveComponent(dirty_comps_[i], *scratch_[i]);
    }
    for (auto& fut : futures) fut.get();
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      SolveComponent(dirty_comps_[i], *scratch_[i]);
    }
  }

  // Apply results in dirty-collection order — fixed by event history, not
  // by which thread solved what — so completion events are (re)created in
  // a deterministic sequence and FIFO tie-breaking is reproducible.
  for (std::size_t i = 0; i < n; ++i) {
    SolveScratch& s = *scratch_[i];
    const std::size_t m = s.slots.size();
    if (m_solver_flows_ != nullptr) {
      m_solver_flows_->Add(static_cast<std::int64_t>(m));
    }
    if (m_starvation_guards_ != nullptr && s.starvation_guards > 0) {
      m_starvation_guards_->Add(s.starvation_guards);
    }
    for (std::size_t j = 0; j < m; ++j) {
      const Rate rate = s.new_rate[j];
      // Exactness of the reschedule skip: `remaining` and `last_update`
      // only change when the rate changes (AdvanceFlow below) or when the
      // completion event itself fires. So if the solve reproduced the old
      // rate, the pending event's absolute time was computed from exactly
      // the same (remaining, last_update, rate) triple that is current
      // now — cancelling and rescheduling would rebuild the identical
      // double. Skipping it changes no observable behavior, only queue
      // churn.
      if (rate == s.old_rate[j]) continue;
      Flow& f = slab_[static_cast<std::size_t>(s.slots[j])];
      AdvanceFlow(f, now);
      f.rate = rate;
      f.completion_event.Cancel();
      if (rate > 0) ScheduleCompletion(f, now);
    }
  }
}

void Network::AdvanceFlow(Flow& f, SimTime now) {
  if (now <= f.last_update) return;
  AttributeFlowProgress(f, f.last_update, now);
  f.remaining -= f.rate * (now - f.last_update);
  if (f.remaining < 0) f.remaining = 0;  // floating-point overshoot
  f.last_update = now;
}

void Network::ScheduleCompletion(Flow& f, SimTime now) {
  const SimTime when = now + f.remaining / f.rate;
  if (when <= now) {
    // remaining/rate underflowed the clock's resolution at `now` (a
    // fast service tier can drain a sub-byte residue in less than one
    // ulp of simulated time): the fluid finish is indistinguishable
    // from this instant. Snap the residue so the deadline settles the
    // flow instead of respinning a zero-progress event forever.
    f.remaining = 0;
  }
  if (!std::isfinite(when)) {
    // A starvation-guard-level rate can overflow remaining/rate to
    // infinity. An infinite deadline would corrupt the clock when it
    // fires; treat the flow as stalled instead — it resumes when the next
    // perturbation re-rates its component.
    f.rate = 0;
    if (m_starvation_guards_ != nullptr) m_starvation_guards_->Add(1);
    return;
  }
  const FlowId id = f.id;
  f.completion_event =
      sim_.ScheduleAt(when, [this, id] { OnFlowDeadline(id); });
  if (m_reschedules_ != nullptr) m_reschedules_->Add(1);
}

void Network::Reconfigure() {
  CatchUpJitter();
  const SimTime now = sim_.Now();
  if (!dirty_res_.empty()) {
    if (m_rate_recomputes_ != nullptr) m_rate_recomputes_->Add(1);
    // Collect the components containing dirty resources, deduplicated, in
    // mark order (deterministic event history).
    ++solve_token_;
    dirty_comps_.clear();
    for (const int r : dirty_res_) {
      const int c = res_comp_[r];
      if (c < 0) continue;  // no live flows on this resource
      Component& comp = comps_[static_cast<std::size_t>(c)];
      if (comp.dirty_token == solve_token_) continue;
      comp.dirty_token = solve_token_;
      dirty_comps_.push_back(c);
    }
    dirty_res_.clear();
    ++dirty_token_;  // retires all current dirty marks
    if (!dirty_comps_.empty()) SolveAndApply(now);
  }
  if (!pending_resched_.empty()) {
    // Flows whose deadline fired with residue left (rounding moved the
    // fluid finish past the predicted instant) but whose rate did not
    // change in the solve above: re-derive their completion event from
    // the advanced remainder.
    for (const FlowId id : pending_resched_) {
      const std::int32_t slot = SlotOf(id);
      if (slot < 0) continue;
      Flow& f = slab_[static_cast<std::size_t>(slot)];
      if (f.rate > 0 && !f.completion_event.pending()) {
        AdvanceFlow(f, now);
        ScheduleCompletion(f, now);
      }
    }
    pending_resched_.clear();
  }
  MaintainJitterEvent();
}

void Network::OnFlowDeadline(FlowId id) {
  const std::int32_t slot = SlotOf(id);
  if (slot < 0) return;
  Flow& f = slab_[static_cast<std::size_t>(slot)];
  AdvanceFlow(f, sim_.Now());
  if (f.remaining <= kByteEpsilon) {
    // Snap sub-epsilon residue to zero so the flow's progress is exact by
    // the time it is settled; SettleFlowResidual then attributes the
    // integer remainder and conservation holds bit for bit.
    f.remaining = 0;
    FinishFlow(slot);
  } else {
    pending_resched_.push_back(id);
  }
  // One deferred solve per instant, however many flows finish together.
  ScheduleDeferredReconfigure();
}

void Network::FinishFlow(std::int32_t slot) {
  Flow& f = slab_[static_cast<std::size_t>(slot)];
  SettleFlowResidual(f);
  CompletionFn cb = std::move(f.on_complete);
  f.completion_event.Cancel();
  if (m_flows_completed_ != nullptr) m_flows_completed_->Add(1);
  if (observer_ && f.src != f.dst) {
    observer_(FlowRecord{f.id, f.src, f.dst, f.kind, f.total, f.created_at,
                         sim_.Now()});
  }
  if (f.started) {
    MarkFlowResourcesDirty(f);
    // Drop contention before the component update: a rebuild triggered by
    // this departure must not re-insert the dying flow.
    f.started = false;
    RemoveFlowFromComponent(f);
  }
  FreeSlot(slot);
  if (m_active_flows_ != nullptr) {
    m_active_flows_->Set(tracked_flows_);
  }
  // Run the completion through the simulator so that callbacks observe a
  // consistent network state and cannot reenter Reconfigure mid-loop.
  sim_.Schedule(0, std::move(cb));
}

void Network::EnableUtilization(SimTime bucket_width) {
  util_ = std::make_unique<LinkUtilization>(topo_.num_wan_links(),
                                            bucket_width);
}

void Network::AttributeFlowProgress(Flow& f, SimTime from, SimTime to) {
  if (util_ == nullptr || f.wan_link < 0) return;
  if (f.rate <= 0 || to <= from) return;
  // Cumulative rounding: at each bucket boundary, credit the difference
  // between floor(cumulative fluid progress) and what has been credited so
  // far. Residue carries forward instead of leaking.
  const double done_at_from = static_cast<double>(f.total) - f.remaining;
  const SimTime width = util_->bucket_width();
  std::int64_t bucket = util_->BucketOf(from);
  SimTime cursor = from;
  while (cursor < to) {
    const SimTime bucket_end = static_cast<SimTime>(bucket + 1) * width;
    const SimTime end = std::min(to, bucket_end);
    const double done = done_at_from + f.rate * (end - from);
    const Bytes target = std::min(f.total, static_cast<Bytes>(done));
    if (target > f.attributed) {
      util_->Add(f.wan_link, bucket, target - f.attributed);
      f.attributed = target;
    }
    cursor = end;
    ++bucket;
  }
}

void Network::SettleFlowResidual(Flow& f) {
  if (util_ == nullptr || f.wan_link < 0) return;
  const Bytes residual = f.total - f.attributed;
  if (residual > 0) {
    util_->Add(f.wan_link, util_->BucketOf(sim_.Now()), residual);
    f.attributed = f.total;
  }
}

void Network::CatchUpJitter() {
  if (!JitterEnabled()) return;
  const SimTime now = sim_.Now();
  bool drawn = false;
  while (last_resample_ + config_.jitter_interval <= now) {
    last_resample_ += config_.jitter_interval;
    drawn = true;
    for (int l = 0; l < topo_.num_wan_links(); ++l) {
      const WanLinkSpec& spec = topo_.wan_link(l);
      double deviation = wan_current_[l] - spec.base_rate;
      double fresh = jitter_rng_.Uniform(spec.min_rate, spec.max_rate);
      double next = spec.base_rate + config_.jitter_momentum * deviation +
                    (1 - config_.jitter_momentum) * (fresh - spec.base_rate);
      next = std::clamp(next, static_cast<double>(spec.min_rate),
                        static_cast<double>(spec.max_rate));
      wan_current_[l] = next;
      capacity_[WanRes(l)] = next * degrade_[l];
    }
  }
  if (drawn) {
    for (int l = 0; l < topo_.num_wan_links(); ++l) MarkResDirty(WanRes(l));
  }
}

void Network::MaintainJitterEvent() {
  if (!JitterEnabled()) return;
  if (tracked_flows_ == 0) {
    resample_event_.Cancel();
    return;
  }
  if (resample_event_.pending()) return;
  SimTime next_at = last_resample_ + config_.jitter_interval;
  if (next_at < sim_.Now()) next_at = sim_.Now();
  resample_event_ = sim_.ScheduleAt(next_at, [this] {
    // CatchUpJitter (via Reconfigure) performs the due draw and marks the
    // WAN resources dirty; Reconfigure then re-shares bandwidth under the
    // new capacities.
    Reconfigure();
  });
}

}  // namespace gs
