#include "netsim/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/log.h"

namespace gs {
namespace {

// Flows below this many remaining bytes are considered finished; guards
// against floating-point residue keeping a flow alive forever.
constexpr double kByteEpsilon = 1e-6;

// Starvation guard (satellite bugfix, docs/PERF.md): progressive filling
// subtracts each frozen share from every resource the flow crosses, and
// floating-point rounding can leave a live resource with remaining
// capacity at (or clamped to) exactly zero while unfrozen flows still use
// it. A zero rate means no completion event, and a flow with no completion
// event on an otherwise quiet network is stranded forever. Any share that
// collapses to zero on a resource with real capacity is floored to this
// fraction of the capacity instead — small enough to be irrelevant to any
// measured rate, large enough that the flow keeps a finite deadline.
constexpr double kStarvationRateFraction = 1e-9;

// Min-heap ordering for (value, index) pairs via std::push_heap/pop_heap:
// the front is the smallest value, ties broken toward the smaller index —
// exactly the first-strict-minimum rule of the linear bottleneck scan this
// heap replaces.
struct HeapLater {
  bool operator()(const std::pair<double, int>& a,
                  const std::pair<double, int>& b) const {
    return a > b;
  }
};

}  // namespace

const char* FlowKindName(FlowKind kind) {
  switch (kind) {
    case FlowKind::kShuffleFetch: return "shuffle-fetch";
    case FlowKind::kShufflePush: return "shuffle-push";
    case FlowKind::kCentralize: return "centralize";
    case FlowKind::kCollect: return "collect";
    case FlowKind::kOther: return "other";
  }
  return "unknown";
}

TrafficMeter::TrafficMeter(int num_dcs)
    : num_dcs_(num_dcs),
      pair_bytes_(static_cast<std::size_t>(num_dcs) * num_dcs, 0) {}

void TrafficMeter::Record(DcIndex src, DcIndex dst, FlowKind kind,
                          Bytes bytes) {
  GS_CHECK(src >= 0 && src < num_dcs_ && dst >= 0 && dst < num_dcs_);
  GS_CHECK(bytes >= 0);
  pair_bytes_[static_cast<std::size_t>(src) * num_dcs_ + dst] += bytes;
  if (src != dst) kind_cross_dc_[static_cast<int>(kind)] += bytes;
}

Bytes TrafficMeter::cross_dc_total() const {
  Bytes total = 0;
  for (DcIndex s = 0; s < num_dcs_; ++s) {
    for (DcIndex d = 0; d < num_dcs_; ++d) {
      if (s != d) total += pair_bytes(s, d);
    }
  }
  return total;
}

Bytes TrafficMeter::cross_dc_of_kind(FlowKind kind) const {
  auto it = kind_cross_dc_.find(static_cast<int>(kind));
  return it == kind_cross_dc_.end() ? 0 : it->second;
}

Bytes TrafficMeter::pair_bytes(DcIndex src, DcIndex dst) const {
  return pair_bytes_[static_cast<std::size_t>(src) * num_dcs_ + dst];
}

void TrafficMeter::Reset() {
  std::fill(pair_bytes_.begin(), pair_bytes_.end(), 0);
  kind_cross_dc_.clear();
}

Network::Network(Simulator& sim, const Topology& topo, NetworkConfig config,
                 Rng jitter_rng, MetricsRegistry* metrics)
    : sim_(sim),
      topo_(topo),
      config_(config),
      jitter_rng_(std::move(jitter_rng)),
      meter_(topo.num_datacenters()) {
  if (metrics != nullptr) {
    m_flows_started_ = &metrics->counter("netsim.flows_started");
    m_flows_completed_ = &metrics->counter("netsim.flows_completed");
    m_flows_cancelled_ = &metrics->counter("netsim.flows_cancelled");
    m_wan_stalls_ = &metrics->counter("netsim.wan_stalls");
    m_rate_recomputes_ = &metrics->counter("netsim.rate_recomputes");
    m_solver_flows_ = &metrics->counter("netsim.solver_flows");
    m_reschedules_ = &metrics->counter("netsim.flow_reschedules");
    m_starvation_guards_ = &metrics->counter("netsim.starvation_guards");
    m_active_flows_ = &metrics->gauge("netsim.active_flows");
    // 1 KiB .. 4 GiB in x4 steps; shuffle blocks land mid-range.
    const std::vector<double> bounds = ExponentialBounds(1024, 4, 12);
    m_fetch_bytes_ = &metrics->histogram("netsim.fetch_flow_bytes", bounds);
    m_push_bytes_ = &metrics->histogram("netsim.push_flow_bytes", bounds);
  }
  const std::size_t num_res =
      2 * static_cast<std::size_t>(topo_.num_nodes()) + topo_.num_wan_links();
  capacity_.resize(num_res);
  for (NodeIndex n = 0; n < topo_.num_nodes(); ++n) {
    capacity_[UplinkRes(n)] = topo_.node(n).nic_rate;
    capacity_[DownlinkRes(n)] = topo_.node(n).nic_rate;
  }
  wan_current_.resize(topo_.num_wan_links());
  degrade_.assign(topo_.num_wan_links(), 1.0);
  for (int l = 0; l < topo_.num_wan_links(); ++l) {
    wan_current_[l] = topo_.wan_link(l).base_rate;
    capacity_[WanRes(l)] = wan_current_[l];
  }
  res_flows_.resize(num_res);
  res_dirty_token_.assign(num_res, 0);
  res_visit_token_.assign(num_res, 0);
  rem_cap_.assign(num_res, 0.0);
  res_count_.assign(num_res, 0);
  res_members_.resize(num_res);
}

FlowId Network::StartFlow(NodeIndex src, NodeIndex dst, Bytes bytes,
                          FlowKind kind, CompletionFn on_complete) {
  GS_CHECK(src >= 0 && src < topo_.num_nodes());
  GS_CHECK(dst >= 0 && dst < topo_.num_nodes());
  GS_CHECK(bytes >= 0);
  GS_CHECK(on_complete != nullptr);

  const FlowId id = next_flow_id_++;
  const DcIndex src_dc = topo_.dc_of(src);
  const DcIndex dst_dc = topo_.dc_of(dst);

  meter_.Record(src_dc, dst_dc, kind, bytes);
  if (m_flows_started_ != nullptr) {
    m_flows_started_->Add(1);
    if (kind == FlowKind::kShuffleFetch) {
      m_fetch_bytes_->Observe(static_cast<double>(bytes));
    } else if (kind == FlowKind::kShufflePush) {
      m_push_bytes_->Observe(static_cast<double>(bytes));
    }
  }

  Flow flow;
  flow.id = id;
  flow.src = src;
  flow.dst = dst;
  flow.kind = kind;
  flow.total = bytes;
  flow.remaining = static_cast<double>(bytes);
  flow.created_at = sim_.Now();
  flow.last_update = sim_.Now();
  flow.on_complete = std::move(on_complete);

  if (src == dst) {
    // Loopback: consumes no network resources and completes after a fixed
    // local latency, but it is metered (on the intra-DC diagonal), counted
    // and tracked like any other flow so byte conservation and flow
    // accounting hold, and CancelFlow on its id behaves normally. It never
    // sets `started`, so rate sharing and progress advancement skip it.
    auto [it, inserted] = flows_.emplace(id, std::move(flow));
    GS_CHECK(inserted);
    it->second.completion_event = sim_.Schedule(Millis(0.1), [this, id] {
      auto fit = flows_.find(id);
      if (fit == flows_.end()) return;  // cancelled before loopback latency
      FinishFlow(fit);
      ScheduleDeferredReconfigure();
    });
    if (m_active_flows_ != nullptr) {
      m_active_flows_->Set(static_cast<std::int64_t>(flows_.size()));
    }
    return id;
  }

  CatchUpJitter();
  flow.resources.push_back(UplinkRes(src));
  SimTime setup = topo_.rtt(src_dc, dst_dc) / 2;
  if (src_dc != dst_dc) {
    int link = topo_.wan_link_index(src_dc, dst_dc);
    GS_CHECK_MSG(link >= 0, "no WAN link " << src_dc << "->" << dst_dc);
    flow.resources.push_back(WanRes(link));
    // Single-connection TCP ceiling and occasional stalls on WAN paths.
    const WanLinkSpec& spec = topo_.wan_link(link);
    double eff = jitter_rng_.Uniform(config_.wan_flow_efficiency_min, 1.0);
    flow.rate_cap = eff * spec.base_rate;
    if (config_.wan_stall_prob > 0 &&
        jitter_rng_.Bernoulli(config_.wan_stall_prob)) {
      setup += jitter_rng_.Uniform(config_.wan_stall_min,
                                   config_.wan_stall_max);
      if (m_wan_stalls_ != nullptr) m_wan_stalls_->Add(1);
    }
    flow.wan_link = link;
  }
  flow.resources.push_back(DownlinkRes(dst));
  flows_.emplace(id, std::move(flow));
  if (m_active_flows_ != nullptr) {
    m_active_flows_->Set(static_cast<std::int64_t>(flows_.size()));
  }

  // Connection setup: the flow begins contending after one-way latency
  // (plus any stall). Entering contention perturbs exactly the flow's own
  // resources; the batched reconfigure re-shares those components once per
  // instant, however many flows arrive together.
  sim_.Schedule(setup, [this, id] {
    auto it = flows_.find(id);
    if (it == flows_.end()) return;  // cancelled during setup
    Flow& f = it->second;
    f.started = true;
    f.last_update = sim_.Now();
    f.contend_seq = next_contend_seq_++;
    for (int r : f.resources) res_flows_[r].push_back(id);
    MarkFlowResourcesDirty(f);
    ScheduleDeferredReconfigure();
  });
  MaintainJitterEvent();
  return id;
}

void Network::CancelFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& f = it->second;
  // Advance to Now() first so the bytes actually moved are attributed at
  // their real times, then settle the never-to-be-sent remainder here: the
  // meter charged the full size at start, and conservation must hold.
  AdvanceFlow(f, sim_.Now());
  SettleFlowResidual(f);
  f.completion_event.Cancel();
  if (f.started) MarkFlowResourcesDirty(f);
  flows_.erase(it);
  if (m_flows_cancelled_ != nullptr) m_flows_cancelled_->Add(1);
  if (m_active_flows_ != nullptr) {
    m_active_flows_->Set(static_cast<std::int64_t>(flows_.size()));
  }
  // Synchronous: callers observe the re-shared rates immediately.
  Reconfigure();
}

Rate Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0 : it->second.rate;
}

Rate Network::wan_capacity(DcIndex src, DcIndex dst) {
  CatchUpJitter();
  int link = topo_.wan_link_index(src, dst);
  GS_CHECK(link >= 0);
  return wan_current_[link] * degrade_[link];
}

void Network::SetWanDegradation(DcIndex src, DcIndex dst, double factor) {
  GS_CHECK(factor >= 0);
  int link = topo_.wan_link_index(src, dst);
  GS_CHECK_MSG(link >= 0, "no WAN link " << src << "->" << dst);
  degrade_[link] = factor;
  capacity_[WanRes(link)] = wan_current_[link] * factor;
  MarkResDirty(WanRes(link));
  // Re-share bandwidth right away: flows on the link slow down (or stall
  // at factor 0) and their completion events move accordingly.
  Reconfigure();
}

void Network::MarkResDirty(int r) {
  if (res_dirty_token_[r] == dirty_token_) return;
  res_dirty_token_[r] = dirty_token_;
  dirty_res_.push_back(r);
}

void Network::MarkFlowResourcesDirty(const Flow& f) {
  for (int r : f.resources) MarkResDirty(r);
}

void Network::ScheduleDeferredReconfigure() {
  if (reconfigure_pending_) return;
  reconfigure_pending_ = true;
  sim_.Schedule(0, [this] {
    reconfigure_pending_ = false;
    Reconfigure();
  });
}

void Network::FreezeFlow(std::size_t idx, Rate share) {
  new_rate_[idx] = share;
  frozen_[idx] = 1;
  for (int r : affected_[idx]->resources) {
    rem_cap_[r] -= share;
    // Epsilon floor: rounding must never leave a resource with negative
    // remaining capacity, or its (negative) share would win every later
    // bottleneck scan and freeze whole flow sets at rate zero.
    if (rem_cap_[r] < 0) rem_cap_[r] = 0;
    if (--res_count_[r] > 0) {
      share_heap_.emplace_back(rem_cap_[r] / res_count_[r], r);
      std::push_heap(share_heap_.begin(), share_heap_.end(), HeapLater{});
    }
  }
}

void Network::SolveRates() {
  if (m_rate_recomputes_ != nullptr) m_rate_recomputes_->Add(1);
  ++visit_token_;
  ++dirty_token_;  // retires all current dirty marks
  affected_.clear();
  touched_res_.clear();
  bfs_stack_.assign(dirty_res_.begin(), dirty_res_.end());
  dirty_res_.clear();

  // The max-min allocation decomposes over connected components of the
  // bipartite flow/resource sharing graph: freezing order and arithmetic
  // inside one component never reads another component's state. Solving
  // only the components reachable from the perturbed resources therefore
  // reproduces the global solution bit for bit, and every flow outside
  // them keeps its rate (and completion event) untouched.
  while (!bfs_stack_.empty()) {
    const int r = bfs_stack_.back();
    bfs_stack_.pop_back();
    if (res_visit_token_[r] == visit_token_) continue;
    res_visit_token_[r] = visit_token_;
    touched_res_.push_back(r);
    std::vector<FlowId>& users = res_flows_[r];
    std::size_t kept = 0;
    for (FlowId id : users) {
      auto it = flows_.find(id);
      if (it == flows_.end()) continue;  // finished/cancelled tombstone
      users[kept++] = id;
      Flow& f = it->second;
      if (f.visit_token == visit_token_) continue;
      f.visit_token = visit_token_;
      affected_.push_back(&f);
      for (int r2 : f.resources) {
        if (res_visit_token_[r2] != visit_token_) bfs_stack_.push_back(r2);
      }
    }
    users.resize(kept);
  }
  if (affected_.empty()) {
    for (int r : touched_res_) res_members_[r].clear();
    return;
  }
  // Freeze ties in the order flows entered contention — a deterministic
  // event-loop order, and stable under restriction: a component's flows
  // appear in the same relative order as in a full solve.
  std::sort(affected_.begin(), affected_.end(),
            [](const Flow* a, const Flow* b) {
              return a->contend_seq < b->contend_seq;
            });
  std::sort(touched_res_.begin(), touched_res_.end());

  new_rate_.assign(affected_.size(), 0.0);
  frozen_.assign(affected_.size(), 0);
  for (int r : touched_res_) {
    rem_cap_[r] = capacity_[r];
    res_count_[r] = 0;
    res_members_[r].clear();
  }
  for (std::size_t i = 0; i < affected_.size(); ++i) {
    for (int r : affected_[i]->resources) {
      res_members_[r].push_back(static_cast<int>(i));
      ++res_count_[r];
    }
  }
  share_heap_.clear();
  cap_heap_.clear();
  for (int r : touched_res_) {
    if (res_count_[r] > 0) {
      share_heap_.emplace_back(rem_cap_[r] / res_count_[r], r);
    }
  }
  std::make_heap(share_heap_.begin(), share_heap_.end(), HeapLater{});
  for (std::size_t i = 0; i < affected_.size(); ++i) {
    // Each capped flow gets a virtual resource holding only itself (its
    // single-connection TCP ceiling). Uncapped flows would have an
    // infinite share — never the bottleneck, so they are not enqueued.
    if (affected_[i]->rate_cap > 0) {
      cap_heap_.emplace_back(affected_[i]->rate_cap, static_cast<int>(i));
    }
  }
  std::make_heap(cap_heap_.begin(), cap_heap_.end(), HeapLater{});

  // Progressive filling with lazy heaps: entries are invalidated by later
  // freezes rather than updated in place, and validated on pop — a stale
  // real-resource entry is one whose stored share no longer equals the
  // resource's current fair share.
  std::size_t unfrozen = affected_.size();
  while (unfrozen > 0) {
    int best_res = -1;
    double best_share = 0;
    while (!share_heap_.empty()) {
      const auto [share, r] = share_heap_.front();
      if (res_count_[r] > 0 && share == rem_cap_[r] / res_count_[r]) {
        best_res = r;
        best_share = share;
        break;
      }
      std::pop_heap(share_heap_.begin(), share_heap_.end(), HeapLater{});
      share_heap_.pop_back();
    }
    while (!cap_heap_.empty() && frozen_[cap_heap_.front().second]) {
      std::pop_heap(cap_heap_.begin(), cap_heap_.end(), HeapLater{});
      cap_heap_.pop_back();
    }
    if (best_res < 0 && cap_heap_.empty()) break;  // every flow has resources

    if (!cap_heap_.empty() &&
        (best_res < 0 || cap_heap_.front().first < best_share)) {
      // A TCP ceiling is the strict bottleneck: freeze just that flow.
      const auto [cap, idx] = cap_heap_.front();
      std::pop_heap(cap_heap_.begin(), cap_heap_.end(), HeapLater{});
      cap_heap_.pop_back();
      FreezeFlow(static_cast<std::size_t>(idx), cap);
      --unfrozen;
      continue;
    }

    double share = std::max(best_share, 0.0);
    if (share <= 0 && capacity_[best_res] > 0) {
      share = capacity_[best_res] * kStarvationRateFraction;
      if (m_starvation_guards_ != nullptr) m_starvation_guards_->Add(1);
    }
    for (int idx : res_members_[best_res]) {
      if (frozen_[idx]) continue;
      FreezeFlow(static_cast<std::size_t>(idx), share);
      --unfrozen;
    }
  }
  if (m_solver_flows_ != nullptr) {
    m_solver_flows_->Add(static_cast<std::int64_t>(affected_.size()));
  }
}

void Network::AdvanceFlow(Flow& f, SimTime now) {
  if (now <= f.last_update) return;
  AttributeFlowProgress(f, f.last_update, now);
  f.remaining -= f.rate * (now - f.last_update);
  if (f.remaining < 0) f.remaining = 0;  // floating-point overshoot
  f.last_update = now;
}

void Network::ScheduleCompletion(Flow& f, SimTime now) {
  const SimTime when = now + f.remaining / f.rate;
  if (!std::isfinite(when)) {
    // A starvation-guard-level rate can overflow remaining/rate to
    // infinity. An infinite deadline would corrupt the clock when it
    // fires; treat the flow as stalled instead — it resumes when the next
    // perturbation re-rates its component.
    f.rate = 0;
    if (m_starvation_guards_ != nullptr) m_starvation_guards_->Add(1);
    return;
  }
  const FlowId id = f.id;
  f.completion_event =
      sim_.ScheduleAt(when, [this, id] { OnFlowDeadline(id); });
  if (m_reschedules_ != nullptr) m_reschedules_->Add(1);
}

void Network::Reconfigure() {
  CatchUpJitter();
  const SimTime now = sim_.Now();
  if (!dirty_res_.empty()) {
    SolveRates();
    for (std::size_t i = 0; i < affected_.size(); ++i) {
      Flow& f = *affected_[i];
      const Rate rate = new_rate_[i];
      // Exactness of the reschedule skip: `remaining` and `last_update`
      // only change when the rate changes (AdvanceFlow below) or when the
      // completion event itself fires. So if the solve reproduced the old
      // rate, the pending event's absolute time was computed from exactly
      // the same (remaining, last_update, rate) triple that is current
      // now — cancelling and rescheduling would rebuild the identical
      // double. Skipping it changes no observable behavior, only queue
      // churn.
      if (rate == f.rate) continue;
      AdvanceFlow(f, now);
      f.rate = rate;
      f.completion_event.Cancel();
      if (rate > 0) ScheduleCompletion(f, now);
    }
    for (int r : touched_res_) res_members_[r].clear();
  }
  if (!pending_resched_.empty()) {
    // Flows whose deadline fired with residue left (rounding moved the
    // fluid finish past the predicted instant) but whose rate did not
    // change in the solve above: re-derive their completion event from
    // the advanced remainder.
    for (FlowId id : pending_resched_) {
      auto it = flows_.find(id);
      if (it == flows_.end()) continue;
      Flow& f = it->second;
      if (f.rate > 0 && !f.completion_event.pending()) {
        AdvanceFlow(f, now);
        ScheduleCompletion(f, now);
      }
    }
    pending_resched_.clear();
  }
  MaintainJitterEvent();
}

void Network::OnFlowDeadline(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& f = it->second;
  AdvanceFlow(f, sim_.Now());
  if (f.remaining <= kByteEpsilon) {
    // Snap sub-epsilon residue to zero so the flow's progress is exact by
    // the time it is settled; SettleFlowResidual then attributes the
    // integer remainder and conservation holds bit for bit.
    f.remaining = 0;
    FinishFlow(it);
  } else {
    pending_resched_.push_back(id);
  }
  // One deferred solve per instant, however many flows finish together.
  ScheduleDeferredReconfigure();
}

void Network::FinishFlow(std::unordered_map<FlowId, Flow>::iterator it) {
  Flow& f = it->second;
  SettleFlowResidual(f);
  CompletionFn cb = std::move(f.on_complete);
  f.completion_event.Cancel();
  if (m_flows_completed_ != nullptr) m_flows_completed_->Add(1);
  if (observer_ && f.src != f.dst) {
    observer_(FlowRecord{f.id, f.src, f.dst, f.kind, f.total, f.created_at,
                         sim_.Now()});
  }
  if (f.started) MarkFlowResourcesDirty(f);
  flows_.erase(it);
  if (m_active_flows_ != nullptr) {
    m_active_flows_->Set(static_cast<std::int64_t>(flows_.size()));
  }
  // Run the completion through the simulator so that callbacks observe a
  // consistent network state and cannot reenter Reconfigure mid-loop.
  sim_.Schedule(0, std::move(cb));
}

void Network::EnableUtilization(SimTime bucket_width) {
  util_ = std::make_unique<LinkUtilization>(topo_.num_wan_links(),
                                            bucket_width);
}

void Network::AttributeFlowProgress(Flow& f, SimTime from, SimTime to) {
  if (util_ == nullptr || f.wan_link < 0) return;
  if (f.rate <= 0 || to <= from) return;
  // Cumulative rounding: at each bucket boundary, credit the difference
  // between floor(cumulative fluid progress) and what has been credited so
  // far. Residue carries forward instead of leaking.
  const double done_at_from = static_cast<double>(f.total) - f.remaining;
  const SimTime width = util_->bucket_width();
  std::int64_t bucket = util_->BucketOf(from);
  SimTime cursor = from;
  while (cursor < to) {
    const SimTime bucket_end = static_cast<SimTime>(bucket + 1) * width;
    const SimTime end = std::min(to, bucket_end);
    const double done = done_at_from + f.rate * (end - from);
    const Bytes target = std::min(f.total, static_cast<Bytes>(done));
    if (target > f.attributed) {
      util_->Add(f.wan_link, bucket, target - f.attributed);
      f.attributed = target;
    }
    cursor = end;
    ++bucket;
  }
}

void Network::SettleFlowResidual(Flow& f) {
  if (util_ == nullptr || f.wan_link < 0) return;
  const Bytes residual = f.total - f.attributed;
  if (residual > 0) {
    util_->Add(f.wan_link, util_->BucketOf(sim_.Now()), residual);
    f.attributed = f.total;
  }
}

void Network::CatchUpJitter() {
  if (!JitterEnabled()) return;
  const SimTime now = sim_.Now();
  bool drawn = false;
  while (last_resample_ + config_.jitter_interval <= now) {
    last_resample_ += config_.jitter_interval;
    drawn = true;
    for (int l = 0; l < topo_.num_wan_links(); ++l) {
      const WanLinkSpec& spec = topo_.wan_link(l);
      double deviation = wan_current_[l] - spec.base_rate;
      double fresh = jitter_rng_.Uniform(spec.min_rate, spec.max_rate);
      double next = spec.base_rate + config_.jitter_momentum * deviation +
                    (1 - config_.jitter_momentum) * (fresh - spec.base_rate);
      next = std::clamp(next, static_cast<double>(spec.min_rate),
                        static_cast<double>(spec.max_rate));
      wan_current_[l] = next;
      capacity_[WanRes(l)] = next * degrade_[l];
    }
  }
  if (drawn) {
    for (int l = 0; l < topo_.num_wan_links(); ++l) MarkResDirty(WanRes(l));
  }
}

void Network::MaintainJitterEvent() {
  if (!JitterEnabled()) return;
  if (flows_.empty()) {
    resample_event_.Cancel();
    return;
  }
  if (resample_event_.pending()) return;
  SimTime next_at = last_resample_ + config_.jitter_interval;
  if (next_at < sim_.Now()) next_at = sim_.Now();
  resample_event_ = sim_.ScheduleAt(next_at, [this] {
    // CatchUpJitter (via Reconfigure) performs the due draw and marks the
    // WAN resources dirty; Reconfigure then re-shares bandwidth under the
    // new capacities.
    Reconfigure();
  });
}

}  // namespace gs
