// Per-WAN-link bandwidth-utilization timeseries.
//
// The paper reasons about WAN utilization over time (Figs. 5-6: a
// barrier-synchronized fetch saturates the bottleneck link in one burst,
// while pipelined pushes spread the same bytes under the map stage). This
// collector makes that story directly observable: the flow simulator
// attributes every flow's fluid progress to fixed sim-time buckets on the
// directed WAN link it crosses.
//
// Conservation invariant (tested in tests/netsim/utilization_test.cc):
// for every directed datacenter pair with a WAN link, the sum of the
// bucket byte counts equals TrafficMeter::pair_bytes for that pair,
// bit for bit. The network achieves this by crediting integer bytes
// against each flow's cumulative fluid progress (cumulative rounding, so
// residue never leaks) and settling the remainder at flow completion — or
// at cancellation, matching the meter's charge-at-start semantics.
//
// All updates happen on the simulator's event loop, so the timeseries is
// a function of the seed alone and byte-identical for any compute thread
// count (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace gs {

class LinkUtilization {
 public:
  LinkUtilization(int num_links, SimTime bucket_width);

  // Credits `bytes` to the given bucket of a link, growing the series as
  // needed. Bucket b covers sim-time [b*width, (b+1)*width).
  void Add(int link, std::int64_t bucket, Bytes bytes);

  SimTime bucket_width() const { return width_; }
  int num_links() const { return static_cast<int>(series_.size()); }

  // Bucketed byte counts for a link; trailing buckets are only materialized
  // once traffic lands in them.
  const std::vector<Bytes>& buckets(int link) const {
    return series_[link];
  }

  // Sum of all buckets — equals the TrafficMeter bytes of the link's
  // datacenter pair (the conservation invariant).
  Bytes total(int link) const { return totals_[link]; }

  // The bucket containing sim-time `at`.
  std::int64_t BucketOf(SimTime at) const {
    return static_cast<std::int64_t>(at / width_);
  }

 private:
  SimTime width_;
  std::vector<std::vector<Bytes>> series_;  // per link
  std::vector<Bytes> totals_;               // per link
};

}  // namespace gs
