#include "netsim/utilization.h"

#include "common/check.h"

namespace gs {

LinkUtilization::LinkUtilization(int num_links, SimTime bucket_width)
    : width_(bucket_width),
      series_(static_cast<std::size_t>(num_links)),
      totals_(static_cast<std::size_t>(num_links), 0) {
  GS_CHECK_MSG(bucket_width > 0, "utilization bucket width must be > 0");
  GS_CHECK(num_links >= 0);
}

void LinkUtilization::Add(int link, std::int64_t bucket, Bytes bytes) {
  GS_CHECK(link >= 0 && link < num_links());
  GS_CHECK(bucket >= 0 && bytes >= 0);
  if (bytes == 0) return;
  std::vector<Bytes>& s = series_[link];
  if (static_cast<std::int64_t>(s.size()) <= bucket) {
    s.resize(static_cast<std::size_t>(bucket) + 1, 0);
  }
  s[static_cast<std::size_t>(bucket)] += bytes;
  totals_[link] += bytes;
}

}  // namespace gs
