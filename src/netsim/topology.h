// Cluster topology: datacenters, worker nodes, NICs and WAN links.
//
// The model follows the paper's testbed (Sec. V-A): a set of geo-distributed
// datacenters, each hosting worker nodes with ~1 Gbps intra-datacenter NICs,
// interconnected by wide-area links whose capacity is far lower (80-300 Mbps)
// and fluctuates over time.
//
// A network flow between two nodes traverses up to three shared resources:
// the sender's uplink NIC, one directed WAN link (when crossing datacenters),
// and the receiver's downlink NIC. Bandwidth on each resource is shared
// max-min fairly among the flows crossing it (see network.h).
#pragma once

#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"

namespace gs {

struct NodeSpec {
  std::string name;
  DcIndex dc = 0;
  int cores = 2;            // task slots (m3.large has 2 vCPUs)
  Rate nic_rate = Gbps(1);  // per-direction NIC capacity
  bool worker = true;       // false: hosts no tasks (e.g. the driver)
};

struct DatacenterSpec {
  std::string name;
};

// One directed wide-area link between a pair of datacenters.
struct WanLinkSpec {
  DcIndex src = 0;
  DcIndex dst = 0;
  Rate base_rate = Mbps(200);  // long-run mean capacity
  Rate min_rate = Mbps(80);    // jitter floor
  Rate max_rate = Mbps(300);   // jitter ceiling
  SimTime rtt = Millis(150);   // round-trip latency
};

class Topology {
 public:
  Topology() = default;

  DcIndex AddDatacenter(std::string name);
  NodeIndex AddNode(NodeSpec spec);
  void AddWanLink(WanLinkSpec spec);

  // Creates the full mesh of directed WAN links among all datacenters with
  // identical characteristics.
  void AddUniformWanMesh(Rate base, Rate min, Rate max, SimTime rtt);

  int num_datacenters() const { return static_cast<int>(dcs_.size()); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_wan_links() const { return static_cast<int>(wan_links_.size()); }

  const DatacenterSpec& datacenter(DcIndex dc) const { return dcs_.at(dc); }
  const NodeSpec& node(NodeIndex n) const { return nodes_.at(n); }
  const WanLinkSpec& wan_link(int i) const { return wan_links_.at(i); }

  DcIndex dc_of(NodeIndex n) const { return nodes_.at(n).dc; }

  // Nodes hosted in a datacenter.
  const std::vector<NodeIndex>& nodes_in(DcIndex dc) const {
    return dc_nodes_.at(dc);
  }

  // Index into wan_link() for the directed pair, or -1 if none exists
  // (src == dst, or no link configured).
  int wan_link_index(DcIndex src, DcIndex dst) const;

  SimTime rtt(DcIndex src, DcIndex dst) const;

  // Total task slots per datacenter / cluster-wide.
  int cores_in(DcIndex dc) const;
  int total_cores() const;

  // Multiplies every WAN link's base/min/max capacity by `factor`
  // (bandwidth-sensitivity ablation).
  void ScaleWanCapacity(double factor);

  // Overrides the task-slot count of every worker in a datacenter
  // (aggregator resource-pressure ablation, Sec. IV-E).
  void SetWorkerCores(DcIndex dc, int cores);

 private:
  std::vector<DatacenterSpec> dcs_;
  std::vector<NodeSpec> nodes_;
  std::vector<std::vector<NodeIndex>> dc_nodes_;
  std::vector<WanLinkSpec> wan_links_;
  std::vector<std::vector<int>> wan_index_;  // [src][dst] -> link idx or -1
};

// Builds the paper's evaluation cluster (Fig. 6): six regions —
// N. Virginia, N. California, São Paulo, Frankfurt, Singapore, Sydney —
// four m3.large-like workers each, plus a driver co-located in N. Virginia.
// WAN capacities vary per pair within the measured 80-300 Mbps envelope.
// `scale` divides all link rates so that proportionally scaled-down inputs
// reproduce full-scale timings (see DESIGN.md, "Real execution under
// simulated time").
Topology Ec2SixRegionTopology(double scale = 1.0);

// Driver/master node index used by Ec2SixRegionTopology.
inline constexpr NodeIndex kEc2DriverNode = 24;

}  // namespace gs
