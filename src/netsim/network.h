// Flow-level wide-area network simulation.
//
// Each transfer is a fluid flow over up to three shared resources — the
// sender uplink NIC, one directed WAN link, and the receiver downlink NIC.
// Whenever the set of flows or a link capacity changes, rates are recomputed
// with progressive filling (max-min fairness) over the connected components
// of the flow/resource sharing graph that contain the perturbed resources,
// and only flows whose rate actually changed get their completion event
// rescheduled (docs/PERF.md, "Netsim hot path").
// This captures the two effects the paper builds on:
//
//  * a stage-barrier fetch start makes many flows share the bottleneck WAN
//    link simultaneously (Fig. 1a), while per-mapper pushes serialize onto
//    an otherwise idle link (Fig. 1b); and
//  * WAN capacity fluctuates over time (Sec. V-A), producing run-to-run
//    variance in job completion time (Fig. 7 error bars).
//
// WAN capacities follow a seeded, mean-reverting piecewise-constant trace,
// re-drawn every jitter_interval of simulated time. The trace is evaluated
// lazily (caught up on demand) so an idle network leaves the event queue
// empty and Simulator::Run() terminates.
//
// Components are maintained persistently (union on flow arrival, counted
// rebuild on departure) instead of being rediscovered by BFS at every
// solve, flows live in an index-addressed slab instead of a hash map, and
// independent component solves can be dispatched across a ThreadPool and
// merged back in a deterministic order (docs/PERF.md §7).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/metrics_registry.h"
#include "common/rng.h"
#include "common/units.h"
#include "netsim/topology.h"
#include "netsim/utilization.h"
#include "simcore/simulator.h"

namespace gs {

class ThreadPool;

// Accounting category for a flow, used by the traffic meters.
enum class FlowKind {
  kShuffleFetch,   // reducer fetching shuffle input (baseline Spark)
  kShufflePush,    // proactive push of shuffle input (transferTo)
  kCentralize,     // raw-input relocation (Centralized baseline)
  kCollect,        // results returned to the driver
  kStorePut,       // shard staged into an object-store tier (PUT leg)
  kStoreGet,       // staged shard read back by a consumer (GET leg)
  kFabric,         // RDMA-class intra-DC fabric transfer
  kCodedMulticast, // coded-shuffle multicast leg (docs/CODED.md)
  kOther,
};

const char* FlowKindName(FlowKind kind);

struct NetworkConfig {
  // Re-draw every WAN link capacity at this period. <= 0 disables jitter
  // (links stay at base_rate).
  SimTime jitter_interval = Seconds(5);
  // Weight of the previous deviation kept at each re-draw; 0 = i.i.d.
  // uniform draws, closer to 1 = smoother, mean-reverting traces.
  double jitter_momentum = 0.5;

  // Per-flow TCP behaviour on wide-area paths (Sec. V-A: "flash congestion
  // and temporarily lost connections are common"). Each WAN flow gets an
  // efficiency factor drawn uniformly from [wan_flow_efficiency_min, 1]
  // capping its share of the link (loss/RTT limits of a single connection),
  // and with probability wan_stall_prob its start is delayed by a stall of
  // [wan_stall_min, wan_stall_max] seconds (retransmission timeout /
  // reconnection). Barrier-synchronized fetches put these tails on the
  // critical path; pipelined pushes absorb them under the map stage.
  double wan_flow_efficiency_min = 0.6;
  double wan_stall_prob = 0.06;
  SimTime wan_stall_min = Seconds(2);
  SimTime wan_stall_max = Seconds(10);

  // Parallel per-component rate solves (docs/PERF.md §7). When a solver
  // pool is attached (SetSolverPool) and an instant dirties two or more
  // components, component solves of at least parallel_min_component_flows
  // flows are dispatched across the pool; smaller ones run inline on the
  // event thread meanwhile. Results are merged in a fixed
  // (dirty-collection) order, so reports are byte-identical to the
  // sequential path for any thread count.
  bool parallel_solver = true;
  int parallel_min_component_flows = 128;
  // Dispatch through the pool even when it has a single worker and
  // regardless of component size (tests: exercise the parallel path and
  // its determinism on any host).
  bool force_parallel_solver = false;
};

// Point-to-point transfer statistics per datacenter pair and flow kind.
class TrafficMeter {
 public:
  explicit TrafficMeter(int num_dcs);

  void Record(DcIndex src, DcIndex dst, FlowKind kind, Bytes bytes);

  // Bytes between distinct datacenters, all kinds.
  Bytes cross_dc_total() const;
  Bytes cross_dc_of_kind(FlowKind kind) const;
  Bytes pair_bytes(DcIndex src, DcIndex dst) const;

  // All bytes of one kind, intra-DC included (object-store fees bill the
  // staged volume, not just the cross-region part).
  Bytes total_of_kind(FlowKind kind) const;
  // The kStorePut/kStoreGet share of pair_bytes(src, dst). Store traffic
  // rides the provider backbone and is priced at the flat object-store
  // transfer rate instead of the per-region egress tariff, so pricing
  // subtracts it from the egress-billed pair bytes (netsim/pricing.h).
  Bytes store_pair_bytes(DcIndex src, DcIndex dst) const;

  void Reset();

 private:
  int num_dcs_;
  std::vector<Bytes> pair_bytes_;                  // [src * num_dcs + dst]
  std::vector<Bytes> store_pair_bytes_;            // same indexing
  std::unordered_map<int, Bytes> kind_cross_dc_;   // key: FlowKind
  std::unordered_map<int, Bytes> kind_total_;      // key: FlowKind
};

// Completed-flow record delivered to an observer (tracing/diagnostics).
struct FlowRecord {
  FlowId id = 0;
  NodeIndex src = kNoNode;
  NodeIndex dst = kNoNode;
  FlowKind kind = FlowKind::kOther;
  Bytes bytes = 0;
  SimTime started = 0;
  SimTime finished = 0;
};

class Network {
 public:
  using CompletionFn = std::function<void()>;
  using FlowObserverFn = std::function<void(const FlowRecord&)>;

  // `metrics` (optional) receives flow counters and byte histograms; it must
  // outlive the network.
  Network(Simulator& sim, const Topology& topo, NetworkConfig config,
          Rng jitter_rng, MetricsRegistry* metrics = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Attaches the pool used for parallel component solves (nullptr
  // detaches). The pool must outlive the network; solves submitted to it
  // are pure (scratch-only) jobs, so any pool shared with the data plane
  // works. See NetworkConfig::parallel_solver.
  void SetSolverPool(ThreadPool* pool) { pool_ = pool; }

  // Starts a flow of `bytes` from node src to node dst. `on_complete` fires
  // (through the simulator) once the last byte arrives. A flow between a
  // node and itself completes after loopback latency without consuming
  // network bandwidth; it is still metered (intra-DC diagonal), counted in
  // the flow metrics, and cancellable like any other flow. Returns an id
  // usable with CancelFlow.
  FlowId StartFlow(NodeIndex src, NodeIndex dst, Bytes bytes, FlowKind kind,
                   CompletionFn on_complete);

  // Adds a shared "service" resource — a rate-limited tier that is not a
  // node NIC or WAN link (an object-store ingest/egress pipe, an intra-DC
  // RDMA fabric). Returns the resource index for FlowSpec::service_res.
  // Must be called before any flow starts; capacity must be positive and
  // finite. Service resources never jitter or degrade.
  int AddServiceResource(Rate capacity);

  // Generalized flow description for transport backends (engine/transport/)
  // whose legs do not match the plain node-to-node shape: a leg may skip
  // either NIC (the far end is a storage tier, not a node), ride a service
  // resource, carry an extra setup latency (PUT/GET request round-trip,
  // histogram exchange) or a per-flow rate ceiling. The WAN leg — link
  // choice, TCP efficiency ceiling and stall draws — follows the node
  // datacenters exactly like the plain StartFlow.
  struct FlowSpec {
    NodeIndex src = kNoNode;
    NodeIndex dst = kNoNode;
    Bytes bytes = 0;
    FlowKind kind = FlowKind::kOther;
    bool src_uplink = true;     // consume the sender's uplink NIC
    bool dst_downlink = true;   // consume the receiver's downlink NIC
    int service_res = -1;       // AddServiceResource index; -1 = none
    Rate rate_cap = 0;          // per-flow ceiling; 0 = uncapped
    SimTime extra_setup = 0;    // added to the rtt/2 (+ stall) setup time
  };

  // Starts a flow described by `spec`. A spec composing zero resources
  // (src == dst with both NICs skipped and no service resource) completes
  // after loopback latency like the plain overload. At most three
  // resources may compose (solver invariant); a spec that would exceed
  // that is a programming error.
  FlowId StartFlow(const FlowSpec& spec, CompletionFn on_complete);

  // Cancels an in-flight flow (e.g. the destination task failed). Bytes
  // already transferred remain accounted in the traffic meter; the
  // completion callback never fires. A no-op for ids that already
  // completed, were already cancelled, or were never issued.
  void CancelFlow(FlowId id);

  // Starts a multicast transfer of `bytes` from `src` to every node in
  // `dsts`: one ordinary leg per *distinct receiving datacenter* (the
  // first-listed node of each DC receives it), sharing max-min bandwidth
  // with unicast flows and metered per leg like any other flow — so byte
  // conservation (meter vs utilization buckets) holds with no special
  // cases. A destination in the source's own datacenter rides the
  // intra-DC/loopback path. `on_complete` fires once, after the last leg's
  // final byte arrives. Duplicate destination DCs collapse into one leg.
  MulticastId StartMulticastFlow(NodeIndex src,
                                 const std::vector<NodeIndex>& dsts,
                                 Bytes bytes, FlowKind kind,
                                 CompletionFn on_complete);

  // Cancels every still-outstanding leg of a multicast group; the group
  // callback never fires. Like CancelFlow, bytes stay metered and the call
  // is a no-op for completed/cancelled/unknown ids.
  void CancelMulticastFlow(MulticastId id);

  bool has_multicast(MulticastId id) const {
    return multicasts_.count(id) > 0;
  }

  bool has_flow(FlowId id) const { return SlotOf(id) >= 0; }
  int active_flows() const { return tracked_flows_; }

  // Instantaneous max-min rate of a flow; 0 if unknown or still in setup.
  Rate flow_rate(FlowId id) const;

  // Current (possibly jittered and degraded) capacity of a directed WAN
  // link.
  Rate wan_capacity(DcIndex src, DcIndex dst);

  // Effective measured bandwidth of a directed WAN link: the current
  // (jittered and degraded) capacity minus the exponentially decayed
  // delivered throughput over the trailing `window` of utilization
  // buckets — i.e. the headroom a new transfer could expect, floored at a
  // small fraction of capacity so a saturated-but-healthy link still
  // reports progress. Falls back to wan_capacity when utilization
  // collection is off or `window` <= 0 (no measurements to subtract).
  // Reads only state the event loop already maintains, so calling it does
  // not perturb simulation results (engine/placement_policy.h).
  Rate EstimateWanBandwidth(DcIndex src, DcIndex dst, SimTime window);

  // Degrades a directed WAN link to `factor` x its jittered capacity until
  // the next call (fault injection: congestion events, link flaps).
  // factor = 1 restores the link; factor = 0 is a full outage — flows on
  // the link stall in place and resume when capacity returns. In-flight
  // progress is preserved and all rates are recomputed immediately.
  void SetWanDegradation(DcIndex src, DcIndex dst, double factor);

  const TrafficMeter& meter() const { return meter_; }
  TrafficMeter& meter() { return meter_; }

  // Invoked at each (non-loopback) flow completion. One observer at most.
  void SetFlowObserver(FlowObserverFn observer) {
    observer_ = std::move(observer);
  }

  const Topology& topology() const { return topo_; }

  // Starts recording the per-WAN-link utilization timeseries with the given
  // bucket width. Call before any flow starts; idempotent only in the sense
  // that a second call resets the series.
  void EnableUtilization(SimTime bucket_width);

  // Recorded timeseries, or nullptr when EnableUtilization was never called.
  const LinkUtilization* utilization() const { return util_.get(); }

 private:
  struct Flow {
    // Fields the component solver streams (read-only off the event thread
    // during a parallel solve wave) lead the struct so one flow's solver
    // inputs share a cache line.
    bool started = false;  // connection setup finished; contends for rate
    std::uint8_t nres = 0;
    std::int32_t res[3] = {-1, -1, -1};  // indices into capacity_
    // Order in which the flow entered contention (setup completed). The
    // solver freezes ties in this order; it also validates component
    // entries (a mismatch means the slot was recycled).
    std::int64_t contend_seq = -1;
    Rate rate = 0;
    Rate rate_cap = 0;  // per-flow TCP ceiling; 0 = uncapped

    FlowId id = 0;
    NodeIndex src = 0;
    NodeIndex dst = 0;
    FlowKind kind = FlowKind::kOther;
    double remaining = 0;  // bytes still to send
    Bytes total = 0;
    SimTime created_at = 0;
    SimTime last_update = 0;  // remaining is exact as of this time
    int wan_link = -1;     // directed WAN link index; -1 for intra-DC flows
    Bytes attributed = 0;  // bytes already credited to utilization buckets
    CompletionFn on_complete;
    EventHandle completion_event;
  };

  // A component entry names a flow by slab slot plus the contend_seq it
  // held when added; a mismatch marks the entry stale (flow finished, slot
  // possibly recycled). Entries stay sorted by seq — the contention order.
  struct CompEntry {
    std::int32_t slot;
    std::int64_t seq;
  };

  // Connected component of the bipartite flow/resource sharing graph,
  // maintained persistently: flows union their resources' components on
  // arrival (small-into-large, order-preserving merge); departures are
  // counted and trigger a rebuild — which re-splits drifted unions — once
  // they exceed max(kRebuildMinRemovals, live).
  struct Component {
    std::vector<CompEntry> entries;       // by seq; stale entries compacted
    std::vector<std::int32_t> resources;  // resources owned by this comp
    int live = 0;                         // non-stale entries
    int removed_since_rebuild = 0;
    std::int64_t dirty_token = 0;  // dedupe stamp for solve collection
    bool free = true;
  };

  // Reusable per-component solver scratch. A parallel wave gives each
  // dirty component its own scratch; the shared per-resource arrays
  // (rem_cap_, res_count_, res_row_) are indexed by resource, and distinct
  // components own disjoint resources, so concurrent solves never touch
  // the same element.
  struct SolveScratch {
    std::vector<std::int32_t> slots;     // solve index -> slab slot
    std::vector<Rate> old_rate;
    std::vector<Rate> new_rate;
    std::vector<std::pair<double, int>> cap_heap;    // (tcp cap, solve idx)
    std::vector<std::pair<double, int>> share_heap;  // (share, resource)
    std::vector<char> frozen;
    std::vector<std::int32_t> res;       // 3 per flow, -1 padded
    // CSR per-resource member lists (solve indices, contention order).
    std::vector<std::int32_t> row_res;   // row -> resource
    std::vector<std::int32_t> offsets;
    std::vector<std::int32_t> cursor;
    std::vector<std::int32_t> members;
    // Resources whose fair share changed in the current filling step.
    std::vector<std::int32_t> changed;
    std::vector<char> changed_mark;      // per row
    std::int64_t starvation_guards = 0;
  };

  // Resource indexing: [0, N) node uplinks, [N, 2N) node downlinks,
  // [2N, 2N+L) WAN links, [2N+L, ...) service resources in registration
  // order (AddServiceResource). With no service resources the space is
  // exactly the historical 2N+L, so plain runs are bit-identical.
  int UplinkRes(NodeIndex n) const { return n; }
  int DownlinkRes(NodeIndex n) const { return topo_.num_nodes() + n; }
  int WanRes(int link_idx) const { return 2 * topo_.num_nodes() + link_idx; }
  int FirstServiceRes() const {
    return 2 * topo_.num_nodes() + topo_.num_wan_links();
  }

  std::int32_t SlotOf(FlowId id) const {
    return id >= 1 && static_cast<std::size_t>(id) < id_to_slot_.size()
               ? id_to_slot_[static_cast<std::size_t>(id)]
               : -1;
  }
  std::int32_t AllocSlot();
  void FreeSlot(std::int32_t slot);

  // --- component maintenance (event thread only) ---
  Flow* EntryFlow(CompEntry e) {
    Flow& f = slab_[static_cast<std::size_t>(e.slot)];
    return f.started && f.contend_seq == e.seq ? &f : nullptr;
  }
  int AllocComponent();
  void ReleaseComponent(int c);
  // Unions the flow's resources' components (order-preserving merge) and
  // appends the flow; the flow must be started with contend_seq assigned.
  void AddFlowToComponent(std::int32_t slot);
  int MergeComponents(int a, int b);  // returns the surviving id
  void RemoveFlowFromComponent(const Flow& f);
  // Re-splits a drifted union: releases the component and re-inserts its
  // live flows in contention order (they re-union into however many real
  // components remain).
  void RebuildComponent(int c);

  // Catches up jitter, re-solves rates for the components containing the
  // dirty resources, and reschedules completion events whose rate changed.
  void Reconfigure();
  // Schedules a zero-delay Reconfigure unless one is already pending; lets
  // k same-instant perturbations (flow setups, completions) share a single
  // solver pass.
  void ScheduleDeferredReconfigure();

  // Progressive filling over one dirty component, writing rates into the
  // scratch only — no simulator or flow mutation, so solves of distinct
  // components run concurrently. Compacts the component's entry list.
  void SolveComponent(int c, SolveScratch& s);
  // Solves every component in dirty_comps_ (through the pool when
  // profitable) and applies the results in collection order.
  void SolveAndApply(SimTime now);
  void FreezeOne(SolveScratch& s, int idx, Rate rate);
  void PushChangedShares(SolveScratch& s);

  // Marks a resource as perturbed since the last solve.
  void MarkResDirty(int r);
  void MarkFlowResourcesDirty(const Flow& f);

  // Brings `remaining`/`last_update` up to `now` at the current rate,
  // attributing fluid progress to utilization buckets on the way.
  void AdvanceFlow(Flow& f, SimTime now);
  // Cancels and re-creates the completion event at now + remaining/rate.
  // Requires rate > 0 and last_update == now.
  void ScheduleCompletion(Flow& f, SimTime now);
  // Fires when a flow's completion event comes due: advances it, finishes
  // it if done, or queues it for rescheduling at the batched Reconfigure.
  void OnFlowDeadline(FlowId id);
  // Settles, records and frees the flow; defers the completion callback
  // and marks its resources dirty. Does not solve.
  void FinishFlow(std::int32_t slot);

  // Credits the flow's fluid progress over [from, to] (at its current rate)
  // to utilization buckets, using cumulative integer rounding so no byte is
  // lost or double-counted across bucket boundaries.
  void AttributeFlowProgress(Flow& f, SimTime from, SimTime to);
  // Settles the flow's unattributed remainder (total - attributed) into the
  // current bucket; called at completion and at cancellation to match the
  // meter's charge-at-start semantics.
  void SettleFlowResidual(Flow& f);

  // Advances the piecewise-constant WAN capacity traces up to Now().
  void CatchUpJitter();
  // Keeps a resample event scheduled iff flows are active.
  void MaintainJitterEvent();
  bool JitterEnabled() const {
    return config_.jitter_interval > 0 && topo_.num_wan_links() > 0;
  }

  // A multicast group is bookkeeping over ordinary legs: it owns no
  // resources and adds no solver state.
  struct MulticastGroup {
    int outstanding = 0;
    std::vector<FlowId> legs;
    CompletionFn on_complete;
  };
  void OnMulticastLegDone(MulticastId id);
  // Registers the multicast counters on first use. Lazy so runs that never
  // multicast keep their metric snapshots (and golden reports) unchanged.
  void EnsureMulticastMetrics();

  Simulator& sim_;
  const Topology& topo_;
  NetworkConfig config_;
  Rng jitter_rng_;
  TrafficMeter meter_;
  MetricsRegistry* metrics_ = nullptr;
  ThreadPool* pool_ = nullptr;

  std::vector<Rate> capacity_;      // per resource, current (incl. degrade)
  std::vector<Rate> wan_current_;   // per WAN link, jittered capacity
  std::vector<double> degrade_;     // per WAN link, fault-injected factor
  SimTime last_resample_ = 0;       // trace evaluated up to this time
  EventHandle resample_event_;

  // Flow storage: an index-addressed slab with a free list; FlowIds are
  // issued sequentially, so id -> slot is a flat array, not a hash map.
  std::vector<Flow> slab_;
  std::vector<std::int32_t> free_slots_;
  std::vector<std::int32_t> id_to_slot_;
  int tracked_flows_ = 0;  // live slots (incl. loopback and in-setup flows)
  FlowId next_flow_id_ = 1;
  std::int64_t next_contend_seq_ = 0;
  FlowObserverFn observer_;

  // --- component + solver state ---
  std::vector<Component> comps_;
  std::vector<std::int32_t> comp_free_;
  std::vector<std::int32_t> res_comp_;  // per resource; -1 = unowned
  std::vector<CompEntry> merge_scratch_;
  std::vector<CompEntry> rebuild_entries_;

  std::vector<int> dirty_res_;  // resources perturbed since the last solve
  std::vector<std::int64_t> res_dirty_token_;
  std::int64_t dirty_token_ = 1;
  std::int64_t solve_token_ = 0;  // stamps Component::dirty_token
  bool reconfigure_pending_ = false;  // zero-delay batched solve scheduled
  // Flows whose deadline fired with residue left (float drift) but whose
  // rate did not change: they need their completion event re-created.
  std::vector<FlowId> pending_resched_;

  // Per-resource solver arrays, shared across concurrent component solves
  // (disjoint resource sets; see SolveScratch).
  std::vector<double> rem_cap_;
  std::vector<int> res_count_;              // unfrozen flows per resource
  std::vector<std::int32_t> res_row_;       // resource -> CSR row this solve
  std::vector<int> dirty_comps_;            // this wave, collection order
  std::vector<std::unique_ptr<SolveScratch>> scratch_;  // per dirty comp

  std::unique_ptr<LinkUtilization> util_;

  // Metric handles (nullptr when no registry was supplied). Updated only on
  // the event loop, so reported values are deterministic.
  Counter* m_flows_started_ = nullptr;
  Counter* m_flows_completed_ = nullptr;
  Counter* m_flows_cancelled_ = nullptr;
  Counter* m_wan_stalls_ = nullptr;
  Counter* m_rate_recomputes_ = nullptr;
  Counter* m_solver_flows_ = nullptr;
  Counter* m_reschedules_ = nullptr;
  Counter* m_starvation_guards_ = nullptr;
  Counter* m_parallel_solves_ = nullptr;
  Gauge* m_active_flows_ = nullptr;
  Histogram* m_fetch_bytes_ = nullptr;
  Histogram* m_push_bytes_ = nullptr;

  // Multicast state. Counters registered lazily (EnsureMulticastMetrics).
  std::unordered_map<MulticastId, MulticastGroup> multicasts_;
  MulticastId next_multicast_id_ = 1;
  Counter* m_multicasts_started_ = nullptr;
  Counter* m_multicasts_completed_ = nullptr;
  Counter* m_multicasts_cancelled_ = nullptr;
  Counter* m_multicast_legs_ = nullptr;
};

}  // namespace gs
