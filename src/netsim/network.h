// Flow-level wide-area network simulation.
//
// Each transfer is a fluid flow over up to three shared resources — the
// sender uplink NIC, one directed WAN link, and the receiver downlink NIC.
// Whenever the set of flows or a link capacity changes, rates are recomputed
// with progressive filling (max-min fairness) over the flows reachable from
// the perturbed resources, and only flows whose rate actually changed get
// their completion event rescheduled (docs/PERF.md, "Netsim hot path").
// This captures the two effects the paper builds on:
//
//  * a stage-barrier fetch start makes many flows share the bottleneck WAN
//    link simultaneously (Fig. 1a), while per-mapper pushes serialize onto
//    an otherwise idle link (Fig. 1b); and
//  * WAN capacity fluctuates over time (Sec. V-A), producing run-to-run
//    variance in job completion time (Fig. 7 error bars).
//
// WAN capacities follow a seeded, mean-reverting piecewise-constant trace,
// re-drawn every jitter_interval of simulated time. The trace is evaluated
// lazily (caught up on demand) so an idle network leaves the event queue
// empty and Simulator::Run() terminates.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/metrics_registry.h"
#include "common/rng.h"
#include "common/units.h"
#include "netsim/topology.h"
#include "netsim/utilization.h"
#include "simcore/simulator.h"

namespace gs {

// Accounting category for a flow, used by the traffic meters.
enum class FlowKind {
  kShuffleFetch,   // reducer fetching shuffle input (baseline Spark)
  kShufflePush,    // proactive push of shuffle input (transferTo)
  kCentralize,     // raw-input relocation (Centralized baseline)
  kCollect,        // results returned to the driver
  kOther,
};

const char* FlowKindName(FlowKind kind);

struct NetworkConfig {
  // Re-draw every WAN link capacity at this period. <= 0 disables jitter
  // (links stay at base_rate).
  SimTime jitter_interval = Seconds(5);
  // Weight of the previous deviation kept at each re-draw; 0 = i.i.d.
  // uniform draws, closer to 1 = smoother, mean-reverting traces.
  double jitter_momentum = 0.5;

  // Per-flow TCP behaviour on wide-area paths (Sec. V-A: "flash congestion
  // and temporarily lost connections are common"). Each WAN flow gets an
  // efficiency factor drawn uniformly from [wan_flow_efficiency_min, 1]
  // capping its share of the link (loss/RTT limits of a single connection),
  // and with probability wan_stall_prob its start is delayed by a stall of
  // [wan_stall_min, wan_stall_max] seconds (retransmission timeout /
  // reconnection). Barrier-synchronized fetches put these tails on the
  // critical path; pipelined pushes absorb them under the map stage.
  double wan_flow_efficiency_min = 0.6;
  double wan_stall_prob = 0.06;
  SimTime wan_stall_min = Seconds(2);
  SimTime wan_stall_max = Seconds(10);
};

// Point-to-point transfer statistics per datacenter pair and flow kind.
class TrafficMeter {
 public:
  explicit TrafficMeter(int num_dcs);

  void Record(DcIndex src, DcIndex dst, FlowKind kind, Bytes bytes);

  // Bytes between distinct datacenters, all kinds.
  Bytes cross_dc_total() const;
  Bytes cross_dc_of_kind(FlowKind kind) const;
  Bytes pair_bytes(DcIndex src, DcIndex dst) const;

  void Reset();

 private:
  int num_dcs_;
  std::vector<Bytes> pair_bytes_;                  // [src * num_dcs + dst]
  std::unordered_map<int, Bytes> kind_cross_dc_;   // key: FlowKind
};

// Completed-flow record delivered to an observer (tracing/diagnostics).
struct FlowRecord {
  FlowId id = 0;
  NodeIndex src = kNoNode;
  NodeIndex dst = kNoNode;
  FlowKind kind = FlowKind::kOther;
  Bytes bytes = 0;
  SimTime started = 0;
  SimTime finished = 0;
};

class Network {
 public:
  using CompletionFn = std::function<void()>;
  using FlowObserverFn = std::function<void(const FlowRecord&)>;

  // `metrics` (optional) receives flow counters and byte histograms; it must
  // outlive the network.
  Network(Simulator& sim, const Topology& topo, NetworkConfig config,
          Rng jitter_rng, MetricsRegistry* metrics = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Starts a flow of `bytes` from node src to node dst. `on_complete` fires
  // (through the simulator) once the last byte arrives. A flow between a
  // node and itself completes after loopback latency without consuming
  // network bandwidth; it is still metered (intra-DC diagonal), counted in
  // the flow metrics, and cancellable like any other flow. Returns an id
  // usable with CancelFlow.
  FlowId StartFlow(NodeIndex src, NodeIndex dst, Bytes bytes, FlowKind kind,
                   CompletionFn on_complete);

  // Cancels an in-flight flow (e.g. the destination task failed). Bytes
  // already transferred remain accounted in the traffic meter; the
  // completion callback never fires. A no-op for ids that already
  // completed, were already cancelled, or were never issued.
  void CancelFlow(FlowId id);

  bool has_flow(FlowId id) const { return flows_.count(id) > 0; }
  int active_flows() const { return static_cast<int>(flows_.size()); }

  // Instantaneous max-min rate of a flow; 0 if unknown or still in setup.
  Rate flow_rate(FlowId id) const;

  // Current (possibly jittered and degraded) capacity of a directed WAN
  // link.
  Rate wan_capacity(DcIndex src, DcIndex dst);

  // Degrades a directed WAN link to `factor` x its jittered capacity until
  // the next call (fault injection: congestion events, link flaps).
  // factor = 1 restores the link; factor = 0 is a full outage — flows on
  // the link stall in place and resume when capacity returns. In-flight
  // progress is preserved and all rates are recomputed immediately.
  void SetWanDegradation(DcIndex src, DcIndex dst, double factor);

  const TrafficMeter& meter() const { return meter_; }
  TrafficMeter& meter() { return meter_; }

  // Invoked at each (non-loopback) flow completion. One observer at most.
  void SetFlowObserver(FlowObserverFn observer) {
    observer_ = std::move(observer);
  }

  const Topology& topology() const { return topo_; }

  // Starts recording the per-WAN-link utilization timeseries with the given
  // bucket width. Call before any flow starts; idempotent only in the sense
  // that a second call resets the series.
  void EnableUtilization(SimTime bucket_width);

  // Recorded timeseries, or nullptr when EnableUtilization was never called.
  const LinkUtilization* utilization() const { return util_.get(); }

 private:
  struct Flow {
    FlowId id = 0;
    NodeIndex src = 0;
    NodeIndex dst = 0;
    FlowKind kind = FlowKind::kOther;
    bool started = false;  // connection setup finished; contends for rate
    double remaining = 0;  // bytes still to send
    Bytes total = 0;
    Rate rate = 0;
    Rate rate_cap = 0;  // per-flow TCP ceiling; 0 = uncapped
    SimTime created_at = 0;
    SimTime last_update = 0;  // remaining is exact as of this time
    int wan_link = -1;     // directed WAN link index; -1 for intra-DC flows
    Bytes attributed = 0;  // bytes already credited to utilization buckets
    // Order in which the flow entered contention (setup completed). The
    // solver freezes ties in this order, making restricted solves
    // independent of unordered_map iteration order.
    std::int64_t contend_seq = -1;
    std::int64_t visit_token = 0;  // solver BFS stamp
    std::vector<int> resources;  // indices into capacity_
    CompletionFn on_complete;
    EventHandle completion_event;
  };

  // Resource indexing: [0, N) node uplinks, [N, 2N) node downlinks,
  // [2N, 2N+L) WAN links.
  int UplinkRes(NodeIndex n) const { return n; }
  int DownlinkRes(NodeIndex n) const { return topo_.num_nodes() + n; }
  int WanRes(int link_idx) const { return 2 * topo_.num_nodes() + link_idx; }

  // Catches up jitter, re-solves rates for flows reachable from the dirty
  // resources, and reschedules completion events whose rate changed.
  void Reconfigure();
  // Schedules a zero-delay Reconfigure unless one is already pending; lets
  // k same-instant perturbations (flow setups, completions) share a single
  // solver pass.
  void ScheduleDeferredReconfigure();

  // Progressive filling restricted to the connected component(s) of the
  // flow/resource sharing graph reachable from dirty_res_. Fills affected_
  // and new_rate_ (parallel arrays); leaves untouched flows' rates alone.
  void SolveRates();
  void FreezeFlow(std::size_t idx, Rate share);

  // Marks a resource as perturbed since the last solve.
  void MarkResDirty(int r);
  void MarkFlowResourcesDirty(const Flow& f);

  // Brings `remaining`/`last_update` up to `now` at the current rate,
  // attributing fluid progress to utilization buckets on the way.
  void AdvanceFlow(Flow& f, SimTime now);
  // Cancels and re-creates the completion event at now + remaining/rate.
  // Requires rate > 0 and last_update == now.
  void ScheduleCompletion(Flow& f, SimTime now);
  // Fires when a flow's completion event comes due: advances it, finishes
  // it if done, or queues it for rescheduling at the batched Reconfigure.
  void OnFlowDeadline(FlowId id);
  // Settles, records and erases the flow; defers the completion callback
  // and marks its resources dirty. Does not solve.
  void FinishFlow(std::unordered_map<FlowId, Flow>::iterator it);

  // Credits the flow's fluid progress over [from, to] (at its current rate)
  // to utilization buckets, using cumulative integer rounding so no byte is
  // lost or double-counted across bucket boundaries.
  void AttributeFlowProgress(Flow& f, SimTime from, SimTime to);
  // Settles the flow's unattributed remainder (total - attributed) into the
  // current bucket; called at completion and at cancellation to match the
  // meter's charge-at-start semantics.
  void SettleFlowResidual(Flow& f);

  // Advances the piecewise-constant WAN capacity traces up to Now().
  void CatchUpJitter();
  // Keeps a resample event scheduled iff flows are active.
  void MaintainJitterEvent();
  bool JitterEnabled() const {
    return config_.jitter_interval > 0 && topo_.num_wan_links() > 0;
  }

  Simulator& sim_;
  const Topology& topo_;
  NetworkConfig config_;
  Rng jitter_rng_;
  TrafficMeter meter_;

  std::vector<Rate> capacity_;      // per resource, current (incl. degrade)
  std::vector<Rate> wan_current_;   // per WAN link, jittered capacity
  std::vector<double> degrade_;     // per WAN link, fault-injected factor
  SimTime last_resample_ = 0;       // trace evaluated up to this time
  EventHandle resample_event_;
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  std::int64_t next_contend_seq_ = 0;
  FlowObserverFn observer_;

  // --- incremental solver state ---
  // Per resource: ids of started flows using it. Entries for finished or
  // cancelled flows are tombstones, compacted whenever the solver walks the
  // list.
  std::vector<std::vector<FlowId>> res_flows_;
  std::vector<int> dirty_res_;  // resources perturbed since the last solve
  // Stamp arrays (avoid clearing per solve): a mark is valid when the
  // stored token equals the current one.
  std::vector<std::int64_t> res_dirty_token_;
  std::vector<std::int64_t> res_visit_token_;
  std::int64_t dirty_token_ = 1;
  std::int64_t visit_token_ = 0;
  bool reconfigure_pending_ = false;  // zero-delay batched solve scheduled
  // Flows whose deadline fired with residue left (float drift) but whose
  // rate did not change: they need their completion event re-created.
  std::vector<FlowId> pending_resched_;

  // Solver scratch, reused across solves (tentpole (a): no per-call
  // allocation in steady state).
  std::vector<Flow*> affected_;     // flows in the dirty component(s)
  std::vector<Rate> new_rate_;      // parallel to affected_
  std::vector<char> frozen_;        // parallel to affected_
  std::vector<int> touched_res_;    // resources in the dirty component(s)
  std::vector<int> bfs_stack_;
  std::vector<double> rem_cap_;     // per resource (touched entries valid)
  std::vector<int> res_count_;      // unfrozen flows per touched resource
  std::vector<std::vector<int>> res_members_;  // affected_ indices
  // Lazy min-heaps (validate on pop): real resources keyed by
  // (share, resource index), per-flow TCP caps keyed by (cap, affected
  // index). Stale entries are skipped when their key no longer matches.
  std::vector<std::pair<double, int>> share_heap_;
  std::vector<std::pair<double, int>> cap_heap_;

  std::unique_ptr<LinkUtilization> util_;

  // Metric handles (nullptr when no registry was supplied). Updated only on
  // the event loop, so reported values are deterministic.
  Counter* m_flows_started_ = nullptr;
  Counter* m_flows_completed_ = nullptr;
  Counter* m_flows_cancelled_ = nullptr;
  Counter* m_wan_stalls_ = nullptr;
  Counter* m_rate_recomputes_ = nullptr;
  Counter* m_solver_flows_ = nullptr;
  Counter* m_reschedules_ = nullptr;
  Counter* m_starvation_guards_ = nullptr;
  Gauge* m_active_flows_ = nullptr;
  Histogram* m_fetch_bytes_ = nullptr;
  Histogram* m_push_bytes_ = nullptr;
};

}  // namespace gs
