// Inter-datacenter transfer pricing.
//
// The task-placement systems the paper positions against (Geode,
// WANalytics) minimize cross-datacenter traffic because providers bill
// per egressed gigabyte. This model prices a TrafficMeter's cross-region
// bytes with per-source-region egress rates (EC2-2016-style tariffs), so
// any scheme comparison can also be read in dollars.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "netsim/network.h"
#include "netsim/topology.h"

namespace gs {

// Object-store tariff (ObjectStoreTransport, docs/TRANSPORTS.md): staged
// shuffle bytes skip the per-region egress tariff and are billed instead
// at a flat backbone transfer rate plus per-GiB request/storage fees —
// provider-internal replication to storage is cheaper than internet
// egress, which is exactly the dollars-for-latency trade the transport
// exists to expose. All rates are USD per GiB; requests are priced by
// volume (a fixed part size folds the per-request fee into a per-GiB one).
struct ObjectStoreTariff {
  double put_usd_per_gib = 0.005;       // ingest requests
  double get_usd_per_gib = 0.0005;      // read-back requests
  double storage_usd_per_gib = 0.001;   // short-lived staging capacity
  double transfer_usd_per_gib = 0.05;   // cross-region backbone transfer
};

class WanPricing {
 public:
  // Per-region egress rates (USD/GiB), e.g. premium for South America.
  explicit WanPricing(std::vector<double> egress_usd_per_gib);

  // Uniform egress rate in USD per GiB for every region.
  static WanPricing Uniform(int num_dcs, double usd_per_gib = 0.09);

  // EC2-2016-flavoured tariff for the paper's six regions: 0.09 $/GiB
  // default, 0.16 for Sao Paulo, 0.14 for Sydney.
  static WanPricing Ec2SixRegionTariff();

  double egress_rate(DcIndex dc) const;

  // Per-region egress rates as configured, indexed by DcIndex.
  const std::vector<double>& rates() const { return egress_usd_per_gib_; }

  // Total cost of all cross-datacenter bytes recorded in the meter.
  double CostUsd(const TrafficMeter& meter, const Topology& topo) const;

  // Cost of a single transfer.
  double CostUsd(DcIndex src, DcIndex dst, Bytes bytes) const;

  // Egress cost of the meter's cross-datacenter bytes minus its
  // object-store share (those bytes ride the backbone and are billed by
  // StoreCostUsd instead). Equal to CostUsd(meter, topo) when no store
  // flows ran.
  double EgressCostUsd(const TrafficMeter& meter, const Topology& topo) const;

  // Object-store bill for the meter's staged traffic: request + storage
  // fees on the PUT/GET volume plus the flat backbone rate on its
  // cross-region part. Zero when no store flows ran.
  static double StoreCostUsd(const TrafficMeter& meter, const Topology& topo,
                             const ObjectStoreTariff& tariff);

 private:
  std::vector<double> egress_usd_per_gib_;
};

}  // namespace gs
