#!/bin/bash
# CI: configure, build and run the test suite under ASan+UBSan.
# Equivalent to: cmake --preset asan && cmake --build --preset asan &&
#                ctest --preset asan
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGS_SANITIZE=ON
cmake --build build-asan -j "$(nproc)"
ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)" "$@"
