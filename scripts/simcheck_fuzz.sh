#!/bin/bash
# CI: build geosim-fuzz and sweep a fixed seed range through the simcheck
# invariant catalog (docs/TESTING.md). On a violation the fuzzer shrinks
# the configuration and writes the minimized reproducer to
# simcheck_repro.json, which CI uploads as an artifact; replay locally with
#   ./build/tools/geosim-fuzz --replay=simcheck_repro.json
#
# Usage: simcheck_fuzz.sh [iters] [seed] [extra geosim-fuzz args...]
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS="${1:-200}"
SEED="${2:-1}"
shift $(( $# > 2 ? 2 : $# )) || true

BUILD_DIR="${GS_FUZZ_BUILD_DIR:-build}"
if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" --target geosim-fuzz

"$BUILD_DIR/tools/geosim-fuzz" --iters="$ITERS" --seed="$SEED" \
  --out=simcheck_repro.json "$@"
