#!/bin/bash
# CI: configure, build and run the test suite under ThreadSanitizer.
# Exercises the compute ThreadPool offload (docs/PERF.md) for data races.
# Equivalent to: cmake --preset tsan && cmake --build --preset tsan &&
#                ctest --preset tsan
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGS_SANITIZE=tsan
cmake --build build-tsan -j "$(nproc)"
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$PWD/scripts/tsan.supp" \
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" "$@"
