# Empty compiler generated dependencies file for geoshuffle_tests.
# This may be replaced when dependencies are built.
