
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/check_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/common/check_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/common/check_test.cc.o.d"
  "/root/repo/tests/common/log_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/common/log_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/common/log_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/common/stats_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/common/stats_test.cc.o.d"
  "/root/repo/tests/common/table_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/common/table_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/common/table_test.cc.o.d"
  "/root/repo/tests/common/units_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/common/units_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/common/units_test.cc.o.d"
  "/root/repo/tests/dag/dag_scheduler_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/dag/dag_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/dag/dag_scheduler_test.cc.o.d"
  "/root/repo/tests/data/combiner_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/data/combiner_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/data/combiner_test.cc.o.d"
  "/root/repo/tests/data/compression_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/data/compression_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/data/compression_test.cc.o.d"
  "/root/repo/tests/data/partitioner_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/data/partitioner_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/data/partitioner_test.cc.o.d"
  "/root/repo/tests/data/record_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/data/record_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/data/record_test.cc.o.d"
  "/root/repo/tests/engine/cache_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/cache_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/cache_test.cc.o.d"
  "/root/repo/tests/engine/dataset_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/dataset_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/dataset_test.cc.o.d"
  "/root/repo/tests/engine/edge_cases_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/edge_cases_test.cc.o.d"
  "/root/repo/tests/engine/failure_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/failure_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/failure_test.cc.o.d"
  "/root/repo/tests/engine/locality_spill_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/locality_spill_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/locality_spill_test.cc.o.d"
  "/root/repo/tests/engine/metrics_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/metrics_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/metrics_test.cc.o.d"
  "/root/repo/tests/engine/reduce_locality_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/reduce_locality_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/reduce_locality_test.cc.o.d"
  "/root/repo/tests/engine/speculation_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/speculation_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/speculation_test.cc.o.d"
  "/root/repo/tests/engine/subset_aggregation_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/subset_aggregation_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/subset_aggregation_test.cc.o.d"
  "/root/repo/tests/engine/trace_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/trace_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/trace_test.cc.o.d"
  "/root/repo/tests/engine/transfer_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/transfer_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/engine/transfer_test.cc.o.d"
  "/root/repo/tests/exec/disk_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/exec/disk_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/exec/disk_test.cc.o.d"
  "/root/repo/tests/exec/evaluator_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/exec/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/exec/evaluator_test.cc.o.d"
  "/root/repo/tests/integration/reproduction_claims_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/integration/reproduction_claims_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/integration/reproduction_claims_test.cc.o.d"
  "/root/repo/tests/integration/smoke_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/integration/smoke_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/integration/smoke_test.cc.o.d"
  "/root/repo/tests/netsim/fairness_property_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/fairness_property_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/fairness_property_test.cc.o.d"
  "/root/repo/tests/netsim/flow_observer_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/flow_observer_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/flow_observer_test.cc.o.d"
  "/root/repo/tests/netsim/jitter_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/jitter_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/jitter_test.cc.o.d"
  "/root/repo/tests/netsim/network_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/network_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/network_test.cc.o.d"
  "/root/repo/tests/netsim/noisy_network_property_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/noisy_network_property_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/noisy_network_property_test.cc.o.d"
  "/root/repo/tests/netsim/pricing_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/pricing_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/pricing_test.cc.o.d"
  "/root/repo/tests/netsim/topology_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/topology_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/netsim/topology_test.cc.o.d"
  "/root/repo/tests/rdd/rdd_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/rdd/rdd_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/rdd/rdd_test.cc.o.d"
  "/root/repo/tests/sched/task_scheduler_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/sched/task_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/sched/task_scheduler_test.cc.o.d"
  "/root/repo/tests/shuffle/traffic_lower_bound_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/shuffle/traffic_lower_bound_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/shuffle/traffic_lower_bound_test.cc.o.d"
  "/root/repo/tests/simcore/simulator_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/simcore/simulator_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/simcore/simulator_test.cc.o.d"
  "/root/repo/tests/storage/block_manager_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/storage/block_manager_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/storage/block_manager_test.cc.o.d"
  "/root/repo/tests/storage/map_output_tracker_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/storage/map_output_tracker_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/storage/map_output_tracker_test.cc.o.d"
  "/root/repo/tests/workloads/input_gen_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/workloads/input_gen_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/workloads/input_gen_test.cc.o.d"
  "/root/repo/tests/workloads/table1_scaling_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/workloads/table1_scaling_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/workloads/table1_scaling_test.cc.o.d"
  "/root/repo/tests/workloads/workload_correctness_test.cc" "tests/CMakeFiles/geoshuffle_tests.dir/workloads/workload_correctness_test.cc.o" "gcc" "tests/CMakeFiles/geoshuffle_tests.dir/workloads/workload_correctness_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geoshuffle.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
