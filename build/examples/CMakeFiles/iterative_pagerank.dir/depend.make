# Empty dependencies file for iterative_pagerank.
# This may be replaced when dependencies are built.
