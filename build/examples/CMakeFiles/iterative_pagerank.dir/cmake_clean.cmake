file(REMOVE_RECURSE
  "CMakeFiles/iterative_pagerank.dir/iterative_pagerank.cpp.o"
  "CMakeFiles/iterative_pagerank.dir/iterative_pagerank.cpp.o.d"
  "iterative_pagerank"
  "iterative_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
