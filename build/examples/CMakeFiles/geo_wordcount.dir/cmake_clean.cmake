file(REMOVE_RECURSE
  "CMakeFiles/geo_wordcount.dir/geo_wordcount.cpp.o"
  "CMakeFiles/geo_wordcount.dir/geo_wordcount.cpp.o.d"
  "geo_wordcount"
  "geo_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
