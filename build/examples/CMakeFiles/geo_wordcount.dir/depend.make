# Empty dependencies file for geo_wordcount.
# This may be replaced when dependencies are built.
