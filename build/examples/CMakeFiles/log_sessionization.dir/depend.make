# Empty dependencies file for log_sessionization.
# This may be replaced when dependencies are built.
