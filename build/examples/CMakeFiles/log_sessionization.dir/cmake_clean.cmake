file(REMOVE_RECURSE
  "CMakeFiles/log_sessionization.dir/log_sessionization.cpp.o"
  "CMakeFiles/log_sessionization.dir/log_sessionization.cpp.o.d"
  "log_sessionization"
  "log_sessionization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_sessionization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
