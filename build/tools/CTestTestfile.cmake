# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(geosim_help "/root/repo/build/tools/geosim" "--help")
set_tests_properties(geosim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(geosim_sort_aggshuffle "/root/repo/build/tools/geosim" "--workload=sort" "--scheme=aggshuffle" "--runs=1" "--scale=2000")
set_tests_properties(geosim_sort_aggshuffle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(geosim_wordcount_spark_gantt "/root/repo/build/tools/geosim" "--workload=wordcount" "--scheme=spark" "--runs=1" "--scale=2000" "--gantt")
set_tests_properties(geosim_wordcount_spark_gantt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(geosim_pagerank_centralized "/root/repo/build/tools/geosim" "--workload=pagerank" "--scheme=centralized" "--runs=2" "--scale=2000" "--aggregators=2")
set_tests_properties(geosim_pagerank_centralized PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(geosim_rejects_unknown_flag "/root/repo/build/tools/geosim" "--bogus=1")
set_tests_properties(geosim_rejects_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(geosim_writes_chrome_trace "/root/repo/build/tools/geosim" "--workload=sort" "--scheme=aggshuffle" "--runs=1" "--scale=2000" "--trace=geosim_test_trace.json")
set_tests_properties(geosim_writes_chrome_trace PROPERTIES  PASS_REGULAR_EXPRESSION "Chrome trace written" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
