# Empty dependencies file for geosim.
# This may be replaced when dependencies are built.
