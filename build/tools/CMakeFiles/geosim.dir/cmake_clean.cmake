file(REMOVE_RECURSE
  "CMakeFiles/geosim.dir/geosim.cc.o"
  "CMakeFiles/geosim.dir/geosim.cc.o.d"
  "geosim"
  "geosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
