# Empty dependencies file for bench_fig9_stage_breakdown.
# This may be replaced when dependencies are built.
