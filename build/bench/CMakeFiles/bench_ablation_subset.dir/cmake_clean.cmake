file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_subset.dir/bench_ablation_subset.cc.o"
  "CMakeFiles/bench_ablation_subset.dir/bench_ablation_subset.cc.o.d"
  "bench_ablation_subset"
  "bench_ablation_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
