# Empty dependencies file for bench_ablation_subset.
# This may be replaced when dependencies are built.
