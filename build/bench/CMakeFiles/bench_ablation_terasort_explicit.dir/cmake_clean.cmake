file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_terasort_explicit.dir/bench_ablation_terasort_explicit.cc.o"
  "CMakeFiles/bench_ablation_terasort_explicit.dir/bench_ablation_terasort_explicit.cc.o.d"
  "bench_ablation_terasort_explicit"
  "bench_ablation_terasort_explicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_terasort_explicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
