# Empty dependencies file for bench_ablation_terasort_explicit.
# This may be replaced when dependencies are built.
