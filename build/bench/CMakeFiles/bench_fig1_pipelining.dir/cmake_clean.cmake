file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pipelining.dir/bench_fig1_pipelining.cc.o"
  "CMakeFiles/bench_fig1_pipelining.dir/bench_fig1_pipelining.cc.o.d"
  "bench_fig1_pipelining"
  "bench_fig1_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
