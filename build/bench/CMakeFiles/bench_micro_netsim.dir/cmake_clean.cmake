file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_netsim.dir/bench_micro_netsim.cc.o"
  "CMakeFiles/bench_micro_netsim.dir/bench_micro_netsim.cc.o.d"
  "bench_micro_netsim"
  "bench_micro_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
