file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_combine.dir/bench_ablation_combine.cc.o"
  "CMakeFiles/bench_ablation_combine.dir/bench_ablation_combine.cc.o.d"
  "bench_ablation_combine"
  "bench_ablation_combine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_combine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
