file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aggregator.dir/bench_ablation_aggregator.cc.o"
  "CMakeFiles/bench_ablation_aggregator.dir/bench_ablation_aggregator.cc.o.d"
  "bench_ablation_aggregator"
  "bench_ablation_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
