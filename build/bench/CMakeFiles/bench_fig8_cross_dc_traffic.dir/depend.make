# Empty dependencies file for bench_fig8_cross_dc_traffic.
# This may be replaced when dependencies are built.
