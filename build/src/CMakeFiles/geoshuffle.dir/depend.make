# Empty dependencies file for geoshuffle.
# This may be replaced when dependencies are built.
