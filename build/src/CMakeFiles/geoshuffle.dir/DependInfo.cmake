
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cc" "src/CMakeFiles/geoshuffle.dir/common/log.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/geoshuffle.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/geoshuffle.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/geoshuffle.dir/common/table.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/common/table.cc.o.d"
  "/root/repo/src/dag/dag_scheduler.cc" "src/CMakeFiles/geoshuffle.dir/dag/dag_scheduler.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/dag/dag_scheduler.cc.o.d"
  "/root/repo/src/data/combiner.cc" "src/CMakeFiles/geoshuffle.dir/data/combiner.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/data/combiner.cc.o.d"
  "/root/repo/src/data/compression.cc" "src/CMakeFiles/geoshuffle.dir/data/compression.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/data/compression.cc.o.d"
  "/root/repo/src/data/partitioner.cc" "src/CMakeFiles/geoshuffle.dir/data/partitioner.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/data/partitioner.cc.o.d"
  "/root/repo/src/data/record.cc" "src/CMakeFiles/geoshuffle.dir/data/record.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/data/record.cc.o.d"
  "/root/repo/src/engine/cluster.cc" "src/CMakeFiles/geoshuffle.dir/engine/cluster.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/engine/cluster.cc.o.d"
  "/root/repo/src/engine/dataset.cc" "src/CMakeFiles/geoshuffle.dir/engine/dataset.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/engine/dataset.cc.o.d"
  "/root/repo/src/engine/job_runner.cc" "src/CMakeFiles/geoshuffle.dir/engine/job_runner.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/engine/job_runner.cc.o.d"
  "/root/repo/src/engine/trace.cc" "src/CMakeFiles/geoshuffle.dir/engine/trace.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/engine/trace.cc.o.d"
  "/root/repo/src/exec/disk.cc" "src/CMakeFiles/geoshuffle.dir/exec/disk.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/exec/disk.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "src/CMakeFiles/geoshuffle.dir/exec/evaluator.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/exec/evaluator.cc.o.d"
  "/root/repo/src/netsim/network.cc" "src/CMakeFiles/geoshuffle.dir/netsim/network.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/netsim/network.cc.o.d"
  "/root/repo/src/netsim/pricing.cc" "src/CMakeFiles/geoshuffle.dir/netsim/pricing.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/netsim/pricing.cc.o.d"
  "/root/repo/src/netsim/topology.cc" "src/CMakeFiles/geoshuffle.dir/netsim/topology.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/netsim/topology.cc.o.d"
  "/root/repo/src/rdd/rdd.cc" "src/CMakeFiles/geoshuffle.dir/rdd/rdd.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/rdd/rdd.cc.o.d"
  "/root/repo/src/sched/task_scheduler.cc" "src/CMakeFiles/geoshuffle.dir/sched/task_scheduler.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/sched/task_scheduler.cc.o.d"
  "/root/repo/src/simcore/simulator.cc" "src/CMakeFiles/geoshuffle.dir/simcore/simulator.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/simcore/simulator.cc.o.d"
  "/root/repo/src/storage/block_manager.cc" "src/CMakeFiles/geoshuffle.dir/storage/block_manager.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/storage/block_manager.cc.o.d"
  "/root/repo/src/storage/map_output_tracker.cc" "src/CMakeFiles/geoshuffle.dir/storage/map_output_tracker.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/storage/map_output_tracker.cc.o.d"
  "/root/repo/src/workloads/hibench.cc" "src/CMakeFiles/geoshuffle.dir/workloads/hibench.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/workloads/hibench.cc.o.d"
  "/root/repo/src/workloads/input_gen.cc" "src/CMakeFiles/geoshuffle.dir/workloads/input_gen.cc.o" "gcc" "src/CMakeFiles/geoshuffle.dir/workloads/input_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
