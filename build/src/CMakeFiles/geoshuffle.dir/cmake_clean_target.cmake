file(REMOVE_RECURSE
  "libgeoshuffle.a"
)
