# Empty compiler generated dependencies file for geoshuffle.
# This may be replaced when dependencies are built.
