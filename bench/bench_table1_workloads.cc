// Reproduces Table I: the specifications of the five HiBench workloads, at
// paper scale and at this run's scale, with the actually generated input
// volume and placement measured from the generators.
#include <iostream>

#include "common/table.h"
#include "harness.h"
#include "workloads/input_gen.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Table I: workload specifications ===\n";
  PrintClusterHeader(h);

  const char* paper_specs[] = {
      "The total size of generated input files is 3.2 GB.",
      "The total size of generated input data is 320 MB.",
      "The input has 32 million records. Each record is 100 bytes in size.",
      "The input has 500,000 pages. The maximum number of iterations is 3.",
      "The input has 100,000 pages, with 100 classes.",
  };

  TextTable table({"Workload", "Paper specification (Table I)",
                   "Scaled specification"});
  int i = 0;
  for (const std::string& name : AllWorkloadNames()) {
    WorkloadParams params;
    params.scale = h.scale;
    auto wl = MakeWorkload(name, params);
    table.AddRow({name, paper_specs[i++], wl->SpecSummary()});
  }
  std::cout << table.Render() << "\n";

  std::cout << "Input placement across datacenters (ingest-skewed, like "
               "HDFS under a single-region NameNode):\n";
  TextTable placement({"Datacenter", "input fraction"});
  Topology topo = MakeTopology(h);
  auto weights = DefaultDcWeights(topo.num_datacenters());
  for (DcIndex dc = 0; dc < topo.num_datacenters(); ++dc) {
    placement.AddRow({topo.datacenter(dc).name, FmtDouble(weights[dc], 2)});
  }
  std::cout << placement.Render();
  std::cout << "\nParallelism: 48 map partitions, 8 reduce tasks (paper: "
               "\"maximum parallelism of both map and reduce is set to 8\" "
               "per region group).\n";
  return 0;
}
