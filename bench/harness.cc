#include "harness.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <utility>

#include "common/check.h"
#include "common/table.h"
#include "netsim/pricing.h"

namespace gs::bench {

HarnessConfig HarnessConfig::FromEnv() {
  HarnessConfig h;
  if (const char* runs = std::getenv("GS_RUNS")) {
    h.runs = std::max(1, std::atoi(runs));
  }
  if (const char* scale = std::getenv("GS_SCALE")) {
    h.scale = std::max(1.0, std::atof(scale));
  }
  return h;
}

Topology MakeTopology(const HarnessConfig& h) {
  return Ec2SixRegionTopology(h.scale);
}

RunConfig MakeRunConfig(const HarnessConfig& h, Scheme scheme,
                        std::uint64_t seed) {
  RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = seed;
  cfg.scale = h.scale;
  cfg.cost = CostModel{}.Scaled(h.scale);
  cfg.net.jitter_interval = h.jitter_interval;
  cfg.net.jitter_momentum = h.jitter_momentum;
  // A small per-attempt reduce-task failure rate, as observed on shared
  // EC2 tenancy — the recovery-path difference (WAN re-fetch vs local
  // re-read, Fig. 2) is part of what the paper measures.
  cfg.fault.reduce_failure_prob = 0.08;
  cfg.observe.egress_usd_per_gib = WanPricing::Ec2SixRegionTariff().rates();
  return cfg;
}

RunOutcome RunOnce(const HarnessConfig& h, const std::string& workload,
                   const WorkloadParams& params, Scheme scheme,
                   std::uint64_t seed) {
  const double wall_start = WallSeconds();
  GeoCluster cluster(MakeTopology(h), MakeRunConfig(h, scheme, seed));
  auto wl = MakeWorkload(workload, params);
  RunResult result = wl->Run(cluster, /*data_seed=*/seed * 7919 + 13);
  RunOutcome out;
  out.jct_seconds = result.metrics.jct();
  out.wall_seconds = WallSeconds() - wall_start;
  out.cross_dc_bytes = result.metrics.cross_dc_bytes;
  out.metrics = result.metrics;
  out.report = std::move(result.report);
  out.report.label = workload + "/" + SchemeName(scheme);
  if (const char* path = std::getenv("GS_BENCH_REPORT")) {
    if (*path != '\0') {
      std::ofstream rep(path);
      GS_CHECK_MSG(rep.good(), "cannot write " << path);
      rep << out.report.ToJson() << "\n";
    }
  }
  return out;
}

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void WriteWallMeasurementsJson(const std::string& path,
                               const std::vector<WallMeasurement>& ms) {
  std::ofstream out(path);
  GS_CHECK_MSG(out.good(), "cannot write " << path);
  out << "[\n";
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const WallMeasurement& m = ms[i];
    out << "  {\"name\": \"" << m.name << "\", \"threads\": " << m.threads
        << ", \"iters\": " << m.iters << ", \"seconds\": "
        << std::setprecision(6) << std::fixed << m.seconds << "}"
        << (i + 1 < ms.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

SchemeSummary RunMany(const HarnessConfig& h, const std::string& workload,
                      const WorkloadParams& params, Scheme scheme) {
  SchemeSummary s;
  std::vector<double> jcts, traffic;
  for (int r = 0; r < h.runs; ++r) {
    RunOutcome out = RunOnce(h, workload, params, scheme,
                             static_cast<std::uint64_t>(r) + 1);
    jcts.push_back(out.jct_seconds);
    traffic.push_back(ToMiB(out.cross_dc_bytes));
    s.runs.push_back(std::move(out));
  }
  s.jct = Summarize(jcts);
  s.cross_dc_mib = Summarize(traffic);
  return s;
}

void PrintClusterHeader(const HarnessConfig& h) {
  Topology topo = MakeTopology(h);
  std::cout << "Cluster (paper Fig. 6): " << topo.num_datacenters()
            << " EC2 regions, " << (topo.num_nodes() - 1)
            << " workers + 1 driver; intra-DC 1 Gbps, inter-DC 80-300 Mbps "
               "with jitter.\n"
            << "Scale divisor: " << h.scale << " (data volumes and all "
            << "rates divided equally; timings match full scale).\n"
            << "Runs per configuration: " << h.runs << "\n\n";
}

const std::vector<Scheme>& AllSchemes() {
  static const std::vector<Scheme> schemes = {
      Scheme::kSpark, Scheme::kCentralized, Scheme::kAggShuffle};
  return schemes;
}

}  // namespace gs::bench
