// Coded shuffle vs AggShuffle: the compute-vs-WAN-bytes crossover
// (docs/CODED.md).
//
// Coding buys WAN bytes with compute: every map partition runs on r
// datacenters, so cross-DC shuffle volume drops (most shard bytes are
// already home, and XOR groups multicast the rest) while (r-1)-fold
// redundant map seconds are charged. Which side wins depends on the
// WAN-egress-to-compute price ratio — exactly the trade the paper's Sec. V
// discussion leaves to the operator. This bench pins both sides:
//
//   policies   agg (AggShuffle baseline), spark (uncoded fetch),
//              coded-r2, coded-r3
//   traces     clean; stragglers (heavy-tailed map durations); crash
//              (a worker dies mid-job and restarts)
//
// For each trace it reports per-policy WAN bytes, redundant compute, and
// JCT, then sweeps the WAN price across compute price ratios and prints
// the crossover: the $/GiB-per-$/core-hour ratio above which each coded
// redundancy is cheaper than AggShuffle,
//
//   rho* = replica_compute_core_hours / wan_gib_saved.
//
// The bench aborts unless, on the clean trace, coded r=2 moves strictly
// fewer cross-DC bytes than AggShuffle and actually multicast at least one
// XOR group — the acceptance bar this bench exists to pin (CI gates the
// same property from the JSON).
//
// Environment: GS_SCALE as usual; GS_BENCH_JSON writes the sweep rows as
// JSON (the run_benches.sh convention). GS_RUNS is ignored — one
// deterministic seed per cell; rerunning reproduces it byte for byte.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"
#include "engine/cluster.h"
#include "engine/dataset.h"
#include "harness.h"
#include "workloads/hibench.h"

namespace {

using namespace gs;
using namespace gs::bench;

constexpr std::uint64_t kSeed = 11;
constexpr std::uint64_t kDataSeed = 7932;  // geosim's default wordcount seed

struct SweepRow {
  std::string trace;
  std::string policy;
  int r = 0;
  double jct_s = 0;
  double cross_dc_mib = 0;
  int coded_groups = 0;
  double multicast_mib = 0;
  double residual_mib = 0;
  double local_mib = 0;
  double replica_compute_s = 0;
};

struct TraceCase {
  std::string name;
  bool stragglers = false;
  bool crash = false;
};

struct PolicyCase {
  std::string name;
  Scheme scheme;
  int r = 0;  // 0 = coding off
};

RunResult RunCell(const HarnessConfig& h, const TraceCase& trace,
                  const PolicyCase& policy, SimTime crash_at) {
  RunConfig cfg = MakeRunConfig(h, policy.scheme, kSeed);
  if (policy.r > 0) {
    cfg.coded.enabled = true;
    cfg.coded.redundancy_r = policy.r;
  }
  if (trace.stragglers) {
    cfg.cost.straggler_sigma = 0.3;
    cfg.cost.straggler_prob = 0.1;
    cfg.cost.straggler_factor = 4.0;
  }
  if (trace.crash && crash_at > 0) {
    NodeCrashEvent e;
    e.at = crash_at;
    e.node = 3;
    e.restart_after = Seconds(5);
    cfg.fault.plan.node_crashes.push_back(e);
  }
  GeoCluster cluster(MakeTopology(h), cfg);
  WorkloadParams params;
  params.scale = h.scale;
  return MakeWorkload("wordcount", params)->Run(cluster, kDataSeed);
}

SweepRow MakeRow(const std::string& trace, const PolicyCase& policy,
                 const RunResult& run) {
  SweepRow row;
  row.trace = trace;
  row.policy = policy.name;
  row.r = policy.r;
  row.jct_s = run.metrics.jct();
  row.cross_dc_mib = ToMiB(run.metrics.cross_dc_bytes);
  row.coded_groups = run.metrics.coded_groups;
  row.multicast_mib = ToMiB(run.metrics.coded_multicast_bytes);
  row.residual_mib = ToMiB(run.metrics.coded_residual_bytes);
  row.local_mib = ToMiB(run.metrics.coded_local_bytes);
  row.replica_compute_s = run.metrics.coded_replica_compute_seconds;
  return row;
}

void WriteJson(const std::string& path, const std::vector<SweepRow>& rows) {
  std::ofstream out(path);
  GS_CHECK_MSG(out.good(), "cannot write " << path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    out << "  {\"trace\": \"" << r.trace << "\", \"policy\": \"" << r.policy
        << "\", \"r\": " << r.r << ", \"jct_s\": " << std::setprecision(6)
        << r.jct_s << ", \"cross_dc_mib\": " << r.cross_dc_mib
        << ", \"coded_groups\": " << r.coded_groups
        << ", \"multicast_mib\": " << r.multicast_mib
        << ", \"residual_mib\": " << r.residual_mib
        << ", \"local_mib\": " << r.local_mib
        << ", \"replica_compute_s\": " << r.replica_compute_s << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

// The price ratio above which this coded row is cheaper than the AggShuffle
// row: WAN $/GiB divided by compute $/core-hour. Negative when coding never
// pays off (it saved no WAN bytes).
double CrossoverRatio(const SweepRow& coded, const SweepRow& agg) {
  const double saved_gib = (agg.cross_dc_mib - coded.cross_dc_mib) / 1024.0;
  if (saved_gib <= 0) return -1;
  const double compute_hours = coded.replica_compute_s / 3600.0;
  return compute_hours / saved_gib;
}

}  // namespace

int main() {
  if (std::getenv("GS_LOG_INFO") != nullptr) SetLogLevel(LogLevel::kInfo);
  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Coded shuffle vs AggShuffle: compute-vs-WAN crossover "
               "(HiBench WordCount) ===\n";
  PrintClusterHeader(h);

  const std::vector<PolicyCase> policies = {
      {"agg", Scheme::kAggShuffle, 0},
      {"spark", Scheme::kSpark, 0},
      {"coded-r2", Scheme::kSpark, 2},
      {"coded-r3", Scheme::kSpark, 3},
  };
  const std::vector<TraceCase> traces = {
      {"clean", false, false},
      {"stragglers", true, false},
      {"crash", false, true},
  };

  // Resolve the crash time against a clean probe run so the fault lands
  // mid-job at any GS_SCALE.
  const double probe_jct =
      RunCell(h, traces[0], policies[1], 0).metrics.jct();
  std::cout << "\nfault-free probe JCT: " << FmtDouble(probe_jct, 2) << "s\n";
  const SimTime crash_at = 0.3 * probe_jct;

  std::vector<SweepRow> rows;
  TextTable table({"Trace", "Policy", "JCT", "MiB x-DC", "groups",
                   "mcast MiB", "resid MiB", "local MiB", "replica s"});
  double clean_agg_mib = 0, clean_r2_mib = 0;
  int clean_r2_groups = 0;
  for (const TraceCase& tc : traces) {
    std::vector<SweepRow> trace_rows;
    for (const PolicyCase& pc : policies) {
      SweepRow row = MakeRow(tc.name, pc, RunCell(h, tc, pc, crash_at));
      table.AddRow({row.trace, row.policy, FmtDouble(row.jct_s, 2) + "s",
                    FmtDouble(row.cross_dc_mib, 2),
                    std::to_string(row.coded_groups),
                    FmtDouble(row.multicast_mib, 2),
                    FmtDouble(row.residual_mib, 2),
                    FmtDouble(row.local_mib, 2),
                    FmtDouble(row.replica_compute_s, 2)});
      trace_rows.push_back(row);
      rows.push_back(row);
    }
    if (tc.name == "clean") {
      clean_agg_mib = trace_rows[0].cross_dc_mib;
      clean_r2_mib = trace_rows[2].cross_dc_mib;
      clean_r2_groups = trace_rows[2].coded_groups;
    }
  }
  std::cout << "\n" << table.Render();

  // Crossover table: for each trace, the WAN-to-compute price ratio above
  // which each redundancy is cheaper than AggShuffle in dollars.
  TextTable cross({"Trace", "Policy", "GiB saved vs agg", "replica core-h",
                   "crossover $/GiB per $/core-h"});
  for (const TraceCase& tc : traces) {
    const SweepRow* agg = nullptr;
    for (const SweepRow& r : rows) {
      if (r.trace == tc.name && r.policy == "agg") agg = &r;
    }
    for (const SweepRow& r : rows) {
      if (r.trace != tc.name || r.r == 0) continue;
      const double saved_gib = (agg->cross_dc_mib - r.cross_dc_mib) / 1024.0;
      const double ratio = CrossoverRatio(r, *agg);
      cross.AddRow({r.trace, r.policy, FmtDouble(saved_gib, 4),
                    FmtDouble(r.replica_compute_s / 3600.0, 4),
                    ratio < 0 ? "never" : FmtDouble(ratio, 3)});
    }
  }
  std::cout << "\n" << cross.Render();

  // The property this bench exists to pin (CI re-checks it from the JSON):
  // on the clean trace, r=2 replication locality strictly beats
  // AggShuffle's aggregation savings, via actual coded multicast.
  GS_CHECK_MSG(clean_r2_mib < clean_agg_mib,
               "coded r=2 (" << clean_r2_mib
                             << " MiB) no longer beats AggShuffle ("
                             << clean_agg_mib << " MiB) on the clean trace");
  GS_CHECK_MSG(clean_r2_groups >= 1,
               "coded r=2 formed no XOR groups on the clean trace");
  std::cout << "\nClean trace: coded r=2 moves " << FmtDouble(clean_r2_mib, 2)
            << " MiB cross-DC vs AggShuffle's " << FmtDouble(clean_agg_mib, 2)
            << " MiB, with " << clean_r2_groups << " XOR groups.\n";

  if (const char* json = std::getenv("GS_BENCH_JSON");
      json != nullptr && *json != '\0') {
    WriteJson(json, rows);
    std::cout << "\nSweep rows written to " << json << "\n";
  }
  return 0;
}
