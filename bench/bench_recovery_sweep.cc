// Recovery sweep: a worker node crashes partway through the map stage.
//
// Sweeps the crash point across the map-stage window under all three
// schemes (Sort workload, deterministic environment) and reports the
// completion-time penalty, the *extra* cross-datacenter bytes recovery
// re-transfers, and the recovery counters (fetch failures, map
// resubmissions, push retries). The paper's resilience claim, generalized
// from Fig. 2: fetch-based shuffle re-fetches whole shards over the WAN,
// while Push/Aggregate recovers from data already stored in the aggregator
// datacenter — an order of magnitude less cross-DC re-transfer.
#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Recovery sweep: node crash during the map stage (Sort) "
               "===\n";
  PrintClusterHeader(h);

  WorkloadParams params;
  params.scale = h.scale;
  // Skew the input so DC0 is deterministically the aggregator; the victim
  // below then always sits in a remote datacenter.
  params.dc_weights = {0.4, 0.15, 0.15, 0.1, 0.1, 0.1};
  const NodeIndex victim = 20;  // a DC5 worker

  auto deterministic = [&](Scheme scheme) {
    RunConfig cfg = MakeRunConfig(h, scheme, /*seed=*/7);
    cfg.net.jitter_interval = 0;
    cfg.net.wan_stall_prob = 0;
    cfg.net.wan_flow_efficiency_min = 1.0;
    cfg.cost.straggler_sigma = 0;
    cfg.cost.straggler_prob = 0;
    return cfg;
  };

  const double fractions[] = {0.25, 0.5, 0.75, 0.9};
  TextTable table({"Scheme", "crash at", "JCT penalty", "extra cross-DC",
                   "fetch fail", "maps rerun", "push retry"});
  Bytes extra_at_90[3] = {0, 0, 0};
  int scheme_idx = 0;
  for (Scheme scheme : AllSchemes()) {
    // Healthy probe: baseline and the map-stage window.
    GeoCluster healthy(MakeTopology(h), deterministic(scheme));
    RunResult base = MakeWorkload("Sort", params)->Run(healthy, 99);
    SimTime map_start = 0, map_end = 0;
    for (const StageMetrics& s : base.metrics.stages) {
      if (s.num_tasks == params.map_partitions) {
        map_start = s.submitted;
        map_end = s.completed;
        break;
      }
    }

    for (double f : fractions) {
      RunConfig cfg = deterministic(scheme);
      NodeCrashEvent crash;
      crash.at = map_start + f * (map_end - map_start);
      crash.node = victim;
      cfg.fault.plan.node_crashes.push_back(crash);
      GeoCluster cluster(MakeTopology(h), cfg);
      RunResult r = MakeWorkload("Sort", params)->Run(cluster, 99);
      const Bytes extra =
          r.metrics.cross_dc_bytes - base.metrics.cross_dc_bytes;
      if (f == 0.9) extra_at_90[scheme_idx] = extra;
      table.AddRow({SchemeName(scheme),
                    FmtDouble(100 * f, 0) + "% of map",
                    "+" + FmtDouble(r.metrics.jct() - base.metrics.jct(), 2) +
                        "s",
                    FmtMiB(extra), std::to_string(r.metrics.fetch_failures),
                    std::to_string(r.metrics.map_resubmissions),
                    std::to_string(r.metrics.push_retries)});
    }
    ++scheme_idx;
  }
  std::cout << table.Render() << "\n";

  // Second sweep: random restarting crashes at increasing rates (chaos
  // mode) — whatever the rate, fetch-based shuffle pays for recovery in
  // cross-DC re-transfers while Push/Aggregate's stay near zero.
  TextTable chaos({"Scheme", "mean crash gap", "JCT", "JCT penalty",
                   "extra cross-DC", "crashes"});
  for (Scheme scheme : AllSchemes()) {
    GeoCluster healthy(MakeTopology(h), deterministic(scheme));
    RunResult base = MakeWorkload("Sort", params)->Run(healthy, 99);
    for (SimTime gap : {Seconds(4), Seconds(2), Seconds(1)}) {
      RunConfig cfg = deterministic(scheme);
      cfg.fault.plan.random_crashes.mean_interarrival = gap;
      cfg.fault.plan.random_crashes.restart_after = Seconds(5);
      cfg.fault.plan.random_crashes.max_crashes = 4;
      GeoCluster cluster(MakeTopology(h), cfg);
      RunResult r = MakeWorkload("Sort", params)->Run(cluster, 99);
      chaos.AddRow(
          {SchemeName(scheme), FmtDouble(gap, 0) + "s",
           FmtDouble(r.metrics.jct(), 2) + "s",
           "+" + FmtDouble(r.metrics.jct() - base.metrics.jct(), 2) + "s",
           FmtMiB(r.metrics.cross_dc_bytes - base.metrics.cross_dc_bytes),
           std::to_string(r.metrics.node_crashes)});
    }
  }
  std::cout << chaos.Render() << "\n";

  const Bytes spark_extra = extra_at_90[0];
  const Bytes agg_extra = extra_at_90[2];
  std::cout << "At 90% of the map stage, fetch-based shuffle re-transfers "
            << FmtMiB(spark_extra) << " across datacenters vs "
            << FmtMiB(agg_extra) << " for Push/Aggregate ("
            << FmtDouble(static_cast<double>(spark_extra) /
                             static_cast<double>(std::max<Bytes>(agg_extra, 1)),
                         1)
            << "x).\n"
            << "Expected shape: Push/Aggregate re-transfers >= 10x fewer "
               "bytes — its reducers re-read shuffle input from the "
               "aggregator datacenter, not over the WAN.\n";
  return spark_extra >= 10 * std::max<Bytes>(agg_extra, 1) ? 0 : 1;
}
