// JCT-vs-dollars frontier across shuffle transports (docs/TRANSPORTS.md,
// docs/PERF.md).
//
// Sweeps every ShuffleTransport backend (direct, objstore, fabric) under
// all three schemes on two topologies: the paper's WAN-priced six-region
// EC2 cluster (heterogeneous egress tariff) and a uniform four-DC mesh
// (flat tariff). Each cell reports the simulated JCT and the total dollar
// cost, split into internet-egress and object-store components — one row
// per (topology, scheme, transport) point of the frontier.
//
// The sweep pins the trade the ObjectStoreTransport exists to expose: on
// the WAN-priced cluster, staging is strictly cheaper (staged bytes ride
// the backbone tariff instead of internet egress) and strictly slower
// (store-and-forward barrier, request latencies, shared tier rate) than
// direct shuffle; the bench aborts if that inversion ever disappears.
//
// Environment: GS_SCALE as usual; GS_BENCH_JSON writes the sweep rows as
// JSON (the run_benches.sh convention). GS_RUNS is ignored — one
// deterministic seed per cell; rerunning reproduces it byte for byte.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/table.h"
#include "engine/dataset.h"
#include "engine/transport/transport.h"
#include "harness.h"
#include "netsim/pricing.h"

namespace {

using namespace gs;
using namespace gs::bench;

constexpr std::uint64_t kSeed = 1;

struct TopoCase {
  std::string name;
  bool wan_priced = false;  // heterogeneous egress tariff
};

struct SweepRow {
  std::string topology;
  std::string scheme;
  std::string transport;
  double jct_s = 0;
  double cost_usd = 0;
  double cost_usd_full_scale = 0;
  double egress_cost_usd = 0;
  double store_cost_usd = 0;
  double cross_dc_mib = 0;
};

// A flat four-datacenter mesh: three workers per DC, uniform 200 Mbps WAN
// links, uniform egress tariff. The contrast case to the heterogeneous
// six-region cluster.
Topology UniformMeshTopology(double scale) {
  Topology topo;
  const char* names[] = {"mesh-a", "mesh-b", "mesh-c", "mesh-d"};
  for (int d = 0; d < 4; ++d) {
    const DcIndex dc = topo.AddDatacenter(names[d]);
    for (int n = 0; n < 3; ++n) {
      topo.AddNode({std::string(names[d]) + "-w" + std::to_string(n), dc, 2,
                    Gbps(1) / scale});
    }
  }
  topo.AddUniformWanMesh(Mbps(200) / scale, Mbps(120) / scale,
                         Mbps(280) / scale, Millis(120));
  return topo;
}

SweepRow RunCell(const HarnessConfig& h, const TopoCase& tc, Scheme scheme,
                 TransportKind transport) {
  RunConfig cfg = MakeRunConfig(h, scheme, kSeed);
  cfg.transport.kind = transport;
  Topology topo =
      tc.wan_priced ? MakeTopology(h) : UniformMeshTopology(h.scale);
  if (!tc.wan_priced) {
    cfg.observe.egress_usd_per_gib =
        WanPricing::Uniform(topo.num_datacenters()).rates();
  }
  GeoCluster cluster(std::move(topo), cfg);

  WorkloadParams params;
  params.scale = h.scale;
  auto wl = MakeWorkload("wordcount", params);
  RunResult r = wl->Run(cluster, /*data_seed=*/kSeed * 7919 + 13);

  SweepRow row;
  row.topology = tc.name;
  row.scheme = SchemeName(scheme);
  row.transport = TransportKindName(transport);
  row.jct_s = r.metrics.jct();
  row.cost_usd = r.report.cost_usd;
  row.cost_usd_full_scale = r.report.cost_usd_full_scale;
  row.egress_cost_usd = r.report.egress_cost_usd;
  row.store_cost_usd = r.report.store_cost_usd;
  row.cross_dc_mib = ToMiB(r.metrics.cross_dc_bytes);
  return row;
}

void WriteJson(const std::string& path, const std::vector<SweepRow>& rows) {
  std::ofstream out(path);
  GS_CHECK_MSG(out.good(), "cannot write " << path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    out << "  {\"topology\": \"" << r.topology << "\", \"scheme\": \""
        << r.scheme << "\", \"transport\": \"" << r.transport
        << "\", \"jct_s\": " << std::setprecision(6) << r.jct_s
        << ", \"cost_usd\": " << r.cost_usd
        << ", \"cost_usd_full_scale\": " << r.cost_usd_full_scale
        << ", \"egress_cost_usd\": " << r.egress_cost_usd
        << ", \"store_cost_usd\": " << r.store_cost_usd
        << ", \"cross_dc_mib\": " << r.cross_dc_mib << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main() {
  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Shuffle-transport frontier: JCT vs dollars "
               "(WordCount, 3 transports x 3 schemes x 2 topologies) ===\n";
  PrintClusterHeader(h);

  const TopoCase topologies[] = {
      {"ec2-six-region", /*wan_priced=*/true},
      {"uniform-mesh-4dc", /*wan_priced=*/false},
  };
  const TransportKind transports[] = {TransportKind::kDirect,
                                      TransportKind::kObjectStore,
                                      TransportKind::kFabric};

  std::vector<SweepRow> rows;
  TextTable table({"Topology", "Scheme", "Transport", "JCT", "total $",
                   "egress $", "store $", "MiB x-DC"});
  for (const TopoCase& tc : topologies) {
    for (Scheme scheme : AllSchemes()) {
      for (TransportKind transport : transports) {
        SweepRow row = RunCell(h, tc, scheme, transport);
        table.AddRow({row.topology, row.scheme, row.transport,
                      FmtDouble(row.jct_s, 2) + "s",
                      FmtDouble(row.cost_usd, 4),
                      FmtDouble(row.egress_cost_usd, 4),
                      FmtDouble(row.store_cost_usd, 4),
                      FmtDouble(row.cross_dc_mib, 2)});
        rows.push_back(row);
      }
    }
  }
  std::cout << "\n" << table.Render();

  // The frontier property this bench exists to pin: on the WAN-priced
  // topology the object store must be strictly cheaper AND strictly
  // slower than direct, for every scheme that shuffles across the WAN.
  bool frontier_holds = false;
  for (const SweepRow& direct : rows) {
    if (direct.transport != "direct" || direct.topology != "ec2-six-region") {
      continue;
    }
    for (const SweepRow& staged : rows) {
      if (staged.transport == "objstore" &&
          staged.topology == direct.topology &&
          staged.scheme == direct.scheme &&
          staged.cost_usd < direct.cost_usd &&
          staged.jct_s > direct.jct_s) {
        frontier_holds = true;
      }
    }
  }
  GS_CHECK_MSG(frontier_holds,
               "objstore is no longer cheaper-and-slower than direct on the "
               "WAN-priced topology");
  std::cout << "\nFrontier: on ec2-six-region, objstore trades JCT for "
               "dollars against direct (cheaper and slower); fabric "
               "accelerates intra-DC legs at unchanged egress cost.\n";

  if (const char* json = std::getenv("GS_BENCH_JSON");
      json != nullptr && *json != '\0') {
    WriteJson(json, rows);
    std::cout << "\nSweep rows written to " << json << "\n";
  }
  return 0;
}
