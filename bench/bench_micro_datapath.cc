// Wall-clock baseline of the per-record data path (docs/PERF.md).
//
// Unlike the figure benches, which report *simulated* time, this bench
// measures *real elapsed* time of the compute primitives the engine runs
// per task — evaluate, combine, single-pass shuffle partitioning, shard
// sort, size accounting — on Table-I-sized batches, plus the map-phase
// pipeline through the compute ThreadPool at 1/2/4/8 threads.
//
// Two references are included for before/after comparison:
//  * "legacy:*" rows re-implement the pre-optimization algorithms
//    (std::hash-based combine map, two-pass partition split with
//    unreserved push_back growth and a second full size walk) so the
//    single-thread hot-path gain is measured, not asserted;
//  * the threads sweep shows how task compute scales with pool width
//    (on a single-core host all widths collapse to ~1x, by design).
//
// Output: a human-readable table on stdout and, when GS_BENCH_JSON names
// a path, the raw measurements as JSON (run_benches.sh writes
// BENCH_datapath.json).
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "data/combiner.h"
#include "data/compression.h"
#include "data/partitioner.h"
#include "exec/task_compute.h"
#include "harness.h"
#include "rdd/rdd.h"

namespace {

using namespace gs;
using bench::WallMeasurement;
using bench::WallSeconds;

// TeraSort shape (Table I): 32M records x 100 bytes at paper scale,
// divided by GS_SCALE and spread over the paper's 48 map partitions.
std::vector<Record> TerasortBatch(Rng& rng, std::size_t n) {
  std::vector<Record> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string key(10, '\0');
    for (char& c : key) {
      c = static_cast<char>(' ' + rng.UniformInt(0, 94));
    }
    std::string value(90, '\0');
    for (char& c : value) {
      c = static_cast<char>(' ' + rng.UniformInt(0, 94));
    }
    batch.push_back(Record{std::move(key), std::move(value)});
  }
  return batch;
}

// WordCount shape (Table I): term/count pairs drawn from a Zipf-ish
// vocabulary, the input of the map-side combine.
std::vector<Record> WordcountBatch(Rng& rng, std::size_t n) {
  std::vector<Record> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Smaller ids repeat heavily like frequent words do.
    const std::int64_t bucket = rng.UniformInt(0, 9);
    const std::int64_t id =
        bucket < 7 ? rng.UniformInt(0, 499) : rng.UniformInt(0, 49999);
    batch.push_back(Record{"word-" + std::to_string(id),
                           static_cast<std::int64_t>(1)});
  }
  return batch;
}

// The production map-task compute: evaluate + optional combine +
// single-pass shuffle split, exactly as the engine submits it. The batch
// is moved in, like the engine moves a task's gathered records.
TaskComputeResult RunMapCompute(const Rdd& source, int partition,
                                std::vector<Record> batch,
                                const ShuffleInfo& info,
                                const CombineFn* combine) {
  TaskComputeSpec spec;
  spec.output_rdd = &source;
  spec.partition = partition;
  spec.start.rdd = &source;
  spec.start.partition = partition;
  spec.start.records = std::move(batch);
  spec.combine = combine;
  spec.output = StageOutputKind::kShuffleWrite;
  spec.consumer_shuffle = &info;
  return ComputeTask(std::move(spec));
}

// Pre-optimization reference: per-key std::hash map combine (the shape of
// the old CombineByKey), kept only for the before/after measurement.
std::vector<Record> LegacyCombine(const std::vector<Record>& records,
                                  const CombineFn& fn) {
  std::vector<Record> out;
  std::unordered_map<std::string, std::size_t> index;
  index.reserve(records.size());
  for (const Record& r : records) {
    auto [it, inserted] = index.emplace(r.key, out.size());
    if (inserted) {
      out.push_back(r);
    } else {
      Record& existing = out[it->second];
      existing.value = fn(existing.value, r.value);
    }
  }
  return out;
}

// Pre-optimization reference, step for step what the old engine did per
// map task: Evaluate (which copied the boundary records), a full
// SerializedSize walk for the cpu-time sizing, an unreserved push_back
// split, then CompressedSize per shard (each re-walking its records for
// the serialized size).
std::pair<std::vector<std::vector<Record>>, Bytes> LegacyPartition(
    std::vector<Record> batch, const Partitioner& part) {
  std::vector<Record> records = batch;  // Evaluate's return copy
  const Bytes out_bytes = SerializedSize(records);
  std::vector<std::vector<Record>> shards(
      static_cast<std::size_t>(part.num_shards()));
  for (Record& r : records) {
    shards[static_cast<std::size_t>(part.ShardOf(r.key))].push_back(
        std::move(r));
  }
  Bytes total = 0;
  for (const auto& shard : shards) total += CompressedSize(shard);
  return {std::move(shards), total + (out_bytes ? 0 : 1)};
}

SourceRdd::Partition MakePartition(RecordsPtr records) {
  SourceRdd::Partition p;
  p.records = records;
  p.node = 0;
  p.bytes = SerializedSize(*records);
  return p;
}

}  // namespace

int main() {
  const double scale = [] {
    const char* s = std::getenv("GS_SCALE");
    return s ? std::max(1.0, std::atof(s)) : 100.0;
  }();
  // Table I divided by scale, spread over the paper's 48 map tasks.
  const int kMaps = 48;
  const std::size_t tera_records =
      static_cast<std::size_t>(32'000'000 / scale);
  const std::size_t tera_per_map = tera_records / kMaps;
  const std::size_t words_total =
      static_cast<std::size_t>(8'000'000 / scale);

  std::cout << "=== Datapath wall-clock baseline (Table-I-sized inputs, "
            << "scale " << scale << ") ===\n"
            << "terasort: " << tera_records << " records x 100 B over "
            << kMaps << " map tasks; wordcount combine input: "
            << words_total << " records\n\n";

  Rng rng(42);
  std::vector<WallMeasurement> ms;

  // --- single-thread primitives -----------------------------------------
  std::vector<std::vector<Record>> tera_batches;
  for (int m = 0; m < kMaps; ++m) {
    tera_batches.push_back(TerasortBatch(rng, tera_per_map));
  }
  std::vector<Record> word_batch = WordcountBatch(rng, words_total);

  ShuffleInfo info;
  info.id = 0;
  info.partitioner = std::make_shared<HashPartitioner>(8);
  auto source_records = MakeRecords(tera_batches.front());
  SourceRdd source(0, "bench-src",
                   std::vector<SourceRdd::Partition>(
                       static_cast<std::size_t>(kMaps),
                       MakePartition(source_records)));
  const CombineFn sum = SumInt64();

  auto measure = [&](const std::string& name, int iters, auto fn) {
    const double start = WallSeconds();
    for (int i = 0; i < iters; ++i) fn(i);
    const double elapsed = WallSeconds() - start;
    ms.push_back(WallMeasurement{name, 1, iters, elapsed});
    return elapsed;
  };

  // Inputs are copied before (not inside) the timed region, then moved
  // into each call — the engine never copies gathered records.
  std::vector<std::vector<Record>> inputs = tera_batches;
  measure("partition", kMaps, [&](int i) {
    TaskComputeResult r = RunMapCompute(
        source, i, std::move(inputs[static_cast<std::size_t>(i)]), info,
        nullptr);
    if (r.shard_total_bytes == 0) std::abort();
  });
  inputs = tera_batches;
  measure("legacy:partition", kMaps, [&](int i) {
    auto [shards, total] =
        LegacyPartition(std::move(inputs[static_cast<std::size_t>(i)]),
                        *info.partitioner);
    if (total == 0) std::abort();
  });
  measure("combine", 8, [&](int) {
    std::vector<Record> out = CombineByKey(word_batch, sum);
    if (out.empty()) std::abort();
  });
  measure("legacy:combine", 8, [&](int) {
    std::vector<Record> out = LegacyCombine(word_batch, sum);
    if (out.empty()) std::abort();
  });
  measure("sort", 8, [&](int) {
    ShuffleInfo sort_info;
    sort_info.id = 1;
    sort_info.partitioner = info.partitioner;
    sort_info.sort_by_key = true;
    ShuffledRdd shuffled(1, "bench-sorted",
                         std::make_shared<SourceRdd>(
                             0, "s", std::vector<SourceRdd::Partition>(
                                         1, MakePartition(source_records))),
                         sort_info);
    std::vector<Record> out = shuffled.ProcessShard(tera_batches.front());
    if (out.empty()) std::abort();
  });
  measure("serialize", 8, [&](int) {
    const Bytes raw = SerializedSize(tera_batches.front());
    const Bytes z = CompressedSize(tera_batches.front(), raw);
    if (z == 0) std::abort();
  });

  // --- submit throughput ------------------------------------------------
  // Pure pool overhead on trivial jobs: per-job Submit, one-wave
  // SubmitBatch, and the pre-optimization submission shape (a
  // packaged_task behind a shared_ptr, wrapped copyably) for reference.
  {
    constexpr int kJobs = 100'000;
    ThreadPool pool(1);
    std::atomic<std::int64_t> sink{0};
    measure("submit", kJobs,
            [&](int) { pool.Submit([&sink] { sink.fetch_add(1); }); });
    pool.WaitIdle();
    measure("legacy:submit", kJobs, [&](int) {
      // One shared_ptr control block + one packaged_task allocation per
      // job, like the old Submit; the promise-based path has neither.
      auto task = std::make_shared<std::packaged_task<void()>>(
          [&sink] { sink.fetch_add(1); });
      std::future<void> f = task->get_future();
      pool.Submit([task] { (*task)(); });
      static_cast<void>(f);
    });
    pool.WaitIdle();
    {
      const double start = WallSeconds();
      std::vector<std::function<void()>> wave;
      wave.reserve(kJobs);
      for (int i = 0; i < kJobs; ++i) {
        wave.emplace_back([&sink] { sink.fetch_add(1); });
      }
      pool.SubmitBatch(std::move(wave));
      ms.push_back(WallMeasurement{"submit-batch", 1, kJobs,
                                   WallSeconds() - start});
    }
    pool.WaitIdle();
    if (sink.load() != 3 * kJobs) std::abort();
  }

  // --- map-phase pipeline at 1/2/4/8 threads ----------------------------
  // The engine's pattern: a gather barrier releases every map task's
  // compute as one SubmitBatch wave, results joined as they are needed.
  // Identical outputs at every width. Min of 3 runs per width (the rows
  // feed the CI perf-smoke gate, so per-run noise matters). Widths are
  // clamped to the host (Width::kClampToHardware): on a 1-core host every
  // row collapses to one worker instead of oversubscribing — asking for 8
  // threads must never be slower than asking for 1.
  Bytes reference_total = 0;
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    double best = 0;
    for (int rep = -1; rep < 3; ++rep) {  // rep -1 is an untimed warmup
      const double start = WallSeconds();
      std::vector<std::function<TaskComputeResult()>> wave;
      wave.reserve(kMaps);
      for (int m = 0; m < kMaps; ++m) {
        wave.emplace_back([&, m] {
          return RunMapCompute(source, m,
                               tera_batches[static_cast<std::size_t>(m)],
                               info, nullptr);
        });
      }
      std::vector<std::future<TaskComputeResult>> futures =
          pool.SubmitBatch(std::move(wave));
      Bytes total = 0;
      for (auto& f : futures) total += f.get().shard_total_bytes;
      const double elapsed = WallSeconds() - start;
      if (rep < 0) continue;
      if (rep == 0 || elapsed < best) best = elapsed;
      if (reference_total == 0) {
        reference_total = total;
      } else if (total != reference_total) {
        std::cerr << "determinism violation: shard bytes differ across "
                     "thread counts\n";
        return 1;
      }
    }
    ms.push_back(WallMeasurement{"map-pipeline", threads, kMaps, best});
  }

  TextTable table({"measurement", "threads", "iters", "wall ms",
                   "ms/iter"});
  for (const WallMeasurement& m : ms) {
    table.AddRow({m.name, std::to_string(m.threads),
                  std::to_string(m.iters),
                  FmtDouble(m.seconds * 1e3, 1),
                  FmtDouble(m.seconds * 1e3 / m.iters, 2)});
  }
  std::cout << table.Render();

  auto find = [&](const std::string& name, int threads) -> double {
    for (const WallMeasurement& m : ms) {
      if (m.name == name && m.threads == threads) return m.seconds;
    }
    return 0;
  };
  std::cout << "\nhot-path speedup vs legacy (single thread): partition "
            << FmtDouble(find("legacy:partition", 1) /
                            std::max(1e-9, find("partition", 1)), 2)
            << "x, combine "
            << FmtDouble(find("legacy:combine", 1) /
                            std::max(1e-9, find("combine", 1)), 2)
            << "x\npipeline speedup vs 1 thread: 2t "
            << FmtDouble(find("map-pipeline", 1) /
                            std::max(1e-9, find("map-pipeline", 2)), 2)
            << "x, 4t "
            << FmtDouble(find("map-pipeline", 1) /
                            std::max(1e-9, find("map-pipeline", 4)), 2)
            << "x, 8t "
            << FmtDouble(find("map-pipeline", 1) /
                            std::max(1e-9, find("map-pipeline", 8)), 2)
            << "x (hardware concurrency: "
            << ThreadPool::HardwareConcurrency() << ")\n";

  const char* path = std::getenv("GS_BENCH_JSON");
  if (path != nullptr && *path != '\0') {
    bench::WriteWallMeasurementsJson(path, ms);
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}
