// Ablation: compute pressure in the aggregator datacenter (Sec. IV-E).
//
// "The effectiveness of transferTo() relies on sufficient computation
// resources in the aggregator datacenter... Push/Aggregate basically
// trades more computation resources for lower job completion times."
// Shrinking the aggregator datacenter's task slots shows the trade-off:
// receiver and reduce tasks queue (or reducers spill to other datacenters),
// eroding — but not erasing — the benefit.
#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Ablation: aggregator-datacenter task slots (Sec. IV-E, "
               "PageRank) ===\n";
  PrintClusterHeader(h);

  WorkloadParams params;
  params.scale = h.scale;

  // Spark baseline for reference (full slots everywhere).
  std::vector<double> spark_jcts;
  for (int r = 0; r < h.runs; ++r) {
    RunConfig cfg = MakeRunConfig(h, Scheme::kSpark, r + 1);
    GeoCluster cluster(MakeTopology(h), cfg);
    auto wl = MakeWorkload("PageRank", params);
    spark_jcts.push_back(
        wl->Run(cluster, static_cast<std::uint64_t>(r) * 7919 + 13)
            .metrics.jct());
  }
  const double spark_mean = Summarize(spark_jcts).trimmed_mean;

  TextTable table({"Aggregator DC slots per worker", "AggShuffle JCT",
                   "vs Spark (full cluster)"});
  std::vector<double> means;
  for (int cores : {2, 1}) {
    std::vector<double> jcts;
    for (int r = 0; r < h.runs; ++r) {
      RunConfig cfg = MakeRunConfig(h, Scheme::kAggShuffle, r + 1);
      Topology topo = MakeTopology(h);
      // The ingest-skewed inputs make N. Virginia (dc 0) the aggregator.
      topo.SetWorkerCores(0, cores);
      GeoCluster cluster(std::move(topo), cfg);
      auto wl = MakeWorkload("PageRank", params);
      jcts.push_back(
          wl->Run(cluster, static_cast<std::uint64_t>(r) * 7919 + 13)
              .metrics.jct());
    }
    means.push_back(Summarize(jcts).trimmed_mean);
    table.AddRow({std::to_string(cores) + " (DC total " +
                      std::to_string(cores * 4) + ")",
                  FmtDouble(means.back(), 2) + "s",
                  FmtPercent(means.back() / spark_mean - 1.0)});
  }
  std::cout << table.Render() << "\n";
  std::cout << "Spark (full cluster) trimmed mean: "
            << FmtDouble(spark_mean, 2) << "s\n"
            << "Expected: halving aggregator slots slows AggShuffle (the "
               "Sec. IV-E trade-off) while it remains competitive.\n";
  return means[1] > means[0] ? 0 : 1;
}
