// Reproduces Fig. 7: average job completion time of the five HiBench
// workloads under Spark / Centralized / AggShuffle.
//
// Like the paper: 10 iterative runs per configuration (WAN jitter reseeded
// each run), reporting the 10% trimmed mean with the median and
// interquartile range as dispersion. Expected shape: AggShuffle lowest
// trimmed mean on every workload (14%-73% below Spark) with the smallest
// IQR; Centralized competitive only on TeraSort.
#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Fig. 7: average job completion time (seconds) ===\n";
  PrintClusterHeader(h);

  TextTable table({"Workload", "Scheme", "trimmed mean", "median",
                   "IQR (p25-p75)", "min", "max", "vs Spark"});
  TextTable summary({"Workload", "AggShuffle vs Spark",
                     "AggShuffle vs Centralized", "AggShuffle IQR smallest?"});

  for (const std::string& name : AllWorkloadNames()) {
    WorkloadParams params;
    params.scale = h.scale;
    double spark_mean = 0, centralized_mean = 0, agg_mean = 0;
    double spark_iqr = 0, centralized_iqr = 0, agg_iqr = 0;
    for (Scheme scheme : AllSchemes()) {
      SchemeSummary s = RunMany(h, name, params, scheme);
      if (scheme == Scheme::kSpark) {
        spark_mean = s.jct.trimmed_mean;
        spark_iqr = s.jct.iqr();
      } else if (scheme == Scheme::kCentralized) {
        centralized_mean = s.jct.trimmed_mean;
        centralized_iqr = s.jct.iqr();
      } else {
        agg_mean = s.jct.trimmed_mean;
        agg_iqr = s.jct.iqr();
      }
      const double vs_spark =
          spark_mean > 0 ? s.jct.trimmed_mean / spark_mean - 1.0 : 0.0;
      table.AddRow({name, SchemeName(scheme),
                    FmtDouble(s.jct.trimmed_mean, 2),
                    FmtDouble(s.jct.median, 2),
                    FmtDouble(s.jct.p25, 2) + " - " + FmtDouble(s.jct.p75, 2),
                    FmtDouble(s.jct.min, 2), FmtDouble(s.jct.max, 2),
                    scheme == Scheme::kSpark ? "-" : FmtPercent(vs_spark)});
    }
    table.AddSeparator();
    summary.AddRow({name, FmtPercent(agg_mean / spark_mean - 1.0),
                    FmtPercent(agg_mean / centralized_mean - 1.0),
                    (agg_iqr <= spark_iqr && agg_iqr <= centralized_iqr)
                        ? "yes"
                        : "no"});
  }

  std::cout << table.Render() << "\n";
  std::cout << "Headline (paper: AggShuffle reduces JCT by 14%-73% vs Spark, "
               "with the lowest variance):\n"
            << summary.Render();
  return 0;
}
