// Reproduces Fig. 9: per-stage execution time breakdown of each workload
// under the three schemes (trimmed mean of each stage's span over runs).
//
// Expected shape: the Centralized scheme has by far the longest early
// stage(s) (it first collects all raw input) but fast late stages;
// AggShuffle finishes both early and late stages quickly; Spark shows the
// largest dispersion, especially in reduce stages.
#include <algorithm>
#include <iostream>
#include <map>

#include "common/stats.h"
#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Fig. 9: stage execution time breakdown (seconds) ===\n";
  PrintClusterHeader(h);

  for (const std::string& name : AllWorkloadNames()) {
    WorkloadParams params;
    params.scale = h.scale;
    std::cout << "--- " << name << " ---\n";
    TextTable table({"Scheme", "Stage", "trimmed mean", "median",
                     "IQR (p25-p75)"});
    for (Scheme scheme : AllSchemes()) {
      SchemeSummary s = RunMany(h, name, params, scheme);
      // Aggregate span samples per stage position (stages are deterministic
      // per scheme: same graph each run).
      std::map<int, std::vector<double>> spans;
      std::map<int, std::string> names;
      for (const RunOutcome& run : s.runs) {
        int idx = 0;
        for (const StageMetrics& st : run.metrics.stages) {
          spans[idx].push_back(st.span());
          names[idx] = st.name;
          ++idx;
        }
      }
      for (const auto& [idx, samples] : spans) {
        Summary sum = Summarize(samples);
        table.AddRow({SchemeName(scheme),
                      std::to_string(idx) + ":" + names[idx],
                      FmtDouble(sum.trimmed_mean, 2), FmtDouble(sum.median, 2),
                      FmtDouble(sum.p25, 2) + " - " + FmtDouble(sum.p75, 2)});
      }
      table.AddSeparator();
    }
    std::cout << table.Render() << "\n";
  }
  std::cout << "Note: stages may overlap at runtime (transfer stages are "
               "pipelined with their producers), so stage spans do not sum "
               "to the job completion time — same caveat as the paper.\n";
  return 0;
}
