// Ablation: sensitivity to inter-datacenter bandwidth.
//
// Sweeps all WAN capacities from 0.5x to 4x the measured EC2 envelope and
// reports the Spark-vs-AggShuffle gap for a combine-friendly workload
// (Sort: tiny shuffle, gains come from locality and stability) and a
// shuffle-heavy one (TeraSort: the convergent push itself needs WAN
// capacity, so very slow links erode the advantage — the flip side of the
// Sec. V-B discussion — while faster links restore it).
#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Ablation: WAN bandwidth sensitivity ===\n";
  PrintClusterHeader(h);

  TextTable table({"Workload", "WAN capacity", "Spark JCT",
                   "AggShuffle JCT", "AggShuffle gain"});
  for (const std::string& name :
       {std::string("Sort"), std::string("TeraSort")}) {
    for (double factor : {0.5, 1.0, 2.0, 4.0}) {
      double means[2] = {0, 0};
      int idx = 0;
      for (Scheme scheme : {Scheme::kSpark, Scheme::kAggShuffle}) {
        std::vector<double> jcts;
        for (int r = 0; r < h.runs; ++r) {
          RunConfig cfg = MakeRunConfig(h, scheme, r + 1);
          Topology topo = MakeTopology(h);
          topo.ScaleWanCapacity(factor);
          GeoCluster cluster(std::move(topo), cfg);
          WorkloadParams params;
          params.scale = h.scale;
          auto wl = MakeWorkload(name, params);
          RunResult res =
              wl->Run(cluster, static_cast<std::uint64_t>(r) * 7919 + 13);
          jcts.push_back(res.metrics.jct());
        }
        means[idx++] = Summarize(jcts).trimmed_mean;
      }
      table.AddRow({name, FmtDouble(factor, 1) + "x",
                    FmtDouble(means[0], 2) + "s",
                    FmtDouble(means[1], 2) + "s",
                    FmtPercent(means[1] / means[0] - 1.0)});
    }
    table.AddSeparator();
  }
  std::cout << table.Render() << "\n";
  std::cout << "Reading: Sort's advantage is stability/locality-driven and "
               "holds across the whole range; TeraSort's convergent push "
               "needs WAN capacity, so the slowest links erode its edge "
               "while faster links restore it.\n";
  return 0;
}
