// Ablation: speculative execution x shuffle mechanism.
//
// Speculation (spark.speculation) is the classic straggler mitigation; the
// paper's Push/Aggregate attacks the *data* side of the same problem. This
// ablation shows they compose: a speculated reducer must re-gather its
// shuffle input, which crosses the WAN again under fetch-based shuffle but
// stays datacenter-local under Push/Aggregate — so speculation is cheaper
// (and more effective) with AggShuffle.
#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Ablation: speculation x shuffle mechanism (Sort, heavy "
               "stragglers) ===\n";
  PrintClusterHeader(h);

  TextTable table({"Scheme", "speculation", "JCT trimmed mean", "p75",
                   "cross-DC traffic"});
  for (Scheme scheme : {Scheme::kSpark, Scheme::kAggShuffle}) {
    for (bool speculate : {false, true}) {
      std::vector<double> jcts, traffic;
      for (int r = 0; r < h.runs; ++r) {
        RunConfig cfg = MakeRunConfig(h, scheme, r + 1);
        cfg.speculation.enabled = speculate;
        // Heavier stragglers than the default environment.
        cfg.cost.straggler_prob = 0.2;
        cfg.cost.straggler_factor = 5.0;
        GeoCluster cluster(MakeTopology(h), cfg);
        WorkloadParams params;
        params.scale = h.scale;
        auto wl = MakeWorkload("Sort", params);
        RunResult res =
            wl->Run(cluster, static_cast<std::uint64_t>(r) * 7919 + 13);
        jcts.push_back(res.metrics.jct());
        traffic.push_back(ToMiB(res.metrics.cross_dc_bytes));
      }
      Summary jct = Summarize(jcts);
      table.AddRow({SchemeName(scheme), speculate ? "on" : "off",
                    FmtDouble(jct.trimmed_mean, 2) + "s",
                    FmtDouble(jct.p75, 2) + "s",
                    FmtDouble(Summarize(traffic).mean, 1) + " MiB"});
    }
    table.AddSeparator();
  }
  std::cout << table.Render() << "\n";
  std::cout << "Reading: speculation trims the straggler tail for both "
               "mechanisms; under fetch-based shuffle each backup reducer "
               "re-fetches across the WAN (extra traffic), while "
               "Push/Aggregate backups re-read locally.\n";
  return 0;
}
