// Ablation: aggregator-datacenter selection policy.
//
// Sec. III-B proves cross-datacenter shuffle traffic is minimized by
// aggregating into the datacenter holding the largest input fraction
// (D >= S - s1, Eq. 2). This ablation runs AggShuffle with the paper's
// policy, a random choice, and the adversarial smallest-input choice.
#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Ablation: aggregator selection policy (AggShuffle) "
               "===\n";
  PrintClusterHeader(h);

  TextTable table({"Workload", "Policy", "JCT trimmed mean",
                   "cross-DC traffic", "vs largest-input"});
  bool ordered = true;
  for (const std::string& name : {std::string("Sort"),
                                  std::string("PageRank")}) {
    WorkloadParams params;
    params.scale = h.scale;
    double base_traffic = 0;
    double traffic_largest = 0, traffic_smallest = 0;
    for (AggregatorPolicy policy :
         {AggregatorPolicy::kLargestInput, AggregatorPolicy::kRandom,
          AggregatorPolicy::kSmallestInput}) {
      std::vector<double> jcts, traffic;
      for (int r = 0; r < h.runs; ++r) {
        RunConfig cfg = MakeRunConfig(h, Scheme::kAggShuffle, r + 1);
        cfg.aggregator_policy = policy;
        GeoCluster cluster(MakeTopology(h), cfg);
        auto wl = MakeWorkload(name, params);
        RunResult res = wl->Run(cluster, static_cast<std::uint64_t>(r) * 7919 + 13);
        jcts.push_back(res.metrics.jct());
        traffic.push_back(ToMiB(res.metrics.cross_dc_bytes));
      }
      Summary jct = Summarize(jcts);
      Summary tr = Summarize(traffic);
      if (policy == AggregatorPolicy::kLargestInput) {
        base_traffic = tr.mean;
        traffic_largest = tr.mean;
      }
      if (policy == AggregatorPolicy::kSmallestInput) {
        traffic_smallest = tr.mean;
      }
      table.AddRow({name, AggregatorPolicyName(policy),
                    FmtDouble(jct.trimmed_mean, 2) + "s",
                    FmtDouble(tr.mean, 1) + " MiB",
                    policy == AggregatorPolicy::kLargestInput
                        ? "-"
                        : FmtPercent(tr.mean / base_traffic - 1.0)});
    }
    table.AddSeparator();
    ordered = ordered && traffic_largest <= traffic_smallest;
  }
  std::cout << table.Render() << "\n";
  std::cout << "Expected (Eq. 2): the largest-input datacenter minimizes "
               "cross-DC traffic; the smallest-input choice is worst.\n";
  return ordered ? 0 : 1;
}
