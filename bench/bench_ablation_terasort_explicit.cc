// Ablation: explicit transferTo() before TeraSort's bloating map.
//
// Sec. V-B: HiBench TeraSort's pre-shuffle map *bloats* the data, so the
// automatically inserted transferTo() (which runs after the map) pushes
// more bytes than necessary. "This problem can be resolved by explicitly
// calling transferTo() before the map, and we can expect further
// improvement from AggShuffle" — the paper's argument for exposing the
// API to developers. This bench measures exactly that fix.
#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Ablation: TeraSort with developer-placed transferTo() "
               "(Sec. V-B) ===\n";
  PrintClusterHeader(h);

  TextTable table({"Variant", "JCT trimmed mean", "cross-DC traffic",
                   "vs automatic"});
  double auto_jct = 0, auto_traffic = 0, explicit_traffic = 1e18;
  for (bool explicit_transfer : {false, true}) {
    WorkloadParams params;
    params.scale = h.scale;
    params.terasort_explicit_transfer = explicit_transfer;
    std::vector<double> jcts, traffic;
    for (int r = 0; r < h.runs; ++r) {
      RunConfig cfg = MakeRunConfig(h, Scheme::kAggShuffle, r + 1);
      GeoCluster cluster(MakeTopology(h), cfg);
      auto wl = MakeWorkload("TeraSort", params);
      RunResult res =
          wl->Run(cluster, static_cast<std::uint64_t>(r) * 7919 + 13);
      jcts.push_back(res.metrics.jct());
      traffic.push_back(ToMiB(res.metrics.cross_dc_bytes));
    }
    Summary jct = Summarize(jcts);
    Summary tr = Summarize(traffic);
    if (!explicit_transfer) {
      auto_jct = jct.trimmed_mean;
      auto_traffic = tr.mean;
    } else {
      explicit_traffic = tr.mean;
    }
    table.AddRow(
        {explicit_transfer ? "explicit transferTo before bloating map"
                           : "automatic (after bloating map)",
         FmtDouble(jct.trimmed_mean, 2) + "s", FmtDouble(tr.mean, 1) + " MiB",
         explicit_transfer
             ? FmtPercent(jct.trimmed_mean / auto_jct - 1.0) + " JCT, " +
                   FmtPercent(tr.mean / auto_traffic - 1.0) + " traffic"
             : "-"});
  }
  std::cout << table.Render() << "\n";
  std::cout << "Expected: aggregating the raw records (before HiBench's "
               "bloating map) moves fewer bytes across datacenters.\n";
  return explicit_traffic < auto_traffic ? 0 : 1;
}
