// Reproduces Fig. 8: total cross-datacenter traffic of Sort, TeraSort,
// PageRank and NaiveBayes under the three schemes (traffic among worker
// nodes; driver collect traffic excluded, input centralization included —
// matching the paper's measurement).
//
// Expected shape: AggShuffle cuts traffic substantially (the paper reports
// 16%-90%+, with PageRank's 91.3% the largest) on all workloads except
// TeraSort, where the HiBench pre-shuffle map bloats the data and the
// Centralized scheme needs the least traffic.
#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Fig. 8: cross-datacenter traffic (MiB, mean over runs) "
               "===\n";
  PrintClusterHeader(h);

  const std::vector<std::string> workloads = {"Sort", "TeraSort", "PageRank",
                                              "NaiveBayes"};
  TextTable table({"Workload", "Scheme", "cross-DC traffic", "fetch", "push",
                   "centralize", "vs Spark"});
  TextTable summary(
      {"Workload", "AggShuffle vs Spark", "least traffic scheme"});

  for (const std::string& name : workloads) {
    WorkloadParams params;
    params.scale = h.scale;
    double spark = 0;
    double best = 0;
    const char* best_scheme = "";
    double agg = 0;
    for (Scheme scheme : AllSchemes()) {
      SchemeSummary s = RunMany(h, name, params, scheme);
      const double mean_mib = s.cross_dc_mib.mean;
      if (scheme == Scheme::kSpark) spark = mean_mib;
      if (scheme == Scheme::kAggShuffle) agg = mean_mib;
      if (best_scheme[0] == '\0' || mean_mib < best) {
        best = mean_mib;
        best_scheme = SchemeName(scheme);
      }
      // Mean flow-kind decomposition over runs.
      double fetch = 0, push = 0, central = 0;
      for (const RunOutcome& r : s.runs) {
        fetch += ToMiB(r.metrics.cross_dc_fetch_bytes);
        push += ToMiB(r.metrics.cross_dc_push_bytes);
        central += ToMiB(r.metrics.cross_dc_centralize_bytes);
      }
      const double n = static_cast<double>(s.runs.size());
      table.AddRow({name, SchemeName(scheme), FmtDouble(mean_mib, 1),
                    FmtDouble(fetch / n, 1), FmtDouble(push / n, 1),
                    FmtDouble(central / n, 1),
                    scheme == Scheme::kSpark
                        ? "-"
                        : FmtPercent(mean_mib / spark - 1.0)});
    }
    table.AddSeparator();
    summary.AddRow({name, FmtPercent(agg / spark - 1.0), best_scheme});
  }

  std::cout << table.Render() << "\n";
  std::cout << "Headline (paper: 16%-90%+ reduction except TeraSort, where "
               "Centralized needs the least traffic):\n"
            << summary.Render();
  return 0;
}
