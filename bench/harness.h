// Shared harness for the figure-reproduction benches.
//
// Each bench binary reproduces one table or figure of the paper: it runs
// workloads under the three schemes over several seeds (the paper uses 10
// iterative runs), summarizes with the paper's statistics (10% trimmed
// mean, median, interquartile range) and prints a table shaped like the
// figure. Environment variables tune effort:
//   GS_RUNS         — runs per configuration (default 10, like the paper)
//   GS_SCALE        — input/rate scale divisor (default 100)
//   GS_BENCH_REPORT — if set, RunOnce writes each run's RunReport JSON
//                     there (overwriting; the file ends up holding the
//                     bench's last run — see docs/OBSERVABILITY.md)
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "engine/cluster.h"
#include "workloads/hibench.h"

namespace gs::bench {

struct HarnessConfig {
  int runs = 10;
  double scale = 100.0;
  SimTime jitter_interval = Seconds(5);
  double jitter_momentum = 0.5;

  static HarnessConfig FromEnv();
};

// One measured execution.
struct RunOutcome {
  double jct_seconds = 0;       // simulated job completion time
  double wall_seconds = 0;      // real elapsed time of the run
  Bytes cross_dc_bytes = 0;
  JobMetrics metrics;
  RunReport report;  // full observability report (docs/OBSERVABILITY.md)
};

// --- wall-clock measurement (docs/PERF.md) ---
// Simulated time is what the benches report to reproduce the paper; wall
// time is what the compute-offload work optimizes. These helpers measure
// and publish the latter.

// Monotonic wall-clock seconds (std::chrono::steady_clock).
double WallSeconds();

// One wall-clock data point of a micro bench.
struct WallMeasurement {
  std::string name;   // what was measured, e.g. "map+partition"
  int threads = 1;    // compute threads used (1 for pure primitives)
  int iters = 1;      // repetitions folded into `seconds`
  double seconds = 0; // total elapsed wall time
};

// Writes measurements as a JSON array of objects to `path` (overwrites).
void WriteWallMeasurementsJson(const std::string& path,
                               const std::vector<WallMeasurement>& ms);

// Builds the paper's cluster and run configuration for a scheme and seed.
RunConfig MakeRunConfig(const HarnessConfig& h, Scheme scheme,
                        std::uint64_t seed);
Topology MakeTopology(const HarnessConfig& h);

// Runs `workload` once under `scheme` with the given seed (used for both
// the environment jitter and the data generation).
RunOutcome RunOnce(const HarnessConfig& h, const std::string& workload,
                   const WorkloadParams& params, Scheme scheme,
                   std::uint64_t seed);

// Runs `h.runs` seeds and summarizes JCTs (seconds).
struct SchemeSummary {
  Summary jct;
  Summary cross_dc_mib;
  std::vector<RunOutcome> runs;
};
SchemeSummary RunMany(const HarnessConfig& h, const std::string& workload,
                      const WorkloadParams& params, Scheme scheme);

// Prints the Fig. 6 cluster header once per bench.
void PrintClusterHeader(const HarnessConfig& h);

// All three schemes, in the paper's order.
const std::vector<Scheme>& AllSchemes();

}  // namespace gs::bench
