// Shared harness for the figure-reproduction benches.
//
// Each bench binary reproduces one table or figure of the paper: it runs
// workloads under the three schemes over several seeds (the paper uses 10
// iterative runs), summarizes with the paper's statistics (10% trimmed
// mean, median, interquartile range) and prints a table shaped like the
// figure. Environment variables tune effort:
//   GS_RUNS   — runs per configuration (default 10, like the paper)
//   GS_SCALE  — input/rate scale divisor (default 100)
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "engine/cluster.h"
#include "workloads/hibench.h"

namespace gs::bench {

struct HarnessConfig {
  int runs = 10;
  double scale = 100.0;
  SimTime jitter_interval = Seconds(5);
  double jitter_momentum = 0.5;

  static HarnessConfig FromEnv();
};

// One measured execution.
struct RunOutcome {
  double jct_seconds = 0;
  Bytes cross_dc_bytes = 0;
  JobMetrics metrics;
};

// Builds the paper's cluster and run configuration for a scheme and seed.
RunConfig MakeRunConfig(const HarnessConfig& h, Scheme scheme,
                        std::uint64_t seed);
Topology MakeTopology(const HarnessConfig& h);

// Runs `workload` once under `scheme` with the given seed (used for both
// the environment jitter and the data generation).
RunOutcome RunOnce(const HarnessConfig& h, const std::string& workload,
                   const WorkloadParams& params, Scheme scheme,
                   std::uint64_t seed);

// Runs `h.runs` seeds and summarizes JCTs (seconds).
struct SchemeSummary {
  Summary jct;
  Summary cross_dc_mib;
  std::vector<RunOutcome> runs;
};
SchemeSummary RunMany(const HarnessConfig& h, const std::string& workload,
                      const WorkloadParams& params, Scheme scheme);

// Prints the Fig. 6 cluster header once per bench.
void PrintClusterHeader(const HarnessConfig& h);

// All three schemes, in the paper's order.
const std::vector<Scheme>& AllSchemes();

}  // namespace gs::bench
