// Multi-tenant load sweep: concurrent jobs on one shared cluster.
//
// The paper evaluates one job at a time; a shuffle *service* runs many.
// This bench submits a batch of WordCount jobs on an open-loop Poisson
// arrival process (workloads/arrivals.h) against a single GeoCluster and
// sweeps the offered load, for all three schemes. Two tenants share the
// executors under weighted fair sharing (alice weight 2, bob weight 1 —
// alternate jobs, so contention is real once the cluster saturates).
//
// The load axis is normalized per scheme: a solo probe measures the JCT
// of one job running alone, and the sweep offers arrivals at
// load x (1 / solo JCT) — load 0.5 is a half-busy service, load 2 is
// firmly saturated, so queueing delay and p99 JCT grow while throughput
// flattens at the service capacity.
//
// Environment: GS_SCALE as usual; GS_MT_JOBS overrides the jobs per
// sweep point (default 12, minimum 8); GS_BENCH_JSON writes the sweep
// rows as JSON (the run_benches.sh convention). GS_RUNS is ignored — one
// deterministic seed per point; rerunning reproduces it byte for byte.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/table.h"
#include "engine/dataset.h"
#include "harness.h"
#include "workloads/arrivals.h"

namespace {

using namespace gs;
using namespace gs::bench;

constexpr std::uint64_t kSeed = 1;

struct SweepRow {
  std::string scheme;
  double load = 0;            // offered load in units of solo capacity
  double rate_per_s = 0;      // arrival rate behind that load
  int jobs = 0;
  int cap = 0;                // admission cap (0 = unlimited)
  double throughput = 0;      // completed jobs per simulated second
  double jct_p50 = 0, jct_p99 = 0;
  double queue_p50 = 0, queue_p99 = 0;
};

int JobsFromEnv() {
  int jobs = 12;
  if (const char* env = std::getenv("GS_MT_JOBS")) {
    jobs = std::atoi(env);
  }
  // The acceptance bar for this bench: at least 8 concurrent jobs.
  return std::max(8, jobs);
}

// One job alone on a fresh cluster: the scheme's service capacity.
double SoloJct(const HarnessConfig& h, const WorkloadParams& params,
               Scheme scheme) {
  GeoCluster cluster(MakeTopology(h), MakeRunConfig(h, scheme, kSeed));
  auto wl = MakeWorkload("wordcount", params);
  RunResult r = wl->Run(cluster, /*data_seed=*/kSeed * 7919 + 13);
  return r.metrics.jct();
}

SweepRow RunPoint(const HarnessConfig& h, const WorkloadParams& params,
                  Scheme scheme, double load, double solo_jct, int jobs,
                  int max_concurrent = 0) {
  RunConfig cfg = MakeRunConfig(h, scheme, kSeed);
  cfg.service.max_concurrent_jobs = max_concurrent;
  GeoCluster cluster(MakeTopology(h), cfg);

  ArrivalConfig arrivals;
  arrivals.rate_per_s = load / solo_jct;
  const std::vector<SimTime> times = GenerateArrivals(arrivals, jobs, kSeed);

  std::vector<JobHandle> handles;
  handles.reserve(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    auto wl = MakeWorkload("wordcount", params);
    Dataset ds = wl->Build(
        cluster, (kSeed + static_cast<std::uint64_t>(j)) * 7919 + 13);
    JobOptions jo;
    jo.tenant = (j % 2 == 0) ? "alice" : "bob";
    jo.weight = (j % 2 == 0) ? 2.0 : 1.0;
    jo.arrival_delay = times[static_cast<std::size_t>(j)];
    jo.label = "wc#" + std::to_string(j);
    handles.push_back(ds.Submit(wl->action(), jo));
  }
  cluster.RunUntilQuiescent();

  SweepRow row;
  row.scheme = SchemeName(scheme);
  row.load = load;
  row.rate_per_s = arrivals.rate_per_s;
  row.jobs = jobs;
  row.cap = max_concurrent;
  std::vector<double> jcts, delays;
  SimTime last_done = 0;
  for (const RunReport::JobRow& jr : cluster.job_rows()) {
    jcts.push_back(jr.jct());
    delays.push_back(jr.queue_delay());
    last_done = std::max(last_done, jr.completed);
  }
  GS_CHECK_MSG(static_cast<int>(jcts.size()) == jobs,
               "expected " << jobs << " completed jobs, got " << jcts.size());
  row.throughput = jobs / last_done;
  row.jct_p50 = Percentile(jcts, 50);
  row.jct_p99 = Percentile(jcts, 99);
  row.queue_p50 = Percentile(delays, 50);
  row.queue_p99 = Percentile(delays, 99);
  return row;
}

void WriteJson(const std::string& path, const std::vector<SweepRow>& rows) {
  std::ofstream out(path);
  GS_CHECK_MSG(out.good(), "cannot write " << path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    out << "  {\"scheme\": \"" << r.scheme << "\", \"load\": " << r.load
        << ", \"rate_per_s\": " << std::setprecision(6) << r.rate_per_s
        << ", \"jobs\": " << r.jobs << ", \"admission_cap\": " << r.cap
        << ", \"throughput_jobs_per_s\": " << r.throughput
        << ", \"jct_p50_s\": " << r.jct_p50 << ", \"jct_p99_s\": " << r.jct_p99
        << ", \"queue_p50_s\": " << r.queue_p50
        << ", \"queue_p99_s\": " << r.queue_p99 << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main() {
  HarnessConfig h = HarnessConfig::FromEnv();
  const int jobs = JobsFromEnv();
  std::cout << "=== Multi-tenant service: offered load vs throughput and "
               "JCT (WordCount, " << jobs
            << " jobs, tenants alice:2 / bob:1) ===\n";
  PrintClusterHeader(h);

  WorkloadParams params;
  params.scale = h.scale;

  const double loads[] = {0.5, 1.0, 2.0};
  std::vector<SweepRow> rows;
  TextTable table({"Scheme", "load", "cap", "rate (jobs/s)", "thru (jobs/s)",
                   "JCT p50", "JCT p99", "queue p50", "queue p99"});
  auto add = [&](const SweepRow& row) {
    table.AddRow({row.scheme, FmtDouble(row.load, 1),
                  row.cap > 0 ? std::to_string(row.cap) : "-",
                  FmtDouble(row.rate_per_s, 4), FmtDouble(row.throughput, 4),
                  FmtDouble(row.jct_p50, 2) + "s",
                  FmtDouble(row.jct_p99, 2) + "s",
                  FmtDouble(row.queue_p50, 2) + "s",
                  FmtDouble(row.queue_p99, 2) + "s"});
    rows.push_back(row);
  };
  for (Scheme scheme : AllSchemes()) {
    const double solo = SoloJct(h, params, scheme);
    std::cout << SchemeName(scheme) << ": solo JCT " << FmtDouble(solo, 2)
              << "s (load 1.0 = " << FmtDouble(1.0 / solo, 4)
              << " jobs/s offered)\n";
    for (double load : loads) {
      add(RunPoint(h, params, scheme, load, solo, jobs));
    }
    // One capped point: with admission limited to 3 concurrent jobs the
    // overload shows up as queueing delay instead of slowdown.
    add(RunPoint(h, params, scheme, 2.0, solo, jobs, /*max_concurrent=*/3));
  }
  std::cout << "\n" << table.Render();
  std::cout << "\nOpen-loop arrivals: above load 1.0 the offered rate "
               "exceeds capacity, so queue delay and p99 JCT grow while "
               "throughput saturates.\n";

  if (const char* json = std::getenv("GS_BENCH_JSON");
      json != nullptr && *json != '\0') {
    WriteJson(json, rows);
    std::cout << "\nSweep rows written to " << json << "\n";
  }
  return 0;
}
