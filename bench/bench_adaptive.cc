// Adaptive aggregator placement vs the paper's static Eq. 2 chooser
// (docs/ADAPTIVE.md).
//
// The static chooser picks the largest-input datacenter and never looks at
// the network. This bench constructs adversarial WAN conditions where that
// choice is exactly wrong — the links *into* the largest-input datacenter
// collapse — and sweeps three placement policies over each trace:
//
//   static    adaptive off; the paper's Eq. 2 chooser (seed behaviour)
//   adaptive  bandwidth-aware ranking + mid-job replanning enabled
//   oracle    best offline placement: min JCT over pinning every DC
//             (AdaptiveConfig::pin_dc), an upper bound on any online win
//
// Traces:
//   ingress-collapse  every link into the largest-input DC is degraded to
//                     5% of capacity from t=0, permanently. The static
//                     chooser funnels the whole shuffle through the
//                     collapsed ingress; the bandwidth-aware ranking sees
//                     the degraded capacity and aggregates elsewhere.
//   mid-job-flap      the same links collapse mid-job (at a fraction of a
//                     fault-free probe run's JCT), exercising the
//                     replanner on receiver shards that have not started.
//
// The bench aborts unless, on ingress-collapse, adaptive strictly beats
// static and lands within 10% of the offline oracle — the acceptance bar
// this bench exists to pin.
//
// Environment: GS_SCALE as usual; GS_BENCH_JSON writes the sweep rows as
// JSON (the run_benches.sh convention). GS_RUNS is ignored — one
// deterministic seed per cell; rerunning reproduces it byte for byte.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"
#include "engine/cluster.h"
#include "engine/dataset.h"
#include "harness.h"

namespace {

using namespace gs;
using namespace gs::bench;

constexpr std::uint64_t kSeed = 11;
// The skew target: most of the input lands in this DC, so the static
// chooser always aggregates here.
constexpr DcIndex kHotDc = 0;

struct SweepRow {
  std::string trace;
  std::string policy;
  double jct_s = 0;
  double cross_dc_mib = 0;
  int replans = 0;
  int receivers_moved = 0;
  int adaptive_fallbacks = 0;
};

// Incompressible printable filler: the engine models LZ compression on
// every push, so constant padding would collapse to back-references and
// erase the byte volumes this bench is built around.
std::string NoiseChars(std::uint64_t seed, int n) {
  std::string s;
  s.reserve(static_cast<std::size_t>(n));
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  for (int j = 0; j < n; ++j) {
    x ^= x >> 29;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 32;
    s += static_cast<char>('!' + x % 90);
  }
  return s;
}

// The skew that makes the static Eq. 2 chooser pick kHotDc while the real
// transfer cost lives elsewhere: the hot partitions are heavy on *input*
// bytes (large values, which Eq. 2 weighs) but their tagging Map keeps
// only the short keys, while the remote partitions carry their bytes in
// long keys that survive the Map into the shuffle. Keys are unique within
// a partition (map-side combining cannot shrink the push) and shared
// across partitions of the same flavor (the reduce output stays small).
std::vector<Record> HotRecords(int n) {
  std::vector<Record> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    records.push_back({"h" + NoiseChars(2 * i + 1, 10),
                       NoiseChars(i + 1000, 96)});
  }
  return records;
}

std::vector<Record> RemoteRecords(int n) {
  std::vector<Record> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    records.push_back({"r" + NoiseChars(2 * i, 60), std::int64_t{1}});
  }
  return records;
}

// 2/3 of the partitions (and most input bytes) in kHotDc, the rest spread
// over the other datacenters.
std::vector<SourceRdd::Partition> SkewedParts(const Topology& topo) {
  std::vector<SourceRdd::Partition> parts;
  const int total = 18;
  for (int p = 0; p < total; ++p) {
    const bool hot = p < 12;
    SourceRdd::Partition part;
    part.records = MakeRecords(hot ? HotRecords(400) : RemoteRecords(400));
    DcIndex dc = hot ? kHotDc
                     : static_cast<DcIndex>(1 + p % (topo.num_datacenters() -
                                                     1));
    const auto& nodes = topo.nodes_in(dc);
    part.node = nodes[p % nodes.size()];
    part.bytes = SerializedSize(*part.records);
    parts.push_back(std::move(part));
  }
  return parts;
}

// Degrades every WAN link into kHotDc to `factor` at time `at`,
// permanently (duration 0). Asymmetric: egress from kHotDc stays healthy,
// so moving the aggregation elsewhere is genuinely cheap.
std::vector<LinkDegradationEvent> CollapseIngress(const Topology& topo,
                                                  SimTime at, double factor) {
  std::vector<LinkDegradationEvent> events;
  for (DcIndex src = 0; src < topo.num_datacenters(); ++src) {
    if (src == kHotDc) continue;
    LinkDegradationEvent e;
    e.at = at;
    e.src = src;
    e.dst = kHotDc;
    e.factor = factor;
    e.duration = 0;  // permanent
    e.symmetric = false;
    events.push_back(e);
  }
  return events;
}

enum class Policy { kStatic, kAdaptive, kOraclePin };

RunResult RunCell(const HarnessConfig& h,
                  const std::vector<LinkDegradationEvent>& events,
                  Policy policy, DcIndex pin) {
  RunConfig cfg = MakeRunConfig(h, Scheme::kAggShuffle, kSeed);
  cfg.fault.plan.link_degradations = events;
  switch (policy) {
    case Policy::kStatic:
      break;
    case Policy::kAdaptive:
      cfg.adaptive.enabled = true;
      break;
    case Policy::kOraclePin:
      cfg.adaptive.enabled = true;
      cfg.adaptive.pin_dc = pin;
      break;
  }
  GeoCluster cluster(MakeTopology(h), cfg);
  Dataset data = cluster.CreateSource("skewed", SkewedParts(cluster.topology()));
  Dataset counts = data.Map("tag",
                            [](const Record& r) {
                              return Record{r.key, std::int64_t{1}};
                            })
                       .ReduceByKey(SumInt64(), 8);
  // kSave: the reduced output persists in the aggregator datacenter. A
  // collect would drag the result to the driver across the very links the
  // traces degrade, charging any non-hot placement for the return trip.
  return counts.Run(ActionKind::kSave);
}

SweepRow MakeRow(const std::string& trace, const std::string& policy,
                 const RunResult& r) {
  SweepRow row;
  row.trace = trace;
  row.policy = policy;
  row.jct_s = r.metrics.jct();
  row.cross_dc_mib = ToMiB(r.metrics.cross_dc_bytes);
  row.replans = r.metrics.replans;
  row.receivers_moved = r.metrics.receivers_moved;
  row.adaptive_fallbacks = r.metrics.adaptive_fallbacks;
  return row;
}

void WriteJson(const std::string& path, const std::vector<SweepRow>& rows) {
  std::ofstream out(path);
  GS_CHECK_MSG(out.good(), "cannot write " << path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    out << "  {\"trace\": \"" << r.trace << "\", \"policy\": \"" << r.policy
        << "\", \"jct_s\": " << std::setprecision(6) << r.jct_s
        << ", \"cross_dc_mib\": " << r.cross_dc_mib
        << ", \"replans\": " << r.replans
        << ", \"receivers_moved\": " << r.receivers_moved
        << ", \"adaptive_fallbacks\": " << r.adaptive_fallbacks << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main() {
  if (std::getenv("GS_LOG_INFO") != nullptr) SetLogLevel(LogLevel::kInfo);
  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Adaptive aggregator placement vs static Eq. 2 "
               "(skewed ReduceByKey, adversarial WAN traces) ===\n";
  PrintClusterHeader(h);

  const Topology probe_topo = MakeTopology(h);

  // Resolve the flap time against a fault-free static probe run so the
  // degradation lands mid-job at any GS_SCALE.
  const double probe_jct =
      RunCell(h, {}, Policy::kStatic, kNoDc).metrics.jct();
  std::cout << "\nfault-free probe JCT: " << FmtDouble(probe_jct, 2) << "s\n";

  struct TraceCase {
    std::string name;
    std::vector<LinkDegradationEvent> events;
  };
  const std::vector<TraceCase> traces = {
      {"ingress-collapse", CollapseIngress(probe_topo, 0, 0.05)},
      {"mid-job-flap",
       CollapseIngress(probe_topo, 0.02 * probe_jct, 0.05)},
  };

  std::vector<SweepRow> rows;
  TextTable table({"Trace", "Policy", "JCT", "MiB x-DC", "replans", "moved",
                   "fallbacks"});
  double collapse_static = 0, collapse_adaptive = 0, collapse_oracle = 0;
  for (const TraceCase& tc : traces) {
    SweepRow s = MakeRow(tc.name, "static",
                         RunCell(h, tc.events, Policy::kStatic, kNoDc));
    SweepRow a = MakeRow(tc.name, "adaptive",
                         RunCell(h, tc.events, Policy::kAdaptive, kNoDc));
    // Offline oracle: the best JCT any fixed placement achieves on this
    // trace — try pinning every datacenter.
    SweepRow best;
    for (DcIndex d = 0; d < probe_topo.num_datacenters(); ++d) {
      SweepRow cand = MakeRow(tc.name, "oracle",
                              RunCell(h, tc.events, Policy::kOraclePin, d));
      if (best.policy.empty() || cand.jct_s < best.jct_s) best = cand;
    }
    for (const SweepRow* r : {&s, &a, &best}) {
      table.AddRow({r->trace, r->policy, FmtDouble(r->jct_s, 2) + "s",
                    FmtDouble(r->cross_dc_mib, 2), std::to_string(r->replans),
                    std::to_string(r->receivers_moved),
                    std::to_string(r->adaptive_fallbacks)});
      rows.push_back(*r);
    }
    if (tc.name == "ingress-collapse") {
      collapse_static = s.jct_s;
      collapse_adaptive = a.jct_s;
      collapse_oracle = best.jct_s;
    }
  }
  std::cout << "\n" << table.Render();

  // The property this bench exists to pin: when the links into the
  // statically-chosen aggregator collapse, the bandwidth-aware policy
  // must strictly beat the static chooser and land within 10% of the
  // offline oracle.
  GS_CHECK_MSG(collapse_adaptive < collapse_static,
               "adaptive (" << collapse_adaptive
                            << "s) no longer beats static (" << collapse_static
                            << "s) on ingress-collapse");
  GS_CHECK_MSG(collapse_adaptive <= 1.10 * collapse_oracle,
               "adaptive (" << collapse_adaptive
                            << "s) not within 10% of the offline oracle ("
                            << collapse_oracle << "s) on ingress-collapse");
  std::cout << "\nIngress-collapse: adaptive "
            << FmtDouble(collapse_adaptive, 2) << "s beats static "
            << FmtDouble(collapse_static, 2) << "s and is within 10% of the "
            << FmtDouble(collapse_oracle, 2) << "s offline oracle.\n";

  if (const char* json = std::getenv("GS_BENCH_JSON");
      json != nullptr && *json != '\0') {
    WriteJson(json, rows);
    std::cout << "\nSweep rows written to " << json << "\n";
  }
  return 0;
}
