// Reproduces Fig. 2: reducer-failure recovery.
//
// With fetch-based shuffle, a failed reducer must re-fetch its input from
// the mappers across the WAN; with Push/Aggregate the shuffle input is
// already stored in the reducer's datacenter, so recovery reads locally
// and no data crosses datacenters again.
//
// Reproduced with the full engine: a Sort job where every reducer fails
// once mid-task (deterministic environment otherwise). Reported per scheme:
// job completion time with and without failures, and how much *extra*
// cross-datacenter traffic the failures caused.
#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Fig. 2: reducer-failure recovery (Sort, every reducer "
               "fails once) ===\n";
  PrintClusterHeader(h);

  WorkloadParams params;
  params.scale = h.scale;

  TextTable table({"Scheme", "JCT no failures", "JCT all reducers fail",
                   "failure penalty", "extra cross-DC traffic"});

  double penalty[2] = {0, 0};
  int idx = 0;
  for (Scheme scheme : {Scheme::kSpark, Scheme::kAggShuffle}) {
    double jct[2];
    Bytes traffic[2];
    for (int failing = 0; failing < 2; ++failing) {
      RunConfig cfg = MakeRunConfig(h, scheme, /*seed=*/7);
      // Deterministic environment: isolate the recovery path.
      cfg.net.jitter_interval = 0;
      cfg.net.wan_stall_prob = 0;
      cfg.net.wan_flow_efficiency_min = 1.0;
      cfg.cost.straggler_sigma = 0;
      cfg.cost.straggler_prob = 0;
      cfg.fault.reduce_failure_prob = failing ? 1.0 : 0.0;
      cfg.fault.failure_point = 0.5;
      GeoCluster cluster(MakeTopology(h), cfg);
      auto wl = MakeWorkload("Sort", params);
      RunResult r = wl->Run(cluster, /*data_seed=*/99);
      jct[failing] = r.metrics.jct();
      traffic[failing] = r.metrics.cross_dc_bytes;
    }
    penalty[idx++] = jct[1] - jct[0];
    table.AddRow({SchemeName(scheme), FmtDouble(jct[0], 2) + "s",
                  FmtDouble(jct[1], 2) + "s",
                  "+" + FmtDouble(jct[1] - jct[0], 2) + "s",
                  FmtMiB(traffic[1] - traffic[0])});
  }
  std::cout << table.Render() << "\n";
  std::cout << "Expected shape (paper Fig. 2): with Push/Aggregate the "
               "failed reducers re-read shuffle input from their own "
               "datacenter, so the failure penalty is far smaller and no "
               "re-fetch crosses the WAN.\n";
  return penalty[1] < penalty[0] ? 0 : 1;
}
