// Ablation: aggregating into a subset of k datacenters.
//
// Sec. III-C: "a better placement decision would be aggregating all shuffle
// input into a subset of datacenters which store the largest fractions.
// Without loss of generality... we will aggregate to a single datacenter."
// This ablation quantifies that choice: k = 1 minimizes cross-datacenter
// traffic (Eq. 2) but funnels all pushes through one region's ingress links
// and its compute slots; larger k trades reduce-side traffic for ingress
// parallelism. k = 6 (every datacenter) approximates an iShuffle-style
// spread shuffle-on-write, which pipelines pushes but aggregates nothing.
#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Ablation: aggregator subset size k (Sec. III-C) ===\n";
  PrintClusterHeader(h);

  TextTable table({"Workload", "k", "JCT trimmed mean", "cross-DC traffic",
                   "push", "fetch"});
  bool k1_is_minimum = true;
  for (const std::string& name :
       {std::string("Sort"), std::string("TeraSort")}) {
    double k1_traffic = -1;
    for (int k : {1, 2, 3, 6}) {
      std::vector<double> jcts, traffic, push, fetch;
      for (int r = 0; r < h.runs; ++r) {
        RunConfig cfg = MakeRunConfig(h, Scheme::kAggShuffle, r + 1);
        cfg.aggregator_dc_count = k;
        GeoCluster cluster(MakeTopology(h), cfg);
        WorkloadParams params;
        params.scale = h.scale;
        auto wl = MakeWorkload(name, params);
        RunResult res =
            wl->Run(cluster, static_cast<std::uint64_t>(r) * 7919 + 13);
        jcts.push_back(res.metrics.jct());
        traffic.push_back(ToMiB(res.metrics.cross_dc_bytes));
        push.push_back(ToMiB(res.metrics.cross_dc_push_bytes));
        fetch.push_back(ToMiB(res.metrics.cross_dc_fetch_bytes));
      }
      Summary jct = Summarize(jcts);
      Summary tr = Summarize(traffic);
      table.AddRow({name, std::to_string(k),
                    FmtDouble(jct.trimmed_mean, 2) + "s",
                    FmtDouble(tr.mean, 1) + " MiB",
                    FmtDouble(Summarize(push).mean, 1) + " MiB",
                    FmtDouble(Summarize(fetch).mean, 1) + " MiB"});
      if (k == 1) {
        k1_traffic = tr.mean;
      } else if (tr.mean < k1_traffic * 0.98) {
        k1_is_minimum = false;
      }
    }
    table.AddSeparator();
  }
  std::cout << table.Render() << "\n";
  std::cout << "Expected (Eq. 2): total cross-DC traffic is minimized at "
               "k = 1 (the reduce side re-fetches across the subset for "
               "k > 1); pushes shrink with k but do not compensate.\n";
  return k1_is_minimum ? 0 : 1;
}
