// Reproduces Fig. 1: the timing example motivating proactive pushes.
//
// Two mappers (workers A and B) in datacenter 1 produce shuffle input for
// reducers in datacenter 2. The inter-datacenter link has 1/4 the capacity
// of a datacenter network link. Mapper A finishes at t=4, mapper B at t=8.
//
//   (a) Fetch-based: both transfers start when stage N+1 begins (t=10) and
//       share the inter-DC link -> reducers start at t=18.
//   (b) Push-based: each transfer starts when its mapper finishes (t=4 and
//       t=8) and rarely shares the link -> reducers start at t=14.
//
// The scenario is reproduced directly on the flow-level network simulator
// with jitter and per-flow effects disabled, so the arithmetic matches the
// paper's figure exactly.
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "netsim/network.h"
#include "simcore/simulator.h"

namespace {

struct Outcome {
  double transfer_a_start = 0, transfer_a_end = 0;
  double transfer_b_start = 0, transfer_b_end = 0;
  double reducers_start = 0;
};

gs::Topology TwoDcTopology() {
  gs::Topology topo;
  gs::DcIndex dc1 = topo.AddDatacenter("DC1 (mappers)");
  gs::DcIndex dc2 = topo.AddDatacenter("DC2 (reducers)");
  // Unit convention: a DC link moves 1 "data unit" per time unit; the WAN
  // link moves 1/4.
  const gs::Rate dc_link = gs::MiB(1);
  for (int i = 0; i < 2; ++i) {
    topo.AddNode({"A/B worker " + std::to_string(i), dc1, 2, dc_link});
  }
  for (int i = 0; i < 2; ++i) {
    topo.AddNode({"reducer worker " + std::to_string(i), dc2, 2, dc_link});
  }
  topo.AddWanLink({dc1, dc2, dc_link / 4, dc_link / 4, dc_link / 4, 0});
  topo.AddWanLink({dc2, dc1, dc_link / 4, dc_link / 4, dc_link / 4, 0});
  return topo;
}

gs::NetworkConfig QuietNetwork() {
  gs::NetworkConfig cfg;
  cfg.jitter_interval = 0;        // fixed capacities
  cfg.wan_flow_efficiency_min = 1.0;
  cfg.wan_stall_prob = 0;
  return cfg;
}

// Each mapper produced 1 data unit of shuffle input (1 time unit on the DC
// link = 4 time units on the WAN link).
Outcome Simulate(bool push) {
  gs::Simulator sim;
  gs::Topology topo = TwoDcTopology();
  gs::Network net(sim, topo, QuietNetwork(), gs::Rng(1));

  const gs::Bytes unit = gs::MiB(1);
  Outcome out;
  const double map_a_done = 4, map_b_done = 8, stage_start = 10;

  double a_start = push ? map_a_done : stage_start;
  double b_start = push ? map_b_done : stage_start;
  out.transfer_a_start = a_start;
  out.transfer_b_start = b_start;

  sim.ScheduleAt(a_start, [&] {
    net.StartFlow(0, 2, unit, gs::FlowKind::kShufflePush,
                  [&] { out.transfer_a_end = sim.Now(); });
  });
  sim.ScheduleAt(b_start, [&] {
    net.StartFlow(1, 3, unit, gs::FlowKind::kShufflePush,
                  [&] { out.transfer_b_end = sim.Now(); });
  });
  sim.Run();
  // Reducers start once their input is available locally (and the stage
  // has begun).
  out.reducers_start =
      std::max(stage_start, std::max(out.transfer_a_end, out.transfer_b_end));
  return out;
}

}  // namespace

int main() {
  using namespace gs;
  std::cout << "=== Fig. 1: fetch barrier vs proactive push (2 mappers, "
               "WAN = 1/4 DC link) ===\n"
            << "Mapper A finishes at t=4, mapper B at t=8; stage N+1 starts "
               "at t=10.\n\n";

  TextTable table({"Mechanism", "transfer A", "transfer B",
                   "reducers start", "paper"});
  Outcome fetch = Simulate(/*push=*/false);
  Outcome push = Simulate(/*push=*/true);
  auto window = [](double s, double e) {
    return "t=" + FmtDouble(s, 1) + " - " + FmtDouble(e, 1);
  };
  table.AddRow({"(a) fetch-based",
                window(fetch.transfer_a_start, fetch.transfer_a_end),
                window(fetch.transfer_b_start, fetch.transfer_b_end),
                "t=" + FmtDouble(fetch.reducers_start, 1), "t=18"});
  table.AddRow({"(b) proactive push",
                window(push.transfer_a_start, push.transfer_a_end),
                window(push.transfer_b_start, push.transfer_b_end),
                "t=" + FmtDouble(push.reducers_start, 1), "t=14"});
  std::cout << table.Render() << "\n";

  const double saved = fetch.reducers_start - push.reducers_start;
  std::cout << "Proactive pushes start reducers " << FmtDouble(saved, 1)
            << " time units earlier (paper: 4): the inter-datacenter link "
               "is used while mappers still run, and the two transfers "
               "never share it.\n";
  return saved > 0 ? 0 : 1;
}
