// Ablation: map-side combine before the transfer (Sec. IV-C3).
//
// transferTo() performs MapSideCombine on the producer, pipelined with the
// map, so that combined (smaller) data crosses the WAN. Disabling it ships
// raw map output and recombines at the reducer — same results, more bytes.
#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace gs;
  using namespace gs::bench;

  HarnessConfig h = HarnessConfig::FromEnv();
  std::cout << "=== Ablation: MapSideCombine before transferTo (Sec. "
               "IV-C3) ===\n";
  PrintClusterHeader(h);

  TextTable table({"Workload", "combine before push", "JCT trimmed mean",
                   "cross-DC traffic", "traffic inflation"});
  bool combine_wins = true;
  for (const std::string& name :
       {std::string("WordCount"), std::string("NaiveBayes")}) {
    WorkloadParams params;
    params.scale = h.scale;
    double with_combine = 0;
    for (bool disable : {false, true}) {
      std::vector<double> jcts, traffic;
      for (int r = 0; r < h.runs; ++r) {
        RunConfig cfg = MakeRunConfig(h, Scheme::kAggShuffle, r + 1);
        cfg.disable_map_side_combine = disable;
        GeoCluster cluster(MakeTopology(h), cfg);
        auto wl = MakeWorkload(name, params);
        RunResult res =
            wl->Run(cluster, static_cast<std::uint64_t>(r) * 7919 + 13);
        jcts.push_back(res.metrics.jct());
        traffic.push_back(ToMiB(res.metrics.cross_dc_bytes));
      }
      Summary jct = Summarize(jcts);
      Summary tr = Summarize(traffic);
      if (!disable) with_combine = tr.mean;
      if (disable) combine_wins = combine_wins && tr.mean > with_combine;
      table.AddRow({name, disable ? "no" : "yes",
                    FmtDouble(jct.trimmed_mean, 2) + "s",
                    FmtDouble(tr.mean, 1) + " MiB",
                    disable ? FmtPercent(tr.mean / with_combine - 1.0)
                            : "-"});
    }
    table.AddSeparator();
  }
  std::cout << table.Render() << "\n";
  std::cout << "Expected: combining before the push cuts WAN bytes sharply "
               "for combine-friendly workloads (WordCount, NaiveBayes).\n";
  return combine_wins ? 0 : 1;
}
