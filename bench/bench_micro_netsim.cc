// Microbenchmarks (google-benchmark) of the simulation substrates: event
// queue throughput, max-min fair-share recomputation, flow churn on the
// six-region and a 12-DC synthetic topology, partitioner and combiner
// throughput. Provides its own main(): when GS_BENCH_JSON is set (the
// run_benches.sh convention), results are also written to that path in
// google-benchmark's JSON format.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/combiner.h"
#include "data/compression.h"
#include "data/partitioner.h"
#include "netsim/network.h"
#include "simcore/simulator.h"

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    gs::Simulator sim;
    long long sum = 0;
    for (int i = 0; i < n; ++i) {
      sim.Schedule((i * 7919) % 1000 * 0.001, [&sum, i] { sum += i; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_FlowChurnSixRegions(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    gs::Simulator sim;
    gs::Topology topo = gs::Ec2SixRegionTopology();
    gs::Network net(sim, topo, gs::NetworkConfig{}, gs::Rng(7));
    gs::Rng rng(13);
    int done = 0;
    for (int i = 0; i < flows; ++i) {
      gs::NodeIndex src =
          static_cast<gs::NodeIndex>(rng.UniformInt(0, 23));
      gs::NodeIndex dst =
          static_cast<gs::NodeIndex>(rng.UniformInt(0, 23));
      net.StartFlow(src, dst, gs::MiB(1) + rng.UniformInt(0, gs::MiB(4)),
                    gs::FlowKind::kOther, [&done] { ++done; });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
// 2048/8192 pin the incremental solver's scaling (docs/PERF.md): the old
// all-flows quadratic reconfiguration put 8192 flows out of reach.
BENCHMARK(BM_FlowChurnSixRegions)
    ->Arg(64)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// Synthetic 12-datacenter deployment, 4 workers per DC, full WAN mesh
// (132 directed links): more, smaller rate-sharing components than the
// six-region topology, so component-restricted solves matter more.
gs::Topology TwelveDcTopology() {
  gs::Topology topo;
  for (int d = 0; d < 12; ++d) {
    topo.AddDatacenter("dc" + std::to_string(d));
    for (int n = 0; n < 4; ++n) {
      topo.AddNode({"dc" + std::to_string(d) + "-w" + std::to_string(n),
                    d, 2, gs::Gbps(1)});
    }
  }
  topo.AddUniformWanMesh(gs::Mbps(200), gs::Mbps(80), gs::Mbps(300),
                         gs::Millis(150));
  return topo;
}

void BM_FlowChurnTwelveDc(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    gs::Simulator sim;
    gs::Topology topo = TwelveDcTopology();
    gs::Network net(sim, topo, gs::NetworkConfig{}, gs::Rng(7));
    gs::Rng rng(13);
    const int nodes = topo.num_nodes();
    int done = 0;
    for (int i = 0; i < flows; ++i) {
      gs::NodeIndex src =
          static_cast<gs::NodeIndex>(rng.UniformInt(0, nodes - 1));
      gs::NodeIndex dst =
          static_cast<gs::NodeIndex>(rng.UniformInt(0, nodes - 1));
      net.StartFlow(src, dst, gs::MiB(1) + rng.UniformInt(0, gs::MiB(4)),
                    gs::FlowKind::kOther, [&done] { ++done; });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowChurnTwelveDc)
    ->Arg(2048)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

void BM_HashPartitioner(benchmark::State& state) {
  gs::HashPartitioner part(8);
  gs::Rng rng(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i) {
    keys.push_back("key-" + std::to_string(rng.UniformInt(0, 1 << 20)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.ShardOf(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashPartitioner);

void BM_CombineByKey(benchmark::State& state) {
  gs::Rng rng(5);
  std::vector<gs::Record> records;
  for (int i = 0; i < 10000; ++i) {
    records.push_back(gs::Record{
        "w" + std::to_string(rng.UniformInt(0, 999)), std::int64_t{1}});
  }
  for (auto _ : state) {
    auto combined = gs::CombineByKey(records, gs::SumInt64());
    benchmark::DoNotOptimize(combined);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CombineByKey);

void BM_CompressionEstimate(benchmark::State& state) {
  gs::Rng rng(9);
  std::vector<std::string> vocab;
  for (int i = 0; i < 500; ++i) vocab.push_back("word" + std::to_string(i));
  std::vector<gs::Record> records;
  for (int i = 0; i < 5000; ++i) {
    records.push_back(gs::Record{
        vocab[rng.UniformInt(0, 499)],
        vocab[rng.UniformInt(0, 499)] + " " + vocab[rng.UniformInt(0, 499)]});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::CompressedSize(records));
  }
}
BENCHMARK(BM_CompressionEstimate);

}  // namespace

// Same contract as the bench_harness binaries: GS_BENCH_JSON names a JSON
// output file (run_benches.sh maps this binary to BENCH_netsim.json).
// Implemented by injecting google-benchmark's own --benchmark_out flags so
// the file carries the full per-benchmark statistics.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, fmt_flag;
  if (const char* json = std::getenv("GS_BENCH_JSON");
      json != nullptr && json[0] != '\0') {
    out_flag = "--benchmark_out=" + std::string(json);
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
