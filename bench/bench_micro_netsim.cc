// Microbenchmarks (google-benchmark) of the simulation substrates: event
// queue throughput, max-min fair-share recomputation, flow churn on the
// six-region topology, partitioner and combiner throughput.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/combiner.h"
#include "data/compression.h"
#include "data/partitioner.h"
#include "netsim/network.h"
#include "simcore/simulator.h"

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    gs::Simulator sim;
    long long sum = 0;
    for (int i = 0; i < n; ++i) {
      sim.Schedule((i * 7919) % 1000 * 0.001, [&sum, i] { sum += i; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_FlowChurnSixRegions(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    gs::Simulator sim;
    gs::Topology topo = gs::Ec2SixRegionTopology();
    gs::Network net(sim, topo, gs::NetworkConfig{}, gs::Rng(7));
    gs::Rng rng(13);
    int done = 0;
    for (int i = 0; i < flows; ++i) {
      gs::NodeIndex src =
          static_cast<gs::NodeIndex>(rng.UniformInt(0, 23));
      gs::NodeIndex dst =
          static_cast<gs::NodeIndex>(rng.UniformInt(0, 23));
      net.StartFlow(src, dst, gs::MiB(1) + rng.UniformInt(0, gs::MiB(4)),
                    gs::FlowKind::kOther, [&done] { ++done; });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowChurnSixRegions)->Arg(64)->Arg(512);

void BM_HashPartitioner(benchmark::State& state) {
  gs::HashPartitioner part(8);
  gs::Rng rng(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i) {
    keys.push_back("key-" + std::to_string(rng.UniformInt(0, 1 << 20)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.ShardOf(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashPartitioner);

void BM_CombineByKey(benchmark::State& state) {
  gs::Rng rng(5);
  std::vector<gs::Record> records;
  for (int i = 0; i < 10000; ++i) {
    records.push_back(gs::Record{
        "w" + std::to_string(rng.UniformInt(0, 999)), std::int64_t{1}});
  }
  for (auto _ : state) {
    auto combined = gs::CombineByKey(records, gs::SumInt64());
    benchmark::DoNotOptimize(combined);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CombineByKey);

void BM_CompressionEstimate(benchmark::State& state) {
  gs::Rng rng(9);
  std::vector<std::string> vocab;
  for (int i = 0; i < 500; ++i) vocab.push_back("word" + std::to_string(i));
  std::vector<gs::Record> records;
  for (int i = 0; i < 5000; ++i) {
    records.push_back(gs::Record{
        vocab[rng.UniformInt(0, 499)],
        vocab[rng.UniformInt(0, 499)] + " " + vocab[rng.UniformInt(0, 499)]});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::CompressedSize(records));
  }
}
BENCHMARK(BM_CompressionEstimate);

}  // namespace
