#!/bin/bash
# Regenerates every table/figure of the paper (bench_output.txt).
# Paper figures use 10 runs (like the paper); ablations use 5.
cd "$(dirname "$0")"
out=bench_output.txt
# Benches measure timing shapes; under ASan/UBSan (GS_SANITIZE=ON) the
# numbers are meaningless and the sweeps are painfully slow — skip.
if grep -qs "GS_SANITIZE:BOOL=ON" build/CMakeCache.txt; then
  echo "sanitizer build detected (GS_SANITIZE=ON); skipping benches" | tee "$out"
  echo "ALL-BENCHES-DONE" >> "$out"
  exit 0
fi
: > "$out"
for b in build/bench/*; do
  case "$b" in
    */bench_fig*|*/bench_table1*) runs=10 ;;
    */bench_*) runs=5 ;;
    *) continue ;;
  esac
  echo "### $b (GS_RUNS=$runs)" >> "$out"
  GS_RUNS=$runs "$b" >> "$out" 2>&1
  echo "### exit=$? $b" >> "$out"
  echo >> "$out"
done
echo "ALL-BENCHES-DONE" >> "$out"
