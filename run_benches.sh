#!/bin/bash
# Regenerates every table/figure of the paper (bench_output.txt).
# Paper figures use 10 runs (like the paper); ablations use 5.
cd "$(dirname "$0")"
out=bench_output.txt
# Benches measure timing shapes; under sanitizers (GS_SANITIZE=ON/asan/
# tsan) the numbers are meaningless and the sweeps are painfully slow —
# skip. The cache entry's type varies with how the value was set.
if grep -qsE "^GS_SANITIZE:[^=]*=(ON|on|asan|tsan|TRUE|true|1|yes)$" \
    build/CMakeCache.txt; then
  echo "sanitizer build detected (GS_SANITIZE set); skipping benches" | tee "$out"
  echo "ALL-BENCHES-DONE" >> "$out"
  exit 0
fi
: > "$out"
for b in build/bench/*; do
  case "$b" in
    */bench_fig*|*/bench_table1*) runs=10 ;;
    */bench_*) runs=5 ;;
    *) continue ;;
  esac
  # An external GS_RUNS overrides the per-bench default (CI uses 1).
  runs=${GS_RUNS:-$runs}
  echo "### $b (GS_RUNS=$runs)" >> "$out"
  # The datapath bench measures wall time; publish its raw points as JSON.
  # The netsim microbench does the same through google-benchmark's JSON
  # reporter (scaling evidence for the incremental solver, docs/PERF.md).
  json=
  case "$b" in
    */bench_adaptive) json=BENCH_adaptive.json ;;
    */bench_coded) json=BENCH_coded.json ;;
    */bench_micro_datapath) json=BENCH_datapath.json ;;
    */bench_micro_netsim) json=BENCH_netsim.json ;;
    */bench_multitenant) json=BENCH_multitenant.json ;;
    */bench_transport) json=BENCH_transport.json ;;
  esac
  # Figure/table benches also emit one observability RunReport each
  # (the bench's last run — see docs/OBSERVABILITY.md).
  report=
  case "$b" in
    */bench_fig*|*/bench_table1*) report=REPORT_$(basename "$b" | sed 's/^bench_//').json ;;
  esac
  GS_RUNS=$runs GS_BENCH_JSON=$json GS_BENCH_REPORT=$report "$b" >> "$out" 2>&1
  echo "### exit=$? $b" >> "$out"
  echo >> "$out"
done
echo "ALL-BENCHES-DONE" >> "$out"
