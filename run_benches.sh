#!/bin/bash
# Regenerates every table/figure of the paper (bench_output.txt).
# Paper figures use 10 runs (like the paper); ablations use 5.
cd "$(dirname "$0")"
out=bench_output.txt
: > "$out"
for b in build/bench/*; do
  case "$b" in
    */bench_fig*|*/bench_table1*) runs=10 ;;
    */bench_*) runs=5 ;;
    *) continue ;;
  esac
  echo "### $b (GS_RUNS=$runs)" >> "$out"
  GS_RUNS=$runs "$b" >> "$out" 2>&1
  echo "### exit=$? $b" >> "$out"
  echo >> "$out"
done
echo "ALL-BENCHES-DONE" >> "$out"
