// Quickstart: a geo-distributed word count under all three schemes.
//
// Demonstrates the public API end to end: build a cluster, create a
// placed input dataset, transform it, run an action, read the metrics.
//
//   $ ./quickstart
#include <iostream>
#include <unordered_map>

#include "common/log.h"
#include "engine/cluster.h"
#include "engine/dataset.h"
#include "workloads/input_gen.h"

int main() {
  gs::SetLogLevel(gs::LogLevel::kInfo);
  const double scale = 100.0;  // run at 1/100 of paper scale

  for (gs::Scheme scheme : {gs::Scheme::kSpark, gs::Scheme::kCentralized,
                            gs::Scheme::kAggShuffle}) {
    gs::RunConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 42;
    cfg.scale = scale;
    cfg.cost = gs::CostModel{}.Scaled(scale);

    gs::GeoCluster cluster(gs::Ec2SixRegionTopology(scale), cfg);

    // Generate ~8 MiB of Zipf text spread over the six regions (40% in
    // N. Virginia, the ingest region).
    gs::Rng rng(7);
    auto vocab = gs::MakeVocabulary(2000, rng);
    gs::ZipfSampler zipf(vocab.size(), 1.1);
    std::vector<std::vector<gs::Record>> parts;
    for (int p = 0; p < 24; ++p) {
      parts.push_back(
          gs::MakeTextLines(gs::MiB(8) / 24, 12, vocab, zipf, rng));
    }
    gs::Dataset text = cluster.CreateSource(
        "text", gs::PlacePartitions(cluster.topology(), std::move(parts),
                                    gs::DefaultDcWeights(6)));

    gs::Dataset counts =
        text.FlatMap("tokenize",
                     [](const gs::Record& line) {
                       std::vector<gs::Record> out;
                       const auto& s = std::get<std::string>(line.value);
                       std::size_t i = 0;
                       while (i < s.size()) {
                         std::size_t j = s.find(' ', i);
                         if (j == std::string::npos) j = s.size();
                         if (j > i) {
                           out.push_back(gs::Record{s.substr(i, j - i),
                                                    std::int64_t{1}});
                         }
                         i = j + 1;
                       }
                       return out;
                     })
            .ReduceByKey(gs::SumInt64(), /*num_shards=*/8);

    gs::RunResult run = counts.Run(gs::ActionKind::kCollect);
    const gs::JobMetrics& m = run.metrics;

    std::int64_t total_words = 0;
    for (const auto& r : run.records) {
      total_words += std::get<std::int64_t>(r.value);
    }
    std::cout << gs::SchemeName(scheme) << ": " << run.records.size()
              << " distinct words, " << total_words << " total; job took "
              << m.jct() << "s, cross-DC traffic "
              << gs::ToMiB(m.cross_dc_bytes) << " MiB over " << m.stages.size()
              << " stages\n";
  }
  return 0;
}
