// log_sessionization: a groupByKey workload over geo-distributed service
// logs — the "raw data born distributed" scenario that motivates wide-area
// analytics (Sec. I).
//
// Each region's frontends produce click logs locally; the job groups
// events by user id to reconstruct sessions, then filters long sessions.
// groupByKey cannot shrink data with a combiner, so shuffle placement is
// everything: stock Spark drags every region's events to reducers spread
// around the world, while AggShuffle pushes them once, early, to a single
// well-connected region.
//
//   $ ./log_sessionization
#include <iostream>

#include "common/table.h"
#include "engine/cluster.h"
#include "engine/dataset.h"
#include "workloads/input_gen.h"

namespace {

// Click-log events: key = user id, value = "timestamp url" line. Users are
// sticky to their home region (90%), with some roaming traffic.
std::vector<gs::SourceRdd::Partition> MakeLogs(const gs::Topology& topo,
                                               gs::Rng& rng) {
  const int users_per_region = 400;
  std::vector<std::vector<gs::Record>> parts(24);
  for (int region = 0; region < 6; ++region) {
    const int events = 4000;
    for (int e = 0; e < events; ++e) {
      int home = rng.Bernoulli(0.9)
                     ? region
                     : static_cast<int>(rng.UniformInt(0, 5));
      int user = static_cast<int>(rng.UniformInt(0, users_per_region - 1));
      std::string uid =
          "u" + std::to_string(home) + "-" + std::to_string(user);
      std::string event = std::to_string(rng.UniformInt(1000000, 9999999)) +
                          " /item/" + std::to_string(rng.UniformInt(0, 499));
      // Events land in the region that served them (partition per worker).
      parts[region * 4 + e % 4].push_back(gs::Record{uid, event});
    }
  }
  std::vector<gs::SourceRdd::Partition> placed;
  for (int p = 0; p < 24; ++p) {
    gs::SourceRdd::Partition part;
    part.records = gs::MakeRecords(std::move(parts[p]));
    part.node = p;  // worker p lives in region p/4
    part.bytes = gs::SerializedSize(*part.records);
    placed.push_back(std::move(part));
  }
  return placed;
}

}  // namespace

int main() {
  using namespace gs;
  const double scale = 100.0;

  TextTable table({"Scheme", "sessions >= 20 events", "JCT", "cross-DC",
                   "fetch", "push"});
  for (Scheme scheme :
       {Scheme::kSpark, Scheme::kCentralized, Scheme::kAggShuffle}) {
    RunConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 23;
    cfg.scale = scale;
    cfg.cost = CostModel{}.Scaled(scale);
    GeoCluster cluster(Ec2SixRegionTopology(scale), cfg);

    Rng rng(51);
    Dataset logs = cluster.CreateSource("click-logs",
                                        MakeLogs(cluster.topology(), rng));
    Dataset sessions = logs.GroupByKey(8);
    Dataset heavy =
        sessions.Filter("long-sessions", [](const Record& r) {
          return std::get<std::vector<std::string>>(r.value).size() >= 20;
        });
    RunResult run = heavy.Run(ActionKind::kCollect);

    const JobMetrics& m = run.metrics;
    table.AddRow({SchemeName(scheme), std::to_string(run.records.size()),
                  FmtDouble(m.jct(), 2) + "s", FmtMiB(m.cross_dc_bytes),
                  FmtMiB(m.cross_dc_fetch_bytes),
                  FmtMiB(m.cross_dc_push_bytes)});
  }
  std::cout << "Sessionizing click logs born in six regions "
               "(groupByKey, no combiner possible):\n"
            << table.Render()
            << "\nAll schemes find the same sessions; they differ only in "
               "when and where the events cross the WAN.\n";
  return 0;
}
