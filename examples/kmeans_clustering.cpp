// kmeans_clustering: an iterative ML job beyond the paper's workload set,
// showing how cached datasets interact with Push/Aggregate across *many
// actions* (one job per iteration, unlike PageRank's single-job loop).
//
// Points are born geo-distributed and cached in place; every iteration
// ships only (centroid, partial-sum) records through the shuffle — a few
// hundred bytes — and collects K centroids at the driver. The paper's
// Sec. IV-E advice applies: cache after aggregation to avoid repeated
// WAN transfers of the big dataset.
//
//   $ ./kmeans_clustering
#include <cmath>
#include <iostream>
#include <sstream>

#include "common/table.h"
#include "engine/cluster.h"
#include "engine/dataset.h"
#include "workloads/input_gen.h"

namespace {

constexpr int kClusters = 8;
constexpr int kIterations = 5;
constexpr int kPoints = 6000;

// A 2-D point record: key = point id, value = TermWeight pairs
// {("x", x), ("y", y)}.
gs::Record MakePoint(int id, double x, double y) {
  return gs::Record{"pt" + std::to_string(id),
                    std::vector<gs::TermWeight>{{"x", x}, {"y", y}}};
}

struct Centroid {
  double x = 0, y = 0;
};

double Get(const std::vector<gs::TermWeight>& v, const char* key) {
  for (const auto& [k, val] : v) {
    if (k == key) return val;
  }
  return 0;
}

void Run(gs::Scheme scheme, gs::TextTable& table) {
  const double scale = 100.0;
  gs::RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 29;
  cfg.scale = scale;
  cfg.cost = gs::CostModel{}.Scaled(scale);
  gs::GeoCluster cluster(gs::Ec2SixRegionTopology(scale), cfg);

  // Generate points in `kClusters` blobs, spread across regions.
  gs::Rng rng(61);
  std::vector<Centroid> truth(kClusters);
  for (auto& c : truth) {
    c.x = rng.Uniform(-100, 100);
    c.y = rng.Uniform(-100, 100);
  }
  std::vector<gs::Record> points;
  points.reserve(kPoints);
  for (int i = 0; i < kPoints; ++i) {
    const Centroid& c = truth[i % kClusters];
    points.push_back(MakePoint(i, c.x + rng.Normal(0, 4.0),
                               c.y + rng.Normal(0, 4.0)));
  }
  gs::Dataset data =
      cluster.Parallelize("points", points, 2).Cache();  // cache in place

  // Initial centroids: the first K points.
  std::vector<Centroid> centroids(kClusters);
  for (int k = 0; k < kClusters; ++k) {
    const auto& v = std::get<std::vector<gs::TermWeight>>(points[k].value);
    centroids[k] = {Get(v, "x"), Get(v, "y")};
  }

  double total_jct = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    auto assigned = data.Map(
        "assign-" + std::to_string(iter), [centroids](const gs::Record& p) {
          const auto& v = std::get<std::vector<gs::TermWeight>>(p.value);
          const double x = Get(v, "x"), y = Get(v, "y");
          int best = 0;
          double best_d = 1e300;
          for (int k = 0; k < kClusters; ++k) {
            double dx = x - centroids[k].x, dy = y - centroids[k].y;
            double d = dx * dx + dy * dy;
            if (d < best_d) {
              best_d = d;
              best = k;
            }
          }
          return gs::Record{
              "c" + std::to_string(best),
              std::vector<gs::TermWeight>{{"sx", x}, {"sy", y}, {"n", 1}}};
        });
    gs::RunResult run = assigned.ReduceByKey(gs::MergeTermWeights(), kClusters)
                            .Run(gs::ActionKind::kCollect);
    const auto& sums = run.records;
    total_jct += run.metrics.jct();
    for (const gs::Record& s : sums) {
      int k = std::stoi(s.key.substr(1));
      const auto& v = std::get<std::vector<gs::TermWeight>>(s.value);
      double n = Get(v, "n");
      if (n > 0) centroids[k] = {Get(v, "sx") / n, Get(v, "sy") / n};
    }
  }

  // Quality: mean distance between found and true centroids (greedy match).
  double err = 0;
  for (const Centroid& t : truth) {
    double best = 1e300;
    for (const Centroid& c : centroids) {
      double dx = t.x - c.x, dy = t.y - c.y;
      best = std::min(best, std::sqrt(dx * dx + dy * dy));
    }
    err += best;
  }
  err /= kClusters;

  const gs::TrafficMeter& meter = cluster.network().meter();
  std::ostringstream jct;
  jct << gs::FmtDouble(total_jct, 1) << "s";
  table.AddRow({gs::SchemeName(scheme), jct.str(),
                gs::FmtMiB(meter.cross_dc_total() -
                           meter.cross_dc_of_kind(gs::FlowKind::kCollect)),
                gs::FmtDouble(err, 2)});
}

}  // namespace

int main() {
  using namespace gs;
  std::cout << "K-Means over six regions: " << kPoints << " points, "
            << kClusters << " clusters, " << kIterations
            << " iterations (one job each, points cached in place).\n\n";
  TextTable table({"Scheme", "total JCT (5 iters)", "cross-DC (all jobs)",
                   "centroid error"});
  Run(Scheme::kSpark, table);
  Run(Scheme::kAggShuffle, table);
  std::cout << table.Render()
            << "\nBoth schemes converge to the same centroids; the shuffled "
               "partial sums are tiny, so the gap comes from barrier "
               "fetches vs pipelined pushes across the iterations.\n";
  return 0;
}
