// geo_wordcount: explicit vs automatic transferTo() on a wide-area
// word-count, the paper's running example (Sec. IV).
//
// Demonstrates:
//  * spark.shuffle.aggregation-style automatic insertion (AggShuffle);
//  * explicit developer-placed transferTo() with a chosen datacenter;
//  * reading the traffic decomposition (fetch vs push) from the metrics.
//
//   $ ./geo_wordcount
#include <iostream>
#include <unordered_map>

#include "common/table.h"
#include "engine/cluster.h"
#include "engine/dataset.h"
#include "workloads/input_gen.h"

namespace {

std::vector<gs::Record> TokenizeCount(const gs::Record& line) {
  std::unordered_map<std::string, std::int64_t> local;
  const auto& s = std::get<std::string>(line.value);
  std::size_t i = 0;
  while (i < s.size()) {
    std::size_t j = s.find(' ', i);
    if (j == std::string::npos) j = s.size();
    if (j > i) ++local[s.substr(i, j - i)];
    i = j + 1;
  }
  std::vector<gs::Record> out;
  out.reserve(local.size());
  for (auto& [w, c] : local) out.push_back(gs::Record{w, c});
  return out;
}

std::vector<gs::SourceRdd::Partition> MakeInput(const gs::Topology& topo) {
  gs::Rng rng(21);
  auto vocab = gs::MakeVocabulary(3000, rng);
  gs::ZipfSampler zipf(vocab.size(), 1.1);
  std::vector<std::vector<gs::Record>> parts;
  for (int p = 0; p < 24; ++p) {
    parts.push_back(
        gs::MakeTextLines(gs::MiB(16) / 24, 20, vocab, zipf, rng));
  }
  return gs::PlacePartitions(topo, std::move(parts),
                             gs::DefaultDcWeights(6));
}

}  // namespace

int main() {
  using namespace gs;
  const double scale = 100.0;

  struct Variant {
    const char* label;
    Scheme scheme;
    DcIndex explicit_dc;  // kNoDc = rely on the scheme
  };
  const Variant variants[] = {
      {"stock Spark (fetch-based shuffle)", Scheme::kSpark, kNoDc},
      {"automatic aggregation (spark.shuffle.aggregation)",
       Scheme::kAggShuffle, kNoDc},
      {"explicit .TransferTo(Frankfurt)", Scheme::kSpark, 3},
  };

  TextTable table({"Variant", "JCT", "cross-DC", "fetch", "push",
                   "distinct words"});
  for (const Variant& v : variants) {
    RunConfig cfg;
    cfg.scheme = v.scheme;
    cfg.seed = 9;
    cfg.scale = scale;
    cfg.cost = CostModel{}.Scaled(scale);
    GeoCluster cluster(Ec2SixRegionTopology(scale), cfg);

    Dataset text = cluster.CreateSource("pages", MakeInput(cluster.topology()));
    Dataset tokens = text.FlatMap("tokenize", TokenizeCount);
    if (v.explicit_dc != kNoDc) tokens = tokens.TransferTo(v.explicit_dc);
    Dataset counts = tokens.ReduceByKey(SumInt64(), 8);
    RunResult run = counts.Run(ActionKind::kCollect);

    const JobMetrics& m = run.metrics;
    table.AddRow({v.label, FmtDouble(m.jct(), 2) + "s",
                  FmtMiB(m.cross_dc_bytes), FmtMiB(m.cross_dc_fetch_bytes),
                  FmtMiB(m.cross_dc_push_bytes),
                  std::to_string(run.records.size())});
  }
  std::cout << "Wide-area word count over six EC2 regions (16 MiB of text, "
               "scaled 1/100):\n"
            << table.Render()
            << "\nBoth transferTo variants replace cross-datacenter fetches "
               "with proactive pushes of combined (smaller) data.\n";
  return 0;
}
