// iterative_pagerank: why Push/Aggregate shines on iterative jobs.
//
// Builds PageRank directly on the public Dataset API with a configurable
// iteration count. Under AggShuffle only the first shuffle (partitioning
// the adjacency lists) crosses datacenters; every later iteration is
// datacenter-local, so cross-DC traffic stays flat while stock Spark's
// grows with the iteration count (the paper reports a 91.3% traffic
// reduction for PageRank, its best case).
//
//   $ ./iterative_pagerank
#include <iostream>

#include "common/table.h"
#include "engine/cluster.h"
#include "engine/dataset.h"
#include "workloads/input_gen.h"

namespace {

using gs::Record;
using gs::TermWeight;

// One PageRank run; returns (cross-DC MiB, jct seconds).
std::pair<double, double> RunPageRank(gs::Scheme scheme, int iterations) {
  const double scale = 100.0;
  gs::RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 17;
  cfg.scale = scale;
  cfg.cost = gs::CostModel{}.Scaled(scale);
  gs::GeoCluster cluster(gs::Ec2SixRegionTopology(scale), cfg);

  gs::Rng rng(31);
  std::vector<Record> graph = gs::MakeWebGraph(5000, 12.0, rng);
  std::vector<std::vector<Record>> parts(24);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    parts[i % 24].push_back(std::move(graph[i]));
  }
  gs::Dataset input = cluster.CreateSource(
      "crawl", gs::PlacePartitions(cluster.topology(), std::move(parts),
                                   gs::DefaultDcWeights(6)));

  // Partition adjacency by page and attach the initial rank ("#r").
  gs::Dataset state =
      input
          .Map("adjacency",
               [](const Record& r) {
                 const auto& links =
                     std::get<std::vector<std::string>>(r.value);
                 std::vector<TermWeight> v;
                 v.reserve(links.size());
                 for (const auto& l : links) v.emplace_back(l, 0.0);
                 return Record{r.key, std::move(v)};
               })
          .ReduceByKey(gs::MergeTermWeights(), 8)
          .Map("init-rank", [](const Record& r) {
            auto v = std::get<std::vector<TermWeight>>(r.value);
            v.emplace_back("#r", 1.0);
            return Record{r.key, std::move(v)};
          });

  for (int iter = 0; iter < iterations; ++iter) {
    gs::Dataset contribs = state.FlatMap(
        "contribs-" + std::to_string(iter), [](const Record& r) {
          const auto& v = std::get<std::vector<TermWeight>>(r.value);
          double rank = 1.0;
          int degree = 0;
          for (const auto& [term, w] : v) {
            if (term == "#r") rank = w;
            else if (term[0] != '#') ++degree;
          }
          std::vector<Record> out;
          if (degree > 0) {
            const double share = 0.85 * rank / degree;
            for (const auto& [term, w] : v) {
              if (term[0] != '#') {
                out.push_back(
                    Record{term, std::vector<TermWeight>{{"#c", share}}});
              }
            }
          }
          return out;
        });
    state = state.Union(contribs)
                .ReduceByKey(gs::MergeTermWeights(), 8)
                .Map("apply-rank-" + std::to_string(iter),
                     [](const Record& r) {
                       const auto& v =
                           std::get<std::vector<TermWeight>>(r.value);
                       double contrib = 0;
                       std::vector<TermWeight> next;
                       for (const auto& [term, w] : v) {
                         if (term == "#c") contrib += w;
                         else if (term[0] != '#') next.emplace_back(term, w);
                       }
                       next.emplace_back("#r", 0.15 + contrib);
                       return Record{r.key, std::move(next)};
                     });
  }
  const gs::JobMetrics m = state.Run(gs::ActionKind::kSave).metrics;
  return {gs::ToMiB(m.cross_dc_bytes), m.jct()};
}

}  // namespace

int main() {
  using namespace gs;
  std::cout << "PageRank over six EC2 regions (5,000 pages, 1/100 scale), "
               "growing iteration count.\n\n";

  TextTable table({"Iterations", "Spark cross-DC", "AggShuffle cross-DC",
                   "reduction", "Spark JCT", "AggShuffle JCT"});
  for (int iters = 1; iters <= 4; ++iters) {
    auto [spark_mib, spark_jct] = RunPageRank(Scheme::kSpark, iters);
    auto [agg_mib, agg_jct] = RunPageRank(Scheme::kAggShuffle, iters);
    table.AddRow({std::to_string(iters), FmtDouble(spark_mib, 2) + " MiB",
                  FmtDouble(agg_mib, 2) + " MiB",
                  FmtPercent(agg_mib / spark_mib - 1.0),
                  FmtDouble(spark_jct, 1) + "s",
                  FmtDouble(agg_jct, 1) + "s"});
  }
  std::cout << table.Render()
            << "\nAggShuffle's traffic stays flat as iterations grow: after "
               "the first aggregated shuffle, every later shuffle is "
               "datacenter-local.\n";
  return 0;
}
