#include "common/check.h"

#include <gtest/gtest.h>

namespace gs {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(GS_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(GS_CHECK_MSG(true, "never shown"));
}

TEST(CheckTest, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(GS_CHECK(false), CheckFailure);
}

TEST(CheckTest, MessageContainsExpressionAndLocation) {
  try {
    GS_CHECK(2 < 1);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cc"), std::string::npos);
  }
}

TEST(CheckTest, MsgVariantStreamsContext) {
  try {
    int shard = 7;
    GS_CHECK_MSG(shard < 4, "shard " << shard << " out of range");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("shard 7 out of range"), std::string::npos);
  }
}

TEST(CheckTest, IsALogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(GS_CHECK(false), std::logic_error);
}

}  // namespace
}  // namespace gs
