#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace gs {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitProducesIndependentChildren) {
  Rng root(7);
  Rng a = root.Split("alpha");
  Rng b = root.Split("beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitIsDeterministicGivenSeedAndOrder) {
  auto draw = [] {
    Rng root(99);
    Rng child = root.Split("tag");
    return child.UniformInt(0, 1 << 30);
  };
  EXPECT_EQ(draw(), draw());
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformRealBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, NormalMoments) {
  Rng rng(10);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.Shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, SamplesInRangeAndHeadHeavy) {
  const double exponent = GetParam();
  Rng rng(13);
  ZipfSampler zipf(100, exponent);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    std::size_t s = zipf.Sample(rng);
    ASSERT_LT(s, 100u);
    ++counts[s];
  }
  // Rank 0 must dominate rank 10 and rank 10 dominate rank 90.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfTest,
                         ::testing::Values(0.8, 1.0, 1.1, 1.5, 2.0));

TEST(ZipfTest, RatioMatchesLaw) {
  Rng rng(14);
  ZipfSampler zipf(1000, 1.0);
  int c0 = 0, c1 = 0;
  for (int i = 0; i < 100000; ++i) {
    std::size_t s = zipf.Sample(rng);
    if (s == 0) ++c0;
    if (s == 1) ++c1;
  }
  // P(0)/P(1) = 2 for exponent 1.
  EXPECT_NEAR(static_cast<double>(c0) / c1, 2.0, 0.4);
}

}  // namespace
}  // namespace gs
