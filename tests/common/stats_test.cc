#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace gs {
namespace {

TEST(StatsTest, EmptySampleIsZero) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
  EXPECT_EQ(s.median, 0);
}

TEST(StatsTest, SingleSample) {
  Summary s = Summarize({5.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.trimmed_mean, 5.0);
  EXPECT_EQ(s.median, 5.0);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(StatsTest, TwoSamplesTrimmedFallsBackToMean) {
  Summary s = Summarize({2.0, 4.0});
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.trimmed_mean, 3.0);
}

TEST(StatsTest, TrimmedMeanDropsMinAndMax) {
  // The paper's methodology: drop the best and worst run before averaging.
  Summary s = Summarize({100.0, 1.0, 2.0, 3.0, 0.0});
  EXPECT_EQ(s.trimmed_mean, 2.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 100.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_EQ(Summarize({3.0, 1.0, 2.0}).median, 2.0);
  EXPECT_EQ(Summarize({4.0, 1.0, 2.0, 3.0}).median, 2.5);
}

TEST(StatsTest, QuartilesOfKnownSample) {
  Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.p25, 2.0);
  EXPECT_EQ(s.p75, 4.0);
  EXPECT_EQ(s.iqr(), 2.0);
}

TEST(StatsTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0, 4.0}, 25), 1.75);
}

TEST(StatsTest, StddevOfKnownSample) {
  Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample stddev (n-1)
}

TEST(StatsTest, AllEqualSamplesCollapse) {
  Summary s = Summarize({3.0, 3.0, 3.0, 3.0});
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.trimmed_mean, 3.0);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.p25, 3.0);
  EXPECT_EQ(s.p75, 3.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.iqr(), 0.0);
}

TEST(StatsTest, NegativeAndMixedSignSamples) {
  Summary s = Summarize({-4.0, -2.0, 0.0, 2.0, 4.0});
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.trimmed_mean, 0.0);
  EXPECT_EQ(s.min, -4.0);
  EXPECT_EQ(s.median, 0.0);
}

TEST(StatsTest, NanSamplesAreRejected) {
  // NaN breaks strict weak ordering (sorting it is UB) and poisons every
  // aggregate — it is a caller bug, reported loudly instead of returning
  // garbage.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Summarize({1.0, nan, 2.0}), CheckFailure);
  EXPECT_THROW(Summarize({nan}), CheckFailure);
  EXPECT_THROW(Percentile({1.0, nan}, 50), CheckFailure);
}

TEST(StatsTest, InfinitiesPropagate) {
  const double inf = std::numeric_limits<double>::infinity();
  Summary s = Summarize({1.0, 2.0, inf});
  EXPECT_EQ(s.max, inf);
  EXPECT_EQ(s.mean, inf);
  // trimmed = (sum - min - max) = inf - 1 - inf: IEEE makes this NaN, and
  // that is the documented contract — infinities are the caller's problem.
  EXPECT_TRUE(std::isnan(s.trimmed_mean));
  EXPECT_EQ(s.median, 2.0);
}

TEST(StatsTest, PercentileRejectsEmptyAndBadQ) {
  EXPECT_THROW(Percentile({}, 50), CheckFailure);
  EXPECT_THROW(Percentile({1.0}, -1), CheckFailure);
  EXPECT_THROW(Percentile({1.0}, 101), CheckFailure);
}

class StatsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StatsPropertyTest, OrderingInvariants) {
  Rng rng(GetParam());
  std::vector<double> samples;
  const int n = static_cast<int>(rng.UniformInt(1, 200));
  for (int i = 0; i < n; ++i) samples.push_back(rng.Uniform(-50, 50));
  Summary s = Summarize(samples);
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.max);
  EXPECT_LE(s.min, s.trimmed_mean);
  EXPECT_LE(s.trimmed_mean, s.max);
  EXPECT_GE(s.iqr(), 0.0);
  EXPECT_GE(s.stddev, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace gs
