#include "common/table.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace gs {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  TextTable t({"a", "bee"});
  t.AddRow({"1", "2"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| bee "), std::string::npos);
  EXPECT_NE(out.find("| 1 "), std::string::npos);
}

TEST(TableTest, ColumnWidthFollowsWidestCell) {
  TextTable t({"x"});
  t.AddRow({"longest-cell-content"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| longest-cell-content |"), std::string::npos);
  EXPECT_NE(out.find("| x                    |"), std::string::npos);
}

TEST(TableTest, SeparatorAddsRule) {
  TextTable t({"x"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::string out = t.Render();
  // header rule + post-header rule + separator + final rule = 4 rules.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TableTest, MismatchedRowThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), CheckFailure);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), CheckFailure);
}

TEST(FormatTest, FmtDouble) {
  EXPECT_EQ(FmtDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FmtDouble(2.0, 0), "2");
}

TEST(FormatTest, FmtMiB) {
  EXPECT_EQ(FmtMiB(1024 * 1024), "1.0 MiB");
  EXPECT_EQ(FmtMiB(1536 * 1024), "1.5 MiB");
}

TEST(FormatTest, FmtPercentSigned) {
  EXPECT_EQ(FmtPercent(-0.25), "-25.0%");
  EXPECT_EQ(FmtPercent(0.125), "+12.5%");
}

}  // namespace
}  // namespace gs
