#include "common/units.h"

#include <gtest/gtest.h>

namespace gs {
namespace {

TEST(UnitsTest, ByteHelpers) {
  EXPECT_EQ(KiB(1), 1024);
  EXPECT_EQ(MiB(1), 1024 * 1024);
  EXPECT_EQ(GiB(1), 1024LL * 1024 * 1024);
  EXPECT_EQ(MiB(1.5), 1536 * 1024);
  EXPECT_EQ(KiB(0.5), 512);
}

TEST(UnitsTest, RateHelpers) {
  // 8 Mbps = 1 MB/s (decimal).
  EXPECT_DOUBLE_EQ(Mbps(8), 1e6);
  EXPECT_DOUBLE_EQ(Gbps(1), Mbps(1000));
}

TEST(UnitsTest, TimeHelpers) {
  EXPECT_DOUBLE_EQ(Seconds(2.5), 2.5);
  EXPECT_DOUBLE_EQ(Millis(1500), 1.5);
}

TEST(UnitsTest, ToMiBRoundTrips) {
  EXPECT_DOUBLE_EQ(ToMiB(MiB(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMiB(KiB(512)), 0.5);
  EXPECT_DOUBLE_EQ(ToMiB(0), 0.0);
}

TEST(UnitsTest, TransferArithmetic) {
  // 1 MiB over a 100 Mbps link: ~0.084 seconds.
  double seconds = static_cast<double>(MiB(1)) / Mbps(100);
  EXPECT_NEAR(seconds, 0.0839, 1e-3);
}

}  // namespace
}  // namespace gs
