// ThreadPool: the determinism-bearing properties the engine relies on —
// every submitted job runs exactly once with its result delivered through
// the future, exceptions propagate through Future::get(), FIFO submission
// order is preserved by a single worker, and shutdown drains the queue.
#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gs {
namespace {

TEST(ThreadPoolTest, ReturnsEachJobsResult) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool_neg(-3);
  EXPECT_EQ(pool_neg.num_threads(), 1);
  EXPECT_EQ(pool_neg.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SingleWorkerRunsJobsInSubmissionOrder) {
  // With one worker the shared FIFO queue forces submission order; this is
  // the configuration the determinism argument reduces to.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughGet) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return std::string("fine"); });
  auto bad = pool.Submit([]() -> std::string {
    throw std::runtime_error("job failed");
  });
  EXPECT_EQ(ok.get(), "fine");
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "job failed");
          throw;
        }
      },
      std::runtime_error);
  // The worker survives a throwing job.
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilAllJobsFinish) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 32);
  // Idempotent when already idle.
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, DestructorDrainsTheQueue) {
  // Every submitted job must run before shutdown completes — the engine
  // relies on this for orphaned task attempts that still reference stage
  // structures.
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        done.fetch_add(1);
      });
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ManyThreadsProduceTheSameResultsAsOne) {
  // The engine's determinism claim at the pool level: the multiset of
  // results is a function of the jobs alone, not the worker count.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<std::future<long>> futures;
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.Submit([i] {
        long acc = 0;
        for (int k = 0; k <= i; ++k) acc += k * k;
        return acc;
      }));
    }
    std::vector<long> out;
    for (auto& f : futures) out.push_back(f.get());
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ThreadPoolTest, DefaultWidthClampsToHardware) {
  // Oversubscribing pure compute never helps; the default policy spawns at
  // most HardwareConcurrency() workers however many are requested.
  ThreadPool pool(64);
  EXPECT_LE(pool.num_threads(), ThreadPool::HardwareConcurrency());
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, ExactWidthSpawnsRequestedWorkers) {
  ThreadPool pool(8, ThreadPool::Width::kExact);
  EXPECT_EQ(pool.num_threads(), 8);
  EXPECT_EQ(pool.Submit([] { return 3; }).get(), 3);
}

TEST(MoveFunctionTest, RunsInlineAndHeapCallables) {
  int hits = 0;
  MoveFunction small([&hits] { ++hits; });  // fits the inline buffer
  char big_payload[2 * MoveFunction::kInlineSize] = {1};
  MoveFunction big([&hits, big_payload] { hits += big_payload[0]; });
  EXPECT_TRUE(static_cast<bool>(small));
  small();
  big();
  EXPECT_EQ(hits, 2);
  // Move transfers the callable; the source becomes empty.
  MoveFunction moved = std::move(small);
  moved();
  EXPECT_EQ(hits, 3);
  EXPECT_FALSE(static_cast<bool>(small));  // NOLINT(bugprone-use-after-move)
}

TEST(MoveFunctionTest, AcceptsMoveOnlyCallables) {
  auto ptr = std::make_unique<int>(41);
  int out = 0;
  MoveFunction fn([p = std::move(ptr), &out] { out = *p + 1; });
  fn();
  EXPECT_EQ(out, 42);
}

TEST(ThreadPoolTest, SubmitBatchDeliversEveryResult) {
  ThreadPool pool(4, ThreadPool::Width::kExact);
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 100; ++i) {
    jobs.emplace_back([i] { return 3 * i; });
  }
  std::vector<std::future<int>> futures = pool.SubmitBatch(std::move(jobs));
  ASSERT_EQ(futures.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), 3 * i);
  }
}

TEST(ThreadPoolTest, SubmitBatchSingleWorkerPreservesOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 50; ++i) {
    jobs.emplace_back([&order, i] { order.push_back(i); });
  }
  for (auto& f : pool.SubmitBatch(std::move(jobs))) f.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, SubmitPreparedRunsPackagedTasks) {
  ThreadPool pool(2, ThreadPool::Width::kExact);
  std::vector<std::future<int>> futures;
  std::vector<MoveFunction> jobs;
  for (int i = 0; i < 20; ++i) {
    std::packaged_task<int()> task([i] { return i + 100; });
    futures.push_back(task.get_future());
    jobs.emplace_back([task = std::move(task)]() mutable { task(); });
  }
  pool.SubmitPrepared(std::move(jobs));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i + 100);
  }
}

TEST(ThreadPoolTest, WorkStealingStressRunsEveryJobExactlyOnce) {
  // Many real workers, waves submitted from several threads at once, jobs
  // of wildly uneven cost: whatever shard a job lands on, stealing must
  // get it run exactly once. Run under scripts/tsan_ctest.sh this is the
  // pool's main data-race workout.
  ThreadPool pool(8, ThreadPool::Width::kExact);
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 500;
  std::atomic<int> runs{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<int>>> futures(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &futures, &runs, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        if (i % 2 == 0) {
          futures[static_cast<std::size_t>(s)].push_back(
              pool.Submit([&runs, i] {
                if (i % 16 == 0) {
                  std::this_thread::sleep_for(std::chrono::microseconds(50));
                }
                runs.fetch_add(1);
                return i;
              }));
        } else {
          std::vector<std::function<int()>> wave;
          wave.emplace_back([&runs, i] {
            runs.fetch_add(1);
            return i;
          });
          for (auto& f : pool.SubmitBatch(std::move(wave))) {
            futures[static_cast<std::size_t>(s)].push_back(std::move(f));
          }
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  int sum = 0;
  for (auto& fs : futures) {
    for (auto& f : fs) sum += f.get();
  }
  EXPECT_EQ(runs.load(), kSubmitters * kPerSubmitter);
  // Sum of 0..(kPerSubmitter-1) per submitter: every job ran once.
  EXPECT_EQ(sum, kSubmitters * (kPerSubmitter * (kPerSubmitter - 1)) / 2);
}

TEST(ThreadPoolTest, WaitIdleRacesWithConcurrentSubmission) {
  // WaitIdle returns only at a moment when every job submitted so far has
  // finished — even while another thread keeps feeding the pool. The
  // tsan preset checks the idle signalling against the sleeping-worker
  // wakeup path.
  ThreadPool pool(4, ThreadPool::Width::kExact);
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  std::thread feeder([&] {
    for (int i = 0; i < 200; ++i) {
      started.fetch_add(1);
      pool.Submit([&finished] { finished.fetch_add(1); });
      if (i % 32 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    }
  });
  for (int i = 0; i < 50; ++i) {
    pool.WaitIdle();
    // Jobs submitted after WaitIdle returned may still be running, but
    // the count observed before the wait must be covered by completions
    // at some point; sample monotonicity instead of exact equality.
    EXPECT_LE(finished.load(), started.load());
  }
  feeder.join();
  pool.WaitIdle();
  EXPECT_EQ(finished.load(), 200);
  EXPECT_EQ(started.load(), 200);
}

}  // namespace
}  // namespace gs
