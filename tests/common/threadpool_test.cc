// ThreadPool: the determinism-bearing properties the engine relies on —
// every submitted job runs exactly once with its result delivered through
// the future, exceptions propagate through Future::get(), FIFO submission
// order is preserved by a single worker, and shutdown drains the queue.
#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace gs {
namespace {

TEST(ThreadPoolTest, ReturnsEachJobsResult) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool_neg(-3);
  EXPECT_EQ(pool_neg.num_threads(), 1);
  EXPECT_EQ(pool_neg.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SingleWorkerRunsJobsInSubmissionOrder) {
  // With one worker the shared FIFO queue forces submission order; this is
  // the configuration the determinism argument reduces to.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughGet) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return std::string("fine"); });
  auto bad = pool.Submit([]() -> std::string {
    throw std::runtime_error("job failed");
  });
  EXPECT_EQ(ok.get(), "fine");
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "job failed");
          throw;
        }
      },
      std::runtime_error);
  // The worker survives a throwing job.
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilAllJobsFinish) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 32);
  // Idempotent when already idle.
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, DestructorDrainsTheQueue) {
  // Every submitted job must run before shutdown completes — the engine
  // relies on this for orphaned task attempts that still reference stage
  // structures.
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        done.fetch_add(1);
      });
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ManyThreadsProduceTheSameResultsAsOne) {
  // The engine's determinism claim at the pool level: the multiset of
  // results is a function of the jobs alone, not the worker count.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<std::future<long>> futures;
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.Submit([i] {
        long acc = 0;
        for (int k = 0; k <= i; ++k) acc += k * k;
        return acc;
      }));
    }
    std::vector<long> out;
    for (auto& f : futures) out.push_back(f.get());
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

}  // namespace
}  // namespace gs
