#include "common/log.h"

#include <gtest/gtest.h>

namespace gs {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, DefaultLevelSuppressesInfo) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  GS_LOG_INFO << "hidden";
  GS_LOG_WARN << "visible";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
  EXPECT_NE(err.find("visible"), std::string::npos);
}

TEST(LogTest, OffSilencesEverything) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  GS_LOG_ERROR << "nope";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(LogTest, DebugLevelShowsAll) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  GS_LOG_DEBUG << "d";
  GS_LOG_INFO << "i";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[debug] d"), std::string::npos);
  EXPECT_NE(err.find("[info] i"), std::string::npos);
}

TEST(LogTest, StreamsArbitraryValues) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  GS_LOG_INFO << "x=" << 42 << " y=" << 1.5;
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("x=42 y=1.5"), std::string::npos);
}

}  // namespace
}  // namespace gs
