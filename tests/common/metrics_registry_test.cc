// MetricsRegistry: counters, gauges, histograms, snapshot export and
// thread-safety of concurrent updates.
#include "common/metrics_registry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(GaugeTest, TracksLevelAndHighWatermark) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Add(-12);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max_value(), 15);
  g.Set(100);
  EXPECT_EQ(g.max_value(), 100);
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  // Upper bounds: <=1, <=10, <=100, overflow.
  Histogram h({1, 10, 100});
  h.Observe(0.5);
  h.Observe(1.0);  // boundary counts in its bucket (<= bound)
  h.Observe(7);
  h.Observe(100);
  h.Observe(1e9);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7 + 100 + 1e9);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);  // overflow
}

TEST(HistogramTest, ExponentialBoundsShape) {
  auto bounds = ExponentialBounds(2, 4, 3);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 2);
  EXPECT_DOUBLE_EQ(bounds[1], 8);
  EXPECT_DOUBLE_EQ(bounds[2], 32);
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(MetricsRegistryTest, HandlesStayValidAsRegistryGrows) {
  MetricsRegistry reg;
  Counter& first = reg.counter("aaa");
  for (int i = 0; i < 100; ++i) {
    (void)reg.counter("c" + std::to_string(i));
  }
  first.Add(1);
  EXPECT_EQ(reg.counter("aaa").value(), 1);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameAndComplete) {
  MetricsRegistry reg;
  reg.counter("z.count").Add(7);
  reg.gauge("a.level").Set(5);
  reg.histogram("m.dist", {1, 2}).Observe(1.5);
  auto snaps = reg.Snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "a.level");
  EXPECT_EQ(snaps[0].kind, MetricSnapshot::Kind::kGauge);
  EXPECT_EQ(snaps[0].value, 5);
  EXPECT_EQ(snaps[1].name, "m.dist");
  EXPECT_EQ(snaps[1].kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(snaps[1].count, 1);
  ASSERT_EQ(snaps[1].buckets.size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(snaps[1].buckets[1], 1);
  EXPECT_EQ(snaps[2].name, "z.count");
  EXPECT_EQ(snaps[2].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_EQ(snaps[2].value, 7);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  Histogram& h = reg.histogram("obs", ExponentialBounds(1, 2, 8));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Add(1);
        h.Observe(static_cast<double>(i % 300));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::int64_t total = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    total += h.bucket_count(i);
  }
  EXPECT_EQ(total, kThreads * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared." + std::to_string(i)).Add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(reg.counter("shared." + std::to_string(i)).value(), kThreads);
  }
}

}  // namespace
}  // namespace gs
