#include "data/compression.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workloads/input_gen.h"

namespace gs {
namespace {

TEST(CompressionTest, EmptyBatch) {
  EXPECT_EQ(CompressedSize({}), 0);
  EXPECT_EQ(EstimateCompressionRatio({}), 1.0);
}

TEST(CompressionTest, RatioWithinBounds) {
  Rng rng(1);
  std::vector<Record> records;
  for (int i = 0; i < 500; ++i) {
    records.push_back({"k" + std::to_string(i),
                       std::string(50, static_cast<char>('a' + i % 26))});
  }
  double ratio = EstimateCompressionRatio(records);
  EXPECT_GT(ratio, 0.0);
  EXPECT_LE(ratio, 1.0);
}

TEST(CompressionTest, CompressedNeverExceedsSerialized) {
  Rng rng(2);
  auto vocab = MakeVocabulary(100, rng);
  ZipfSampler zipf(vocab.size(), 1.1);
  auto records = MakeTextLines(KiB(64), 10, vocab, zipf, rng);
  EXPECT_LE(CompressedSize(records), SerializedSize(records));
}

TEST(CompressionTest, RepetitiveTextCompressesBetterThanRandom) {
  Rng rng(3);
  // Zipf text from a small vocabulary: highly repetitive.
  auto vocab = MakeVocabulary(200, rng);
  ZipfSampler zipf(vocab.size(), 1.2);
  auto text = MakeTextLines(KiB(64), 15, vocab, zipf, rng);
  // gensort-style records: high-entropy keys and random values.
  auto random = MakeKeyValueRecords(600, 90, rng, kPrintableAlphabet, nullptr);

  double text_ratio = EstimateCompressionRatio(text);
  double random_ratio = EstimateCompressionRatio(random);
  EXPECT_LT(text_ratio, random_ratio);
  EXPECT_LT(text_ratio, 0.6) << "text should compress well";
  EXPECT_GT(random_ratio, 0.7) << "random data should barely compress";
}

TEST(CompressionTest, DeterministicForSameBatch) {
  Rng rng(4);
  auto records = MakeKeyValueRecords(300, 50, rng, kHexAlphabet, nullptr);
  EXPECT_EQ(CompressedSize(records), CompressedSize(records));
}

TEST(CompressionTest, TinyBatchIsUncompressed) {
  std::vector<Record> one{{"k", std::string("ab")}};
  EXPECT_EQ(EstimateCompressionRatio(one), 1.0);
  EXPECT_EQ(CompressedSize(one), SerializedSize(one));
}

TEST(CompressionTest, TeraSortAnomalyHolds) {
  // The paper's TeraSort premise: bloated, incompressible records yield a
  // shuffle input *larger* than the raw input, while text shuffles shrink.
  Rng rng(5);
  auto raw = MakeKeyValueRecords(500, 90, rng, kPrintableAlphabet, nullptr);
  std::vector<Record> bloated;
  for (const Record& r : raw) {
    std::string v = std::get<std::string>(r.value);
    v += "|meta=" + r.key + "|crc=00000000";
    bloated.push_back({r.key, std::move(v)});
  }
  EXPECT_GT(CompressedSize(bloated), SerializedSize(raw))
      << "TeraSort shuffle input must exceed its raw input";

  auto vocab = MakeVocabulary(500, rng);
  ZipfSampler zipf(vocab.size(), 1.1);
  auto text = MakeTextLines(KiB(32), 20, vocab, zipf, rng);
  EXPECT_LT(CompressedSize(text), SerializedSize(text) * 3 / 4)
      << "text shuffle input should be much smaller than raw";
}

}  // namespace
}  // namespace gs
