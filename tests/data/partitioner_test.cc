#include "data/partitioner.h"

#include <gtest/gtest.h>

#include <map>

#include "common/check.h"
#include "common/rng.h"

namespace gs {
namespace {

TEST(HashPartitionerTest, DeterministicAndInRange) {
  HashPartitioner p(8);
  for (int i = 0; i < 1000; ++i) {
    std::string key = "key-" + std::to_string(i);
    int shard = p.ShardOf(key);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 8);
    EXPECT_EQ(shard, p.ShardOf(key));
  }
}

TEST(HashPartitionerTest, SaltChangesAssignment) {
  HashPartitioner a(16, 0), b(16, 1);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    std::string key = "k" + std::to_string(i);
    if (a.ShardOf(key) != b.ShardOf(key)) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(HashPartitionerTest, SingleShard) {
  HashPartitioner p(1);
  EXPECT_EQ(p.ShardOf("anything"), 0);
}

TEST(HashPartitionerTest, ZeroShardsThrows) {
  EXPECT_THROW(HashPartitioner(0), CheckFailure);
}

class HashBalanceTest : public ::testing::TestWithParam<int> {};

TEST_P(HashBalanceTest, ShardsAreBalanced) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  HashPartitioner p(8);
  std::vector<int> counts(8, 0);
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    ++counts[p.ShardOf("key-" + std::to_string(rng.UniformInt(0, 1 << 30)))];
  }
  for (int c : counts) {
    EXPECT_GT(c, n / 8 / 2) << "shard underloaded";
    EXPECT_LT(c, n / 8 * 2) << "shard overloaded";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashBalanceTest, ::testing::Range(1, 9));

TEST(RangePartitionerTest, BoundariesSplitKeySpace) {
  RangePartitioner p({"b", "m"});
  EXPECT_EQ(p.num_shards(), 3);
  EXPECT_EQ(p.ShardOf("a"), 0);
  EXPECT_EQ(p.ShardOf("b"), 0);   // boundary key goes to the left shard
  EXPECT_EQ(p.ShardOf("ba"), 1);
  EXPECT_EQ(p.ShardOf("m"), 1);
  EXPECT_EQ(p.ShardOf("z"), 2);
}

TEST(RangePartitionerTest, ShardOrderMatchesKeyOrder) {
  RangePartitioner p({"d", "h", "p"});
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    std::string a(1, static_cast<char>('a' + rng.UniformInt(0, 25)));
    std::string b(1, static_cast<char>('a' + rng.UniformInt(0, 25)));
    if (a <= b) {
      EXPECT_LE(p.ShardOf(a), p.ShardOf(b))
          << a << " vs " << b << ": range shards must respect key order";
    }
  }
}

TEST(RangePartitionerTest, EmptyBoundariesIsSingleShard) {
  RangePartitioner p(std::vector<std::string>{});
  EXPECT_EQ(p.num_shards(), 1);
  EXPECT_EQ(p.ShardOf("anything"), 0);
}

TEST(RangePartitionerTest, UnsortedBoundariesThrow) {
  EXPECT_THROW(RangePartitioner({"m", "b"}), CheckFailure);
}

TEST(RangePartitionerTest, FromSampleBuildsBalancedRanges) {
  Rng rng(7);
  std::vector<std::string> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(std::to_string(rng.UniformInt(100000, 999999)));
  }
  RangePartitioner p = RangePartitioner::FromSample(keys, 10);
  EXPECT_EQ(p.num_shards(), 10);
  std::vector<int> counts(10, 0);
  for (const auto& k : keys) ++counts[p.ShardOf(k)];
  for (int c : counts) {
    EXPECT_GT(c, 400);
    EXPECT_LT(c, 2500);
  }
}

TEST(RangePartitionerTest, FromSampleDedupesBoundaries) {
  // All-equal sample keys collapse to one boundary -> two shards.
  std::vector<std::string> keys(100, "same");
  RangePartitioner p = RangePartitioner::FromSample(keys, 8);
  EXPECT_LE(p.num_shards(), 2);
}

TEST(RangePartitionerTest, FromSampleEmptyInput) {
  RangePartitioner p = RangePartitioner::FromSample({}, 4);
  EXPECT_EQ(p.num_shards(), 1);
}

}  // namespace
}  // namespace gs
