#include "data/record.h"

#include <gtest/gtest.h>

namespace gs {
namespace {

TEST(RecordTest, SerializedSizeOfScalars) {
  EXPECT_EQ(SerializedSize(Value{std::monostate{}}), 0);
  EXPECT_EQ(SerializedSize(Value{std::int64_t{42}}), 8);
  EXPECT_EQ(SerializedSize(Value{3.14}), 8);
  EXPECT_EQ(SerializedSize(Value{std::string("abcd")}), 4 + 4);
}

TEST(RecordTest, SerializedSizeOfContainers) {
  Value strings = std::vector<std::string>{"ab", "cde"};
  EXPECT_EQ(SerializedSize(strings), 4 + (4 + 2) + (4 + 3));
  Value weights = std::vector<TermWeight>{{"ab", 1.0}, {"c", 2.0}};
  EXPECT_EQ(SerializedSize(weights), 4 + (4 + 2 + 8) + (4 + 1 + 8));
}

TEST(RecordTest, RecordSizeIncludesKeyAndOverhead) {
  Record r{"key", std::int64_t{1}};
  EXPECT_EQ(SerializedSize(r), 8 + 4 + 3 + 8);
}

TEST(RecordTest, BatchSizeSums) {
  std::vector<Record> batch{{"a", std::int64_t{1}}, {"bb", 2.0}};
  EXPECT_EQ(SerializedSize(batch),
            SerializedSize(batch[0]) + SerializedSize(batch[1]));
  EXPECT_EQ(SerializedSize(std::vector<Record>{}), 0);
}

TEST(RecordTest, LargerPayloadLargerSize) {
  Record small{"k", std::string(10, 'x')};
  Record big{"k", std::string(100, 'x')};
  EXPECT_LT(SerializedSize(small), SerializedSize(big));
}

TEST(RecordTest, Equality) {
  Record a{"k", std::int64_t{1}};
  Record b{"k", std::int64_t{1}};
  Record c{"k", std::int64_t{2}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, (Record{"other", std::int64_t{1}}));
}

TEST(RecordTest, ToStringRendersAllTypes) {
  EXPECT_EQ(ToString(Value{std::int64_t{7}}), "7");
  EXPECT_EQ(ToString(Value{std::string("hi")}), "\"hi\"");
  EXPECT_EQ(ToString(Value{std::monostate{}}), "()");
  EXPECT_EQ(ToString(Value{std::vector<std::string>{"a", "b"}}), "[a, b]");
  EXPECT_EQ(ToString(Record{"k", std::int64_t{1}}), "(k -> 1)");
  Value weights = std::vector<TermWeight>{{"t", 2.0}};
  EXPECT_EQ(ToString(weights), "{t:2}");
}

}  // namespace
}  // namespace gs
