#include "data/combiner.h"

#include <gtest/gtest.h>

#include <map>

#include "common/check.h"
#include "common/rng.h"

namespace gs {
namespace {

TEST(CombinerTest, SumInt64MergesEqualKeys) {
  std::vector<Record> in{{"a", std::int64_t{1}},
                         {"b", std::int64_t{10}},
                         {"a", std::int64_t{2}},
                         {"a", std::int64_t{3}}};
  auto out = CombineByKey(in, SumInt64());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, "a");  // first-appearance order
  EXPECT_EQ(std::get<std::int64_t>(out[0].value), 6);
  EXPECT_EQ(out[1].key, "b");
  EXPECT_EQ(std::get<std::int64_t>(out[1].value), 10);
}

TEST(CombinerTest, EmptyInput) {
  EXPECT_TRUE(CombineByKey({}, SumInt64()).empty());
}

TEST(CombinerTest, NoDuplicatesIsIdentity) {
  std::vector<Record> in{{"x", std::int64_t{1}}, {"y", std::int64_t{2}}};
  EXPECT_EQ(CombineByKey(in, SumInt64()), in);
}

TEST(CombinerTest, SumDouble) {
  std::vector<Record> in{{"a", 1.5}, {"a", 2.25}};
  auto out = CombineByKey(in, SumDouble());
  EXPECT_DOUBLE_EQ(std::get<double>(out[0].value), 3.75);
}

TEST(CombinerTest, MergeTermWeightsUnionsAndSums) {
  Value a = std::vector<TermWeight>{{"x", 1.0}, {"y", 2.0}};
  Value b = std::vector<TermWeight>{{"y", 3.0}, {"z", 4.0}};
  auto merged = std::get<std::vector<TermWeight>>(MergeTermWeights()(a, b));
  std::map<std::string, double> m(merged.begin(), merged.end());
  EXPECT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m["x"], 1.0);
  EXPECT_DOUBLE_EQ(m["y"], 5.0);
  EXPECT_DOUBLE_EQ(m["z"], 4.0);
}

TEST(CombinerTest, MergeTermWeightsOutputIsSorted) {
  Value a = std::vector<TermWeight>{{"zz", 1.0}};
  Value b = std::vector<TermWeight>{{"aa", 1.0}};
  auto merged = std::get<std::vector<TermWeight>>(MergeTermWeights()(a, b));
  EXPECT_EQ(merged[0].first, "aa");
  EXPECT_EQ(merged[1].first, "zz");
}

TEST(CombinerTest, ConcatStrings) {
  Value a = std::string("foo");
  Value b = std::string("bar");
  EXPECT_EQ(std::get<std::string>(ConcatStrings()(a, b)), "foobar");
  EXPECT_EQ(std::get<std::string>(ConcatStrings(',')(a, b)), "foo,bar");
}

TEST(CombinerTest, NullFunctionThrows) {
  EXPECT_THROW(CombineByKey({{"a", std::int64_t{1}}}, nullptr),
               CheckFailure);
}

class CombinerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CombinerPropertyTest, MatchesReferenceAggregation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<Record> in;
  std::map<std::string, std::int64_t> reference;
  const int n = static_cast<int>(rng.UniformInt(0, 500));
  for (int i = 0; i < n; ++i) {
    std::string key = "k" + std::to_string(rng.UniformInt(0, 40));
    std::int64_t v = rng.UniformInt(-100, 100);
    in.push_back({key, v});
    reference[key] += v;
  }
  auto out = CombineByKey(in, SumInt64());
  EXPECT_EQ(out.size(), reference.size());
  for (const Record& r : out) {
    EXPECT_EQ(std::get<std::int64_t>(r.value), reference[r.key]) << r.key;
  }
}

TEST_P(CombinerPropertyTest, CombineTwiceEqualsCombineOnce) {
  // Idempotence of a second pass: combining an already-combined batch
  // changes nothing (keys are unique).
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  std::vector<Record> in;
  for (int i = 0; i < 300; ++i) {
    in.push_back({"k" + std::to_string(rng.UniformInt(0, 30)),
                  rng.UniformInt(0, 10)});
  }
  auto once = CombineByKey(in, SumInt64());
  auto twice = CombineByKey(once, SumInt64());
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombinerPropertyTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace gs
