#include "simcore/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace gs {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  bool ran = false;
  sim.Schedule(5.0, [&] {
    sim.Schedule(-1.0, [&] {
      ran = true;
      EXPECT_EQ(sim.Now(), 5.0);
    });
  });
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.Schedule(5.0, [&] {
    EXPECT_THROW(sim.ScheduleAt(4.0, [] {}), CheckFailure);
  });
  sim.Run();
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.Schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.Cancel();
  EXPECT_FALSE(h.pending());
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
  Simulator sim;
  int runs = 0;
  EventHandle h = sim.Schedule(1.0, [&] { ++runs; });
  sim.Run();
  h.Cancel();  // must not crash or corrupt
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(h.pending());
}

TEST(SimulatorTest, DefaultHandleIsSafe) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.Cancel();
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.Schedule(1.0, recurse);
  };
  sim.Schedule(1.0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), 5.0);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.Schedule(t, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  sim.RunUntil(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.Now(), 2.5);
  sim.Run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunUntilExecutesEventAtExactDeadline) {
  Simulator sim;
  bool ran = false;
  sim.Schedule(2.0, [&] { ran = true; });
  sim.RunUntil(2.0);
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.Schedule(1.0, [&] { ++count; });
  sim.Schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, CountsExecutedAndPending) {
  Simulator sim;
  EventHandle h = sim.Schedule(1.0, [] {});
  sim.Schedule(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  h.Cancel();
  sim.Run();
  EXPECT_EQ(sim.executed_events(), 1);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, NullCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.Schedule(1.0, nullptr), CheckFailure);
}

TEST(SimulatorTest, CancelledEventsAreAccountedAsDead) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(sim.Schedule(1.0 + i, [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 10u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
  for (int i = 0; i < 4; ++i) handles[i].Cancel();
  // pending_events counts only live work; the dead entries are visible
  // through the queue-health gauge until skimmed or compacted.
  EXPECT_EQ(sim.pending_events(), 6u);
  EXPECT_EQ(sim.cancelled_pending(), 4u);
  // Double-cancel must not double-count.
  handles[0].Cancel();
  EXPECT_EQ(sim.cancelled_pending(), 4u);
  sim.Run();
  EXPECT_EQ(sim.executed_events(), 6);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(SimulatorTest, CompactsHeapWhenMostlyDead) {
  Simulator sim;
  // One live far-future event keeps dead entries buried below the top, so
  // only compaction (not skimming) can evict them.
  int live_runs = 0;
  sim.Schedule(1e6, [&] { ++live_runs; });
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(sim.Schedule(1e7 + i, [] {}));
  }
  for (EventHandle& h : handles) h.Cancel();
  EXPECT_GE(sim.heap_compactions(), 1);
  // Compactions keep the dead population below the trigger threshold; the
  // final stragglers (cancelled after the last compaction) may remain.
  EXPECT_LT(sim.cancelled_pending(), 64u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(live_runs, 1);
  EXPECT_EQ(sim.executed_events(), 1);
}

TEST(SimulatorTest, CompactionPreservesOrderAndFifo) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> dead;
  // Interleave live and to-be-cancelled events, including FIFO ties.
  for (int i = 0; i < 100; ++i) {
    sim.Schedule(5.0, [&order, i] { order.push_back(i); });
    dead.push_back(sim.Schedule(4.0, [] {}));
  }
  for (EventHandle& h : dead) h.Cancel();
  EXPECT_GE(sim.heap_compactions(), 1);
  sim.Run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sim.Now(), 5.0);
}

TEST(SimulatorTest, CancelAfterSimulatorDestructionIsSafe) {
  EventHandle h;
  {
    Simulator sim;
    h = sim.Schedule(1.0, [] {});
  }
  h.Cancel();  // must not touch the dead simulator
  EXPECT_FALSE(h.pending());
}

}  // namespace
}  // namespace gs
