// Property tests of the paper's traffic analysis (Sec. III-B).
//
// Eq. (1): a reducer placed in datacenter i fetches at least (S - s_i)/N
// bytes across datacenters, minimized by the largest-s datacenter.
// Eq. (2): total cross-datacenter shuffle traffic D >= S - s1.
//
// Verified on real executions over randomized input placements: the
// measured cross-datacenter shuffle traffic of the fetch-based scheme
// always respects the bound, and Push/Aggregate (which aggregates into the
// largest-input datacenter) approaches it.
#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/dataset.h"
#include "workloads/input_gen.h"

namespace gs {
namespace {

RunConfig QuietConfig(Scheme scheme, std::uint64_t seed) {
  RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = seed;
  cfg.cost = CostModel{}.Scaled(100);
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.net.wan_flow_efficiency_min = 1.0;
  cfg.cost.straggler_sigma = 0;
  cfg.cost.straggler_prob = 0;
  return cfg;
}

// Random per-datacenter input weights.
std::vector<double> RandomWeights(Rng& rng, int dcs) {
  std::vector<double> w(dcs);
  double sum = 0;
  for (double& v : w) {
    v = rng.Uniform(0.05, 1.0);
    sum += v;
  }
  for (double& v : w) v /= sum;
  return w;
}

struct ShuffleObservation {
  Bytes S = 0;       // total shuffle input
  Bytes s1 = 0;      // largest per-datacenter share
  Bytes cross = 0;   // measured cross-DC shuffle traffic (fetch + push)
};

ShuffleObservation RunShuffleJob(Scheme scheme, std::uint64_t seed) {
  GeoCluster cluster(Ec2SixRegionTopology(100), QuietConfig(scheme, seed));
  Rng rng(seed);
  // Sort-like payload: no combine, so shuffle input is substantial.
  std::vector<Record> records =
      MakeKeyValueRecords(2000, 40, rng, kHexAlphabet, nullptr);
  std::vector<std::vector<Record>> parts(24);
  for (std::size_t i = 0; i < records.size(); ++i) {
    parts[i % 24].push_back(std::move(records[i]));
  }
  Dataset input = cluster.CreateSource(
      "input", PlacePartitions(cluster.topology(), std::move(parts),
                               RandomWeights(rng, 6)));
  RunResult run =
      input.SortByKey(UniformBoundaries(8, kHexAlphabet))
          .Run(ActionKind::kSave);

  ShuffleObservation obs;
  const MapOutputTracker& tracker = cluster.tracker();
  // In AggShuffle mode the tracker holds post-transfer locations; compute
  // S from shard sizes (identical across schemes) and s1 from where the
  // *producing* tasks ran — approximated by input placement. To keep the
  // bound exact, measure s1 in Spark mode where map output stays put.
  obs.S = tracker.TotalBytes(0);
  auto per_dc = tracker.BytesPerDc(0, cluster.topology());
  obs.s1 = *std::max_element(per_dc.begin(), per_dc.end());
  obs.cross =
      run.metrics.cross_dc_fetch_bytes + run.metrics.cross_dc_push_bytes;
  return obs;
}

class TrafficBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(TrafficBoundTest, FetchTrafficRespectsEqTwoLowerBound) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  ShuffleObservation spark = RunShuffleJob(Scheme::kSpark, seed);
  ASSERT_GT(spark.S, 0);
  // D >= S - s1 (Eq. 2). Spark-mode tracker reflects mapper placement, so
  // s1 here is the true largest fraction. The paper's derivation assumes
  // all shards of a partition are equal-sized ("for the sake of load
  // balancing"); hash/range partitioning makes them near-equal, so a small
  // tolerance absorbs the residual imbalance.
  EXPECT_GE(spark.cross,
            (spark.S - spark.s1) - (spark.S - spark.s1) / 20)
      << "S=" << spark.S << " s1=" << spark.s1;
}

TEST_P(TrafficBoundTest, PushAggregateApproachesTheBound) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  ShuffleObservation spark = RunShuffleJob(Scheme::kSpark, seed);
  ShuffleObservation agg = RunShuffleJob(Scheme::kAggShuffle, seed);
  // The push volume equals S - s_agg where s_agg is the aggregator's own
  // share: exactly the Eq. 2 minimum for this placement.
  EXPECT_GE(agg.cross, spark.S - spark.s1 - spark.S / 100)
      << "push cannot beat the information-theoretic bound";
  EXPECT_LE(agg.cross, spark.S - spark.s1 + spark.S / 20)
      << "push should approach the bound (small slack for rounding)";
  // And aggregation never moves more than fetch-based shuffle.
  EXPECT_LE(agg.cross, spark.cross * 11 / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficBoundTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace gs
