#include "sched/task_scheduler.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "simcore/simulator.h"

namespace gs {
namespace {

// Two datacenters with two 2-core workers each, plus a driver.
Topology TestTopo() {
  Topology topo;
  topo.AddDatacenter("dc0");
  topo.AddDatacenter("dc1");
  topo.AddNode({"a0", 0, 2, Gbps(1)});
  topo.AddNode({"a1", 0, 2, Gbps(1)});
  topo.AddNode({"b0", 1, 2, Gbps(1)});
  topo.AddNode({"b1", 1, 2, Gbps(1)});
  topo.AddNode({"driver", 0, 4, Gbps(1), /*worker=*/false});
  return topo;
}

struct Assignment {
  NodeIndex node = kNoNode;
  LocalityLevel locality{};
  double at = -1;
  bool assigned = false;
};

TaskRequest Req(Assignment* slot, Simulator* sim,
                std::vector<NodeIndex> preferred = {},
                PlacementPolicy policy = PlacementPolicy::kAnyAfterWait) {
  TaskRequest r;
  r.preferred = std::move(preferred);
  r.policy = policy;
  r.on_assigned = [slot, sim](NodeIndex node, LocalityLevel locality) {
    slot->node = node;
    slot->locality = locality;
    slot->at = sim->Now();
    slot->assigned = true;
  };
  return r;
}

TEST(TaskSchedulerTest, InitialSlotsExcludeDriver) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  EXPECT_EQ(sched.free_slots(0), 2);
  EXPECT_EQ(sched.free_slots(4), 0);  // driver hosts no tasks
}

TEST(TaskSchedulerTest, PrefersExactNode) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment a;
  sched.Submit(Req(&a, &sim, {1}));
  sim.Run();
  EXPECT_EQ(a.node, 1);
  EXPECT_EQ(a.locality, LocalityLevel::kNodeLocal);
}

TEST(TaskSchedulerTest, FallsBackToSameDatacenter) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  // Fill node 1 completely.
  Assignment fillers[2];
  sched.Submit(Req(&fillers[0], &sim, {1}));
  sched.Submit(Req(&fillers[1], &sim, {1}));
  Assignment a;
  sched.Submit(Req(&a, &sim, {1}));
  sim.Run();
  EXPECT_EQ(a.node, 0) << "should fall back to the other dc0 worker";
  EXPECT_EQ(a.locality, LocalityLevel::kDcLocal);
}

TEST(TaskSchedulerTest, DelaySchedulingWaitsBeforeGoingAnywhere) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskSchedulerConfig cfg;
  cfg.locality_wait = 3.0;
  TaskScheduler sched(sim, topo, cfg);
  // Fill all of dc0.
  Assignment fillers[4];
  for (auto& f : fillers) sched.Submit(Req(&f, &sim, {0, 1}));
  Assignment a;
  sched.Submit(Req(&a, &sim, {0}));
  sim.Run();
  EXPECT_TRUE(a.assigned);
  EXPECT_EQ(a.locality, LocalityLevel::kAny);
  EXPECT_GE(a.at, 3.0) << "must wait out the locality delay";
  EXPECT_EQ(topo.dc_of(a.node), 1);
}

TEST(TaskSchedulerTest, FreedPreferredSlotBeatsTheWait) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskSchedulerConfig cfg;
  cfg.locality_wait = 30.0;
  TaskScheduler sched(sim, topo, cfg);
  Assignment fillers[4];
  for (auto& f : fillers) sched.Submit(Req(&f, &sim, {0, 1}));
  Assignment a;
  sched.Submit(Req(&a, &sim, {0}));
  sim.Schedule(1.0, [&] { sched.ReleaseSlot(0); });
  sim.Run();
  EXPECT_EQ(a.node, 0);
  EXPECT_NEAR(a.at, 1.0, 1e-9);
  EXPECT_EQ(a.locality, LocalityLevel::kNodeLocal);
}

TEST(TaskSchedulerTest, DcOnlyPolicyNeverLeaves) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskSchedulerConfig cfg;
  cfg.locality_wait = 1.0;
  TaskScheduler sched(sim, topo, cfg);
  Assignment fillers[4];
  for (auto& f : fillers) sched.Submit(Req(&f, &sim, {0, 1}));
  Assignment a;
  sched.Submit(Req(&a, &sim, {0}, PlacementPolicy::kDcOnly));
  sim.RunUntil(10.0);
  EXPECT_FALSE(a.assigned) << "kDcOnly must not spill to dc1";
  sched.ReleaseSlot(1);
  sim.Run();
  EXPECT_TRUE(a.assigned);
  EXPECT_EQ(topo.dc_of(a.node), 0);
}

TEST(TaskSchedulerTest, NodeOnlyPolicyWaitsForExactNode) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment fillers[2];
  sched.Submit(Req(&fillers[0], &sim, {2}));
  sched.Submit(Req(&fillers[1], &sim, {2}));
  Assignment a;
  sched.Submit(Req(&a, &sim, {2}, PlacementPolicy::kNodeOnly));
  sim.RunUntil(10.0);
  EXPECT_FALSE(a.assigned);
  sched.ReleaseSlot(2);
  sim.Run();
  EXPECT_EQ(a.node, 2);
}

TEST(TaskSchedulerTest, NoPreferenceGoesToLeastLoaded) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment first;
  sched.Submit(Req(&first, &sim, {0}));
  sim.Run();
  Assignment a;
  sched.Submit(Req(&a, &sim));
  sim.Run();
  EXPECT_NE(a.node, kNoNode);
  EXPECT_NE(a.node, 0) << "node 0 has fewer free slots";
  EXPECT_EQ(a.locality, LocalityLevel::kNoPreference);
}

TEST(TaskSchedulerTest, QueueDrainsInSubmissionOrderPerSlot) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  // Fill node 0.
  Assignment fillers[2];
  sched.Submit(Req(&fillers[0], &sim, {0}, PlacementPolicy::kNodeOnly));
  sched.Submit(Req(&fillers[1], &sim, {0}, PlacementPolicy::kNodeOnly));
  Assignment q1, q2;
  sched.Submit(Req(&q1, &sim, {0}, PlacementPolicy::kNodeOnly));
  sched.Submit(Req(&q2, &sim, {0}, PlacementPolicy::kNodeOnly));
  sim.Run();
  EXPECT_FALSE(q1.assigned);
  sched.ReleaseSlot(0);
  sim.Run();
  EXPECT_TRUE(q1.assigned);
  EXPECT_FALSE(q2.assigned) << "FIFO among equal preferences";
}

TEST(TaskSchedulerTest, NoHeadOfLineBlocking) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment fillers[2];
  sched.Submit(Req(&fillers[0], &sim, {0}, PlacementPolicy::kNodeOnly));
  sched.Submit(Req(&fillers[1], &sim, {0}, PlacementPolicy::kNodeOnly));
  Assignment blocked, free_task;
  sched.Submit(Req(&blocked, &sim, {0}, PlacementPolicy::kNodeOnly));
  sched.Submit(Req(&free_task, &sim, {1}));
  sim.Run();
  EXPECT_FALSE(blocked.assigned);
  EXPECT_TRUE(free_task.assigned) << "a later satisfiable task must not "
                                     "wait behind an unsatisfiable one";
}

TEST(TaskSchedulerTest, BusySlotAccounting) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment a, b;
  sched.Submit(Req(&a, &sim, {0}));
  sched.Submit(Req(&b, &sim, {2}));
  sim.Run();
  EXPECT_EQ(sched.busy_slots_in(0), 1);
  EXPECT_EQ(sched.busy_slots_in(1), 1);
  sched.ReleaseSlot(a.node);
  EXPECT_EQ(sched.busy_slots_in(0), 0);
}

TEST(TaskSchedulerTest, OverReleaseThrows) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  EXPECT_THROW(sched.ReleaseSlot(0), CheckFailure);
  EXPECT_THROW(sched.ReleaseSlot(4), CheckFailure);  // driver
}

TEST(TaskSchedulerTest, BadPreferredNodeThrows) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment a;
  EXPECT_THROW(sched.Submit(Req(&a, &sim, {99})), CheckFailure);
}

}  // namespace
}  // namespace gs
