#include "sched/task_scheduler.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "simcore/simulator.h"

namespace gs {
namespace {

// Two datacenters with two 2-core workers each, plus a driver.
Topology TestTopo() {
  Topology topo;
  topo.AddDatacenter("dc0");
  topo.AddDatacenter("dc1");
  topo.AddNode({"a0", 0, 2, Gbps(1)});
  topo.AddNode({"a1", 0, 2, Gbps(1)});
  topo.AddNode({"b0", 1, 2, Gbps(1)});
  topo.AddNode({"b1", 1, 2, Gbps(1)});
  topo.AddNode({"driver", 0, 4, Gbps(1), /*worker=*/false});
  return topo;
}

struct Assignment {
  NodeIndex node = kNoNode;
  LocalityLevel locality{};
  double at = -1;
  bool assigned = false;
};

TaskRequest Req(Assignment* slot, Simulator* sim,
                std::vector<NodeIndex> preferred = {},
                PlacementPolicy policy = PlacementPolicy::kAnyAfterWait) {
  TaskRequest r;
  r.preferred = std::move(preferred);
  r.policy = policy;
  r.on_assigned = [slot, sim](NodeIndex node, LocalityLevel locality) {
    slot->node = node;
    slot->locality = locality;
    slot->at = sim->Now();
    slot->assigned = true;
  };
  return r;
}

TEST(TaskSchedulerTest, InitialSlotsExcludeDriver) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  EXPECT_EQ(sched.free_slots(0), 2);
  EXPECT_EQ(sched.free_slots(4), 0);  // driver hosts no tasks
}

TEST(TaskSchedulerTest, PrefersExactNode) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment a;
  sched.Submit(Req(&a, &sim, {1}));
  sim.Run();
  EXPECT_EQ(a.node, 1);
  EXPECT_EQ(a.locality, LocalityLevel::kNodeLocal);
}

TEST(TaskSchedulerTest, FallsBackToSameDatacenter) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  // Fill node 1 completely.
  Assignment fillers[2];
  sched.Submit(Req(&fillers[0], &sim, {1}));
  sched.Submit(Req(&fillers[1], &sim, {1}));
  Assignment a;
  sched.Submit(Req(&a, &sim, {1}));
  sim.Run();
  EXPECT_EQ(a.node, 0) << "should fall back to the other dc0 worker";
  EXPECT_EQ(a.locality, LocalityLevel::kDcLocal);
}

TEST(TaskSchedulerTest, DelaySchedulingWaitsBeforeGoingAnywhere) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskSchedulerConfig cfg;
  cfg.locality_wait = 3.0;
  TaskScheduler sched(sim, topo, cfg);
  // Fill all of dc0.
  Assignment fillers[4];
  for (auto& f : fillers) sched.Submit(Req(&f, &sim, {0, 1}));
  Assignment a;
  sched.Submit(Req(&a, &sim, {0}));
  sim.Run();
  EXPECT_TRUE(a.assigned);
  EXPECT_EQ(a.locality, LocalityLevel::kAny);
  EXPECT_GE(a.at, 3.0) << "must wait out the locality delay";
  EXPECT_EQ(topo.dc_of(a.node), 1);
}

TEST(TaskSchedulerTest, FreedPreferredSlotBeatsTheWait) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskSchedulerConfig cfg;
  cfg.locality_wait = 30.0;
  TaskScheduler sched(sim, topo, cfg);
  Assignment fillers[4];
  for (auto& f : fillers) sched.Submit(Req(&f, &sim, {0, 1}));
  Assignment a;
  sched.Submit(Req(&a, &sim, {0}));
  sim.Schedule(1.0, [&] { sched.ReleaseSlot(0); });
  sim.Run();
  EXPECT_EQ(a.node, 0);
  EXPECT_NEAR(a.at, 1.0, 1e-9);
  EXPECT_EQ(a.locality, LocalityLevel::kNodeLocal);
}

TEST(TaskSchedulerTest, DcOnlyPolicyNeverLeaves) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskSchedulerConfig cfg;
  cfg.locality_wait = 1.0;
  TaskScheduler sched(sim, topo, cfg);
  Assignment fillers[4];
  for (auto& f : fillers) sched.Submit(Req(&f, &sim, {0, 1}));
  Assignment a;
  sched.Submit(Req(&a, &sim, {0}, PlacementPolicy::kDcOnly));
  sim.RunUntil(10.0);
  EXPECT_FALSE(a.assigned) << "kDcOnly must not spill to dc1";
  sched.ReleaseSlot(1);
  sim.Run();
  EXPECT_TRUE(a.assigned);
  EXPECT_EQ(topo.dc_of(a.node), 0);
}

TEST(TaskSchedulerTest, NodeOnlyPolicyWaitsForExactNode) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment fillers[2];
  sched.Submit(Req(&fillers[0], &sim, {2}));
  sched.Submit(Req(&fillers[1], &sim, {2}));
  Assignment a;
  sched.Submit(Req(&a, &sim, {2}, PlacementPolicy::kNodeOnly));
  sim.RunUntil(10.0);
  EXPECT_FALSE(a.assigned);
  sched.ReleaseSlot(2);
  sim.Run();
  EXPECT_EQ(a.node, 2);
}

TEST(TaskSchedulerTest, NoPreferenceGoesToLeastLoaded) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment first;
  sched.Submit(Req(&first, &sim, {0}));
  sim.Run();
  Assignment a;
  sched.Submit(Req(&a, &sim));
  sim.Run();
  EXPECT_NE(a.node, kNoNode);
  EXPECT_NE(a.node, 0) << "node 0 has fewer free slots";
  EXPECT_EQ(a.locality, LocalityLevel::kNoPreference);
}

TEST(TaskSchedulerTest, QueueDrainsInSubmissionOrderPerSlot) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  // Fill node 0.
  Assignment fillers[2];
  sched.Submit(Req(&fillers[0], &sim, {0}, PlacementPolicy::kNodeOnly));
  sched.Submit(Req(&fillers[1], &sim, {0}, PlacementPolicy::kNodeOnly));
  Assignment q1, q2;
  sched.Submit(Req(&q1, &sim, {0}, PlacementPolicy::kNodeOnly));
  sched.Submit(Req(&q2, &sim, {0}, PlacementPolicy::kNodeOnly));
  sim.Run();
  EXPECT_FALSE(q1.assigned);
  sched.ReleaseSlot(0);
  sim.Run();
  EXPECT_TRUE(q1.assigned);
  EXPECT_FALSE(q2.assigned) << "FIFO among equal preferences";
}

TEST(TaskSchedulerTest, NoHeadOfLineBlocking) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment fillers[2];
  sched.Submit(Req(&fillers[0], &sim, {0}, PlacementPolicy::kNodeOnly));
  sched.Submit(Req(&fillers[1], &sim, {0}, PlacementPolicy::kNodeOnly));
  Assignment blocked, free_task;
  sched.Submit(Req(&blocked, &sim, {0}, PlacementPolicy::kNodeOnly));
  sched.Submit(Req(&free_task, &sim, {1}));
  sim.Run();
  EXPECT_FALSE(blocked.assigned);
  EXPECT_TRUE(free_task.assigned) << "a later satisfiable task must not "
                                     "wait behind an unsatisfiable one";
}

TEST(TaskSchedulerTest, BusySlotAccounting) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment a, b;
  sched.Submit(Req(&a, &sim, {0}));
  sched.Submit(Req(&b, &sim, {2}));
  sim.Run();
  EXPECT_EQ(sched.busy_slots_in(0), 1);
  EXPECT_EQ(sched.busy_slots_in(1), 1);
  sched.ReleaseSlot(a.node);
  EXPECT_EQ(sched.busy_slots_in(0), 0);
}

TEST(TaskSchedulerTest, OverReleaseThrows) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  EXPECT_THROW(sched.ReleaseSlot(0), CheckFailure);
  EXPECT_THROW(sched.ReleaseSlot(4), CheckFailure);  // driver
}

TEST(TaskSchedulerTest, BadPreferredNodeThrows) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment a;
  EXPECT_THROW(sched.Submit(Req(&a, &sim, {99})), CheckFailure);
}

// --- UpdatePreferences: re-pointing a queued request (docs/ADAPTIVE.md) ---

TEST(TaskSchedulerTest, UpdatePreferencesRepointsQueuedRequest) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  // Fill node 2 so a kNodeOnly request for it parks in the queue.
  Assignment fillers[2];
  sched.Submit(Req(&fillers[0], &sim, {2}));
  sched.Submit(Req(&fillers[1], &sim, {2}));
  Assignment stuck;
  TaskRequest r = Req(&stuck, &sim, {2}, PlacementPolicy::kNodeOnly);
  r.id = 42;
  sched.Submit(std::move(r));
  sim.RunUntil(5.0);
  ASSERT_FALSE(stuck.assigned);

  // Drop the pin: the request immediately drains to any free slot.
  EXPECT_TRUE(
      sched.UpdatePreferences(42, {}, PlacementPolicy::kAnyAfterWait));
  sim.Run();
  EXPECT_TRUE(stuck.assigned);
  EXPECT_NE(stuck.node, 2) << "node 2 is still full";
}

TEST(TaskSchedulerTest, UpdatePreferencesUnknownOrGrantedIdIsFalse) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  Assignment a;
  TaskRequest r = Req(&a, &sim, {0});
  r.id = 7;
  sched.Submit(std::move(r));
  sim.Run();
  ASSERT_TRUE(a.assigned);
  // Granted requests left the queue; unknown ids were never in it.
  EXPECT_FALSE(sched.UpdatePreferences(7, {}, PlacementPolicy::kAnyAfterWait));
  EXPECT_FALSE(
      sched.UpdatePreferences(99, {}, PlacementPolicy::kAnyAfterWait));
}

// --- weighted fair sharing across tenants (docs/SERVICE.md) ---

// Saturate a 12-slot cluster with two tenants at weights 2:1, each task
// holding its slot for one second. Once churn starts, freed slots go to
// the tenant with the smaller busy/weight share, so the standing split
// settles at 8:4 and so does throughput while both queues stay
// backlogged. (12 slots so the 2:1 split is exact in whole slots.)
TEST(TaskSchedulerTest, WeightedFairShareUnderSaturation) {
  Simulator sim;
  Topology topo;
  topo.AddDatacenter("dc0");
  topo.AddDatacenter("dc1");
  topo.AddNode({"a0", 0, 3, Gbps(1)});
  topo.AddNode({"a1", 0, 3, Gbps(1)});
  topo.AddNode({"b0", 1, 3, Gbps(1)});
  topo.AddNode({"b1", 1, 3, Gbps(1)});
  TaskScheduler sched(sim, topo);
  sched.SetTenantWeight(1, 2.0);
  sched.SetTenantWeight(2, 1.0);

  int completed[3] = {0, 0, 0};
  auto submit = [&](int tenant) {
    TaskRequest r;
    r.tenant = tenant;
    r.on_assigned = [&, tenant](NodeIndex node, LocalityLevel) {
      sim.ScheduleAt(sim.Now() + Seconds(1), [&, tenant, node] {
        ++completed[tenant];
        sched.ReleaseSlot(node, tenant);
      });
    };
    sched.Submit(std::move(r));
  };
  for (int i = 0; i < 40; ++i) {
    submit(1);
    submit(2);
  }

  // Snapshot mid-run, while both tenants are still saturated. The first
  // wave of slots is granted FIFO at submission (6/6) before any churn,
  // so throughput is measured between two steady-state snapshots.
  int busy1 = -1, busy2 = -1;
  int base1 = -1, base2 = -1, done1 = -1, done2 = -1;
  sim.ScheduleAt(Seconds(1.5), [&] {
    base1 = completed[1];
    base2 = completed[2];
  });
  sim.ScheduleAt(Seconds(4.5), [&] {
    busy1 = sched.tenant_busy(1);
    busy2 = sched.tenant_busy(2);
    done1 = completed[1];
    done2 = completed[2];
  });
  sim.Run();

  EXPECT_EQ(busy1 + busy2, 12) << "cluster must stay saturated";
  EXPECT_GE(busy1, 7);
  EXPECT_LE(busy2, 5);
  // Throughput over the steady-state window follows the slot share: ~2:1
  // with both queues backlogged.
  const int delta1 = done1 - base1, delta2 = done2 - base2;
  EXPECT_GE(delta1, 2 * delta2 - 2);
  EXPECT_LE(delta1, 2 * delta2 + 2);
  // Everyone finishes eventually; no slot is leaked.
  EXPECT_EQ(completed[1] + completed[2], 80);
  EXPECT_EQ(sched.tenant_busy(1), 0);
  EXPECT_EQ(sched.tenant_busy(2), 0);
  EXPECT_EQ(sched.queued_tasks(), 0);
}

// Raising a tenant's weight mid-run shifts subsequent offers: with equal
// backlogs and equal weights the split is even; after SetTenantWeight the
// favored tenant converges to the larger share.
TEST(TaskSchedulerTest, SetTenantWeightRebalancesOffers) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);

  int held = 0;
  auto submit = [&](int tenant) {
    TaskRequest r;
    r.tenant = tenant;
    r.on_assigned = [&, tenant](NodeIndex node, LocalityLevel) {
      ++held;
      sim.ScheduleAt(sim.Now() + Seconds(1), [&, tenant, node] {
        sched.ReleaseSlot(node, tenant);
      });
    };
    sched.Submit(std::move(r));
  };
  for (int i = 0; i < 30; ++i) {
    submit(1);
    submit(2);
  }
  int even1 = -1, even2 = -1;
  sim.ScheduleAt(Seconds(2.5), [&] {
    even1 = sched.tenant_busy(1);
    even2 = sched.tenant_busy(2);
    sched.SetTenantWeight(1, 3.0);
  });
  int skew1 = -1, skew2 = -1;
  sim.ScheduleAt(Seconds(5.5), [&] {
    skew1 = sched.tenant_busy(1);
    skew2 = sched.tenant_busy(2);
  });
  sim.Run();

  EXPECT_EQ(even1, 4);
  EXPECT_EQ(even2, 4);
  EXPECT_GE(skew1, 5) << "weight 3:1 should shift the split";
  EXPECT_LE(skew2, 3);
}

// A freed slot whose most-entitled tenant can't use it (its head tasks are
// pinned to a full node) must fall through to the next tenant rather than
// idle the slot.
TEST(TaskSchedulerTest, OfferFallsThroughWhenFavoredTenantCannotPlace) {
  Simulator sim;
  Topology topo = TestTopo();
  TaskScheduler sched(sim, topo);
  sched.SetTenantWeight(1, 10.0);  // tenant 1 is strongly favored
  sched.SetTenantWeight(2, 1.0);

  // Fill the whole cluster with tenant-2 tasks.
  std::vector<NodeIndex> held;
  for (int i = 0; i < 8; ++i) {
    TaskRequest r;
    r.tenant = 2;
    r.on_assigned = [&](NodeIndex node, LocalityLevel) {
      held.push_back(node);
    };
    sched.Submit(std::move(r));
  }
  sim.Run();
  ASSERT_EQ(held.size(), 8u);

  // Tenant 1 queues a task pinned to node 0; tenant 2 queues a flexible
  // one. Then a slot frees on node 3: tenant 1 is far more entitled but
  // cannot take it, so tenant 2 must.
  Assignment pinned, flexible;
  TaskRequest p = Req(&pinned, &sim, {0}, PlacementPolicy::kNodeOnly);
  p.tenant = 1;
  sched.Submit(std::move(p));
  TaskRequest f = Req(&flexible, &sim);
  f.tenant = 2;
  sched.Submit(std::move(f));
  sched.ReleaseSlot(3, 2);
  sim.Run();

  EXPECT_FALSE(pinned.assigned);
  EXPECT_TRUE(flexible.assigned);
  EXPECT_EQ(flexible.node, 3);

  // Node 0 frees: the pinned tenant-1 task finally places.
  sched.ReleaseSlot(0, 2);
  sim.Run();
  EXPECT_TRUE(pinned.assigned);
  EXPECT_EQ(pinned.node, 0);
}

}  // namespace
}  // namespace gs
