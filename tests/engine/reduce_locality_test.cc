// Spark's reducer placement preference (a node storing >= 20% of a shard's
// input becomes preferred) — the hook Push/Aggregate exploits: once
// shuffle input is aggregated, reducers follow it without any scheduler
// change (Sec. III-C, IV-B).
#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {
namespace {

RunConfig QuietSpark() {
  RunConfig cfg;
  cfg.scheme = Scheme::kSpark;
  cfg.seed = 9;
  cfg.cost = CostModel{}.Scaled(100);
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.net.wan_flow_efficiency_min = 1.0;
  cfg.cost.straggler_sigma = 0;
  cfg.cost.straggler_prob = 0;
  return cfg;
}

std::vector<SourceRdd::Partition> InputConfinedTo(const Topology& topo,
                                                  DcIndex dc) {
  std::vector<SourceRdd::Partition> parts;
  const auto& nodes = topo.nodes_in(dc);
  for (int p = 0; p < 8; ++p) {
    std::vector<Record> records;
    for (int i = 0; i < 200; ++i) {
      records.push_back({"k" + std::to_string((p * 200 + i) % 61),
                         std::int64_t{1}});
    }
    SourceRdd::Partition part;
    part.records = MakeRecords(std::move(records));
    part.node = nodes[p % 4];
    part.bytes = SerializedSize(*part.records);
    parts.push_back(std::move(part));
  }
  return parts;
}

TEST(ReduceLocalityTest, StockSparkKeepsConfinedShuffleLocal) {
  // All input (hence all map output) lives in one datacenter: each of its
  // 4 workers holds ~25% >= 20% of every shard, so even stock Spark's
  // locality rule places the reducers there and nothing crosses the WAN.
  GeoCluster cluster(Ec2SixRegionTopology(100), QuietSpark());
  Dataset data = cluster.CreateSource(
      "confined", InputConfinedTo(cluster.topology(), 3));
  RunResult run = data.ReduceByKey(SumInt64(), 8).Run(ActionKind::kSave);
  EXPECT_EQ(run.metrics.cross_dc_fetch_bytes, 0)
      << "reducers should follow the >=20% preference into dc 3";
}

TEST(ReduceLocalityTest, SpreadShuffleGivesNoPreferenceAndFetchesAcrossWan) {
  // Input spread over 24 workers: each node holds ~4% of a shard, below
  // the 20% threshold -> reducers get no preference and fetch remotely.
  GeoCluster cluster(Ec2SixRegionTopology(100), QuietSpark());
  std::vector<Record> records;
  for (int i = 0; i < 1600; ++i) {
    records.push_back({"k" + std::to_string(i % 61), std::int64_t{1}});
  }
  Dataset data = cluster.Parallelize("spread", records, 2);
  RunResult run = data.ReduceByKey(SumInt64(), 8).Run(ActionKind::kSave);
  EXPECT_GT(run.metrics.cross_dc_fetch_bytes, 0);
}

TEST(ReduceLocalityTest, ThresholdIsConfigurable) {
  // With an absurd 101% threshold nothing is ever preferred; placement is
  // load-balanced and the confined case leaks across the WAN again.
  RunConfig cfg = QuietSpark();
  cfg.reducer_pref_fraction = 1.01;
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
  Dataset data = cluster.CreateSource(
      "confined", InputConfinedTo(cluster.topology(), 3));
  RunResult run = data.ReduceByKey(SumInt64(), 8).Run(ActionKind::kSave);
  EXPECT_GT(run.metrics.cross_dc_fetch_bytes, 0);
}

TEST(ReduceLocalityTest, NoSlotLeaksAcrossJobs) {
  GeoCluster cluster(Ec2SixRegionTopology(100), QuietSpark());
  std::vector<Record> records;
  for (int i = 0; i < 600; ++i) {
    records.push_back({"k" + std::to_string(i % 31), std::int64_t{1}});
  }
  Dataset data = cluster.Parallelize("d", records, 2);
  for (int run = 0; run < 3; ++run) {
    (void)data.ReduceByKey(SumInt64(), 8).Collect();
    for (DcIndex dc = 0; dc < cluster.topology().num_datacenters(); ++dc) {
      EXPECT_EQ(cluster.scheduler().busy_slots_in(dc), 0)
          << "slot leak in dc " << dc << " after job " << run;
    }
  }
}

}  // namespace
}  // namespace gs
