// Aggregator choice over cached inputs (ChooseAggregatorDcs /
// StageInputPerDc): the chooser must weigh a cached partition in the
// datacenter of the replica the stage will actually read — the nearest
// *live* one — not blindly in the first registered location's datacenter.
// Regression coverage for the placement bug where a dead first replica
// pulled the whole aggregation toward a datacenter that could not even
// serve the block.
#include <gtest/gtest.h>

#include <numeric>

#include "engine/cluster.h"
#include "engine/dataset.h"
#include "storage/map_output_tracker.h"

namespace gs {
namespace {

RunConfig QuietConfig() {
  RunConfig cfg;
  cfg.scheme = Scheme::kAggShuffle;
  cfg.seed = 5;
  cfg.cost = CostModel{}.Scaled(100);
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.net.wan_flow_efficiency_min = 1.0;
  cfg.cost.straggler_sigma = 0;
  cfg.cost.straggler_prob = 0;
  return cfg;
}

std::vector<Record> SomeRecords(int n, int salt) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({"key" + std::to_string((i + salt) % 60),
                       std::string(50, static_cast<char>('a' + i % 26))});
  }
  return records;
}

// Builds a cached dataset whose every cached partition lives on one node
// of `home_dc`, then registers a second replica of each partition on a
// node of `mirror_dc`. Returns the cached dataset.
Dataset CachedWithTwoReplicas(GeoCluster& cluster, DcIndex home_dc,
                              DcIndex mirror_dc) {
  const Topology& topo = cluster.topology();
  const NodeIndex home = topo.nodes_in(home_dc)[0];
  std::vector<SourceRdd::Partition> parts;
  for (int p = 0; p < 2; ++p) {
    SourceRdd::Partition part;
    part.records = MakeRecords(SomeRecords(120, p));
    part.node = home;
    part.bytes = SerializedSize(*part.records);
    parts.push_back(std::move(part));
  }
  Dataset cached = cluster.CreateSource("replicated", std::move(parts))
                       .Map("id", [](const Record& r) { return r; })
                       .Cache();
  (void)cached.Count();  // materialize the cache (job 1, no shuffle)

  const NodeIndex mirror = topo.nodes_in(mirror_dc)[0];
  for (int p = 0; p < cached.num_partitions(); ++p) {
    const BlockId bid = BlockId::Cached(cached.rdd()->id(), p);
    const auto locs = cluster.blocks().Locations(bid);
    EXPECT_EQ(locs.size(), 1u);
    EXPECT_EQ(topo.dc_of(locs.front()), home_dc)
        << "cached partition must start in the home datacenter";
    std::optional<Block> b = cluster.blocks().Get(locs.front(), bid);
    if (!b.has_value()) {
      ADD_FAILURE() << "cached block missing on its registered location";
      continue;
    }
    cluster.blocks().PutWithSize(mirror, bid, b->records, b->bytes);
  }
  return cached;
}

std::vector<Bytes> AggregatedBytesPerDc(GeoCluster& cluster, Dataset& cached) {
  (void)cached
      .Map("tag",
           [](const Record& r) {
             return Record{r.key.substr(0, 5), std::int64_t{1}};
           })
      .ReduceByKey(SumInt64(), 4)
      .Collect();
  return cluster.tracker().BytesPerDc(0, cluster.topology());
}

TEST(CachedCutPlacementTest, HealthyFirstReplicaKeepsHomeDcAggregation) {
  GeoCluster cluster(Ec2SixRegionTopology(100), QuietConfig());
  Dataset cached = CachedWithTwoReplicas(cluster, /*home_dc=*/2,
                                         /*mirror_dc=*/4);
  auto per_dc = AggregatedBytesPerDc(cluster, cached);
  const Bytes total =
      std::accumulate(per_dc.begin(), per_dc.end(), Bytes{0});
  ASSERT_GT(total, 0);
  EXPECT_EQ(per_dc[2], total)
      << "with all replicas live, the first (home) replica's datacenter "
         "holds the input and must aggregate";
}

TEST(CachedCutPlacementTest, DeadFirstReplicaCreditsLiveMirror) {
  GeoCluster cluster(Ec2SixRegionTopology(100), QuietConfig());
  Dataset cached = CachedWithTwoReplicas(cluster, /*home_dc=*/2,
                                         /*mirror_dc=*/4);
  // The home node dies without losing its registered blocks (executor
  // gone, disk intact): the chooser must follow the mirror replica.
  const NodeIndex home = cluster.topology().nodes_in(2)[0];
  cluster.scheduler().SetNodeDown(home);

  auto per_dc = AggregatedBytesPerDc(cluster, cached);
  const Bytes total =
      std::accumulate(per_dc.begin(), per_dc.end(), Bytes{0});
  ASSERT_GT(total, 0);
  EXPECT_EQ(per_dc[4], total)
      << "a dead first replica must not attract the aggregation; the live "
         "mirror's datacenter serves the reads";
  EXPECT_EQ(per_dc[2], 0)
      << "no shuffle input may be credited to the dead replica's dc";
}

}  // namespace
}  // namespace gs
