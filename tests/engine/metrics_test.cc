// Job/stage metrics invariants across schemes.
#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {
namespace {

RunConfig Cfg(Scheme scheme) {
  RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 4;
  cfg.cost = CostModel{}.Scaled(100);
  return cfg;
}

std::vector<Record> SomeRecords(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({"k" + std::to_string(i % 13), std::int64_t{1}});
  }
  return records;
}

JobMetrics RunJob(Scheme scheme) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(scheme));
  Dataset data = cluster.Parallelize("data", SomeRecords(400), 2);
  return data.ReduceByKey(SumInt64(), 8).Run(ActionKind::kCollect).metrics;
}

class MetricsSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(MetricsSchemeTest, StageSpansAreWellFormed) {
  JobMetrics m = RunJob(GetParam());
  EXPECT_GT(m.jct(), 0);
  ASSERT_GE(m.stages.size(), 2u);
  for (const StageMetrics& s : m.stages) {
    EXPECT_GE(s.submitted, m.started);
    EXPECT_GE(s.completed, s.submitted) << s.name;
    EXPECT_LE(s.completed, m.completed) << s.name;
    EXPECT_GT(s.num_tasks, 0) << s.name;
    EXPECT_GE(s.span(), 0) << s.name;
  }
  // The last stage to finish defines job completion.
  SimTime latest = 0;
  for (const StageMetrics& s : m.stages) {
    latest = std::max(latest, s.completed);
  }
  EXPECT_DOUBLE_EQ(latest, m.completed);
}

TEST_P(MetricsSchemeTest, TrafficDecompositionIsConsistent) {
  JobMetrics m = RunJob(GetParam());
  EXPECT_GE(m.cross_dc_bytes, 0);
  // Every decomposed kind is part of the total.
  EXPECT_LE(m.cross_dc_fetch_bytes + m.cross_dc_push_bytes +
                m.cross_dc_centralize_bytes,
            m.cross_dc_bytes + 1);
}

INSTANTIATE_TEST_SUITE_P(Schemes, MetricsSchemeTest,
                         ::testing::Values(Scheme::kSpark,
                                           Scheme::kCentralized,
                                           Scheme::kAggShuffle),
                         [](const auto& info) {
                           return SchemeName(info.param);
                         });

TEST(MetricsTest, SchemeAndPolicyNames) {
  EXPECT_STREQ(SchemeName(Scheme::kSpark), "Spark");
  EXPECT_STREQ(SchemeName(Scheme::kCentralized), "Centralized");
  EXPECT_STREQ(SchemeName(Scheme::kAggShuffle), "AggShuffle");
  EXPECT_STREQ(AggregatorPolicyName(AggregatorPolicy::kLargestInput),
               "largest-input");
  EXPECT_STREQ(AggregatorPolicyName(AggregatorPolicy::kRandom), "random");
  EXPECT_STREQ(AggregatorPolicyName(AggregatorPolicy::kSmallestInput),
               "smallest-input");
  EXPECT_STREQ(FlowKindName(FlowKind::kShufflePush), "shuffle-push");
  EXPECT_STREQ(FlowKindName(FlowKind::kCentralize), "centralize");
}

TEST(MetricsTest, CentralizedAddsRelocationPseudoStage) {
  JobMetrics m = RunJob(Scheme::kCentralized);
  bool found = false;
  for (const StageMetrics& s : m.stages) {
    if (s.name == "input-centralization") {
      found = true;
      EXPECT_GT(s.num_tasks, 0);
      EXPECT_GE(s.span(), 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsTest, AggShuffleHasMoreStagesThanSpark) {
  // Receiver stages appear in the metrics.
  JobMetrics spark = RunJob(Scheme::kSpark);
  JobMetrics agg = RunJob(Scheme::kAggShuffle);
  EXPECT_GT(agg.stages.size(), spark.stages.size());
}

TEST(MetricsTest, ConsecutiveJobsAccumulateSimTimeButNotJct) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Scheme::kSpark));
  Dataset data = cluster.Parallelize("data", SomeRecords(200), 1);
  JobMetrics first = data.Run(ActionKind::kSave).metrics;
  JobMetrics second = data.Run(ActionKind::kSave).metrics;
  EXPECT_GT(second.started, first.completed - 1e-9);
  // JCTs are comparable (same work), not cumulative.
  EXPECT_LT(second.jct(), first.jct() * 3);
}

}  // namespace
}  // namespace gs
