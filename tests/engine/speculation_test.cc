// Speculative execution (spark.speculation): backup copies of stragglers.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {
namespace {

RunConfig Cfg(bool speculate, std::uint64_t seed = 12) {
  RunConfig cfg;
  cfg.scheme = Scheme::kSpark;
  cfg.seed = seed;
  cfg.cost = CostModel{}.Scaled(100);
  // Strong stragglers so speculation has something to fix.
  cfg.cost.straggler_sigma = 0.2;
  cfg.cost.straggler_prob = 0.25;
  cfg.cost.straggler_factor = 6.0;
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.speculation.enabled = speculate;
  return cfg;
}

std::vector<Record> Keyed(int n, int keys) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({"k" + std::to_string(i % keys), std::int64_t{1}});
  }
  return records;
}

std::vector<Record> SortedResult(GeoCluster& cluster) {
  auto result = cluster.Parallelize("d", Keyed(2000, 200), 2)
                    .ReduceByKey(SumInt64(), 8)
                    .Collect();
  std::sort(result.begin(), result.end(),
            [](const Record& a, const Record& b) { return a.key < b.key; });
  return result;
}

TEST(SpeculationTest, ResultsUnchanged) {
  GeoCluster off(Ec2SixRegionTopology(100), Cfg(false));
  GeoCluster on(Ec2SixRegionTopology(100), Cfg(true));
  EXPECT_EQ(SortedResult(off), SortedResult(on));
}

TEST(SpeculationTest, BackupsAppearInTraceAndHelpOrAreNeutral) {
  // Over several seeds, speculation launches backups and on average does
  // not hurt completion time under heavy stragglers.
  double off_total = 0, on_total = 0;
  int backups_seen = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GeoCluster off(Ec2SixRegionTopology(100), Cfg(false, seed));
    (void)SortedResult(off);
    off_total += off.last_job_metrics().jct();

    GeoCluster on(Ec2SixRegionTopology(100), Cfg(true, seed));
    TraceCollector& trace = on.EnableTracing();
    (void)SortedResult(on);
    on_total += on.last_job_metrics().jct();
    for (const TraceSpan& s : trace.spans()) {
      if (s.name.find("#spec") != std::string::npos) ++backups_seen;
    }
  }
  EXPECT_GT(backups_seen, 0) << "straggler-heavy runs must speculate";
  EXPECT_LT(on_total, off_total * 1.05)
      << "speculation must not systematically hurt";
}

TEST(SpeculationTest, OffByDefaultMatchesSpark) {
  RunConfig cfg;
  EXPECT_FALSE(cfg.speculation.enabled);
}

TEST(SpeculationTest, WorksUnderAggShuffle) {
  // Receiver/producer stages are excluded, but reduce stages still
  // speculate and read the aggregated input locally.
  RunConfig cfg = Cfg(true);
  cfg.scheme = Scheme::kAggShuffle;
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
  auto result = SortedResult(cluster);
  EXPECT_EQ(result.size(), 200u);
  EXPECT_EQ(cluster.last_job_metrics().cross_dc_fetch_bytes, 0)
      << "speculated reducers must re-read locally under Push/Aggregate";
}

}  // namespace
}  // namespace gs
