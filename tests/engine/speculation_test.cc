// Speculative execution (spark.speculation): backup copies of stragglers.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {
namespace {

RunConfig Cfg(bool speculate, std::uint64_t seed = 12) {
  RunConfig cfg;
  cfg.scheme = Scheme::kSpark;
  cfg.seed = seed;
  cfg.cost = CostModel{}.Scaled(100);
  // Strong stragglers so speculation has something to fix.
  cfg.cost.straggler_sigma = 0.2;
  cfg.cost.straggler_prob = 0.25;
  cfg.cost.straggler_factor = 6.0;
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.speculation.enabled = speculate;
  return cfg;
}

std::vector<Record> Keyed(int n, int keys) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({"k" + std::to_string(i % keys), std::int64_t{1}});
  }
  return records;
}

RunResult SortedResult(GeoCluster& cluster) {
  RunResult run = cluster.Parallelize("d", Keyed(2000, 200), 2)
                      .ReduceByKey(SumInt64(), 8)
                      .Run(ActionKind::kCollect);
  std::sort(run.records.begin(), run.records.end(),
            [](const Record& a, const Record& b) { return a.key < b.key; });
  return run;
}

TEST(SpeculationTest, ResultsUnchanged) {
  GeoCluster off(Ec2SixRegionTopology(100), Cfg(false));
  GeoCluster on(Ec2SixRegionTopology(100), Cfg(true));
  EXPECT_EQ(SortedResult(off).records, SortedResult(on).records);
}

TEST(SpeculationTest, BackupsAppearInTraceAndHelpOrAreNeutral) {
  // Over several seeds, speculation launches backups and on average does
  // not hurt completion time under heavy stragglers.
  double off_total = 0, on_total = 0;
  int backups_seen = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GeoCluster off(Ec2SixRegionTopology(100), Cfg(false, seed));
    off_total += SortedResult(off).metrics.jct();

    RunConfig on_cfg = Cfg(true, seed);
    on_cfg.observe.trace = true;
    GeoCluster on(Ec2SixRegionTopology(100), on_cfg);
    RunResult on_run = SortedResult(on);
    on_total += on_run.metrics.jct();
    ASSERT_NE(on_run.trace, nullptr);
    for (const TraceSpan& s : on_run.trace->spans()) {
      if (s.name.find("#spec") != std::string::npos) ++backups_seen;
    }
  }
  EXPECT_GT(backups_seen, 0) << "straggler-heavy runs must speculate";
  EXPECT_LT(on_total, off_total * 1.05)
      << "speculation must not systematically hurt";
}

TEST(SpeculationTest, OffByDefaultMatchesSpark) {
  RunConfig cfg;
  EXPECT_FALSE(cfg.speculation.enabled);
}

TEST(SpeculationTest, WorksUnderAggShuffle) {
  // Receiver/producer stages are excluded, but reduce stages still
  // speculate and read the aggregated input locally.
  RunConfig cfg = Cfg(true);
  cfg.scheme = Scheme::kAggShuffle;
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
  RunResult run = SortedResult(cluster);
  EXPECT_EQ(run.records.size(), 200u);
  EXPECT_EQ(run.metrics.cross_dc_fetch_bytes, 0)
      << "speculated reducers must re-read locally under Push/Aggregate";
}

}  // namespace
}  // namespace gs
