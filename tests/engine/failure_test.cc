// Failure injection and recovery (paper Fig. 2): results stay correct, and
// fetch-based shuffles pay WAN re-fetches while Push/Aggregate recovers
// from datacenter-local data.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {
namespace {

RunConfig FailingConfig(Scheme scheme, double prob) {
  RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 11;
  cfg.cost = CostModel{}.Scaled(100);
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.net.wan_flow_efficiency_min = 1.0;
  cfg.cost.straggler_sigma = 0;
  cfg.cost.straggler_prob = 0;
  cfg.fault.reduce_failure_prob = prob;
  return cfg;
}

std::vector<Record> SomeRecords(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({"key" + std::to_string(i % 37), std::int64_t{1}});
  }
  return records;
}

RunResult RunCounts(GeoCluster& cluster) {
  Dataset data = cluster.Parallelize("data", SomeRecords(500), 2);
  RunResult run =
      data.ReduceByKey(SumInt64(), 8).Run(ActionKind::kCollect);
  std::sort(run.records.begin(), run.records.end(),
            [](const Record& a, const Record& b) { return a.key < b.key; });
  return run;
}

class FailureSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(FailureSchemeTest, ResultsCorrectDespiteAllReducersFailing) {
  GeoCluster healthy(Ec2SixRegionTopology(100),
                     FailingConfig(GetParam(), 0.0));
  GeoCluster failing(Ec2SixRegionTopology(100),
                     FailingConfig(GetParam(), 1.0));
  RunResult expected = RunCounts(healthy);
  RunResult got = RunCounts(failing);
  EXPECT_EQ(got.records, expected.records);
  EXPECT_GT(got.metrics.task_failures, 0);
  EXPECT_EQ(expected.metrics.task_failures, 0);
}

TEST_P(FailureSchemeTest, FailuresExtendJobCompletionTime) {
  GeoCluster healthy(Ec2SixRegionTopology(100),
                     FailingConfig(GetParam(), 0.0));
  GeoCluster failing(Ec2SixRegionTopology(100),
                     FailingConfig(GetParam(), 1.0));
  double healthy_jct = RunCounts(healthy).metrics.jct();
  double failing_jct = RunCounts(failing).metrics.jct();
  EXPECT_GT(failing_jct, healthy_jct);
}

INSTANTIATE_TEST_SUITE_P(Schemes, FailureSchemeTest,
                         ::testing::Values(Scheme::kSpark,
                                           Scheme::kCentralized,
                                           Scheme::kAggShuffle),
                         [](const auto& info) {
                           return SchemeName(info.param);
                         });

TEST(FailureRecoveryTest, SparkRefetchesAcrossWanButAggShuffleDoesNot) {
  // Fig. 2's core claim, measured: the failure-induced *extra* cross-DC
  // traffic is positive for fetch-based shuffle and zero for
  // Push/Aggregate.
  auto extra_traffic = [](Scheme scheme) {
    GeoCluster healthy(Ec2SixRegionTopology(100),
                       FailingConfig(scheme, 0.0));
    GeoCluster failing(Ec2SixRegionTopology(100),
                       FailingConfig(scheme, 1.0));
    Bytes base = RunCounts(healthy).metrics.cross_dc_bytes;
    return RunCounts(failing).metrics.cross_dc_bytes - base;
  };
  EXPECT_GT(extra_traffic(Scheme::kSpark), 0);
  EXPECT_EQ(extra_traffic(Scheme::kAggShuffle), 0);
}

TEST(FailureRecoveryTest, StageMetricsCountFailures) {
  GeoCluster failing(Ec2SixRegionTopology(100),
                     FailingConfig(Scheme::kSpark, 1.0));
  const JobMetrics m = RunCounts(failing).metrics;
  int per_stage = 0;
  for (const StageMetrics& s : m.stages) per_stage += s.task_failures;
  EXPECT_EQ(per_stage, m.task_failures);
  EXPECT_EQ(m.task_failures, 8) << "every reducer fails exactly once";
}

}  // namespace
}  // namespace gs
