// Engine edge cases: unusual graph shapes, determinism, repeated runs,
// and scheme-specific corner behaviours.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/cluster.h"
#include "engine/dataset.h"
#include "workloads/input_gen.h"

namespace gs {
namespace {

RunConfig Cfg(Scheme scheme, std::uint64_t seed = 7) {
  RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = seed;
  cfg.cost = CostModel{}.Scaled(100);
  return cfg;
}

std::vector<Record> Keyed(int n, int keys) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({"k" + std::to_string(i % keys), std::int64_t{1}});
  }
  return records;
}

TEST(EdgeCaseTest, SamePipelineIsFullyDeterministicPerSeed) {
  auto run = [] {
    GeoCluster cluster(Ec2SixRegionTopology(100),
                       Cfg(Scheme::kAggShuffle, 99));
    RunResult run = cluster.Parallelize("d", Keyed(500, 41), 2)
                        .ReduceByKey(SumInt64(), 8)
                        .Run(ActionKind::kCollect);
    return std::make_pair(std::move(run.records), run.metrics.jct());
  };
  auto [r1, jct1] = run();
  auto [r2, jct2] = run();
  EXPECT_EQ(r1, r2);
  EXPECT_DOUBLE_EQ(jct1, jct2) << "simulation must be bit-deterministic";
}

TEST(EdgeCaseTest, DifferentSeedsChangeTimingNotResults) {
  auto run = [](std::uint64_t seed) {
    GeoCluster cluster(Ec2SixRegionTopology(100),
                       Cfg(Scheme::kSpark, seed));
    RunResult run = cluster.Parallelize("d", Keyed(500, 41), 2)
                        .ReduceByKey(SumInt64(), 8)
                        .Run(ActionKind::kCollect);
    std::vector<Record> result = std::move(run.records);
    std::sort(result.begin(), result.end(),
              [](const Record& a, const Record& b) { return a.key < b.key; });
    return std::make_pair(result, run.metrics.jct());
  };
  auto [r1, jct1] = run(1);
  auto [r2, jct2] = run(2);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(jct1, jct2);
}

TEST(EdgeCaseTest, UnionOfTwoShuffleOutputs) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Scheme::kAggShuffle));
  Dataset a = cluster.Parallelize("a", Keyed(200, 11), 1)
                  .ReduceByKey(SumInt64(), 4);
  Dataset b = cluster.Parallelize("b", Keyed(100, 7), 1)
                  .ReduceByKey(SumInt64(), 4);
  auto result = a.Union(b).Collect();
  EXPECT_EQ(result.size(), 11u + 7u);
}

TEST(EdgeCaseTest, ShuffleDirectlyOverSourceWithoutMap) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Scheme::kAggShuffle));
  auto result = cluster.Parallelize("d", Keyed(300, 5), 2)
                    .ReduceByKey(SumInt64(), 2)
                    .Collect();
  ASSERT_EQ(result.size(), 5u);
  for (const Record& r : result) {
    EXPECT_EQ(std::get<std::int64_t>(r.value), 60);
  }
}

TEST(EdgeCaseTest, SingleRecordDataset) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Scheme::kCentralized));
  std::vector<Record> one{{"only", std::int64_t{42}}};
  auto result =
      cluster.Parallelize("one", one).ReduceByKey(SumInt64(), 8).Collect();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(result[0].value), 42);
}

TEST(EdgeCaseTest, EmptyPartitionsAreHandled) {
  // 3 records over 24+ partitions: most partitions are empty.
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Scheme::kAggShuffle));
  auto result = cluster.Parallelize("sparse", Keyed(3, 3), 2)
                    .ReduceByKey(SumInt64(), 8)
                    .Collect();
  EXPECT_EQ(result.size(), 3u);
}

TEST(EdgeCaseTest, FilterToEmptyDataset) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Scheme::kSpark));
  auto result = cluster.Parallelize("d", Keyed(100, 5), 1)
                    .Filter("none", [](const Record&) { return false; })
                    .ReduceByKey(SumInt64(), 4)
                    .Collect();
  EXPECT_TRUE(result.empty());
}

TEST(EdgeCaseTest, CentralizedRelocatesOnlyOnce) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Scheme::kCentralized));
  Dataset data = cluster.Parallelize("d", Keyed(400, 17), 2);
  (void)data.ReduceByKey(SumInt64(), 8).Collect();
  Bytes first =
      cluster.network().meter().cross_dc_of_kind(FlowKind::kCentralize);
  EXPECT_GT(first, 0);
  (void)data.ReduceByKey(SumInt64(), 8).Collect();
  Bytes second =
      cluster.network().meter().cross_dc_of_kind(FlowKind::kCentralize);
  EXPECT_EQ(first, second) << "input must not be re-centralized";
}

TEST(EdgeCaseTest, ExplicitTransferChainedThroughMap) {
  // transferTo -> map -> (auto transferTo) -> shuffle: the stage in the
  // middle both receives and produces a transfer.
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Scheme::kAggShuffle));
  auto result = cluster.Parallelize("d", Keyed(300, 13), 2)
                    .TransferTo(2)
                    .Map("tag", [](const Record& r) { return r; })
                    .ReduceByKey(SumInt64(), 4)
                    .Collect();
  EXPECT_EQ(result.size(), 13u);
}

TEST(EdgeCaseTest, ZeroFailureProbabilityNeverFails) {
  RunConfig cfg = Cfg(Scheme::kSpark);
  cfg.fault.reduce_failure_prob = 0.0;
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
  RunResult run = cluster.Parallelize("d", Keyed(300, 9), 1)
                      .ReduceByKey(SumInt64(), 8)
                      .Run(ActionKind::kCollect);
  EXPECT_EQ(run.metrics.task_failures, 0);
}

TEST(EdgeCaseTest, GroupByKeyUnderAggShuffle) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Scheme::kAggShuffle));
  std::vector<Record> events;
  for (int i = 0; i < 120; ++i) {
    events.push_back({"u" + std::to_string(i % 8),
                      "event-" + std::to_string(i)});
  }
  auto result =
      cluster.Parallelize("events", events).GroupByKey(4).Collect();
  ASSERT_EQ(result.size(), 8u);
  std::size_t total = 0;
  for (const Record& r : result) {
    total += std::get<std::vector<std::string>>(r.value).size();
  }
  EXPECT_EQ(total, 120u);
}

TEST(EdgeCaseTest, ManySmallJobsOnOneCluster) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Scheme::kAggShuffle));
  Dataset data = cluster.Parallelize("d", Keyed(200, 10), 1);
  for (int i = 0; i < 5; ++i) {
    auto result = data.ReduceByKey(SumInt64(), 4).Collect();
    EXPECT_EQ(result.size(), 10u) << "job " << i;
  }
}

TEST(EdgeCaseTest, DisabledAutoAggregationBehavesLikeSpark) {
  RunConfig cfg = Cfg(Scheme::kAggShuffle);
  cfg.auto_aggregation = false;
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
  RunResult run = cluster.Parallelize("d", Keyed(400, 17), 2)
                      .ReduceByKey(SumInt64(), 8)
                      .Run(ActionKind::kCollect);
  const JobMetrics& m = run.metrics;
  EXPECT_EQ(m.cross_dc_push_bytes, 0)
      << "no transferTo should be inserted when auto_aggregation is off";
  EXPECT_GT(m.cross_dc_fetch_bytes, 0);
}

}  // namespace
}  // namespace gs
