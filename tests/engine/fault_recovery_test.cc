// Fault injection and recovery: node crashes, link flaps and lost blocks,
// driven through FaultPlan. Covers the ISSUE's acceptance scenario — a node
// crash during the map stage completes under every scheme, and recovery
// re-transfers an order of magnitude fewer cross-DC bytes under
// Push/Aggregate than under fetch-based shuffle.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/combiner.h"
#include "data/record.h"
#include "engine/cluster.h"
#include "engine/dataset.h"
#include "storage/block.h"

namespace gs {
namespace {

constexpr int kMaps = 48;    // two waves over the 24 workers
constexpr int kShards = 8;

RunConfig DeterministicConfig(Scheme scheme) {
  RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 17;
  cfg.cost = CostModel{}.Scaled(100);
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.net.wan_flow_efficiency_min = 1.0;
  cfg.cost.straggler_sigma = 0;
  cfg.cost.straggler_prob = 0;
  return cfg;
}

// 48 map partitions, two per worker; DC0 holds strictly the most bytes so
// kLargestInput deterministically aggregates (and centralizes) there —
// crashes in other datacenters then exercise the WAN recovery paths.
Dataset SkewedInput(GeoCluster& cluster) {
  const Topology& topo = cluster.topology();
  std::vector<NodeIndex> workers;
  for (NodeIndex n = 0; n < topo.num_nodes(); ++n) {
    if (topo.node(n).worker) workers.push_back(n);
  }
  std::vector<SourceRdd::Partition> parts;
  for (int p = 0; p < kMaps; ++p) {
    const NodeIndex node = workers[p % workers.size()];
    const int n_records = topo.dc_of(node) == 0 ? 400 : 200;
    std::vector<Record> records;
    records.reserve(n_records);
    for (int i = 0; i < n_records; ++i) {
      records.push_back(
          {"key" + std::to_string((p * 131 + i) % 101), std::int64_t{1}});
    }
    SourceRdd::Partition part;
    part.records = MakeRecords(std::move(records));
    part.node = node;
    part.bytes = SerializedSize(*part.records);
    parts.push_back(std::move(part));
  }
  return cluster.CreateSource("skewed-input", std::move(parts));
}

RunResult RunCounts(GeoCluster& cluster) {
  RunResult run = SkewedInput(cluster)
                      .ReduceByKey(SumInt64(), kShards)
                      .Run(ActionKind::kCollect);
  std::sort(run.records.begin(), run.records.end(),
            [](const Record& a, const Record& b) { return a.key < b.key; });
  return run;
}

// Sim-time 90% of the way through the earliest kMaps-task stage of a
// healthy run — i.e. while the second wave of map tasks is computing and
// the first wave's outputs already exist on every worker.
SimTime MidMapCrashTime(Scheme scheme) {
  GeoCluster probe(Ec2SixRegionTopology(100), DeterministicConfig(scheme));
  const JobMetrics m = RunCounts(probe).metrics;
  for (const StageMetrics& s : m.stages) {
    if (s.num_tasks == kMaps) {
      return s.submitted + 0.9 * (s.completed - s.submitted);
    }
  }
  ADD_FAILURE() << "no " << kMaps << "-task map stage found";
  return 0;
}

RunConfig MidMapCrashConfig(Scheme scheme, NodeIndex victim,
                            SimTime restart_after = 0) {
  RunConfig cfg = DeterministicConfig(scheme);
  NodeCrashEvent crash;
  crash.at = MidMapCrashTime(scheme);
  crash.node = victim;
  crash.restart_after = restart_after;
  cfg.fault.plan.node_crashes.push_back(crash);
  return cfg;
}

constexpr NodeIndex kVictim = 20;  // a DC5 worker — never the aggregator

class MidMapCrashTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(MidMapCrashTest, JobCompletesAndResultsMatchHealthyRun) {
  GeoCluster healthy(Ec2SixRegionTopology(100),
                     DeterministicConfig(GetParam()));
  auto expected = RunCounts(healthy).records;

  GeoCluster crashed(Ec2SixRegionTopology(100),
                     MidMapCrashConfig(GetParam(), kVictim));
  RunResult got = RunCounts(crashed);
  EXPECT_EQ(got.records, expected);
  EXPECT_EQ(got.metrics.node_crashes, 1);
  EXPECT_FALSE(crashed.scheduler().node_up(kVictim));
}

TEST_P(MidMapCrashTest, JobCompletesWhenTheNodeRestarts) {
  GeoCluster healthy(Ec2SixRegionTopology(100),
                     DeterministicConfig(GetParam()));
  auto expected = RunCounts(healthy).records;

  GeoCluster crashed(
      Ec2SixRegionTopology(100),
      MidMapCrashConfig(GetParam(), kVictim, /*restart_after=*/Seconds(20)));
  auto got = RunCounts(crashed).records;
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Schemes, MidMapCrashTest,
                         ::testing::Values(Scheme::kSpark,
                                           Scheme::kCentralized,
                                           Scheme::kAggShuffle),
                         [](const auto& info) {
                           return SchemeName(info.param);
                         });

TEST(MidMapCrashTest, SparkResubmitsLostMapsViaFetchFailure) {
  GeoCluster crashed(Ec2SixRegionTopology(100),
                     MidMapCrashConfig(Scheme::kSpark, kVictim));
  const JobMetrics m = RunCounts(crashed).metrics;
  EXPECT_GT(m.fetch_failures, 0) << "reducers must discover the lost blocks";
  EXPECT_GT(m.map_resubmissions, 0) << "only the lost maps are re-run";
  EXPECT_LT(m.map_resubmissions, kMaps) << "the whole stage must NOT re-run";
}

// The ISSUE's headline number: a mid-map node crash makes fetch-based
// shuffle re-transfer >= 10x more extra cross-DC bytes than Push/Aggregate.
// Under kSpark every reducer's partial WAN gather is wasted and the whole
// shard is re-fetched over the WAN; under kAggShuffle the re-fetch happens
// inside the aggregator datacenter and only the victim's pushes repeat.
TEST(MidMapCrashTest, AggShuffleRetransfersTenTimesFewerCrossDcBytes) {
  auto extra = [](Scheme scheme) {
    GeoCluster healthy(Ec2SixRegionTopology(100),
                       DeterministicConfig(scheme));
    Bytes base = RunCounts(healthy).metrics.cross_dc_bytes;
    GeoCluster crashed(Ec2SixRegionTopology(100),
                       MidMapCrashConfig(scheme, kVictim));
    return RunCounts(crashed).metrics.cross_dc_bytes - base;
  };
  const Bytes spark_extra = extra(Scheme::kSpark);
  const Bytes agg_extra = extra(Scheme::kAggShuffle);
  EXPECT_GT(spark_extra, 0);
  EXPECT_GE(spark_extra, 10 * std::max<Bytes>(agg_extra, 1))
      << "spark_extra=" << spark_extra << " agg_extra=" << agg_extra;
}

TEST(FaultPlanTest, DeterministicUnderAFixedSeed) {
  auto run = [] {
    GeoCluster cluster(Ec2SixRegionTopology(100),
                       MidMapCrashConfig(Scheme::kAggShuffle, kVictim));
    return RunCounts(cluster).metrics;
  };
  const JobMetrics a = run();
  const JobMetrics b = run();
  EXPECT_EQ(a.jct(), b.jct());
  EXPECT_EQ(a.cross_dc_bytes, b.cross_dc_bytes);
  EXPECT_EQ(a.task_failures, b.task_failures);
  EXPECT_EQ(a.map_resubmissions, b.map_resubmissions);
}

// A WAN link flapping (full outage, then restore) while transfer pushes are
// in flight: flows stall and resume, the job completes correctly and pays
// for the outage in completion time.
TEST(LinkFlapTest, PushesSurviveAWanOutageDuringTheMapStage) {
  const Scheme scheme = Scheme::kAggShuffle;
  GeoCluster healthy(Ec2SixRegionTopology(100), DeterministicConfig(scheme));
  RunResult healthy_run = RunCounts(healthy);
  const auto& expected = healthy_run.records;
  const double healthy_jct = healthy_run.metrics.jct();

  RunConfig cfg = DeterministicConfig(scheme);
  LinkDegradationEvent flap;
  flap.at = MidMapCrashTime(scheme) * 0.5;  // while pushes are in flight
  flap.src = 5;                             // DC5 -> aggregator DC0
  flap.dst = 0;
  flap.factor = 0.0;                        // full outage
  flap.duration = Seconds(30);
  flap.symmetric = true;
  cfg.fault.plan.link_degradations.push_back(flap);
  GeoCluster flapping(Ec2SixRegionTopology(100), cfg);
  RunResult got = RunCounts(flapping);
  EXPECT_EQ(got.records, expected);
  EXPECT_GT(got.metrics.jct(), healthy_jct);
}

// Crashing the node a push landed on (an aggregator-DC worker) exercises
// the receiver recovery path: the producer re-pushes, with backoff, to a
// replacement receiver in the aggregator datacenter.
TEST(ReceiverCrashTest, PushIsRetriedToAReplacementReceiver) {
  const Scheme scheme = Scheme::kAggShuffle;
  GeoCluster healthy(Ec2SixRegionTopology(100), DeterministicConfig(scheme));
  auto expected = RunCounts(healthy).records;

  RunConfig cfg = MidMapCrashConfig(scheme, /*victim=*/1);  // DC0 worker
  GeoCluster crashed(Ec2SixRegionTopology(100), cfg);
  RunResult got = RunCounts(crashed);
  EXPECT_EQ(got.records, expected);
  const JobMetrics& m = got.metrics;
  EXPECT_GT(m.push_retries + m.push_fallbacks + m.map_resubmissions, 0)
      << "losing an aggregator-DC worker must trigger recovery";
}

// Losing shuffle blocks without a crash (disk loss): the owner is alive,
// so only lazy fetch-failure detection can notice.
TEST(BlockLossTest, LostShuffleBlocksAreRegenerated) {
  const Scheme scheme = Scheme::kSpark;
  GeoCluster healthy(Ec2SixRegionTopology(100), DeterministicConfig(scheme));
  RunResult healthy_run = RunCounts(healthy);
  const auto& expected = healthy_run.records;
  SimTime map_end = 0;
  for (const StageMetrics& s : healthy_run.metrics.stages) {
    if (s.num_tasks == kMaps) map_end = s.completed;
  }
  ASSERT_GT(map_end, 0);

  RunConfig cfg = DeterministicConfig(scheme);
  BlockLossEvent loss;
  loss.at = map_end;  // between map completion and the reduce gathers
  loss.node = kVictim;
  cfg.fault.plan.block_losses.push_back(loss);
  GeoCluster lossy(Ec2SixRegionTopology(100), cfg);
  RunResult got = RunCounts(lossy);
  EXPECT_EQ(got.records, expected);
  const JobMetrics& m = got.metrics;
  EXPECT_EQ(m.node_crashes, 0);
  EXPECT_GT(m.fetch_failures, 0);
  EXPECT_GT(m.map_resubmissions, 0);
}

// Random crash schedules (with restarts) still finish with correct results.
TEST(RandomCrashTest, JobSurvivesRandomRestartingCrashes) {
  for (Scheme scheme : {Scheme::kSpark, Scheme::kAggShuffle}) {
    GeoCluster healthy(Ec2SixRegionTopology(100),
                       DeterministicConfig(scheme));
    auto expected = RunCounts(healthy).records;

    RunConfig cfg = DeterministicConfig(scheme);
    // The synthetic job runs for under a second of simulated time; crash
    // every ~0.15s so several land while it is in flight.
    cfg.fault.plan.random_crashes.mean_interarrival = Seconds(0.15);
    cfg.fault.plan.random_crashes.restart_after = Seconds(2);
    cfg.fault.plan.random_crashes.max_crashes = 3;
    GeoCluster chaotic(Ec2SixRegionTopology(100), cfg);
    RunResult got = RunCounts(chaotic);
    EXPECT_EQ(got.records, expected) << SchemeName(scheme);
    EXPECT_GT(got.metrics.node_crashes, 0)
        << SchemeName(scheme) << ": the chaos schedule must actually fire";
  }
}

}  // namespace
}  // namespace gs
