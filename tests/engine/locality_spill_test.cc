// Locality spill behaviour: when a datacenter's slots are oversubscribed,
// tasks eventually run elsewhere and read their input across the WAN —
// stock Spark behaviour that both hurts the Centralized baseline (before
// the confinement fix) and creates the Sec. IV-E trade-off.
#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {
namespace {

std::vector<SourceRdd::Partition> AllOnNodeZero(int partitions) {
  std::vector<SourceRdd::Partition> parts;
  for (int p = 0; p < partitions; ++p) {
    std::vector<Record> records;
    for (int i = 0; i < 1500; ++i) {
      records.push_back({"k" + std::to_string(p) + "-" + std::to_string(i),
                         std::string(60, 'a' + static_cast<char>(i % 26))});
    }
    SourceRdd::Partition part;
    part.records = MakeRecords(std::move(records));
    part.node = 0;
    part.bytes = SerializedSize(*part.records);
    parts.push_back(std::move(part));
  }
  return parts;
}

RunConfig Cfg(SimTime locality_wait) {
  RunConfig cfg;
  cfg.scheme = Scheme::kSpark;
  cfg.seed = 5;
  cfg.cost = CostModel{}.Scaled(100);
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.net.wan_flow_efficiency_min = 1.0;
  cfg.cost.straggler_sigma = 0;
  cfg.cost.straggler_prob = 0;
  cfg.sched.locality_wait = locality_wait;
  return cfg;
}

TEST(LocalitySpillTest, OversubscribedDcSpillsAfterWaitAndReadsRemotely) {
  // 20 partitions on one node; its datacenter has 8 slots. With a short
  // wait, the excess tasks run in other datacenters and pull input across
  // the WAN (FlowKind::kOther, counted in cross_dc_bytes).
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Seconds(0.5)));
  Dataset data = cluster.CreateSource("hot", AllOnNodeZero(20));
  const JobMetrics m =
      data.Map("id", [](const Record& r) { return r; })
          .Run(ActionKind::kSave)
          .metrics;
  EXPECT_GT(m.cross_dc_bytes, 0)
      << "spilled tasks must read input across datacenters";
  EXPECT_EQ(m.cross_dc_fetch_bytes, 0);
  EXPECT_EQ(m.cross_dc_push_bytes, 0);
}

TEST(LocalitySpillTest, LongWaitKeepsWorkLocal) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(Seconds(600)));
  Dataset data = cluster.CreateSource("hot", AllOnNodeZero(20));
  const JobMetrics m =
      data.Map("id", [](const Record& r) { return r; })
          .Run(ActionKind::kSave)
          .metrics;
  EXPECT_EQ(m.cross_dc_bytes, 0)
      << "with a long locality wait all tasks should queue in place";
}

TEST(LocalitySpillTest, SpillTradesTrafficForTime) {
  GeoCluster spilling(Ec2SixRegionTopology(100), Cfg(Seconds(0.5)));
  Dataset d1 = spilling.CreateSource("hot", AllOnNodeZero(20));
  double spill_jct = d1.Map("id", [](const Record& r) { return r; })
                         .Run(ActionKind::kSave)
                         .metrics.jct();

  GeoCluster queueing(Ec2SixRegionTopology(100), Cfg(Seconds(600)));
  Dataset d2 = queueing.CreateSource("hot", AllOnNodeZero(20));
  double queue_jct = d2.Map("id", [](const Record& r) { return r; })
                         .Run(ActionKind::kSave)
                         .metrics.jct();

  // Spilling uses the whole cluster; queueing serializes on 8 slots.
  EXPECT_LT(spill_jct, queue_jct);
}

}  // namespace
}  // namespace gs
