// Regression coverage for the deprecated observability shims: the old
// last_job_metrics() / EnableTracing() / RunCollect() / RunSave() entry
// points must keep their PR 0-2 behaviour until removed. This file is the
// only in-tree caller; everything else uses RunResult (engine/cluster.h).
#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/dataset.h"

#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace gs {
namespace {

RunConfig Cfg() {
  RunConfig cfg;
  cfg.scheme = Scheme::kAggShuffle;
  cfg.seed = 3;
  cfg.cost = CostModel{}.Scaled(100);
  return cfg;
}

std::vector<Record> Keyed(int n, int keys) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({"k" + std::to_string(i % keys), std::int64_t{1}});
  }
  return records;
}

TEST(DeprecatedApiTest, LastJobMetricsMirrorsTheRunResult) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg());
  RunResult run = cluster.Parallelize("d", Keyed(400, 13), 2)
                      .ReduceByKey(SumInt64(), 8)
                      .Run(ActionKind::kCollect);
  const JobMetrics& legacy = cluster.last_job_metrics();
  EXPECT_EQ(legacy.started, run.metrics.started);
  EXPECT_EQ(legacy.completed, run.metrics.completed);
  EXPECT_EQ(legacy.cross_dc_bytes, run.metrics.cross_dc_bytes);
  EXPECT_EQ(legacy.stages.size(), run.metrics.stages.size());
}

TEST(DeprecatedApiTest, RunCollectAndRunSaveStillWork) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg());
  Dataset data = cluster.Parallelize("d", Keyed(100, 5), 1);
  RunResult collected = data.RunCollect();
  EXPECT_EQ(collected.records.size(), 100u);
  RunResult saved = data.RunSave();
  EXPECT_GT(saved.metrics.jct(), 0);
}

TEST(DeprecatedApiTest, EnableTracingAccumulatesAcrossJobs) {
  // The legacy contract: the cluster-owned collector keeps every job's
  // spans (the new observe.trace path hands each job's spans to its
  // RunResult instead).
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg());
  TraceCollector& trace = cluster.EnableTracing();
  Dataset data = cluster.Parallelize("d", Keyed(200, 7), 1);
  RunResult first = data.ReduceByKey(SumInt64(), 4).Run(ActionKind::kCollect);
  const std::size_t after_one = trace.spans().size();
  EXPECT_GT(after_one, 0u);
  // The RunResult still carries a copy of the accumulated trace.
  ASSERT_NE(first.trace, nullptr);
  EXPECT_EQ(first.trace->spans().size(), after_one);

  RunResult second =
      data.ReduceByKey(SumInt64(), 4).Run(ActionKind::kCollect);
  EXPECT_GT(trace.spans().size(), after_one)
      << "legacy collector must accumulate across jobs";
  ASSERT_NE(second.trace, nullptr);
  EXPECT_EQ(second.trace->spans().size(), trace.spans().size());
}

}  // namespace
}  // namespace gs
