// TraceCollector: span recording, Chrome-trace export, Gantt rendering.
#include "engine/trace.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {
namespace {

TraceSpan MakeSpan(TraceSpan::Kind kind, double start, double end,
                   NodeIndex node = 1, const char* cat = "map") {
  TraceSpan s;
  s.kind = kind;
  s.name = "span";
  s.category = cat;
  s.start = start;
  s.end = end;
  s.dc = 0;
  s.node = node;
  return s;
}

TEST(TraceCollectorTest, AddAndClear) {
  TraceCollector t;
  t.Add(MakeSpan(TraceSpan::Kind::kTask, 0, 1));
  t.Add(MakeSpan(TraceSpan::Kind::kTask, 1, 2));
  EXPECT_EQ(t.spans().size(), 2u);
  t.Clear();
  EXPECT_TRUE(t.spans().empty());
}

TEST(TraceCollectorTest, RejectsNegativeSpans) {
  TraceCollector t;
  EXPECT_THROW(t.Add(MakeSpan(TraceSpan::Kind::kTask, 2, 1)), CheckFailure);
}

TEST(TraceCollectorTest, ChromeTraceJsonShape) {
  TraceCollector t;
  t.Add(MakeSpan(TraceSpan::Kind::kTask, 0.5, 1.25));
  std::string json = t.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":750000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(TraceCollectorTest, JsonEscapesSpecialCharacters) {
  TraceCollector t;
  TraceSpan s = MakeSpan(TraceSpan::Kind::kTask, 0, 1);
  s.name = "with \"quotes\" and \\slash";
  t.Add(s);
  std::string json = t.ToChromeTraceJson();
  EXPECT_NE(json.find("with \\\"quotes\\\""), std::string::npos);
  EXPECT_EQ(json.find("with \"quotes\""), std::string::npos);
}

TEST(TraceCollectorTest, GanttRendersRowsPerNodeAndLink) {
  TraceCollector t;
  t.Add(MakeSpan(TraceSpan::Kind::kTask, 0, 5, /*node=*/3));
  TraceSpan flow = MakeSpan(TraceSpan::Kind::kFlow, 2, 8);
  flow.peer_dc = 4;
  flow.category = "shuffle-push";
  t.Add(flow);
  std::string gantt = t.RenderGantt(60);
  EXPECT_NE(gantt.find("node 3"), std::string::npos);
  EXPECT_NE(gantt.find("wan  dc0->dc4"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);   // task mark
  EXPECT_NE(gantt.find('>'), std::string::npos);   // push mark
}

TEST(TraceCollectorTest, GanttEmptyTrace) {
  TraceCollector t;
  EXPECT_EQ(t.RenderGantt(50), "(empty trace)\n");
}

TEST(TraceIntegrationTest, JobProducesTaskStageAndFlowSpans) {
  RunConfig cfg;
  cfg.scheme = Scheme::kAggShuffle;
  cfg.seed = 6;
  cfg.cost = CostModel{}.Scaled(100);
  cfg.observe.trace = true;
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);

  std::vector<Record> records;
  for (int i = 0; i < 300; ++i) {
    records.push_back({"k" + std::to_string(i % 17), std::int64_t{1}});
  }
  RunResult run = cluster.Parallelize("data", records, 2)
                      .ReduceByKey(SumInt64(), 8)
                      .Run(ActionKind::kCollect);
  ASSERT_NE(run.trace, nullptr);
  const TraceCollector& trace = *run.trace;

  int tasks = 0, stages = 0, flows = 0, pushes = 0, receivers = 0;
  for (const TraceSpan& s : trace.spans()) {
    switch (s.kind) {
      case TraceSpan::Kind::kTask:
        ++tasks;
        if (s.category == "receiver") ++receivers;
        break;
      case TraceSpan::Kind::kStage: ++stages; break;
      case TraceSpan::Kind::kFlow:
        ++flows;
        if (s.category == "shuffle-push") ++pushes;
        break;
      default: break;
    }
  }
  EXPECT_GE(stages, 3);  // producer + receiver + result
  EXPECT_GE(tasks, 12 + 12 + 8);
  EXPECT_GT(receivers, 0);
  EXPECT_GT(pushes, 0) << "cross-DC pushes must appear in the trace";
  EXPECT_GT(flows, pushes) << "collect flows should appear too";

  // Exports do not crash on a real trace and mention a push.
  std::string json = trace.ToChromeTraceJson();
  EXPECT_NE(json.find("shuffle-push"), std::string::npos);
  std::string gantt = trace.RenderGantt(80);
  EXPECT_NE(gantt.find('>'), std::string::npos);

  // The trace summary in the report agrees with the collected spans.
  EXPECT_TRUE(run.report.trace.enabled);
  EXPECT_EQ(run.report.trace.spans,
            static_cast<std::int64_t>(trace.spans().size()));
}

TEST(TraceIntegrationTest, DisabledTracingRecordsNothing) {
  RunConfig cfg;
  cfg.scheme = Scheme::kSpark;
  cfg.seed = 6;
  cfg.cost = CostModel{}.Scaled(100);
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
  std::vector<Record> records{{"a", std::int64_t{1}}};
  (void)cluster.Parallelize("data", records).Collect();
  EXPECT_EQ(cluster.trace(), nullptr);
}

}  // namespace
}  // namespace gs
