// RunReport: JSON schema/golden encoding, and the report produced by a
// real cluster run.
#include "engine/run_report.h"

#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {
namespace {

// Golden encoding of a hand-built report: every section, fixed key order,
// integral doubles without a fraction. Guards the on-disk schema — update
// kSchemaVersion when this has to change.
TEST(RunReportTest, GoldenJsonEncoding) {
  RunReport r;
  r.scheme = "AggShuffle";
  r.seed = 7;
  r.scale = 100;
  r.label = "golden";
  r.num_datacenters = 2;
  r.num_nodes = 4;
  r.job.job_id = 3;
  r.job.tenant = "etl";
  r.job.submitted = 0.5;
  r.job.started = 1;
  r.job.completed = 2.5;
  r.job.cross_dc_bytes = 1024;
  RunReport::JobRow row;
  row.job_id = 3;
  row.tenant = "etl";
  row.label = "wc";
  row.submitted = 0.5;
  row.started = 1;
  row.completed = 2.5;
  row.cross_dc_bytes = 1024;
  r.jobs.push_back(row);
  r.metrics_enabled = true;
  MetricSnapshot c;
  c.name = "netsim.flows_started";
  c.kind = MetricSnapshot::Kind::kCounter;
  c.value = 3;
  r.metrics.push_back(c);
  r.utilization_bucket = 1;
  RunReport::LinkSeries l;
  l.src_dc = 0;
  l.dst_dc = 1;
  l.src_name = "dc0";
  l.dst_name = "dc1";
  l.base_rate = 1048576;
  l.total_bytes = 1024;
  l.buckets = {512, 0, 512};
  r.links.push_back(l);
  r.cost_usd = 0.25;
  r.cost_usd_full_scale = 25;

  const std::string expected =
      "{\"schema_version\":2,"
      "\"scheme\":\"AggShuffle\",\"seed\":7,\"scale\":100,"
      "\"label\":\"golden\","
      "\"topology\":{\"num_datacenters\":2,\"num_nodes\":4},"
      "\"job\":{\"job_id\":3,\"tenant\":\"etl\",\"submitted\":0.5,"
      "\"started\":1,\"queue_delay\":0.5,\"completed\":2.5,\"jct\":1.5,"
      "\"cross_dc_bytes\":1024,\"cross_dc_fetch_bytes\":0,"
      "\"cross_dc_push_bytes\":0,\"cross_dc_centralize_bytes\":0,"
      "\"task_failures\":0,\"fetch_failures\":0,\"node_crashes\":0,"
      "\"map_resubmissions\":0,\"push_retries\":0,\"push_fallbacks\":0,"
      "\"stages\":[]},"
      "\"jobs\":[{\"job_id\":3,\"tenant\":\"etl\",\"label\":\"wc\","
      "\"submitted\":0.5,\"started\":1,\"queue_delay\":0.5,"
      "\"completed\":2.5,\"jct\":1.5,\"cross_dc_bytes\":1024,"
      "\"task_failures\":0}],"
      "\"metrics\":{\"enabled\":true,\"snapshots\":["
      "{\"name\":\"netsim.flows_started\",\"kind\":\"counter\","
      "\"value\":3}]},"
      "\"utilization\":{\"bucket_seconds\":1,\"links\":["
      "{\"src_dc\":0,\"dst_dc\":1,\"src\":\"dc0\",\"dst\":\"dc1\","
      "\"base_rate\":1048576,\"total_bytes\":1024,"
      "\"buckets\":[512,0,512]}]},"
      "\"cost\":{\"cost_usd\":0.25,\"cost_usd_full_scale\":25},"
      "\"trace\":{\"enabled\":false,\"spans\":0,\"task_spans\":0,"
      "\"stage_spans\":0,\"flow_spans\":0,\"phase_spans\":0,"
      "\"flow_bytes\":0}}";
  EXPECT_EQ(r.ToJson(), expected);
}

TEST(RunReportTest, HistogramAndGaugeSnapshotsSerialize) {
  RunReport r;
  MetricSnapshot g;
  g.name = "g";
  g.kind = MetricSnapshot::Kind::kGauge;
  g.value = 2;
  g.max = 9;
  r.metrics.push_back(g);
  MetricSnapshot h;
  h.name = "h";
  h.kind = MetricSnapshot::Kind::kHistogram;
  h.count = 3;
  h.sum = 4.5;
  h.bounds = {1, 10};
  h.buckets = {1, 1, 1};
  r.metrics.push_back(h);
  const std::string json = r.ToJson();
  EXPECT_NE(json.find("{\"name\":\"g\",\"kind\":\"gauge\",\"value\":2,"
                      "\"max\":9}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"h\",\"kind\":\"histogram\",\"count\":3,"
                      "\"sum\":4.5,\"bounds\":[1,10],\"buckets\":[1,1,1]}"),
            std::string::npos);
}

RunConfig Cfg(bool metrics) {
  RunConfig cfg;
  cfg.scheme = Scheme::kAggShuffle;
  cfg.seed = 5;
  cfg.scale = 100;
  cfg.cost = CostModel{}.Scaled(100);
  cfg.observe.metrics = metrics;
  return cfg;
}

RunResult RunSmallJob(GeoCluster& cluster) {
  std::vector<Record> records;
  for (int i = 0; i < 600; ++i) {
    records.push_back({"k" + std::to_string(i % 31), std::int64_t{1}});
  }
  return cluster.Parallelize("d", records, 2)
      .ReduceByKey(SumInt64(), 8)
      .Run(ActionKind::kCollect);
}

TEST(RunReportTest, RealRunFillsEverySection) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(/*metrics=*/true));
  RunResult run = RunSmallJob(cluster);
  const RunReport& rep = run.report;

  EXPECT_EQ(rep.scheme, "AggShuffle");
  EXPECT_EQ(rep.seed, 5u);
  EXPECT_EQ(rep.num_datacenters, 6);
  EXPECT_EQ(rep.num_nodes, cluster.topology().num_nodes());
  EXPECT_GT(rep.job.jct(), 0);
  EXPECT_TRUE(rep.metrics_enabled);
  EXPECT_FALSE(rep.metrics.empty());
  // Known metric names from each instrumented layer are present.
  bool simcore = false, netsim = false, sched = false, storage = false,
       engine = false, disk = false;
  for (const MetricSnapshot& m : rep.metrics) {
    simcore |= m.name == "simcore.events_executed";
    netsim |= m.name == "netsim.flows_started";
    sched |= m.name == "sched.tasks_assigned";
    storage |= m.name == "storage.puts";
    engine |= m.name == "engine.jobs_completed";
    disk |= m.name == "disk.writes";
  }
  EXPECT_TRUE(simcore && netsim && sched && storage && engine && disk)
      << "a layer is missing from the registry";

  // A shuffle over six regions touches WAN links; series carry the bytes.
  EXPECT_GT(rep.utilization_bucket, 0);
  EXPECT_FALSE(rep.links.empty());
  for (const RunReport::LinkSeries& l : rep.links) {
    Bytes sum = 0;
    for (Bytes b : l.buckets) sum += b;
    EXPECT_EQ(sum, l.total_bytes);
    EXPECT_GT(l.total_bytes, 0) << "only links with traffic are exported";
    EXPECT_FALSE(l.src_name.empty());
  }
  EXPECT_GT(rep.cost_usd, 0);
  EXPECT_DOUBLE_EQ(rep.cost_usd_full_scale, rep.cost_usd * 100);
  EXPECT_FALSE(rep.trace.enabled);

  // The report's per-job table has exactly this one completed job.
  ASSERT_EQ(rep.jobs.size(), 1u);
  EXPECT_EQ(rep.jobs[0].job_id, rep.job.job_id);
  EXPECT_EQ(rep.jobs[0].tenant, "default");
  EXPECT_DOUBLE_EQ(rep.jobs[0].jct(), rep.job.jct());

  // The serialized form mentions each section exactly where expected.
  const std::string json = rep.ToJson();
  EXPECT_EQ(json.rfind("{\"schema_version\":2,", 0), 0u);
  EXPECT_NE(json.find("\"utilization\":{\"bucket_seconds\":1,"),
            std::string::npos);
}

TEST(RunReportTest, DisabledMetricsYieldEmptySections) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(/*metrics=*/false));
  RunResult run = RunSmallJob(cluster);
  EXPECT_FALSE(run.report.metrics_enabled);
  EXPECT_TRUE(run.report.metrics.empty());
  EXPECT_TRUE(run.report.links.empty());
  EXPECT_EQ(run.report.utilization_bucket, 0);
  // JobMetrics and records are unaffected by disabling observability.
  EXPECT_GT(run.report.job.jct(), 0);
  EXPECT_EQ(run.records.size(), 31u);
}

TEST(RunReportTest, ReportsAreIdenticalForIdenticalRuns) {
  auto json = [] {
    GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(/*metrics=*/true));
    return RunSmallJob(cluster).report.ToJson();
  };
  EXPECT_EQ(json(), json());
}

}  // namespace
}  // namespace gs
