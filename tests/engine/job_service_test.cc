// The multi-job service surface (engine/job_api.h, docs/SERVICE.md):
// Submit/JobHandle/Wait/RunUntilQuiescent semantics, admission control,
// priority ordering, open-loop arrivals, and cross-tenant isolation under
// faults. Dataset::Run must stay an exact Submit + Wait.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "data/combiner.h"
#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {
namespace {

constexpr double kScale = 2000;  // tiny jobs; the matrix stays fast

RunConfig TestConfig(Scheme scheme = Scheme::kAggShuffle) {
  RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 11;
  cfg.scale = kScale;
  cfg.cost = CostModel{}.Scaled(kScale);
  return cfg;
}

// Keyed records with deterministic per-key sums: key i%keys carries
// weight i, tagged so distinct jobs produce distinct key spaces.
std::vector<Record> Input(const std::string& tag, int n, int keys) {
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    records.push_back(
        {tag + std::to_string(i % keys), static_cast<std::int64_t>(i)});
  }
  return records;
}

std::map<std::string, std::int64_t> Sums(const std::vector<Record>& records) {
  std::map<std::string, std::int64_t> sums;
  for (const Record& r : records) {
    sums[r.key] += std::get<std::int64_t>(r.value);
  }
  return sums;
}

Dataset Reduce(GeoCluster& cluster, const std::string& tag, int n, int keys,
               int shards = 4) {
  return cluster.Parallelize(tag, Input(tag, n, keys), /*partitions_per_dc=*/1)
      .ReduceByKey(SumInt64(), shards);
}

// Dataset::Run is a thin Submit + Wait: both paths on identical fresh
// clusters produce byte-identical reports and records.
TEST(JobServiceTest, SubmitWaitMatchesRun) {
  GeoCluster sync_cluster(Ec2SixRegionTopology(kScale), TestConfig());
  RunResult via_run =
      Reduce(sync_cluster, "k", 400, 13).Run(ActionKind::kCollect);

  GeoCluster async_cluster(Ec2SixRegionTopology(kScale), TestConfig());
  JobHandle h = Reduce(async_cluster, "k", 400, 13)
                    .Submit(ActionKind::kCollect);
  EXPECT_FALSE(h.done());
  RunResult via_submit = h.Wait();

  EXPECT_EQ(via_run.records, via_submit.records);
  EXPECT_EQ(via_run.metrics.jct(), via_submit.metrics.jct());
  EXPECT_EQ(via_run.report.ToJson(), via_submit.report.ToJson());
}

// Several jobs on one cluster, driven by RunUntilQuiescent: every handle
// completes, every result is the correct aggregation, and the report's
// jobs array has one row per job in completion order.
TEST(JobServiceTest, ConcurrentJobsAllCorrect) {
  GeoCluster cluster(Ec2SixRegionTopology(kScale), TestConfig());
  struct Job {
    std::string tag;
    int n, keys;
    JobHandle handle;
  };
  std::vector<Job> jobs;
  int i = 0;
  for (const char* tag : {"a", "b", "c"}) {
    const int n = 300 + 50 * i, keys = 7 + i;
    JobOptions opts;
    opts.tenant = (i % 2 == 0) ? "even" : "odd";
    opts.label = tag;
    jobs.push_back(
        {tag, n, keys,
         Reduce(cluster, tag, n, keys).Submit(ActionKind::kCollect, opts)});
    ++i;
  }
  EXPECT_EQ(cluster.running_jobs() + cluster.queued_jobs(), 3);
  cluster.RunUntilQuiescent();
  EXPECT_EQ(cluster.running_jobs(), 0);

  for (Job& job : jobs) {
    ASSERT_TRUE(job.handle.done()) << job.tag;
    RunResult r = job.handle.Wait();
    EXPECT_EQ(Sums(r.records), Sums(Input(job.tag, job.n, job.keys)))
        << job.tag;
    EXPECT_EQ(static_cast<int>(r.records.size()), job.keys) << job.tag;
  }
  ASSERT_EQ(cluster.job_rows().size(), 3u);
  for (std::size_t j = 1; j < cluster.job_rows().size(); ++j) {
    EXPECT_LE(cluster.job_rows()[j - 1].completed,
              cluster.job_rows()[j].completed);
  }
}

// ServiceConfig::max_concurrent_jobs: the second job waits in the
// admission queue until the first finishes, and its queueing delay is the
// gap between arrival and admission.
TEST(JobServiceTest, AdmissionCapQueues) {
  RunConfig cfg = TestConfig();
  cfg.service.max_concurrent_jobs = 1;
  GeoCluster cluster(Ec2SixRegionTopology(kScale), cfg);
  JobHandle first = Reduce(cluster, "a", 300, 5).Submit(ActionKind::kSave);
  JobHandle second = Reduce(cluster, "b", 300, 5).Submit(ActionKind::kSave);
  EXPECT_EQ(cluster.running_jobs(), 1);
  EXPECT_EQ(cluster.queued_jobs(), 1);
  cluster.RunUntilQuiescent();

  ASSERT_EQ(cluster.job_rows().size(), 2u);
  const RunReport::JobRow& a = cluster.job_rows()[0];
  const RunReport::JobRow& b = cluster.job_rows()[1];
  EXPECT_EQ(a.job_id, first.id());
  EXPECT_EQ(b.job_id, second.id());
  EXPECT_EQ(a.queue_delay(), 0);
  EXPECT_GT(b.queue_delay(), 0) << "second job must queue behind the cap";
  EXPECT_GE(b.started, a.completed);
}

// Admission order among queued jobs: higher priority first, FIFO among
// equals, regardless of submission order.
TEST(JobServiceTest, PriorityOrdersAdmission) {
  RunConfig cfg = TestConfig();
  cfg.service.max_concurrent_jobs = 1;
  GeoCluster cluster(Ec2SixRegionTopology(kScale), cfg);
  JobOptions lo, hi;
  lo.priority = 0;
  lo.label = "lo";
  hi.priority = 5;
  hi.label = "hi";
  JobHandle running = Reduce(cluster, "r", 300, 5).Submit(ActionKind::kSave);
  JobHandle low = Reduce(cluster, "l", 300, 5).Submit(ActionKind::kSave, lo);
  JobHandle high = Reduce(cluster, "h", 300, 5).Submit(ActionKind::kSave, hi);
  cluster.RunUntilQuiescent();

  ASSERT_EQ(cluster.job_rows().size(), 3u);
  EXPECT_EQ(cluster.job_rows()[0].job_id, running.id());
  EXPECT_EQ(cluster.job_rows()[1].job_id, high.id());
  EXPECT_EQ(cluster.job_rows()[2].job_id, low.id());
}

// JobOptions::arrival_delay defers arrival, not just admission: the
// queueing-delay clock starts at the arrival time.
TEST(JobServiceTest, ArrivalDelayDefersTheJob) {
  GeoCluster cluster(Ec2SixRegionTopology(kScale), TestConfig());
  JobOptions opts;
  opts.arrival_delay = Seconds(5);
  JobHandle h = Reduce(cluster, "d", 300, 5).Submit(ActionKind::kSave, opts);
  EXPECT_EQ(cluster.running_jobs(), 0) << "job must not run before arrival";
  cluster.RunUntilQuiescent();
  ASSERT_EQ(cluster.job_rows().size(), 1u);
  EXPECT_EQ(cluster.job_rows()[0].submitted, 5.0);
  EXPECT_GE(cluster.job_rows()[0].started, 5.0);
  EXPECT_EQ(cluster.job_rows()[0].queue_delay(), 0);
  RunResult r = h.Wait();
  EXPECT_GE(r.metrics.started, 5.0);
}

// Isolation under faults: a node crash while two tenants' jobs are in
// flight is recovered for both — every job still produces exactly the
// aggregation a fault-free solo run produces.
TEST(JobServiceTest, CrashDuringOneTenantsJobDoesNotCorruptTheOther) {
  RunConfig cfg = TestConfig(Scheme::kSpark);
  NodeCrashEvent crash;
  crash.at = 1.0;  // mid-map for these jobs
  crash.node = 3;
  crash.restart_after = 4.0;
  cfg.fault.plan.node_crashes.push_back(crash);
  GeoCluster cluster(Ec2SixRegionTopology(kScale), cfg);

  JobOptions a_opts, b_opts;
  a_opts.tenant = "alice";
  b_opts.tenant = "bob";
  JobHandle a =
      Reduce(cluster, "a", 600, 9).Submit(ActionKind::kCollect, a_opts);
  JobHandle b =
      Reduce(cluster, "b", 600, 11).Submit(ActionKind::kCollect, b_opts);
  cluster.RunUntilQuiescent();

  RunResult ra = a.Wait(), rb = b.Wait();
  EXPECT_EQ(Sums(ra.records), Sums(Input("a", 600, 9)));
  EXPECT_EQ(Sums(rb.records), Sums(Input("b", 600, 11)));
  // The crash actually happened while both jobs were running (a node
  // crash is surfaced to every running job's metrics, docs/FAULTS.md).
  EXPECT_EQ(ra.metrics.node_crashes, 1);
  EXPECT_EQ(rb.metrics.node_crashes, 1);
}

// A job handle's result can be taken exactly once.
TEST(JobServiceTest, WaitTwiceIsFatal) {
  GeoCluster cluster(Ec2SixRegionTopology(kScale), TestConfig());
  JobHandle h = Reduce(cluster, "w", 300, 5).Submit(ActionKind::kSave);
  h.Wait();
  EXPECT_THROW(h.Wait(), CheckFailure);
}

}  // namespace
}  // namespace gs
