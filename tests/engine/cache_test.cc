// cache(): computed once, reread from memory by later jobs (Sec. IV-E
// discusses caching aggregated datasets to avoid repeated WAN transfers).
#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {
namespace {

RunConfig QuietConfig(Scheme scheme) {
  RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 2;
  cfg.cost = CostModel{}.Scaled(100);
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.net.wan_flow_efficiency_min = 1.0;
  cfg.cost.straggler_sigma = 0;
  cfg.cost.straggler_prob = 0;
  return cfg;
}

std::vector<Record> SomeRecords(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({"key" + std::to_string(i % 23), std::int64_t{1}});
  }
  return records;
}

TEST(CacheTest, CachedBlocksAppearAfterFirstAction) {
  GeoCluster cluster(Ec2SixRegionTopology(100), QuietConfig(Scheme::kSpark));
  Dataset data = cluster.Parallelize("data", SomeRecords(200), 1);
  Dataset mapped = data.Map("id", [](const Record& r) { return r; }).Cache();
  RddId cached_id = mapped.rdd()->id();
  (void)mapped.Collect();
  int cached_partitions = 0;
  for (int p = 0; p < mapped.num_partitions(); ++p) {
    if (!cluster.blocks().Locations(BlockId::Cached(cached_id, p)).empty()) {
      ++cached_partitions;
    }
  }
  EXPECT_EQ(cached_partitions, mapped.num_partitions());
}

TEST(CacheTest, SecondActionIsFasterAndCorrect) {
  GeoCluster cluster(Ec2SixRegionTopology(100), QuietConfig(Scheme::kSpark));
  Dataset data = cluster.Parallelize("data", SomeRecords(300), 2);
  int evaluations = 0;
  Dataset expensive =
      data.MapPartitions("count-evals",
                         [&evaluations](int, const std::vector<Record>& in) {
                           ++evaluations;
                           return in;
                         })
          .Cache();
  auto first = expensive.Collect();
  const int evals_after_first = evaluations;
  auto second = expensive.Collect();
  EXPECT_EQ(first, second);
  EXPECT_EQ(evaluations, evals_after_first)
      << "cached partitions must not be recomputed";
}

TEST(CacheTest, CachedShuffleOutputSkipsReshuffle) {
  GeoCluster cluster(Ec2SixRegionTopology(100), QuietConfig(Scheme::kSpark));
  Dataset data = cluster.Parallelize("data", SomeRecords(300), 2);
  Dataset counts = data.ReduceByKey(SumInt64(), 4).Cache();
  (void)counts.Collect();
  Bytes fetch_after_first =
      cluster.network().meter().cross_dc_of_kind(FlowKind::kShuffleFetch);
  (void)counts.Collect();
  Bytes fetch_after_second =
      cluster.network().meter().cross_dc_of_kind(FlowKind::kShuffleFetch);
  EXPECT_EQ(fetch_after_first, fetch_after_second)
      << "the second job must read the cached reduce output, not re-fetch";
}

TEST(CacheTest, DownstreamJobsUseCachedCut) {
  GeoCluster cluster(Ec2SixRegionTopology(100), QuietConfig(Scheme::kSpark));
  Dataset data = cluster.Parallelize("data", SomeRecords(100), 1);
  Dataset cached = data.Map("id", [](const Record& r) { return r; }).Cache();
  (void)cached.Count();
  // A new job built on top of the cached dataset computes correct results.
  auto filtered = cached.Filter("key0", [](const Record& r) {
    return r.key == "key0";
  });
  auto result = filtered.Collect();
  for (const Record& r : result) EXPECT_EQ(r.key, "key0");
  EXPECT_FALSE(result.empty());
}

TEST(CacheTest, WorksUnderAggShuffleRewrite) {
  // The rewrite memo must keep cached identities stable across actions.
  GeoCluster cluster(Ec2SixRegionTopology(100),
                     QuietConfig(Scheme::kAggShuffle));
  Dataset data = cluster.Parallelize("data", SomeRecords(300), 2);
  Dataset counts = data.ReduceByKey(SumInt64(), 4).Cache();
  auto first = counts.Collect();
  Bytes push_after_first =
      cluster.network().meter().cross_dc_of_kind(FlowKind::kShufflePush);
  auto second = counts.Collect();
  Bytes push_after_second =
      cluster.network().meter().cross_dc_of_kind(FlowKind::kShufflePush);
  EXPECT_EQ(first.size(), second.size());
  EXPECT_EQ(push_after_first, push_after_second)
      << "cached aggregated data must not be pushed again (Sec. IV-E)";
}

}  // namespace
}  // namespace gs
