// Aggregating into a subset of k datacenters (Sec. III-C generalization).
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "engine/cluster.h"
#include "engine/dataset.h"
#include "workloads/input_gen.h"

namespace gs {
namespace {

RunConfig Cfg(int k) {
  RunConfig cfg;
  cfg.scheme = Scheme::kAggShuffle;
  cfg.seed = 8;
  cfg.cost = CostModel{}.Scaled(100);
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.net.wan_flow_efficiency_min = 1.0;
  cfg.cost.straggler_sigma = 0;
  cfg.cost.straggler_prob = 0;
  cfg.aggregator_dc_count = k;
  return cfg;
}

struct Outcome {
  int dcs_holding_shuffle = 0;
  Bytes cross_dc = 0;
  std::vector<Record> result;
};

Outcome RunWith(int k) {
  GeoCluster cluster(Ec2SixRegionTopology(100), Cfg(k));
  Rng rng(3);
  std::vector<Record> records =
      MakeKeyValueRecords(1200, 40, rng, kHexAlphabet, nullptr);
  std::vector<std::vector<Record>> parts(24);
  for (std::size_t i = 0; i < records.size(); ++i) {
    parts[i % 24].push_back(std::move(records[i]));
  }
  Dataset input = cluster.CreateSource(
      "in", PlacePartitions(cluster.topology(), std::move(parts),
                            DefaultDcWeights(6)));
  Outcome out;
  RunResult run = input.SortByKey(UniformBoundaries(8, kHexAlphabet))
                      .Run(ActionKind::kCollect);
  out.result = std::move(run.records);

  auto per_dc = cluster.tracker().BytesPerDc(0, cluster.topology());
  for (Bytes b : per_dc) out.dcs_holding_shuffle += b > 0;
  out.cross_dc = run.metrics.cross_dc_bytes;
  return out;
}

TEST(SubsetAggregationTest, KOneAggregatesIntoSingleDc) {
  EXPECT_EQ(RunWith(1).dcs_holding_shuffle, 1);
}

TEST(SubsetAggregationTest, KTwoUsesExactlyTwoDcs) {
  EXPECT_EQ(RunWith(2).dcs_holding_shuffle, 2);
}

TEST(SubsetAggregationTest, KFullSpreadKeepsDataEverywhere) {
  // k = num_datacenters approximates iShuffle-style spread shuffle-on-write:
  // partitions already anywhere stay put.
  EXPECT_EQ(RunWith(6).dcs_holding_shuffle, 6);
}

TEST(SubsetAggregationTest, ResultsIdenticalAcrossK) {
  auto sorted = [](std::vector<Record> r) { return r; };  // already sorted
  Outcome k1 = RunWith(1);
  Outcome k2 = RunWith(2);
  Outcome k6 = RunWith(6);
  EXPECT_EQ(sorted(k1.result), sorted(k2.result));
  EXPECT_EQ(sorted(k1.result), sorted(k6.result));
}

TEST(SubsetAggregationTest, PushTrafficShrinksWithMoreAggregators) {
  // More aggregator datacenters = more partitions already "home" = fewer
  // pushed bytes (Eq. 2 generalizes: D >= S - sum of the subset's shares)
  // — but the later reduce then fetches across the subset, so the paper
  // prefers k = 1. Verify the push-side monotonicity.
  auto push_bytes = [](int k) {
    GeoCluster c(Ec2SixRegionTopology(100), Cfg(k));
    Rng rng(3);
    std::vector<Record> records =
        MakeKeyValueRecords(1200, 40, rng, kHexAlphabet, nullptr);
    std::vector<std::vector<Record>> parts(24);
    for (std::size_t i = 0; i < records.size(); ++i) {
      parts[i % 24].push_back(std::move(records[i]));
    }
    Dataset input = c.CreateSource(
        "in", PlacePartitions(c.topology(), std::move(parts),
                              DefaultDcWeights(6)));
    return input.SortByKey(UniformBoundaries(8, kHexAlphabet))
        .Run(ActionKind::kSave)
        .metrics.cross_dc_push_bytes;
  };
  EXPECT_LT(push_bytes(6), push_bytes(1));
}

TEST(SubsetAggregationTest, OversizedKClampsToClusterSize) {
  RunConfig cfg = Cfg(99);
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
  std::vector<Record> records{{"a", std::int64_t{1}}, {"b", std::int64_t{2}}};
  EXPECT_NO_THROW(
      (void)cluster.Parallelize("d", records).ReduceByKey(SumInt64(), 4)
          .Collect());
}

}  // namespace
}  // namespace gs
