// Regression: StageInputPerDc's "counting 0 bytes" fallbacks (a cached
// partition with no live replica, or a replica whose block vanished) used
// to be silent — the aggregator choice quietly planned on a zero-byte
// matrix. They must surface in engine.placement_misses and the RunReport.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/cluster.h"
#include "engine/dataset.h"
#include "storage/block.h"

namespace gs {
namespace {

RunConfig QuietConfig(Scheme scheme) {
  RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 2;
  cfg.cost = CostModel{}.Scaled(100);
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.net.wan_flow_efficiency_min = 1.0;
  cfg.cost.straggler_sigma = 0;
  cfg.cost.straggler_prob = 0;
  return cfg;
}

std::vector<Record> SomeRecords(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({"key" + std::to_string(i % 23), std::int64_t{1}});
  }
  return records;
}

TEST(PlacementMissTest, DeadCachedReplicaCountsAMiss) {
  // Cache a dataset, then take every executor holding one of its
  // partitions down *without* dropping its block registrations (a
  // transient outage: the locations linger, the nodes cannot serve). The
  // aggregator choice finds no live replica for that partition and must
  // say so in the metrics instead of silently counting 0 bytes.
  GeoCluster cluster(Ec2SixRegionTopology(100),
                     QuietConfig(Scheme::kAggShuffle));
  Dataset data = cluster.Parallelize("data", SomeRecords(400), 1);
  Dataset cached = data.Map("id", [](const Record& r) { return r; }).Cache();
  const RddId cached_id = cached.rdd()->id();
  RunResult first = cached.ReduceByKey(SumInt64(), 4).Run(ActionKind::kCollect);
  EXPECT_EQ(first.metrics.placement_misses, 0)
      << "healthy cluster: no placement misses expected";

  const std::vector<NodeIndex> holders =
      cluster.blocks().Locations(BlockId::Cached(cached_id, 0));
  ASSERT_FALSE(holders.empty());
  for (NodeIndex n : holders) cluster.scheduler().SetNodeDown(n);

  RunResult second =
      cached.ReduceByKey(SumInt64(), 4).Run(ActionKind::kCollect);
  EXPECT_GT(second.metrics.placement_misses, 0)
      << "a cached partition with every replica down must count a miss";

  // The miss surfaces in the registry snapshot and the report JSON.
  bool counter_seen = false;
  for (const MetricSnapshot& m : second.report.metrics) {
    if (m.name == "engine.placement_misses") {
      counter_seen = true;
      EXPECT_EQ(m.value, second.metrics.placement_misses);
    }
  }
  EXPECT_TRUE(counter_seen);
  EXPECT_NE(second.report.ToJson().find("\"placement_misses\""),
            std::string::npos);

  // The job still completes with the right answer — the miss only means
  // the placement decision had to plan blind for that partition.
  EXPECT_EQ(second.records.size(), first.records.size());
}

TEST(PlacementMissTest, ReportOmitsTheFieldWhenZero) {
  GeoCluster cluster(Ec2SixRegionTopology(100),
                     QuietConfig(Scheme::kAggShuffle));
  Dataset data = cluster.Parallelize("data", SomeRecords(200), 1);
  RunResult run = data.ReduceByKey(SumInt64(), 4).Run(ActionKind::kCollect);
  EXPECT_EQ(run.metrics.placement_misses, 0);
  EXPECT_EQ(run.report.ToJson().find("\"placement_misses\""),
            std::string::npos)
      << "zero misses must not perturb golden report JSON";
}

}  // namespace
}  // namespace gs
