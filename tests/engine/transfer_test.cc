// Semantics of transferTo() — the paper's contribution (Sec. IV).
#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/dataset.h"
#include "storage/map_output_tracker.h"

namespace gs {
namespace {

RunConfig BaseConfig(Scheme scheme) {
  RunConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 3;
  cfg.cost = CostModel{}.Scaled(100);
  // Deterministic network for precise assertions.
  cfg.net.jitter_interval = 0;
  cfg.net.wan_stall_prob = 0;
  cfg.net.wan_flow_efficiency_min = 1.0;
  cfg.cost.straggler_sigma = 0;
  cfg.cost.straggler_prob = 0;
  return cfg;
}

std::vector<Record> SomeRecords(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({"key" + std::to_string(i),
                       std::string(50, static_cast<char>('a' + i % 26))});
  }
  return records;
}

TEST(TransferToTest, ExplicitTransferMovesShuffleWritesToTargetDc) {
  RunConfig cfg = BaseConfig(Scheme::kSpark);  // no auto insertion
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
  Dataset data = cluster.Parallelize("data", SomeRecords(600), 2);
  const DcIndex target = 4;
  Dataset counts = data.TransferTo(target)
                       .Map("tag",
                            [](const Record& r) {
                              return Record{r.key.substr(0, 4),
                                            std::int64_t{1}};
                            })
                       .ReduceByKey(SumInt64(), 8);
  RunResult run = counts.Run(ActionKind::kCollect);

  // After the job, every registered map output of the shuffle must live in
  // the target datacenter.
  const Topology& topo = cluster.topology();
  const MapOutputTracker& tracker = cluster.tracker();
  ASSERT_TRUE(tracker.HasShuffle(0));
  auto per_dc = tracker.BytesPerDc(0, topo);
  for (DcIndex dc = 0; dc < topo.num_datacenters(); ++dc) {
    if (dc == target) {
      EXPECT_GT(per_dc[dc], 0);
    } else {
      EXPECT_EQ(per_dc[dc], 0) << "shuffle input left in dc " << dc;
    }
  }
  EXPECT_GT(run.metrics.cross_dc_push_bytes, 0);
  EXPECT_EQ(run.metrics.cross_dc_fetch_bytes, 0);
}

TEST(TransferToTest, AutoAggregationPicksLargestInputDc) {
  RunConfig cfg = BaseConfig(Scheme::kAggShuffle);
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);

  // Skew the input: 2/3 of partitions in dc 2.
  std::vector<SourceRdd::Partition> parts;
  Rng rng(4);
  const Topology& topo = cluster.topology();
  for (int p = 0; p < 12; ++p) {
    SourceRdd::Partition part;
    part.records = MakeRecords(SomeRecords(40));
    DcIndex dc = p < 8 ? 2 : (p % 6);
    part.node = topo.nodes_in(dc)[p % 4];
    part.bytes = SerializedSize(*part.records);
    parts.push_back(std::move(part));
  }
  Dataset data = cluster.CreateSource("skewed", std::move(parts));
  (void)data.Map("tag",
                 [](const Record& r) {
                   return Record{r.key.substr(0, 4), std::int64_t{1}};
                 })
      .ReduceByKey(SumInt64(), 8)
      .Collect();

  auto per_dc = cluster.tracker().BytesPerDc(0, topo);
  Bytes best = *std::max_element(per_dc.begin(), per_dc.end());
  EXPECT_EQ(per_dc[2], best) << "aggregator must be the largest-input dc";
  EXPECT_EQ(best, std::accumulate(per_dc.begin(), per_dc.end(), Bytes{0}))
      << "all shuffle input must be aggregated into one dc";
}

TEST(TransferToTest, NoOpWhenDataAlreadyInTargetDc) {
  RunConfig cfg = BaseConfig(Scheme::kSpark);
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
  // All input already in dc 1.
  std::vector<SourceRdd::Partition> parts;
  const Topology& topo = cluster.topology();
  for (int p = 0; p < 4; ++p) {
    SourceRdd::Partition part;
    part.records = MakeRecords(SomeRecords(50));
    part.node = topo.nodes_in(1)[p];
    part.bytes = SerializedSize(*part.records);
    parts.push_back(std::move(part));
  }
  Dataset data = cluster.CreateSource("local", std::move(parts));
  RunResult run = data.TransferTo(1)
                      .Map("tag",
                           [](const Record& r) {
                             return Record{r.key, std::int64_t{1}};
                           })
                      .ReduceByKey(SumInt64(), 4)
                      .Run(ActionKind::kCollect);
  // Sec. IV-C2 "minimum overhead": nothing crossed datacenters except the
  // driver collect (excluded from this metric).
  EXPECT_EQ(run.metrics.cross_dc_push_bytes, 0);
  EXPECT_EQ(run.metrics.cross_dc_bytes, 0);
}

TEST(TransferToTest, AggShuffleKeepsIterationsLocalAfterFirstShuffle) {
  RunConfig cfg = BaseConfig(Scheme::kAggShuffle);
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
  Dataset data = cluster.Parallelize("data", SomeRecords(400), 2);
  // Two chained shuffles.
  Dataset once = data.Map("tag",
                          [](const Record& r) {
                            return Record{r.key.substr(0, 4),
                                          std::int64_t{1}};
                          })
                     .ReduceByKey(SumInt64(), 8);
  Dataset twice = once.Map("retag",
                           [](const Record& r) {
                             return Record{r.key.substr(0, 2), r.value};
                           })
                      .ReduceByKey(SumInt64(), 8);
  (void)twice.Collect();

  // The second shuffle's input was produced in the aggregator dc, so its
  // transferTo is transparent: all push traffic belongs to shuffle 1.
  const Topology& topo = cluster.topology();
  auto s2_per_dc = cluster.tracker().BytesPerDc(1, topo);
  int dcs_with_data = 0;
  for (Bytes b : s2_per_dc) dcs_with_data += b > 0;
  EXPECT_EQ(dcs_with_data, 1) << "iteration shuffle must stay aggregated";
}

TEST(TransferToTest, ResultsIdenticalWithAndWithoutTransfer) {
  auto run = [](Scheme scheme) {
    RunConfig cfg = BaseConfig(scheme);
    GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
    Dataset data = cluster.Parallelize("data", SomeRecords(300), 2);
    auto result = data.Map("tag",
                           [](const Record& r) {
                             return Record{r.key.substr(0, 4),
                                           std::int64_t{1}};
                           })
                      .ReduceByKey(SumInt64(), 8)
                      .Collect();
    std::sort(result.begin(), result.end(),
              [](const Record& a, const Record& b) { return a.key < b.key; });
    return result;
  };
  EXPECT_EQ(run(Scheme::kSpark), run(Scheme::kAggShuffle));
  EXPECT_EQ(run(Scheme::kSpark), run(Scheme::kCentralized));
}

TEST(TransferToTest, TransferThenCollectWorks) {
  RunConfig cfg = BaseConfig(Scheme::kSpark);
  GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
  Dataset data = cluster.Parallelize("data", SomeRecords(100), 1);
  RunResult run = data.TransferTo(5).Run(ActionKind::kCollect);
  EXPECT_EQ(run.records.size(), 100u);
  EXPECT_GT(run.metrics.cross_dc_push_bytes, 0);
}

}  // namespace
}  // namespace gs
