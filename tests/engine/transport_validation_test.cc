// TransportConfig / pricing input validation: malformed rates, prices and
// retry knobs must be rejected with a CheckFailure when the config locks
// in at GeoCluster construction — not propagate as NaN through the
// max-min solver or the cost report.
#include <gtest/gtest.h>

#include <limits>
#include <utility>

#include "common/check.h"
#include "engine/cluster.h"
#include "engine/transport/transport.h"

namespace gs {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

RunConfig ValidConfig() {
  RunConfig cfg;
  cfg.seed = 3;
  cfg.scale = 100;
  cfg.cost = CostModel{}.Scaled(100);
  return cfg;
}

void ExpectRejected(RunConfig cfg) {
  EXPECT_THROW(GeoCluster(Ec2SixRegionTopology(100), std::move(cfg)),
               CheckFailure);
}

TEST(TransportValidationTest, ValidConfigsConstruct) {
  for (TransportKind kind : {TransportKind::kDirect,
                             TransportKind::kObjectStore,
                             TransportKind::kFabric}) {
    RunConfig cfg = ValidConfig();
    cfg.transport.kind = kind;
    EXPECT_NO_THROW(GeoCluster(Ec2SixRegionTopology(100), cfg));
  }
}

TEST(TransportValidationTest, RejectsBadRetryKnobs) {
  {
    RunConfig cfg = ValidConfig();
    cfg.transport.max_push_retries = -1;
    ExpectRejected(std::move(cfg));
  }
  {
    RunConfig cfg = ValidConfig();
    cfg.transport.push_retry_backoff = -0.5;
    ExpectRejected(std::move(cfg));
  }
  {
    RunConfig cfg = ValidConfig();
    cfg.transport.push_backoff_factor = kNan;
    ExpectRejected(std::move(cfg));
  }
  {
    RunConfig cfg = ValidConfig();
    cfg.transport.push_backoff_factor = 0.0;
    ExpectRejected(std::move(cfg));
  }
}

TEST(TransportValidationTest, RejectsBadObjectStoreSettings) {
  {
    RunConfig cfg = ValidConfig();
    cfg.transport.object_store.rate = 0;
    ExpectRejected(std::move(cfg));
  }
  {
    RunConfig cfg = ValidConfig();
    cfg.transport.object_store.rate = kInf;
    ExpectRejected(std::move(cfg));
  }
  {
    RunConfig cfg = ValidConfig();
    cfg.transport.object_store.put_latency = kNan;
    ExpectRejected(std::move(cfg));
  }
  {
    RunConfig cfg = ValidConfig();
    cfg.transport.object_store.transfer_usd_per_gib = -0.01;
    ExpectRejected(std::move(cfg));
  }
  {
    // Out-of-range staging DC (the six-region cluster has DCs 0..5).
    RunConfig cfg = ValidConfig();
    cfg.transport.object_store.dc = 6;
    ExpectRejected(std::move(cfg));
  }
}

TEST(TransportValidationTest, RejectsBadFabricSettings) {
  {
    RunConfig cfg = ValidConfig();
    cfg.transport.fabric.rate = -1.0;
    ExpectRejected(std::move(cfg));
  }
  {
    RunConfig cfg = ValidConfig();
    cfg.transport.fabric.exchange_latency = kNan;
    ExpectRejected(std::move(cfg));
  }
}

TEST(TransportValidationTest, RejectsBadEgressRates) {
  RunConfig cfg = ValidConfig();
  cfg.observe.egress_usd_per_gib = {0.09, 0.09, kNan, 0.09, 0.12, 0.14};
  ExpectRejected(std::move(cfg));
}

// The validation happens at construction, before any flow: a bad config
// must never produce a partially wired cluster.
TEST(TransportValidationTest, DefaultTransportConfigIsValid) {
  TransportConfig def;
  EXPECT_EQ(def.kind, TransportKind::kDirect);
  RunConfig cfg = ValidConfig();
  cfg.transport = def;
  EXPECT_NO_THROW(GeoCluster(Ec2SixRegionTopology(100), cfg));
}

}  // namespace
}  // namespace gs
