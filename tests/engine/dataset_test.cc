// Dataset API tests: every public transformation and action produces
// correct results when executed end-to-end on the simulated cluster.
#include "engine/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/check.h"
#include "engine/cluster.h"
#include "workloads/input_gen.h"

namespace gs {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  DatasetTest() : cluster_(Ec2SixRegionTopology(100), Config()) {}

  static RunConfig Config() {
    RunConfig cfg;
    cfg.scheme = Scheme::kSpark;
    cfg.seed = 1;
    cfg.cost = CostModel{}.Scaled(100);
    return cfg;
  }

  Dataset Numbers(int count, int partitions_per_dc = 1) {
    std::vector<Record> records;
    for (int i = 0; i < count; ++i) {
      records.push_back({"k" + std::to_string(i), std::int64_t{i}});
    }
    return cluster_.Parallelize("numbers", records, partitions_per_dc);
  }

  GeoCluster cluster_;
};

TEST_F(DatasetTest, CollectReturnsAllRecords) {
  auto result = Numbers(50).Collect();
  EXPECT_EQ(result.size(), 50u);
  std::int64_t sum = 0;
  for (const Record& r : result) sum += std::get<std::int64_t>(r.value);
  EXPECT_EQ(sum, 49 * 50 / 2);
}

TEST_F(DatasetTest, MapTransformsEveryRecord) {
  auto result = Numbers(20)
                    .Map("triple",
                         [](const Record& r) {
                           return Record{
                               r.key, std::get<std::int64_t>(r.value) * 3};
                         })
                    .Collect();
  std::int64_t sum = 0;
  for (const Record& r : result) sum += std::get<std::int64_t>(r.value);
  EXPECT_EQ(sum, 3 * 19 * 20 / 2);
}

TEST_F(DatasetTest, FilterKeepsMatching) {
  auto result = Numbers(30)
                    .Filter("evens",
                            [](const Record& r) {
                              return std::get<std::int64_t>(r.value) % 2 == 0;
                            })
                    .Collect();
  EXPECT_EQ(result.size(), 15u);
}

TEST_F(DatasetTest, FlatMapExpands) {
  auto result = Numbers(10)
                    .FlatMap("dup",
                             [](const Record& r) {
                               return std::vector<Record>{r, r, r};
                             })
                    .Collect();
  EXPECT_EQ(result.size(), 30u);
}

TEST_F(DatasetTest, UnionConcatenates) {
  auto a = Numbers(10);
  auto b = Numbers(5);
  EXPECT_EQ(a.Union(b).Collect().size(), 15u);
}

TEST_F(DatasetTest, ReduceByKeySums) {
  std::vector<Record> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back({"g" + std::to_string(i % 7), std::int64_t{1}});
  }
  auto result = cluster_.Parallelize("grouped", records)
                    .ReduceByKey(SumInt64(), 4)
                    .Collect();
  ASSERT_EQ(result.size(), 7u);
  std::int64_t total = 0;
  for (const Record& r : result) total += std::get<std::int64_t>(r.value);
  EXPECT_EQ(total, 100);
}

TEST_F(DatasetTest, ReduceByKeyWithoutMapSideCombine) {
  std::vector<Record> records;
  for (int i = 0; i < 60; ++i) {
    records.push_back({"g" + std::to_string(i % 3), std::int64_t{2}});
  }
  auto result = cluster_.Parallelize("grouped", records)
                    .ReduceByKey(SumInt64(), 4, /*map_side_combine=*/false)
                    .Collect();
  ASSERT_EQ(result.size(), 3u);
  for (const Record& r : result) {
    EXPECT_EQ(std::get<std::int64_t>(r.value), 40);
  }
}

TEST_F(DatasetTest, GroupByKeyGathersValues) {
  std::vector<Record> records{{"a", std::string("1")},
                              {"b", std::string("2")},
                              {"a", std::string("3")}};
  auto result =
      cluster_.Parallelize("kv", records).GroupByKey(2).Collect();
  std::map<std::string, std::size_t> sizes;
  for (const Record& r : result) {
    sizes[r.key] = std::get<std::vector<std::string>>(r.value).size();
  }
  EXPECT_EQ(sizes["a"], 2u);
  EXPECT_EQ(sizes["b"], 1u);
}

TEST_F(DatasetTest, SortByKeyYieldsGloballySortedOutput) {
  Rng rng(5);
  std::vector<Record> records =
      MakeKeyValueRecords(500, 20, rng, kHexAlphabet, nullptr);
  auto result = cluster_.Parallelize("sortme", records)
                    .SortByKey(UniformBoundaries(8, kHexAlphabet))
                    .Collect();
  ASSERT_EQ(result.size(), 500u);
  // Result concatenates shards in shard order; within and across shards
  // keys must be non-decreasing.
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].key, result[i].key) << "at index " << i;
  }
}

TEST_F(DatasetTest, CountMatchesCollectSize) {
  auto data = Numbers(123);
  EXPECT_EQ(data.Count(), 123);
}

TEST_F(DatasetTest, SaveReportsMetrics) {
  RunResult run = Numbers(50).Run(ActionKind::kSave);
  EXPECT_GT(run.metrics.jct(), 0);
  EXPECT_GE(run.metrics.stages.size(), 1u);
}

TEST_F(DatasetTest, ChainedTransformations) {
  auto result = Numbers(100)
                    .Filter("small",
                            [](const Record& r) {
                              return std::get<std::int64_t>(r.value) < 50;
                            })
                    .Map("bucket",
                         [](const Record& r) {
                           return Record{
                               std::to_string(
                                   std::get<std::int64_t>(r.value) % 5),
                               std::int64_t{1}};
                         })
                    .ReduceByKey(SumInt64(), 4)
                    .Collect();
  ASSERT_EQ(result.size(), 5u);
  for (const Record& r : result) {
    EXPECT_EQ(std::get<std::int64_t>(r.value), 10);
  }
}

TEST_F(DatasetTest, MultipleActionsOnSameCluster) {
  auto data = Numbers(40);
  EXPECT_EQ(data.Collect().size(), 40u);
  EXPECT_EQ(data.Count(), 40);
  auto mapped = data.Map("id", [](const Record& r) { return r; });
  EXPECT_EQ(mapped.Collect().size(), 40u);
}

TEST_F(DatasetTest, TransferToValidatesDatacenter) {
  auto data = Numbers(10);
  EXPECT_NO_THROW(data.TransferTo(3));
  EXPECT_NO_THROW(data.TransferTo(kNoDc));
  EXPECT_THROW(data.TransferTo(99), CheckFailure);
}

TEST_F(DatasetTest, SortedKeysStableUnderSchemes) {
  // The same sort produces identical output under AggShuffle.
  Rng rng(5);
  std::vector<Record> records =
      MakeKeyValueRecords(200, 10, rng, kHexAlphabet, nullptr);
  auto spark_sorted = cluster_.Parallelize("s", records)
                          .SortByKey(UniformBoundaries(4, kHexAlphabet))
                          .Collect();

  RunConfig cfg = Config();
  cfg.scheme = Scheme::kAggShuffle;
  GeoCluster agg_cluster(Ec2SixRegionTopology(100), cfg);
  auto agg_sorted = agg_cluster.Parallelize("s", records)
                        .SortByKey(UniformBoundaries(4, kHexAlphabet))
                        .Collect();
  EXPECT_EQ(spark_sorted, agg_sorted);
}

}  // namespace
}  // namespace gs
