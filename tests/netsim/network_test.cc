#include "netsim/network.h"

#include <gtest/gtest.h>

#include "simcore/simulator.h"

namespace gs {
namespace {

// Two datacenters, two nodes each, deterministic capacities.
Topology TestTopo(Rate nic = MiB(10), Rate wan = MiB(1),
                  SimTime rtt = Millis(100)) {
  Topology topo;
  topo.AddDatacenter("dc0");
  topo.AddDatacenter("dc1");
  for (int i = 0; i < 2; ++i) topo.AddNode({"a" + std::to_string(i), 0, 2, nic});
  for (int i = 0; i < 2; ++i) topo.AddNode({"b" + std::to_string(i), 1, 2, nic});
  topo.AddWanLink({0, 1, wan, wan, wan, rtt});
  topo.AddWanLink({1, 0, wan, wan, wan, rtt});
  return topo;
}

NetworkConfig Quiet() {
  NetworkConfig cfg;
  cfg.jitter_interval = 0;
  cfg.wan_flow_efficiency_min = 1.0;
  cfg.wan_stall_prob = 0;
  return cfg;
}

struct Fixture {
  Simulator sim;
  Topology topo;
  Network net;
  explicit Fixture(Topology t, NetworkConfig cfg = Quiet())
      : topo(std::move(t)), net(sim, topo, cfg, Rng(1)) {}
};

TEST(NetworkTest, SingleWanFlowTakesBytesOverCapacityPlusLatency) {
  Fixture f(TestTopo());
  double done_at = -1;
  f.net.StartFlow(0, 2, MiB(2), FlowKind::kOther,
                  [&] { done_at = f.sim.Now(); });
  f.sim.Run();
  // 2 MiB over 1 MiB/s + 50 ms one-way setup.
  EXPECT_NEAR(done_at, 2.0 + 0.05, 1e-6);
}

TEST(NetworkTest, IntraDcFlowUsesNicCapacity) {
  Fixture f(TestTopo());
  double done_at = -1;
  f.net.StartFlow(0, 1, MiB(10), FlowKind::kOther,
                  [&] { done_at = f.sim.Now(); });
  f.sim.Run();
  EXPECT_NEAR(done_at, 1.0 + 0.00025, 1e-4);  // 10 MiB / 10 MiB/s + rtt/2
}

TEST(NetworkTest, LoopbackFlowIsImmediate) {
  Fixture f(TestTopo());
  double done_at = -1;
  f.net.StartFlow(0, 0, GiB(1), FlowKind::kOther,
                  [&] { done_at = f.sim.Now(); });
  f.sim.Run();
  EXPECT_LT(done_at, 0.01);
  // Loopback does not touch the meter.
  EXPECT_EQ(f.net.meter().cross_dc_total(), 0);
}

TEST(NetworkTest, TwoFlowsShareWanLinkFairly) {
  Fixture f(TestTopo());
  double first = -1, second = -1;
  // Same size, same start: both should finish at bytes*2/capacity.
  f.net.StartFlow(0, 2, MiB(1), FlowKind::kOther,
                  [&] { first = f.sim.Now(); });
  f.net.StartFlow(1, 3, MiB(1), FlowKind::kOther,
                  [&] { second = f.sim.Now(); });
  f.sim.Run();
  EXPECT_NEAR(first, 2.0 + 0.05, 1e-6);
  EXPECT_NEAR(second, 2.0 + 0.05, 1e-6);
}

TEST(NetworkTest, ShorterFlowFinishesFirstThenLongerSpeedsUp) {
  Fixture f(TestTopo());
  double small_done = -1, big_done = -1;
  f.net.StartFlow(0, 2, MiB(1), FlowKind::kOther,
                  [&] { small_done = f.sim.Now(); });
  f.net.StartFlow(1, 3, MiB(3), FlowKind::kOther,
                  [&] { big_done = f.sim.Now(); });
  f.sim.Run();
  // Shared at 0.5 MiB/s until the 1 MiB flow ends at t=2+eps; the 3 MiB
  // flow then has 2 MiB left at full 1 MiB/s: total ~4 + setup.
  EXPECT_NEAR(small_done, 2.0 + 0.05, 1e-6);
  EXPECT_NEAR(big_done, 4.0 + 0.05, 1e-6);
}

TEST(NetworkTest, NicCanBeTheBottleneck) {
  // WAN faster than the receiving NIC.
  Fixture f(TestTopo(/*nic=*/MiB(1), /*wan=*/MiB(100)));
  double done_at = -1;
  f.net.StartFlow(0, 2, MiB(2), FlowKind::kOther,
                  [&] { done_at = f.sim.Now(); });
  f.sim.Run();
  EXPECT_NEAR(done_at, 2.0 + 0.05, 1e-6);
}

TEST(NetworkTest, MeterAccountsPerKindAndPair) {
  Fixture f(TestTopo());
  f.net.StartFlow(0, 2, MiB(1), FlowKind::kShufflePush, [] {});
  f.net.StartFlow(2, 0, MiB(2), FlowKind::kShuffleFetch, [] {});
  f.net.StartFlow(0, 1, MiB(4), FlowKind::kOther, [] {});  // intra-DC
  f.sim.Run();
  const TrafficMeter& m = f.net.meter();
  EXPECT_EQ(m.cross_dc_total(), MiB(3));
  EXPECT_EQ(m.cross_dc_of_kind(FlowKind::kShufflePush), MiB(1));
  EXPECT_EQ(m.cross_dc_of_kind(FlowKind::kShuffleFetch), MiB(2));
  EXPECT_EQ(m.pair_bytes(0, 1), MiB(1));
  EXPECT_EQ(m.pair_bytes(1, 0), MiB(2));
  EXPECT_EQ(m.pair_bytes(0, 0), MiB(4));  // intra-DC tracked but not cross
}

TEST(NetworkTest, MeterResets) {
  Fixture f(TestTopo());
  f.net.StartFlow(0, 2, MiB(1), FlowKind::kOther, [] {});
  f.sim.Run();
  EXPECT_GT(f.net.meter().cross_dc_total(), 0);
  f.net.meter().Reset();
  EXPECT_EQ(f.net.meter().cross_dc_total(), 0);
}

TEST(NetworkTest, CancelledFlowNeverCompletes) {
  Fixture f(TestTopo());
  bool completed = false;
  FlowId id = f.net.StartFlow(0, 2, MiB(10), FlowKind::kOther,
                              [&] { completed = true; });
  f.sim.Schedule(1.0, [&] { f.net.CancelFlow(id); });
  f.sim.Run();
  EXPECT_FALSE(completed);
  EXPECT_FALSE(f.net.has_flow(id));
}

TEST(NetworkTest, CancelFreesBandwidthForOthers) {
  Fixture f(TestTopo());
  double done_at = -1;
  FlowId big = f.net.StartFlow(0, 2, GiB(1), FlowKind::kOther, [] {});
  f.net.StartFlow(1, 3, MiB(2), FlowKind::kOther,
                  [&] { done_at = f.sim.Now(); });
  f.sim.Schedule(0.5, [&] { f.net.CancelFlow(big); });
  f.sim.Run();
  // Shared 0.5 MiB/s for ~0.45s after setup, then full speed.
  EXPECT_LT(done_at, 2.5);
}

TEST(NetworkTest, ZeroByteFlowCompletesAfterLatency) {
  Fixture f(TestTopo());
  double done_at = -1;
  f.net.StartFlow(0, 2, 0, FlowKind::kOther, [&] { done_at = f.sim.Now(); });
  f.sim.Run();
  EXPECT_NEAR(done_at, 0.05, 1e-6);
}

TEST(NetworkTest, JitterKeepsCapacityWithinEnvelope) {
  NetworkConfig cfg;
  cfg.jitter_interval = 0.5;
  cfg.jitter_momentum = 0.5;
  cfg.wan_flow_efficiency_min = 1.0;
  cfg.wan_stall_prob = 0;
  Topology topo;
  topo.AddDatacenter("a");
  topo.AddDatacenter("b");
  topo.AddNode({"a0", 0, 2, MiB(100)});
  topo.AddNode({"b0", 1, 2, MiB(100)});
  topo.AddWanLink({0, 1, MiB(2), MiB(1), MiB(3), Millis(10)});
  topo.AddWanLink({1, 0, MiB(2), MiB(1), MiB(3), Millis(10)});
  Simulator sim;
  Network net(sim, topo, cfg, Rng(5));
  net.StartFlow(0, 1, MiB(200), FlowKind::kOther, [] {});
  bool moved = false;
  Rate initial = net.wan_capacity(0, 1);
  for (int i = 1; i <= 40; ++i) {
    sim.RunUntil(i * 0.5);
    Rate c = net.wan_capacity(0, 1);
    EXPECT_GE(c, MiB(1) * 0.999);
    EXPECT_LE(c, MiB(3) * 1.001);
    moved = moved || c != initial;
  }
  EXPECT_TRUE(moved) << "capacity never changed despite jitter";
  sim.Run();
}

TEST(NetworkTest, SameSeedSameCompletionTimes) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    Topology topo = Ec2SixRegionTopology(100);
    NetworkConfig cfg;  // jitter + stalls on
    Network net(sim, topo, cfg, Rng(seed));
    std::vector<double> done;
    Rng traffic(3);
    for (int i = 0; i < 20; ++i) {
      NodeIndex src = static_cast<NodeIndex>(traffic.UniformInt(0, 23));
      NodeIndex dst = static_cast<NodeIndex>(traffic.UniformInt(0, 23));
      net.StartFlow(src, dst, KiB(512), FlowKind::kOther,
                    [&done, &sim] { done.push_back(sim.Now()); });
    }
    sim.Run();
    return done;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(NetworkTest, PerFlowCapLimitsLoneFlow) {
  NetworkConfig cfg = Quiet();
  cfg.wan_flow_efficiency_min = 0.5;  // caps drawn in [0.5, 1] x base
  Fixture f(TestTopo(), cfg);
  double done_at = -1;
  f.net.StartFlow(0, 2, MiB(10), FlowKind::kOther,
                  [&] { done_at = f.sim.Now(); });
  f.sim.Run();
  // With a cap in [0.5, 1] the flow takes between 10s and 20s (+setup).
  EXPECT_GE(done_at, 10.0);
  EXPECT_LE(done_at, 20.1);
}

TEST(NetworkTest, StallDelaysFlowStart) {
  NetworkConfig cfg = Quiet();
  cfg.wan_stall_prob = 1.0;  // every WAN flow stalls
  cfg.wan_stall_min = 2.0;
  cfg.wan_stall_max = 2.0;
  Fixture f(TestTopo(), cfg);
  double done_at = -1;
  f.net.StartFlow(0, 2, MiB(1), FlowKind::kOther,
                  [&] { done_at = f.sim.Now(); });
  f.sim.Run();
  EXPECT_NEAR(done_at, 1.0 + 0.05 + 2.0, 1e-6);
}

TEST(NetworkTest, DrainsToEmptyQueueWithJitterOn) {
  // Jitter must not keep the simulator alive once flows are done.
  NetworkConfig cfg;  // default: jitter on
  Fixture f(TestTopo(), cfg);
  f.net.StartFlow(0, 2, MiB(1), FlowKind::kOther, [] {});
  f.sim.Run();  // must terminate
  EXPECT_EQ(f.net.active_flows(), 0);
  EXPECT_EQ(f.sim.pending_events(), 0u);
}

}  // namespace
}  // namespace gs
