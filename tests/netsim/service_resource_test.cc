// Service resources and the FlowSpec StartFlow overload: the netsim
// surface the ShuffleTransport backends build on (object-store tiers,
// RDMA fabrics). A service resource is an extra max-min-shared capacity
// appended after the NIC and WAN resources; FlowSpec flows can skip either
// endpoint NIC, ride a service resource, and add request latency to the
// connection setup.
#include <gtest/gtest.h>

#include "common/check.h"
#include "netsim/network.h"
#include "simcore/simulator.h"

namespace gs {
namespace {

Topology TestTopo(Rate nic = MiB(10), Rate wan = MiB(1),
                  SimTime rtt = Millis(100)) {
  Topology topo;
  topo.AddDatacenter("dc0");
  topo.AddDatacenter("dc1");
  for (int i = 0; i < 2; ++i) {
    topo.AddNode({"a" + std::to_string(i), 0, 2, nic});
  }
  for (int i = 0; i < 2; ++i) {
    topo.AddNode({"b" + std::to_string(i), 1, 2, nic});
  }
  topo.AddWanLink({0, 1, wan, wan, wan, rtt});
  topo.AddWanLink({1, 0, wan, wan, wan, rtt});
  return topo;
}

NetworkConfig Quiet() {
  NetworkConfig cfg;
  cfg.jitter_interval = 0;
  cfg.wan_flow_efficiency_min = 1.0;
  cfg.wan_stall_prob = 0;
  return cfg;
}

struct Fixture {
  Simulator sim;
  Topology topo;
  Network net;
  explicit Fixture(Topology t, NetworkConfig cfg = Quiet())
      : topo(std::move(t)), net(sim, topo, cfg, Rng(1)) {}
};

TEST(ServiceResourceTest, ServiceResourceCapsAnIntraDcFlow) {
  Fixture f(TestTopo());
  const int res = f.net.AddServiceResource(MiB(2));
  Network::FlowSpec spec;
  spec.src = 0;
  spec.dst = 1;
  spec.bytes = MiB(4);
  spec.service_res = res;
  double done_at = -1;
  f.net.StartFlow(spec, [&] { done_at = f.sim.Now(); });
  f.sim.Run();
  // NICs are 10 MiB/s; the 2 MiB/s service tier is the bottleneck.
  EXPECT_NEAR(done_at, 2.0 + 0.00025, 1e-4);
}

TEST(ServiceResourceTest, ServiceFlowsShareTheTierFairly) {
  Fixture f(TestTopo());
  const int res = f.net.AddServiceResource(MiB(2));
  double first = -1, second = -1;
  for (int i = 0; i < 2; ++i) {
    Network::FlowSpec spec;
    spec.src = i;          // distinct senders: NICs don't contend
    spec.dst = 1 - i;
    spec.bytes = MiB(2);
    spec.service_res = res;
    f.net.StartFlow(spec, [&, i] {
      (i == 0 ? first : second) = f.sim.Now();
    });
  }
  f.sim.Run();
  // 2 + 2 MiB through a shared 2 MiB/s tier: both take ~2 s.
  EXPECT_NEAR(first, 2.0 + 0.00025, 1e-4);
  EXPECT_NEAR(second, 2.0 + 0.00025, 1e-4);
}

TEST(ServiceResourceTest, SkippingNicsLeavesOnlyTheService) {
  // Tier faster than the NICs: with both NIC legs skipped (the fabric
  // model), the flow runs at tier rate, above what the NICs would allow.
  Fixture f(TestTopo(/*nic=*/MiB(10)));
  const int res = f.net.AddServiceResource(MiB(40));
  Network::FlowSpec spec;
  spec.src = 0;
  spec.dst = 1;
  spec.bytes = MiB(40);
  spec.src_uplink = false;
  spec.dst_downlink = false;
  spec.service_res = res;
  double done_at = -1;
  f.net.StartFlow(spec, [&] { done_at = f.sim.Now(); });
  f.sim.Run();
  EXPECT_NEAR(done_at, 1.0 + 0.00025, 1e-4);  // 40 MiB / 40 MiB/s
}

TEST(ServiceResourceTest, ExtraSetupDelaysTheFlow) {
  Fixture f(TestTopo());
  const int res = f.net.AddServiceResource(MiB(2));
  Network::FlowSpec base;
  base.src = 0;
  base.dst = 1;
  base.bytes = MiB(2);
  base.service_res = res;
  double plain = -1, delayed = -1;
  f.net.StartFlow(base, [&] { plain = f.sim.Now(); });
  f.sim.Run();
  Fixture g(TestTopo());
  const int res2 = g.net.AddServiceResource(MiB(2));
  base.service_res = res2;
  base.extra_setup = Millis(30);
  g.net.StartFlow(base, [&] { delayed = g.sim.Now(); });
  g.sim.Run();
  EXPECT_NEAR(delayed - plain, 0.030, 1e-6);
}

TEST(ServiceResourceTest, WanLegStillAppliesAcrossDatacenters) {
  Fixture f(TestTopo());
  const int res = f.net.AddServiceResource(MiB(50));
  Network::FlowSpec spec;
  spec.src = 0;
  spec.dst = 2;  // dc0 -> dc1 over the 1 MiB/s WAN link
  spec.bytes = MiB(2);
  // A cross-DC staged leg skips one NIC (here the receiver's, like a PUT
  // into a remote store tier): a flow composes at most 3 resources.
  spec.dst_downlink = false;
  spec.service_res = res;
  double done_at = -1;
  f.net.StartFlow(spec, [&] { done_at = f.sim.Now(); });
  f.sim.Run();
  EXPECT_NEAR(done_at, 2.0 + 0.05, 1e-6);
  // The WAN crossing is metered like any other flow (conservation).
  EXPECT_EQ(f.net.meter().pair_bytes(0, 1), MiB(2));
}

TEST(ServiceResourceTest, SpecFlowsAreMeteredByKind) {
  Fixture f(TestTopo());
  const int res = f.net.AddServiceResource(MiB(50));
  Network::FlowSpec spec;
  spec.src = 0;
  spec.dst = 2;
  spec.bytes = MiB(3);
  spec.kind = FlowKind::kStoreGet;
  spec.src_uplink = false;  // GETs leave the store tier, not a worker NIC
  spec.service_res = res;
  f.net.StartFlow(spec, [] {});
  f.sim.Run();
  EXPECT_EQ(f.net.meter().total_of_kind(FlowKind::kStoreGet), MiB(3));
  EXPECT_EQ(f.net.meter().store_pair_bytes(0, 1), MiB(3));
  // Store bytes stay inside pair_bytes so byte conservation holds.
  EXPECT_EQ(f.net.meter().pair_bytes(0, 1), MiB(3));
}

TEST(ServiceResourceTest, ResourcelessSpecCompletesLikeLoopback) {
  Fixture f(TestTopo());
  Network::FlowSpec spec;
  spec.src = 0;
  spec.dst = 0;  // same node: no NICs, no WAN, no service
  spec.bytes = GiB(1);
  double done_at = -1;
  f.net.StartFlow(spec, [&] { done_at = f.sim.Now(); });
  f.sim.Run();
  EXPECT_GE(done_at, 0.0);
  EXPECT_LT(done_at, 0.01);
}

TEST(ServiceResourceTest, RegistrationAfterFirstFlowThrows) {
  Fixture f(TestTopo());
  f.net.StartFlow(0, 1, MiB(1), FlowKind::kOther, [] {});
  EXPECT_THROW(f.net.AddServiceResource(MiB(1)), CheckFailure);
}

TEST(ServiceResourceTest, NonPositiveCapacityThrows) {
  Fixture f(TestTopo());
  EXPECT_THROW(f.net.AddServiceResource(0), CheckFailure);
  EXPECT_THROW(f.net.AddServiceResource(-MiB(1)), CheckFailure);
}

}  // namespace
}  // namespace gs
