// WAN capacity jitter traces: envelope, momentum, determinism, lazy
// catch-up semantics.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "simcore/simulator.h"

namespace gs {
namespace {

Topology OneLinkTopo(Rate base, Rate min, Rate max) {
  Topology topo;
  topo.AddDatacenter("a");
  topo.AddDatacenter("b");
  topo.AddNode({"a0", 0, 2, MiB(1000)});
  topo.AddNode({"b0", 1, 2, MiB(1000)});
  topo.AddWanLink({0, 1, base, min, max, Millis(10)});
  topo.AddWanLink({1, 0, base, min, max, Millis(10)});
  return topo;
}

NetworkConfig JitterCfg(SimTime interval, double momentum) {
  NetworkConfig cfg;
  cfg.jitter_interval = interval;
  cfg.jitter_momentum = momentum;
  cfg.wan_flow_efficiency_min = 1.0;
  cfg.wan_stall_prob = 0;
  return cfg;
}

std::vector<double> SampleTrace(double momentum, std::uint64_t seed,
                                int samples) {
  Simulator sim;
  Topology topo = OneLinkTopo(MiB(10), MiB(4), MiB(16));
  Network net(sim, topo, JitterCfg(1.0, momentum), Rng(seed));
  std::vector<double> trace;
  for (int i = 1; i <= samples; ++i) {
    sim.RunUntil(static_cast<double>(i));
    trace.push_back(net.wan_capacity(0, 1));
  }
  return trace;
}

TEST(JitterTest, TraceStaysWithinEnvelope) {
  for (double v : SampleTrace(0.5, 3, 200)) {
    EXPECT_GE(v, MiB(4) * 0.999);
    EXPECT_LE(v, MiB(16) * 1.001);
  }
}

TEST(JitterTest, TraceIsDeterministicPerSeed) {
  EXPECT_EQ(SampleTrace(0.5, 7, 50), SampleTrace(0.5, 7, 50));
  EXPECT_NE(SampleTrace(0.5, 7, 50), SampleTrace(0.5, 8, 50));
}

TEST(JitterTest, MomentumSmoothsTheTrace) {
  // Higher momentum -> smaller mean absolute step between samples.
  auto mean_step = [](const std::vector<double>& trace) {
    double total = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
      total += std::abs(trace[i] - trace[i - 1]);
    }
    return total / static_cast<double>(trace.size() - 1);
  };
  double rough = mean_step(SampleTrace(0.0, 5, 300));
  double smooth = mean_step(SampleTrace(0.9, 5, 300));
  EXPECT_LT(smooth, rough * 0.7);
}

TEST(JitterTest, DisabledJitterKeepsBaseRate) {
  Simulator sim;
  Topology topo = OneLinkTopo(MiB(10), MiB(4), MiB(16));
  Network net(sim, topo, JitterCfg(0, 0.5), Rng(3));
  for (int i = 1; i <= 20; ++i) {
    sim.RunUntil(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(net.wan_capacity(0, 1), MiB(10));
  }
}

TEST(JitterTest, CatchUpIsConsistentWithSteppedObservation) {
  // Observing capacity only at t=100 must give the same value as watching
  // the trace continuously (the lazy catch-up draws the same sequence).
  auto observe_late = [] {
    Simulator sim;
    Topology topo = OneLinkTopo(MiB(10), MiB(4), MiB(16));
    Network net(sim, topo, JitterCfg(1.0, 0.5), Rng(11));
    sim.RunUntil(100.0);
    return net.wan_capacity(0, 1);
  };
  auto observe_stepwise = [] {
    Simulator sim;
    Topology topo = OneLinkTopo(MiB(10), MiB(4), MiB(16));
    Network net(sim, topo, JitterCfg(1.0, 0.5), Rng(11));
    double last = 0;
    for (int i = 1; i <= 100; ++i) {
      sim.RunUntil(static_cast<double>(i));
      last = net.wan_capacity(0, 1);
    }
    return last;
  };
  EXPECT_DOUBLE_EQ(observe_late(), observe_stepwise());
}

TEST(JitterTest, MeanStaysNearBase) {
  auto trace = SampleTrace(0.5, 13, 500);
  double mean = 0;
  for (double v : trace) mean += v;
  mean /= static_cast<double>(trace.size());
  EXPECT_NEAR(mean, MiB(10), MiB(2));
}

}  // namespace
}  // namespace gs
