#include "netsim/pricing.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "engine/cluster.h"
#include "engine/dataset.h"

namespace gs {
namespace {

TEST(WanPricingTest, UniformRate) {
  WanPricing pricing = WanPricing::Uniform(3, 0.10);
  EXPECT_DOUBLE_EQ(pricing.CostUsd(0, 1, GiB(2)), 0.20);
  EXPECT_DOUBLE_EQ(pricing.CostUsd(2, 0, kGiB / 2), 0.05);
}

TEST(WanPricingTest, IntraRegionIsFree) {
  WanPricing pricing = WanPricing::Uniform(3, 0.10);
  EXPECT_DOUBLE_EQ(pricing.CostUsd(1, 1, GiB(100)), 0.0);
}

TEST(WanPricingTest, PerRegionRatesChargeTheSource) {
  WanPricing pricing({0.09, 0.16});
  EXPECT_DOUBLE_EQ(pricing.CostUsd(0, 1, GiB(1)), 0.09);
  EXPECT_DOUBLE_EQ(pricing.CostUsd(1, 0, GiB(1)), 0.16);
}

TEST(WanPricingTest, Ec2TariffShape) {
  WanPricing tariff = WanPricing::Ec2SixRegionTariff();
  EXPECT_DOUBLE_EQ(tariff.egress_rate(0), 0.09);  // Virginia
  EXPECT_GT(tariff.egress_rate(2), tariff.egress_rate(0));  // Sao Paulo
}

TEST(WanPricingTest, MeterCostSumsPairs) {
  Topology topo;
  topo.AddDatacenter("a");
  topo.AddDatacenter("b");
  TrafficMeter meter(2);
  meter.Record(0, 1, FlowKind::kShufflePush, GiB(1));
  meter.Record(1, 0, FlowKind::kShuffleFetch, GiB(2));
  meter.Record(0, 0, FlowKind::kOther, GiB(50));  // free
  WanPricing pricing({0.10, 0.20});
  EXPECT_DOUBLE_EQ(pricing.CostUsd(meter, topo), 0.10 + 0.40);
}

TEST(WanPricingTest, NegativeRateThrows) {
  EXPECT_THROW(WanPricing({0.09, -0.01}), CheckFailure);
}

TEST(WanPricingTest, AggShuffleIsCheaperThanSparkEndToEnd) {
  // The dollar view of Fig. 8: same job, priced traffic.
  auto cost_of = [](Scheme scheme) {
    RunConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 3;
    cfg.cost = CostModel{}.Scaled(100);
    GeoCluster cluster(Ec2SixRegionTopology(100), cfg);
    std::vector<Record> records;
    for (int i = 0; i < 1000; ++i) {
      records.push_back({"k" + std::to_string(i % 37),
                         std::string(50, 'a' + static_cast<char>(i % 26))});
    }
    (void)cluster.Parallelize("d", records, 2)
        .ReduceByKey(ConcatStrings(','), 8)
        .Save();
    return WanPricing::Ec2SixRegionTariff().CostUsd(
        cluster.network().meter(), cluster.topology());
  };
  double spark = cost_of(Scheme::kSpark);
  double agg = cost_of(Scheme::kAggShuffle);
  EXPECT_GT(spark, 0);
  EXPECT_LT(agg, spark);
}

TEST(WanPricingTest, EgressCostExcludesStoreBytes) {
  Topology topo;
  topo.AddDatacenter("a");
  topo.AddDatacenter("b");
  TrafficMeter meter(2);
  meter.Record(0, 1, FlowKind::kShuffleFetch, GiB(1));  // internet egress
  meter.Record(0, 1, FlowKind::kStoreGet, GiB(2));      // backbone, excluded
  meter.Record(0, 0, FlowKind::kStorePut, GiB(2));      // intra-DC PUT
  WanPricing pricing({0.10, 0.20});
  // CostUsd prices everything; EgressCostUsd only the non-staged bytes.
  EXPECT_DOUBLE_EQ(pricing.CostUsd(meter, topo), 0.10 + 0.20);
  EXPECT_DOUBLE_EQ(pricing.EgressCostUsd(meter, topo), 0.10);
}

TEST(WanPricingTest, EgressCostEqualsCostWithoutStoreFlows) {
  Topology topo;
  topo.AddDatacenter("a");
  topo.AddDatacenter("b");
  TrafficMeter meter(2);
  meter.Record(0, 1, FlowKind::kShufflePush, GiB(3));
  meter.Record(1, 0, FlowKind::kCentralize, GiB(1));
  WanPricing pricing({0.10, 0.20});
  EXPECT_DOUBLE_EQ(pricing.EgressCostUsd(meter, topo),
                   pricing.CostUsd(meter, topo));
}

TEST(WanPricingTest, StoreCostBillsRequestsStorageAndBackbone) {
  Topology topo;
  topo.AddDatacenter("a");
  topo.AddDatacenter("b");
  TrafficMeter meter(2);
  meter.Record(0, 0, FlowKind::kStorePut, GiB(4));  // local PUT
  meter.Record(0, 1, FlowKind::kStoreGet, GiB(3));  // cross-region GET
  meter.Record(0, 0, FlowKind::kStoreGet, GiB(1));  // local GET
  ObjectStoreTariff tariff;
  tariff.put_usd_per_gib = 0.01;
  tariff.get_usd_per_gib = 0.002;
  tariff.storage_usd_per_gib = 0.003;
  tariff.transfer_usd_per_gib = 0.05;
  // put fees on 4 GiB, get fees on 4 GiB, storage on the 4 GiB PUT,
  // backbone transfer on the 3 cross-region GiB.
  EXPECT_DOUBLE_EQ(WanPricing::StoreCostUsd(meter, topo, tariff),
                   0.01 * 4 + 0.002 * 4 + 0.003 * 4 + 0.05 * 3);
}

TEST(WanPricingTest, StoreCostIsZeroWithoutStoreFlows) {
  Topology topo;
  topo.AddDatacenter("a");
  topo.AddDatacenter("b");
  TrafficMeter meter(2);
  meter.Record(0, 1, FlowKind::kShuffleFetch, GiB(5));
  EXPECT_DOUBLE_EQ(
      WanPricing::StoreCostUsd(meter, topo, ObjectStoreTariff{}), 0.0);
}

}  // namespace
}  // namespace gs
