#include "netsim/topology.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace gs {
namespace {

TEST(TopologyTest, Ec2SixRegionShape) {
  Topology topo = Ec2SixRegionTopology();
  EXPECT_EQ(topo.num_datacenters(), 6);
  EXPECT_EQ(topo.num_nodes(), 25);  // 24 workers + driver
  EXPECT_EQ(topo.num_wan_links(), 30);  // full directed mesh
  // Four workers per region; the driver is in region 0 and not a worker.
  for (DcIndex dc = 0; dc < 6; ++dc) {
    int workers = 0;
    for (NodeIndex n : topo.nodes_in(dc)) {
      if (topo.node(n).worker) ++workers;
    }
    EXPECT_EQ(workers, 4) << "region " << dc;
  }
  EXPECT_FALSE(topo.node(kEc2DriverNode).worker);
  EXPECT_EQ(topo.dc_of(kEc2DriverNode), 0);
}

TEST(TopologyTest, Ec2CoresMatchM3Large) {
  Topology topo = Ec2SixRegionTopology();
  for (NodeIndex n = 0; n < topo.num_nodes(); ++n) {
    if (topo.node(n).worker) EXPECT_EQ(topo.node(n).cores, 2);
  }
  EXPECT_EQ(topo.cores_in(0), 9);  // 4 workers x 2 + driver's 1 (non-worker)
  EXPECT_EQ(topo.total_cores(), 49);
}

TEST(TopologyTest, Ec2WanRatesWithinMeasuredEnvelope) {
  Topology topo = Ec2SixRegionTopology();
  for (int l = 0; l < topo.num_wan_links(); ++l) {
    const WanLinkSpec& link = topo.wan_link(l);
    EXPECT_GE(link.min_rate, Mbps(80) * 0.99);
    EXPECT_LE(link.max_rate, Mbps(300) * 1.01);
    EXPECT_GE(link.base_rate, link.min_rate);
    EXPECT_LE(link.base_rate, link.max_rate);
    EXPECT_GT(link.rtt, 0);
  }
}

TEST(TopologyTest, WanMeshIsSymmetricInCapacity) {
  Topology topo = Ec2SixRegionTopology();
  for (DcIndex a = 0; a < 6; ++a) {
    for (DcIndex b = 0; b < 6; ++b) {
      if (a == b) {
        EXPECT_EQ(topo.wan_link_index(a, b), -1);
        continue;
      }
      int fwd = topo.wan_link_index(a, b);
      int rev = topo.wan_link_index(b, a);
      ASSERT_GE(fwd, 0);
      ASSERT_GE(rev, 0);
      EXPECT_EQ(topo.wan_link(fwd).base_rate, topo.wan_link(rev).base_rate);
      EXPECT_EQ(topo.wan_link(fwd).rtt, topo.wan_link(rev).rtt);
    }
  }
}

TEST(TopologyTest, ScaleDividesRates) {
  Topology full = Ec2SixRegionTopology(1.0);
  Topology scaled = Ec2SixRegionTopology(100.0);
  EXPECT_DOUBLE_EQ(full.wan_link(0).base_rate / 100.0,
                   scaled.wan_link(0).base_rate);
  EXPECT_DOUBLE_EQ(full.node(0).nic_rate / 100.0, scaled.node(0).nic_rate);
  // RTTs are real time and do not scale.
  EXPECT_EQ(full.wan_link(0).rtt, scaled.wan_link(0).rtt);
}

TEST(TopologyTest, ScaleWanCapacity) {
  Topology topo = Ec2SixRegionTopology();
  Rate before = topo.wan_link(0).base_rate;
  topo.ScaleWanCapacity(2.0);
  EXPECT_DOUBLE_EQ(topo.wan_link(0).base_rate, 2 * before);
}

TEST(TopologyTest, SetWorkerCoresSkipsDriver) {
  Topology topo = Ec2SixRegionTopology();
  topo.SetWorkerCores(0, 1);
  for (NodeIndex n : topo.nodes_in(0)) {
    if (topo.node(n).worker) {
      EXPECT_EQ(topo.node(n).cores, 1);
    } else {
      EXPECT_EQ(topo.node(n).cores, 1);  // driver untouched (was 1)
    }
  }
  EXPECT_EQ(topo.node(topo.nodes_in(1)[0]).cores, 2);
}

TEST(TopologyTest, IntraDcRttIsSmall) {
  Topology topo = Ec2SixRegionTopology();
  EXPECT_LT(topo.rtt(0, 0), Millis(1));
  EXPECT_GT(topo.rtt(0, 4), Millis(100));
}

TEST(TopologyTest, DuplicateWanLinkThrows) {
  Topology topo;
  topo.AddDatacenter("a");
  topo.AddDatacenter("b");
  topo.AddWanLink({0, 1, Mbps(100), Mbps(50), Mbps(200), Millis(10)});
  EXPECT_THROW(
      topo.AddWanLink({0, 1, Mbps(100), Mbps(50), Mbps(200), Millis(10)}),
      CheckFailure);
}

TEST(TopologyTest, SelfLinkThrows) {
  Topology topo;
  topo.AddDatacenter("a");
  EXPECT_THROW(
      topo.AddWanLink({0, 0, Mbps(100), Mbps(50), Mbps(200), Millis(10)}),
      CheckFailure);
}

TEST(TopologyTest, NodeInUnknownDcThrows) {
  Topology topo;
  topo.AddDatacenter("a");
  EXPECT_THROW(topo.AddNode({"n", 3, 2, Gbps(1)}), CheckFailure);
}

TEST(TopologyTest, UniformMeshBuildsAllPairs) {
  Topology topo;
  for (int i = 0; i < 4; ++i) topo.AddDatacenter("dc" + std::to_string(i));
  topo.AddUniformWanMesh(Mbps(100), Mbps(80), Mbps(120), Millis(50));
  EXPECT_EQ(topo.num_wan_links(), 12);
}

}  // namespace
}  // namespace gs
