#include <gtest/gtest.h>

#include "netsim/network.h"
#include "simcore/simulator.h"

namespace gs {
namespace {

Topology SmallTopo() {
  Topology topo;
  topo.AddDatacenter("a");
  topo.AddDatacenter("b");
  topo.AddNode({"a0", 0, 2, MiB(10)});
  topo.AddNode({"b0", 1, 2, MiB(10)});
  topo.AddWanLink({0, 1, MiB(1), MiB(1), MiB(1), Millis(100)});
  topo.AddWanLink({1, 0, MiB(1), MiB(1), MiB(1), Millis(100)});
  return topo;
}

NetworkConfig Quiet() {
  NetworkConfig cfg;
  cfg.jitter_interval = 0;
  cfg.wan_flow_efficiency_min = 1.0;
  cfg.wan_stall_prob = 0;
  return cfg;
}

TEST(FlowObserverTest, ObserverSeesCompletedFlowWithTimestamps) {
  Simulator sim;
  Topology topo = SmallTopo();
  Network net(sim, topo, Quiet(), Rng(1));
  std::vector<FlowRecord> seen;
  net.SetFlowObserver([&seen](const FlowRecord& f) { seen.push_back(f); });

  net.StartFlow(0, 1, MiB(2), FlowKind::kShufflePush, [] {});
  sim.Run();

  ASSERT_EQ(seen.size(), 1u);
  const FlowRecord& f = seen.front();
  EXPECT_EQ(f.src, 0);
  EXPECT_EQ(f.dst, 1);
  EXPECT_EQ(f.kind, FlowKind::kShufflePush);
  EXPECT_EQ(f.bytes, MiB(2));
  EXPECT_DOUBLE_EQ(f.started, 0.0);
  EXPECT_NEAR(f.finished, 2.0 + 0.05, 1e-6);
}

TEST(FlowObserverTest, CancelledFlowIsNotObserved) {
  Simulator sim;
  Topology topo = SmallTopo();
  Network net(sim, topo, Quiet(), Rng(1));
  int observed = 0;
  net.SetFlowObserver([&observed](const FlowRecord&) { ++observed; });
  FlowId id = net.StartFlow(0, 1, MiB(100), FlowKind::kOther, [] {});
  sim.Schedule(0.5, [&] { net.CancelFlow(id); });
  sim.Run();
  EXPECT_EQ(observed, 0);
}

TEST(FlowObserverTest, LoopbackFlowsAreNotObserved) {
  Simulator sim;
  Topology topo = SmallTopo();
  Network net(sim, topo, Quiet(), Rng(1));
  int observed = 0;
  net.SetFlowObserver([&observed](const FlowRecord&) { ++observed; });
  bool done = false;
  net.StartFlow(0, 0, MiB(5), FlowKind::kOther, [&done] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(observed, 0);
}

TEST(FlowObserverTest, ObservesEveryFlowOnce) {
  Simulator sim;
  Topology topo = SmallTopo();
  Network net(sim, topo, Quiet(), Rng(1));
  int observed = 0;
  net.SetFlowObserver([&observed](const FlowRecord&) { ++observed; });
  for (int i = 0; i < 7; ++i) {
    net.StartFlow(i % 2, 1 - i % 2, KiB(64), FlowKind::kOther, [] {});
  }
  sim.Run();
  EXPECT_EQ(observed, 7);
}

}  // namespace
}  // namespace gs
